//===- bench/bench_deque.cpp - Experiment E10 ----------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E10 — the HLM obstruction-free deque (the paper's reference [8]) and
/// its Figure 3 strengthening. Three tables:
///
///  * solo access counts per operation as occupancy grows — unlike the
///    paper's stack (constant 5/6), HLM pays an O(boundary-position)
///    oracle scan, which is why the paper's "small and constant number
///    of accesses" requirement is a real design constraint;
///  * abort rate of raw single attempts under contention;
///  * throughput of obstruction-free retry vs the contention-sensitive
///    deque (which adds starvation-freedom on top).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ContentionSensitiveDeque.h"
#include "core/ObstructionFreeDeque.h"
#include "memory/AccessCounter.h"
#include "runtime/TablePrinter.h"

#include <iostream>

namespace {

using namespace csobj;
using namespace csobj::bench;

/// Raw deque, single attempts; aborts surface.
struct WeakDequeAdapter {
  static constexpr const char *Name = "hlm-attempts";
  WeakDequeAdapter(std::uint32_t, std::uint32_t Capacity)
      : Deque(Capacity, Capacity / 2) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    // Map push->right end, pop->right end (stack-like usage pattern).
    if (IsPush)
      return fromPush(Deque.tryPushRight(V % ObstructionFreeDeque::LeftNull));
    return fromPop(Deque.tryPopRight());
  }
  void prefillOne(std::uint32_t V) {
    (void)Deque.pushRight(V % ObstructionFreeDeque::LeftNull);
  }
  ObstructionFreeDeque Deque;
};

/// Obstruction-free retry loops (the HLM interface).
struct ObstructionFreeDequeAdapter {
  static constexpr const char *Name = "hlm-obstruction-free";
  ObstructionFreeDequeAdapter(std::uint32_t, std::uint32_t Capacity)
      : Deque(Capacity, Capacity / 2) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    if (IsPush)
      return fromPush(Deque.pushRight(V % ObstructionFreeDeque::LeftNull));
    return fromPop(Deque.popRight());
  }
  void prefillOne(std::uint32_t V) {
    (void)Deque.pushRight(V % ObstructionFreeDeque::LeftNull);
  }
  ObstructionFreeDeque Deque;
};

/// Figure 3 over the deque.
struct CsDequeAdapter {
  static constexpr const char *Name = "cs-deque(fig3)";
  CsDequeAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Deque(Threads, Capacity, Capacity / 2) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    if (IsPush)
      return fromPush(
          Deque.pushRight(Tid, V % ObstructionFreeDeque::LeftNull));
    return fromPop(Deque.popRight(Tid));
  }
  void prefillOne(std::uint32_t V) {
    (void)Deque.pushRight(0, V % ObstructionFreeDeque::LeftNull);
  }
  ContentionSensitiveDeque<> Deque;
};

} // namespace

int main() {
  csobj::bench::printRegisterPolicy(std::cout);
  // Solo access counts vs occupancy: HLM's oracle makes the cost grow,
  // in contrast to the paper's constant-cost stack.
  {
    TablePrinter Table({"elements (right side)", "pushRight", "popRight",
                        "pushLeft", "popLeft"});
    Table.setTitle("E10a: solo accesses per op vs occupancy (HLM oracle "
                   "is O(boundary position); paper stack is constant)");
    for (const std::uint32_t Fill : {0u, 4u, 16u, 64u}) {
      ObstructionFreeDeque Deque(128, 2);
      for (std::uint32_t I = 0; I < Fill; ++I)
        (void)Deque.pushRight(I + 1);
      const AccessCounts PushR =
          countAccesses([&] { (void)Deque.tryPushRight(9); });
      const AccessCounts PopR =
          countAccesses([&] { (void)Deque.tryPopRight(); });
      const AccessCounts PushL =
          countAccesses([&] { (void)Deque.tryPushLeft(9); });
      const AccessCounts PopL =
          countAccesses([&] { (void)Deque.tryPopLeft(); });
      Table.addRow({std::to_string(Fill), std::to_string(PushR.total()),
                    std::to_string(PopR.total()),
                    std::to_string(PushL.total()),
                    std::to_string(PopL.total())});
    }
    Table.print(std::cout);
  }

  {
    TablePrinter Table({"deque", "threads", "throughput", "abort-rate",
                        "svc-ratio"});
    Table.setTitle("E10b: obstruction-free vs contention-sensitive deque "
                   "(right-end 50/50, capacity 64)");
    for (const std::uint32_t Threads : threadSweep()) {
      {
        const WorkloadReport R = runCell<WeakDequeAdapter>(
            Threads, /*ThinkNs=*/0, /*PushPercent=*/50, /*Capacity=*/64);
        Table.addRow({"hlm attempts", std::to_string(Threads),
                      formatRate(R.throughputOpsPerSec()),
                      formatDouble(R.abortRate() * 100, 2) + "%",
                      formatDouble(R.meanLatencyRatio(), 2)});
      }
      {
        const WorkloadReport R = runCell<ObstructionFreeDequeAdapter>(
            Threads, /*ThinkNs=*/0, /*PushPercent=*/50, /*Capacity=*/64);
        Table.addRow({"hlm retry (obstruction-free)",
                      std::to_string(Threads),
                      formatRate(R.throughputOpsPerSec()),
                      formatDouble(R.abortRate() * 100, 2) + "%",
                      formatDouble(R.meanLatencyRatio(), 2)});
      }
      {
        const WorkloadReport R = runCell<CsDequeAdapter>(
            Threads, /*ThinkNs=*/0, /*PushPercent=*/50, /*Capacity=*/64);
        Table.addRow({"cs-deque (fig3)", std::to_string(Threads),
                      formatRate(R.throughputOpsPerSec()),
                      formatDouble(R.abortRate() * 100, 2) + "%",
                      formatDouble(R.meanLatencyRatio(), 2)});
      }
    }
    Table.print(std::cout);
  }

  std::cout << "\npaper tie-in: [8] defines obstruction-freedom; Figure 3 "
               "lifts the same object to starvation-freedom while keeping "
               "the solo path lock-free\n";
  return 0;
}
