//===- bench/bench_queue.cpp - Experiment E7 -----------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E7 — the queue family and the paper's non-interference motivation
/// ("enqueuing and dequeuing on a non-empty queue"). Two tables:
///
///  * throughput/abort sweep across the queue implementations;
///  * the non-interference experiment: one producer + one consumer on a
///    queue kept non-empty and non-full must produce ZERO aborts on the
///    abortable queue (enqueues C&S only REAR, dequeues only FRONT) — in
///    sharp contrast with the stack, where all operations collide on TOP.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "memory/ChaosHook.h"
#include "runtime/SpinBarrier.h"
#include "runtime/TablePrinter.h"

#include <iostream>
#include <thread>

namespace {

using namespace csobj;
using namespace csobj::bench;

template <typename AdapterT>
void addSweep(TablePrinter &Table, const char *Name) {
  for (const std::uint32_t Threads : threadSweep()) {
    const WorkloadReport R = runCell<AdapterT>(Threads);
    Table.addRow({Name, std::to_string(Threads),
                  formatRate(R.throughputOpsPerSec()),
                  formatDouble(R.abortRate() * 100, 2) + "%",
                  formatDouble(R.meanRetries(), 4),
                  formatDouble(R.fairness(), 4)});
  }
}

/// One producer + one consumer on a provably never-empty / never-full
/// object. Returns (producer aborts, consumer aborts).
template <typename ObjectT, typename EnqFn, typename DeqFn>
std::pair<std::uint64_t, std::uint64_t>
producerConsumerAborts(ObjectT &Object, EnqFn Enqueue, DeqFn Dequeue,
                       std::uint64_t Ops) {
  std::uint64_t EnqAborts = 0, DeqAborts = 0;
  SpinBarrier Barrier(2);
  std::thread Producer([&] {
    ChaosHook Chaos(101, DefaultChaosPermille);
    SchedHookScope Scope(Chaos);
    Barrier.arriveAndWait();
    for (std::uint64_t I = 0; I < Ops; ++I)
      if (Enqueue(Object, static_cast<std::uint32_t>(I % 1000) + 1))
        ++EnqAborts;
  });
  std::thread Consumer([&] {
    ChaosHook Chaos(202, DefaultChaosPermille);
    SchedHookScope Scope(Chaos);
    Barrier.arriveAndWait();
    for (std::uint64_t I = 0; I < Ops; ++I)
      if (Dequeue(Object))
        ++DeqAborts;
  });
  Producer.join();
  Consumer.join();
  return {EnqAborts, DeqAborts};
}

} // namespace

int main() {
  csobj::bench::printRegisterPolicy(std::cout);
  TablePrinter Sweep({"queue", "threads", "throughput", "abort-rate",
                      "retries/op", "jain"});
  Sweep.setTitle("E7a: queue family sweep (think=0, 50/50 enq-deq)");
  addSweep<WeakQueueAdapter>(Sweep, "abortable");
  addSweep<NonBlockingQueueAdapter>(Sweep, "non-blocking");
  addSweep<CsQueueAdapter>(Sweep, "cs(fig3)");
  addSweep<MsQueueAdapter>(Sweep, "michael-scott");
  addSweep<LockedQueueAdapter<TasLock>>(Sweep, "locked(tas)");
  addSweep<LockedQueueAdapter<TicketLock>>(Sweep, "locked(ticket)");
  Sweep.print(std::cout);

  // Non-interference: queue vs stack under 1 producer + 1 consumer. The
  // object is sized to provably never empty nor fill (prefill Ops+8, Ops
  // enqueues and dequeues, capacity 2*Ops+16), which must fit the
  // Compact64 16-bit index field.
  const std::uint64_t Ops = std::min<std::uint64_t>(opsPerThread(), 20000);
  TablePrinter NonInterf({"object", "enq/push aborts", "deq/pop aborts"});
  NonInterf.setTitle("E7b: producer+consumer on a never-empty object — "
                     "the paper's non-interference example");
  {
    AbortableQueue<> Queue(static_cast<std::uint32_t>(2 * Ops + 16));
    for (std::uint64_t I = 0; I < Ops + 8; ++I)
      (void)Queue.weakEnqueue(1);
    const auto [E, D] = producerConsumerAborts(
        Queue,
        [](AbortableQueue<> &Q, std::uint32_t V) {
          return Q.weakEnqueue(V) == PushResult::Abort;
        },
        [](AbortableQueue<> &Q) { return Q.weakDequeue().isAbort(); },
        Ops);
    NonInterf.addRow({"abortable queue", std::to_string(E),
                      std::to_string(D)});
  }
  {
    AbortableStack<> Stack(static_cast<std::uint32_t>(2 * Ops + 16));
    for (std::uint64_t I = 0; I < Ops + 8; ++I)
      (void)Stack.weakPush(1);
    const auto [E, D] = producerConsumerAborts(
        Stack,
        [](AbortableStack<> &S, std::uint32_t V) {
          return S.weakPush(V) == PushResult::Abort;
        },
        [](AbortableStack<> &S) { return S.weakPop().isAbort(); }, Ops);
    NonInterf.addRow({"abortable stack", std::to_string(E),
                      std::to_string(D)});
  }
  NonInterf.print(std::cout);

  std::cout << "\npaper claim (sec 1.1): enq/deq on a non-empty queue are "
               "non-interfering — the queue rows must show 0 aborts, while "
               "the stack (all ops collide on TOP) shows many\n";
  return 0;
}
