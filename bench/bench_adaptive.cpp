//===- bench/bench_adaptive.cpp - Experiment E18 (adaptive sharding) -----===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E18 — adaptive sharding vs every static shard count. A static
/// ShardedStack<N> must pick N at construction: too few shards and the
/// doorways absorb contention, too many and every operation pays the
/// multi-shard probe (and the solo six-access bound is lost whenever the
/// home shard is not the whole story at the boundary). The adaptive
/// facade moves N at runtime off the obs layer's path deltas, so ONE
/// object is measured against the whole static family:
///
///  * static(1x..8x fig3)      ShardedStack<1|2|4|8>
///  * adaptive(<=8xfig3)       AdaptiveShardedStack<8>, controller on
///
/// Sweeps threads x load phase (push-heavy / balanced / drain-heavy)
/// under the default chaos level; every record carries the path
/// breakdown, whose reconfiguration columns (shard_grows, shard_shrinks,
/// gate_widens, gate_narrows) show the control loop actually moving.
/// Results go to stdout and BENCH_adaptive.json (schema in
/// EXPERIMENTS.md).
///
/// Two in-binary acceptance checks:
///  * oracle (always on, hard fail): after the mask is driven up to the
///    full width and back down to one shard, a solo op costs EXACTLY six
///    shared accesses on the instrumented-policy instance — adaptivity
///    must not tax the paper's bound;
///  * competitiveness (host-conditional, >=4 hardware threads and a
///    >=4-thread sweep point): per load phase at the top thread count,
///    the adaptive facade stays within 15% of the best static shard
///    count. Whether it ran is recorded in the JSON acceptance record so
///    the trajectory gate can tell a small-host skip from a vanished
///    check.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "memory/AccessCounter.h"
#include "obs/JsonReporter.h"
#include "obs/MetricsJson.h"

#include "runtime/TablePrinter.h"

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace csobj;
using namespace csobj::bench;

/// A load phase of the sweep: the push mix shapes which path the obs
/// loop sees dominating (boundary pressure vs steady shortcut traffic).
struct LoadPhase {
  std::uint32_t Id;
  const char *Name;
  std::uint32_t PushPercent;
};

constexpr LoadPhase Phases[] = {
    {0, "push-heavy", 70},
    {1, "balanced", 50},
    {2, "drain-heavy", 30},
};

/// Static shard-count reference points sharing the adaptive facade's
/// construction knobs (capacity rounded to a multiple of 8 so every
/// object holds the same element count).
template <std::uint32_t NumShards>
struct StaticShardAdapter {
  StaticShardAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity - Capacity % 8,
              /*SlotCount=*/Threads > 2 ? Threads / 2 : 1,
              /*SpinBudget=*/64) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  std::uint64_t exchanges() const {
    return Stack.eliminationExchangesForTesting();
  }
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  std::size_t footprintBytes() const { return Stack.footprintBytes(); }
  ShardedStack<NumShards> Stack;
};

struct SweepOutput {
  TablePrinter &Table;
  JsonReporter &Json;
  /// Throughput per (object, phase id) at the top thread count, for the
  /// host-conditional competitiveness check.
  std::map<std::string, std::map<std::uint32_t, double>> TopPhase;
};

template <typename AdapterT>
void emitAccelStats(JsonReporter &Json, AdapterT &Adapter,
                    std::uint32_t Capacity) {
  if constexpr (requires { Adapter.footprintBytes(); })
    obs::emitMemoryFootprint(Json, Adapter.footprintBytes(), Capacity);
  if constexpr (requires { Adapter.exchanges(); })
    Json.field("elimination_exchanges", Adapter.exchanges());
  if constexpr (requires { Adapter.activeShards(); }) {
    Json.field("active_shards_final", Adapter.activeShards());
    Json.field("reconfig_epoch", Adapter.reconfigEpoch());
  }
  if constexpr (requires { Adapter.pathSnapshot(); })
    obs::emitPathBreakdown(Json, Adapter.pathSnapshot());
}

template <typename AdapterT>
void runRows(SweepOutput &Out, const char *Object) {
  const std::uint32_t Top = threadSweep().back();
  for (const std::uint32_t Threads : threadSweep()) {
    for (const LoadPhase &Phase : Phases) {
      ChaosSettings Chaos;
      Chaos.YieldPermille = DefaultChaosPermille;
      if (const std::optional<ChaosSettings> Env = chaosFromEnv())
        Chaos = *Env;
      AdapterT Adapter(Threads, /*Capacity=*/4096);
      const WorkloadReport R = runCellOn(Adapter, Threads, Chaos,
                                         /*ThinkNs=*/0, Phase.PushPercent);
      const LatencySummary S = summarize(R.mergedLatency());
      const double Throughput = R.throughputOpsPerSec();
      if (Threads == Top)
        Out.TopPhase[Object][Phase.Id] = Throughput;
      std::string Shards = "-";
      if constexpr (requires { Adapter.activeShards(); })
        Shards = std::to_string(Adapter.activeShards());
      Out.Table.addRow({Object, std::to_string(Threads), Phase.Name,
                        formatRate(Throughput),
                        formatNs(static_cast<double>(S.P99Ns)), Shards});
      Out.Json.beginRecord();
      Out.Json.field("object", Object);
      Out.Json.field("threads", Threads);
      Out.Json.field("phase", Phase.Id);
      Out.Json.field("phase_name", Phase.Name);
      Out.Json.field("push_percent", Phase.PushPercent);
      Out.Json.field("ops", R.totalOps());
      Out.Json.field("duration_sec", R.DurationSec);
      Out.Json.field("throughput_ops_per_sec", Throughput);
      Out.Json.field("abort_rate", R.abortRate());
      Out.Json.field("p99_ns", static_cast<std::uint64_t>(S.P99Ns));
      Out.Json.field("jain_fairness", R.fairness());
      emitAccelStats(Out.Json, Adapter, /*Capacity=*/4096);
      Out.Json.endRecord();
    }
  }
}

/// The oracle acceptance: drive the mask full-width and back to one
/// shard on an instrumented-policy instance, then count a solo
/// push/pop. Exactly six shared accesses each, or the adaptive facade
/// has taxed the paper's bound.
bool soloSixAccessAfterShrink() {
  AdaptiveShardedStack<8, Compact64, TasLock, NoBackoff, Instrumented> S(
      /*NumThreads=*/2, /*TotalCapacity=*/4096);
  while (S.activeShards() < S.maxShards())
    if (!S.growForTesting(0))
      return false;
  while (S.activeShards() > 1)
    if (!S.shrinkForTesting(0))
      return false;
  const std::uint64_t PushCost =
      countAccesses([&] { (void)S.push(0, 7); }).total();
  const std::uint64_t PopCost =
      countAccesses([&] { (void)S.pop(0); }).total();
  std::cout << "solo-after-shrink access counts: push " << PushCost
            << ", pop " << PopCost << " (bound: 6)\n";
  return PushCost == 6 && PopCost == 6;
}

} // namespace

int main() {
  printRegisterPolicy(std::cout);

  TablePrinter Table(
      {"object", "threads", "phase", "throughput", "p99", "shards"});
  Table.setTitle("E18: adaptive sharding vs static shard counts");
  JsonReporter Json;
  SweepOutput Out{Table, Json, {}};

  runRows<StaticShardAdapter<1>>(Out, "static(1xfig3)");
  runRows<StaticShardAdapter<2>>(Out, "static(2xfig3)");
  runRows<StaticShardAdapter<4>>(Out, "static(4xfig3)");
  runRows<StaticShardAdapter<8>>(Out, "static(8xfig3)");
  runRows<AdaptiveStackAdapter>(Out, "adaptive(<=8xfig3)");

  Table.print(std::cout);

  // Oracle check first: it is host-independent and must always hold.
  const bool SixAccess = soloSixAccessAfterShrink();

  const std::uint32_t HwThreads = std::thread::hardware_concurrency();
  const std::uint32_t Top = threadSweep().back();
  const bool AcceptanceSkipped = HwThreads < 4 || Top < 4;
  Json.beginRecord();
  Json.field("record", "acceptance");
  Json.field("acceptance_skipped", AcceptanceSkipped);
  Json.field("solo_six_access_after_shrink", SixAccess);
  Json.endRecord();

  const std::string JsonPath = "BENCH_adaptive.json";
  if (!Json.writeFile(JsonPath)) {
    std::cerr << "error: could not write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";

  if (!SixAccess) {
    std::cerr << "FAIL: solo cost after shrink-to-1 is not the paper's "
                 "six-access bound\n";
    return 1;
  }
  std::cout << "PASS: solo cost after shrink-to-1 is exactly 6 accesses\n";

  if (AcceptanceSkipped) {
    std::cout << "SKIP: competitiveness check needs >=4 hardware threads "
                 "and a >=4-thread sweep point (host has "
              << HwThreads << ", sweep tops out at " << Top << ")\n";
    return 0;
  }

  // Competitiveness: per phase at the top thread count, adaptive within
  // 15% of the best static shard count.
  bool Competitive = true;
  for (const LoadPhase &Phase : Phases) {
    double BestStatic = 0.0;
    for (const char *Object : {"static(1xfig3)", "static(2xfig3)",
                               "static(4xfig3)", "static(8xfig3)"})
      BestStatic = std::max(BestStatic, Out.TopPhase[Object][Phase.Id]);
    const double Adaptive = Out.TopPhase["adaptive(<=8xfig3)"][Phase.Id];
    const bool Ok = Adaptive >= 0.85 * BestStatic;
    std::cout << "phase " << Phase.Name << " at " << Top
              << " threads: adaptive " << formatRate(Adaptive)
              << " vs best static " << formatRate(BestStatic)
              << (Ok ? "  OK" : "  BEHIND") << "\n";
    Competitive = Competitive && Ok;
  }
  if (!Competitive) {
    std::cerr << "FAIL: adaptive fell more than 15% behind the best "
                 "static shard count in some phase\n";
    return 1;
  }
  std::cout << "PASS: adaptive within 15% of the best static shard count "
               "in every phase\n";
  return 0;
}
