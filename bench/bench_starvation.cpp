//===- bench/bench_starvation.cpp - Experiment E4 ------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E4 — starvation-freedom of Figure 3 (Theorem 1). Under sustained
/// contention, compares the Figure 3 stack against the non-blocking stack
/// (only lock-free: individual threads may retry unboundedly) and the
/// TAS-locked stack (deadlock-free only: unfair handoff). Reported:
/// latency tail (p50/p99/max) and the service ratio — slowest thread's
/// mean op latency over the fastest thread's (1 = perfectly even
/// service). The paper's claim shows up as Figure 3 keeping the service
/// ratio small with a bounded tail, with no aborts surfaced.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "runtime/TablePrinter.h"

#include <iostream>

namespace {

template <typename AdapterT>
void addRows(csobj::TablePrinter &Table, const char *Name) {
  using namespace csobj;
  using namespace csobj::bench;
  for (const std::uint32_t Threads : threadSweep()) {
    const WorkloadReport R = runCell<AdapterT>(Threads);
    const LatencySummary S = summarize(R.mergedLatency());
    Table.addRow({Name, std::to_string(Threads),
                  formatNs(static_cast<double>(S.P50Ns)),
                  formatNs(static_cast<double>(S.P99Ns)),
                  formatNs(static_cast<double>(S.MaxNs)),
                  formatDouble(R.meanLatencyRatio(), 2),
                  std::to_string(R.totalAborts()),
                  formatRate(R.throughputOpsPerSec())});
  }
}

} // namespace

int main() {
  using namespace csobj;
  using namespace csobj::bench;

  printRegisterPolicy(std::cout);
  TablePrinter Table({"stack", "threads", "p50", "p99", "max",
                      "svc-ratio", "aborts", "throughput"});
  Table.setTitle("E4: starvation-freedom — latency tail and fairness "
                 "under contention (think=0, 50/50)");
  addRows<CsStackAdapter>(Table, "cs(fig3)");
  addRows<NonBlockingStackAdapter>(Table, "non-blocking(fig2)");
  addRows<LockedStackAdapter<TasLock>>(Table, "locked(tas)");
  addRows<LockedStackAdapter<TicketLock>>(Table, "locked(ticket)");
  Table.print(std::cout);

  std::cout << "\npaper claim: fig3 surfaces zero aborts and keeps even "
               "per-thread service (svc-ratio near 1) with a bounded "
               "tail, while remaining lock-free in the common case\n";
  return 0;
}
