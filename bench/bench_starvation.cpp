//===- bench/bench_starvation.cpp - Experiment E4 ------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E4 — starvation-freedom of Figure 3 (Theorem 1). Under sustained
/// contention, compares the Figure 3 stack against the non-blocking stack
/// (only lock-free: individual threads may retry unboundedly), the
/// TAS-locked stack (deadlock-free only: unfair handoff) and the
/// crash-tolerant Figure 3 (core/CrashTolerantStack.h). Reported:
/// latency tail (p50/p99/max) and the service ratio — slowest thread's
/// mean op latency over the fastest thread's (1 = perfectly even
/// service). The paper's claim shows up as Figure 3 keeping the service
/// ratio small with a bounded tail, with no aborts surfaced.
///
/// The second table injects lock-holder stalls — a saboteur thread
/// acquires the lease (locks/LeasedLock.h) and sits on it for a fixed
/// outage while live workers stay contended — and reports the
/// crash-tolerant stack's *degradation rate*: the fraction of operations
/// that fell back to the lock-free Figure 2 loop instead of completing
/// on the starvation-free protected path. With no outages the rate is
/// (near) zero; during an outage the patience budget runs out and the
/// fallback absorbs it instead of hanging, revoking the stuck lease.
///
/// Results are also written to BENCH_starvation.json for plots and
/// regression tooling. CSOBJ_CHAOS overrides the chaos level of every
/// cell (see bench/BenchCommon.h).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "obs/JsonReporter.h"

#include "conformance/Params.h"
#include "runtime/TablePrinter.h"

#include <atomic>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>

namespace {

template <typename AdapterT>
void addRows(csobj::TablePrinter &Table, csobj::bench::JsonReporter &Json,
             const char *Name) {
  using namespace csobj;
  using namespace csobj::bench;
  for (const std::uint32_t Threads : threadSweep()) {
    const WorkloadReport R = runCell<AdapterT>(Threads);
    const LatencySummary S = summarize(R.mergedLatency());
    Table.addRow({Name, std::to_string(Threads),
                  formatNs(static_cast<double>(S.P50Ns)),
                  formatNs(static_cast<double>(S.P99Ns)),
                  formatNs(static_cast<double>(S.MaxNs)),
                  formatDouble(R.meanLatencyRatio(), 2),
                  std::to_string(R.totalAborts()),
                  formatRate(R.throughputOpsPerSec())});
    Json.beginRecord();
    Json.field("experiment", "E4a_fairness");
    Json.field("stack", Name);
    Json.field("threads", Threads);
    Json.field("ops", R.totalOps());
    Json.field("p50_ns", S.P50Ns);
    Json.field("p99_ns", S.P99Ns);
    Json.field("max_ns", S.MaxNs);
    Json.field("service_ratio", R.meanLatencyRatio());
    Json.field("aborts", R.totalAborts());
    Json.field("throughput_ops_per_sec", R.throughputOpsPerSec());
    Json.endRecord();
  }
}

/// Patience used by the E4b cells, in consecutive stable observations.
/// Deliberately small so survivors' doorway + lease budgets run out well
/// inside an injected outage: a patience-256 wait costs >=6ms of wall
/// time (observations past 128 sleep 50us each, support/SpinWait.h, and
/// the sleeps stretch on a loaded single-core host), so the outages
/// below hold the lease for tens of ms — while ordinary protected
/// sections (~1us) stay orders of magnitude below patience, keeping
/// false suspicion out of the no-outage baseline.
constexpr std::uint32_t BenchPatience = 256;

/// One cell of the lock-holder-stall table: \p Threads live workers run
/// the usual contended closed loop while a *saboteur* thread repeatedly
/// acquires the lease out-of-band and sits on it for \p HoldNs — a
/// deterministic lock-holder outage, the lease-expiry scenario of
/// locks/LeasedLock.h. (Stalling a random worker instead does not work:
/// a frozen worker generates no contention, so nobody is on the slow
/// path when the lock is stuck.) Reported: how often workers' slow paths
/// degraded to the lock-free fallback rather than hanging, and how many
/// of the saboteur's leases were revoked under it.
void addOutageRow(csobj::TablePrinter &Table,
                  csobj::bench::JsonReporter &Json, std::uint32_t Threads,
                  std::uint64_t HoldNs, std::uint64_t GapNs) {
  using namespace csobj;
  using namespace csobj::bench;
  ChaosSettings Chaos; // Yield channel only: workers must stay contended.
  if (const auto Env = chaosFromEnv())
    Chaos = *Env;
  // One extra slot for the saboteur, which never runs operations.
  CrashTolerantStackAdapter Adapter(Threads + 1, conformance::BenchCapacity,
                                    BenchPatience);
  const std::uint32_t SaboteurTid = Threads;
  std::atomic<bool> Stop{false};
  std::uint64_t Outages = 0;
  std::thread Saboteur;
  if (HoldNs > 0)
    Saboteur = std::thread([&] {
      auto &Guard = Adapter.Stack.skeleton().guard();
      while (!Stop.load(std::memory_order_relaxed)) {
        if (Guard.lockBounded(SaboteurTid, BenchPatience) ==
            LeaseAcquire::Acquired) {
          ++Outages;
          const auto Until = std::chrono::steady_clock::now() +
                             std::chrono::nanoseconds(HoldNs);
          while (std::chrono::steady_clock::now() < Until &&
                 !Stop.load(std::memory_order_relaxed))
            std::this_thread::yield();
          Guard.unlock(SaboteurTid); // May find the lease revoked.
        }
        std::this_thread::sleep_for(std::chrono::nanoseconds(GapNs));
      }
    });
  const WorkloadReport R = runCellOn(Adapter, Threads, Chaos);
  Stop.store(true, std::memory_order_relaxed);
  if (Saboteur.joinable())
    Saboteur.join();
  const DegradationStats Stats = Adapter.stats();
  const double Ops = static_cast<double>(R.totalOps());
  const double DegradationRate =
      Ops > 0 ? static_cast<double>(Stats.Degradations) / Ops : 0;
  Table.addRow({std::to_string(Threads), std::to_string(Outages),
                formatNs(static_cast<double>(HoldNs)),
                formatDouble(DegradationRate * 100, 3) + "%",
                std::to_string(Stats.ProtectedOps),
                std::to_string(Stats.Revocations),
                std::to_string(Stats.LostLeases),
                formatRate(R.throughputOpsPerSec())});
  Json.beginRecord();
  Json.field("experiment", "E4b_degradation");
  Json.field("stack", CrashTolerantStackAdapter::Name);
  Json.field("threads", Threads);
  Json.field("outages", Outages);
  Json.field("hold_ns", HoldNs);
  Json.field("gap_ns", GapNs);
  Json.field("ops", R.totalOps());
  Json.field("degradations", Stats.Degradations);
  Json.field("degradation_rate", DegradationRate);
  Json.field("protected_ops", Stats.ProtectedOps);
  Json.field("doorway_timeouts", Stats.DoorwayTimeouts);
  Json.field("lease_timeouts", Stats.LeaseTimeouts);
  Json.field("revocations", Stats.Revocations);
  Json.field("lost_leases", Stats.LostLeases);
  Json.field("throughput_ops_per_sec", R.throughputOpsPerSec());
  Json.endRecord();
}

} // namespace

int main() {
  using namespace csobj;
  using namespace csobj::bench;

  printRegisterPolicy(std::cout);
  JsonReporter Json;

  {
    TablePrinter Table({"stack", "threads", "p50", "p99", "max",
                        "svc-ratio", "aborts", "throughput"});
    Table.setTitle("E4a: starvation-freedom — latency tail and fairness "
                   "under contention (think=0, 50/50)");
    addRows<CsStackAdapter>(Table, Json, "cs(fig3)");
    addRows<CrashTolerantStackAdapter>(Table, Json, "crash-tolerant");
    addRows<NonBlockingStackAdapter>(Table, Json, "non-blocking(fig2)");
    addRows<LockedStackAdapter<TasLock>>(Table, Json, "locked(tas)");
    addRows<LockedStackAdapter<TicketLock>>(Table, Json, "locked(ticket)");
    Table.print(std::cout);
  }

  {
    TablePrinter Table({"threads", "outages", "hold", "degradation",
                        "protected", "revocations", "lost leases",
                        "throughput"});
    Table.setTitle("E4b: crash-tolerant fig3 under injected lock-holder "
                   "stalls — degradation rate of the slow path");
    const std::uint32_t Threads = quickMode() ? 2 : 4;
    addOutageRow(Table, Json, Threads, /*HoldNs=*/0, /*GapNs=*/0);
    addOutageRow(Table, Json, Threads, /*HoldNs=*/40'000'000,
                 /*GapNs=*/10'000'000);
    addOutageRow(Table, Json, Threads, /*HoldNs=*/80'000'000,
                 /*GapNs=*/20'000'000);
    Table.print(std::cout);
  }

  const std::string JsonPath = "BENCH_starvation.json";
  if (!Json.writeFile(JsonPath)) {
    std::cerr << "error: could not write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";

  std::cout << "\npaper claim: fig3 surfaces zero aborts and keeps even "
               "per-thread service (svc-ratio near 1) with a bounded "
               "tail, while remaining lock-free in the common case;\n"
               "the crash-tolerant variant matches it when no stall is "
               "injected and degrades gracefully (bounded degradation "
               "rate, no hang) when lock holders stall past patience\n";
  return 0;
}
