//===- bench/bench_contention_managers.cpp - Experiment E11 --------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E11 — contention-manager x register-policy sweep. Two questions the
/// paper's "efficiency in the common case" argument raises but cannot
/// answer on 2011 hardware:
///
///  1. How much of the library's single-thread cost is instrumentation?
///     Every AtomicRegister access under the Instrumented policy pays a
///     thread-local lookup for the access counter and the schedule hook.
///     The Fast policy compiles registers down to bare std::atomic; the
///     solo rows of this sweep measure the difference directly, and the
///     run fails loudly if Fast is not at least as fast as Instrumented
///     at one thread (the zero-overhead claim of the fast path).
///
///  2. Which retry-pacing discipline should the Figure 2 loop use? The
///     sweep crosses the ContentionManager implementations (none / exp /
///     yield / adaptive) with thread counts on both the non-blocking
///     stack (managers pace the unprotected weak-op retry) and the
///     Figure 3 stack (managers pace the lock-protected retry).
///
/// Results go to stdout as a table and to BENCH_stack_throughput.json as
/// a flat JSON array (schema documented in EXPERIMENTS.md) for plotting
/// and regression tracking. Chaos injection is disabled for this sweep:
/// the chaos hook only fires under the Instrumented policy, so any
/// nonzero setting would bias the policy comparison.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "obs/JsonReporter.h"
#include "obs/MetricsJson.h"

#include "runtime/TablePrinter.h"

#include <cstdint>
#include <iostream>
#include <string>

namespace {

using namespace csobj;
using namespace csobj::bench;

/// Figure 2 stack with explicit policy and manager.
template <typename Policy, typename Manager>
struct NbStackCell {
  static constexpr const char *Name = "nb-stack";
  NbStackCell(std::uint32_t, std::uint32_t Capacity) : Stack(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &Retries) {
    if (IsPush) {
      const auto R = Stack.pushCounting(V);
      Retries += R.Retries;
      return fromPush(R.Result);
    }
    const auto R = Stack.popCounting();
    Retries += R.Retries;
    return fromPop(R.Result);
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(V); }
  NonBlockingStack<Compact64, Manager, Policy> Stack;
};

/// Figure 3 stack with explicit policy and manager (lock matches policy).
template <typename Policy, typename Manager>
struct CsStackCell {
  static constexpr const char *Name = "cs-stack";
  CsStackCell(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const { return Stack.lastPath(Tid); }
  ContentionSensitiveStack<Compact64, TasLockT<Policy>, Manager, Policy>
      Stack;
};

struct SweepOutput {
  TablePrinter &Table;
  JsonReporter &Json;
};

template <template <typename, typename> class Cell, typename Policy,
          typename Manager>
void runRow(SweepOutput &Out, const char *Object) {
  for (const std::uint32_t Threads : threadSweep()) {
    // ChaosPermille=0: keep the Instrumented/Fast comparison honest (the
    // chaos hook is a no-op under Fast). The adapter is built here, not
    // inside runCell, so its metrics survive the run for reporting.
    ChaosSettings Chaos;
    Chaos.YieldPermille = 0;
    if (const std::optional<ChaosSettings> Env = chaosFromEnv())
      Chaos = *Env;
    Cell<Policy, Manager> Adapter(Threads, /*Capacity=*/4096);
    const WorkloadReport R =
        runCellOn(Adapter, Threads, Chaos, /*ThinkNs=*/0, /*PushPercent=*/50,
                  /*Capacity=*/4096);
    const double Throughput = R.throughputOpsPerSec();
    Out.Table.addRow({Object, Policy::Name, Manager::Name,
                      std::to_string(Threads), formatRate(Throughput),
                      formatDouble(R.meanRetries(), 3)});
    Out.Json.beginRecord();
    Out.Json.field("object", Object);
    Out.Json.field("policy", Policy::Name);
    Out.Json.field("manager", Manager::Name);
    Out.Json.field("threads", Threads);
    Out.Json.field("ops", R.totalOps());
    Out.Json.field("duration_sec", R.DurationSec);
    Out.Json.field("throughput_ops_per_sec", Throughput);
    Out.Json.field("abort_rate", R.abortRate());
    Out.Json.field("mean_retries", R.meanRetries());
    Out.Json.field("mean_latency_ratio", R.meanLatencyRatio());
    if constexpr (requires { Adapter.pathSnapshot(); })
      obs::emitPathBreakdown(Out.Json, Adapter.pathSnapshot());
    Out.Json.endRecord();
  }
}

/// Best-of-N single-thread throughput: the fast-path acceptance check
/// compares policies on this, not on one sweep cell, so a scheduler
/// hiccup in a short quick-mode run cannot flip the verdict.
template <typename Policy>
double soloBestOf(std::uint32_t Repeats) {
  double Best = 0;
  for (std::uint32_t I = 0; I < Repeats; ++I) {
    const WorkloadReport R = runCell<NbStackCell<Policy, NoBackoff>>(
        /*Threads=*/1, /*ThinkNs=*/0, /*PushPercent=*/50, /*Capacity=*/4096,
        /*ChaosPermille=*/0);
    Best = std::max(Best, R.throughputOpsPerSec());
  }
  return Best;
}

template <typename Policy>
void runPolicy(SweepOutput &Out) {
  runRow<NbStackCell, Policy, NoBackoff>(Out, "nb-stack");
  runRow<NbStackCell, Policy, ExponentialBackoff>(Out, "nb-stack");
  runRow<NbStackCell, Policy, YieldBackoff>(Out, "nb-stack");
  runRow<NbStackCell, Policy, AdaptiveBackoff>(Out, "nb-stack");
  runRow<CsStackCell, Policy, NoBackoff>(Out, "cs-stack");
  runRow<CsStackCell, Policy, AdaptiveBackoff>(Out, "cs-stack");
}

} // namespace

int main() {
  printRegisterPolicy(std::cout);

  TablePrinter Table(
      {"object", "policy", "manager", "threads", "throughput", "retries/op"});
  Table.setTitle("E11: contention managers x register policy x threads "
                 "(50/50, no chaos)");
  JsonReporter Json;
  SweepOutput Out{Table, Json};

  runPolicy<Instrumented>(Out);
  runPolicy<Fast>(Out);

  Table.print(std::cout);

  const std::string JsonPath = "BENCH_stack_throughput.json";
  if (!Json.writeFile(JsonPath)) {
    std::cerr << "error: could not write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";

  // The fast-path acceptance check: at one thread with no manager, the
  // Fast policy must not be slower than Instrumented — it runs strictly
  // less code per access (no thread-local counter/sched-hook lookups).
  const std::uint32_t Repeats = 3;
  const double Inst = soloBestOf<Instrumented>(Repeats);
  const double FastTp = soloBestOf<csobj::Fast>(Repeats);
  std::cout << "solo nb-stack (best of " << Repeats << "): instrumented "
            << formatRate(Inst) << "  fast " << formatRate(FastTp);
  if (Inst > 0)
    std::cout << "  (fast/instrumented = "
              << formatDouble(FastTp / Inst, 2) << "x)";
  std::cout << "\n";
  if (!(FastTp > Inst)) {
    std::cerr << "FAIL: fast register policy not faster than instrumented "
                 "on the uncontended path\n";
    return 1;
  }
  std::cout << "PASS: fast register policy beats instrumented on the "
               "uncontended path\n";
  return 0;
}
