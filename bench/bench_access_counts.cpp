//===- bench/bench_access_counts.cpp - Experiment E1 ---------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E1 — the paper's quantitative headline (Abstract, Section 4, Theorem
/// 1): a contention-free strong operation on the Figure 3 stack uses no
/// lock and performs exactly SIX shared-memory accesses; the weak
/// operations of Figure 1 perform five; boundary answers (full/empty)
/// three. This binary measures the counts mechanically through the
/// instrumented registers and prints the per-kind breakdown, alongside
/// the same costs for every other implementation in the library so the
/// "cheap common case" claim is visible in context.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "memory/ChaosHook.h"
#include "runtime/SpinBarrier.h"
#include "support/SplitMix64.h"

#include "core/ContentionSensitiveCounter.h"
#include "locks/LamportFastLock.h"
#include "locks/StarvationFreeLock.h"
#include "memory/AccessCounter.h"
#include "runtime/TablePrinter.h"

#include <cstdlib>
#include <functional>
#include <iostream>
#include <thread>
#include <utility>
#include <vector>

namespace csobj {
namespace {

struct Probe {
  const char *Object;
  const char *Operation;
  std::function<AccessCounts()> Run;
};

void addRow(TablePrinter &Table, const char *Object, const char *Operation,
            const AccessCounts &C) {
  Table.addRow({Object, Operation, std::to_string(C.total()),
                std::to_string(C.Reads), std::to_string(C.Writes),
                std::to_string(C.CasAttempts)});
}

} // namespace
} // namespace csobj

int main() {
  using namespace csobj;
  bench::printRegisterPolicy(std::cout);

  TablePrinter Table({"object", "operation (solo)", "accesses", "reads",
                      "writes", "cas"});
  Table.setTitle("E1: shared-memory accesses per contention-free operation");

  // --- Figure 1: the weak operations -------------------------------------
  {
    AbortableStack<> Stack(8);
    addRow(Table, "abortable stack (fig1)", "weak_push -> done",
           countAccesses([&] { (void)Stack.weakPush(1); }));
    addRow(Table, "abortable stack (fig1)", "weak_pop -> value",
           countAccesses([&] { (void)Stack.weakPop(); }));
    addRow(Table, "abortable stack (fig1)", "weak_pop -> empty",
           countAccesses([&] { (void)Stack.weakPop(); }));
  }
  {
    AbortableStack<> Stack(1);
    (void)Stack.weakPush(1);
    addRow(Table, "abortable stack (fig1)", "weak_push -> full",
           countAccesses([&] { (void)Stack.weakPush(2); }));
  }

  // --- Figure 3: the paper's six-access claim -----------------------------
  {
    ContentionSensitiveStack<> Stack(4, 8);
    addRow(Table, "cs stack (fig3)", "strong_push -> done",
           countAccesses([&] { (void)Stack.push(0, 1); }));
    addRow(Table, "cs stack (fig3)", "strong_pop -> value",
           countAccesses([&] { (void)Stack.pop(0); }));
    addRow(Table, "cs stack (fig3)", "strong_pop -> empty",
           countAccesses([&] { (void)Stack.pop(0); }));
  }

  // --- The queue family ----------------------------------------------------
  {
    AbortableQueue<> Queue(8);
    addRow(Table, "abortable queue", "weak_enqueue -> done",
           countAccesses([&] { (void)Queue.weakEnqueue(1); }));
    addRow(Table, "abortable queue", "weak_dequeue -> value",
           countAccesses([&] { (void)Queue.weakDequeue(); }));
  }
  {
    ContentionSensitiveQueue<> Queue(4, 8);
    addRow(Table, "cs queue (fig3)", "strong_enqueue -> done",
           countAccesses([&] { (void)Queue.enqueue(0, 1); }));
    addRow(Table, "cs queue (fig3)", "strong_dequeue -> value",
           countAccesses([&] { (void)Queue.dequeue(0); }));
  }

  // --- Counter instantiation ----------------------------------------------
  {
    ContentionSensitiveCounter<> Counter(2);
    addRow(Table, "cs counter (fig3)", "strong_add",
           countAccesses([&] { (void)Counter.add(0, 1); }));
  }

  // --- Acceleration layer (src/perf/): the solo bound must survive --------
  // The rescue/combining/sharding machinery only engages after the
  // Figure 3 fast path fails, so every solo row must match fig3 exactly.
  {
    EliminatingContentionSensitiveStack<> Stack(4, 8);
    addRow(Table, "eliminating stack (fig3+elim)", "strong_push -> done",
           countAccesses([&] { (void)Stack.push(0, 1); }));
    addRow(Table, "eliminating stack (fig3+elim)", "strong_pop -> value",
           countAccesses([&] { (void)Stack.pop(0); }));
    addRow(Table, "eliminating stack (fig3+elim)", "strong_pop -> empty",
           countAccesses([&] { (void)Stack.pop(0); }));
  }
  {
    CombiningStack<> Stack(4, 8);
    addRow(Table, "combining stack (fig3+fc)", "strong_push -> done",
           countAccesses([&] { (void)Stack.push(0, 1); }));
    addRow(Table, "combining stack (fig3+fc)", "strong_pop -> value",
           countAccesses([&] { (void)Stack.pop(0); }));
  }
  {
    ShardedStack<4> Stack(4, 8);
    addRow(Table, "sharded stack (4xfig3)", "strong_push -> done",
           countAccesses([&] { (void)Stack.push(0, 1); }));
    addRow(Table, "sharded stack (4xfig3)", "strong_pop -> value",
           countAccesses([&] { (void)Stack.pop(0); }));
  }

  // --- Batched group ops: solo batches keep the per-element budget --------
  // A contention-free push_all/pop_all of k elements runs k shortcut
  // attempts (6 accesses each) and never touches the seam, so the batch
  // costs exactly 6k — batching is free when there is no contention, and
  // these rows prove compiling the batch machinery in did not perturb
  // the solo bound.
  {
    ContentionSensitiveStack<> Stack(4, 16);
    std::uint32_t Vals[4] = {1, 2, 3, 4};
    std::uint32_t Out[4];
    addRow(Table, "cs stack (fig3)", "push_all x4 -> done",
           countAccesses([&] { (void)Stack.push_all(0, Vals, 4); }));
    addRow(Table, "cs stack (fig3)", "pop_all x4 -> values",
           countAccesses([&] { (void)Stack.pop_all(0, Out, 4); }));
  }
  {
    CombiningStack<> Stack(4, 16);
    std::uint32_t Vals[4] = {1, 2, 3, 4};
    std::uint32_t Out[4];
    addRow(Table, "combining stack (fig3+fc)", "push_all x4 -> done",
           countAccesses([&] { (void)Stack.push_all(0, Vals, 4); }));
    addRow(Table, "combining stack (fig3+fc)", "pop_all x4 -> values",
           countAccesses([&] { (void)Stack.pop_all(0, Out, 4); }));
  }
  {
    ContentionSensitiveQueue<> Queue(4, 16);
    std::uint32_t Vals[4] = {1, 2, 3, 4};
    std::uint32_t Out[4];
    addRow(Table, "cs queue (fig3)", "enqueue_all x4 -> done",
           countAccesses([&] { (void)Queue.enqueue_all(0, Vals, 4); }));
    addRow(Table, "cs queue (fig3)", "dequeue_all x4 -> values",
           countAccesses([&] { (void)Queue.dequeue_all(0, Out, 4); }));
  }

  // --- Baselines for context ----------------------------------------------
  {
    TreiberStack Stack(8);
    addRow(Table, "treiber stack", "push",
           countAccesses([&] { (void)Stack.push(1); }));
    addRow(Table, "treiber stack", "pop",
           countAccesses([&] { (void)Stack.pop(); }));
  }
  {
    LockedStack<TasLock> Stack(2, 8);
    addRow(Table, "locked stack (tas)", "push (lock+unlock)",
           countAccesses([&] { (void)Stack.push(0, 1); }));
  }
  {
    LockedStack<TicketLock> Stack(2, 8);
    addRow(Table, "locked stack (ticket)", "push (lock+unlock)",
           countAccesses([&] { (void)Stack.push(0, 1); }));
  }

  // --- Lock substrate: Lamport's fast lock ([16]) and Section 4.4 ---------
  {
    LamportFastLock Lock(8);
    addRow(Table, "lamport fast lock [16]", "lock+unlock",
           countAccesses([&] {
             Lock.lock(0);
             Lock.unlock(0);
           }));
  }
  {
    StarvationFreeLock<TasLock> Lock(8);
    addRow(Table, "sf(tas) lock (sec 4.4)", "lock+unlock",
           countAccesses([&] {
             Lock.lock(0);
             Lock.unlock(0);
           }));
  }

  Table.print(std::cout);
  std::cout << "\npaper claims (solo): weak op = 5, strong op = 6 (Thm 1),"
            << "\nfull/empty answer = 3 (weak) / 4 (strong);"
            << " solo k-batch = 6k (stack) / 7k (queue);"
            << " Lamport fast lock = 7 per CS entry+exit [16]\n\n";

  // E1b: mean accesses per operation under contention — how far each
  // construction drifts from its contention-free budget when operations
  // start colliding (asynchrony injection as in E2).
  {
    TablePrinter Contended({"object", "threads", "mean-accesses/op",
                            "cas-failures/op"});
    Contended.setTitle("E1b: accesses per op under contention "
                       "(asynchrony 100 permille, 50/50)");
    const bool Quick = std::getenv("CSOBJ_BENCH_QUICK") != nullptr &&
                       std::getenv("CSOBJ_BENCH_QUICK")[0] == '1';
    const std::uint32_t OpsPerThread = Quick ? 4000 : 20000;
    for (const std::uint32_t Threads : {1u, 2u, 4u}) {
      auto RunCounted = [&](auto DoOp) {
        std::vector<AccessCounts> Counts(Threads);
        SpinBarrier Barrier(Threads);
        std::vector<std::thread> Workers;
        for (std::uint32_t T = 0; T < Threads; ++T)
          Workers.emplace_back([&, T] {
            ChaosHook Chaos(T + 11, Threads > 1 ? 100 : 0);
            SchedHookScope ChaosScope(Chaos);
            AccessCounterScope CountScope(Counts[T]);
            SplitMix64 Rng(T + 500);
            Barrier.arriveAndWait();
            for (std::uint32_t I = 0; I < OpsPerThread; ++I)
              DoOp(T, Rng.chance(1, 2),
                   static_cast<std::uint32_t>(Rng.below(9999)) + 1);
          });
        for (auto &W : Workers)
          W.join();
        AccessCounts Total;
        for (const AccessCounts &C : Counts) {
          Total.Reads += C.Reads;
          Total.Writes += C.Writes;
          Total.CasAttempts += C.CasAttempts;
          Total.CasFailures += C.CasFailures;
          Total.Rmw += C.Rmw;
        }
        const double Ops = static_cast<double>(Threads) * OpsPerThread;
        return std::pair<double, double>(
            static_cast<double>(Total.total()) / Ops,
            static_cast<double>(Total.CasFailures) / Ops);
      };

      {
        NonBlockingStack<> Stack(4096);
        for (int I = 0; I < 2048; ++I)
          (void)Stack.push(static_cast<std::uint32_t>(I) + 1);
        const auto [Mean, Failures] =
            RunCounted([&](std::uint32_t, bool IsPush, std::uint32_t V) {
              if (IsPush)
                (void)Stack.push(V);
              else
                (void)Stack.pop();
            });
        Contended.addRow({"non-blocking(fig2)", std::to_string(Threads),
                          formatDouble(Mean, 2), formatDouble(Failures, 3)});
      }
      {
        ContentionSensitiveStack<> Stack(Threads, 4096);
        for (int I = 0; I < 2048; ++I)
          (void)Stack.push(0, static_cast<std::uint32_t>(I) + 1);
        const auto [Mean, Failures] =
            RunCounted([&](std::uint32_t T, bool IsPush, std::uint32_t V) {
              if (IsPush)
                (void)Stack.push(T, V);
              else
                (void)Stack.pop(T);
            });
        Contended.addRow({"cs(fig3)", std::to_string(Threads),
                          formatDouble(Mean, 2), formatDouble(Failures, 3)});
      }
    }
    Contended.print(std::cout);
    std::cout << "\nthe solo rows sit at the analytical 5 (+epsilon for "
                 "full/empty answers) and 6; contention adds retries "
                 "(fig2) or doorway traffic (fig3)\n";
  }
  return 0;
}
