//===- bench/bench_soak.cpp - Experiment E15 (service-mode soak) ---------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E15 — service-mode soak of the crash-tolerant stack (src/soak/). The
/// open-loop harness replays a diurnal rate ramp with Poisson bursts and
/// Zipf hot keys against a pool of crash-tolerant stacks while a fault
/// campaign crashes and stalls random workers for the whole run; crashed
/// workers resurrect under the same id, exercising RecoverableArbiter
/// reclamation continuously. Per-window records (arrivals, backlog,
/// path deltas, latency percentiles, conservation) plus the SLO verdict
/// go to BENCH_soak.json; scripts/check_trajectory.py diffs that file
/// against the committed baseline in CI.
///
/// Three scenarios share the schedule: the bounded crash-tolerant stack
/// (lease/arbiter reclamation) and the unbounded contention-sensitive
/// stack (hazard-pointer reclamation, where a crashed worker's retire
/// backlog is drained by its resurrected successor) run the full
/// crash+stall campaign; the adaptive sharded facade runs the same
/// schedule under the stall phases only (its shards hold a RAII TasLock,
/// so worker crashes are out of contract — the same boundary that keeps
/// its battery entry stall-plan-only) and soaks the obs control loop:
/// the diurnal ramp drives the mask up through the peaks and back down
/// through the troughs, with reconfiguration counters in the record.
/// One record per scenario.
///
/// Full mode: ~60s soak, three campaign phases (calm / crash storm /
/// stall bursts). CSOBJ_BENCH_QUICK=1: ~3s smoke with the same
/// structure, for CI schema + conservation validation.
///
/// Exit status: 0 iff the SLO verdict is PASS (per-window conservation
/// and final tight conservation included).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "obs/JsonReporter.h"
#include "obs/MetricsJson.h"
#include "runtime/TablePrinter.h"
#include "soak/SoakHarness.h"

#include <cstdint>
#include <iostream>
#include <string>

namespace {

using namespace csobj;
using namespace csobj::bench;

soak::SoakConfig makeConfig(bool Quick) {
  soak::SoakConfig Config;
  Config.Workers = 3;
  Config.Capacity = 4096;
  Config.Seed = 42;
  Config.QueueCapacity = 1u << 16;
  Config.ChaosYieldPermille = DefaultChaosPermille;
  // 8s: far beyond any planned stall (ms-scale), yet a genuine wedge is
  // permanent and gets caught at any deadline — the slack only filters
  // hypervisor-steal bursts on shared single-core CI hosts, which at 2s
  // produced rare false stuck-op reports against healthy scenarios.
  Config.OpDeadlineNs = 8'000'000'000;

  // Diurnal profile with a burst overlay. Rates are sized for the
  // single-core instrumented build CI runs on: the trough is easily
  // sustained, the peak plus a x3 burst visibly backs the queue up.
  soak::ArrivalSchedule &Sched = Config.Schedule;
  Sched.Keys = 4;
  Sched.ZipfS = 1.2;
  Sched.PushPercent = 50;
  Sched.BurstMultiplier = 3.0;
  if (Quick) {
    Config.DurationSec = 3.0;
    Config.WindowSec = 0.5;
    Sched.Phases = {{1.0, 1500, 3000}, {1.0, 3000, 1500}};
    Sched.BurstMeanPeriodSec = 1.0;
    Sched.BurstDurationSec = 0.2;
  } else {
    Config.DurationSec = 60.0;
    Config.WindowSec = 2.0;
    Sched.Phases = {{10.0, 4000, 8000}, {10.0, 8000, 4000}};
    Sched.BurstMeanPeriodSec = 8.0;
    Sched.BurstDurationSec = 1.0;
  }

  // Three-phase recurring campaign, cycled: calm, crash storm, stall
  // bursts. Victims are random workers; crashes unwind mid-operation
  // and the worker resurrects immediately.
  soak::Campaign &Camp = Config.Faults;
  if (Quick)
    Camp.Phases = {{0.8, 0, 0, 0},
                   {1.1, /*crash*/ 0.25, 0, 0},
                   {1.1, 0, /*stall*/ 0.2, /*grants*/ 1000}};
  else
    Camp.Phases = {{6.0, 0, 0, 0},
                   {7.0, /*crash*/ 1.5, 0, 0},
                   {7.0, /*crash*/ 4.0, /*stall*/ 1.0, /*grants*/ 2000}};

  // Budgets: generous enough to hold on a noisy single-core CI host,
  // tight enough that a wedged lock, a leaked backlog or a stuck
  // operation fails the run. Latency budgets skip warmup noise via the
  // whole-run histograms' sheer sample counts.
  soak::SloPolicy &Slo = Config.Slo;
  for (unsigned P = 0; P < obs::NumPaths; ++P) {
    Slo.P99BudgetNs[P] = 100'000'000;  // 100ms service p99, any path.
    Slo.P999BudgetNs[P] = 500'000'000; // 500ms service p999.
  }
  Slo.SojournP99BudgetNs = 1'000'000'000;  // 1s queueing included.
  Slo.SojournP999BudgetNs = 2'000'000'000; // 2s.
  Slo.MaxDegradedFraction = 0.9;
  Slo.MaxStuckOps = 0;
  Slo.MaxShedFraction = 0.01;
  Slo.WarmupWindows = 1;
  return Config;
}

void emitWindow(JsonReporter &Json, const soak::WindowStats &W) {
  Json.beginObject();
  Json.field("window", W.Index);
  Json.field("start_sec", W.StartSec);
  Json.field("duration_sec", W.DurationSec);
  Json.field("arrivals", W.Arrivals);
  Json.field("completed", W.Completed);
  Json.field("shed", W.Shed);
  Json.field("backlog", W.Backlog);
  Json.field("crashes", W.Crashes);
  Json.field("stalls", W.Stalls);
  Json.field("stuck_ops", W.StuckOps);
  Json.field("conserves", W.Conserves);
  Json.field("ops", W.Paths.Ops);
  for (unsigned P = 0; P < obs::NumPaths; ++P)
    Json.field(std::string("path_") +
                   obs::pathName(static_cast<obs::Path>(P)),
               W.Paths.Paths[P]);
  Json.field("degraded_fraction", W.degradedFraction());
  Json.field("sojourn_p50_ns", W.Sojourn.valueAtQuantile(0.5));
  Json.field("sojourn_p99_ns", W.Sojourn.valueAtQuantile(0.99));
  Json.field("service_p99_ns", W.Service.valueAtQuantile(0.99));
  Json.endObject();
}

/// Runs one soak scenario and appends its record to \p Json. Returns
/// the report so main can aggregate verdicts.
template <typename AdapterT>
soak::SoakReport runScenario(JsonReporter &Json,
                             const soak::SoakConfig &Config, bool Quick,
                             const char *Title) {
  std::cout << "E15: soaking " << Title << " for " << Config.DurationSec
            << "s (" << Config.Workers << " workers, "
            << Config.Schedule.Keys << " keys, window " << Config.WindowSec
            << "s)...\n";

  const soak::SoakReport R = soak::runSoak<AdapterT>(Config);

  TablePrinter Table({"window", "arrivals", "done", "backlog", "crash",
                      "stall", "stuck", "degr%", "soj p99", "conserve"});
  Table.setTitle(std::string("E15: soak windows (") + Title + ")");
  for (const soak::WindowStats &W : R.Windows)
    Table.addRow({std::to_string(W.Index), std::to_string(W.Arrivals),
                  std::to_string(W.Completed), std::to_string(W.Backlog),
                  std::to_string(W.Crashes), std::to_string(W.Stalls),
                  std::to_string(W.StuckOps),
                  formatDouble(100.0 * W.degradedFraction(), 1),
                  formatNs(static_cast<double>(
                      W.Sojourn.valueAtQuantile(0.99))),
                  W.Conserves ? "ok" : "VIOLATED"});
  Table.print(std::cout);

  Json.beginRecord();
  Json.field("object", AdapterT::Name);
  Json.field("experiment", "soak");
  Json.field("quick", Quick);
  Json.field("workers", Config.Workers);
  Json.field("keys", Config.Schedule.Keys);
  Json.field("window_sec", Config.WindowSec);
  Json.field("duration_sec", R.DurationSec);
  Json.field("total_arrivals", R.TotalArrivals);
  Json.field("total_completed", R.TotalCompleted);
  Json.field("total_shed", R.TotalShed);
  Json.field("total_crashes", R.TotalCrashes);
  Json.field("total_stalls", R.TotalStalls);
  Json.field("crashes_posted", R.CrashesPosted);
  Json.field("stalls_posted", R.StallsPosted);
  Json.field("total_stuck_ops", R.TotalStuckOps);
  Json.field("throughput_ops_per_sec", R.throughputOpsPerSec());
  Json.field("sojourn_p50_ns", R.RunSojourn.valueAtQuantile(0.5));
  Json.field("sojourn_p99_ns", R.RunSojourn.valueAtQuantile(0.99));
  Json.field("sojourn_p999_ns", R.RunSojourn.valueAtQuantile(0.999));
  Json.field("service_p99_ns", R.RunService.valueAtQuantile(0.99));
  obs::emitPathBreakdown(Json, R.FinalPaths);
  Json.field("conserve_final", R.FinalConserves);
  Json.field("slo_pass", R.Verdict.Pass);
  Json.beginArray("violations");
  for (const soak::SloViolation &V : R.Verdict.Violations) {
    Json.beginObject();
    Json.field("metric", V.Metric);
    Json.field("whole_run", V.wholeRun());
    if (!V.wholeRun())
      Json.field("window", V.Window);
    Json.field("observed", V.Observed);
    Json.field("budget", V.Budget);
    Json.endObject();
  }
  Json.endArray();
  Json.beginArray("windows");
  for (const soak::WindowStats &W : R.Windows)
    emitWindow(Json, W);
  Json.endArray();
  Json.endRecord();

  std::cout << "totals: " << R.TotalCompleted << "/" << R.TotalArrivals
            << " completed, " << R.TotalShed << " shed, " << R.TotalCrashes
            << " crashes, " << R.TotalStalls << " stalls, "
            << R.TotalStuckOps << " stuck\n";
  if (R.Verdict.Pass) {
    std::cout << "PASS: SLO verdict clean over " << R.Windows.size()
              << " windows\n\n";
  } else {
    std::cerr << "FAIL: " << R.Verdict.Violations.size()
              << " SLO violation(s):\n";
    for (const soak::SloViolation &V : R.Verdict.Violations) {
      std::cerr << "  " << V.Metric;
      if (!V.wholeRun())
        std::cerr << " @window " << V.Window;
      std::cerr << ": observed " << V.Observed << " budget " << V.Budget
                << "\n";
    }
  }
  return R;
}

} // namespace

int main() {
  printRegisterPolicy(std::cout);
  const bool Quick = quickMode();
  const soak::SoakConfig Config = makeConfig(Quick);

  JsonReporter Json;

  // Scenario 1: the bounded crash-tolerant stack (lease reclamation).
  const soak::SoakReport Bounded = runScenario<CrashTolerantStackAdapter>(
      Json, Config, Quick, "crash-tolerant stack");

  // Scenario 2: the unbounded contention-sensitive stack. Same arrival
  // schedule and fault campaign, but reclamation is the hazard-pointer
  // domain: crashed workers abandon pinned chunks mid-operation and
  // their retire lists are drained by their resurrected successors, so
  // window conservation here soaks the E17 substrate, not the arbiter.
  const soak::SoakReport Unbounded = runScenario<UnboundedCsStackAdapter>(
      Json, Config, Quick, "unbounded cs stack");

  // Scenario 3: the adaptive sharded facade. Same schedule, but the
  // campaign keeps only its stall phases — the facade's shards hold a
  // RAII TasLock, so worker crashes are out of contract (the boundary
  // that keeps its battery entry stall-plan-only). What this scenario
  // soaks is the control loop: hours of compressed diurnal load must
  // grow and shrink the mask without losing an element or an SLO.
  soak::SoakConfig AdaptiveConfig = Config;
  for (auto &Phase : AdaptiveConfig.Faults.Phases)
    Phase.CrashMeanPeriodSec = 0;
  const soak::SoakReport Adaptive = runScenario<AdaptiveStackAdapter>(
      Json, AdaptiveConfig, Quick, "adaptive sharded stack");

  const std::string JsonPath = "BENCH_soak.json";
  if (!Json.writeFile(JsonPath)) {
    std::cerr << "error: could not write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "wrote " << JsonPath << "\n";

  if (Bounded.Verdict.Pass && Unbounded.Verdict.Pass &&
      Adaptive.Verdict.Pass)
    return 0;
  std::cerr << "FAIL: a soak scenario missed its SLO\n";
  return 1;
}
