//===- bench/bench_boost.cpp - Experiment E9 (ablation) ------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E9 — two ways to make an abortable object starvation-free, head to
/// head (the paper's Section 5 closes by pointing at this design space,
/// refs [4, 25]):
///
///  * Figure 3: shortcut + deadlock-free lock + FLAG/TURN round robin;
///  * TimestampBoost: shortcut + announce/defer on fetch-and-add
///    timestamps, no lock at all.
///
/// Both keep the solo cost at six accesses. The sweep shows throughput,
/// tail latency and fairness as contention rises; the structural
/// difference (O(1) handoff vs O(n) announcement scan) shows in the
/// contended rows.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/TimestampBoost.h"
#include "core/WaitFreeUniversal.h"
#include "memory/AccessCounter.h"
#include "runtime/TablePrinter.h"

#include <iostream>

namespace {

using namespace csobj;
using namespace csobj::bench;

struct WaitFreeStackAdapter {
  static constexpr const char *Name = "wait-free-universal";
  WaitFreeStackAdapter(std::uint32_t Threads, std::uint32_t /*Capacity*/)
      : Stack(Threads) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  // Compile-time capacity: 64 elements (the construction copies the
  // whole state per operation, so it targets small objects).
  WaitFreeStack<64> Stack;
};

struct BoostedStackAdapter {
  static constexpr const char *Name = "timestamp-boost";
  BoostedStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  BoostedStack<> Stack;
};

template <typename AdapterT>
void addRows(TablePrinter &Table, const char *Name) {
  for (const std::uint32_t Threads : threadSweep()) {
    const WorkloadReport R = runCell<AdapterT>(Threads);
    const LatencySummary S = summarize(R.mergedLatency());
    Table.addRow({Name, std::to_string(Threads),
                  formatRate(R.throughputOpsPerSec()),
                  formatNs(static_cast<double>(S.P99Ns)),
                  formatNs(static_cast<double>(S.MaxNs)),
                  formatDouble(R.meanLatencyRatio(), 2),
                  std::to_string(R.totalAborts())});
  }
}

} // namespace

int main() {
  csobj::bench::printRegisterPolicy(std::cout);
  // Fig3 and the timestamp boost share the six-access contention-free
  // fast path; the wait-free universal construction pays its state copy
  // and announcement scan even when alone (it is NOT
  // contention-sensitive) — the cost of the strongest guarantee.
  {
    ContentionSensitiveStack<> Fig3(4, 64);
    BoostedStack<> Boosted(4, 64);
    WaitFreeStack<64> WaitFree(4);
    const AccessCounts A =
        countAccesses([&] { (void)Fig3.push(0, 1); });
    const AccessCounts B =
        countAccesses([&] { (void)Boosted.push(0, 1); });
    const AccessCounts C =
        countAccesses([&] { (void)WaitFree.push(0, 1); });
    std::cout << "solo strong_push accesses: fig3 = " << A.total()
              << ", timestamp-boost = " << B.total()
              << ", wait-free universal = " << C.total()
              << " (+ state copy outside counted registers)\n\n";
  }

  TablePrinter Table({"mechanism", "threads", "throughput", "p99", "max",
                      "svc-ratio", "aborts"});
  Table.setTitle("E9: progress-boosting mechanisms — lock+turn (fig3), "
                 "timestamp deference [4,25], wait-free universal [7]");
  addRows<CsStackAdapter>(Table, "lock+turn (fig3)");
  addRows<BoostedStackAdapter>(Table, "timestamp-boost");
  addRows<WaitFreeStackAdapter>(Table, "wait-free universal [7]");
  addRows<NonBlockingStackAdapter>(Table, "none (fig2, lock-free only)");
  Table.print(std::cout);

  std::cout << "\ntakeaway: both boosts surface zero aborts with even service; "
               "figure 3 pays a lock word, the boost pays an O(n) "
               "announcement scan per contended wait\n";
  return 0;
}
