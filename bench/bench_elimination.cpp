//===- bench/bench_elimination.cpp - Experiment E8 (ablation) ------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E8 — contention-management ablation (Section 5 points to contention
/// managers as the wider context of the paper's mechanism). Strategies
/// under a high-contention 50/50 push-pop storm:
///
///  * plain CAS retry                     (Figure 2, immediate)
///  * CAS retry + exponential backoff     (time-based manager)
///  * elimination-backoff                 (collision-based manager)
///  * shortcut + lock + round-robin TURN  (the paper's Figure 3)
///
/// Also reports what fraction of elimination-stack operations completed
/// by pairing off without touching the central stack.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "runtime/TablePrinter.h"

#include <iostream>

namespace {

using namespace csobj;
using namespace csobj::bench;

template <typename AdapterT>
void addRows(TablePrinter &Table, const char *Name) {
  for (const std::uint32_t Threads : threadSweep()) {
    const WorkloadReport R = runCell<AdapterT>(Threads);
    const LatencySummary S = summarize(R.mergedLatency());
    Table.addRow({Name, std::to_string(Threads),
                  formatRate(R.throughputOpsPerSec()),
                  formatDouble(R.meanRetries(), 4),
                  formatNs(static_cast<double>(S.P99Ns)),
                  formatDouble(R.fairness(), 4)});
  }
}

} // namespace

int main() {
  csobj::bench::printRegisterPolicy(std::cout);
  TablePrinter Table({"strategy", "threads", "throughput", "retries/op",
                      "p99", "jain"});
  Table.setTitle("E8: contention-management ablation (high contention, "
                 "50/50)");
  addRows<NonBlockingStackAdapter>(Table, "cas-retry (fig2)");
  addRows<BackoffStackAdapter>(Table, "cas-retry+backoff");
  addRows<EliminationStackAdapter>(Table, "elimination");
  addRows<CsStackAdapter>(Table, "shortcut+lock (fig3)");
  Table.print(std::cout);

  // Elimination hit rate at the top of the sweep.
  const std::uint32_t Threads = threadSweep().back();
  EliminationStackAdapter Adapter(Threads, 4096);
  WorkloadConfig Config;
  Config.Threads = Threads;
  Config.OpsPerThread = opsPerThread();
  Config.Capacity = 4096;
  Config.ChaosYieldPermille = DefaultChaosPermille;
  const WorkloadReport R = runClosedLoop(Adapter, Config);
  const std::uint64_t Eliminated =
      Adapter.Stack.eliminationCountForTesting();
  std::cout << "\nelimination hit rate at " << Threads
            << " threads: " << Eliminated << " of " << R.totalOps()
            << " ops ("
            << formatDouble(100.0 * static_cast<double>(Eliminated) /
                                static_cast<double>(R.totalOps()),
                            2)
            << "%)\n";
  std::cout << "\ntakeaway: the paper's shortcut+lock keeps the solo cost "
               "at 6 accesses AND bounds the tail, where pure retry "
               "strategies trade one for the other\n";
  return 0;
}
