//===- bench/bench_elimination.cpp - Experiment E8 (ablation) ------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E8 — contention-management ablation (Section 5 points to contention
/// managers as the wider context of the paper's mechanism). Strategies
/// under a high-contention 50/50 push-pop storm:
///
///  * plain CAS retry                     (Figure 2, immediate)
///  * CAS retry + exponential backoff     (time-based manager)
///  * elimination-backoff                 (collision-based manager)
///  * shortcut + lock + round-robin TURN  (the paper's Figure 3)
///  * fig3 + gated elimination window     (perf/EliminatingStack.h)
///  * fig3 + flat-combining slow path     (perf/CombiningSlowPath.h)
///  * 4x fig3 shards + elimination        (perf/ShardedStack.h)
///
/// Also reports what fraction of elimination-stack operations completed
/// by pairing off without touching the central stack, and the same hit
/// rate for the gated elimination window sitting in front of Figure 3.
/// Rows additionally land in BENCH_elimination.json for plotting.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "obs/JsonReporter.h"

#include "runtime/TablePrinter.h"

#include <iostream>

namespace {

using namespace csobj;
using namespace csobj::bench;

template <typename AdapterT>
void addRows(TablePrinter &Table, JsonReporter &Json, const char *Name) {
  for (const std::uint32_t Threads : threadSweep()) {
    const WorkloadReport R = runCell<AdapterT>(Threads);
    const LatencySummary S = summarize(R.mergedLatency());
    Table.addRow({Name, std::to_string(Threads),
                  formatRate(R.throughputOpsPerSec()),
                  formatDouble(R.meanRetries(), 4),
                  formatNs(static_cast<double>(S.P99Ns)),
                  formatDouble(R.fairness(), 4)});
    Json.beginRecord();
    Json.field("strategy", Name);
    Json.field("threads", Threads);
    Json.field("ops", R.totalOps());
    Json.field("throughput_ops_per_sec", R.throughputOpsPerSec());
    Json.field("mean_retries", R.meanRetries());
    Json.field("p99_ns", static_cast<std::uint64_t>(S.P99Ns));
    Json.field("jain_fairness", R.fairness());
    Json.endRecord();
  }
}

} // namespace

int main() {
  csobj::bench::printRegisterPolicy(std::cout);
  TablePrinter Table({"strategy", "threads", "throughput", "retries/op",
                      "p99", "jain"});
  Table.setTitle("E8: contention-management ablation (high contention, "
                 "50/50)");
  JsonReporter Json;
  addRows<NonBlockingStackAdapter>(Table, Json, "cas-retry (fig2)");
  addRows<BackoffStackAdapter>(Table, Json, "cas-retry+backoff");
  addRows<EliminationStackAdapter>(Table, Json, "elimination");
  addRows<CsStackAdapter>(Table, Json, "shortcut+lock (fig3)");
  addRows<EliminatingCsStackAdapter>(Table, Json, "eliminating(fig3+elim)");
  addRows<CombiningStackAdapter>(Table, Json, "combining(fig3+fc)");
  addRows<ShardedStackAdapter>(Table, Json, "sharded(4xfig3)");
  Table.print(std::cout);

  const std::string JsonPath = "BENCH_elimination.json";
  if (!Json.writeFile(JsonPath)) {
    std::cerr << "error: could not write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";

  // Elimination hit rates at the top of the sweep: the HSY reference
  // stack, then the gated window in front of Figure 3 (whose exchange
  // counter counts operations, so a matched pair contributes 2).
  const std::uint32_t Threads = threadSweep().back();
  {
    EliminationStackAdapter Adapter(Threads, 4096);
    WorkloadConfig Config;
    Config.Threads = Threads;
    Config.OpsPerThread = opsPerThread();
    Config.Capacity = 4096;
    Config.ChaosYieldPermille = DefaultChaosPermille;
    const WorkloadReport R = runClosedLoop(Adapter, Config);
    const std::uint64_t Eliminated =
        Adapter.Stack.eliminationCountForTesting();
    std::cout << "\nelimination hit rate at " << Threads
              << " threads: " << Eliminated << " of " << R.totalOps()
              << " ops ("
              << formatDouble(100.0 * static_cast<double>(Eliminated) /
                                  static_cast<double>(R.totalOps()),
                              2)
              << "%)\n";
  }
  {
    EliminatingCsStackAdapter Adapter(Threads, 4096);
    WorkloadConfig Config;
    Config.Threads = Threads;
    Config.OpsPerThread = opsPerThread();
    Config.Capacity = 4096;
    Config.ChaosYieldPermille = DefaultChaosPermille;
    const WorkloadReport R = runClosedLoop(Adapter, Config);
    const std::uint64_t Exchanged = Adapter.exchanges();
    std::cout << "gated-window hit rate at " << Threads
              << " threads: " << Exchanged << " of " << R.totalOps()
              << " ops ("
              << formatDouble(100.0 * static_cast<double>(Exchanged) /
                                  static_cast<double>(R.totalOps()),
                              2)
              << "%)\n";
  }
  std::cout << "\ntakeaway: the paper's shortcut+lock keeps the solo cost "
               "at 6 accesses AND bounds the tail, where pure retry "
               "strategies trade one for the other; the acceleration "
               "layer attacks the contended case without touching the "
               "solo bound\n";
  return 0;
}
