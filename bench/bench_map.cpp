//===- bench/bench_map.cpp - Experiment E16 (ordered-map throughput) -----===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E16 — throughput of the contention-sensitive ordered map against the
/// coarse-locked sorted-array baseline. The cs-map's reads never touch a
/// lock or the CONTENTION word and its writes pay the Fig-3 seam only
/// after an actual CAS conflict in the same key region; the baseline
/// serializes every operation, reads included, through one lock.
///
/// Sweep: object x threads x key range x read/write mix, under the
/// default chaos level (or CSOBJ_CHAOS). Each worker draws uniform keys
/// from [0, key_range) and rolls read_percent% gets; the remaining ops
/// split evenly between insert (fresh or update) and erase. Capacity
/// equals the key range, so the distinct-keys-ever envelope can never
/// answer Full and throughput measures contention, not capacity
/// pressure. Half the range is prefilled so gets hit live keys, misses
/// and tombstones from the first operation on.
///
/// Results go to stdout and BENCH_map.json (schema in EXPERIMENTS.md);
/// cs-map records carry the real path breakdown and per-cell
/// conservation verdict, locked-map records carry the same columns
/// zeroed (the baseline has no seam to attribute).
///
/// Acceptance (full mode, in-binary, host-conditional like E12): with
/// >=4 hardware threads, at the top sweep point the cs-map must beat
/// the locked baseline on the read-heavy wide-range cell — the regime
/// the contention-sensitive construction is built for. Quick mode
/// (CSOBJ_BENCH_QUICK=1) only smoke-checks structure and conservation.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "baselines/LockedMap.h"
#include "core/ContentionSensitiveMap.h"
#include "memory/ChaosHook.h"
#include "obs/JsonReporter.h"
#include "obs/MetricsJson.h"
#include "runtime/SpinBarrier.h"
#include "runtime/TablePrinter.h"
#include "support/SplitMix64.h"

#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace csobj;
using namespace csobj::bench;

struct CsMapAdapter {
  static constexpr const char *Name = "cs-map";
  CsMapAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Map(Threads, Capacity) {}
  PopResult<std::uint32_t> get(std::uint32_t Tid, std::uint32_t K) {
    return Map.get(Tid, K);
  }
  PushResult insert(std::uint32_t Tid, std::uint32_t K, std::uint32_t V) {
    return Map.insert(Tid, K, V);
  }
  PopResult<std::uint32_t> erase(std::uint32_t Tid, std::uint32_t K) {
    return Map.erase(Tid, K);
  }
  obs::PathSnapshot pathSnapshot() const { return Map.pathSnapshot(); }
  std::size_t footprintBytes() const { return Map.footprintBytes(); }
  ContentionSensitiveMap<> Map;
};

struct LockedMapAdapter {
  static constexpr const char *Name = "locked-map";
  LockedMapAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Map(Threads, Capacity) {}
  PopResult<std::uint32_t> get(std::uint32_t Tid, std::uint32_t K) {
    return Map.get(Tid, K);
  }
  PushResult insert(std::uint32_t Tid, std::uint32_t K, std::uint32_t V) {
    return Map.insert(Tid, K, V);
  }
  PopResult<std::uint32_t> erase(std::uint32_t Tid, std::uint32_t K) {
    return Map.erase(Tid, K);
  }
  // No seam to attribute: the schema columns are emitted zeroed.
  obs::PathSnapshot pathSnapshot() const { return {}; }
  std::size_t footprintBytes() const { return Map.footprintBytes(); }
  LockedMap<> Map;
};

struct CellResult {
  std::uint64_t Ops = 0;
  double DurationSec = 0.0;
  obs::PathSnapshot Snapshot;
  std::uint64_t ObjectBytes = 0;
  double opsPerSec() const {
    return DurationSec > 0.0 ? static_cast<double>(Ops) / DurationSec : 0.0;
  }
};

/// One sweep cell: fresh map over [0, KeyRange) with the lower half
/// prefilled, Threads workers each issuing opsPerThread() operations.
template <typename AdapterT>
CellResult runMapCell(std::uint32_t Threads, std::uint32_t KeyRange,
                      std::uint32_t ReadPercent, const ChaosSettings &Chaos) {
  AdapterT Adapter(Threads, /*Capacity=*/KeyRange);
  for (std::uint32_t K = 0; K < KeyRange / 2; ++K)
    (void)Adapter.insert(0, K, K + 1);

  const std::uint64_t Ops = opsPerThread();
  SpinBarrier StartLine(Threads + 1);
  std::vector<double> Span(Threads, 0.0);
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      ChaosHook Hook(/*Seed=*/0x9AB16ull * (T + 1),
                     Threads > 1 ? Chaos.YieldPermille : 0,
                     Threads > 1 ? Chaos.StallPermille : 0,
                     Chaos.StallGrants);
      SchedHookScope Scope(Hook);
      SplitMix64 Rng(0xE16E16ull + 0x9E37ull * (T + 1));
      StartLine.arriveAndWait();
      const auto Begin = std::chrono::steady_clock::now();
      for (std::uint64_t I = 0; I < Ops; ++I) {
        const std::uint32_t K =
            static_cast<std::uint32_t>(Rng.below(KeyRange));
        const std::uint64_t Roll = Rng.below(100);
        if (Roll < ReadPercent)
          (void)Adapter.get(T, K);
        else if (Rng.below(2) == 0)
          (void)Adapter.insert(T, K, static_cast<std::uint32_t>(I + 1));
        else
          (void)Adapter.erase(T, K);
      }
      const auto End = std::chrono::steady_clock::now();
      Span[T] = std::chrono::duration<double>(End - Begin).count();
    });

  StartLine.arriveAndWait();
  for (std::thread &W : Workers)
    W.join();

  CellResult R;
  R.Ops = static_cast<std::uint64_t>(Threads) * Ops;
  // Worker-side max span: join-scheduling noise cannot stretch the
  // window on an oversubscribed host.
  for (const double S : Span)
    R.DurationSec = std::max(R.DurationSec, S);
  R.Snapshot = Adapter.pathSnapshot();
  R.ObjectBytes = Adapter.footprintBytes();
  return R;
}

struct SweepOutput {
  TablePrinter &Table;
  JsonReporter &Json;
  /// ops/sec keyed by (object, threads, key_range, read_percent).
  std::map<std::string,
           std::map<std::uint32_t,
                    std::map<std::uint32_t, std::map<std::uint32_t, double>>>>
      Rate;
  bool AllConserved = true;
};

template <typename AdapterT>
void runRows(SweepOutput &Out, const std::vector<std::uint32_t> &KeyRanges,
             const std::vector<std::uint32_t> &ReadMixes) {
  for (const std::uint32_t Threads : threadSweep()) {
    for (const std::uint32_t KeyRange : KeyRanges) {
      for (const std::uint32_t ReadPercent : ReadMixes) {
        ChaosSettings Chaos;
        Chaos.YieldPermille = DefaultChaosPermille;
        if (const std::optional<ChaosSettings> Env = chaosFromEnv())
          Chaos = *Env;
        const CellResult R =
            runMapCell<AdapterT>(Threads, KeyRange, ReadPercent, Chaos);
        const double Rate = R.opsPerSec();
        const bool Conserved = R.Snapshot.conserves();
        Out.AllConserved = Out.AllConserved && Conserved;
        Out.Rate[AdapterT::Name][Threads][KeyRange][ReadPercent] = Rate;
        Out.Table.addRow({AdapterT::Name, std::to_string(Threads),
                          std::to_string(KeyRange),
                          std::to_string(ReadPercent), formatRate(Rate),
                          Conserved ? "yes" : "NO"});
        Out.Json.beginRecord();
        Out.Json.field("object", AdapterT::Name);
        Out.Json.field("threads", Threads);
        Out.Json.field("key_range", KeyRange);
        Out.Json.field("read_percent", ReadPercent);
        Out.Json.field("ops", R.Ops);
        Out.Json.field("duration_sec", R.DurationSec);
        Out.Json.field("ops_per_sec", Rate);
        Out.Json.field("conserves", Conserved);
        obs::emitPathBreakdown(Out.Json, R.Snapshot);
        obs::emitMemoryFootprint(Out.Json, R.ObjectBytes, KeyRange);
        Out.Json.endRecord();
      }
    }
  }
}

} // namespace

int main() {
  printRegisterPolicy(std::cout);

  const std::vector<std::uint32_t> KeyRanges{16, 1024};
  const std::vector<std::uint32_t> ReadMixes =
      quickMode() ? std::vector<std::uint32_t>{90}
                  : std::vector<std::uint32_t>{50, 90};

  TablePrinter Table(
      {"object", "threads", "key-range", "read%", "ops/s", "conserves"});
  Table.setTitle("E16: contention-sensitive map vs coarse-locked baseline");
  JsonReporter Json;
  SweepOutput Out{Table, Json, {}, true};

  runRows<CsMapAdapter>(Out, KeyRanges, ReadMixes);
  runRows<LockedMapAdapter>(Out, KeyRanges, ReadMixes);

  Table.print(std::cout);

  // Host-conditional acceptance (the E12 convention): the comparison
  // only says something with real parallelism. The verdict's *absence*
  // is recorded in the JSON so the trajectory gate can tell "this host
  // could not run the check" apart from "the check vanished".
  const std::uint32_t HwThreads = std::thread::hardware_concurrency();
  const std::uint32_t Top = threadSweep().back();
  const bool AcceptanceSkipped = quickMode() || HwThreads < 4 || Top < 4;
  Json.beginRecord();
  Json.field("record", "acceptance");
  Json.field("acceptance_skipped", AcceptanceSkipped);
  Json.endRecord();

  const std::string JsonPath = "BENCH_map.json";
  if (!Json.writeFile(JsonPath)) {
    std::cerr << "error: could not write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";

  if (!Out.AllConserved) {
    std::cerr << "FAIL: a cs-map cell's path counters do not conserve\n";
    return 1;
  }

  if (quickMode()) {
    std::cout << "SKIP: acceptance comparison is full-mode only "
                 "(CSOBJ_BENCH_QUICK=1)\n";
    return 0;
  }

  if (AcceptanceSkipped) {
    std::cout << "SKIP: acceptance check needs >=4 hardware threads and "
                 "a >=4-thread sweep point (host has "
              << HwThreads << ", sweep tops out at " << Top << ")\n";
    return 0;
  }
  const std::uint32_t WideRange = KeyRanges.back();
  const std::uint32_t ReadHeavy = ReadMixes.back();
  const double Cs = Out.Rate["cs-map"][Top][WideRange][ReadHeavy];
  const double Locked = Out.Rate["locked-map"][Top][WideRange][ReadHeavy];
  std::cout << "at " << Top << " threads, key range " << WideRange << ", "
            << ReadHeavy << "% reads: cs-map " << formatRate(Cs)
            << "  locked-map " << formatRate(Locked) << "\n";
  if (Cs > Locked) {
    std::cout << "PASS: cs-map beats the coarse-locked baseline at "
              << Top << " threads\n";
    return 0;
  }
  std::cerr << "FAIL: cs-map does not beat the coarse-locked baseline\n";
  return 1;
}
