//===- bench/bench_locks.cpp - Experiment E6 -----------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E6 — the Section 4.4 transformation and the lock substrate. For every
/// lock: solo acquire/release cost in shared-memory accesses and in time,
/// then contended throughput and per-thread acquisition fairness, with
/// and without the FLAG/TURN doorway. The claim: the doorway adds a
/// small constant solo overhead and buys starvation-freedom (fairness
/// near 1) from any deadlock-free lock.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "locks/AndersonLock.h"
#include "locks/ClhLock.h"
#include "locks/LamportFastLock.h"
#include "locks/LockTraits.h"
#include "locks/McsLock.h"
#include "locks/StarvationFreeLock.h"
#include "locks/TasLock.h"
#include "locks/TicketLock.h"
#include "locks/TournamentLock.h"
#include "memory/AccessCounter.h"
#include "memory/ChaosHook.h"
#include "runtime/SpinBarrier.h"
#include "runtime/Stats.h"
#include "runtime/TablePrinter.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

namespace {

using namespace csobj;

bool quick() {
  const char *Env = std::getenv("CSOBJ_BENCH_QUICK");
  return Env != nullptr && Env[0] == '1';
}

template <typename L>
void soloLockUnlock(benchmark::State &State) {
  L Lock(8);
  for (auto _ : State) {
    Lock.lock(0);
    Lock.unlock(0);
  }
}

BENCHMARK(soloLockUnlock<TasLock>)->Name("solo/tas");
BENCHMARK(soloLockUnlock<TtasLock>)->Name("solo/ttas");
BENCHMARK(soloLockUnlock<TicketLock>)->Name("solo/ticket");
BENCHMARK(soloLockUnlock<McsLock>)->Name("solo/mcs");
BENCHMARK(soloLockUnlock<ClhLock>)->Name("solo/clh");
BENCHMARK(soloLockUnlock<AndersonLock>)->Name("solo/anderson");
BENCHMARK(soloLockUnlock<TournamentLock>)->Name("solo/tournament");
BENCHMARK(soloLockUnlock<LamportFastLock>)->Name("solo/lamport_fast");
BENCHMARK(soloLockUnlock<StdMutexLock>)->Name("solo/std_mutex");
BENCHMARK(soloLockUnlock<StarvationFreeLock<TasLock>>)->Name("solo/sf_tas");
BENCHMARK(soloLockUnlock<StarvationFreeLock<LamportFastLock>>)
    ->Name("solo/sf_lamport");

/// Fixed-duration contention run; reports throughput + fairness.
template <typename L>
void contendedRow(TablePrinter &Table, const char *Name,
                  std::uint32_t Threads) {
  L Lock(Threads);
  std::vector<std::uint64_t> Acquisitions(Threads, 0);
  std::atomic<bool> Stop{false};
  SpinBarrier Barrier(Threads + 1);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      // Asynchrony injection (memory/ChaosHook.h): without it, a
      // single-core host round-robins whole timeslices and even a TAS
      // lock looks fair by accident.
      ChaosHook Chaos(T + 7, /*YieldPermille=*/100);
      SchedHookScope Scope(Chaos);
      Barrier.arriveAndWait();
      while (!Stop.load(std::memory_order_relaxed)) {
        Lock.lock(T);
        ++Acquisitions[T];
        Lock.unlock(T);
      }
    });
  Barrier.arriveAndWait();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(quick() ? 50 : 200));
  Stop.store(true);
  for (auto &W : Workers)
    W.join();

  std::uint64_t Total = 0, Min = ~std::uint64_t{0};
  std::vector<double> Scores;
  for (std::uint64_t A : Acquisitions) {
    Total += A;
    Min = std::min(Min, A);
    Scores.push_back(static_cast<double>(A));
  }
  Table.addRow({Name, std::to_string(Threads), std::to_string(Total),
                std::to_string(Min), formatDouble(jainFairnessIndex(Scores),
                                                  4)});
}

/// Solo access counts (lock+unlock), one row per lock.
template <typename L>
void accessRow(TablePrinter &Table, const char *Name) {
  L Lock(8);
  const AccessCounts C = countAccesses([&] {
    Lock.lock(0);
    Lock.unlock(0);
  });
  Table.addRow({Name, std::to_string(C.total()), std::to_string(C.Reads),
                std::to_string(C.Writes),
                std::to_string(C.CasAttempts + C.Rmw)});
}

} // namespace

int main(int argc, char **argv) {
  csobj::bench::printRegisterPolicy(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  {
    TablePrinter Table({"lock", "solo-accesses", "reads", "writes",
                        "cas/rmw"});
    Table.setTitle("E6a: solo acquire+release shared-memory accesses");
    accessRow<TasLock>(Table, "tas");
    accessRow<TtasLock>(Table, "ttas");
    accessRow<TicketLock>(Table, "ticket");
    accessRow<McsLock>(Table, "mcs");
    accessRow<ClhLock>(Table, "clh");
    accessRow<AndersonLock>(Table, "anderson");
    accessRow<TournamentLock>(Table, "tournament");
    accessRow<LamportFastLock>(Table, "lamport-fast [16]");
    accessRow<StarvationFreeLock<TasLock>>(Table, "sf(tas) [sec4.4]");
    accessRow<StarvationFreeLock<LamportFastLock>>(Table,
                                                   "sf(lamport) [sec4.4]");
    Table.print(std::cout);
  }

  {
    TablePrinter Table({"lock", "threads", "total-acq", "min-thread-acq",
                        "jain"});
    Table.setTitle("E6b: contended acquisitions and fairness (fixed "
                   "duration)");
    const std::uint32_t Threads = quick() ? 2 : 4;
    contendedRow<TasLock>(Table, "tas", Threads);
    contendedRow<StarvationFreeLock<TasLock>>(Table, "sf(tas)", Threads);
    contendedRow<TtasLock>(Table, "ttas", Threads);
    contendedRow<StarvationFreeLock<TtasLock>>(Table, "sf(ttas)", Threads);
    contendedRow<LamportFastLock>(Table, "lamport-fast", Threads);
    contendedRow<StarvationFreeLock<LamportFastLock>>(Table, "sf(lamport)",
                                                      Threads);
    contendedRow<TicketLock>(Table, "ticket", Threads);
    contendedRow<McsLock>(Table, "mcs", Threads);
    contendedRow<ClhLock>(Table, "clh", Threads);
    contendedRow<AndersonLock>(Table, "anderson", Threads);
    contendedRow<TournamentLock>(Table, "tournament", Threads);
    contendedRow<StdMutexLock>(Table, "std::mutex", Threads);
    Table.print(std::cout);
  }

  std::cout << "\npaper claim (sec 4.4): wrapping any deadlock-free lock "
               "in the FLAG/TURN doorway yields starvation-freedom — "
               "min-thread-acq > 0 and jain near 1 for every sf(...) row\n";
  return 0;
}
