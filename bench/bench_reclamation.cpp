//===- bench/bench_reclamation.cpp - Experiment E17 (reclamation) --------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E17 — cost of unboundedness. The unbounded contention-sensitive
/// stack (Figure 3 over the chunked reclaiming Figure 1, hazard-pointer
/// domain) against the bounded Figure 3 stack, sweeping threads x
/// steady-state population. Each cell prefills half the population
/// bound, then drives a 50/50 push/pop mix so the live size hovers at
/// the prefill level while chunks churn through retire -> scan ->
/// recycle continuously; the smallest population recycles the same few
/// chunks thousands of times.
///
/// Three questions, three column groups in BENCH_reclamation.json:
///
///  * throughput_ops_per_sec — what the hazard publication costs on the
///    operation path (the solo bound is 6 accesses either way; this
///    measures the uncounted overhead);
///  * object_bytes / bytes_per_element — whether resident memory tracks
///    the live population instead of a preallocated worst case;
///  * retire_backlog_high_water / retire_backlog_final vs
///    scan_threshold — whether the amortized scan really bounds
///    deferred garbage at O(threads x hazard slots).
///
/// Conservation: successful pushes minus successful pops must equal the
/// final size minus the prefill, every cell, both objects. The backlog
/// bound (high water <= scan threshold) and a drained final backlog are
/// hard failures, any mode.
///
/// Acceptance (full mode — the quick sweep's populations are too small
/// to amortize the fixed hazard-domain and pool-registry overheads): at
/// the largest population and top thread count, the unbounded stack's
/// bytes_per_element must stay within 2x of the bounded baseline's. The
/// verdict's presence is recorded the E12/E16 way, as an acceptance
/// marker record.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "memory/ChaosHook.h"
#include "obs/JsonReporter.h"
#include "obs/MetricsJson.h"
#include "runtime/SpinBarrier.h"
#include "runtime/TablePrinter.h"
#include "support/SplitMix64.h"

#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace csobj;
using namespace csobj::bench;

struct CellResult {
  std::uint64_t Ops = 0;
  double DurationSec = 0.0;
  std::uint64_t Pushed = 0;
  std::uint64_t Popped = 0;
  bool Conserves = false;
  std::uint64_t ObjectBytes = 0;
  std::uint64_t FinalSize = 0;
  // Hazard-domain columns; zero for the bounded baseline (no domain).
  std::uint64_t BacklogHighWater = 0;
  std::uint64_t BacklogFinal = 0;
  std::uint64_t ScanThreshold = 0;
  bool BacklogBounded = true;
  double opsPerSec() const {
    return DurationSec > 0.0 ? static_cast<double>(Ops) / DurationSec : 0.0;
  }
};

/// One churn cell: prefill Population/2, then Threads workers each
/// issuing opsPerThread() ops, 50/50 push/pop on uniform coin flips.
template <typename AdapterT>
CellResult runChurnCell(std::uint32_t Threads, std::uint32_t Population,
                        const ChaosSettings &Chaos) {
  AdapterT Adapter(Threads, /*Capacity=*/Population);
  const std::uint32_t Prefill = Population / 2;
  for (std::uint32_t I = 0; I < Prefill; ++I)
    Adapter.prefillOne(I + 1);

  const std::uint64_t Ops = opsPerThread();
  SpinBarrier StartLine(Threads + 1);
  std::vector<double> Span(Threads, 0.0);
  std::vector<std::uint64_t> Pushes(Threads, 0), Pops(Threads, 0);
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      ChaosHook Hook(/*Seed=*/0xE17ull * (T + 1),
                     Threads > 1 ? Chaos.YieldPermille : 0,
                     Threads > 1 ? Chaos.StallPermille : 0,
                     Chaos.StallGrants);
      SchedHookScope Scope(Hook);
      SplitMix64 Rng(0xE17E17ull + 0x9E37ull * (T + 1));
      StartLine.arriveAndWait();
      const auto Begin = std::chrono::steady_clock::now();
      for (std::uint64_t I = 0; I < Ops; ++I) {
        std::uint64_t Retries = 0;
        if (Rng.below(2) == 0) {
          if (Adapter.apply(T, /*IsPush=*/true,
                            static_cast<std::uint32_t>(I + 1),
                            Retries) == OpOutcome::Ok)
            ++Pushes[T];
        } else {
          if (Adapter.apply(T, /*IsPush=*/false, 0, Retries) ==
              OpOutcome::Ok)
            ++Pops[T];
        }
      }
      const auto End = std::chrono::steady_clock::now();
      Span[T] = std::chrono::duration<double>(End - Begin).count();
    });

  StartLine.arriveAndWait();
  for (std::thread &W : Workers)
    W.join();

  CellResult R;
  R.Ops = static_cast<std::uint64_t>(Threads) * Ops;
  for (const double S : Span)
    R.DurationSec = std::max(R.DurationSec, S);
  for (std::uint32_t T = 0; T < Threads; ++T) {
    R.Pushed += Pushes[T];
    R.Popped += Pops[T];
  }
  R.FinalSize = Adapter.Stack.sizeForTesting();
  R.Conserves =
      static_cast<std::int64_t>(R.FinalSize) - Prefill ==
      static_cast<std::int64_t>(R.Pushed) - static_cast<std::int64_t>(R.Popped);
  if constexpr (requires { Adapter.domain(); }) {
    // High water is sampled before the quiescent drain so the bound is
    // judged on the run itself, not on the cleanup.
    R.BacklogHighWater = Adapter.domain().retireHighWater();
    R.ScanThreshold = Adapter.domain().scanThreshold();
    Adapter.domain().quiescentScanAll();
    R.BacklogFinal = Adapter.domain().retireBacklog();
    R.BacklogBounded = R.BacklogHighWater <= R.ScanThreshold &&
                       R.BacklogFinal == 0;
  }
  // Footprint after the drain: steady-state resident memory.
  R.ObjectBytes = Adapter.footprintBytes();
  return R;
}

struct SweepOutput {
  TablePrinter &Table;
  JsonReporter &Json;
  /// bytes_per_element keyed by (object, threads, population).
  std::map<std::string,
           std::map<std::uint32_t, std::map<std::uint32_t, double>>>
      BytesPerElement;
  bool AllConserved = true;
  bool AllBounded = true;
};

template <typename AdapterT>
void runRows(SweepOutput &Out,
             const std::vector<std::uint32_t> &Populations) {
  for (const std::uint32_t Threads : threadSweep()) {
    for (const std::uint32_t Population : Populations) {
      ChaosSettings Chaos;
      Chaos.YieldPermille = DefaultChaosPermille;
      if (const std::optional<ChaosSettings> Env = chaosFromEnv())
        Chaos = *Env;
      const CellResult R = runChurnCell<AdapterT>(Threads, Population, Chaos);
      Out.AllConserved = Out.AllConserved && R.Conserves;
      Out.AllBounded = Out.AllBounded && R.BacklogBounded;
      const double BytesPerElem =
          R.FinalSize ? static_cast<double>(R.ObjectBytes) /
                            static_cast<double>(R.FinalSize)
                      : static_cast<double>(R.ObjectBytes);
      Out.BytesPerElement[AdapterT::Name][Threads][Population] = BytesPerElem;
      Out.Table.addRow(
          {AdapterT::Name, std::to_string(Threads),
           std::to_string(Population), formatRate(R.opsPerSec()),
           formatDouble(BytesPerElem, 1), std::to_string(R.BacklogHighWater),
           std::to_string(R.ScanThreshold), R.Conserves ? "yes" : "NO"});
      Out.Json.beginRecord();
      Out.Json.field("object", AdapterT::Name);
      Out.Json.field("threads", Threads);
      Out.Json.field("capacity", Population);
      Out.Json.field("ops", R.Ops);
      Out.Json.field("duration_sec", R.DurationSec);
      Out.Json.field("throughput_ops_per_sec", R.opsPerSec());
      Out.Json.field("pushed", R.Pushed);
      Out.Json.field("popped", R.Popped);
      Out.Json.field("final_size", R.FinalSize);
      Out.Json.field("conserves", R.Conserves);
      obs::emitMemoryFootprint(Out.Json, R.ObjectBytes,
                               R.FinalSize ? R.FinalSize : 1);
      Out.Json.field("retire_backlog_high_water", R.BacklogHighWater);
      Out.Json.field("retire_backlog_final", R.BacklogFinal);
      Out.Json.field("scan_threshold", R.ScanThreshold);
      Out.Json.endRecord();
    }
  }
}

} // namespace

int main() {
  printRegisterPolicy(std::cout);

  const std::vector<std::uint32_t> Populations = quickMode()
                                                     ? std::vector<std::uint32_t>{64, 512}
                                                     : std::vector<std::uint32_t>{64, 512, 4096};

  TablePrinter Table({"object", "threads", "population", "ops/s",
                      "bytes/elem", "backlog-hw", "scan-thresh",
                      "conserves"});
  Table.setTitle("E17: unbounded (hazard-pointer) vs bounded fig3 stack");
  JsonReporter Json;
  SweepOutput Out{Table, Json, {}, true, true};

  runRows<UnboundedCsStackAdapter>(Out, Populations);
  runRows<CsStackAdapter>(Out, Populations);

  Table.print(std::cout);

  // The acceptance below is full-mode only: not for scheduling noise
  // (memory accounting is deterministic enough on any host) but because
  // the quick sweep tops out at a population too small to amortize the
  // fixed hazard-domain and pool-registry overheads the 2x band is not
  // about.
  const bool AcceptanceSkipped = quickMode();
  Json.beginRecord();
  Json.field("record", "acceptance");
  Json.field("acceptance_skipped", AcceptanceSkipped);
  Json.endRecord();

  const std::string JsonPath = "BENCH_reclamation.json";
  if (!Json.writeFile(JsonPath)) {
    std::cerr << "error: could not write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";

  if (!Out.AllConserved) {
    std::cerr << "FAIL: a cell's push/pop ledger does not conserve\n";
    return 1;
  }
  if (!Out.AllBounded) {
    std::cerr << "FAIL: a retire backlog exceeded the scan threshold or "
                 "failed to drain at quiescence\n";
    return 1;
  }

  if (AcceptanceSkipped) {
    std::cout << "SKIP: bytes/element acceptance is full-mode only "
                 "(CSOBJ_BENCH_QUICK=1)\n";
    return 0;
  }

  const std::uint32_t Top = threadSweep().back();
  const std::uint32_t Wide = Populations.back();
  const double Unbounded =
      Out.BytesPerElement[UnboundedCsStackAdapter::Name][Top][Wide];
  const double Bounded = Out.BytesPerElement[CsStackAdapter::Name][Top][Wide];
  std::cout << "at " << Top << " threads, population " << Wide
            << ": unbounded " << formatDouble(Unbounded, 1)
            << " bytes/elem  bounded " << formatDouble(Bounded, 1)
            << " bytes/elem\n";
  if (Bounded > 0.0 && Unbounded <= 2.0 * Bounded) {
    std::cout << "PASS: unbounded stack's steady-state bytes/element is "
                 "within 2x of the bounded baseline\n";
    return 0;
  }
  std::cerr << "FAIL: unbounded stack pays more than 2x the bounded "
               "baseline's bytes/element at steady state\n";
  return 1;
}
