//===- bench/bench_retry_nonblocking.cpp - Experiment E3 -----------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E3 — Figure 2's retry construction: no operation ever surfaces bottom;
/// the cost moves into retries. Reports mean retries per operation and
/// throughput across the thread sweep, for the paper-literal immediate
/// retry and for the exponential-backoff variant (the simplest
/// contention-manager upgrade, Section 5's theme).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "runtime/TablePrinter.h"

#include <iostream>

int main() {
  using namespace csobj;
  using namespace csobj::bench;

  printRegisterPolicy(std::cout);
  TablePrinter Table({"threads", "policy", "aborts-surfaced",
                      "mean-retries/op", "p99-latency", "throughput"});
  Table.setTitle("E3: non-blocking stack (fig2) — retries replace aborts");
  for (const std::uint32_t Threads : threadSweep()) {
    {
      const WorkloadReport R = runCell<NonBlockingStackAdapter>(Threads);
      const LatencySummary S = summarize(R.mergedLatency());
      Table.addRow({std::to_string(Threads), "immediate (paper)",
                    std::to_string(R.totalAborts()),
                    formatDouble(R.meanRetries(), 4),
                    formatNs(static_cast<double>(S.P99Ns)),
                    formatRate(R.throughputOpsPerSec())});
    }
    {
      const WorkloadReport R = runCell<BackoffStackAdapter>(Threads);
      const LatencySummary S = summarize(R.mergedLatency());
      Table.addRow({std::to_string(Threads), "exp-backoff",
                    std::to_string(R.totalAborts()),
                    formatDouble(R.meanRetries(), 4),
                    formatNs(static_cast<double>(S.P99Ns)),
                    formatRate(R.throughputOpsPerSec())});
    }
  }
  Table.print(std::cout);

  std::cout << "\npaper claim: figure 2 surfaces zero bottoms (column 3) "
               "and solo runs need zero retries (threads=1 row)\n";
  return 0;
}
