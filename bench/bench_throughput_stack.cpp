//===- bench/bench_throughput_stack.cpp - Experiment E5 ------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E5 — "the overhead introduced by locking is eliminated in the common
/// cases". Two views:
///
///  * a google-benchmark microbenchmark of the solo (contention-free)
///    push+pop round trip for every implementation — the regime the
///    paper optimizes; the Figure 3 stack should sit near the lock-free
///    structures and clearly below every lock-based stack;
///  * a custom thread sweep crossing implementation x think-time, where
///    think time dials the workload from the paper's contended regime to
///    its contention-free regime.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "runtime/TablePrinter.h"

#include <benchmark/benchmark.h>

#include <iostream>

namespace {

using namespace csobj;
using namespace csobj::bench;

template <typename AdapterT>
void soloRoundTrip(benchmark::State &State) {
  AdapterT Adapter(1, 1024);
  std::uint64_t Retries = 0;
  std::uint32_t V = 1;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        Adapter.apply(0, /*IsPush=*/true, V, Retries));
    benchmark::DoNotOptimize(
        Adapter.apply(0, /*IsPush=*/false, V, Retries));
    ++V;
  }
  State.SetItemsProcessed(State.iterations() * 2);
}

BENCHMARK(soloRoundTrip<CsStackAdapter>)->Name("solo/cs_fig3");
BENCHMARK(soloRoundTrip<WeakStackAdapter>)->Name("solo/abortable_fig1");
BENCHMARK(soloRoundTrip<NonBlockingStackAdapter>)
    ->Name("solo/non_blocking_fig2");
BENCHMARK(soloRoundTrip<TreiberStackAdapter>)->Name("solo/treiber");
BENCHMARK(soloRoundTrip<EliminationStackAdapter>)->Name("solo/elimination");
BENCHMARK(soloRoundTrip<LockedStackAdapter<TasLock>>)
    ->Name("solo/locked_tas");
BENCHMARK(soloRoundTrip<LockedStackAdapter<TtasLock>>)
    ->Name("solo/locked_ttas");
BENCHMARK(soloRoundTrip<LockedStackAdapter<TicketLock>>)
    ->Name("solo/locked_ticket");
BENCHMARK(soloRoundTrip<LockedStackAdapter<McsLock>>)
    ->Name("solo/locked_mcs");
BENCHMARK(soloRoundTrip<LockedStackAdapter<StdMutexLock>>)
    ->Name("solo/locked_stdmutex");

template <typename AdapterT>
void addSweep(TablePrinter &Table, const char *Name) {
  for (const std::uint32_t Threads : threadSweep()) {
    for (const std::uint32_t ThinkNs : {0u, 2000u}) {
      const WorkloadReport R = runCell<AdapterT>(Threads, ThinkNs);
      Table.addRow({Name, std::to_string(Threads), std::to_string(ThinkNs),
                    formatRate(R.throughputOpsPerSec()),
                    formatDouble(R.abortRate() * 100, 2) + "%"});
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  csobj::bench::printRegisterPolicy(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  TablePrinter Table({"stack", "threads", "think-ns", "throughput",
                      "aborts"});
  Table.setTitle("E5: throughput sweep — implementation x threads x "
                 "think time (50/50)");
  addSweep<CsStackAdapter>(Table, "cs(fig3)");
  addSweep<NonBlockingStackAdapter>(Table, "non-blocking(fig2)");
  addSweep<TreiberStackAdapter>(Table, "treiber");
  addSweep<EliminationStackAdapter>(Table, "elimination");
  addSweep<LockedStackAdapter<TasLock>>(Table, "locked(tas)");
  addSweep<LockedStackAdapter<TicketLock>>(Table, "locked(ticket)");
  addSweep<LockedStackAdapter<StdMutexLock>>(Table, "locked(mutex)");
  Table.print(std::cout);

  std::cout << "\npaper claim: in the contention-free regime the cs stack "
               "tracks the lock-free structures (no lock taken), while "
               "every locked stack pays its lock on each operation\n";
  return 0;
}
