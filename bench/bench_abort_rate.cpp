//===- bench/bench_abort_rate.cpp - Experiment E2 ------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E2 — Figure 1's abortable semantics under load: the fraction of weak
/// operations returning bottom as contention rises (thread count up,
/// think time down). The paper's qualitative claim: solo executions never
/// abort; aborts are the price of concurrency, and adding local think
/// time between operations (approaching the "contention-free context")
/// drives the abort rate back toward zero.
///
/// Results are also written to BENCH_abort_rate.json for plots and
/// regression tooling. CSOBJ_CHAOS overrides the chaos level of every
/// cell (see bench/BenchCommon.h).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "obs/JsonReporter.h"

#include "conformance/Params.h"
#include "runtime/TablePrinter.h"

#include <iostream>
#include <string>

int main() {
  using namespace csobj;
  using namespace csobj::bench;

  printRegisterPolicy(std::cout);
  JsonReporter Json;

  {
    TablePrinter Table({"threads", "ops", "aborts", "abort-rate",
                        "throughput"});
    Table.setTitle("E2a: abort rate of weak stack ops vs thread count "
                   "(think=0, 50/50 push-pop)");
    for (const std::uint32_t Threads : threadSweep()) {
      const WorkloadReport R = runCell<WeakStackAdapter>(Threads);
      Table.addRow({std::to_string(Threads), std::to_string(R.totalOps()),
                    std::to_string(R.totalAborts()),
                    formatDouble(R.abortRate() * 100, 2) + "%",
                    formatRate(R.throughputOpsPerSec())});
      Json.beginRecord();
      Json.field("experiment", "E2a_threads");
      Json.field("threads", Threads);
      Json.field("ops", R.totalOps());
      Json.field("aborts", R.totalAborts());
      Json.field("abort_rate", R.abortRate());
      Json.field("throughput_ops_per_sec", R.throughputOpsPerSec());
      Json.endRecord();
    }
    Table.print(std::cout);
  }

  {
    TablePrinter Table({"asynchrony (permille)", "aborts", "abort-rate"});
    Table.setTitle("E2b: abort rate vs asynchrony level — dialing the "
                   "interleaving density from solo-like to adversarial "
                   "(4 threads)");
    const std::uint32_t Threads = quickMode() ? 2 : 4;
    for (const std::uint32_t Chaos : {0u, 10u, 50u, 100u, 300u}) {
      const WorkloadReport R = runCell<WeakStackAdapter>(
          Threads, /*ThinkNs=*/0, /*PushPercent=*/50,
          /*Capacity=*/conformance::BenchCapacity, Chaos);
      Table.addRow({std::to_string(Chaos),
                    std::to_string(R.totalAborts()),
                    formatDouble(R.abortRate() * 100, 3) + "%"});
      Json.beginRecord();
      Json.field("experiment", "E2b_asynchrony");
      Json.field("threads", Threads);
      Json.field("chaos_permille", Chaos);
      Json.field("ops", R.totalOps());
      Json.field("aborts", R.totalAborts());
      Json.field("abort_rate", R.abortRate());
      Json.endRecord();
    }
    Table.print(std::cout);
  }

  {
    TablePrinter Table({"threads", "aborts", "abort-rate"});
    Table.setTitle("E2c: solo control — one thread never aborts");
    const WorkloadReport R = runCell<WeakStackAdapter>(1);
    Table.addRow({"1", std::to_string(R.totalAborts()),
                  formatDouble(R.abortRate() * 100, 3) + "%"});
    Json.beginRecord();
    Json.field("experiment", "E2c_solo");
    Json.field("threads", std::uint32_t{1});
    Json.field("ops", R.totalOps());
    Json.field("aborts", R.totalAborts());
    Json.field("abort_rate", R.abortRate());
    Json.endRecord();
    Table.print(std::cout);
  }

  const std::string JsonPath = "BENCH_abort_rate.json";
  if (!Json.writeFile(JsonPath)) {
    std::cerr << "error: could not write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";

  std::cout << "\npaper claim: an operation executed in a contention-free "
               "context never returns bottom;\naborts appear only under "
               "interference and vanish as the asynchrony level returns to zero\n";
  return 0;
}
