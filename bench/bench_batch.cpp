//===- bench/bench_batch.cpp - Experiment E14 (batched group ops) --------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E14 — throughput of the batched group operations (push_all/pop_all)
/// against the per-element strong operations they amortize. A batch of k
/// ops crosses the strong seam once: one CONTENTION doorway, one lock (or
/// one combiner record carrying all k requests), k weak applies, one
/// release. The per-element loop pays the full seam crossing k times.
///
/// Sweep: object x threads x batch size x producer/consumer mix, under
/// the default chaos level (or CSOBJ_CHAOS). Objects:
///
///  * fig3 per-element            push/pop loop, the amortization baseline
///  * fig3 batch                  push_all/pop_all through the lock seam
///  * combining batch             push_all/pop_all via one combiner record
///  * sharded batch               per-shard batch fan-out (bag facade)
///
/// Mixes: "paired" (even tids produce, odd tids consume) and
/// "alternating" (every thread pushes a batch then pops a batch).
/// Throughput counts *elements* applied, not group calls. Results go to
/// stdout and BENCH_batch.json (schema in EXPERIMENTS.md); every record
/// carries the path breakdown (path_batched, combiner_batch_size_*), the
/// memory footprint (object_bytes, bytes_per_element) and the per-record
/// conservation verdict.
///
/// Acceptance (full mode, in-binary): at the sweep's top thread count the
/// combining stack's batched throughput at batch >= 8 must beat the plain
/// Figure 3 per-element loop, and its observed mean combiner group size
/// must exceed 1. Quick mode (CSOBJ_BENCH_QUICK=1) only smoke-checks
/// structure and conservation.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "memory/ChaosHook.h"
#include "obs/JsonReporter.h"
#include "obs/MetricsJson.h"
#include "runtime/SpinBarrier.h"
#include "runtime/TablePrinter.h"

#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace csobj;
using namespace csobj::bench;

/// Batch-capable adapters: group entry points over the driver adapters'
/// objects. pushBatch/popBatch return the number of *elements* applied.
struct Fig3PerElementAdapter {
  static constexpr const char *Name = "fig3 per-element";
  Fig3PerElementAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  std::size_t pushBatch(std::uint32_t Tid, const std::uint32_t *Vs,
                        std::size_t N) {
    std::size_t Done = 0;
    for (std::size_t I = 0; I < N; ++I)
      if (Stack.push(Tid, Vs[I]) == PushResult::Done)
        ++Done;
    return Done;
  }
  std::size_t popBatch(std::uint32_t Tid, std::uint32_t *Out, std::size_t N) {
    std::size_t Got = 0;
    for (std::size_t I = 0; I < N; ++I) {
      const PopResult<std::uint32_t> R = Stack.pop(Tid);
      if (!R.isValue())
        break;
      Out[Got++] = R.value();
    }
    return Got;
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  std::size_t footprintBytes() const { return Stack.footprintBytes(); }
  ContentionSensitiveStack<> Stack;
};

struct Fig3BatchAdapter {
  static constexpr const char *Name = "fig3 batch";
  Fig3BatchAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  std::size_t pushBatch(std::uint32_t Tid, const std::uint32_t *Vs,
                        std::size_t N) {
    return Stack.push_all(Tid, Vs, N);
  }
  std::size_t popBatch(std::uint32_t Tid, std::uint32_t *Out, std::size_t N) {
    return Stack.pop_all(Tid, Out, N);
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  std::size_t footprintBytes() const { return Stack.footprintBytes(); }
  ContentionSensitiveStack<> Stack;
};

struct CombiningBatchAdapter {
  static constexpr const char *Name = "combining batch";
  CombiningBatchAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  std::size_t pushBatch(std::uint32_t Tid, const std::uint32_t *Vs,
                        std::size_t N) {
    return Stack.push_all(Tid, Vs, N);
  }
  std::size_t popBatch(std::uint32_t Tid, std::uint32_t *Out, std::size_t N) {
    return Stack.pop_all(Tid, Out, N);
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  std::size_t footprintBytes() const { return Stack.footprintBytes(); }
  std::uint64_t batches() { return Stack.skeleton().batchesForTesting(); }
  CombiningStack<> Stack;
};

struct ShardedBatchAdapter {
  static constexpr const char *Name = "sharded batch";
  ShardedBatchAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity - Capacity % 4,
              /*SlotCount=*/Threads > 2 ? Threads / 2 : 1,
              /*SpinBudget=*/64) {}
  std::size_t pushBatch(std::uint32_t Tid, const std::uint32_t *Vs,
                        std::size_t N) {
    return Stack.push_all(Tid, Vs, N);
  }
  std::size_t popBatch(std::uint32_t Tid, std::uint32_t *Out, std::size_t N) {
    return Stack.pop_all(Tid, Out, N);
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  std::size_t footprintBytes() const { return Stack.footprintBytes(); }
  std::uint64_t exchanges() const {
    return Stack.eliminationExchangesForTesting();
  }
  ShardedStack<4> Stack;
};

constexpr std::uint32_t Capacity = 4096;

struct CellResult {
  std::uint64_t Elements = 0; ///< Elements applied (pushes + pops).
  double DurationSec = 0.0;
  obs::PathSnapshot Snapshot;
  std::uint64_t ObjectBytes = 0;
  double elementsPerSec() const {
    return DurationSec > 0.0 ? static_cast<double>(Elements) / DurationSec
                             : 0.0;
  }
};

/// One sweep cell: fresh object, Threads workers, each performing
/// opsPerThread() element-slots grouped into BatchSize-sized calls.
template <typename AdapterT>
CellResult runBatchCell(std::uint32_t Threads, std::uint32_t BatchSize,
                        bool Paired, const ChaosSettings &Chaos) {
  AdapterT Adapter(Threads, Capacity);
  for (std::uint32_t V = 0; V < Capacity / 2; ++V)
    Adapter.prefillOne(V + 1);

  const std::uint64_t Rounds = opsPerThread() / BatchSize;
  SpinBarrier StartLine(Threads + 1);
  std::vector<std::uint64_t> Done(Threads, 0);
  std::vector<double> Span(Threads, 0.0);
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      ChaosHook Hook(/*Seed=*/0xBA7C4ull * (T + 1),
                     Threads > 1 ? Chaos.YieldPermille : 0,
                     Threads > 1 ? Chaos.StallPermille : 0,
                     Chaos.StallGrants);
      SchedHookScope Scope(Hook);
      std::vector<std::uint32_t> Buf(BatchSize);
      StartLine.arriveAndWait();
      const auto Begin = std::chrono::steady_clock::now();
      // Paired: even tids produce, odd tids consume (solo runs
      // alternate regardless, or nothing would ever drain).
      const bool Produces = Paired && Threads > 1 ? T % 2 == 0 : true;
      const bool Consumes = Paired && Threads > 1 ? T % 2 == 1 : true;
      std::uint64_t Count = 0;
      for (std::uint64_t R = 0; R < Rounds; ++R) {
        if (Produces) {
          for (std::uint32_t I = 0; I < BatchSize; ++I)
            Buf[I] = static_cast<std::uint32_t>(R * BatchSize + I + 1);
          Count += Adapter.pushBatch(T, Buf.data(), BatchSize);
        }
        if (Consumes)
          Count += Adapter.popBatch(T, Buf.data(), BatchSize);
      }
      const auto End = std::chrono::steady_clock::now();
      Done[T] = Count;
      Span[T] = std::chrono::duration<double>(End - Begin).count();
    });

  StartLine.arriveAndWait();
  for (std::thread &W : Workers)
    W.join();

  CellResult R;
  for (const std::uint64_t D : Done)
    R.Elements += D;
  // The cell's window is the slowest worker's span, measured worker-side
  // from the barrier release: join-scheduling noise on an oversubscribed
  // host cannot shrink or stretch it.
  for (const double S : Span)
    R.DurationSec = std::max(R.DurationSec, S);
  R.Snapshot = Adapter.pathSnapshot();
  R.ObjectBytes = Adapter.footprintBytes();
  return R;
}

struct SweepOutput {
  TablePrinter &Table;
  JsonReporter &Json;
  /// Best elements/sec per (object, threads, batched-mode) across mixes.
  std::map<std::string, std::map<std::uint32_t, double>> BestPerElement;
  std::map<std::string, std::map<std::uint32_t, double>> BestBatched;
  double CombiningBatchMean = 0.0;
  bool AllConserved = true;
};

template <typename AdapterT>
void runRows(SweepOutput &Out, const std::vector<std::uint32_t> &BatchSizes) {
  for (const std::uint32_t Threads : threadSweep()) {
    for (const std::uint32_t BatchSize : BatchSizes) {
      for (const bool Paired : {false, true}) {
        if (Paired && Threads < 2)
          continue; // Paired roles need a producer and a consumer.
        ChaosSettings Chaos;
        Chaos.YieldPermille = DefaultChaosPermille;
        if (const std::optional<ChaosSettings> Env = chaosFromEnv())
          Chaos = *Env;
        const CellResult R =
            runBatchCell<AdapterT>(Threads, BatchSize, Paired, Chaos);
        const char *Mix = Paired ? "paired" : "alternating";
        const double Rate = R.elementsPerSec();
        const bool Conserved = R.Snapshot.conserves();
        Out.AllConserved = Out.AllConserved && Conserved;
        if (BatchSize >= 8) {
          Out.BestBatched[AdapterT::Name][Threads] =
              std::max(Out.BestBatched[AdapterT::Name][Threads], Rate);
          if (std::string(AdapterT::Name) == "combining batch")
            Out.CombiningBatchMean =
                std::max(Out.CombiningBatchMean, R.Snapshot.batchMean());
        }
        Out.BestPerElement[AdapterT::Name][Threads] =
            std::max(Out.BestPerElement[AdapterT::Name][Threads], Rate);
        Out.Table.addRow({AdapterT::Name, std::to_string(Threads),
                          std::to_string(BatchSize), Mix,
                          formatRate(Rate),
                          formatDouble(R.Snapshot.batchMean(), 2),
                          Conserved ? "yes" : "NO"});
        Out.Json.beginRecord();
        Out.Json.field("object", AdapterT::Name);
        Out.Json.field("threads", Threads);
        Out.Json.field("batch_size", BatchSize);
        Out.Json.field("mix", Mix);
        Out.Json.field("ops", R.Elements);
        Out.Json.field("duration_sec", R.DurationSec);
        Out.Json.field("elements_per_sec", Rate);
        Out.Json.field("conserves", Conserved);
        obs::emitPathBreakdown(Out.Json, R.Snapshot);
        obs::emitMemoryFootprint(Out.Json, R.ObjectBytes, Capacity);
        Out.Json.endRecord();
      }
    }
  }
}

} // namespace

int main() {
  printRegisterPolicy(std::cout);

  const std::vector<std::uint32_t> BatchSizes =
      quickMode() ? std::vector<std::uint32_t>{8}
                  : std::vector<std::uint32_t>{1, 8, 32};

  TablePrinter Table({"object", "threads", "batch", "mix", "elems/s",
                      "batch-mean", "conserves"});
  Table.setTitle("E14: batched group ops vs per-element seam crossings");
  JsonReporter Json;
  SweepOutput Out{Table, Json, {}, {}, 0.0, true};

  runRows<Fig3PerElementAdapter>(Out, BatchSizes);
  runRows<Fig3BatchAdapter>(Out, BatchSizes);
  runRows<CombiningBatchAdapter>(Out, BatchSizes);
  runRows<ShardedBatchAdapter>(Out, BatchSizes);

  Table.print(std::cout);

  const std::string JsonPath = "BENCH_batch.json";
  if (!Json.writeFile(JsonPath)) {
    std::cerr << "error: could not write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";

  if (!Out.AllConserved) {
    std::cerr << "FAIL: a cell's path counters do not conserve\n";
    return 1;
  }

  if (quickMode()) {
    std::cout << "SKIP: acceptance comparison is full-mode only "
                 "(CSOBJ_BENCH_QUICK=1)\n";
    return 0;
  }

  // Acceptance: at the top sweep point, one batched combining call
  // stream (batch >= 8) must beat the per-element Figure 3 loop, and
  // the combiner must actually have seen multi-op groups.
  const std::uint32_t Top = threadSweep().back();
  const double PerElement = Out.BestPerElement["fig3 per-element"][Top];
  const double Combining = Out.BestBatched["combining batch"][Top];
  const double Fig3Batch = Out.BestBatched["fig3 batch"][Top];
  const double Sharded = Out.BestBatched["sharded batch"][Top];
  std::cout << "at " << Top << " threads (best mix, batch >= 8): "
            << "fig3 per-element " << formatRate(PerElement)
            << "  fig3 batch " << formatRate(Fig3Batch)
            << "  combining batch " << formatRate(Combining)
            << "  sharded batch " << formatRate(Sharded)
            << "  (combiner mean group " << formatDouble(Out.CombiningBatchMean, 2)
            << ")\n";
  if (Combining > PerElement && Out.CombiningBatchMean > 1.0) {
    std::cout << "PASS: batched combining beats the per-element fig3 loop at "
              << Top << " threads\n";
    return 0;
  }
  std::cerr << "FAIL: batched combining does not beat the per-element loop "
               "(or the combiner never grouped)\n";
  return 1;
}
