//===- bench/BenchCommon.h - Shared benchmark adapters ----------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapters binding every stack/queue implementation to the generic
/// closed-loop driver (runtime/Driver.h), plus the shared sweep settings
/// used by all experiment binaries. Setting CSOBJ_BENCH_QUICK=1 shrinks
/// every sweep for smoke runs.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_BENCH_BENCHCOMMON_H
#define CSOBJ_BENCH_BENCHCOMMON_H

#include "baselines/EliminationBackoffStack.h"
#include "baselines/LockedQueue.h"
#include "baselines/LockedStack.h"
#include "baselines/MichaelScottQueue.h"
#include "baselines/TreiberStack.h"
#include "core/AbortableQueue.h"
#include "core/AbortableStack.h"
#include "core/ContentionSensitiveQueue.h"
#include "core/ContentionSensitiveStack.h"
#include "core/CrashTolerantStack.h"
#include "core/UnboundedStack.h"
#include "core/NonBlockingQueue.h"
#include "core/NonBlockingStack.h"
#include "locks/McsLock.h"
#include "locks/TicketLock.h"
#include "perf/AdaptiveShardedStack.h"
#include "perf/CombiningObjects.h"
#include "perf/EliminatingStack.h"
#include "perf/ShardedStack.h"
#include "runtime/Driver.h"
#include "runtime/Workload.h"

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace csobj {
namespace bench {

/// Prints which register policy the binary's *default* instantiations
/// were compiled with (memory/RegisterPolicy.h). Every bench main calls
/// this first so saved logs are self-describing: an "instrumented" run
/// carries per-access counting overhead and is not comparable with a
/// "fast" run.
inline void printRegisterPolicy(std::ostream &OS) {
  OS << "default register policy: " << DefaultRegisterPolicy::Name;
  if (std::is_same_v<DefaultRegisterPolicy, Instrumented>)
    OS << " (rebuild with -DCSOBJ_FAST_REGISTERS=ON for fast)";
  OS << '\n';
}

/// True when CSOBJ_BENCH_QUICK=1: shrink sweeps for smoke runs.
inline bool quickMode() {
  const char *Env = std::getenv("CSOBJ_BENCH_QUICK");
  return Env != nullptr && Env[0] == '1';
}

/// Thread counts used by all sweep experiments.
inline std::vector<std::uint32_t> threadSweep() {
  if (quickMode())
    return {1, 2};
  return {1, 2, 4, 8};
}

/// Default operations per thread per cell.
inline std::uint64_t opsPerThread() { return quickMode() ? 5000 : 40000; }

//===----------------------------------------------------------------------===
// Stack adapters (driver contract: apply + prefillOne)
//===----------------------------------------------------------------------===

inline OpOutcome fromPush(PushResult R) {
  switch (R) {
  case PushResult::Done:
    return OpOutcome::Ok;
  case PushResult::Full:
    return OpOutcome::Full;
  case PushResult::Abort:
    return OpOutcome::Abort;
  }
  return OpOutcome::Abort;
}

template <typename V>
OpOutcome fromPop(const PopResult<V> &R) {
  if (R.isValue())
    return OpOutcome::Ok;
  return R.isEmpty() ? OpOutcome::Empty : OpOutcome::Abort;
}

/// Figure 1: weak operations, aborts surface to the harness.
struct WeakStackAdapter {
  static constexpr const char *Name = "abortable(fig1)";
  WeakStackAdapter(std::uint32_t, std::uint32_t Capacity)
      : Stack(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.weakPush(V)) : fromPop(Stack.weakPop());
  }
  void prefillOne(std::uint32_t V) { (void)Stack.weakPush(V); }
  std::size_t footprintBytes() const {
    return sizeof(Stack) + Stack.heapBytes();
  }
  AbortableStack<> Stack;
};

/// Figure 2: non-blocking retry loop; retries are reported.
struct NonBlockingStackAdapter {
  static constexpr const char *Name = "non-blocking(fig2)";
  NonBlockingStackAdapter(std::uint32_t, std::uint32_t Capacity)
      : Stack(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &Retries) {
    if (IsPush) {
      const auto R = Stack.pushCounting(V);
      Retries += R.Retries;
      return fromPush(R.Result);
    }
    const auto R = Stack.popCounting();
    Retries += R.Retries;
    return fromPop(R.Result);
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(V); }
  NonBlockingStack<> Stack;
};

/// Figure 2 with exponential backoff as the retry policy.
struct BackoffStackAdapter {
  static constexpr const char *Name = "non-blocking+backoff";
  BackoffStackAdapter(std::uint32_t, std::uint32_t Capacity)
      : Stack(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &Retries) {
    if (IsPush) {
      const auto R = Stack.pushCounting(V);
      Retries += R.Retries;
      return fromPush(R.Result);
    }
    const auto R = Stack.popCounting();
    Retries += R.Retries;
    return fromPop(R.Result);
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(V); }
  NonBlockingStack<Compact64, ExponentialBackoff> Stack;
};

/// Figure 3: the paper's contention-sensitive starvation-free stack.
struct CsStackAdapter {
  static constexpr const char *Name = "contention-sensitive(fig3)";
  CsStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const { return Stack.lastPath(Tid); }
  std::size_t footprintBytes() const { return Stack.footprintBytes(); }
  ContentionSensitiveStack<> Stack;
};

/// Treiber's lock-free stack.
struct TreiberStackAdapter {
  static constexpr const char *Name = "treiber";
  TreiberStackAdapter(std::uint32_t, std::uint32_t Capacity)
      : Stack(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(V)) : fromPop(Stack.pop());
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(V); }
  TreiberStack Stack;
};

/// Elimination-backoff stack.
struct EliminationStackAdapter {
  static constexpr const char *Name = "elimination";
  EliminationStackAdapter(std::uint32_t, std::uint32_t Capacity)
      : Stack(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(V)) : fromPop(Stack.pop());
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(V); }
  EliminationBackoffStack Stack;
};

/// Figure 3 with the gated elimination window (perf/EliminatingStack.h).
/// Slots scale with threads so concurrent rendezvous spread.
struct EliminatingCsStackAdapter {
  static constexpr const char *Name = "eliminating(fig3+elim)";
  EliminatingCsStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity, /*SlotCount=*/Threads > 2 ? Threads / 2 : 1,
              /*SpinBudget=*/64) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  std::uint64_t exchanges() const {
    return Stack.eliminationExchangesForTesting();
  }
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const { return Stack.lastPath(Tid); }
  std::size_t footprintBytes() const { return Stack.footprintBytes(); }
  EliminatingContentionSensitiveStack<> Stack;
};

/// Figure 3 fast path over the flat-combining slow path
/// (perf/CombiningSlowPath.h).
struct CombiningStackAdapter {
  static constexpr const char *Name = "combining(fig3+fc)";
  CombiningStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  std::uint64_t batches() { return Stack.skeleton().batchesForTesting(); }
  std::uint64_t combinedOps() {
    return Stack.skeleton().combinedOpsForTesting();
  }
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const { return Stack.lastPath(Tid); }
  std::size_t footprintBytes() const { return Stack.footprintBytes(); }
  CombiningStack<> Stack;
};

/// Four Figure 3 shards behind a bag facade with elimination balancing
/// (perf/ShardedStack.h).
struct ShardedStackAdapter {
  static constexpr const char *Name = "sharded(4xfig3)";
  ShardedStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity - Capacity % 4,
              /*SlotCount=*/Threads > 2 ? Threads / 2 : 1,
              /*SpinBudget=*/64) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  std::uint64_t exchanges() const {
    return Stack.eliminationExchangesForTesting();
  }
  // No lastPath: one facade op enters several shard skeletons, so a
  // single terminal path would be ambiguous.
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  std::size_t footprintBytes() const { return Stack.footprintBytes(); }
  ShardedStack<4> Stack;
};

/// Adaptive mask over eight Figure 3 shards driven by the obs control
/// loop (perf/AdaptiveShardedStack.h). Starts at one shard; the
/// controller widens the mask under lock-path pressure and retires
/// shards when the load goes shortcut-dominant, so E18 can compare one
/// object against every static shard count across load phases.
struct AdaptiveStackAdapter {
  static constexpr const char *Name = "adaptive(<=8xfig3)";
  AdaptiveStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity - Capacity % 8, /*InitialShards=*/1,
              /*SlotCount=*/Threads > 2 ? Threads / 2 : 1,
              /*SpinBudget=*/64) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  std::uint64_t exchanges() const {
    return Stack.eliminationExchangesForTesting();
  }
  std::uint32_t activeShards() const { return Stack.activeShards(); }
  std::uint64_t reconfigEpoch() const { return Stack.reconfigEpoch(); }
  // No lastPath, for the same reason as ShardedStackAdapter.
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  std::size_t footprintBytes() const { return Stack.footprintBytes(); }
  AdaptiveShardedStack<8> Stack;
};

/// Crash-tolerant Figure 3 (core/CrashTolerantStack.h): leased lock,
/// recoverable doorway, lock-free fallback. Exposes the degradation
/// stats so benches can report how often the slow path fell back.
struct CrashTolerantStackAdapter {
  static constexpr const char *Name = "crash-tolerant(fig3+leases)";
  CrashTolerantStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  CrashTolerantStackAdapter(std::uint32_t Threads, std::uint32_t Capacity,
                            std::uint32_t Patience)
      : Stack(Threads, Capacity, Patience) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  DegradationStats stats() const { return Stack.skeleton().statsForTesting(); }
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const { return Stack.lastPath(Tid); }
  CrashTolerantStack<> Stack;
};

/// Unbounded contention-sensitive stack (Figure 3 over the chunked
/// reclaiming Figure 1). Capacity is ignored — the object grows and
/// shrinks with the live population; Full exists only at the 65535-value
/// envelope. Exposes the hazard domain so benches can report retire
/// backlog and resident bytes alongside throughput.
struct UnboundedCsStackAdapter {
  static constexpr const char *Name = "unbounded-cs(fig3+hp)";
  UnboundedCsStackAdapter(std::uint32_t Threads, std::uint32_t /*Capacity*/)
      : Stack(Threads) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const { return Stack.lastPath(Tid); }
  std::size_t footprintBytes() const { return Stack.footprintBytes(); }
  HazardDomain &domain() { return Stack.unbounded().domain(); }
  ContentionSensitiveUnboundedStack<> Stack;
};

/// Coarse lock-based stack, parametric in the lock.
template <typename Lock>
struct LockedStackAdapter {
  static constexpr const char *Name = "locked";
  LockedStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  LockedStack<Lock> Stack;
};

//===----------------------------------------------------------------------===
// Queue adapters
//===----------------------------------------------------------------------===

struct WeakQueueAdapter {
  static constexpr const char *Name = "abortable-queue";
  WeakQueueAdapter(std::uint32_t, std::uint32_t Capacity)
      : Queue(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Queue.weakEnqueue(V))
                  : fromPop(Queue.weakDequeue());
  }
  void prefillOne(std::uint32_t V) { (void)Queue.weakEnqueue(V); }
  AbortableQueue<> Queue;
};

struct NonBlockingQueueAdapter {
  static constexpr const char *Name = "non-blocking-queue";
  NonBlockingQueueAdapter(std::uint32_t, std::uint32_t Capacity)
      : Queue(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &Retries) {
    if (IsPush) {
      const auto R = Queue.enqueueCounting(V);
      Retries += R.Retries;
      return fromPush(R.Result);
    }
    const auto R = Queue.dequeueCounting();
    Retries += R.Retries;
    return fromPop(R.Result);
  }
  void prefillOne(std::uint32_t V) { (void)Queue.enqueue(V); }
  NonBlockingQueue<> Queue;
};

struct CsQueueAdapter {
  static constexpr const char *Name = "cs-queue(fig3)";
  CsQueueAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Queue(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Queue.enqueue(Tid, V))
                  : fromPop(Queue.dequeue(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Queue.enqueue(0, V); }
  obs::PathSnapshot pathSnapshot() const { return Queue.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const { return Queue.lastPath(Tid); }
  std::size_t footprintBytes() const { return Queue.footprintBytes(); }
  ContentionSensitiveQueue<> Queue;
};

struct MsQueueAdapter {
  static constexpr const char *Name = "michael-scott";
  MsQueueAdapter(std::uint32_t, std::uint32_t Capacity) : Queue(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Queue.enqueue(V)) : fromPop(Queue.dequeue());
  }
  void prefillOne(std::uint32_t V) { (void)Queue.enqueue(V); }
  MichaelScottQueue Queue;
};

template <typename Lock>
struct LockedQueueAdapter {
  static constexpr const char *Name = "locked-queue";
  LockedQueueAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Queue(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Queue.enqueue(Tid, V))
                  : fromPop(Queue.dequeue(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Queue.enqueue(0, V); }
  LockedQueue<Lock> Queue;
};

/// Default asynchrony-injection level for contended sweeps: 10% yield
/// probability per shared access (see memory/ChaosHook.h). On a
/// single-core host this emulates the paper's asynchronous interleaving;
/// all implementations run under the identical hook.
inline constexpr std::uint32_t DefaultChaosPermille = 100;

/// Chaos-injection knobs for a sweep cell (memory/ChaosHook.h): the
/// yield channel models ordinary preemption, the stall channel models
/// the long lock-holder preemption that expires a lease.
struct ChaosSettings {
  std::uint32_t YieldPermille = DefaultChaosPermille;
  std::uint32_t StallPermille = 0;
  std::uint64_t StallGrants = 0;
  /// Thread the stall channel targets (~0 = all). Benches stall a single
  /// victim so that survivors keep ticking the access clock — see the
  /// note on WorkloadConfig::ChaosStallTid.
  std::uint32_t StallTid = ~std::uint32_t{0};
};

/// Parses the CSOBJ_CHAOS environment variable: comma-separated
/// key=value pairs, keys "yield" (permille), "stall" (permille),
/// "grants" (stall length in foreign shared accesses) and "victim"
/// (thread id the stall channel targets; omit for all threads), e.g.
///
///   CSOBJ_CHAOS="yield=100,stall=5,grants=2000" ./bench_starvation
///
/// Unknown keys are ignored; unset keys keep their defaults. Returns
/// nothing when the variable is absent, so every bench keeps its
/// compiled-in settings unless the user opts into chaos mode.
inline std::optional<ChaosSettings> chaosFromEnv() {
  const char *Env = std::getenv("CSOBJ_CHAOS");
  if (Env == nullptr || Env[0] == '\0')
    return std::nullopt;
  ChaosSettings Settings;
  const char *P = Env;
  while (*P != '\0') {
    const char *KeyBegin = P;
    while (*P != '\0' && *P != '=' && *P != ',')
      ++P;
    const std::size_t KeyLen = static_cast<std::size_t>(P - KeyBegin);
    std::uint64_t Value = 0;
    if (*P == '=') {
      ++P;
      while (*P >= '0' && *P <= '9')
        Value = Value * 10 + static_cast<std::uint64_t>(*P++ - '0');
    }
    const auto Is = [&](const char *Key) {
      return KeyLen == std::char_traits<char>::length(Key) &&
             std::char_traits<char>::compare(KeyBegin, Key, KeyLen) == 0;
    };
    if (Is("yield"))
      Settings.YieldPermille = static_cast<std::uint32_t>(Value);
    else if (Is("stall"))
      Settings.StallPermille = static_cast<std::uint32_t>(Value);
    else if (Is("grants"))
      Settings.StallGrants = Value;
    else if (Is("victim"))
      Settings.StallTid = static_cast<std::uint32_t>(Value);
    while (*P != '\0' && *P != ',')
      ++P;
    if (*P == ',')
      ++P;
  }
  return Settings;
}

/// Like runCell below but drives a caller-supplied adapter with explicit
/// chaos settings, so per-object state (e.g. degradation counters on
/// CrashTolerantStackAdapter) survives the run for reporting.
template <typename AdapterT>
WorkloadReport runCellOn(AdapterT &Adapter, std::uint32_t Threads,
                         const ChaosSettings &Chaos,
                         std::uint32_t ThinkNs = 0,
                         std::uint32_t PushPercent = 50,
                         std::uint32_t Capacity = 4096) {
  WorkloadConfig Config;
  Config.Threads = Threads;
  Config.OpsPerThread = opsPerThread();
  Config.PushPercent = PushPercent;
  Config.ThinkTimeNs = ThinkNs;
  Config.Capacity = Capacity;
  Config.PrefillPercent = 50;
  Config.ChaosYieldPermille = Threads > 1 ? Chaos.YieldPermille : 0;
  Config.ChaosStallPermille = Threads > 1 ? Chaos.StallPermille : 0;
  Config.ChaosStallGrants = Chaos.StallGrants;
  Config.ChaosStallTid = Chaos.StallTid;
  return runClosedLoop(Adapter, Config);
}

/// Runs one sweep cell: fresh adapter, closed loop, returns the report.
/// CSOBJ_CHAOS, when set, overrides the compiled-in chaos level for
/// every cell (chaos mode without recompiling).
template <typename AdapterT>
WorkloadReport runCell(std::uint32_t Threads, std::uint32_t ThinkNs = 0,
                       std::uint32_t PushPercent = 50,
                       std::uint32_t Capacity = 4096,
                       std::uint32_t ChaosPermille = DefaultChaosPermille) {
  ChaosSettings Chaos;
  Chaos.YieldPermille = ChaosPermille;
  if (const std::optional<ChaosSettings> Env = chaosFromEnv())
    Chaos = *Env;
  AdapterT Adapter(Threads, Capacity);
  return runCellOn(Adapter, Threads, Chaos, ThinkNs, PushPercent, Capacity);
}

} // namespace bench
} // namespace csobj

#endif // CSOBJ_BENCH_BENCHCOMMON_H
