//===- bench/BenchCommon.h - Shared benchmark adapters ----------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapters binding every stack/queue implementation to the generic
/// closed-loop driver (runtime/Driver.h), plus the shared sweep settings
/// used by all experiment binaries. Setting CSOBJ_BENCH_QUICK=1 shrinks
/// every sweep for smoke runs.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_BENCH_BENCHCOMMON_H
#define CSOBJ_BENCH_BENCHCOMMON_H

#include "baselines/EliminationBackoffStack.h"
#include "baselines/LockedQueue.h"
#include "baselines/LockedStack.h"
#include "baselines/MichaelScottQueue.h"
#include "baselines/TreiberStack.h"
#include "core/AbortableQueue.h"
#include "core/AbortableStack.h"
#include "core/ContentionSensitiveQueue.h"
#include "core/ContentionSensitiveStack.h"
#include "core/NonBlockingQueue.h"
#include "core/NonBlockingStack.h"
#include "locks/McsLock.h"
#include "locks/TicketLock.h"
#include "runtime/Driver.h"
#include "runtime/Workload.h"

#include <cstdint>
#include <cstdlib>
#include <ostream>
#include <type_traits>
#include <vector>

namespace csobj {
namespace bench {

/// Prints which register policy the binary's *default* instantiations
/// were compiled with (memory/RegisterPolicy.h). Every bench main calls
/// this first so saved logs are self-describing: an "instrumented" run
/// carries per-access counting overhead and is not comparable with a
/// "fast" run.
inline void printRegisterPolicy(std::ostream &OS) {
  OS << "default register policy: " << DefaultRegisterPolicy::Name;
  if (std::is_same_v<DefaultRegisterPolicy, Instrumented>)
    OS << " (rebuild with -DCSOBJ_FAST_REGISTERS=ON for fast)";
  OS << '\n';
}

/// True when CSOBJ_BENCH_QUICK=1: shrink sweeps for smoke runs.
inline bool quickMode() {
  const char *Env = std::getenv("CSOBJ_BENCH_QUICK");
  return Env != nullptr && Env[0] == '1';
}

/// Thread counts used by all sweep experiments.
inline std::vector<std::uint32_t> threadSweep() {
  if (quickMode())
    return {1, 2};
  return {1, 2, 4, 8};
}

/// Default operations per thread per cell.
inline std::uint64_t opsPerThread() { return quickMode() ? 5000 : 40000; }

//===----------------------------------------------------------------------===
// Stack adapters (driver contract: apply + prefillOne)
//===----------------------------------------------------------------------===

inline OpOutcome fromPush(PushResult R) {
  switch (R) {
  case PushResult::Done:
    return OpOutcome::Ok;
  case PushResult::Full:
    return OpOutcome::Full;
  case PushResult::Abort:
    return OpOutcome::Abort;
  }
  return OpOutcome::Abort;
}

template <typename V>
OpOutcome fromPop(const PopResult<V> &R) {
  if (R.isValue())
    return OpOutcome::Ok;
  return R.isEmpty() ? OpOutcome::Empty : OpOutcome::Abort;
}

/// Figure 1: weak operations, aborts surface to the harness.
struct WeakStackAdapter {
  static constexpr const char *Name = "abortable(fig1)";
  WeakStackAdapter(std::uint32_t, std::uint32_t Capacity)
      : Stack(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.weakPush(V)) : fromPop(Stack.weakPop());
  }
  void prefillOne(std::uint32_t V) { (void)Stack.weakPush(V); }
  AbortableStack<> Stack;
};

/// Figure 2: non-blocking retry loop; retries are reported.
struct NonBlockingStackAdapter {
  static constexpr const char *Name = "non-blocking(fig2)";
  NonBlockingStackAdapter(std::uint32_t, std::uint32_t Capacity)
      : Stack(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &Retries) {
    if (IsPush) {
      const auto R = Stack.pushCounting(V);
      Retries += R.Retries;
      return fromPush(R.Result);
    }
    const auto R = Stack.popCounting();
    Retries += R.Retries;
    return fromPop(R.Result);
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(V); }
  NonBlockingStack<> Stack;
};

/// Figure 2 with exponential backoff as the retry policy.
struct BackoffStackAdapter {
  static constexpr const char *Name = "non-blocking+backoff";
  BackoffStackAdapter(std::uint32_t, std::uint32_t Capacity)
      : Stack(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &Retries) {
    if (IsPush) {
      const auto R = Stack.pushCounting(V);
      Retries += R.Retries;
      return fromPush(R.Result);
    }
    const auto R = Stack.popCounting();
    Retries += R.Retries;
    return fromPop(R.Result);
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(V); }
  NonBlockingStack<Compact64, ExponentialBackoff> Stack;
};

/// Figure 3: the paper's contention-sensitive starvation-free stack.
struct CsStackAdapter {
  static constexpr const char *Name = "contention-sensitive(fig3)";
  CsStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  ContentionSensitiveStack<> Stack;
};

/// Treiber's lock-free stack.
struct TreiberStackAdapter {
  static constexpr const char *Name = "treiber";
  TreiberStackAdapter(std::uint32_t, std::uint32_t Capacity)
      : Stack(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(V)) : fromPop(Stack.pop());
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(V); }
  TreiberStack Stack;
};

/// Elimination-backoff stack.
struct EliminationStackAdapter {
  static constexpr const char *Name = "elimination";
  EliminationStackAdapter(std::uint32_t, std::uint32_t Capacity)
      : Stack(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(V)) : fromPop(Stack.pop());
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(V); }
  EliminationBackoffStack Stack;
};

/// Coarse lock-based stack, parametric in the lock.
template <typename Lock>
struct LockedStackAdapter {
  static constexpr const char *Name = "locked";
  LockedStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Stack.push(Tid, V)) : fromPop(Stack.pop(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  LockedStack<Lock> Stack;
};

//===----------------------------------------------------------------------===
// Queue adapters
//===----------------------------------------------------------------------===

struct WeakQueueAdapter {
  static constexpr const char *Name = "abortable-queue";
  WeakQueueAdapter(std::uint32_t, std::uint32_t Capacity)
      : Queue(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Queue.weakEnqueue(V))
                  : fromPop(Queue.weakDequeue());
  }
  void prefillOne(std::uint32_t V) { (void)Queue.weakEnqueue(V); }
  AbortableQueue<> Queue;
};

struct NonBlockingQueueAdapter {
  static constexpr const char *Name = "non-blocking-queue";
  NonBlockingQueueAdapter(std::uint32_t, std::uint32_t Capacity)
      : Queue(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &Retries) {
    if (IsPush) {
      const auto R = Queue.enqueueCounting(V);
      Retries += R.Retries;
      return fromPush(R.Result);
    }
    const auto R = Queue.dequeueCounting();
    Retries += R.Retries;
    return fromPop(R.Result);
  }
  void prefillOne(std::uint32_t V) { (void)Queue.enqueue(V); }
  NonBlockingQueue<> Queue;
};

struct CsQueueAdapter {
  static constexpr const char *Name = "cs-queue(fig3)";
  CsQueueAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Queue(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Queue.enqueue(Tid, V))
                  : fromPop(Queue.dequeue(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Queue.enqueue(0, V); }
  ContentionSensitiveQueue<> Queue;
};

struct MsQueueAdapter {
  static constexpr const char *Name = "michael-scott";
  MsQueueAdapter(std::uint32_t, std::uint32_t Capacity) : Queue(Capacity) {}
  OpOutcome apply(std::uint32_t, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Queue.enqueue(V)) : fromPop(Queue.dequeue());
  }
  void prefillOne(std::uint32_t V) { (void)Queue.enqueue(V); }
  MichaelScottQueue Queue;
};

template <typename Lock>
struct LockedQueueAdapter {
  static constexpr const char *Name = "locked-queue";
  LockedQueueAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Queue(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    return IsPush ? fromPush(Queue.enqueue(Tid, V))
                  : fromPop(Queue.dequeue(Tid));
  }
  void prefillOne(std::uint32_t V) { (void)Queue.enqueue(0, V); }
  LockedQueue<Lock> Queue;
};

/// Default asynchrony-injection level for contended sweeps: 10% yield
/// probability per shared access (see memory/ChaosHook.h). On a
/// single-core host this emulates the paper's asynchronous interleaving;
/// all implementations run under the identical hook.
inline constexpr std::uint32_t DefaultChaosPermille = 100;

/// Runs one sweep cell: fresh adapter, closed loop, returns the report.
template <typename AdapterT>
WorkloadReport runCell(std::uint32_t Threads, std::uint32_t ThinkNs = 0,
                       std::uint32_t PushPercent = 50,
                       std::uint32_t Capacity = 4096,
                       std::uint32_t ChaosPermille = DefaultChaosPermille) {
  WorkloadConfig Config;
  Config.Threads = Threads;
  Config.OpsPerThread = opsPerThread();
  Config.PushPercent = PushPercent;
  Config.ThinkTimeNs = ThinkNs;
  Config.Capacity = Capacity;
  Config.PrefillPercent = 50;
  Config.ChaosYieldPermille = Threads > 1 ? ChaosPermille : 0;
  AdapterT Adapter(Threads, Capacity);
  return runClosedLoop(Adapter, Config);
}

} // namespace bench
} // namespace csobj

#endif // CSOBJ_BENCH_BENCHCOMMON_H
