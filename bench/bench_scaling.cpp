//===- bench/bench_scaling.cpp - Experiment E12 (acceleration layer) -----===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E12 — scaling sweep for the acceleration layer (src/perf/). The
/// paper's Figure 3 construction optimizes the solo case (6 shared
/// accesses) and funnels contention through one lock; the acceleration
/// layer attacks the contended case without giving the solo bound back:
///
///  * shortcut+lock (fig3)        the baseline construction
///  * eliminating(fig3+elim)      gated elimination before the lock
///  * combining(fig3+fc)          flat-combining slow path
///  * sharded(4xfig3)             four shards + elimination balancing
///  * treiber                     unbounded lock-free reference
///  * elimination                 HSY elimination-backoff reference
///
/// Sweeps threads x push-mix (30/50/70% push) under the default chaos
/// level. Results go to stdout as a table and to BENCH_scaling.json
/// (schema in EXPERIMENTS.md). The acceptance check — at >=4 threads at
/// least one accelerated stack beats plain Figure 3 — only runs when
/// the host actually has >=4 hardware threads: on smaller hosts the
/// sweep still emits valid structural output but parallel speedups are
/// physically impossible, so the check is skipped rather than faked.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "obs/JsonReporter.h"
#include "obs/MetricsJson.h"

#include "runtime/TablePrinter.h"

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace csobj;
using namespace csobj::bench;

struct SweepOutput {
  TablePrinter &Table;
  JsonReporter &Json;
  /// Best throughput per (object, threads) across mixes, for the final
  /// host-conditional acceleration check.
  std::map<std::string, std::map<std::uint32_t, double>> Best;
};

/// Per-adapter acceleration stats, appended to the JSON record when the
/// adapter exposes them. The path breakdown (obs/MetricsJson.h) is the
/// preferred channel — it carries combiner_batches/combined_ops along
/// with the per-path operation counts — so the legacy combiner fields
/// are only emitted for adapters without a metrics snapshot.
template <typename AdapterT>
void emitAccelStats(JsonReporter &Json, AdapterT &Adapter,
                    std::uint32_t Capacity) {
  if constexpr (requires { Adapter.footprintBytes(); })
    obs::emitMemoryFootprint(Json, Adapter.footprintBytes(), Capacity);
  if constexpr (requires { Adapter.exchanges(); })
    Json.field("elimination_exchanges", Adapter.exchanges());
  if constexpr (requires { Adapter.pathSnapshot(); }) {
    obs::emitPathBreakdown(Json, Adapter.pathSnapshot());
  } else if constexpr (requires { Adapter.batches(); }) {
    Json.field("combiner_batches", Adapter.batches());
    Json.field("combined_ops", Adapter.combinedOps());
  }
}

template <typename AdapterT>
void runRows(SweepOutput &Out, const char *Object) {
  for (const std::uint32_t Threads : threadSweep()) {
    for (const std::uint32_t PushPercent : {30u, 50u, 70u}) {
      ChaosSettings Chaos;
      Chaos.YieldPermille = DefaultChaosPermille;
      if (const std::optional<ChaosSettings> Env = chaosFromEnv())
        Chaos = *Env;
      AdapterT Adapter(Threads, /*Capacity=*/4096);
      const WorkloadReport R =
          runCellOn(Adapter, Threads, Chaos, /*ThinkNs=*/0, PushPercent);
      const LatencySummary S = summarize(R.mergedLatency());
      const double Throughput = R.throughputOpsPerSec();
      Out.Best[Object][Threads] =
          std::max(Out.Best[Object][Threads], Throughput);
      Out.Table.addRow({Object, std::to_string(Threads),
                        std::to_string(PushPercent) + "%",
                        formatRate(Throughput),
                        formatNs(static_cast<double>(S.P99Ns)),
                        formatDouble(R.fairness(), 4)});
      Out.Json.beginRecord();
      Out.Json.field("object", Object);
      Out.Json.field("threads", Threads);
      Out.Json.field("push_percent", PushPercent);
      Out.Json.field("ops", R.totalOps());
      Out.Json.field("duration_sec", R.DurationSec);
      Out.Json.field("throughput_ops_per_sec", Throughput);
      Out.Json.field("abort_rate", R.abortRate());
      Out.Json.field("mean_retries", R.meanRetries());
      Out.Json.field("p99_ns", static_cast<std::uint64_t>(S.P99Ns));
      Out.Json.field("jain_fairness", R.fairness());
      emitAccelStats(Out.Json, Adapter, /*Capacity=*/4096);
      Out.Json.endRecord();
    }
  }
}

} // namespace

int main() {
  printRegisterPolicy(std::cout);

  TablePrinter Table(
      {"object", "threads", "push%", "throughput", "p99", "jain"});
  Table.setTitle("E12: acceleration-layer scaling (threads x push mix)");
  JsonReporter Json;
  SweepOutput Out{Table, Json, {}};

  runRows<CsStackAdapter>(Out, "shortcut+lock (fig3)");
  runRows<EliminatingCsStackAdapter>(Out, "eliminating(fig3+elim)");
  runRows<CombiningStackAdapter>(Out, "combining(fig3+fc)");
  runRows<ShardedStackAdapter>(Out, "sharded(4xfig3)");
  runRows<TreiberStackAdapter>(Out, "treiber");
  runRows<EliminationStackAdapter>(Out, "elimination");

  Table.print(std::cout);

  // Host-conditional acceleration check: with real parallelism (>=4
  // hardware threads), at the 4-thread point at least one accelerated
  // variant must beat the plain Figure 3 stack on its best mix. On
  // fewer cores the sweep is still structurally valid but every stack
  // is time-sliced onto the same core, so the comparison says nothing.
  // Whether it ran is recorded in the JSON so the trajectory gate can
  // tell a small-host skip apart from a vanished check.
  const std::uint32_t HwThreads = std::thread::hardware_concurrency();
  const std::uint32_t Top = threadSweep().back();
  const bool AcceptanceSkipped = HwThreads < 4 || Top < 4;
  Json.beginRecord();
  Json.field("record", "acceptance");
  Json.field("acceptance_skipped", AcceptanceSkipped);
  Json.endRecord();

  const std::string JsonPath = "BENCH_scaling.json";
  if (!Json.writeFile(JsonPath)) {
    std::cerr << "error: could not write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";

  if (AcceptanceSkipped) {
    std::cout << "SKIP: acceleration check needs >=4 hardware threads and "
                 "a >=4-thread sweep point (host has "
              << HwThreads << ", sweep tops out at " << Top << ")\n";
    return 0;
  }
  const double Fig3 = Out.Best["shortcut+lock (fig3)"][Top];
  const double Elim = Out.Best["eliminating(fig3+elim)"][Top];
  const double Comb = Out.Best["combining(fig3+fc)"][Top];
  const double Shard = Out.Best["sharded(4xfig3)"][Top];
  std::cout << "at " << Top << " threads (best mix): fig3 "
            << formatRate(Fig3) << "  eliminating " << formatRate(Elim)
            << "  combining " << formatRate(Comb) << "  sharded "
            << formatRate(Shard) << "\n";
  if (Elim > Fig3 || Comb > Fig3 || Shard > Fig3) {
    std::cout << "PASS: an accelerated stack beats plain fig3 at " << Top
              << " threads\n";
    return 0;
  }
  std::cerr << "FAIL: no accelerated stack beats plain fig3 at " << Top
            << " threads\n";
  return 1;
}
