#!/usr/bin/env python3
"""Performance-trajectory regression gate over BENCH_*.json files.

The repo commits benchmark output (BENCH_scaling.json, BENCH_soak.json,
...) as its performance trajectory. This script diffs freshly produced
candidate files against the committed baselines with per-metric,
*directional* tolerance bands and exits non-zero on regression, so CI
can refuse perf-regressing changes the way it refuses failing tests.

Matching: records are paired by their identity fields — every
string-valued field plus a fixed set of integer sweep keys (threads,
push_percent, workers, keys, ...). A baseline record with no candidate
partner is a failure (a vanished sweep cell is a regression in
coverage); extra candidate records are informational (new cells are how
the trajectory grows).

Gating: only fields whose names classify as higher-is-better
(throughput, exchanges, completed...) or lower-is-worse (latency,
retries, stuck, shed...) are gated, each in its bad direction only — a
candidate that got *faster* never fails. Boolean health fields
(slo_pass, conserve*) must not flip true -> false. Nested arrays (the
soak window time-series) are never gated: windows are wall-clock noisy
by construction; the stable top-level aggregates are the trajectory.

Default tolerance is deliberately loose (35% relative) because CI hosts
are noisy single-core containers; the gate exists to catch step-change
regressions (a disabled fast path, an accidental O(n) scan), not 5%
jitter. Override with --tolerance.

Usage:
  check_trajectory.py --baseline-dir . --candidate-dir build/bench
  check_trajectory.py baseline.json candidate.json [--tolerance 0.5]

Exit status: 0 clean, 1 regression(s), 2 usage/matching errors.
"""

import argparse
import json
import math
import os
import sys

# Integer fields that identify a sweep cell rather than measure it.
KEY_FIELDS = {
    "threads",
    "push_percent",
    "capacity",
    "workers",
    "keys",
    "shards",
    "slots",
    "batch",
    "group",
    "phase",
    "key_range",
    "read_percent",
}

# Substrings classifying a metric's bad direction. First match wins;
# checked in order (lower-is-worse first so "sojourn_p99_ns" does not
# accidentally match a higher-is-better rule).
LOWER_IS_WORSE = (  # regression = candidate value DROPS
    "throughput",
    "ops_per_sec",
    "exchanges",
    "total_completed",
    "jain_fairness",
)
HIGHER_IS_WORSE = (  # regression = candidate value RISES
    "_ns",
    "latency",
    "retries",
    "abort_rate",
    "stuck",
    "shed",
    "degraded_fraction",
)
# Boolean fields that must never flip healthy -> unhealthy.
BOOL_HEALTH = ("slo_pass", "conserve", "conserves")

# Boolean marker fields that say WHICH record this is rather than how
# healthy it is. "acceptance_skipped" records that a bench binary's
# host-conditional in-binary acceptance check self-skipped (quick mode
# or <4 hardware threads); a skip on a small CI host is not a
# regression, so the flag joins the record's identity instead of being
# gated like BOOL_HEALTH.
IDENTITY_BOOLS = ("acceptance_skipped",)


def classify(name):
    """Return 'lower', 'higher', 'bool', or None (ungated)."""
    if name in IDENTITY_BOOLS:
        return None
    for pat in BOOL_HEALTH:
        if pat in name:
            return "bool"
    for pat in LOWER_IS_WORSE:
        if pat in name:
            return "lower"
    for pat in HIGHER_IS_WORSE:
        if pat in name:
            return "higher"
    return None


def identity(record):
    """Hashable identity of a record: string fields + known sweep keys."""
    parts = []
    for key in sorted(record):
        value = record[key]
        if isinstance(value, str) or (key in KEY_FIELDS and
                                      isinstance(value, int)):
            parts.append((key, value))
        elif key in IDENTITY_BOOLS and isinstance(value, bool):
            parts.append((key, value))
    return tuple(parts)


def check_pair(name, baseline, candidate, tolerance, failures):
    """Compares one matched record pair, appending failure strings."""
    for key, base in baseline.items():
        direction = classify(key)
        if direction is None or key not in candidate:
            continue
        cand = candidate[key]
        if direction == "bool":
            if base is True and cand is not True:
                failures.append(
                    f"{name}: {key} flipped true -> {cand!r}")
            continue
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            continue
        if not isinstance(cand, (int, float)) or isinstance(cand, bool):
            failures.append(f"{name}: {key} became non-numeric: {cand!r}")
            continue
        if base == 0 or not math.isfinite(base) or not math.isfinite(cand):
            continue  # No meaningful relative band.
        rel = (cand - base) / abs(base)
        if direction == "lower" and rel < -tolerance:
            failures.append(
                f"{name}: {key} dropped {-rel:.1%} "
                f"({base:g} -> {cand:g}, band {tolerance:.0%})")
        elif direction == "higher" and rel > tolerance:
            failures.append(
                f"{name}: {key} rose {rel:.1%} "
                f"({base:g} -> {cand:g}, band {tolerance:.0%})")


def check_file(base_path, cand_path, tolerance, failures, errors):
    try:
        with open(base_path) as f:
            baseline = json.load(f)
        with open(cand_path) as f:
            candidate = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{base_path} vs {cand_path}: {e}")
        return 0
    if not isinstance(baseline, list) or not isinstance(candidate, list):
        errors.append(f"{base_path}: expected a JSON array of records")
        return 0

    cand_index = {}
    for record in candidate:
        cand_index.setdefault(identity(record), record)

    matched = 0
    fname = os.path.basename(base_path)
    for record in baseline:
        ident = identity(record)
        partner = cand_index.get(ident)
        label = fname + "".join(f"[{k}={v}]" for k, v in ident)
        if partner is None:
            failures.append(f"{label}: record missing from candidate")
            continue
        matched += 1
        check_pair(label, record, partner, tolerance, failures)
    return matched


def main():
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json files against committed baselines.")
    parser.add_argument("files", nargs="*",
                        help="explicit BASELINE CANDIDATE file pair")
    parser.add_argument("--baseline-dir",
                        help="directory holding committed BENCH_*.json")
    parser.add_argument("--candidate-dir",
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="relative tolerance band (default 0.35)")
    args = parser.parse_args()

    pairs = []
    if args.files:
        if len(args.files) != 2 or args.baseline_dir or args.candidate_dir:
            parser.error("give exactly BASELINE CANDIDATE, or use "
                         "--baseline-dir/--candidate-dir")
        pairs.append((args.files[0], args.files[1]))
    elif args.baseline_dir and args.candidate_dir:
        for entry in sorted(os.listdir(args.baseline_dir)):
            if not (entry.startswith("BENCH_") and entry.endswith(".json")):
                continue
            cand = os.path.join(args.candidate_dir, entry)
            if os.path.exists(cand):
                pairs.append((os.path.join(args.baseline_dir, entry), cand))
            else:
                print(f"note: no candidate for {entry}, skipping")
    else:
        parser.error("need a file pair or --baseline-dir/--candidate-dir")

    if not pairs:
        print("error: no baseline/candidate pairs to compare", file=sys.stderr)
        return 2

    failures, errors = [], []
    total_matched = 0
    for base_path, cand_path in pairs:
        matched = check_file(base_path, cand_path, args.tolerance,
                             failures, errors)
        total_matched += matched
        print(f"compared {base_path} vs {cand_path}: "
              f"{matched} matched record(s)")

    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 2
    if total_matched == 0:
        # A gate that matched nothing would pass vacuously forever.
        print("error: zero records matched across all pairs",
              file=sys.stderr)
        return 2
    if failures:
        print(f"\nTRAJECTORY REGRESSION ({len(failures)} finding(s)):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"trajectory clean: {total_matched} record(s) within "
          f"{args.tolerance:.0%} bands")
    return 0


if __name__ == "__main__":
    sys.exit(main())
