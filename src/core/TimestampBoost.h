//===- core/TimestampBoost.h - Lock-free starvation boost -------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's concluding section points to contention managers that
/// boost obstruction-free/non-blocking algorithms to starvation-free or
/// wait-free ones (its references [4], Fich-Luchangco-Moir-Shavit, and
/// [25], Taubenfeld). This header implements a simplified transformation
/// in that family as the lock-free counterpart to Figure 3:
///
///  * fast path — identical shape to Figure 3's shortcut: if nobody is
///    announced, try the weak operation once (solo cost: one extra read);
///  * slow path — instead of a lock, take a unique timestamp from a
///    fetch-and-add ticket and announce it. Announced processes defer to
///    the minimum timestamp: only the current minimum keeps retrying the
///    weak operation; everyone else waits. Timestamps are unique and
///    FIFO, so every announced process eventually becomes the minimum and
///    completes (same bounded-interference argument as the paper's
///    Lemma 2 for the stragglers still on the fast path).
///
/// Compared with Figure 3: no lock and no FLAG/TURN ring; fairness is
/// FIFO by announcement order rather than round-robin; the slow path
/// scans n announcement registers per wait iteration. Experiment E9
/// compares the two mechanisms head to head.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_TIMESTAMPBOOST_H
#define CSOBJ_CORE_TIMESTAMPBOOST_H

#include "core/AbortableStack.h"
#include "core/Results.h"
#include "memory/AtomicRegister.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>

namespace csobj {

/// Timestamp-deference skeleton: strongApply never returns bottom and is
/// starvation-free, using announcements instead of a lock.
class TimestampBoost {
public:
  explicit TimestampBoost(std::uint32_t NumThreads)
      : N(NumThreads),
        Announce(new CacheLinePadded<AtomicRegister<std::uint64_t>>[
            NumThreads]) {
    assert(NumThreads >= 1 && "need at least one process");
    for (std::uint32_t I = 0; I < NumThreads; ++I)
      Announce[I].value().write(Inactive);
  }

  /// Figure 3's strongApply contract: \p WeakOp returns std::optional,
  /// nullopt meaning bottom/abort.
  template <typename WeakOpFn>
  auto strongApply(std::uint32_t Tid, WeakOpFn WeakOp)
      -> typename std::invoke_result_t<WeakOpFn>::value_type {
    assert(Tid < N && "thread id out of range");
    if (ActiveCount.read() == 0) { // Fast path: nobody announced.
      if (auto Res = WeakOp())
        return *Res;
    }
    // Slow path: announce a unique timestamp and defer to the minimum.
    ActiveCount.fetchAdd(1);
    const std::uint64_t MyStamp = Ticket.fetchAdd(1);
    Announce[Tid].value().write(MyStamp);
    SpinWait Waiter;
    while (true) {
      if (isMinimumAnnounced(Tid, MyStamp)) {
        if (auto Res = WeakOp()) {
          Announce[Tid].value().write(Inactive);
          // Decrement last so fast-path readers cannot see count 0 while
          // our announcement might still stall a minimum check.
          ActiveCount.fetchAdd(static_cast<std::uint32_t>(-1));
          return *Res;
        }
        // Interference from fast-path stragglers: bounded, retry.
        continue;
      }
      Waiter.once();
    }
  }

  std::uint32_t numThreads() const { return N; }

  /// Number of processes currently announced (test/debug aid).
  std::uint32_t announcedForTesting() const {
    return ActiveCount.peekForTesting();
  }

private:
  static constexpr std::uint64_t Inactive = ~std::uint64_t{0};

  /// True iff no announced process carries a smaller timestamp.
  bool isMinimumAnnounced(std::uint32_t Tid, std::uint64_t MyStamp) const {
    for (std::uint32_t J = 0; J < N; ++J) {
      if (J == Tid)
        continue;
      const std::uint64_t Stamp = Announce[J].value().read();
      if (Stamp < MyStamp)
        return false;
    }
    return true;
  }

  const std::uint32_t N;
  AtomicRegister<std::uint32_t> ActiveCount{0};
  AtomicRegister<std::uint64_t> Ticket{0};
  std::unique_ptr<CacheLinePadded<AtomicRegister<std::uint64_t>>[]> Announce;
};

/// TimestampBoost applied to the abortable stack: the lock-free
/// starvation-free stack (ablation counterpart of Figure 3).
template <typename Config = Compact64>
class BoostedStack {
public:
  using Value = typename Config::Value;

  BoostedStack(std::uint32_t NumThreads, std::uint32_t Capacity)
      : Weak(Capacity), Boost(NumThreads) {}

  PushResult push(std::uint32_t Tid, Value V) {
    return Boost.strongApply(Tid, [this, V]() -> std::optional<PushResult> {
      const PushResult Res = Weak.weakPush(V);
      if (Res == PushResult::Abort)
        return std::nullopt;
      return Res;
    });
  }

  PopResult<Value> pop(std::uint32_t Tid) {
    return Boost.strongApply(
        Tid, [this]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Weak.weakPop();
          if (Res.isAbort())
            return std::nullopt;
          return Res;
        });
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t sizeForTesting() const { return Weak.sizeForTesting(); }
  TimestampBoost &skeleton() { return Boost; }

private:
  AbortableStack<Config> Weak;
  TimestampBoost Boost;
};

} // namespace csobj

#endif // CSOBJ_CORE_TIMESTAMPBOOST_H
