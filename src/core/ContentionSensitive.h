//===- core/ContentionSensitive.h - The paper's Figure 3 --------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 3: the generic contention-sensitive, starvation-free
/// construction. Given *any* abortable object operation (a callable that
/// either returns a non-bottom result or reports abort), strongApply runs
/// the paper's strong_push_or_pop(par):
///
///   lines 01-03 (the lock-free "shortcut"): if CONTENTION is false, try
///     the weak operation once; a non-bottom result returns immediately.
///     In a contention-free context this is the whole execution — one
///     read of CONTENTION plus the weak operation's accesses (six total
///     for the stack), and no lock.
///   lines 04-06 (the doorway): FLAG[i] <- true, wait for priority
///     (TURN = i or FLAG[TURN] = false), then take the deadlock-free lock.
///   lines 07-13 (the protected retry): raise CONTENTION, repeat the weak
///     operation until it succeeds, lower CONTENTION, release the doorway
///     and the lock, return the result.
///
/// The template is the paper's remark made code: contention-sensitiveness
/// is independent of which operation (push or pop — or enqueue, dequeue,
/// increment ...) is being strengthened, so the adapter works for any
/// abortable object. Starvation-freedom follows from Lemmas 1-3.
///
/// Two perf-relevant refinements over the paper-literal transcription:
///  * CONTENTION sits on its own cache line, as do TURN (inside the
///    arbiter) and the lock word. The fast path reads CONTENTION on
///    every operation; without the padding, slow-path C&S traffic on
///    the lock word invalidated that line and the "zero overhead in the
///    common case" claim silently paid a coherence miss per operation.
///  * The protected retry (line 08's repeat-until) is driven by a
///    ContentionManager (support/ContentionManager.h) instead of a bare
///    escalating spin, so the lock holder can stand back in proportion
///    to the interference it actually observes.
///
/// Memory orderings (audited): the line-01 CONTENTION read is acquire
/// and the line-07/09 writes are release. Correctness does not hinge on
/// them — CONTENTION is a heuristic gate; every linearization point is a
/// C&S inside the weak operation — but release keeps the line-09 store
/// from being reordered after the doorway/lock release stores that
/// follow it, preserving the invariant that CONTENTION is only raised
/// while the lock is held.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CONTENTIONSENSITIVE_H
#define CSOBJ_CORE_CONTENTIONSENSITIVE_H

#include "locks/RoundRobinArbiter.h"
#include "locks/TasLock.h"
#include "memory/AtomicRegister.h"
#include "obs/PathCounters.h"
#include "support/CacheLine.h"
#include "support/ContentionManager.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>

namespace csobj {

/// Batches up to this size keep their per-element result scratch on the
/// caller's stack; larger groups fall back to one heap allocation. The
/// wrappers' group operations (push_all/pop_all/drain) use it so common
/// batch sizes add zero allocator traffic to the operation path.
inline constexpr std::size_t BatchInlineCapacity = 64;

/// The Figure 3 execution skeleton. One instance guards one abortable
/// object; all strong operations on that object must go through the same
/// instance (they share CONTENTION, FLAG, TURN and LOCK).
///
/// \tparam Lock a deadlock-free lock (LockConcept). Starvation-freedom of
///         the whole construction does NOT require the lock itself to be
///         starvation-free — that is the point of the doorway. TasLock is
///         the default to exercise exactly the paper's assumption.
/// \tparam Manager ContentionManager pacing the protected retry of
///         line 08. NoBackoff reproduces the seed behaviour (the retry
///         is already lock-protected, so immediate retry is sound).
/// \tparam Policy register policy (Instrumented / Fast).
template <typename Lock = TasLock, ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
class ContentionSensitive {
public:
  using RegisterPolicy = Policy;

  /// \p NumThreads is the paper's n; thread ids are 0..n-1.
  explicit ContentionSensitive(std::uint32_t NumThreads)
      : N(NumThreads), Arbiter(NumThreads), Guard(NumThreads) {
    assert(NumThreads >= 1 && "need at least one process");
  }

  /// strong_push_or_pop(par) for a generic operation. \p WeakOp is
  /// invoked with no arguments and returns std::optional<R>: nullopt
  /// encodes the paper's bottom (the attempt aborted; it had no effect),
  /// any value is a final non-bottom result (including full/empty style
  /// answers). Never returns bottom; always terminates (starvation-free,
  /// Theorem 1).
  template <typename WeakOpFn>
  auto strongApply(std::uint32_t Tid, WeakOpFn WeakOp)
      -> typename std::invoke_result_t<WeakOpFn>::value_type {
    assert(Tid < N && "thread id out of range");
    Sink.onOp(Tid);
    if (Contention.value().read(std::memory_order_acquire) == 0) { // line 01
      if (auto Res = WeakOp()) {             // line 02
        Sink.onPath(Tid, obs::Path::Shortcut);
        return *Res;
      }
      Sink.onEvent(Tid, obs::Event::ShortcutAbort);
    }
    return slowApply(Tid, WeakOp);           // lines 04-13
  }

  /// strongApply with an acceleration window between the paper's
  /// shortcut and the doorway: when the fast path fails (CONTENTION was
  /// raised, or the weak attempt aborted), \p Rescue gets one chance to
  /// finish the operation without competing for the lock — e.g. by
  /// pairing with an inverse operation in an elimination array. Rescue
  /// returns the same optional as WeakOp; nullopt falls through to the
  /// unchanged lines 04-13. The contention-free execution is untouched
  /// (one CONTENTION read plus one weak attempt, Rescue never invoked),
  /// so the 6-shared-access solo bound of the stack is preserved.
  /// Starvation-freedom is preserved too: Rescue is attempted exactly
  /// once, so every operation still reaches the doorway after a bounded
  /// number of its own steps (Lemmas 1-3 apply verbatim).
  template <typename WeakOpFn, typename RescueFn>
  auto strongApplyWithRescue(std::uint32_t Tid, WeakOpFn WeakOp,
                             RescueFn Rescue)
      -> typename std::invoke_result_t<WeakOpFn>::value_type {
    assert(Tid < N && "thread id out of range");
    Sink.onOp(Tid);
    if (Contention.value().read(std::memory_order_acquire) == 0) { // line 01
      if (auto Res = WeakOp()) {             // line 02
        Sink.onPath(Tid, obs::Path::Shortcut);
        return *Res;
      }
      Sink.onEvent(Tid, obs::Event::ShortcutAbort);
    }
    if (auto Res = Rescue()) {               // acceleration window
      Sink.onPath(Tid, obs::Path::Eliminated);
      return *Res;
    }
    return slowApply(Tid, WeakOp);           // lines 04-13
  }

  /// Group form of strongApply: applies ops 0..Count-1 as one batch.
  /// \p WeakAt(I) attempts the I-th operation (same optional contract as
  /// strongApply's WeakOp); every applied result lands in Out[I].
  /// \p Stop(R) marks a terminal answer (Full/Empty) that rejects the
  /// batch's remainder — the stopping op's result is stored and counted,
  /// later ops are never attempted, so the object always holds a prefix
  /// of the batch. Returns the number of ops applied.
  ///
  /// Cost shape: while CONTENTION stays down each element runs the
  /// line-01-03 shortcut individually (the paper's six-access bound per
  /// element, no lock). At the first shortcut failure the *entire
  /// remainder* cuts over to one doorway entry + one lock acquisition,
  /// under which the remaining elements are applied back to back with
  /// the line-08 protected retry, then one release. That is the k-ops/
  /// one-lock amortization flat combining promises, available even on
  /// the plain Fig-3 skeleton. Starvation-freedom is unchanged: the
  /// batch holds the lock for a bounded number of its own steps (Count
  /// is finite, each retry is Manager-paced exactly like strongApply).
  template <typename WeakAtFn, typename StopFn, typename R>
  std::size_t strongApplyBatch(std::uint32_t Tid, std::size_t Count,
                               WeakAtFn WeakAt, StopFn Stop, R *Out) {
    assert(Tid < N && "thread id out of range");
    std::size_t I = 0;
    while (I < Count) {                        // per-element shortcut
      Sink.onOp(Tid);
      if (Contention.value().read(std::memory_order_acquire) != 0)
        break;                                 // element I stays counted
      auto Res = WeakAt(I);
      if (!Res) {
        Sink.onEvent(Tid, obs::Event::ShortcutAbort);
        break;                                 // adaptive cutover
      }
      Out[I] = *Res;
      Sink.onPath(Tid, obs::Path::Shortcut);
      ++I;
      if (Stop(Out[I - 1]))
        return I;
    }
    if (I == Count)
      return I;
    // Group phase: one doorway, one lock, k sequential applies, one
    // release. Element I was already op-counted by the loop above.
    Arbiter.enter(Tid);
    Guard.lock(Tid);
    Contention.value().write(1, std::memory_order_release);
    Manager Mgr;
    std::uint64_t Applied = 0;
    bool Stopped = false;
    for (; I < Count && !Stopped; ++I) {
      if (Applied != 0)
        Sink.onOp(Tid);
      auto Res = WeakAt(I);
      while (!Res) {
        Sink.onEvent(Tid, obs::Event::ProtectedRetry);
        Mgr.onAbort();
        Res = WeakAt(I);
      }
      Mgr.onSuccess();
      Out[I] = *Res;
      ++Applied;
      Stopped = Stop(Out[I]);
    }
    Contention.value().write(0, std::memory_order_release);
    Arbiter.exitAndAdvance(Tid);
    Guard.unlock(Tid);
    Sink.onPath(Tid, obs::Path::Batched, Applied);
    Sink.onBatch(Tid, Applied);
    return I;
  }

  std::uint32_t numThreads() const { return N; }

  /// Path-attributed metrics for this object (obs/PathCounters.h); an
  /// empty no-op under CSOBJ_NO_METRICS.
  obs::MetricSink &metrics() const { return Sink; }
  obs::PathSnapshot pathSnapshot() const { return Sink.snapshot(); }

  /// Whether the slow path currently holds the object (test/debug aid).
  bool contentionForTesting() const {
    return Contention.value().peekForTesting() != 0;
  }

  /// The doorway (exposed for fairness tests).
  RoundRobinArbiterT<Policy> &arbiter() { return Arbiter; }

  /// Heap owned by the skeleton: the doorway's FLAG array plus the
  /// metric sink's per-thread blocks (zero under CSOBJ_NO_METRICS).
  std::size_t heapBytes() const {
    return Arbiter.heapBytes() + Sink.heapBytes();
  }

private:
  /// Lines 04-13: the doorway, the lock, and the protected retry.
  template <typename WeakOpFn>
  auto slowApply(std::uint32_t Tid, WeakOpFn &WeakOp)
      -> typename std::invoke_result_t<WeakOpFn>::value_type {
    Arbiter.enter(Tid);                      // lines 04-05
    Guard.lock(Tid);                         // line 06
    Contention.value().write(1, std::memory_order_release); // line 07
    Manager Mgr;
    auto Res = WeakOp();                     // line 08 (repeat ... until)
    while (!Res) {
      Sink.onEvent(Tid, obs::Event::ProtectedRetry);
      Mgr.onAbort();
      Res = WeakOp();
    }
    Mgr.onSuccess();
    Contention.value().write(0, std::memory_order_release); // line 09
    Arbiter.exitAndAdvance(Tid);             // lines 10-11
    Guard.unlock(Tid);                       // line 12
    Sink.onPath(Tid, obs::Path::Lock);
    return *Res;                             // line 13
  }

  const std::uint32_t N;
  CacheLinePadded<AtomicRegister<std::uint8_t, Policy>> Contention;
  RoundRobinArbiterT<Policy> Arbiter;
  Lock Guard;
  [[no_unique_address]] mutable obs::MetricSink Sink{N};
};

/// The paper's Section 4.1 Remark, as code: "If the lock is
/// starvation-free (...) the array FLAG[1..n] and the register TURN
/// become useless and consequently the lines 04-05 and 10-11 can be
/// suppressed from the algorithm." This variant keeps only lines 01-03
/// and 06-09/12-13 and must be instantiated with a lock that is itself
/// starvation-free (ticket, MCS, CLH, Anderson, tournament, or any
/// StarvationFreeLock<...>). Tested equivalent to the full construction.
template <typename StarvationFreeLockT,
          ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
class SimplifiedContentionSensitive {
public:
  using RegisterPolicy = Policy;

  explicit SimplifiedContentionSensitive(std::uint32_t NumThreads)
      : N(NumThreads), Guard(NumThreads) {
    assert(NumThreads >= 1 && "need at least one process");
  }

  /// strong_push_or_pop(par) without the doorway (paper §4.1 Remark).
  template <typename WeakOpFn>
  auto strongApply(std::uint32_t Tid, WeakOpFn WeakOp)
      -> typename std::invoke_result_t<WeakOpFn>::value_type {
    assert(Tid < N && "thread id out of range");
    Sink.onOp(Tid);
    if (Contention.value().read(std::memory_order_acquire) == 0) { // line 01
      if (auto Res = WeakOp()) {             // line 02
        Sink.onPath(Tid, obs::Path::Shortcut);
        return *Res;
      }
      Sink.onEvent(Tid, obs::Event::ShortcutAbort);
    }
    Guard.lock(Tid);                         // line 06
    Contention.value().write(1, std::memory_order_release); // line 07
    Manager Mgr;
    auto Res = WeakOp();                     // line 08
    while (!Res) {
      Sink.onEvent(Tid, obs::Event::ProtectedRetry);
      Mgr.onAbort();
      Res = WeakOp();
    }
    Mgr.onSuccess();
    Contention.value().write(0, std::memory_order_release); // line 09
    Guard.unlock(Tid);                       // line 12
    Sink.onPath(Tid, obs::Path::Lock);
    return *Res;                             // line 13
  }

  /// Group form (see ContentionSensitive::strongApplyBatch): per-element
  /// shortcut, then the whole remainder under one lock acquisition. Same
  /// contract, minus the suppressed doorway lines.
  template <typename WeakAtFn, typename StopFn, typename R>
  std::size_t strongApplyBatch(std::uint32_t Tid, std::size_t Count,
                               WeakAtFn WeakAt, StopFn Stop, R *Out) {
    assert(Tid < N && "thread id out of range");
    std::size_t I = 0;
    while (I < Count) {
      Sink.onOp(Tid);
      if (Contention.value().read(std::memory_order_acquire) != 0)
        break;
      auto Res = WeakAt(I);
      if (!Res) {
        Sink.onEvent(Tid, obs::Event::ShortcutAbort);
        break;
      }
      Out[I] = *Res;
      Sink.onPath(Tid, obs::Path::Shortcut);
      ++I;
      if (Stop(Out[I - 1]))
        return I;
    }
    if (I == Count)
      return I;
    Guard.lock(Tid);
    Contention.value().write(1, std::memory_order_release);
    Manager Mgr;
    std::uint64_t Applied = 0;
    bool Stopped = false;
    for (; I < Count && !Stopped; ++I) {
      if (Applied != 0)
        Sink.onOp(Tid);
      auto Res = WeakAt(I);
      while (!Res) {
        Sink.onEvent(Tid, obs::Event::ProtectedRetry);
        Mgr.onAbort();
        Res = WeakAt(I);
      }
      Mgr.onSuccess();
      Out[I] = *Res;
      ++Applied;
      Stopped = Stop(Out[I]);
    }
    Contention.value().write(0, std::memory_order_release);
    Guard.unlock(Tid);
    Sink.onPath(Tid, obs::Path::Batched, Applied);
    Sink.onBatch(Tid, Applied);
    return I;
  }

  std::uint32_t numThreads() const { return N; }

  /// Path-attributed metrics (obs/PathCounters.h).
  obs::MetricSink &metrics() const { return Sink; }
  obs::PathSnapshot pathSnapshot() const { return Sink.snapshot(); }

  bool contentionForTesting() const {
    return Contention.value().peekForTesting() != 0;
  }

  /// Heap owned by the skeleton: the starvation-free lock's arbiter FLAG
  /// array (when the plugged lock owns heap) plus the metric sink's
  /// blocks.
  std::size_t heapBytes() const {
    std::size_t Bytes = Sink.heapBytes();
    if constexpr (requires { Guard.heapBytes(); })
      Bytes += Guard.heapBytes();
    return Bytes;
  }

private:
  const std::uint32_t N;
  CacheLinePadded<AtomicRegister<std::uint8_t, Policy>> Contention;
  StarvationFreeLockT Guard;
  [[no_unique_address]] mutable obs::MetricSink Sink{N};
};

} // namespace csobj

#endif // CSOBJ_CORE_CONTENTIONSENSITIVE_H
