//===- core/Results.h - Operation result types ------------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Result types shared by all concurrent objects in the library. The
/// paper's operations are *total*: they never block the caller; instead
/// they return distinguished values (done / full / empty) and, for
/// abortable objects, the bottom value when aborting under contention.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_RESULTS_H
#define CSOBJ_CORE_RESULTS_H

#include <cassert>

namespace csobj {

/// Result of a push / enqueue style operation.
enum class PushResult {
  Done, ///< The value was added.
  Full, ///< The object is at capacity (a total, non-aborted answer).
  Abort ///< The paper's bottom: concurrency detected, no effect took place.
};

/// Result of a pop / dequeue style operation: either a value, or one of
/// the distinguished non-value answers.
template <typename ValueT>
class PopResult {
public:
  enum class Kind {
    Value, ///< A value was removed and is carried in the result.
    Empty, ///< The object was empty (a total, non-aborted answer).
    Abort  ///< The paper's bottom: concurrency detected, no effect.
  };

  static PopResult value(ValueT V) { return PopResult(Kind::Value, V); }
  static PopResult empty() { return PopResult(Kind::Empty, ValueT{}); }
  static PopResult abort() { return PopResult(Kind::Abort, ValueT{}); }

  /// Default-constructs as Empty, so result buffers (the batch wrappers'
  /// scratch arrays) need no explicit fill.
  PopResult() : PopResult(Kind::Empty, ValueT{}) {}

  Kind kind() const { return K; }
  bool isValue() const { return K == Kind::Value; }
  bool isEmpty() const { return K == Kind::Empty; }
  bool isAbort() const { return K == Kind::Abort; }

  /// The removed value. Only meaningful when isValue().
  ValueT value() const {
    assert(K == Kind::Value && "no value carried by this result");
    return V;
  }

  bool operator==(const PopResult &) const = default;

private:
  PopResult(Kind K, ValueT V) : K(K), V(V) {}

  Kind K;
  ValueT V;
};

} // namespace csobj

#endif // CSOBJ_CORE_RESULTS_H
