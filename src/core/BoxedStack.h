//===- core/BoxedStack.h - Arbitrary payloads over the core -----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's stack carries register-sized values (its TOP register
/// stores the value inline). BoxedStack<T> lifts that to arbitrary C++
/// payloads: values live in a preallocated slot array, a lock-free
/// IndexPool hands out slots, and the contention-sensitive stack of
/// Figure 3 stores the slot indices. The slot handoff is safe because a
/// slot index is exclusively owned from acquisition until it is pushed,
/// and again from the pop until release — the stack's linearizability
/// orders the transfers.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_BOXEDSTACK_H
#define CSOBJ_CORE_BOXEDSTACK_H

#include "core/ContentionSensitiveStack.h"
#include "memory/IndexPool.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

namespace csobj {

/// Starvation-free contention-sensitive stack of arbitrary T.
template <typename T, typename Lock = TasLock>
class BoxedStack {
public:
  /// \p NumThreads is the paper's n; \p Capacity the element bound.
  ///
  /// The pool carries NumThreads headroom slots beyond Capacity: at any
  /// instant each thread owns at most one in-transit slot (acquired but
  /// not yet pushed, or popped but not yet released), so acquisition can
  /// never fail and the full answer comes solely from the index stack —
  /// whose Full is linearizable. Sizing the pool at Capacity alone would
  /// let a pop's unreleased slot starve a concurrent push into reporting
  /// full while the abstract stack has room.
  BoxedStack(std::uint32_t NumThreads, std::uint32_t Capacity)
      : K(Capacity), Pool(Capacity + NumThreads),
        Slots(new T[Capacity + NumThreads]), Indices(NumThreads, Capacity) {}

  /// Pushes \p V. Returns false when the stack is full.
  bool push(std::uint32_t Tid, T V) {
    const std::optional<std::uint32_t> Idx = Pool.tryAcquire();
    assert(Idx && "in-transit headroom guarantees a free slot");
    Slots[*Idx] = std::move(V);
    if (Indices.push(Tid, *Idx) == PushResult::Full) {
      Pool.release(*Idx);
      return false;
    }
    return true;
  }

  /// Pops the most recent value, or nullopt when empty.
  std::optional<T> pop(std::uint32_t Tid) {
    const PopResult<std::uint32_t> Res = Indices.pop(Tid);
    if (!Res.isValue())
      return std::nullopt;
    const std::uint32_t Idx = Res.value();
    T Out = std::move(Slots[Idx]);
    Pool.release(Idx);
    return Out;
  }

  std::uint32_t capacity() const { return K; }
  std::uint32_t sizeForTesting() const { return Indices.sizeForTesting(); }

private:
  const std::uint32_t K;
  IndexPool Pool;
  std::unique_ptr<T[]> Slots;
  ContentionSensitiveStack<Compact64, Lock> Indices;
};

} // namespace csobj

#endif // CSOBJ_CORE_BOXEDSTACK_H
