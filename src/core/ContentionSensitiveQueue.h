//===- core/ContentionSensitiveQueue.h - Figure 3 on the queue --*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 3 instantiated over the abortable queue — the construction the
/// paper's generic strong_push_or_pop makes possible "independent of the
/// fact that the operation is push or pop". A contention-free strong
/// enqueue/dequeue performs seven shared-memory accesses (one read of
/// CONTENTION plus the six of the weak queue operation) and takes no
/// lock; starvation-freedom is inherited from the Figure 3 skeleton.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CONTENTIONSENSITIVEQUEUE_H
#define CSOBJ_CORE_CONTENTIONSENSITIVEQUEUE_H

#include "core/AbortableQueue.h"
#include "core/ContentionSensitive.h"
#include "locks/TasLock.h"

#include <cstdint>
#include <optional>

namespace csobj {

/// Starvation-free contention-sensitive bounded FIFO queue. \p SkeletonT
/// defaults to the paper's Figure 3 skeleton; the flat-combining skeleton
/// (perf/CombiningSlowPath.h) plugs in the same way.
template <typename Config = Compact64, typename Lock = TasLock,
          ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy,
          typename SkeletonT = ContentionSensitive<Lock, Manager, Policy>>
class ContentionSensitiveQueue {
public:
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;

  ContentionSensitiveQueue(std::uint32_t NumThreads, std::uint32_t Capacity)
      : Weak(Capacity), Strong(NumThreads) {}

  /// strong_enqueue(v): Done or Full, never Abort; always terminates.
  PushResult enqueue(std::uint32_t Tid, Value V) {
    return Strong.strongApply(Tid, [this, V]() -> std::optional<PushResult> {
      const PushResult Res = Weak.weakEnqueue(V);
      if (Res == PushResult::Abort)
        return std::nullopt;
      return Res;
    });
  }

  /// strong_dequeue(): a value or Empty, never Abort; always terminates.
  PopResult<Value> dequeue(std::uint32_t Tid) {
    return Strong.strongApply(
        Tid, [this]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Weak.weakDequeue();
          if (Res.isAbort())
            return std::nullopt;
          return Res;
        });
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t numThreads() const { return Strong.numThreads(); }
  std::uint32_t sizeForTesting() const { return Weak.sizeForTesting(); }

  AbortableQueue<Config, Policy> &abortable() { return Weak; }
  SkeletonT &skeleton() { return Strong; }

  /// Path-attributed metrics of the skeleton (obs/PathCounters.h).
  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

private:
  AbortableQueue<Config, Policy> Weak;
  SkeletonT Strong;
};

} // namespace csobj

#endif // CSOBJ_CORE_CONTENTIONSENSITIVEQUEUE_H
