//===- core/ContentionSensitiveQueue.h - Figure 3 on the queue --*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 3 instantiated over the abortable queue — the construction the
/// paper's generic strong_push_or_pop makes possible "independent of the
/// fact that the operation is push or pop". A contention-free strong
/// enqueue/dequeue performs seven shared-memory accesses (one read of
/// CONTENTION plus the six of the weak queue operation) and takes no
/// lock; starvation-freedom is inherited from the Figure 3 skeleton.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CONTENTIONSENSITIVEQUEUE_H
#define CSOBJ_CORE_CONTENTIONSENSITIVEQUEUE_H

#include "core/AbortableQueue.h"
#include "core/ContentionSensitive.h"
#include "locks/TasLock.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace csobj {

/// Starvation-free contention-sensitive bounded FIFO queue. \p SkeletonT
/// defaults to the paper's Figure 3 skeleton; the flat-combining skeleton
/// (perf/CombiningSlowPath.h) plugs in the same way.
template <typename Config = Compact64, typename Lock = TasLock,
          ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy,
          typename SkeletonT = ContentionSensitive<Lock, Manager, Policy>>
class ContentionSensitiveQueue {
public:
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;

  ContentionSensitiveQueue(std::uint32_t NumThreads, std::uint32_t Capacity)
      : Weak(Capacity), Strong(NumThreads) {}

  /// strong_enqueue(v): Done or Full, never Abort; always terminates.
  PushResult enqueue(std::uint32_t Tid, Value V) {
    return Strong.strongApply(Tid, [this, V]() -> std::optional<PushResult> {
      const PushResult Res = Weak.weakEnqueue(V);
      if (Res == PushResult::Abort)
        return std::nullopt;
      return Res;
    });
  }

  /// strong_dequeue(): a value or Empty, never Abort; always terminates.
  PopResult<Value> dequeue(std::uint32_t Tid) {
    return Strong.strongApply(
        Tid, [this]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Weak.weakDequeue();
          if (Res.isAbort())
            return std::nullopt;
          return Res;
        });
  }

  /// Group enqueue: enqueues Vs[0..Count) in index order as one batch
  /// (one seam acquisition for the contended remainder), stopping at the
  /// first Full answer so the queue receives a prefix of Vs. Returns the
  /// number of values enqueued.
  std::size_t enqueue_all(std::uint32_t Tid, const Value *Vs,
                          std::size_t Count) {
    if (Count == 0)
      return 0;
    PushResult Inline[BatchInlineCapacity];
    std::vector<PushResult> Heap;
    PushResult *Results = Inline;
    if (Count > BatchInlineCapacity) {
      Heap.resize(Count);
      Results = Heap.data();
    }
    const std::size_t Applied = Strong.strongApplyBatch(
        Tid, Count,
        [this, Vs](std::size_t I) -> std::optional<PushResult> {
          const PushResult Res = Weak.weakEnqueue(Vs[I]);
          if (Res == PushResult::Abort)
            return std::nullopt;
          return Res;
        },
        [](PushResult R) { return R == PushResult::Full; },
        Results);
    return Applied != 0 && Results[Applied - 1] == PushResult::Full
               ? Applied - 1
               : Applied;
  }

  /// Group dequeue: dequeues up to \p MaxCount values into Out[0..] in
  /// FIFO order, stopping at the first Empty answer. Returns the number
  /// of values dequeued.
  std::size_t dequeue_all(std::uint32_t Tid, Value *Out,
                          std::size_t MaxCount) {
    if (MaxCount == 0)
      return 0;
    PopResult<Value> Inline[BatchInlineCapacity];
    std::vector<PopResult<Value>> Heap;
    PopResult<Value> *Results = Inline;
    if (MaxCount > BatchInlineCapacity) {
      Heap.resize(MaxCount);
      Results = Heap.data();
    }
    const std::size_t Applied = Strong.strongApplyBatch(
        Tid, MaxCount,
        [this](std::size_t) -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Weak.weakDequeue();
          if (Res.isAbort())
            return std::nullopt;
          return Res;
        },
        [](const PopResult<Value> &R) { return R.isEmpty(); },
        Results);
    std::size_t Got = 0;
    for (std::size_t I = 0; I < Applied; ++I)
      if (Results[I].isValue())
        Out[Got++] = Results[I].value();
    return Got;
  }

  /// Drains the queue: dequeue_all bounded by the caller's buffer.
  std::size_t drain(std::uint32_t Tid, Value *Out, std::size_t MaxOut) {
    return dequeue_all(Tid, Out, MaxOut);
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t numThreads() const { return Strong.numThreads(); }
  std::uint32_t sizeForTesting() const { return Weak.sizeForTesting(); }

  AbortableQueue<Config, Policy> &abortable() { return Weak; }
  SkeletonT &skeleton() { return Strong; }

  /// Path-attributed metrics of the skeleton (obs/PathCounters.h).
  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }

  /// Resident bytes of the whole object: the header plus the weak
  /// object's slot array and the skeleton's heap (doorway FLAG array,
  /// combiner records, metric blocks). Feeds the bytes_per_element bench
  /// column (obs/MetricsJson.h).
  std::size_t footprintBytes() const {
    std::size_t Bytes = sizeof(*this) + Strong.heapBytes();
    if constexpr (requires { Weak.heapBytes(); })
      Bytes += Weak.heapBytes();
    return Bytes;
  }

  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

private:
  AbortableQueue<Config, Policy> Weak;
  SkeletonT Strong;
};

} // namespace csobj

#endif // CSOBJ_CORE_CONTENTIONSENSITIVEQUEUE_H
