//===- core/ObstructionFreeDeque.h - HLM deque (ref [8]) --------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Herlihy, Luchangco & Moir's array-based double-ended queue (ICDCS'03)
/// — the very algorithm the paper cites (reference [8]) when it defines
/// *obstruction-freedom*. Implemented in its linear bounded form, both as
/// the original obstruction-free object (retry loops that are only
/// guaranteed to terminate in solo execution) and as an *abortable*
/// object (single attempts returning bottom on interference), which lets
/// the paper's Figure 3 skeleton strengthen it to a starvation-free deque
/// — completing the progress hierarchy of Section 1.2 end to end:
///
///     abortable / obstruction-free  (this file, tryX / retry loops)
///       -> non-blocking             (NOT implied: HLM is a showcase of
///                                    obstruction-free NOT non-blocking;
///                                    two symmetric ops can abort each
///                                    other forever under an adversary)
///       -> starvation-free          (ContentionSensitiveDeque below)
///
/// Representation: an array of Capacity+2 slots, each a CASable
/// <value, counter> word. The array always matches LN+ V* RN+ — a block
/// of left-nulls, the deque's values, a block of right-nulls — with the
/// outermost slots permanent sentinels. A right push locates the
/// boundary (the "oracle" scan; accuracy optional, correctness comes
/// from re-validation), bumps the counter of the last value slot to fence
/// off interference, then CASes the first RN slot to the new value. Pops
/// and left operations mirror. Each end reports Full *for that end*:
/// the linear (non-circular) array cannot shift the value block, so the
/// sequential specification is positional (lincheck/Spec.h's
/// LinearDequeSpec).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_OBSTRUCTIONFREEDEQUE_H
#define CSOBJ_CORE_OBSTRUCTIONFREEDEQUE_H

#include "core/Results.h"
#include "memory/AtomicRegister.h"
#include "memory/TaggedValue.h"
#include "support/SpinWait.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace csobj {

/// HLM bounded deque over uint32 payloads (two values reserved for the
/// left/right null markers).
class ObstructionFreeDeque {
public:
  using Value = std::uint32_t;

  /// Reserved markers: values pushed must be below LeftNull.
  static constexpr Value LeftNull = 0xFFFFFFFEu;
  static constexpr Value RightNull = 0xFFFFFFFFu;

  /// \p Capacity usable slots. \p InitialLeftSlots of the free slots
  /// start on the left side (they bound how many left pushes fit before
  /// the left end reports full); defaults to an even split.
  explicit ObstructionFreeDeque(std::uint32_t Capacity,
                                std::uint32_t InitialLeftSlots =
                                    ~std::uint32_t{0})
      : Slots(Capacity + 2),
        LeftCount(InitialLeftSlots == ~std::uint32_t{0} ? Capacity / 2
                                                        : InitialLeftSlots),
        Array(new AtomicRegister<std::uint64_t>[Capacity + 2]) {
    assert(Capacity >= 1 && "deque capacity must be positive");
    assert(LeftCount <= Capacity && "more left slots than capacity");
    // A[0..LeftCount] hold LN (A[0] is the permanent left sentinel);
    // the rest hold RN (A[Slots-1] the permanent right sentinel).
    for (std::uint32_t I = 0; I < Slots; ++I)
      Array[I].write(Codec::pack({I <= LeftCount ? LeftNull : RightNull,
                                  /*Seq=*/0}));
  }

  //===--------------------------------------------------------------------===
  // Abortable single attempts (bottom = Abort on any interference)
  //===--------------------------------------------------------------------===

  /// One right-push attempt: Done, Full (right end exhausted), or Abort.
  PushResult tryPushRight(Value V) {
    assert(V < LeftNull && "value collides with a null marker");
    const std::uint32_t K = rightOracle();
    const std::uint64_t Prev = Array[K - 1].read();
    const std::uint64_t Cur = Array[K].read();
    if (valueOf(Prev) == RightNull || valueOf(Cur) != RightNull)
      return PushResult::Abort; // Oracle raced with another operation.
    // Validated full test (after the reads, as in HLM): the slot right
    // of the last value is the permanent sentinel, so at the instant
    // Prev was read the right side was exhausted.
    if (K == Slots - 1)
      return PushResult::Full;
    // Fence the neighbour (counter bump), then install the value.
    if (!Array[K - 1].compareAndSwap(Prev, bumped(Prev)))
      return PushResult::Abort;
    if (!Array[K].compareAndSwap(Cur,
                                 Codec::pack({V, seqOf(Cur) + 1})))
      return PushResult::Abort;
    return PushResult::Done;
  }

  /// One right-pop attempt: value, Empty, or Abort.
  PopResult<Value> tryPopRight() {
    const std::uint32_t K = rightOracle();
    const std::uint64_t Cur = Array[K - 1].read();
    const std::uint64_t Next = Array[K].read();
    if (valueOf(Cur) == RightNull || valueOf(Next) != RightNull)
      return PopResult<Value>::abort();
    if (valueOf(Cur) == LeftNull) {
      // Empty candidate: the <LN, RN> pair must be simultaneous — the
      // re-read certifies the snapshot (HLM's linearization of EMPTY).
      if (Array[K - 1].read() == Cur)
        return PopResult<Value>::empty();
      return PopResult<Value>::abort();
    }
    if (!Array[K].compareAndSwap(Next, bumped(Next)))
      return PopResult<Value>::abort();
    if (!Array[K - 1].compareAndSwap(
            Cur, Codec::pack({RightNull, seqOf(Cur) + 1})))
      return PopResult<Value>::abort(); // Harmless: only a fence moved.
    return PopResult<Value>::value(valueOf(Cur));
  }

  /// One left-push attempt: Done, Full (left end exhausted), or Abort.
  PushResult tryPushLeft(Value V) {
    assert(V < LeftNull && "value collides with a null marker");
    const std::uint32_t K = leftOracle();
    const std::uint64_t Prev = Array[K + 1].read();
    const std::uint64_t Cur = Array[K].read();
    if (valueOf(Prev) == LeftNull || valueOf(Cur) != LeftNull)
      return PushResult::Abort;
    if (K == 0)
      return PushResult::Full; // Validated: left side exhausted.
    if (!Array[K + 1].compareAndSwap(Prev, bumped(Prev)))
      return PushResult::Abort;
    if (!Array[K].compareAndSwap(Cur,
                                 Codec::pack({V, seqOf(Cur) + 1})))
      return PushResult::Abort;
    return PushResult::Done;
  }

  /// One left-pop attempt: value, Empty, or Abort.
  PopResult<Value> tryPopLeft() {
    const std::uint32_t K = leftOracle();
    const std::uint64_t Cur = Array[K + 1].read();
    const std::uint64_t Next = Array[K].read();
    if (valueOf(Cur) == LeftNull || valueOf(Next) != LeftNull)
      return PopResult<Value>::abort();
    if (valueOf(Cur) == RightNull) {
      if (Array[K + 1].read() == Cur)
        return PopResult<Value>::empty();
      return PopResult<Value>::abort();
    }
    if (!Array[K].compareAndSwap(Next, bumped(Next)))
      return PopResult<Value>::abort();
    if (!Array[K + 1].compareAndSwap(
            Cur, Codec::pack({LeftNull, seqOf(Cur) + 1})))
      return PopResult<Value>::abort();
    return PopResult<Value>::value(valueOf(Cur));
  }

  //===--------------------------------------------------------------------===
  // Obstruction-free operations (the original HLM interface): retry the
  // attempt until it is not bottom. Termination is guaranteed only for a
  // process that eventually runs solo — exactly obstruction-freedom.
  //===--------------------------------------------------------------------===

  PushResult pushRight(Value V) { return retryPush([&] { return tryPushRight(V); }); }
  PushResult pushLeft(Value V) { return retryPush([&] { return tryPushLeft(V); }); }
  PopResult<Value> popRight() { return retryPop([&] { return tryPopRight(); }); }
  PopResult<Value> popLeft() { return retryPop([&] { return tryPopLeft(); }); }

  /// Usable capacity (excludes the two sentinels).
  std::uint32_t capacity() const { return Slots - 2; }

  /// Heap owned by the deque: the slot array (capacity + 2 sentinels).
  std::size_t heapBytes() const {
    return std::size_t{Slots} * sizeof(AtomicRegister<std::uint64_t>);
  }

  /// Left free slots at construction (positional spec parameter).
  std::uint32_t initialLeftSlots() const { return LeftCount; }

  /// Element count; exact only when quiescent (test/debug aid).
  std::uint32_t sizeForTesting() const {
    std::uint32_t Count = 0;
    for (std::uint32_t I = 1; I + 1 < Slots; ++I) {
      const Value V = valueOf(Array[I].peekForTesting());
      if (V != LeftNull && V != RightNull)
        ++Count;
    }
    return Count;
  }

private:
  // Each slot packs <value:32, counter:32>; the counter is the HLM
  // version number that fences concurrent operations (same role as the
  // paper's Section 2.2 tags).
  using Codec = SlotCodec<std::uint64_t, 32, std::uint32_t>;

  static Value valueOf(std::uint64_t W) { return Codec::unpack(W).Value; }
  static std::uint32_t seqOf(std::uint64_t W) {
    return Codec::unpack(W).Seq;
  }
  static std::uint64_t bumped(std::uint64_t W) {
    const SlotFields<Value> F = Codec::unpack(W);
    return Codec::pack({F.Value, F.Seq + 1});
  }

  /// Index of the leftmost slot currently holding RN. The scan may be
  /// stale; every caller re-validates, so only performance depends on it.
  std::uint32_t rightOracle() const {
    for (std::uint32_t I = 1; I < Slots; ++I)
      if (valueOf(Array[I].read()) == RightNull)
        return I;
    return Slots - 1; // Unreachable under the invariant; validated anyway.
  }

  /// Index of the rightmost slot currently holding LN.
  std::uint32_t leftOracle() const {
    for (std::uint32_t I = Slots - 1; I > 0; --I)
      if (valueOf(Array[I - 1].read()) == LeftNull)
        return I - 1;
    return 0;
  }

  template <typename AttemptFn>
  PushResult retryPush(AttemptFn Attempt) {
    SpinWait Waiter;
    while (true) {
      const PushResult Res = Attempt();
      if (Res != PushResult::Abort)
        return Res;
      Waiter.once();
    }
  }

  template <typename AttemptFn>
  PopResult<Value> retryPop(AttemptFn Attempt) {
    SpinWait Waiter;
    while (true) {
      const PopResult<Value> Res = Attempt();
      if (!Res.isAbort())
        return Res;
      Waiter.once();
    }
  }

  const std::uint32_t Slots;
  const std::uint32_t LeftCount;
  std::unique_ptr<AtomicRegister<std::uint64_t>[]> Array;
};

} // namespace csobj

#endif // CSOBJ_CORE_OBSTRUCTIONFREEDEQUE_H
