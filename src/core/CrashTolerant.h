//===- core/CrashTolerant.h - Figure 3 with graceful degradation *- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-tolerant variant of the Figure 3 skeleton
/// (core/ContentionSensitive.h). The paper's Section 5 concedes that the
/// construction "still works despite process crashes *if no process
/// crashes while holding the lock*"; this skeleton closes that boundary
/// by bounding every blocking step with a patience budget and downgrading
/// the progress guarantee instead of hanging:
///
///   fast path (lines 01-03)  — unchanged: lock-free, six accesses for
///                              the stack, crash-tolerated as before.
///   doorway (lines 04-05)    — RecoverableArbiter::enterBounded: TURN
///                              skips suspected-dead processes; patience
///                              exhaustion withdraws and degrades.
///   lock (line 06)           — LeasedLock::lockBounded: a lease stuck
///                              past patience marks the holder suspect,
///                              revokes the lease (so the *next* slow
///                              operation finds the lock free and the
///                              system heals), and degrades this one.
///   degraded mode            — the Figure 2 non-blocking retry loop:
///                              repeat the weak operation until non-
///                              bottom. Lock-free (some operation always
///                              completes; a weak op only aborts because
///                              a rival's C&S won) but no longer
///                              starvation-free. Counted per object.
///
/// The progress-guarantee downgrade lattice (DESIGN.md):
///
///     no faults            -> starvation-free  (Theorem 1, unchanged)
///     crash w/o lock       -> starvation-free  (Section 5, unchanged)
///     crash waiting/holding-> lock-free        (degraded mode, new)
///
/// Safety never degrades: every linearization point lies in a weak-object
/// C&S, so fast-path, protected and degraded completions interleave into
/// linearizable histories (checked in tests/faults_test.cpp).
///
/// CONTENTION left raised by a corpse heals in one round: the first
/// degraded survivor revokes the lease; the next slow-path operation
/// acquires the freed lock, completes its protected retry and lowers
/// CONTENTION on line 09 as usual.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CRASHTOLERANT_H
#define CSOBJ_CORE_CRASHTOLERANT_H

#include "locks/LeasedLock.h"
#include "locks/RecoverableArbiter.h"
#include "memory/AtomicRegister.h"
#include "obs/PathCounters.h"
#include "support/CacheLine.h"
#include "support/ContentionManager.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>

namespace csobj {

/// Per-object tallies of the degradation machinery. Plain uninstrumented
/// atomics: harness accounting, not algorithm state — reading them is not
/// a shared access in the paper's counting convention and must not
/// perturb the six-access bound or the explorer's schedules.
struct DegradationCounters {
  std::atomic<std::uint64_t> Degradations{0};    ///< Ops completed via fallback.
  std::atomic<std::uint64_t> DoorwayTimeouts{0}; ///< enterBounded gave up.
  std::atomic<std::uint64_t> LeaseTimeouts{0};   ///< lockBounded gave up.
  std::atomic<std::uint64_t> ProtectedOps{0};    ///< Normal slow-path completions.
};

/// Value snapshot of DegradationCounters plus the lock's own counters.
struct DegradationStats {
  std::uint64_t Degradations = 0;
  std::uint64_t DoorwayTimeouts = 0;
  std::uint64_t LeaseTimeouts = 0;
  std::uint64_t ProtectedOps = 0;
  std::uint64_t Revocations = 0; ///< Leases revoked from suspected holders.
  std::uint64_t LostLeases = 0;  ///< Holder-side C&S releases that failed.
};

/// Figure 3 skeleton with bounded patience and lock-free degraded mode.
/// Drop-in for ContentionSensitive where crash tolerance matters; the
/// fast path is access-for-access identical (one CONTENTION read plus
/// the weak attempt).
///
/// \tparam Manager ContentionManager pacing both the protected retry and
///         the degraded retry loop.
/// \tparam Policy register policy (Instrumented / Fast).
template <ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
class CrashTolerantContentionSensitive {
public:
  using RegisterPolicy = Policy;

  /// Patience used when none is given: generous enough that wall-clock
  /// false suspicions are rare, small enough that a corpse is detected
  /// in bounded logical time.
  static constexpr std::uint32_t DefaultPatience = 1u << 12;

  /// \p NumThreads is the paper's n; \p Patience bounds, in consecutive
  /// observations of an unchanged doorway turn or lock lease, how long a
  /// slow-path operation waits before suspecting and degrading.
  explicit CrashTolerantContentionSensitive(
      std::uint32_t NumThreads, std::uint32_t Patience = DefaultPatience)
      : N(NumThreads), Patience(Patience), Suspects(NumThreads),
        Arbiter(NumThreads, Suspects), Guard(NumThreads, &Suspects) {
    assert(NumThreads >= 1 && "need at least one process");
  }

  /// strong_push_or_pop(par) with graceful degradation. Same contract as
  /// ContentionSensitive::strongApply — never returns bottom, always
  /// terminates — but termination now survives crashes of competing and
  /// lock-holding processes (lock-freely, Theorem 1's starvation bound
  /// applies only to fault-free executions).
  template <typename WeakOpFn>
  auto strongApply(std::uint32_t Tid, WeakOpFn WeakOp)
      -> typename std::invoke_result_t<WeakOpFn>::value_type {
    assert(Tid < N && "thread id out of range");
    Sink.onOp(Tid);
    if (Contention.value().read(std::memory_order_acquire) == 0) { // line 01
      if (auto Res = WeakOp()) {             // line 02
        Sink.onPath(Tid, obs::Path::Shortcut);
        return *Res;
      }
      Sink.onEvent(Tid, obs::Event::ShortcutAbort);
    }
    if (!Arbiter.enterBounded(Tid, Patience)) { // lines 04-05, bounded
      Counters.DoorwayTimeouts.fetch_add(1, std::memory_order_relaxed);
      Sink.onEvent(Tid, obs::Event::DoorwayTimeout);
      return degradedApply(Tid, WeakOp);
    }
    if (Guard.lockBounded(Tid, Patience) !=
        LeaseAcquire::Acquired) {            // line 06, bounded
      Counters.LeaseTimeouts.fetch_add(1, std::memory_order_relaxed);
      Sink.onEvent(Tid, obs::Event::LeaseTimeout);
      Arbiter.withdraw(Tid);
      return degradedApply(Tid, WeakOp);
    }
    Contention.value().write(1, std::memory_order_release); // line 07
    Manager Mgr;
    auto Res = WeakOp();                     // line 08 (repeat ... until)
    while (!Res) {
      Sink.onEvent(Tid, obs::Event::ProtectedRetry);
      Mgr.onAbort();
      Res = WeakOp();
    }
    Mgr.onSuccess();
    Contention.value().write(0, std::memory_order_release); // line 09
    Arbiter.exitAndAdvance(Tid);             // lines 10-11
    Guard.unlock(Tid);                       // line 12
    Counters.ProtectedOps.fetch_add(1, std::memory_order_relaxed);
    Sink.onPath(Tid, obs::Path::Lock);
    return *Res;                             // line 13
  }

  std::uint32_t numThreads() const { return N; }
  std::uint32_t patience() const { return Patience; }

  /// Path-attributed metrics (obs/PathCounters.h). Subsumes the legacy
  /// DegradationCounters view: Degraded path = Degradations, Lock path =
  /// ProtectedOps; statsForTesting() is kept for the lock's own tallies.
  obs::MetricSink &metrics() const { return Sink; }
  obs::PathSnapshot pathSnapshot() const { return Sink.snapshot(); }

  bool contentionForTesting() const {
    return Contention.value().peekForTesting() != 0;
  }

  /// Aggregated degradation statistics (test/bench aid; approximate
  /// under concurrency, exact once quiescent).
  DegradationStats statsForTesting() const {
    DegradationStats S;
    S.Degradations = Counters.Degradations.load(std::memory_order_relaxed);
    S.DoorwayTimeouts =
        Counters.DoorwayTimeouts.load(std::memory_order_relaxed);
    S.LeaseTimeouts =
        Counters.LeaseTimeouts.load(std::memory_order_relaxed);
    S.ProtectedOps = Counters.ProtectedOps.load(std::memory_order_relaxed);
    S.Revocations = Guard.revocations();
    S.LostLeases = Guard.lostLeases();
    return S;
  }

  /// The failure detector shared by doorway and lock (test/debug aid).
  SuspectSetT<Policy> &suspects() { return Suspects; }

  /// The recoverable doorway (test/debug aid).
  RecoverableArbiterT<Policy> &arbiter() { return Arbiter; }

  /// The leased lock (test/debug aid).
  LeasedLockT<Policy> &guard() { return Guard; }

private:
  /// Degraded mode: the Figure 2 non-blocking retry loop. Lock-free —
  /// a weak attempt only aborts because a rival operation's C&S
  /// succeeded, so system-wide progress is preserved even with the lock
  /// dead and the doorway stuck.
  template <typename WeakOpFn>
  auto degradedApply(std::uint32_t Tid, WeakOpFn &WeakOp)
      -> typename std::invoke_result_t<WeakOpFn>::value_type {
    Counters.Degradations.fetch_add(1, std::memory_order_relaxed);
    Manager Mgr;
    while (true) {
      if (auto Res = WeakOp()) {
        Mgr.onSuccess();
        Sink.onPath(Tid, obs::Path::Degraded);
        return *Res;
      }
      Sink.onEvent(Tid, obs::Event::DegradedRetry);
      Mgr.onAbort();
    }
  }

  const std::uint32_t N;
  const std::uint32_t Patience;
  CacheLinePadded<AtomicRegister<std::uint8_t, Policy>> Contention;
  SuspectSetT<Policy> Suspects;
  RecoverableArbiterT<Policy> Arbiter;
  LeasedLockT<Policy> Guard;
  mutable DegradationCounters Counters;
  [[no_unique_address]] mutable obs::MetricSink Sink{N};
};

} // namespace csobj

#endif // CSOBJ_CORE_CRASHTOLERANT_H
