//===- core/ContentionSensitiveCounter.h - Figure 3 genericity --*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A second, minimal instantiation of the Figure 3 skeleton demonstrating
/// that the construction is independent of the object: an abortable
/// fetch-and-add counter (read + C&S; abort when the C&S loses) wrapped
/// into a starvation-free strong counter. A contention-free strong add
/// performs three shared-memory accesses (read CONTENTION, read the
/// counter, C&S the counter).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CONTENTIONSENSITIVECOUNTER_H
#define CSOBJ_CORE_CONTENTIONSENSITIVECOUNTER_H

#include "core/ContentionSensitive.h"
#include "memory/AtomicRegister.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace csobj {

/// Abortable counter: one read + one C&S per attempt.
class AbortableCounter {
public:
  /// Heap owned by the counter: none (one inline register).
  std::size_t heapBytes() const { return 0; }

  /// Adds \p Delta; returns the new value, or nullopt (bottom) when a
  /// concurrent update won the C&S.
  std::optional<std::uint64_t> weakAdd(std::uint64_t Delta) {
    const std::uint64_t Seen = Register.read();
    if (Register.compareAndSwap(Seen, Seen + Delta))
      return Seen + Delta;
    return std::nullopt;
  }

  std::uint64_t valueForTesting() const {
    return Register.peekForTesting();
  }

private:
  AtomicRegister<std::uint64_t> Register{0};
};

/// Starvation-free strong counter via the Figure 3 skeleton. \p SkeletonT
/// defaults to Figure 3; the flat-combining skeleton plugs in the same
/// way (perf/CombiningSlowPath.h).
template <typename Lock = TasLock,
          typename SkeletonT = ContentionSensitive<Lock>>
class ContentionSensitiveCounter {
public:
  explicit ContentionSensitiveCounter(std::uint32_t NumThreads)
      : Strong(NumThreads) {}

  /// Adds \p Delta and returns the new value. Never fails, always
  /// terminates.
  std::uint64_t add(std::uint32_t Tid, std::uint64_t Delta) {
    return Strong.strongApply(
        Tid, [this, Delta] { return Weak.weakAdd(Delta); });
  }

  /// Group add: applies Deltas[0..Count) in index order as one batch
  /// (one seam acquisition for the contended remainder). Adds never
  /// report Full/Empty so the whole batch always applies; the running
  /// post-add values land in NewValues[0..Count) when non-null. Returns
  /// Count.
  std::size_t add_all(std::uint32_t Tid, const std::uint64_t *Deltas,
                      std::size_t Count,
                      std::uint64_t *NewValues = nullptr) {
    if (Count == 0)
      return 0;
    std::uint64_t Inline[BatchInlineCapacity];
    std::vector<std::uint64_t> Heap;
    std::uint64_t *Out = NewValues;
    if (!Out) {
      if (Count <= BatchInlineCapacity) {
        Out = Inline;
      } else {
        Heap.resize(Count);
        Out = Heap.data();
      }
    }
    return Strong.strongApplyBatch(
        Tid, Count,
        [this, Deltas](std::size_t I) { return Weak.weakAdd(Deltas[I]); },
        [](std::uint64_t) { return false; }, Out);
  }

  std::uint64_t valueForTesting() const { return Weak.valueForTesting(); }

  AbortableCounter &abortable() { return Weak; }

  /// Path-attributed metrics of the skeleton (obs/PathCounters.h).
  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }

  /// Resident bytes of the whole object: the header plus the weak
  /// object's slot array and the skeleton's heap (doorway FLAG array,
  /// combiner records, metric blocks). Feeds the bytes_per_element bench
  /// column (obs/MetricsJson.h).
  std::size_t footprintBytes() const {
    std::size_t Bytes = sizeof(*this) + Strong.heapBytes();
    if constexpr (requires { Weak.heapBytes(); })
      Bytes += Weak.heapBytes();
    return Bytes;
  }

  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

private:
  AbortableCounter Weak;
  SkeletonT Strong;
};

} // namespace csobj

#endif // CSOBJ_CORE_CONTENTIONSENSITIVECOUNTER_H
