//===- core/ContentionSensitiveCounter.h - Figure 3 genericity --*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A second, minimal instantiation of the Figure 3 skeleton demonstrating
/// that the construction is independent of the object: an abortable
/// fetch-and-add counter (read + C&S; abort when the C&S loses) wrapped
/// into a starvation-free strong counter. A contention-free strong add
/// performs three shared-memory accesses (read CONTENTION, read the
/// counter, C&S the counter).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CONTENTIONSENSITIVECOUNTER_H
#define CSOBJ_CORE_CONTENTIONSENSITIVECOUNTER_H

#include "core/ContentionSensitive.h"
#include "memory/AtomicRegister.h"

#include <cstdint>
#include <optional>

namespace csobj {

/// Abortable counter: one read + one C&S per attempt.
class AbortableCounter {
public:
  /// Adds \p Delta; returns the new value, or nullopt (bottom) when a
  /// concurrent update won the C&S.
  std::optional<std::uint64_t> weakAdd(std::uint64_t Delta) {
    const std::uint64_t Seen = Register.read();
    if (Register.compareAndSwap(Seen, Seen + Delta))
      return Seen + Delta;
    return std::nullopt;
  }

  std::uint64_t valueForTesting() const {
    return Register.peekForTesting();
  }

private:
  AtomicRegister<std::uint64_t> Register{0};
};

/// Starvation-free strong counter via the Figure 3 skeleton. \p SkeletonT
/// defaults to Figure 3; the flat-combining skeleton plugs in the same
/// way (perf/CombiningSlowPath.h).
template <typename Lock = TasLock,
          typename SkeletonT = ContentionSensitive<Lock>>
class ContentionSensitiveCounter {
public:
  explicit ContentionSensitiveCounter(std::uint32_t NumThreads)
      : Strong(NumThreads) {}

  /// Adds \p Delta and returns the new value. Never fails, always
  /// terminates.
  std::uint64_t add(std::uint32_t Tid, std::uint64_t Delta) {
    return Strong.strongApply(
        Tid, [this, Delta] { return Weak.weakAdd(Delta); });
  }

  std::uint64_t valueForTesting() const { return Weak.valueForTesting(); }

  AbortableCounter &abortable() { return Weak; }

  /// Path-attributed metrics of the skeleton (obs/PathCounters.h).
  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

private:
  AbortableCounter Weak;
  SkeletonT Strong;
};

} // namespace csobj

#endif // CSOBJ_CORE_CONTENTIONSENSITIVECOUNTER_H
