//===- core/CrashTolerantStack.h - Degradable Figure 3 stack ----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The headline stack rebuilt on the crash-tolerant skeleton
/// (core/CrashTolerant.h): linearizable and contention-sensitive like
/// ContentionSensitiveStack — an uncontended operation is lock-free and
/// performs the same six shared-memory accesses — but a process crashing
/// while competing for or holding the slow-path lock no longer wedges
/// the object. Survivors detect the stale lease within their patience
/// budget, revoke it, and complete through the Figure 2 retry loop;
/// progress degrades from starvation-free to lock-free instead of
/// vanishing, and every degradation is counted.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CRASHTOLERANTSTACK_H
#define CSOBJ_CORE_CRASHTOLERANTSTACK_H

#include "core/AbortableStack.h"
#include "core/CrashTolerant.h"

#include <cstdint>
#include <optional>

namespace csobj {

/// Crash-tolerant contention-sensitive bounded stack.
///
/// \tparam Config  codec family (Compact64 / Wide128).
/// \tparam Manager ContentionManager pacing protected and degraded
///         retries.
/// \tparam Policy  register policy (Instrumented / Fast).
template <typename Config = Compact64, ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
class CrashTolerantStack {
public:
  using Value = typename Config::Value;
  using Skeleton = CrashTolerantContentionSensitive<Manager, Policy>;
  using RegisterPolicy = Policy;
  static constexpr Value Bottom = AbortableStack<Config, Policy>::Bottom;

  /// \p NumThreads is the paper's n (ids 0..n-1); \p Capacity is k;
  /// \p Patience bounds slow-path waiting (see CrashTolerant.h).
  CrashTolerantStack(std::uint32_t NumThreads, std::uint32_t Capacity,
                     std::uint32_t Patience = Skeleton::DefaultPatience)
      : Weak(Capacity), Strong(NumThreads, Patience) {}

  /// strong_push(v): Done or Full, never Abort; terminates even when
  /// other processes crash mid-operation.
  PushResult push(std::uint32_t Tid, Value V) {
    return Strong.strongApply(Tid, [this, V]() -> std::optional<PushResult> {
      const PushResult Res = Weak.weakPush(V);
      if (Res == PushResult::Abort)
        return std::nullopt; // res = bottom
      return Res;
    });
  }

  /// strong_pop(): a value or Empty, never Abort; terminates even when
  /// other processes crash mid-operation.
  PopResult<Value> pop(std::uint32_t Tid) {
    return Strong.strongApply(
        Tid, [this]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Weak.weakPop();
          if (Res.isAbort())
            return std::nullopt; // res = bottom
          return Res;
        });
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t numThreads() const { return Strong.numThreads(); }
  std::uint32_t sizeForTesting() const { return Weak.sizeForTesting(); }

  /// The underlying Figure 1 object (test/debug aid).
  AbortableStack<Config, Policy> &abortable() { return Weak; }

  /// The crash-tolerant skeleton (test/debug/stats aid).
  Skeleton &skeleton() { return Strong; }
  const Skeleton &skeleton() const { return Strong; }

  /// Path-attributed metrics of the skeleton (obs/PathCounters.h).
  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

private:
  AbortableStack<Config, Policy> Weak;
  Skeleton Strong;
};

} // namespace csobj

#endif // CSOBJ_CORE_CRASHTOLERANTSTACK_H
