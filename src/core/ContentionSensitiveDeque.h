//===- core/ContentionSensitiveDeque.h - Figure 3 on the deque --*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 3 instantiated over the HLM obstruction-free deque (the
/// paper's reference [8]). This closes the loop the paper opens when it
/// ranks progress conditions in Section 1.2: HLM is the canonical
/// *obstruction-free-only* object (two symmetric operations can abort
/// each other forever under an adversarial scheduler), and the paper's
/// generic construction lifts exactly such objects to
/// starvation-freedom. A contention-free strong operation on an end is
/// lock-free and costs the weak attempt plus one read of CONTENTION.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CONTENTIONSENSITIVEDEQUE_H
#define CSOBJ_CORE_CONTENTIONSENSITIVEDEQUE_H

#include "core/ContentionSensitive.h"
#include "core/ObstructionFreeDeque.h"
#include "locks/TasLock.h"

#include <cstdint>
#include <optional>

namespace csobj {

/// Starvation-free contention-sensitive double-ended queue. \p SkeletonT
/// defaults to the paper's Figure 3 skeleton; the flat-combining skeleton
/// (perf/CombiningSlowPath.h) plugs in the same way.
template <typename Lock = TasLock,
          typename SkeletonT = ContentionSensitive<Lock>>
class ContentionSensitiveDeque {
public:
  using Value = ObstructionFreeDeque::Value;

  ContentionSensitiveDeque(std::uint32_t NumThreads, std::uint32_t Capacity,
                           std::uint32_t InitialLeftSlots = ~std::uint32_t{0})
      : Weak(Capacity, InitialLeftSlots), Strong(NumThreads) {}

  PushResult pushLeft(std::uint32_t Tid, Value V) {
    return strongPush(Tid, [this, V] { return Weak.tryPushLeft(V); });
  }
  PushResult pushRight(std::uint32_t Tid, Value V) {
    return strongPush(Tid, [this, V] { return Weak.tryPushRight(V); });
  }
  PopResult<Value> popLeft(std::uint32_t Tid) {
    return strongPop(Tid, [this] { return Weak.tryPopLeft(); });
  }
  PopResult<Value> popRight(std::uint32_t Tid) {
    return strongPop(Tid, [this] { return Weak.tryPopRight(); });
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t sizeForTesting() const { return Weak.sizeForTesting(); }
  ObstructionFreeDeque &abortable() { return Weak; }

  /// Path-attributed metrics of the skeleton (obs/PathCounters.h).
  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

private:
  template <typename AttemptFn>
  PushResult strongPush(std::uint32_t Tid, AttemptFn Attempt) {
    return Strong.strongApply(
        Tid, [&]() -> std::optional<PushResult> {
          const PushResult Res = Attempt();
          if (Res == PushResult::Abort)
            return std::nullopt;
          return Res;
        });
  }

  template <typename AttemptFn>
  PopResult<Value> strongPop(std::uint32_t Tid, AttemptFn Attempt) {
    return Strong.strongApply(
        Tid, [&]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Attempt();
          if (Res.isAbort())
            return std::nullopt;
          return Res;
        });
  }

  ObstructionFreeDeque Weak;
  SkeletonT Strong;
};

} // namespace csobj

#endif // CSOBJ_CORE_CONTENTIONSENSITIVEDEQUE_H
