//===- core/ContentionSensitiveDeque.h - Figure 3 on the deque --*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 3 instantiated over the HLM obstruction-free deque (the
/// paper's reference [8]). This closes the loop the paper opens when it
/// ranks progress conditions in Section 1.2: HLM is the canonical
/// *obstruction-free-only* object (two symmetric operations can abort
/// each other forever under an adversarial scheduler), and the paper's
/// generic construction lifts exactly such objects to
/// starvation-freedom. A contention-free strong operation on an end is
/// lock-free and costs the weak attempt plus one read of CONTENTION.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CONTENTIONSENSITIVEDEQUE_H
#define CSOBJ_CORE_CONTENTIONSENSITIVEDEQUE_H

#include "core/ContentionSensitive.h"
#include "core/ObstructionFreeDeque.h"
#include "locks/TasLock.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace csobj {

/// Starvation-free contention-sensitive double-ended queue. \p SkeletonT
/// defaults to the paper's Figure 3 skeleton; the flat-combining skeleton
/// (perf/CombiningSlowPath.h) plugs in the same way.
template <typename Lock = TasLock,
          typename SkeletonT = ContentionSensitive<Lock>>
class ContentionSensitiveDeque {
public:
  using Value = ObstructionFreeDeque::Value;

  ContentionSensitiveDeque(std::uint32_t NumThreads, std::uint32_t Capacity,
                           std::uint32_t InitialLeftSlots = ~std::uint32_t{0})
      : Weak(Capacity, InitialLeftSlots), Strong(NumThreads) {}

  PushResult pushLeft(std::uint32_t Tid, Value V) {
    return strongPush(Tid, [this, V] { return Weak.tryPushLeft(V); });
  }
  PushResult pushRight(std::uint32_t Tid, Value V) {
    return strongPush(Tid, [this, V] { return Weak.tryPushRight(V); });
  }
  PopResult<Value> popLeft(std::uint32_t Tid) {
    return strongPop(Tid, [this] { return Weak.tryPopLeft(); });
  }
  PopResult<Value> popRight(std::uint32_t Tid) {
    return strongPop(Tid, [this] { return Weak.tryPopRight(); });
  }

  /// Group push on the right end: pushes Vs[0..Count) in index order as
  /// one batch, stopping at the first Full answer (the deque receives a
  /// prefix of Vs). Returns the number pushed.
  std::size_t push_all(std::uint32_t Tid, const Value *Vs,
                       std::size_t Count) {
    if (Count == 0)
      return 0;
    PushResult Inline[BatchInlineCapacity];
    std::vector<PushResult> Heap;
    PushResult *Results = Inline;
    if (Count > BatchInlineCapacity) {
      Heap.resize(Count);
      Results = Heap.data();
    }
    const std::size_t Applied = Strong.strongApplyBatch(
        Tid, Count,
        [this, Vs](std::size_t I) -> std::optional<PushResult> {
          const PushResult Res = Weak.tryPushRight(Vs[I]);
          if (Res == PushResult::Abort)
            return std::nullopt;
          return Res;
        },
        [](PushResult R) { return R == PushResult::Full; },
        Results);
    return Applied != 0 && Results[Applied - 1] == PushResult::Full
               ? Applied - 1
               : Applied;
  }

  /// Group pop from the right end (LIFO relative to push_all): pops up
  /// to \p MaxCount values into Out[0..], stopping at the first Empty
  /// answer. Returns the number popped.
  std::size_t pop_all(std::uint32_t Tid, Value *Out, std::size_t MaxCount) {
    if (MaxCount == 0)
      return 0;
    PopResult<Value> Inline[BatchInlineCapacity];
    std::vector<PopResult<Value>> Heap;
    PopResult<Value> *Results = Inline;
    if (MaxCount > BatchInlineCapacity) {
      Heap.resize(MaxCount);
      Results = Heap.data();
    }
    const std::size_t Applied = Strong.strongApplyBatch(
        Tid, MaxCount,
        [this](std::size_t) -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Weak.tryPopRight();
          if (Res.isAbort())
            return std::nullopt;
          return Res;
        },
        [](const PopResult<Value> &R) { return R.isEmpty(); },
        Results);
    std::size_t Got = 0;
    for (std::size_t I = 0; I < Applied; ++I)
      if (Results[I].isValue())
        Out[Got++] = Results[I].value();
    return Got;
  }

  /// Drains the right end: pop_all bounded by the caller's buffer.
  std::size_t drain(std::uint32_t Tid, Value *Out, std::size_t MaxOut) {
    return pop_all(Tid, Out, MaxOut);
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t sizeForTesting() const { return Weak.sizeForTesting(); }
  ObstructionFreeDeque &abortable() { return Weak; }

  /// Path-attributed metrics of the skeleton (obs/PathCounters.h).
  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }

  /// Resident bytes of the whole object: the header plus the weak
  /// object's slot array and the skeleton's heap (doorway FLAG array,
  /// combiner records, metric blocks). Feeds the bytes_per_element bench
  /// column (obs/MetricsJson.h).
  std::size_t footprintBytes() const {
    std::size_t Bytes = sizeof(*this) + Strong.heapBytes();
    if constexpr (requires { Weak.heapBytes(); })
      Bytes += Weak.heapBytes();
    return Bytes;
  }

  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

private:
  template <typename AttemptFn>
  PushResult strongPush(std::uint32_t Tid, AttemptFn Attempt) {
    return Strong.strongApply(
        Tid, [&]() -> std::optional<PushResult> {
          const PushResult Res = Attempt();
          if (Res == PushResult::Abort)
            return std::nullopt;
          return Res;
        });
  }

  template <typename AttemptFn>
  PopResult<Value> strongPop(std::uint32_t Tid, AttemptFn Attempt) {
    return Strong.strongApply(
        Tid, [&]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Attempt();
          if (Res.isAbort())
            return std::nullopt;
          return Res;
        });
  }

  ObstructionFreeDeque Weak;
  SkeletonT Strong;
};

} // namespace csobj

#endif // CSOBJ_CORE_CONTENTIONSENSITIVEDEQUE_H
