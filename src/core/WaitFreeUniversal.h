//===- core/WaitFreeUniversal.h - Wait-free universal object ----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top rung of the paper's progress ladder. Footnote 1 and Section 5
/// point past starvation-freedom to *wait-freedom* (Herlihy [7]): every
/// process completes every operation in a bounded number of its own
/// steps, regardless of what the others do — including crashing. This
/// header implements a Herlihy-style universal construction for small
/// copyable objects:
///
///  * each process announces its next operation in a single-word
///    register (a per-process sequence number makes announcements
///    idempotent);
///  * an operation attempt copies the current state (from a
///    version-validated buffer), applies EVERY announced-but-unapplied
///    operation into a private buffer — recording per-process results
///    inside the state — and tries to swing one CAS-managed "current
///    state" pointer;
///  * if the CAS fails, some other process succeeded, and any successful
///    swing that started after our announcement has applied our
///    operation for us. At most two foreign swings can miss the
///    announcement, so every operation completes within three attempts —
///    the classic wait-freedom bound.
///
/// Buffers are thread-owned and seqlock-validated (the single writer
/// bumps the version to odd, writes, bumps to even; readers re-check),
/// so reclamation is free: a process reuses its own two buffers
/// alternately and a stale reader simply fails validation.
///
/// Trade-off vs Figure 3 (measured in E11): every operation — even a
/// solo one — pays a full state copy plus an O(n) announcement scan, so
/// this is NOT contention-sensitive. It exists to complete the
/// hierarchy: obstruction-free (HLM deque) < non-blocking (Fig. 2) <
/// starvation-free (Fig. 3) < wait-free (this).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_WAITFREEUNIVERSAL_H
#define CSOBJ_CORE_WAITFREEUNIVERSAL_H

#include "core/Results.h"
#include "memory/AtomicRegister.h"
#include "support/BitPack.h"
#include "support/CacheLine.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

namespace csobj {

/// Wait-free universal construction over a small copyable state.
///
/// \tparam StateT     trivially copyable sequential state.
/// \tparam ApplierT   stateless policy with
///                    `static std::uint64_t apply(StateT &, std::uint8_t
///                    Kind, std::uint32_t Arg)` — the sequential
///                    specification; the return value is delivered to the
///                    invoking process.
/// \tparam MaxThreads compile-time bound on the paper's n.
template <typename StateT, typename ApplierT, std::uint32_t MaxThreads = 8>
class WaitFreeUniversal {
  static_assert(std::is_trivially_copyable_v<StateT>,
                "universal construction copies the state wholesale");

public:
  explicit WaitFreeUniversal(std::uint32_t NumThreads,
                             const StateT &Initial = StateT{})
      : N(NumThreads) {
    assert(NumThreads >= 1 && NumThreads <= MaxThreads &&
           "thread count out of range");
    // Buffer 0 of process 0 holds the initial state; all versions even.
    Packed Init{};
    Init.User = Initial;
    Buffers[0].value().store(Init);
    Current.write(PtrCodec::pack(/*BufIdx=*/0, /*Tag=*/0));
    for (std::uint32_t I = 0; I < MaxThreads; ++I) {
      Announce[I].value().write(0);
      NextFree[I] = 1; // Process 0's buffer 0 is live; all others free.
    }
    NextFree[0] = 1;
  }

  /// Executes one operation; wait-free (at most three swing attempts
  /// after the announcement, see file comment). Returns ApplierT's
  /// result for this operation.
  std::uint64_t invoke(std::uint32_t Tid, std::uint8_t Kind,
                       std::uint32_t Arg) {
    assert(Tid < N && "thread id out of range");
    const std::uint32_t MySeq = ++LocalSeq[Tid];
    assert(MySeq <= AnnCodec::maxSeq() && "per-process op budget exhausted");
    Announce[Tid].value().write(AnnCodec::pack(MySeq, Kind, Arg));

    while (true) {
      const std::uint64_t Cur = Current.read();
      Packed Snapshot;
      if (!Buffers[PtrCodec::bufOf(Cur)].value().load(Snapshot))
        continue; // Torn read: the buffer moved on, so did Current.
      // Re-validate the pointer: a stale Cur could name a buffer its
      // owner has since reused for a *speculative* (never-committed)
      // state. An owner never writes a buffer while it is current, so
      // "copy valid AND Current unchanged" certifies a committed state.
      if (Current.read() != Cur)
        continue;
      if (Snapshot.AppliedSeq[Tid] >= MySeq)
        return Snapshot.LastResult[Tid]; // Someone applied us: done.

      // Apply every announced-but-unapplied operation (including ours).
      for (std::uint32_t J = 0; J < N; ++J) {
        const std::uint64_t Ann = Announce[J].value().read();
        const std::uint32_t Seq = AnnCodec::seqOf(Ann);
        if (Seq == Snapshot.AppliedSeq[J] + 1) {
          Snapshot.LastResult[J] = ApplierT::apply(
              Snapshot.User, AnnCodec::kindOf(Ann), AnnCodec::argOf(Ann));
          Snapshot.AppliedSeq[J] = Seq;
        }
      }

      // Publish from one of our own buffers and try to swing Current.
      const std::uint32_t MyBuf = 2 * Tid + (NextFree[Tid] & 1);
      Buffers[MyBuf].value().store(Snapshot);
      if (Current.compareAndSwap(
              Cur, PtrCodec::pack(MyBuf, PtrCodec::tagOf(Cur) + 1))) {
        NextFree[Tid] ^= 1; // The other buffer is free next time.
        return Snapshot.LastResult[Tid];
      }
      // Lost the swing: the winner (or the next one) applied us.
    }
  }

  std::uint32_t numThreads() const { return N; }

  /// Copy of the current sequential state (test/debug aid).
  StateT stateForTesting() const {
    while (true) {
      const std::uint64_t Cur = Current.peekForTesting();
      Packed Snapshot;
      if (Buffers[PtrCodec::bufOf(Cur)].value().load(Snapshot) &&
          Current.peekForTesting() == Cur)
        return Snapshot.User;
    }
  }

private:
  /// Whole-object state: user state + per-process applied table and
  /// result slots (results must live in the state so that a lost swing
  /// still delivers them exactly once).
  struct Packed {
    StateT User{};
    std::uint32_t AppliedSeq[MaxThreads] = {};
    std::uint64_t LastResult[MaxThreads] = {};
  };

  /// Announcement word: seq:24 | kind:8 | arg:32 (per-process sequence
  /// numbers cap at ~16M operations; asserted).
  struct AnnCodec {
    using SeqF = BitField<std::uint64_t, 40, 24>;
    using KindF = BitField<std::uint64_t, 32, 8>;
    using ArgF = BitField<std::uint64_t, 0, 32>;
    static std::uint64_t pack(std::uint32_t Seq, std::uint8_t Kind,
                              std::uint32_t Arg) {
      return SeqF::encode(Seq) | KindF::encode(Kind) | ArgF::encode(Arg);
    }
    static std::uint32_t seqOf(std::uint64_t W) {
      return static_cast<std::uint32_t>(SeqF::get(W));
    }
    static std::uint8_t kindOf(std::uint64_t W) {
      return static_cast<std::uint8_t>(KindF::get(W));
    }
    static std::uint32_t argOf(std::uint64_t W) {
      return static_cast<std::uint32_t>(ArgF::get(W));
    }
    static constexpr std::uint32_t maxSeq() {
      return static_cast<std::uint32_t>(SeqF::maxValue());
    }
  };

  /// Current-state word: buffer index + ABA tag.
  struct PtrCodec {
    using Pair = PackedPair<std::uint64_t, 32, 32>;
    static std::uint64_t pack(std::uint32_t Buf, std::uint32_t Tag) {
      return Pair::pack(Buf, Tag);
    }
    static std::uint32_t bufOf(std::uint64_t W) {
      return static_cast<std::uint32_t>(Pair::a(W));
    }
    static std::uint32_t tagOf(std::uint64_t W) {
      return static_cast<std::uint32_t>(Pair::b(W));
    }
  };

  /// Seqlock-protected buffer: one writer (the owning process), any
  /// number of validating readers.
  class Buffer {
  public:
    /// Single-writer publish.
    void store(const Packed &Value) {
      const std::uint32_t V = Version.load(std::memory_order_relaxed);
      Version.store(V + 1, std::memory_order_release); // Odd: writing.
      std::uint64_t Raw[Words];
      std::memcpy(Raw, &Value, sizeof(Packed));
      for (std::size_t W = 0; W < Words; ++W)
        Data[W].store(Raw[W], std::memory_order_relaxed);
      Version.store(V + 2, std::memory_order_release); // Even: stable.
    }

    /// Validated read; false when torn by a concurrent store.
    bool load(Packed &Out) const {
      const std::uint32_t V1 = Version.load(std::memory_order_acquire);
      if (V1 & 1)
        return false;
      std::uint64_t Raw[Words];
      for (std::size_t W = 0; W < Words; ++W)
        Raw[W] = Data[W].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (Version.load(std::memory_order_relaxed) != V1)
        return false;
      std::memcpy(&Out, Raw, sizeof(Packed));
      return true;
    }

  private:
    static constexpr std::size_t Words =
        (sizeof(Packed) + sizeof(std::uint64_t) - 1) /
        sizeof(std::uint64_t);

    std::atomic<std::uint32_t> Version{0};
    std::atomic<std::uint64_t> Data[Words] = {};
  };

  const std::uint32_t N;
  AtomicRegister<std::uint64_t> Current;
  CacheLinePadded<AtomicRegister<std::uint64_t>> Announce[MaxThreads];
  CacheLinePadded<Buffer> Buffers[2 * MaxThreads];
  std::uint32_t LocalSeq[MaxThreads] = {};  ///< Thread-owned.
  std::uint32_t NextFree[MaxThreads] = {};  ///< Thread-owned.
};

//===----------------------------------------------------------------------===
// Instantiations: wait-free counter and wait-free bounded stack
//===----------------------------------------------------------------------===

/// Sequential spec of a saturating counter for the universal object.
struct CounterApplier {
  static constexpr std::uint8_t KindAdd = 0;
  struct State {
    std::uint64_t Value = 0;
  };
  static std::uint64_t apply(State &S, std::uint8_t Kind,
                             std::uint32_t Arg) {
    assert(Kind == KindAdd && "unknown counter operation");
    (void)Kind;
    S.Value += Arg;
    return S.Value;
  }
};

/// Wait-free counter: add returns the new value.
template <std::uint32_t MaxThreads = 8>
class WaitFreeCounter {
public:
  explicit WaitFreeCounter(std::uint32_t NumThreads) : Core(NumThreads) {}

  std::uint64_t add(std::uint32_t Tid, std::uint32_t Delta) {
    return Core.invoke(Tid, CounterApplier::KindAdd, Delta);
  }

  std::uint64_t valueForTesting() const {
    return Core.stateForTesting().Value;
  }

private:
  WaitFreeUniversal<CounterApplier::State, CounterApplier, MaxThreads> Core;
};

/// Sequential spec of a small bounded stack for the universal object.
/// Results pack code:32 | value:32 (codes below).
template <std::uint32_t CapacityK>
struct StackApplier {
  static constexpr std::uint8_t KindPush = 0;
  static constexpr std::uint8_t KindPop = 1;
  static constexpr std::uint64_t CodeDone = 0;
  static constexpr std::uint64_t CodeFull = 1;
  static constexpr std::uint64_t CodeEmpty = 2;
  static constexpr std::uint64_t CodeValue = 3;

  struct State {
    std::uint32_t Size = 0;
    std::uint32_t Items[CapacityK] = {};
  };

  static std::uint64_t apply(State &S, std::uint8_t Kind,
                             std::uint32_t Arg) {
    if (Kind == KindPush) {
      if (S.Size == CapacityK)
        return CodeFull << 32;
      S.Items[S.Size++] = Arg;
      return CodeDone << 32;
    }
    if (S.Size == 0)
      return CodeEmpty << 32;
    return (CodeValue << 32) | S.Items[--S.Size];
  }
};

/// Wait-free bounded stack of compile-time capacity.
template <std::uint32_t CapacityK, std::uint32_t MaxThreads = 8>
class WaitFreeStack {
public:
  using Applier = StackApplier<CapacityK>;

  explicit WaitFreeStack(std::uint32_t NumThreads) : Core(NumThreads) {}

  PushResult push(std::uint32_t Tid, std::uint32_t V) {
    const std::uint64_t R = Core.invoke(Tid, Applier::KindPush, V);
    return (R >> 32) == Applier::CodeFull ? PushResult::Full
                                          : PushResult::Done;
  }

  PopResult<std::uint32_t> pop(std::uint32_t Tid) {
    const std::uint64_t R = Core.invoke(Tid, Applier::KindPop, 0);
    if ((R >> 32) == Applier::CodeEmpty)
      return PopResult<std::uint32_t>::empty();
    return PopResult<std::uint32_t>::value(
        static_cast<std::uint32_t>(R));
  }

  std::uint32_t sizeForTesting() const {
    return Core.stateForTesting().Size;
  }

private:
  WaitFreeUniversal<typename Applier::State, Applier, MaxThreads> Core;
};

} // namespace csobj

#endif // CSOBJ_CORE_WAITFREEUNIVERSAL_H
