//===- core/UnboundedQueue.h - Unbounded abortable FIFO + Fig 3 -*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abortable queue of core/AbortableQueue.h over a chunked,
/// hazard-reclaimed ring. The ring logically spans the codec's whole
/// index space (65536 positions for Compact64 — capacity 65535, one
/// position kept free to separate full from empty), but only the chunks
/// covering the live window [FRONT .. next(REAR)] are resident: an
/// enqueue crossing into an absent chunk installs one, a dequeue whose
/// FRONT crosses a chunk boundary trims everything outside the window
/// and retires it through memory/HazardDomain.h. Resident memory tracks
/// the queue's population, not the index space.
///
/// The algorithm (lazy REAR help, abort-when-uncertain full/empty
/// certification, the FRONT-cycle generation certificate) is unchanged;
/// only ITEMS[x] addressing goes through the chunk directory, on the
/// same uncounted reclamation channel as the unbounded stack — solo
/// access counts stay at the bounded queue's six (seven through the
/// Figure-3 wrapper).
///
/// Chunk seeding is where the queue differs from the stack. The
/// generation certificate demands that a slot's sequence number equal
/// its occupancy count — the dequeuer computes the exact sn its slot
/// must carry from FRONT's cycle tag, and any other value (while FRONT
/// is unmoved) must mean "the current REAR is this slot's unhelped
/// enqueue". A chunk reinstalled with an arbitrary seed would violate
/// that arithmetic forever (every certificate on its slots would fail
/// and the strong wrapper would spin). So an installed chunk resumes
/// the *exact* sequence run of the untrimmed ring: under the directory
/// lock, a fresh REAR read <r, s> fixes the seed — s-1 for a chunk
/// entered mid-cycle, s for the wrap into position 0 (where the
/// per-cycle seqnb increment happens) — and an install requested for
/// any position other than chunkOf(next(r)) is refused, which proves
/// the requester's REAR view stale and turns its operation into the
/// Abort its own REAR C&S would have produced. With exact resumption,
/// the ABA envelope is the bounded ring's own: 2^16 occupancies of one
/// slot.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_UNBOUNDEDQUEUE_H
#define CSOBJ_CORE_UNBOUNDEDQUEUE_H

#include "core/ContentionSensitive.h"
#include "core/Results.h"
#include "locks/TasLock.h"
#include "memory/AtomicRegister.h"
#include "memory/HazardDomain.h"
#include "memory/NodePool.h"
#include "memory/TaggedValue.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>

namespace csobj {

/// Unbounded abortable FIFO queue: the bounded algorithm over a chunked,
/// hazard-reclaimed ring spanning the codec's index space.
template <typename Config = Compact64,
          typename Policy = DefaultRegisterPolicy>
class UnboundedQueue {
public:
  using TopC = typename Config::Top;   ///< Codec for REAR (a triple).
  using SlotC = typename Config::Slot; ///< Codec for ITEMS and FRONT.
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;

  static constexpr Value Bottom = TopC::Bottom;
  static constexpr std::uint32_t ChunkSlots = 64;
  /// Ring positions: the whole index space (MaxIndex+1, a multiple of
  /// ChunkSlots, so chunk arithmetic wraps cleanly with the ring).
  static constexpr std::uint32_t Ring = TopC::MaxIndex + 1;
  /// Usable capacity (one position separates full from empty).
  static constexpr std::uint32_t EnvelopeCapacity = Ring - 1;
  static constexpr std::uint32_t DirSize = Ring / ChunkSlots;
  static constexpr std::uint32_t HazardSlots = 2;
  static_assert(Ring % ChunkSlots == 0,
                "ring must be chunk-aligned for wrapped chunk arithmetic");

  struct Chunk {
    AtomicRegister<typename SlotC::Word, Policy> Slots[ChunkSlots];
  };

  /// \p NumThreads sizes the hazard domain. Construct outside counting
  /// scopes: initialisation writes REAR and FRONT.
  explicit UnboundedQueue(std::uint32_t NumThreads)
      : Domain(NumThreads, HazardSlots) {
    assert(NumThreads >= 1 && "need at least one process");
    for (std::uint32_t P = 0; P < DirSize; ++P)
      Dir[P].store(nullptr, std::memory_order_relaxed);
    Chunk *C0 = Pool.acquire();
    for (std::uint32_t X = 0; X < ChunkSlots; ++X)
      C0->Slots[X].writeReclaim(SlotC::pack({Bottom, 0}));
    C0->Slots[0].writeReclaim(SlotC::pack({Bottom, TopC::seqAdd(0, -1)}));
    Dir[0].store(C0, std::memory_order_seq_cst);
    Rear.write(TopC::pack({/*Index=*/0, /*Value=*/Bottom, /*Seq=*/0}));
    Front.write(SlotC::pack({/*Value=*/0, /*Seq=*/0}));
  }

  /// weak_enqueue(v): Done, Full (envelope only), or Abort. Solo
  /// operations never abort (their chunks are always resident).
  PushResult weakEnqueue(std::uint32_t Tid, Value V) {
    assert(V != Bottom && "cannot enqueue the reserved bottom value");
    const TopWord RearW = Rear.read();
    const TopFields<Value> R = TopC::unpack(RearW);
    HazardGuard HelpGuard(Domain, Tid, 0);
    Chunk *HelpC = pin(chunkOf(R.Index), HelpGuard);
    if (!HelpC)
      return PushResult::Abort;
    helpRear(*HelpC, R);
    const SlotWord FrontW = Front.read();
    const std::uint32_t FrontIdx = frontIndex(FrontW);
    if (next(R.Index) == FrontIdx) {
      // Possibly full; certify against stale REAR/FRONT or abort.
      if (Rear.read() != RearW)
        return PushResult::Abort;
      if (Front.read() != FrontW)
        return PushResult::Abort;
      return PushResult::Full;
    }
    HazardGuard NextGuard(Domain, Tid, 1);
    Chunk *NextC = pinOrInstall(chunkOf(next(R.Index)), NextGuard);
    if (!NextC)
      return PushResult::Abort; // install refused: REAR view stale
    const SlotFields<Value> Next = SlotC::unpack(
        slotIn(*NextC, next(R.Index)).read(std::memory_order_acquire));
    const TopWord NewRear =
        TopC::pack({next(R.Index), V, TopC::seqAdd(Next.Seq, +1)});
    if (Rear.compareAndSwap(RearW, NewRear, std::memory_order_acq_rel))
      return PushResult::Done;
    return PushResult::Abort;
  }

  /// weak_dequeue(): the oldest value, Empty, or Abort. Solo operations
  /// never abort. A FRONT move across a chunk boundary trims the chunks
  /// that fell out of the live window.
  PopResult<Value> weakDequeue(std::uint32_t Tid) {
    const TopWord RearW = Rear.read();
    const TopFields<Value> R = TopC::unpack(RearW);
    HazardGuard HelpGuard(Domain, Tid, 0);
    Chunk *HelpC = pin(chunkOf(R.Index), HelpGuard);
    if (!HelpC)
      return PopResult<Value>::abort();
    helpRear(*HelpC, R);
    const SlotWord FrontW = Front.read();
    const std::uint32_t FrontIdx = frontIndex(FrontW);
    if (FrontIdx == R.Index) {
      // Possibly empty; certify: REAR still at FRONT's position and
      // FRONT unmoved => the queue was empty at the FRONT re-read.
      const TopFields<Value> R2 = TopC::unpack(Rear.read());
      if (R2.Index != FrontIdx)
        return PopResult<Value>::abort();
      if (Front.read() != FrontW)
        return PopResult<Value>::abort();
      return PopResult<Value>::empty();
    }
    const std::uint32_t OldestIdx = next(FrontIdx);
    HazardGuard OldestGuard(Domain, Tid, 1);
    Chunk *OldestC = pin(chunkOf(OldestIdx), OldestGuard);
    if (!OldestC)
      return PopResult<Value>::abort();
    const SlotFields<Value> Oldest = SlotC::unpack(
        slotIn(*OldestC, OldestIdx).read(std::memory_order_acquire));
    // Generation certificate (see core/AbortableQueue.h): with c
    // completed ring cycles in FRONT, the oldest slot must carry sn =
    // c + 1.
    const std::uint32_t Cycle = frontCycle(FrontW);
    const std::uint32_t Expected = TopC::seqAdd(Cycle, +1);
    Value Out = Oldest.Value;
    if (Oldest.Seq != Expected) {
      // Stale slot: the only legal cause while FRONT is unmoved is that
      // the current REAR is the still-unhelped enqueue of this slot.
      const TopFields<Value> R2 = TopC::unpack(Rear.read());
      if (R2.Index != OldestIdx || R2.Seq != Expected)
        return PopResult<Value>::abort();
      helpRear(*OldestC, R2);
      Out = R2.Value;
    }
    const SlotWord NewFront = SlotC::pack(
        {static_cast<Value>(OldestIdx),
         OldestIdx == 0 ? TopC::seqAdd(Cycle, +1) : Cycle});
    if (Front.compareAndSwap(FrontW, NewFront,
                             std::memory_order_acq_rel)) {
      if (chunkOf(OldestIdx) != chunkOf(FrontIdx))
        trim(Tid); // uncounted: reclamation channel
      return PopResult<Value>::value(Out);
    }
    return PopResult<Value>::abort();
  }

  std::uint32_t capacity() const { return EnvelopeCapacity; }
  std::uint32_t numThreads() const { return Domain.numThreads(); }

  /// Quiescent-only element count (test/debug aid).
  std::uint32_t sizeForTesting() const {
    const std::uint32_t R = TopC::unpack(Rear.peekForTesting()).Index;
    const std::uint32_t F = frontIndex(Front.peekForTesting());
    return (R + Ring - F) % Ring;
  }

  std::uint32_t installedChunksForTesting() const {
    std::uint32_t Count = 0;
    for (std::uint32_t P = 0; P < DirSize; ++P)
      if (Dir[P].load(std::memory_order_seq_cst))
        ++Count;
    return Count;
  }

  HazardDomain &domain() { return Domain; }
  const HazardDomain &domain() const { return Domain; }

  std::size_t allocatedChunksForTesting() const {
    return Pool.allocatedCount();
  }

  /// Heap owned by the queue (chunks ever allocated + reclamation
  /// bookkeeping) — the bytes_per_element footprint.
  std::size_t heapBytes() const {
    return Pool.heapBytes() + Domain.heapBytes();
  }

private:
  using TopWord = typename TopC::Word;
  using SlotWord = typename SlotC::Word;

  static constexpr std::uint32_t next(std::uint32_t Index) {
    return (Index + 1) % Ring;
  }
  static constexpr std::uint32_t chunkOf(std::uint32_t Index) {
    return Index / ChunkSlots;
  }
  static AtomicRegister<SlotWord, Policy> &slotIn(Chunk &C,
                                                  std::uint32_t Index) {
    return C.Slots[Index % ChunkSlots];
  }
  static std::uint32_t frontIndex(SlotWord W) {
    return static_cast<std::uint32_t>(SlotC::unpack(W).Value);
  }
  static std::uint32_t frontCycle(SlotWord W) {
    return SlotC::unpack(W).Seq;
  }

  /// Completes the lazy ITEMS write of the last enqueue recorded in
  /// REAR, through a pinned chunk.
  void helpRear(Chunk &C, const TopFields<Value> &R) {
    AtomicRegister<SlotWord, Policy> &S = slotIn(C, R.Index);
    const SlotFields<Value> Cur =
        SlotC::unpack(S.read(std::memory_order_acquire));
    S.compareAndSwap(SlotC::pack({Cur.Value, TopC::seqAdd(R.Seq, -1)}),
                     SlotC::pack({R.Value, R.Seq}),
                     std::memory_order_acq_rel);
  }

  /// Hazard handshake (read, publish, re-validate); nullptr proves the
  /// caller's view stale.
  Chunk *pin(std::uint32_t Pos, HazardGuard &Guard) {
    Chunk *C = Dir[Pos].load(std::memory_order_seq_cst);
    while (C) {
      Guard.protect(C);
      Chunk *Again = Dir[Pos].load(std::memory_order_seq_cst);
      if (Again == C)
        return C;
      C = Again;
    }
    return nullptr;
  }

  /// pin that installs the growth chunk if absent. Returns nullptr when
  /// the install is refused (the requested position is not the current
  /// growth position — the caller's REAR view is stale).
  Chunk *pinOrInstall(std::uint32_t Pos, HazardGuard &Guard) {
    while (true) {
      if (Chunk *C = pin(Pos, Guard))
        return C;
      if (!installAt(Pos))
        return nullptr;
    }
  }

  /// Installs a chunk at \p Pos seeded to resume the untrimmed ring's
  /// sequence run (see file comment). Only the growth position
  /// chunkOf(next(REAR)) may be installed; anything else is refused.
  bool installAt(std::uint32_t Pos) {
    SpinGuard G(DirLock);
    if (Dir[Pos].load(std::memory_order_seq_cst))
      return true;
    const TopFields<Value> R = TopC::unpack(Rear.readReclaim());
    const std::uint32_t Growth = next(R.Index);
    if (Pos != chunkOf(Growth))
      return false;
    // Per-slot seed = genuine occupancies completed. With REAR at
    // <r, s> (slot r in its s-th occupancy), REAR's current pass has
    // already covered ring indices 1..r — those slots carry s; the rest
    // (including slot 0, which is permanently one occupancy behind from
    // the dummy-init absorption, so the pass boundary sits between
    // slot 0 and slot 1) carry s-1.
    Chunk *C = Pool.acquire();
    for (std::uint32_t X = 0; X < ChunkSlots; ++X) {
      const std::uint32_t Index = Pos * ChunkSlots + X;
      const std::uint32_t Seed = (Index >= 1 && Index <= R.Index)
                                     ? R.Seq
                                     : TopC::seqAdd(R.Seq, -1);
      C->Slots[X].writeReclaim(SlotC::pack({Bottom, Seed}));
    }
    Dir[Pos].store(C, std::memory_order_seq_cst);
    return true;
  }

  /// Detaches and retires every chunk outside the live window
  /// [chunkOf(FRONT) .. chunkOf(next(REAR))] (a ring interval). Reads
  /// both registers through the reclamation channel under the directory
  /// lock.
  void trim(std::uint32_t Tid) {
    SpinGuard G(DirLock);
    const std::uint32_t F =
        frontIndex(Front.readReclaim());
    const std::uint32_t Rr =
        TopC::unpack(Rear.readReclaim()).Index;
    const std::uint32_t Lo = chunkOf(F);
    const std::uint32_t Hi = chunkOf(next(Rr));
    for (std::uint32_t Pos = 0; Pos < DirSize; ++Pos) {
      const bool Live =
          Lo <= Hi ? (Pos >= Lo && Pos <= Hi) : (Pos >= Lo || Pos <= Hi);
      if (Live)
        continue;
      Chunk *C = Dir[Pos].load(std::memory_order_seq_cst);
      if (!C)
        continue;
      Dir[Pos].store(nullptr, std::memory_order_seq_cst);
      Domain.retire(Tid, C, NodePool<Chunk>::recycle, &Pool);
    }
  }

  struct SpinGuard {
    explicit SpinGuard(std::atomic_flag &F) : F(F) {
      while (F.test_and_set(std::memory_order_acquire))
        ;
    }
    ~SpinGuard() { F.clear(std::memory_order_release); }
    std::atomic_flag &F;
  };

  AtomicRegister<TopWord, Policy> Rear;
  AtomicRegister<SlotWord, Policy> Front;
  HazardDomain Domain;
  NodePool<Chunk> Pool;
  std::atomic<Chunk *> Dir[DirSize];
  std::atomic_flag DirLock = ATOMIC_FLAG_INIT;
};

/// Figure 3 over the unbounded queue: starvation-free contention-
/// sensitive FIFO whose resident memory tracks the live population. A
/// contention-free strong operation performs seven shared-memory
/// accesses (one CONTENTION read + the six of the weak op), the same
/// bound as the bounded ContentionSensitiveQueue.
template <typename Config = Compact64, typename Lock = TasLock,
          ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy,
          typename SkeletonT = ContentionSensitive<Lock, Manager, Policy>>
class ContentionSensitiveUnboundedQueue {
public:
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;

  explicit ContentionSensitiveUnboundedQueue(std::uint32_t NumThreads)
      : Weak(NumThreads), Strong(NumThreads) {}

  /// strong_enqueue(v): Done or Full (envelope only), never Abort.
  PushResult enqueue(std::uint32_t Tid, Value V) {
    return Strong.strongApply(
        Tid, [this, Tid, V]() -> std::optional<PushResult> {
          const PushResult Res = Weak.weakEnqueue(Tid, V);
          if (Res == PushResult::Abort)
            return std::nullopt;
          return Res;
        });
  }

  /// strong_dequeue(): a value or Empty, never Abort.
  PopResult<Value> dequeue(std::uint32_t Tid) {
    return Strong.strongApply(
        Tid, [this, Tid]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Weak.weakDequeue(Tid);
          if (Res.isAbort())
            return std::nullopt;
          return Res;
        });
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t numThreads() const { return Strong.numThreads(); }
  std::uint32_t sizeForTesting() const { return Weak.sizeForTesting(); }

  UnboundedQueue<Config, Policy> &unbounded() { return Weak; }
  SkeletonT &skeleton() { return Strong; }

  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }

  std::size_t footprintBytes() const {
    return sizeof(*this) + Strong.heapBytes() + Weak.heapBytes();
  }

  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

private:
  UnboundedQueue<Config, Policy> Weak;
  SkeletonT Strong;
};

} // namespace csobj

#endif // CSOBJ_CORE_UNBOUNDEDQUEUE_H
