//===- core/ContentionSensitiveStack.h - Figure 3 applied -------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The headline object of the paper: a linearizable, starvation-free,
/// contention-sensitive bounded stack — Figure 3 instantiated over the
/// abortable stack of Figure 1.
///
///  * strong_push(v) / strong_pop() never return bottom (Lemma 1) and
///    always terminate (Lemmas 2-3, Theorem 1).
///  * In a contention-free context an operation uses no lock and performs
///    exactly six shared-memory accesses (one read of CONTENTION plus the
///    five of the weak operation) — experiment E1 audits this count.
///  * Under contention a single deadlock-free lock serializes the
///    conflicting operations and the FLAG/TURN doorway makes the whole
///    construction starvation-free.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CONTENTIONSENSITIVESTACK_H
#define CSOBJ_CORE_CONTENTIONSENSITIVESTACK_H

#include "core/AbortableStack.h"
#include "core/ContentionSensitive.h"
#include "locks/TasLock.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace csobj {

/// Figure 3 over Figure 1: starvation-free contention-sensitive stack.
///
/// \tparam Config   codec family (Compact64 / Wide128).
/// \tparam Lock     deadlock-free lock used on the contended path.
/// \tparam Manager  ContentionManager pacing the lock-protected retry.
/// \tparam Policy   register policy (Instrumented / Fast).
/// \tparam SkeletonT the strong-operation skeleton. The default is the
///         paper's Figure 3; any type with the same constructor and
///         strongApply contract plugs in (e.g. the flat-combining
///         skeleton in perf/CombiningSlowPath.h).
template <typename Config = Compact64, typename Lock = TasLock,
          ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy,
          typename SkeletonT = ContentionSensitive<Lock, Manager, Policy>>
class ContentionSensitiveStack {
public:
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;
  static constexpr Value Bottom = AbortableStack<Config, Policy>::Bottom;

  /// \p NumThreads is the paper's n (ids 0..n-1); \p Capacity is k.
  ContentionSensitiveStack(std::uint32_t NumThreads, std::uint32_t Capacity)
      : Weak(Capacity), Strong(NumThreads) {}

  /// strong_push(v): Done or Full, never Abort; always terminates.
  PushResult push(std::uint32_t Tid, Value V) {
    return Strong.strongApply(Tid, [this, V]() -> std::optional<PushResult> {
      const PushResult Res = Weak.weakPush(V); // weak_push_or_pop(par)
      if (Res == PushResult::Abort)
        return std::nullopt; // res = bottom
      return Res;
    });
  }

  /// strong_pop(): a value or Empty, never Abort; always terminates.
  PopResult<Value> pop(std::uint32_t Tid) {
    return Strong.strongApply(
        Tid, [this]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Weak.weakPop();
          if (Res.isAbort())
            return std::nullopt; // res = bottom
          return Res;
        });
  }

  /// Group push: pushes Vs[0..Count) in index order as one batch through
  /// the skeleton's group seam (one doorway/lock or combiner-record
  /// acquisition for the whole contended remainder). Stops at the first
  /// Full answer — the remainder of the batch is rejected, so the stack
  /// always receives a prefix of Vs. Returns the number of values
  /// actually pushed.
  std::size_t push_all(std::uint32_t Tid, const Value *Vs,
                       std::size_t Count) {
    if (Count == 0)
      return 0;
    PushResult Inline[BatchInlineCapacity];
    std::vector<PushResult> Heap;
    PushResult *Results = Inline;
    if (Count > BatchInlineCapacity) {
      Heap.resize(Count);
      Results = Heap.data();
    }
    const std::size_t Applied = Strong.strongApplyBatch(
        Tid, Count,
        [this, Vs](std::size_t I) -> std::optional<PushResult> {
          const PushResult Res = Weak.weakPush(Vs[I]);
          if (Res == PushResult::Abort)
            return std::nullopt;
          return Res;
        },
        [](PushResult R) { return R == PushResult::Full; },
        Results);
    return Applied != 0 && Results[Applied - 1] == PushResult::Full
               ? Applied - 1
               : Applied;
  }

  /// Group pop: pops up to \p MaxCount values into Out[0..] in pop
  /// order, stopping at the first Empty answer. Returns the number of
  /// values popped.
  std::size_t pop_all(std::uint32_t Tid, Value *Out, std::size_t MaxCount) {
    if (MaxCount == 0)
      return 0;
    PopResult<Value> Inline[BatchInlineCapacity];
    std::vector<PopResult<Value>> Heap;
    PopResult<Value> *Results = Inline;
    if (MaxCount > BatchInlineCapacity) {
      Heap.resize(MaxCount);
      Results = Heap.data();
    }
    const std::size_t Applied = Strong.strongApplyBatch(
        Tid, MaxCount,
        [this](std::size_t) -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Weak.weakPop();
          if (Res.isAbort())
            return std::nullopt;
          return Res;
        },
        [](const PopResult<Value> &R) { return R.isEmpty(); },
        Results);
    std::size_t Got = 0;
    for (std::size_t I = 0; I < Applied; ++I)
      if (Results[I].isValue())
        Out[Got++] = Results[I].value();
    return Got;
  }

  /// Drains the stack: pop_all bounded by the caller's buffer. A single
  /// drain observes Empty once and stops; values pushed concurrently
  /// after that answer are left behind (drain is a batch, not a barrier).
  std::size_t drain(std::uint32_t Tid, Value *Out, std::size_t MaxOut) {
    return pop_all(Tid, Out, MaxOut);
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t numThreads() const { return Strong.numThreads(); }
  std::uint32_t sizeForTesting() const { return Weak.sizeForTesting(); }

  /// The underlying Figure 1 object (test/debug aid).
  AbortableStack<Config, Policy> &abortable() { return Weak; }

  /// The strong-operation skeleton (test/debug aid).
  SkeletonT &skeleton() { return Strong; }

  /// Path-attributed metrics of the skeleton (obs/PathCounters.h).
  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }

  /// Resident bytes of the whole object: the header plus the weak
  /// object's slot array and the skeleton's heap (doorway FLAG array,
  /// combiner records, metric blocks). Feeds the bytes_per_element bench
  /// column (obs/MetricsJson.h).
  std::size_t footprintBytes() const {
    std::size_t Bytes = sizeof(*this) + Strong.heapBytes();
    if constexpr (requires { Weak.heapBytes(); })
      Bytes += Weak.heapBytes();
    return Bytes;
  }

  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

private:
  AbortableStack<Config, Policy> Weak;
  SkeletonT Strong;
};

} // namespace csobj

#endif // CSOBJ_CORE_CONTENTIONSENSITIVESTACK_H
