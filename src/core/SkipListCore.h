//===- core/SkipListCore.h - Tombstone skip list (weak ops) -----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The weak (abortable) half of the contention-sensitive ordered map: a
/// bounded skip list over uint32 keys whose update operations are single
/// Compare&Swap attempts — they either take effect atomically or answer
/// the paper's bottom (Abort) — and whose search path is wait-free and
/// never writes.
///
/// The first pointer-based object in the library meets the ABA problem
/// head on, and the design dodges it structurally instead of tagging
/// every link:
///
///  * Nodes are never unlinked. A key's node is allocated from a fixed
///    pool on first insert and stays in the list forever; erase marks it
///    Dead (a tombstone) and a later insert of the same key revives it.
///    Because the structure only grows, the key of any Next link strictly
///    decreases over that register's lifetime (each successful link CAS
///    installs a node that sorts strictly earlier in the remaining
///    window), so a link register never repeats a value and the link
///    CASes need no tag at all.
///  * The one word that does cycle — a node's value/liveness — is a
///    TaggedValue TopCodec word <state:2 | seq:30 | value:32>: state is
///    Live/Dead, seq is the Section 2.2 sequence tag bumped by every
///    update, value is the mapped payload. A sleeping updater is fooled
///    only if exactly 2^30 updates of that key land between its read and
///    its C&S.
///
/// Operation contract (all linearizable at a single register access):
///  * find/get: wait-free, read-only. Bounded by the pool size because
///    keys strictly increase along any traversal path.
///  * weakInsert: update/revive an existing key via one ValState CAS, or
///    link a new node via one level-0 CAS (upper levels are linked
///    best-effort, one attempt each — a node missing its express lanes
///    is slower to reach, never incorrect). A failed CAS answers Abort.
///  * weakErase: one ValState CAS Live -> Dead. Abort on interference.
///
/// Capacity counts distinct keys ever inserted (tombstones do not free
/// slots — that is the price of no reclamation; the ROADMAP's
/// hazard-pointer item is where reclamation lands). Full answers are
/// always sound: the linked-keys counter is monotone and only bumped
/// after a successful link, and the Full path re-validates absence after
/// reading the counter, so at the second search's level-0 window read
/// the key is absent while the counter already reached capacity. The
/// admit side is checked before the link CAS, so concurrent inserts
/// racing exactly at the capacity boundary can over-admit by at most one
/// key per thread; the pool carries 2n spare nodes to absorb that plus
/// per-thread speculative nodes (see DESIGN.md "Ordered map" for the
/// honest statement of this envelope).
///
/// Node heights are a deterministic hash of the key (geometric, p=1/2,
/// capped at MaxLevel), so directed interleaving tests can pick keys of
/// known height and solo access counts are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_SKIPLISTCORE_H
#define CSOBJ_CORE_SKIPLISTCORE_H

#include "core/Results.h"
#include "memory/AtomicRegister.h"
#include "memory/TaggedValue.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace csobj {

/// Bounded tombstone skip list with abortable single-CAS updates.
/// \tparam Policy register policy (Instrumented / Fast).
template <typename Policy = DefaultRegisterPolicy>
class SkipListCore {
public:
  using Key = std::uint32_t;
  using Value = std::uint32_t;
  using RegisterPolicy = Policy;

  /// Tower height cap; also the solo search cost in level reads.
  static constexpr std::uint32_t MaxLevel = 8;
  /// Null link (0 is the head sentinel's pool slot).
  static constexpr std::uint32_t NilIdx = 0xFFFFFFFFu;

  /// The per-node value/liveness word: <state:2 | seq:30 | value:32>.
  /// The codec's index field is repurposed as the liveness state.
  using ValCodec = TopCodec<std::uint64_t, 2, 30, std::uint32_t>;
  static constexpr std::uint32_t Dead = 0;
  static constexpr std::uint32_t Live = 1;

  /// \p NumThreads bounds the speculative/over-admitted node slack;
  /// \p Capacity is the distinct-keys-ever bound. Construct outside
  /// counting scopes: initialisation writes the head's links.
  SkipListCore(std::uint32_t NumThreads, std::uint32_t Capacity)
      : Cap(Capacity), N(NumThreads),
        PoolSize(1 + Capacity + 2 * NumThreads),
        Pool(std::make_unique<Node[]>(PoolSize)), Spare(NumThreads, NilIdx) {
    assert(NumThreads >= 1 && "need at least one process");
    Node &Head = Pool[0];
    Head.Height = MaxLevel;
    for (std::uint32_t L = 0; L < MaxLevel; ++L)
      Head.Next[L].write(NilIdx, std::memory_order_relaxed);
    NextFree.write(1, std::memory_order_relaxed);
  }

  /// Deterministic tower height of \p K: geometric with p=1/2 over a
  /// mixed hash, capped at MaxLevel. Exposed so directed tests can pick
  /// keys of known height.
  static constexpr std::uint32_t heightOf(Key K) {
    std::uint64_t H = (K + 0x9E3779B97F4A7C15ull) * 0xBF58476D1CE4E5B9ull;
    H ^= H >> 27;
    H *= 0x94D049BB133111EBull;
    H ^= H >> 31;
    std::uint32_t Level = 1;
    while ((H & 1) != 0 && Level < MaxLevel) {
      ++Level;
      H >>= 1;
    }
    return Level;
  }

  /// Search result: the node holding K (or NilIdx) plus the per-level
  /// insertion window.
  struct FindResult {
    std::uint32_t Found = NilIdx;
    std::uint32_t Preds[MaxLevel] = {};
    std::uint32_t Succs[MaxLevel] = {};
  };

  /// Wait-free search. One link read per level plus one per horizontal
  /// step; terminates because keys strictly increase along every path.
  FindResult find(Key K) const {
    FindResult F;
    std::uint32_t Pred = 0; // head sentinel
    for (std::int32_t L = MaxLevel - 1; L >= 0; --L) {
      std::uint32_t Cur =
          Pool[Pred].Next[L].read(std::memory_order_acquire);
      while (Cur != NilIdx && Pool[Cur].Key < K) {
        Pred = Cur;
        Cur = Pool[Pred].Next[L].read(std::memory_order_acquire);
      }
      F.Preds[static_cast<std::uint32_t>(L)] = Pred;
      F.Succs[static_cast<std::uint32_t>(L)] = Cur;
    }
    if (F.Succs[0] != NilIdx && Pool[F.Succs[0]].Key == K)
      F.Found = F.Succs[0];
    return F;
  }

  /// Lock-free read: the value mapped to K, or Empty. Never aborts (the
  /// linearization point is the ValState read, or the level-0 window
  /// read that proves absence — the level-0 list is complete, so a
  /// missing node there is a missing key).
  PopResult<Value> get(Key K) const {
    const FindResult F = find(K);
    if (F.Found == NilIdx)
      return PopResult<Value>::empty();
    const TopFields<Value> Fields = ValCodec::unpack(
        Pool[F.Found].ValState.read(std::memory_order_acquire));
    if (Fields.Index != Live)
      return PopResult<Value>::empty();
    return PopResult<Value>::value(Fields.Value);
  }

  /// weak insert-or-update: Done (took effect at one CAS), Full (the
  /// distinct-keys-ever envelope is exhausted and K is not in it), or
  /// Abort (interference; no effect).
  PushResult weakInsert(std::uint32_t Tid, Key K, Value V) {
    assert(Tid < N && "thread id out of range");
    const FindResult F = find(K);
    if (F.Found != NilIdx)
      return tryUpdate(F.Found, V);
    // Full must be decided against the monotone linked-keys counter
    // *before* a search that re-proves absence: counter >= Cap persists,
    // so at the second search's window read both "k absent" and
    // "capacity reached" hold simultaneously.
    if (KeysLinked.read(std::memory_order_acquire) >= Cap) {
      const FindResult F2 = find(K);
      if (F2.Found != NilIdx)
        return tryUpdate(F2.Found, V);
      return PushResult::Full;
    }
    const std::uint32_t Height = heightOf(K);
    std::uint32_t Idx = Spare[Tid];
    if (Idx == NilIdx) {
      Idx = NextFree.fetchAdd(1);
      assert(Idx < PoolSize && "node pool exhausted");
    }
    Node &Fresh = Pool[Idx];
    Fresh.Key = K;
    Fresh.Height = Height;
    Fresh.ValState.write(ValCodec::pack({Live, V, 0}),
                         std::memory_order_relaxed);
    for (std::uint32_t L = 0; L < Height; ++L)
      Fresh.Next[L].write(F.Succs[L], std::memory_order_relaxed);
    // The linearization point: publish at level 0. Success proves the
    // window [pred, succ) was still intact, so no node with key K
    // existed anywhere in the (complete) level-0 list at this instant.
    if (!Pool[F.Preds[0]].Next[0].compareAndSwap(F.Succs[0], Idx)) {
      Spare[Tid] = Idx; // keep the speculative node for the next attempt
      return PushResult::Abort;
    }
    Spare[Tid] = NilIdx;
    KeysLinked.fetchAdd(1);
    // Express lanes: one attempt per level. A lost race leaves the node
    // reachable only through lower levels — slower, never wrong.
    for (std::uint32_t L = 1; L < Height; ++L)
      (void)Pool[F.Preds[L]].Next[L].compareAndSwap(F.Succs[L], Idx);
    return PushResult::Done;
  }

  /// weak erase: the old value (tombstoned at one CAS), Empty, or Abort.
  PopResult<Value> weakErase(Key K) {
    const FindResult F = find(K);
    if (F.Found == NilIdx)
      return PopResult<Value>::empty();
    Node &Target = Pool[F.Found];
    const std::uint64_t W = Target.ValState.read(std::memory_order_acquire);
    const TopFields<Value> Fields = ValCodec::unpack(W);
    if (Fields.Index != Live)
      return PopResult<Value>::empty();
    const std::uint64_t NewW = ValCodec::pack(
        {Dead, Fields.Value, ValCodec::seqAdd(Fields.Seq, 1)});
    if (!Target.ValState.compareAndSwap(W, NewW))
      return PopResult<Value>::abort();
    return PopResult<Value>::value(Fields.Value);
  }

  std::uint32_t capacity() const { return Cap; }
  std::uint32_t numThreads() const { return N; }

  /// Distinct keys ever linked (uninstrumented test oracle).
  std::uint32_t keysEverForTesting() const {
    return KeysLinked.peekForTesting();
  }

  /// Live (non-tombstoned) entries, by an uninstrumented level-0 walk.
  std::uint32_t liveCountForTesting() const {
    std::uint32_t Count = 0;
    for (std::uint32_t Cur = Pool[0].Next[0].peekForTesting();
         Cur != NilIdx; Cur = Pool[Cur].Next[0].peekForTesting())
      if (ValCodec::unpack(Pool[Cur].ValState.peekForTesting()).Index ==
          Live)
        ++Count;
    return Count;
  }

  /// Heap owned by the list: the node pool plus the spare-slot table.
  std::size_t heapBytes() const {
    return static_cast<std::size_t>(PoolSize) * sizeof(Node) +
           Spare.capacity() * sizeof(std::uint32_t);
  }

private:
  /// Per-key state: immutable identity (Key/Height, published by the
  /// release link CAS, read only after an acquire link read) plus the
  /// tagged value/liveness word and the link tower. Key and Height are
  /// deliberately not atomic registers: they never change after
  /// publication, so the access oracle counts only the mutable words.
  struct Node {
    std::uint32_t Key = 0;
    std::uint32_t Height = 0;
    AtomicRegister<std::uint64_t, Policy> ValState;
    AtomicRegister<std::uint32_t, Policy> Next[MaxLevel];
  };

  /// Update or revive an existing node at one tagged CAS.
  PushResult tryUpdate(std::uint32_t NodeIdx, Value V) {
    Node &Target = Pool[NodeIdx];
    const std::uint64_t W = Target.ValState.read(std::memory_order_acquire);
    const TopFields<Value> Fields = ValCodec::unpack(W);
    const std::uint64_t NewW =
        ValCodec::pack({Live, V, ValCodec::seqAdd(Fields.Seq, 1)});
    return Target.ValState.compareAndSwap(W, NewW) ? PushResult::Done
                                                   : PushResult::Abort;
  }

  const std::uint32_t Cap;
  const std::uint32_t N;
  const std::uint32_t PoolSize;
  std::unique_ptr<Node[]> Pool;
  AtomicRegister<std::uint32_t, Policy> NextFree;
  AtomicRegister<std::uint32_t, Policy> KeysLinked;
  /// Per-thread speculative node kept across failed link attempts (only
  /// ever touched by its own thread).
  std::vector<std::uint32_t> Spare;
};

} // namespace csobj

#endif // CSOBJ_CORE_SKIPLISTCORE_H
