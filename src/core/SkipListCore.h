//===- core/SkipListCore.h - Reclaiming skip list (weak ops) ----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The weak (abortable) half of the contention-sensitive ordered map: a
/// skip list over uint32 keys whose update operations are single
/// Compare&Swap attempts — they either take effect atomically or answer
/// the paper's bottom (Abort) — and whose search path performs the same
/// counted reads as the pre-reclamation tombstone design.
///
/// This revision replaces tombstone-forever semantics with physical
/// removal over the reclamation substrate (memory/HazardDomain.h):
///
///  * **Logical erase is unchanged**: one ValState CAS Live -> Dead is
///    the linearization point. The CAS winner then owns *physical*
///    removal: it marks the node's link words (Harris-style, bit 31 of
///    every Next word), snips the node out of each lane, and retires it
///    to the hazard domain. All of that runs on the uncounted
///    reclamation channel — and because the fault injectors fire only at
///    instrumented accesses, the whole removal tail is crash-atomic with
///    the CAS that linearized it.
///  * **Capacity counts live keys**, not keys-ever: erase frees
///    capacity. Full is certified abort-when-uncertain against a
///    versioned live counter — the counter word is read before and
///    after the absence re-search, and any change answers Abort instead
///    of risking an unsound Full.
///  * **Traversals pin nodes before trusting them.** Each step publishes
///    a hazard on the next node and re-validates the link that led to it
///    (an uncounted re-read); a validated node cannot be recycled under
///    the reader. A traversal that meets a marked node helps snip it
///    (uncounted CAS) and a snip into a marked predecessor fails by
///    construction, because the mark lives in the same word the snip
///    expects unmarked.
///  * **Revival is abolished.** An insert that finds a Dead node goes
///    down the fresh path and links a new node for the key *in front of*
///    the dying one (equal keys sit adjacent, live shadow first); update
///    CASes succeed only on Live words. This removes the revive-vs-
///    removal race entirely.
///  * **Storage is a segmented, grow-on-demand pool** with a free list
///    fed by hazard scans. Nodes are addressed by index (bit 31 of a
///    link word is the mark, so indices are 31-bit); segments are
///    pointer-stable and published through a fixed directory, so a
///    pinned node never moves. The pool's growth is bounded by live
///    keys + per-thread spares + the domain's retire backlog
///    (O(threads^2 x slots) worst case, typically far less), not by
///    keys-ever.
///
/// Insert's express lanes stay best-effort (one CAS per level). With
/// reclamation this needs one extra rule: a lane whose link CAS lost is
/// immediately marked dead in the node's own word, so a traversal
/// descending through the node at that level falls back to the head
/// instead of following a rotting pointer.
///
/// Solo (contention-free) counted access costs are unchanged for get
/// (8 miss / 9 hit), update and erase-hit (11 each through the Fig-3
/// wrapper) and lower for fresh insert (15 -> 11: the capacity counter
/// is read once for admission, and node allocation/initialisation of
/// unreachable storage — never a shared-memory access in the paper's
/// convention — is now uniformly uncounted). Erased keys physically
/// vanish, so probing one costs a plain miss, not a tombstone read.
///
/// Node heights remain a deterministic hash of the key (geometric,
/// p=1/2, capped at MaxLevel), so directed interleaving tests can pick
/// keys of known height and solo access counts are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_SKIPLISTCORE_H
#define CSOBJ_CORE_SKIPLISTCORE_H

#include "core/Results.h"
#include "memory/AtomicRegister.h"
#include "memory/HazardDomain.h"
#include "memory/TaggedValue.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace csobj {

/// Reclaiming skip list with abortable single-CAS updates.
/// \tparam Policy register policy (Instrumented / Fast).
template <typename Policy = DefaultRegisterPolicy>
class SkipListCore {
public:
  using Key = std::uint32_t;
  using Value = std::uint32_t;
  using RegisterPolicy = Policy;

  /// Tower height cap; also the solo search cost in level reads.
  static constexpr std::uint32_t MaxLevel = 8;
  /// Null link. Indices are 31-bit: bit 31 of a link word is the
  /// Harris mark ("the node owning this word is being removed").
  static constexpr std::uint32_t NilIdx = 0x7FFFFFFFu;
  static constexpr std::uint32_t MarkBit = 0x80000000u;
  /// Hazard slots per thread: a (pred, succ) pair per level, so a
  /// find's whole window stays pinned until the caller's link CASes.
  static constexpr std::uint32_t HazardSlots = 2 * MaxLevel;
  /// Nodes per pool segment (segments are pointer-stable; the directory
  /// publishes them once).
  static constexpr std::uint32_t SegmentNodes = 64;

  /// The per-node value/liveness word: <state:2 | seq:30 | value:32>.
  /// The codec's index field is repurposed as the liveness state.
  using ValCodec = TopCodec<std::uint64_t, 2, 30, std::uint32_t>;
  static constexpr std::uint32_t Dead = 0;
  static constexpr std::uint32_t Live = 1;

  /// \p NumThreads sizes the hazard domain and the over-admission
  /// slack; \p Capacity is the *live* distinct-key bound. Construct
  /// outside counting scopes: initialisation writes the head's links.
  /// Parameter violations throw std::invalid_argument — hard checks, not
  /// asserts, because an NDEBUG build would otherwise size the node pool
  /// and index space inconsistently and corrupt links much later.
  SkipListCore(std::uint32_t NumThreads, std::uint32_t Capacity)
      : Cap(checkedCapacity(NumThreads, Capacity)), N(NumThreads),
        NodeBudget(1 + Capacity + 2 * NumThreads +
                   2 * NumThreads * NumThreads * HazardSlots),
        DirSlots((NodeBudget + SegmentNodes - 1) / SegmentNodes),
        Domain(NumThreads, HazardSlots),
        Dir(std::make_unique<std::atomic<Segment *>[]>(DirSlots)),
        Spare(NumThreads, NilIdx) {
    for (std::uint32_t S = 0; S < DirSlots; ++S)
      Dir[S].store(nullptr, std::memory_order_relaxed);
    installSegment(0);
    Node &Head = node(0);
    Head.Height.store(MaxLevel, std::memory_order_relaxed);
    for (std::uint32_t L = 0; L < MaxLevel; ++L)
      Head.Next[L].writeReclaim(NilIdx);
    NextFresh = 1;
    LiveCount.writeReclaim(0);
  }

  ~SkipListCore() {
    for (std::uint32_t S = 0; S < DirSlots; ++S)
      delete Dir[S].load(std::memory_order_relaxed);
  }

  /// Deterministic tower height of \p K: geometric with p=1/2 over a
  /// mixed hash, capped at MaxLevel. Exposed so directed tests can pick
  /// keys of known height.
  static constexpr std::uint32_t heightOf(Key K) {
    std::uint64_t H = (K + 0x9E3779B97F4A7C15ull) * 0xBF58476D1CE4E5B9ull;
    H ^= H >> 27;
    H *= 0x94D049BB133111EBull;
    H ^= H >> 31;
    std::uint32_t Level = 1;
    while ((H & 1) != 0 && Level < MaxLevel) {
      ++Level;
      H >>= 1;
    }
    return Level;
  }

  /// Search result: the node holding K (or NilIdx; possibly Dead — the
  /// caller inspects ValState) plus the per-level insertion window. All
  /// named nodes stay hazard-pinned until the operation's HazardScope
  /// closes.
  struct FindResult {
    std::uint32_t Found = NilIdx;
    std::uint32_t Preds[MaxLevel] = {};
    std::uint32_t Succs[MaxLevel] = {};
  };

  /// Lock-free search with the hazard handshake per step (publish the
  /// candidate, re-validate the link that led to it on the uncounted
  /// channel). Counted cost is one link read per level plus one per
  /// horizontal advance — identical to the pre-reclamation walk when
  /// solo. Meets marked nodes only under contention: helps snip them
  /// (uncounted) and restarts on interference.
  FindResult find(std::uint32_t Tid, Key K) const {
  Restart:
    FindResult F;
    std::uint32_t Pred = 0; // head sentinel, never retired
    for (std::int32_t L = MaxLevel - 1; L >= 0; --L) {
      const std::uint32_t UL = static_cast<std::uint32_t>(L);
      std::uint32_t W = node(Pred).Next[UL].read(std::memory_order_acquire);
      if ((W & MarkBit) != 0) {
        // The node carried down from the level above is dead here (it
        // was erased, or this lane's insert CAS lost and the lane was
        // marked dead). The head's lanes are never marked: re-walk this
        // level from the head.
        Pred = 0;
        W = node(Pred).Next[UL].read(std::memory_order_acquire);
      }
      while (true) {
        const std::uint32_t Cur = W & ~MarkBit;
        if (Cur == NilIdx)
          break;
        Domain.protect(Tid, 2 * UL + 1, &node(Cur));
        if (node(Pred).Next[UL].readReclaim() != W) {
          // The link changed under us; re-observe it (counted — this is
          // a fresh algorithmic read, reachable only under contention).
          W = node(Pred).Next[UL].read(std::memory_order_acquire);
          if ((W & MarkBit) != 0)
            goto Restart; // pred died mid-walk
          continue;
        }
        // Cur is pinned and was reachable from Pred at validation.
        const Key CK = node(Cur).Key.load(std::memory_order_relaxed);
        if (CK >= K)
          break;
        const std::uint32_t NW =
            node(Cur).Next[UL].read(std::memory_order_acquire);
        if ((NW & MarkBit) != 0) {
          // Cur is logically deleted: help snip it (reclamation
          // channel; fails — and we restart — if Pred itself died).
          if (!node(Pred).Next[UL].compareAndSwapReclaim(W, NW & ~MarkBit))
            goto Restart;
          W = NW & ~MarkBit;
          continue;
        }
        Domain.protect(Tid, 2 * UL, &node(Cur)); // keep pinned as pred
        Pred = Cur;
        W = NW;
      }
      F.Preds[UL] = Pred;
      F.Succs[UL] = W & ~MarkBit;
    }
    if (F.Succs[0] != NilIdx &&
        node(F.Succs[0]).Key.load(std::memory_order_relaxed) == K)
      F.Found = F.Succs[0];
    return F;
  }

  /// Lock-free read: the value mapped to K, or Empty. Never aborts (the
  /// linearization point is the ValState read, or the level-0 window
  /// read that proves absence).
  PopResult<Value> get(std::uint32_t Tid, Key K) const {
    assert(Tid < N && "thread id out of range");
    HazardScope Scope(Domain, Tid);
    const FindResult F = find(Tid, K);
    if (F.Found == NilIdx)
      return PopResult<Value>::empty();
    const TopFields<Value> Fields = ValCodec::unpack(
        node(F.Found).ValState.read(std::memory_order_acquire));
    if (Fields.Index != Live)
      return PopResult<Value>::empty();
    return PopResult<Value>::value(Fields.Value);
  }

  /// weak insert-or-update: Done (took effect at one CAS), Full (the
  /// live-key capacity is exhausted and K is not live), or Abort
  /// (interference or uncertainty; no effect).
  PushResult weakInsert(std::uint32_t Tid, Key K, Value V) {
    assert(Tid < N && "thread id out of range");
    HazardScope Scope(Domain, Tid);
    FindResult F = find(Tid, K);
    if (F.Found != NilIdx) {
      switch (tryUpdate(F.Found, V)) {
      case UpdateOutcome::Done:
        return PushResult::Done;
      case UpdateOutcome::Interfered:
        return PushResult::Abort;
      case UpdateOutcome::WasDead:
        break; // fresh path shadows the dying node
      }
    }
    // Admission: a fresh key (including a shadow of a dead one) needs a
    // live slot. The counter word is versioned, so equality of two
    // reads proves it never moved in between.
    const std::uint64_t CountW = LiveCount.read(std::memory_order_acquire);
    if (countOf(CountW) >= Cap) {
      F = find(Tid, K);
      if (F.Found != NilIdx) {
        switch (tryUpdate(F.Found, V)) {
        case UpdateOutcome::Done:
          return PushResult::Done;
        case UpdateOutcome::Interfered:
          return PushResult::Abort;
        case UpdateOutcome::WasDead:
          break;
        }
      }
      // K is logically absent at the search just performed; Full is
      // sound only if the counter held >= Cap across it. Otherwise the
      // two facts were not simultaneous: abort, per the paper's
      // abort-when-uncertain discipline.
      return LiveCount.read(std::memory_order_acquire) == CountW
                 ? PushResult::Full
                 : PushResult::Abort;
    }
    const std::uint32_t Height = heightOf(K);
    std::uint32_t Idx = Spare[Tid];
    if (Idx == NilIdx)
      Idx = acquireNode(Tid);
    Node &Fresh = node(Idx);
    // Initialisation of unreachable storage: reclamation channel. The
    // ValState sequence tag continues from the node's previous
    // incarnation, preserving the 2^30 ABA envelope across recycling.
    Fresh.Key.store(K, std::memory_order_relaxed);
    Fresh.Height.store(Height, std::memory_order_relaxed);
    const TopFields<Value> OldVal =
        ValCodec::unpack(Fresh.ValState.readReclaim());
    Fresh.ValState.writeReclaim(
        ValCodec::pack({Live, V, ValCodec::seqAdd(OldVal.Seq, 1)}));
    for (std::uint32_t L = 0; L < Height; ++L)
      Fresh.Next[L].writeReclaim(F.Succs[L]);
    // The linearization point: publish at level 0. Success proves the
    // window [pred, succ) was still intact, so no live node with key K
    // existed anywhere in the (complete) level-0 list at this instant.
    if (!node(F.Preds[0]).Next[0].compareAndSwap(F.Succs[0], Idx)) {
      Spare[Tid] = Idx; // keep the speculative node for the next attempt
      return PushResult::Abort;
    }
    Spare[Tid] = NilIdx;
    bumpLive(+1);
    // Express lanes: one attempt per level. A lost race marks the lane
    // dead in the node's own word — the node stays reachable through
    // lower levels, and descents through the dead lane fall back to the
    // head instead of following a link that will never be maintained.
    for (std::uint32_t L = 1; L < Height; ++L)
      if (!node(F.Preds[L]).Next[L].compareAndSwap(F.Succs[L], Idx))
        Fresh.Next[L].writeReclaim(NilIdx | MarkBit);
    return PushResult::Done;
  }

  /// weak erase: the old value (removed at one CAS), Empty, or Abort.
  /// The CAS winner performs physical removal and retires the node —
  /// all on the uncounted reclamation channel, crash-atomic with the
  /// CAS (fault injectors fire only at instrumented accesses).
  PopResult<Value> weakErase(std::uint32_t Tid, Key K) {
    assert(Tid < N && "thread id out of range");
    HazardScope Scope(Domain, Tid);
    const FindResult F = find(Tid, K);
    if (F.Found == NilIdx)
      return PopResult<Value>::empty();
    Node &Target = node(F.Found);
    const std::uint64_t W = Target.ValState.read(std::memory_order_acquire);
    const TopFields<Value> Fields = ValCodec::unpack(W);
    if (Fields.Index != Live)
      return PopResult<Value>::empty();
    const std::uint64_t NewW = ValCodec::pack(
        {Dead, Fields.Value, ValCodec::seqAdd(Fields.Seq, 1)});
    if (!Target.ValState.compareAndSwap(W, NewW))
      return PopResult<Value>::abort();
    // This thread won the Live -> Dead transition: it is the unique
    // remover and retirer of this node.
    bumpLive(-1);
    markLanes(Target);
    sweepOut(Tid, K, F.Found);
    Domain.retire(Tid, &Target, &SkipListCore::recycleNode, this);
    return PopResult<Value>::value(Fields.Value);
  }

  std::uint32_t capacity() const { return Cap; }
  std::uint32_t numThreads() const { return N; }

  HazardDomain &domain() { return Domain; }
  const HazardDomain &domain() const { return Domain; }

  /// Live entries, by an uninstrumented level-0 walk. Quiescent only.
  std::uint32_t liveCountForTesting() const {
    std::uint32_t Count = 0;
    for (std::uint32_t Cur =
             node(0).Next[0].peekForTesting() & ~MarkBit;
         Cur != NilIdx;
         Cur = node(Cur).Next[0].peekForTesting() & ~MarkBit)
      if (ValCodec::unpack(node(Cur).ValState.peekForTesting()).Index ==
          Live)
        ++Count;
    return Count;
  }

  /// The admission counter's current count field (test oracle).
  std::uint32_t liveCounterForTesting() const {
    return countOf(LiveCount.peekForTesting());
  }

  /// Nodes ever drawn from the pool (head included). Quiescent only.
  std::uint32_t allocatedNodesForTesting() const {
    SpinGuard G(PoolLock);
    return NextFresh;
  }

  /// Nodes currently on the free list. Quiescent only.
  std::uint32_t freeNodesForTesting() const {
    SpinGuard G(PoolLock);
    return static_cast<std::uint32_t>(FreeList.size());
  }

  /// Heap owned by the list: segment directory, allocated segments,
  /// free list, spare table, and the hazard domain's bookkeeping.
  std::size_t heapBytes() const {
    std::size_t Bytes = DirSlots * sizeof(std::atomic<Segment *>) +
                        Spare.capacity() * sizeof(std::uint32_t) +
                        Domain.heapBytes();
    for (std::uint32_t S = 0; S < DirSlots; ++S)
      if (Dir[S].load(std::memory_order_acquire))
        Bytes += sizeof(Segment);
    {
      SpinGuard G(PoolLock);
      Bytes += FreeList.capacity() * sizeof(std::uint32_t);
    }
    return Bytes;
  }

private:
  /// Runs before any member is sized: a bad capacity must not allocate
  /// a directory for ~2^31 nodes on its way to being rejected.
  static std::uint32_t checkedCapacity(std::uint32_t NumThreads,
                                       std::uint32_t Capacity) {
    if (NumThreads < 1)
      throw std::invalid_argument("SkipListCore: need at least one process");
    if (Capacity >= NilIdx)
      throw std::invalid_argument(
          "SkipListCore: capacity exceeds the 31-bit index space");
    return Capacity;
  }

  /// Per-key state. Key/Height are plain relaxed atomics, not counted
  /// registers: they are immutable between a node's publication and its
  /// retirement, and a traversal only reads them while the node is
  /// hazard-pinned. SelfIdx is set once at segment creation.
  struct Node {
    std::atomic<std::uint32_t> Key{0};
    std::atomic<std::uint32_t> Height{0};
    std::uint32_t SelfIdx = 0;
    AtomicRegister<std::uint64_t, Policy> ValState;
    AtomicRegister<std::uint32_t, Policy> Next[MaxLevel];
  };

  struct Segment {
    Node Nodes[SegmentNodes];
  };

  struct SpinGuard {
    explicit SpinGuard(std::atomic_flag &F) : F(F) {
      while (F.test_and_set(std::memory_order_acquire))
        ;
    }
    ~SpinGuard() { F.clear(std::memory_order_release); }
    std::atomic_flag &F;
  };

  /// Clears every hazard slot of the thread on scope exit — including
  /// the unwind of an injected crash, so a dead operation never strands
  /// its pins past its own resurrection scope.
  class HazardScope {
  public:
    HazardScope(HazardDomain &D, std::uint32_t Tid) : D(D), Tid(Tid) {}
    HazardScope(const HazardScope &) = delete;
    HazardScope &operator=(const HazardScope &) = delete;
    ~HazardScope() { D.clearAll(Tid); }

  private:
    HazardDomain &D;
    std::uint32_t Tid;
  };

  enum class UpdateOutcome { Done, Interfered, WasDead };

  Node &node(std::uint32_t Idx) const {
    Segment *S = Dir[Idx / SegmentNodes].load(std::memory_order_acquire);
    return S->Nodes[Idx % SegmentNodes];
  }

  static std::uint32_t countOf(std::uint64_t CountWord) {
    return static_cast<std::uint32_t>(CountWord & 0xFFFFFFFFull);
  }

  /// Update an existing node at one tagged CAS — but only a Live one:
  /// revival of a Dead node is abolished (the fresh path shadows it).
  UpdateOutcome tryUpdate(std::uint32_t NodeIdx, Value V) {
    Node &Target = node(NodeIdx);
    const std::uint64_t W = Target.ValState.read(std::memory_order_acquire);
    const TopFields<Value> Fields = ValCodec::unpack(W);
    if (Fields.Index != Live)
      return UpdateOutcome::WasDead;
    const std::uint64_t NewW =
        ValCodec::pack({Live, V, ValCodec::seqAdd(Fields.Seq, 1)});
    return Target.ValState.compareAndSwap(W, NewW)
               ? UpdateOutcome::Done
               : UpdateOutcome::Interfered;
  }

  /// Adjusts the versioned live counter (reclamation channel: capacity
  /// bookkeeping after the operation already linearized).
  void bumpLive(std::int32_t Delta) {
    while (true) {
      const std::uint64_t W = LiveCount.readReclaim();
      const std::uint64_t Version = (W >> 32) + 1;
      const std::uint64_t Count =
          static_cast<std::uint32_t>(countOf(W) +
                                     static_cast<std::uint32_t>(Delta));
      if (LiveCount.compareAndSwapReclaim(W, (Version << 32) | Count))
        return;
    }
  }

  /// Marks every lane word of \p X top-down (Harris: a marked word both
  /// flags the node dead and makes any mutation CAS on it fail).
  void markLanes(Node &X) {
    const std::uint32_t H = X.Height.load(std::memory_order_relaxed);
    for (std::int32_t L = static_cast<std::int32_t>(H) - 1; L >= 0; --L) {
      const std::uint32_t UL = static_cast<std::uint32_t>(L);
      while (true) {
        const std::uint32_t W = X.Next[UL].readReclaim();
        if ((W & MarkBit) != 0)
          break;
        if (X.Next[UL].compareAndSwapReclaim(W, W | MarkBit))
          break;
      }
    }
  }

  /// Removes \p XIdx from every lane: sweeps each level (snipping any
  /// marked node met, helping other removers) until a full pass never
  /// encounters it. A pass that completes without meeting X proves no
  /// lane still links to it — the retire precondition.
  void sweepOut(std::uint32_t Tid, Key K, std::uint32_t XIdx) {
    const std::uint32_t H =
        node(XIdx).Height.load(std::memory_order_relaxed);
    bool Encountered = true;
    while (Encountered) {
      Encountered = false;
      for (std::int32_t L = static_cast<std::int32_t>(H) - 1; L >= 0; --L)
        Encountered |=
            sweepLevel(Tid, K, XIdx, static_cast<std::uint32_t>(L));
    }
  }

  /// One uncounted pass over level \p L. Returns whether X was seen.
  bool sweepLevel(std::uint32_t Tid, Key K, std::uint32_t XIdx,
                  std::uint32_t L) {
  Restart:
    bool Saw = false;
    std::uint32_t Pred = 0;
    std::uint32_t W = node(Pred).Next[L].readReclaim();
    while (true) {
      if ((W & MarkBit) != 0)
        goto Restart; // pred died under us
      const std::uint32_t Cur = W & ~MarkBit;
      if (Cur == NilIdx)
        return Saw;
      Domain.protect(Tid, 1, &node(Cur));
      if (node(Pred).Next[L].readReclaim() != W)
        goto Restart;
      const Key CK = node(Cur).Key.load(std::memory_order_relaxed);
      const std::uint32_t NW = node(Cur).Next[L].readReclaim();
      if ((NW & MarkBit) != 0) {
        if (Cur == XIdx)
          Saw = true;
        if (!node(Pred).Next[L].compareAndSwapReclaim(W, NW & ~MarkBit))
          goto Restart;
        W = NW & ~MarkBit;
        continue;
      }
      if (CK < K || (CK == K && Cur != XIdx)) {
        Domain.protect(Tid, 0, &node(Cur));
        Pred = Cur;
        W = NW;
        continue;
      }
      // CK > K: X (which sorts at K and is marked) cannot be ahead.
      return Saw;
    }
  }

  /// HazardDomain recycler: the storage returns to the free list.
  static void recycleNode(void *Obj, void *Ctx) {
    auto *Self = static_cast<SkipListCore *>(Ctx);
    SpinGuard G(Self->PoolLock);
    Self->FreeList.push_back(static_cast<Node *>(Obj)->SelfIdx);
  }

  /// Draws a node index: free list first, then a scan of this thread's
  /// own retire backlog, then fresh growth. Entirely uncounted.
  std::uint32_t acquireNode(std::uint32_t Tid) {
    {
      SpinGuard G(PoolLock);
      if (!FreeList.empty()) {
        const std::uint32_t Idx = FreeList.back();
        FreeList.pop_back();
        return Idx;
      }
    }
    // Drain what this thread retired; recycleNode feeds the free list.
    (void)Domain.scan(Tid);
    SpinGuard G(PoolLock);
    if (!FreeList.empty()) {
      const std::uint32_t Idx = FreeList.back();
      FreeList.pop_back();
      return Idx;
    }
    const std::uint32_t Idx = NextFresh++;
    assert(Idx < NodeBudget &&
           "node budget exhausted: live + spares + retire backlog "
           "exceeded its proven bound");
    if (!Dir[Idx / SegmentNodes].load(std::memory_order_acquire))
      installSegment(Idx / SegmentNodes);
    return Idx;
  }

  /// Allocates and publishes segment \p Slot (caller holds PoolLock or
  /// is the constructor).
  void installSegment(std::uint32_t Slot) {
    Segment *S = new Segment;
    for (std::uint32_t I = 0; I < SegmentNodes; ++I)
      S->Nodes[I].SelfIdx = Slot * SegmentNodes + I;
    Dir[Slot].store(S, std::memory_order_release);
  }

  const std::uint32_t Cap;
  const std::uint32_t N;
  const std::uint32_t NodeBudget;
  const std::uint32_t DirSlots;
  /// Mutable: reads publish and clear hazards, and traversal helping
  /// snips dead nodes — all memory-system bookkeeping, not logical
  /// state of the map.
  mutable HazardDomain Domain;
  std::unique_ptr<std::atomic<Segment *>[]> Dir;
  /// Versioned live-key counter: <version:32 | count:32>. Reads are
  /// counted (they gate Full); updates are post-linearization
  /// bookkeeping on the reclamation channel.
  AtomicRegister<std::uint64_t, Policy> LiveCount;
  /// Per-thread speculative node kept across failed link attempts (only
  /// ever touched by its own thread).
  std::vector<std::uint32_t> Spare;
  mutable std::atomic_flag PoolLock = ATOMIC_FLAG_INIT;
  std::vector<std::uint32_t> FreeList; // guarded by PoolLock
  std::uint32_t NextFresh = 0;         // guarded by PoolLock
};

} // namespace csobj

#endif // CSOBJ_CORE_SKIPLISTCORE_H
