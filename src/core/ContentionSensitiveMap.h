//===- core/ContentionSensitiveMap.h - Fig 3 over a skip list ---*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first pointer-based key-value object: the paper's Figure 3
/// contention-sensitive pattern applied per key region over a shared
/// reclaiming skip list (core/SkipListCore.h).
///
/// Layout: one SkipListCore holds every key; keys are partitioned into R
/// regions by `key % R`, and each region owns its own Figure 3 skeleton
/// (CONTENTION bit + doorway + lock). An update first tries the weak
/// single-CAS operation as the shortcut; on Abort the *region's*
/// doorway+lock serializes the conflicting writers while writers of
/// other regions and all readers proceed untouched.
///
/// Operation contract:
///  * get(k): lock-free wait-free search, never enters any skeleton —
///    no CONTENTION read, no doorway, no lock, in any state of the
///    object. It books one op + one Shortcut path on the region's sink
///    by hand so PathSnapshot::conserves() spans reads too.
///  * insert(k,v) / erase(k): strongApply on the region skeleton. Solo
///    cost is constant: 1 CONTENTION read + the weak op's bounded count
///    (MaxLevel search reads + O(height) writes/CAS; see map_test's
///    exact oracles) — the map analogue of the stack's 6.
///
/// Progress, honestly stated (DESIGN.md "Ordered map" for the full
/// argument): reads are wait-free always. Updates are per-region
/// starvation-free against same-region contention (the Fig-3 doorway),
/// but a lock-holder's retry can still be aborted by cross-region link
/// interference at shared predecessors, so globally updates are
/// lock-free, not wait-free. A writer that crashes inside its region
/// lock strands that region's update path only — the stall-only
/// progress class on the crash lattice: gets and other regions are
/// unaffected. (Swap Lock for LeasedLock to buy back crash recovery at
/// the price of lease reads on the slow path.)
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CONTENTIONSENSITIVEMAP_H
#define CSOBJ_CORE_CONTENTIONSENSITIVEMAP_H

#include "core/ContentionSensitive.h"
#include "core/SkipListCore.h"
#include "locks/TasLock.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace csobj {

/// Contention-sensitive ordered map: per-region Figure 3 skeletons over
/// one shared skip list.
///
/// \tparam Lock     deadlock-free lock for each region's contended path.
/// \tparam Manager  ContentionManager pacing lock-protected retries.
/// \tparam Policy   register policy (Instrumented / Fast).
/// \tparam SkeletonT the strong-operation skeleton per region.
template <typename Lock = TasLock, ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy,
          typename SkeletonT = ContentionSensitive<Lock, Manager, Policy>>
class ContentionSensitiveMap {
public:
  using Key = std::uint32_t;
  using Value = std::uint32_t;
  using RegisterPolicy = Policy;
  using Core = SkipListCore<Policy>;

  static constexpr std::uint32_t DefaultRegionCount = 8;

  /// \p NumThreads is the paper's n; \p Capacity bounds *live* distinct
  /// keys (erase frees capacity — the skip list physically removes and
  /// recycles nodes); \p RegionCount is the number of independent Fig-3
  /// doorway+lock instances (1 degenerates to a single global slow path).
  ContentionSensitiveMap(std::uint32_t NumThreads, std::uint32_t Capacity,
                         std::uint32_t RegionCount = DefaultRegionCount)
      : Weak(NumThreads, Capacity), Regions(RegionCount == 0 ? 1
                                                             : RegionCount) {
    Skels.reserve(Regions);
    for (std::uint32_t R = 0; R < Regions; ++R)
      Skels.push_back(std::make_unique<SkeletonT>(NumThreads));
  }

  /// The region (doorway+lock instance) responsible for \p K.
  std::uint32_t regionOf(Key K) const { return K % Regions; }

  /// Lock-free read: the value at K or Empty. Never aborts, never reads
  /// CONTENTION, never enters a doorway — but still books exactly one
  /// op + one Shortcut path so region snapshots conserve across reads.
  PopResult<Value> get(std::uint32_t Tid, Key K) const {
    const PopResult<Value> Res = Weak.get(Tid, K);
    obs::MetricSink &Sink = Skels[regionOf(K)]->metrics();
    Sink.onOp(Tid);
    Sink.onPath(Tid, obs::Path::Shortcut);
    return Res;
  }

  /// strong insert-or-update: Done or Full, never Abort; terminates
  /// under same-region contention by the Fig-3 argument.
  PushResult insert(std::uint32_t Tid, Key K, Value V) {
    return Skels[regionOf(K)]->strongApply(
        Tid, [this, Tid, K, V]() -> std::optional<PushResult> {
          const PushResult Res = Weak.weakInsert(Tid, K, V);
          if (Res == PushResult::Abort)
            return std::nullopt; // res = bottom
          return Res;
        });
  }

  /// strong erase: the old value or Empty, never Abort.
  PopResult<Value> erase(std::uint32_t Tid, Key K) {
    return Skels[regionOf(K)]->strongApply(
        Tid, [this, Tid, K]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Weak.weakErase(Tid, K);
          if (Res.isAbort())
            return std::nullopt; // res = bottom
          return Res;
        });
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t numThreads() const { return Weak.numThreads(); }
  std::uint32_t numRegions() const { return Regions; }
  std::uint32_t sizeForTesting() const { return Weak.liveCountForTesting(); }

  /// The shared skip list (test/debug aid).
  Core &core() { return Weak; }
  const Core &core() const { return Weak; }

  /// Region R's strong-operation skeleton (test/debug aid).
  SkeletonT &regionSkeleton(std::uint32_t R) { return *Skels[R]; }

  /// Path-attributed metrics merged across every region.
  obs::PathSnapshot pathSnapshot() const {
    obs::PathSnapshot Merged;
    for (const std::unique_ptr<SkeletonT> &Sk : Skels)
      Merged += Sk->pathSnapshot();
    return Merged;
  }

  obs::Path lastPath(std::uint32_t Tid, Key K) const {
    return Skels[regionOf(K)]->metrics().lastPath(Tid);
  }

  /// Resident bytes: header + node pool + every region skeleton (their
  /// doorway arrays and metric blocks). Feeds bytes_per_element.
  std::size_t footprintBytes() const {
    std::size_t Bytes = sizeof(*this) + Weak.heapBytes();
    Bytes += Skels.capacity() * sizeof(std::unique_ptr<SkeletonT>);
    for (const std::unique_ptr<SkeletonT> &Sk : Skels)
      Bytes += sizeof(SkeletonT) + Sk->heapBytes();
    return Bytes;
  }

private:
  Core Weak;
  std::uint32_t Regions;
  std::vector<std::unique_ptr<SkeletonT>> Skels;
};

} // namespace csobj

#endif // CSOBJ_CORE_CONTENTIONSENSITIVEMAP_H
