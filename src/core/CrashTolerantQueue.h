//===- core/CrashTolerantQueue.h - Degradable Figure 3 queue ----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FIFO companion of core/CrashTolerantStack.h: the abortable bounded
/// queue (core/AbortableQueue.h) strengthened through the crash-tolerant
/// skeleton (core/CrashTolerant.h). Linearizable and contention-sensitive
/// like ContentionSensitiveQueue — an uncontended enqueue keeps the
/// seven-access bound (one CONTENTION read plus the weak attempt) — but a
/// process crashing while competing for or holding the slow-path lock no
/// longer wedges the object: survivors revoke the stale lease within
/// their patience budget and complete through the Figure 2 retry loop,
/// degrading starvation-freedom to lock-freedom instead of losing
/// progress altogether.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CRASHTOLERANTQUEUE_H
#define CSOBJ_CORE_CRASHTOLERANTQUEUE_H

#include "core/AbortableQueue.h"
#include "core/CrashTolerant.h"

#include <cstdint>
#include <optional>

namespace csobj {

/// Crash-tolerant contention-sensitive bounded FIFO queue.
///
/// \tparam Config  codec family (Compact64 / Wide128).
/// \tparam Manager ContentionManager pacing protected and degraded
///         retries.
/// \tparam Policy  register policy (Instrumented / Fast).
template <typename Config = Compact64, ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
class CrashTolerantQueue {
public:
  using Value = typename Config::Value;
  using Skeleton = CrashTolerantContentionSensitive<Manager, Policy>;
  using RegisterPolicy = Policy;
  static constexpr Value Bottom = AbortableQueue<Config, Policy>::Bottom;

  /// \p NumThreads is the paper's n (ids 0..n-1); \p Capacity is k;
  /// \p Patience bounds slow-path waiting (see CrashTolerant.h).
  CrashTolerantQueue(std::uint32_t NumThreads, std::uint32_t Capacity,
                     std::uint32_t Patience = Skeleton::DefaultPatience)
      : Weak(Capacity), Strong(NumThreads, Patience) {}

  /// strong_enqueue(v): Done or Full, never Abort; terminates even when
  /// other processes crash mid-operation.
  PushResult enqueue(std::uint32_t Tid, Value V) {
    return Strong.strongApply(Tid, [this, V]() -> std::optional<PushResult> {
      const PushResult Res = Weak.weakEnqueue(V);
      if (Res == PushResult::Abort)
        return std::nullopt; // res = bottom
      return Res;
    });
  }

  /// strong_dequeue(): the oldest value or Empty, never Abort;
  /// terminates even when other processes crash mid-operation.
  PopResult<Value> dequeue(std::uint32_t Tid) {
    return Strong.strongApply(
        Tid, [this]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Weak.weakDequeue();
          if (Res.isAbort())
            return std::nullopt; // res = bottom
          return Res;
        });
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t numThreads() const { return Strong.numThreads(); }
  std::uint32_t sizeForTesting() const { return Weak.sizeForTesting(); }

  /// The underlying Figure 1 object (test/debug aid).
  AbortableQueue<Config, Policy> &abortable() { return Weak; }

  /// The crash-tolerant skeleton (test/debug/stats aid).
  Skeleton &skeleton() { return Strong; }
  const Skeleton &skeleton() const { return Strong; }

  /// Path-attributed metrics of the skeleton (obs/PathCounters.h).
  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

private:
  AbortableQueue<Config, Policy> Weak;
  Skeleton Strong;
};

} // namespace csobj

#endif // CSOBJ_CORE_CRASHTOLERANTQUEUE_H
