//===- core/AbortableStack.h - The paper's Figure 1 -------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abortable stack of Figure 1 — a simplified version of Shafiei's
/// array-based non-blocking stack (ICDCN'09, the paper's reference [22]).
///
/// Representation (Section 3):
///  * TOP: one atomic register holding the triple <index, value, seqnb>
///    describing the last non-aborted operation.
///  * STACK[0..k]: k+1 atomic registers, each a pair <val, sn>; STACK[0]
///    is a dummy entry that conceptually always holds bottom.
///
/// The implementation is *lazy*: a successful operation installs its
/// outcome into TOP with one Compare&Swap and leaves the corresponding
/// write of STACK[index] to the *next* operation, which "helps" it
/// (procedure help, lines 15-16) before attempting its own update. The
/// per-slot sequence numbers defeat the ABA problem exactly as described
/// in Section 2.2.
///
/// A successful weak_push/weak_pop performs 5 shared-memory accesses
/// (read TOP; read STACK[index]; C&S STACK[index]; read the neighbour
/// slot; C&S TOP); full/empty answers take 3. Under interference an
/// operation may return bottom (PushResult::Abort / PopResult::abort()),
/// in which case it had no effect — the property the contention-sensitive
/// construction of Figure 3 builds on.
///
/// Memory orderings (audited for the Fast register policy; identical
/// under Instrumented): every mutation of TOP or a slot is a C&S with
/// acq_rel success ordering, and every read of TOP or a slot is acquire.
/// Happens-before argument: an operation's only writes are its help-C&S
/// and its TOP-C&S, both releases; the next operation begins by reading
/// TOP (acquire), which synchronizes-with the TOP-C&S of the operation it
/// observes, making that operation's slot updates visible before they are
/// re-read. Slot sequence numbers carry the same argument across slot
/// reuse. No operation relies on the relative order of *other* threads'
/// independent accesses, so seq_cst is not required.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_ABORTABLESTACK_H
#define CSOBJ_CORE_ABORTABLESTACK_H

#include "core/Results.h"
#include "memory/AtomicRegister.h"
#include "memory/TaggedValue.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace csobj {

/// Figure 1: an abortable, linearizable, lock-free bounded stack.
///
/// \tparam Config a codec family (Compact64 or Wide128) fixing the packed
///         layout of TOP and STACK[x] and the payload type.
/// \tparam Policy register policy (Instrumented / Fast), see
///         memory/RegisterPolicy.h.
template <typename Config = Compact64,
          typename Policy = DefaultRegisterPolicy>
class AbortableStack {
public:
  using TopC = typename Config::Top;
  using SlotC = typename Config::Slot;
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;

  /// The reserved bottom payload; pushing it is a precondition violation.
  static constexpr Value Bottom = TopC::Bottom;

  /// Creates a stack of capacity \p Capacity (the paper's k). Entry 0 of
  /// the backing array is the dummy slot, so Capacity must be at least 1
  /// and small enough for the index field of the TOP codec.
  explicit AbortableStack(std::uint32_t Capacity)
      : K(Capacity),
        Slots(new AtomicRegister<SlotWord, Policy>[Capacity + 1]) {
    assert(Capacity >= 1 && "stack capacity must be positive");
    assert(Capacity <= TopC::MaxIndex && "capacity exceeds index field");
    // TOP <- <0, bottom, 0>; STACK[0] <- <bottom, -1>; STACK[x] <- <bottom, 0>.
    Top.write(TopC::pack({/*Index=*/0, /*Value=*/Bottom, /*Seq=*/0}));
    Slots[0].write(SlotC::pack({Bottom, TopC::seqAdd(0, -1)}));
    for (std::uint32_t X = 1; X <= Capacity; ++X)
      Slots[X].write(SlotC::pack({Bottom, 0}));
  }

  /// weak_push(v), lines 01-07. Returns Done, Full, or Abort (bottom).
  /// \p V must not be the reserved Bottom payload and must fit the codec's
  /// value field.
  PushResult weakPush(Value V) {
    assert(V != Bottom && "cannot push the reserved bottom value");
    assert((V & static_cast<Value>(TopC::Bottom)) == V &&
           "value exceeds the codec's value field");
    // Acquire: synchronizes with the releasing TOP-C&S of the operation
    // whose outcome we observe (see file comment).
    const TopWord Observed = Top.read(std::memory_order_acquire); // line 01
    const TopFields<Value> Cur = TopC::unpack(Observed);
    help(Cur);                                                  // line 02
    if (Cur.Index == K)                                         // line 03
      return PushResult::Full;
    const SlotFields<Value> Next = SlotC::unpack(
        Slots[Cur.Index + 1].read(std::memory_order_acquire));  // line 04
    const TopWord NewTop = TopC::pack(
        {Cur.Index + 1, V, TopC::seqAdd(Next.Seq, +1)});        // line 05
    // Acq_rel: the release publishes this operation (and the help write
    // it performed); the acquire orders it after the observed TOP.
    if (Top.compareAndSwap(Observed, NewTop,
                           std::memory_order_acq_rel))          // line 06
      return PushResult::Done;
    return PushResult::Abort;                                   // line 07
  }

  /// weak_pop(), lines 08-14. Returns the popped value, Empty, or Abort.
  PopResult<Value> weakPop() {
    const TopWord Observed = Top.read(std::memory_order_acquire); // line 08
    const TopFields<Value> Cur = TopC::unpack(Observed);
    help(Cur);                                                  // line 09
    if (Cur.Index == 0)                                         // line 10
      return PopResult<Value>::empty();
    const SlotFields<Value> Below = SlotC::unpack(
        Slots[Cur.Index - 1].read(std::memory_order_acquire));  // line 11
    const TopWord NewTop = TopC::pack(
        {Cur.Index - 1, Below.Value, TopC::seqAdd(Below.Seq, +1)}); // line 12
    if (Top.compareAndSwap(Observed, NewTop,
                           std::memory_order_acq_rel))          // line 13
      return PopResult<Value>::value(Cur.Value);
    return PopResult<Value>::abort();                           // line 14
  }

  /// The paper's k.
  std::uint32_t capacity() const { return K; }

  /// Heap owned by the stack: the STACK[0..k] slot array (k + 1 entries;
  /// slot 0 holds the initial sentinel).
  std::size_t heapBytes() const {
    return (std::size_t{K} + 1) * sizeof(AtomicRegister<SlotWord, Policy>);
  }

  /// One instrumented acquire read of TOP, decoded. The acceleration
  /// layer (perf/) uses this as a not-full / not-empty witness: a single
  /// read taken inside both operations' intervals justifies linearizing
  /// an eliminated push/pop pair back-to-back at that instant.
  TopFields<Value> readTop() const { return TopC::unpack(readTopWord()); }

  /// The raw packed TOP word via one instrumented acquire read. Two
  /// equal reads with no successful operation in between (the word
  /// carries the seq number) give the stable-snapshot certificate the
  /// sharded stack's all-full / all-empty double collect relies on.
  typename TopC::Word readTopWord() const {
    return Top.read(std::memory_order_acquire);
  }

  /// Number of elements currently on the stack. Inherently racy under
  /// concurrency; exact when quiescent. Uninstrumented (test/debug aid).
  std::uint32_t sizeForTesting() const {
    return TopC::unpack(Top.peekForTesting()).Index;
  }

  /// Decoded TOP register (test/debug aid, uninstrumented).
  TopFields<Value> topForTesting() const {
    return TopC::unpack(Top.peekForTesting());
  }

  /// Decoded STACK[x] register (test/debug aid, uninstrumented).
  SlotFields<Value> slotForTesting(std::uint32_t X) const {
    assert(X <= K && "slot index out of range");
    return SlotC::unpack(Slots[X].peekForTesting());
  }

private:
  using TopWord = typename TopC::Word;
  using SlotWord = typename SlotC::Word;

  /// procedure help(index, value, seqnb), lines 15-16: complete the lazy
  /// write of the previous non-aborted operation into STACK[index]. The
  /// C&S succeeds only if that write has not been done yet (expected
  /// sequence number seqnb - 1).
  void help(const TopFields<Value> &T) {
    const SlotFields<Value> Cur = SlotC::unpack(
        Slots[T.Index].read(std::memory_order_acquire));        // line 15
    Slots[T.Index].compareAndSwap(
        SlotC::pack({Cur.Value, TopC::seqAdd(T.Seq, -1)}),
        SlotC::pack({T.Value, T.Seq}),
        std::memory_order_acq_rel);                             // line 16
  }

  const std::uint32_t K;
  AtomicRegister<TopWord, Policy> Top;
  std::unique_ptr<AtomicRegister<SlotWord, Policy>[]> Slots;
};

} // namespace csobj

#endif // CSOBJ_CORE_ABORTABLESTACK_H
