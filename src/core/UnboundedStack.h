//===- core/UnboundedStack.h - Unbounded Figure 1 + Figure 3 ----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 1 runs on an *infinite* array STACK[0..] — the
/// bounded implementation in core/AbortableStack.h trades that for a
/// preallocated k+1-slot array and a Full answer. This file materializes
/// the infinite array instead: the slot space is a directory of
/// fixed-size chunks, installed on demand as TOP climbs and physically
/// retired — through memory/HazardDomain.h — as TOP falls, so resident
/// memory tracks the live population rather than a pre-sized worst case.
///
/// The algorithm is Figure 1 *verbatim* (same line structure, same lazy
/// help, same ABA tags); only the addressing of STACK[x] changes. The
/// chunk machinery is the memory system behind the paper's assumed
/// infinite array, and it lives entirely on the reclamation channel:
/// directory loads, hazard publication, chunk installation and
/// retirement are plain/uncounted operations (AtomicRegister::
/// readReclaim / writeReclaim and raw std::atomic), so the AccessCounter
/// oracle and the interleaving explorer see exactly the accesses Figure 1
/// performs — a successful solo weak_push/weak_pop stays at 5, and the
/// Figure-3 wrapper at 6, the bound experiment E1 audits.
///
/// Chunk protocol (reader side): read Dir[pos], publish the pointer as a
/// hazard, re-read Dir[pos]; if unchanged the chunk cannot be recycled
/// until the hazard clears, so its registers are safe. If changed (or
/// null), the caller's TOP view is provably stale — the trim that
/// detached the chunk happened after a successful pop changed TOP — so
/// the operation answers the paper's bottom (Abort), which is exactly
/// the answer its own TOP C&S would have produced.
///
/// Chunk protocol (writer side): a push whose next slot crosses into an
/// absent chunk installs one (pool acquire, re-seed, publish); a pop
/// that crosses a chunk boundary downward trims every chunk above the
/// hysteresis line (chunkOf(TOP)+1) and retires it. Install and trim
/// serialize on one uncounted spinlock, which keeps the directory free
/// of pointer ABA (a detached chunk can only be re-installed under the
/// same lock that detached it). Each installation re-seeds the chunk's
/// slot sequence numbers from a per-position counter (odd stride), so a
/// recycled chunk never resumes the sequence run of its previous
/// incarnation — a sleeping thread is fooled only across ~2^16 reuses of
/// one slot, the same envelope as the bounded stack's 16-bit tags.
///
/// Capacity: the TOP codec's index field is the envelope (65535 for
/// Compact64). Full is answered only there; below it the stack grows and
/// shrinks physically.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_UNBOUNDEDSTACK_H
#define CSOBJ_CORE_UNBOUNDEDSTACK_H

#include "core/ContentionSensitive.h"
#include "core/Results.h"
#include "locks/TasLock.h"
#include "memory/AtomicRegister.h"
#include "memory/HazardDomain.h"
#include "memory/NodePool.h"
#include "memory/TaggedValue.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

namespace csobj {

/// Unbounded abortable stack: Figure 1 over a chunked, hazard-reclaimed
/// slot space.
///
/// \tparam Config codec family fixing TOP/slot layout and the payload.
/// \tparam Policy register policy (Instrumented / Fast).
template <typename Config = Compact64,
          typename Policy = DefaultRegisterPolicy>
class UnboundedStack {
public:
  using TopC = typename Config::Top;
  using SlotC = typename Config::Slot;
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;

  static constexpr Value Bottom = TopC::Bottom;
  /// Slots per chunk; a boundary crossing (install or trim) happens once
  /// per ChunkSlots same-direction operations.
  static constexpr std::uint32_t ChunkSlots = 64;
  /// The index-field envelope: the only height at which Full is answered.
  static constexpr std::uint32_t EnvelopeIndex = TopC::MaxIndex;
  static constexpr std::uint32_t DirSize =
      EnvelopeIndex / ChunkSlots + 1;
  /// Hazard slots per thread: one for the help chunk, one for the
  /// neighbour-slot chunk.
  static constexpr std::uint32_t HazardSlots = 2;

  /// One directory leaf: ChunkSlots consecutive STACK[] registers.
  struct Chunk {
    AtomicRegister<typename SlotC::Word, Policy> Slots[ChunkSlots];
  };

  /// \p NumThreads is the paper's n — it sizes the hazard domain.
  /// Construct outside counting scopes: initialisation writes TOP.
  explicit UnboundedStack(std::uint32_t NumThreads)
      : Domain(NumThreads, HazardSlots) {
    assert(NumThreads >= 1 && "need at least one process");
    for (std::uint32_t P = 0; P < DirSize; ++P) {
      Dir[P].store(nullptr, std::memory_order_relaxed);
      SeqSeed[P] = 0;
    }
    // Chunk 0 (never trimmed: the hysteresis line is >= 1): Figure 1's
    // STACK[0] <- <bottom, -1>, STACK[x] <- <bottom, 0>.
    Chunk *C0 = Pool.acquire();
    for (std::uint32_t X = 0; X < ChunkSlots; ++X)
      C0->Slots[X].writeReclaim(SlotC::pack({Bottom, 0}));
    C0->Slots[0].writeReclaim(SlotC::pack({Bottom, TopC::seqAdd(0, -1)}));
    SeqSeed[0] = SeedStride;
    Dir[0].store(C0, std::memory_order_seq_cst);
    Top.write(TopC::pack({/*Index=*/0, /*Value=*/Bottom, /*Seq=*/0}));
  }

  /// weak_push(v), Figure 1 lines 01-07 on the chunked array. Abort
  /// additionally covers "my TOP view's chunk was already reclaimed" —
  /// a case only a stale (interfered-with) operation can hit.
  PushResult weakPush(std::uint32_t Tid, Value V) {
    assert(V != Bottom && "cannot push the reserved bottom value");
    assert((V & static_cast<Value>(TopC::Bottom)) == V &&
           "value exceeds the codec's value field");
    const TopWord Observed = Top.read(std::memory_order_acquire); // line 01
    const TopFields<Value> Cur = TopC::unpack(Observed);
    HazardGuard HelpGuard(Domain, Tid, 0);
    Chunk *HelpC = pin(chunkOf(Cur.Index), HelpGuard);
    if (!HelpC)
      return PushResult::Abort;
    help(*HelpC, Cur);                                          // line 02
    if (Cur.Index == EnvelopeIndex)                             // line 03
      return PushResult::Full;
    HazardGuard NextGuard(Domain, Tid, 1);
    Chunk *NextC = pinOrInstall(chunkOf(Cur.Index + 1), NextGuard);
    const SlotFields<Value> Next = SlotC::unpack(
        slotIn(*NextC, Cur.Index + 1).read(std::memory_order_acquire));
                                                                // line 04
    const TopWord NewTop = TopC::pack(
        {Cur.Index + 1, V, TopC::seqAdd(Next.Seq, +1)});        // line 05
    if (Top.compareAndSwap(Observed, NewTop,
                           std::memory_order_acq_rel))          // line 06
      return PushResult::Done;
    return PushResult::Abort;                                   // line 07
  }

  /// weak_pop(), Figure 1 lines 08-14 on the chunked array. A pop that
  /// crosses a chunk boundary downward trims the orphaned chunks above.
  PopResult<Value> weakPop(std::uint32_t Tid) {
    const TopWord Observed = Top.read(std::memory_order_acquire); // line 08
    const TopFields<Value> Cur = TopC::unpack(Observed);
    HazardGuard HelpGuard(Domain, Tid, 0);
    Chunk *HelpC = pin(chunkOf(Cur.Index), HelpGuard);
    if (!HelpC)
      return PopResult<Value>::abort();
    help(*HelpC, Cur);                                          // line 09
    if (Cur.Index == 0)                                         // line 10
      return PopResult<Value>::empty();
    HazardGuard BelowGuard(Domain, Tid, 1);
    Chunk *BelowC = pin(chunkOf(Cur.Index - 1), BelowGuard);
    if (!BelowC)
      return PopResult<Value>::abort();
    const SlotFields<Value> Below = SlotC::unpack(
        slotIn(*BelowC, Cur.Index - 1).read(std::memory_order_acquire));
                                                                // line 11
    const TopWord NewTop = TopC::pack(
        {Cur.Index - 1, Below.Value, TopC::seqAdd(Below.Seq, +1)});
                                                                // line 12
    if (Top.compareAndSwap(Observed, NewTop,
                           std::memory_order_acq_rel)) {        // line 13
      if (chunkOf(Cur.Index) != chunkOf(Cur.Index - 1))
        trim(Tid); // uncounted: reclamation channel
      return PopResult<Value>::value(Cur.Value);
    }
    return PopResult<Value>::abort();                           // line 14
  }

  /// The envelope (the largest population the TOP codec can express).
  std::uint32_t capacity() const { return EnvelopeIndex; }

  std::uint32_t numThreads() const { return Domain.numThreads(); }

  /// One instrumented acquire read of TOP, decoded (acceleration-layer
  /// witness, same contract as the bounded stack).
  TopFields<Value> readTop() const { return TopC::unpack(readTopWord()); }
  typename TopC::Word readTopWord() const {
    return Top.read(std::memory_order_acquire);
  }

  /// Quiescent-only population (test/debug aid, uninstrumented).
  std::uint32_t sizeForTesting() const {
    return TopC::unpack(Top.peekForTesting()).Index;
  }
  TopFields<Value> topForTesting() const {
    return TopC::unpack(Top.peekForTesting());
  }

  /// Chunks currently installed in the directory (test/bench oracle).
  std::uint32_t installedChunksForTesting() const {
    std::uint32_t Count = 0;
    for (std::uint32_t P = 0; P < DirSize; ++P)
      if (Dir[P].load(std::memory_order_seq_cst))
        ++Count;
    return Count;
  }

  /// The reclamation domain (bench/test oracle: backlog, high water).
  HazardDomain &domain() { return Domain; }
  const HazardDomain &domain() const { return Domain; }

  /// Chunks ever allocated by the backing pool (test/bench oracle).
  std::size_t allocatedChunksForTesting() const {
    return Pool.allocatedCount();
  }

  /// Heap owned by the stack: every chunk ever allocated, the hazard
  /// domain, and the retire bookkeeping. This is the honest resident
  /// footprint behind the bytes_per_element bench column.
  std::size_t heapBytes() const {
    return Pool.heapBytes() + Domain.heapBytes();
  }

private:
  using TopWord = typename TopC::Word;
  using SlotWord = typename SlotC::Word;

  /// Seed stride between incarnations of one directory position: odd
  /// (coprime to the 2^SeqBits sequence space), so successive
  /// incarnations start their sequence runs at distinct offsets.
  static constexpr std::uint32_t SeedStride = 257;

  static constexpr std::uint32_t chunkOf(std::uint32_t Index) {
    return Index / ChunkSlots;
  }
  static AtomicRegister<SlotWord, Policy> &slotIn(Chunk &C,
                                                  std::uint32_t Index) {
    return C.Slots[Index % ChunkSlots];
  }

  /// procedure help (Figure 1 lines 15-16), addressed through a pinned
  /// chunk.
  void help(Chunk &C, const TopFields<Value> &T) {
    AtomicRegister<SlotWord, Policy> &S = slotIn(C, T.Index);
    const SlotFields<Value> Cur =
        SlotC::unpack(S.read(std::memory_order_acquire));       // line 15
    S.compareAndSwap(SlotC::pack({Cur.Value, TopC::seqAdd(T.Seq, -1)}),
                     SlotC::pack({T.Value, T.Seq}),
                     std::memory_order_acq_rel);                // line 16
  }

  /// Hazard handshake: read Dir[Pos], publish, re-validate. Returns the
  /// pinned chunk, or nullptr when the position is (now) empty — proof
  /// the caller's TOP view is stale.
  Chunk *pin(std::uint32_t Pos, HazardGuard &Guard) {
    Chunk *C = Dir[Pos].load(std::memory_order_seq_cst);
    while (C) {
      Guard.protect(C);
      Chunk *Again = Dir[Pos].load(std::memory_order_seq_cst);
      if (Again == C)
        return C;
      C = Again;
    }
    return nullptr;
  }

  /// pin that installs an absent chunk first (the push growth path).
  Chunk *pinOrInstall(std::uint32_t Pos, HazardGuard &Guard) {
    while (true) {
      if (Chunk *C = pin(Pos, Guard))
        return C;
      installAt(Pos);
    }
  }

  /// Installs a freshly seeded chunk at \p Pos if none is present.
  /// Serialized with trim() so the directory never sees pointer ABA.
  void installAt(std::uint32_t Pos) {
    SpinGuard G(DirLock);
    if (Dir[Pos].load(std::memory_order_seq_cst))
      return;
    Chunk *C = Pool.acquire();
    const std::uint32_t Seed = SeqSeed[Pos] & TopC::SeqMask;
    SeqSeed[Pos] += SeedStride;
    for (std::uint32_t X = 0; X < ChunkSlots; ++X)
      C->Slots[X].writeReclaim(SlotC::pack({Bottom, Seed}));
    Dir[Pos].store(C, std::memory_order_seq_cst);
  }

  /// Detaches and retires every chunk above the hysteresis line
  /// (chunkOf(TOP)+1). Called after a boundary-crossing pop; reads TOP
  /// through the reclamation channel, so the whole trim is invisible to
  /// the oracles.
  void trim(std::uint32_t Tid) {
    SpinGuard G(DirLock);
    const std::uint32_t TopIdx =
        TopC::unpack(Top.readReclaim()).Index;
    for (std::uint32_t Pos = chunkOf(TopIdx) + 2; Pos < DirSize; ++Pos) {
      Chunk *C = Dir[Pos].load(std::memory_order_seq_cst);
      if (!C)
        continue;
      Dir[Pos].store(nullptr, std::memory_order_seq_cst);
      Domain.retire(Tid, C, NodePool<Chunk>::recycle, &Pool);
    }
  }

  struct SpinGuard {
    explicit SpinGuard(std::atomic_flag &F) : F(F) {
      while (F.test_and_set(std::memory_order_acquire))
        ;
    }
    ~SpinGuard() { F.clear(std::memory_order_release); }
    std::atomic_flag &F;
  };

  AtomicRegister<TopWord, Policy> Top;
  HazardDomain Domain;
  NodePool<Chunk> Pool;
  std::atomic<Chunk *> Dir[DirSize];
  /// Per-position incarnation seed; guarded by DirLock.
  std::uint32_t SeqSeed[DirSize];
  std::atomic_flag DirLock = ATOMIC_FLAG_INIT;
};

/// Figure 3 over the unbounded Figure 1: starvation-free contention-
/// sensitive stack whose resident memory tracks the live population. A
/// contention-free strong operation performs exactly six shared-memory
/// accesses (one CONTENTION read + the five of the weak op), the same
/// bound as the bounded ContentionSensitiveStack.
template <typename Config = Compact64, typename Lock = TasLock,
          ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy,
          typename SkeletonT = ContentionSensitive<Lock, Manager, Policy>>
class ContentionSensitiveUnboundedStack {
public:
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;
  static constexpr Value Bottom = UnboundedStack<Config, Policy>::Bottom;

  explicit ContentionSensitiveUnboundedStack(std::uint32_t NumThreads)
      : Weak(NumThreads), Strong(NumThreads) {}

  /// strong_push(v): Done or Full (envelope only), never Abort.
  PushResult push(std::uint32_t Tid, Value V) {
    return Strong.strongApply(
        Tid, [this, Tid, V]() -> std::optional<PushResult> {
          const PushResult Res = Weak.weakPush(Tid, V);
          if (Res == PushResult::Abort)
            return std::nullopt;
          return Res;
        });
  }

  /// strong_pop(): a value or Empty, never Abort.
  PopResult<Value> pop(std::uint32_t Tid) {
    return Strong.strongApply(
        Tid, [this, Tid]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Weak.weakPop(Tid);
          if (Res.isAbort())
            return std::nullopt;
          return Res;
        });
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t numThreads() const { return Strong.numThreads(); }
  std::uint32_t sizeForTesting() const { return Weak.sizeForTesting(); }

  UnboundedStack<Config, Policy> &unbounded() { return Weak; }
  SkeletonT &skeleton() { return Strong; }

  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }

  std::size_t footprintBytes() const {
    return sizeof(*this) + Strong.heapBytes() + Weak.heapBytes();
  }

  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

private:
  UnboundedStack<Config, Policy> Weak;
  SkeletonT Strong;
};

} // namespace csobj

#endif // CSOBJ_CORE_UNBOUNDEDSTACK_H
