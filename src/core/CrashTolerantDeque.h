//===- core/CrashTolerantDeque.h - Degradable Figure 3 deque ----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HLM obstruction-free deque (core/ObstructionFreeDeque.h, the
/// paper's reference [8]) strengthened through the crash-tolerant
/// skeleton (core/CrashTolerant.h). ContentionSensitiveDeque already
/// lifts the deque from obstruction-free to starvation-free; this variant
/// keeps that lift while surviving the Section 5 crash boundary: a
/// process dying in the doorway or with the lease held is suspected,
/// skipped, and revoked within the survivors' patience budget, after
/// which operations complete through the Figure 2 retry loop (lock-free —
/// the HLM attempts only abort when a rival's C&S wins). The deque is the
/// strongest stress case for degraded mode: two symmetric HLM operations
/// can abort each other indefinitely under an adversarial schedule, so
/// lock-freedom here really does lean on a rival completing.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_CRASHTOLERANTDEQUE_H
#define CSOBJ_CORE_CRASHTOLERANTDEQUE_H

#include "core/CrashTolerant.h"
#include "core/ObstructionFreeDeque.h"

#include <cstdint>
#include <optional>

namespace csobj {

/// Crash-tolerant contention-sensitive double-ended queue.
///
/// \tparam Manager ContentionManager pacing protected and degraded
///         retries.
/// \tparam Policy  register policy (Instrumented / Fast) for the skeleton
///         registers (the HLM array itself is non-template, always
///         instrumented-by-default like the rest of the deque family).
template <ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
class CrashTolerantDeque {
public:
  using Value = ObstructionFreeDeque::Value;
  using Skeleton = CrashTolerantContentionSensitive<Manager, Policy>;
  using RegisterPolicy = Policy;

  /// \p NumThreads is the paper's n; \p Capacity and \p InitialLeftSlots
  /// as in ObstructionFreeDeque; \p Patience bounds slow-path waiting.
  CrashTolerantDeque(std::uint32_t NumThreads, std::uint32_t Capacity,
                     std::uint32_t InitialLeftSlots = ~std::uint32_t{0},
                     std::uint32_t Patience = Skeleton::DefaultPatience)
      : Weak(Capacity, InitialLeftSlots), Strong(NumThreads, Patience) {}

  PushResult pushLeft(std::uint32_t Tid, Value V) {
    return strongPush(Tid, [this, V] { return Weak.tryPushLeft(V); });
  }
  PushResult pushRight(std::uint32_t Tid, Value V) {
    return strongPush(Tid, [this, V] { return Weak.tryPushRight(V); });
  }
  PopResult<Value> popLeft(std::uint32_t Tid) {
    return strongPop(Tid, [this] { return Weak.tryPopLeft(); });
  }
  PopResult<Value> popRight(std::uint32_t Tid) {
    return strongPop(Tid, [this] { return Weak.tryPopRight(); });
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t numThreads() const { return Strong.numThreads(); }
  std::uint32_t sizeForTesting() const { return Weak.sizeForTesting(); }

  /// The underlying HLM object (test/debug aid).
  ObstructionFreeDeque &abortable() { return Weak; }

  /// The crash-tolerant skeleton (test/debug/stats aid).
  Skeleton &skeleton() { return Strong; }
  const Skeleton &skeleton() const { return Strong; }

  /// Path-attributed metrics of the skeleton (obs/PathCounters.h).
  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

private:
  template <typename AttemptFn>
  PushResult strongPush(std::uint32_t Tid, AttemptFn Attempt) {
    return Strong.strongApply(Tid, [&]() -> std::optional<PushResult> {
      const PushResult Res = Attempt();
      if (Res == PushResult::Abort)
        return std::nullopt; // res = bottom
      return Res;
    });
  }

  template <typename AttemptFn>
  PopResult<Value> strongPop(std::uint32_t Tid, AttemptFn Attempt) {
    return Strong.strongApply(
        Tid, [&]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Attempt();
          if (Res.isAbort())
            return std::nullopt; // res = bottom
          return Res;
        });
  }

  ObstructionFreeDeque Weak;
  Skeleton Strong;
};

} // namespace csobj

#endif // CSOBJ_CORE_CRASHTOLERANTDEQUE_H
