//===- core/NonBlockingQueue.h - Figure 2 applied to the queue --*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 2 retry construction over the abortable queue: enqueue and
/// dequeue never surface bottom, they retry instead. Non-blocking by the
/// same argument as the stack (an attempt only aborts because another
/// operation's C&S on the same register succeeded).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_NONBLOCKINGQUEUE_H
#define CSOBJ_CORE_NONBLOCKINGQUEUE_H

#include "core/AbortableQueue.h"
#include "core/NonBlockingStack.h"
#include "support/Backoff.h"

#include <cstdint>

namespace csobj {

/// Non-blocking bounded FIFO queue (Figure 2 over AbortableQueue).
template <typename Config = Compact64, typename RetryPolicy = NoBackoff>
class NonBlockingQueue {
public:
  using Value = typename Config::Value;

  explicit NonBlockingQueue(std::uint32_t Capacity) : Inner(Capacity) {}

  /// Retries weak_enqueue until it does not abort: Done or Full.
  PushResult enqueue(Value V) { return enqueueCounting(V).Result; }

  /// Retries weak_dequeue until it does not abort: a value or Empty.
  PopResult<Value> dequeue() { return dequeueCounting().Result; }

  Attempted<PushResult> enqueueCounting(Value V) {
    RetryPolicy Policy;
    Attempted<PushResult> Out{PushResult::Abort, 0};
    while (true) {
      Out.Result = Inner.weakEnqueue(V);
      if (Out.Result != PushResult::Abort)
        return Out;
      ++Out.Retries;
      Policy.onFailure();
    }
  }

  Attempted<PopResult<Value>> dequeueCounting() {
    RetryPolicy Policy;
    Attempted<PopResult<Value>> Out{PopResult<Value>::abort(), 0};
    while (true) {
      Out.Result = Inner.weakDequeue();
      if (!Out.Result.isAbort())
        return Out;
      ++Out.Retries;
      Policy.onFailure();
    }
  }

  std::uint32_t capacity() const { return Inner.capacity(); }
  std::uint32_t sizeForTesting() const { return Inner.sizeForTesting(); }

  /// The underlying abortable queue.
  AbortableQueue<Config> &abortable() { return Inner; }

private:
  AbortableQueue<Config> Inner;
};

} // namespace csobj

#endif // CSOBJ_CORE_NONBLOCKINGQUEUE_H
