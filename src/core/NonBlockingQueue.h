//===- core/NonBlockingQueue.h - Figure 2 applied to the queue --*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 2 retry construction over the abortable queue: enqueue and
/// dequeue never surface bottom, they retry instead. Non-blocking by the
/// same argument as the stack (an attempt only aborts because another
/// operation's C&S on the same register succeeded). The retry loop is
/// managed by a ContentionManager exactly as in NonBlockingStack.h.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_NONBLOCKINGQUEUE_H
#define CSOBJ_CORE_NONBLOCKINGQUEUE_H

#include "core/AbortableQueue.h"
#include "core/NonBlockingStack.h"
#include "support/ContentionManager.h"

#include <cstdint>

namespace csobj {

/// Non-blocking bounded FIFO queue (Figure 2 over AbortableQueue).
///
/// \tparam Manager ContentionManager for the retry loop.
/// \tparam Policy  register policy (Instrumented / Fast).
template <typename Config = Compact64,
          ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
class NonBlockingQueue {
public:
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;

  explicit NonBlockingQueue(std::uint32_t Capacity) : Inner(Capacity) {}

  /// Retries weak_enqueue until it does not abort: Done or Full.
  PushResult enqueue(Value V) { return enqueueCounting(V).Result; }

  /// Retries weak_dequeue until it does not abort: a value or Empty.
  PopResult<Value> dequeue() { return dequeueCounting().Result; }

  Attempted<PushResult> enqueueCounting(Value V) {
    Manager Mgr;
    Attempted<PushResult> Out{PushResult::Abort, 0};
    while (true) {
      Out.Result = Inner.weakEnqueue(V);
      if (Out.Result != PushResult::Abort) {
        Mgr.onSuccess();
        return Out;
      }
      ++Out.Retries;
      Mgr.onAbort();
    }
  }

  Attempted<PopResult<Value>> dequeueCounting() {
    Manager Mgr;
    Attempted<PopResult<Value>> Out{PopResult<Value>::abort(), 0};
    while (true) {
      Out.Result = Inner.weakDequeue();
      if (!Out.Result.isAbort()) {
        Mgr.onSuccess();
        return Out;
      }
      ++Out.Retries;
      Mgr.onAbort();
    }
  }

  std::uint32_t capacity() const { return Inner.capacity(); }
  std::uint32_t sizeForTesting() const { return Inner.sizeForTesting(); }

  /// The underlying abortable queue.
  AbortableQueue<Config, Policy> &abortable() { return Inner; }

private:
  AbortableQueue<Config, Policy> Inner;
};

} // namespace csobj

#endif // CSOBJ_CORE_NONBLOCKINGQUEUE_H
