//===- core/NonBlockingStack.h - The paper's Figure 2 -----------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 2: a linearizable *non-blocking* stack built on top of the
/// abortable stack of Figure 1 by retrying aborted operations:
///
///     repeat res <- weak_push(v) until res != bottom; return res.
///
/// No operation ever aborts; instead it may loop. The construction is
/// obstruction-free (a solo operation succeeds on its first attempt) and
/// non-blocking: whatever the contention pattern, at least one concurrent
/// operation terminates, because an attempt only aborts when some other
/// operation's TOP C&S succeeded.
///
/// The retry loop is managed by a ContentionManager
/// (support/ContentionManager.h): NoBackoff is the literal Figure 2;
/// ExponentialBackoff, YieldBackoff and AdaptiveBackoff are the
/// contention-managed variants (ablation experiments E8/E11). The manager
/// is told about every abort (onAbort) and the final completion
/// (onSuccess); on the solo path it is never consulted, so it adds
/// nothing to the contention-free access count.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_NONBLOCKINGSTACK_H
#define CSOBJ_CORE_NONBLOCKINGSTACK_H

#include "core/AbortableStack.h"
#include "support/ContentionManager.h"

#include <cstdint>

namespace csobj {

/// Outcome of a non-blocking operation together with the number of
/// aborted attempts that preceded it (0 = first try succeeded). Retry
/// counts feed experiment E3.
template <typename ResultT>
struct Attempted {
  ResultT Result;
  std::uint64_t Retries = 0;
};

/// Figure 2: non-blocking bounded stack.
///
/// \tparam Config  codec family (Compact64 / Wide128), see Figure 1.
/// \tparam Manager ContentionManager for the retry loop (NoBackoff is
///                 paper-literal).
/// \tparam Policy  register policy (Instrumented / Fast).
template <typename Config = Compact64,
          ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
class NonBlockingStack {
public:
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;
  static constexpr Value Bottom = AbortableStack<Config, Policy>::Bottom;

  explicit NonBlockingStack(std::uint32_t Capacity) : Inner(Capacity) {}

  /// non_blocking_push(v): retries weak_push until it does not abort.
  /// Returns Done or Full (never Abort).
  PushResult push(Value V) { return pushCounting(V).Result; }

  /// non_blocking_pop(): retries weak_pop until it does not abort.
  /// Returns a value or Empty (never Abort).
  PopResult<Value> pop() { return popCounting().Result; }

  /// push plus the number of aborted attempts.
  Attempted<PushResult> pushCounting(Value V) {
    Manager Mgr;
    Attempted<PushResult> Out{PushResult::Abort, 0};
    while (true) {
      Out.Result = Inner.weakPush(V);
      if (Out.Result != PushResult::Abort) {
        Mgr.onSuccess();
        return Out;
      }
      ++Out.Retries;
      Mgr.onAbort();
    }
  }

  /// pop plus the number of aborted attempts.
  Attempted<PopResult<Value>> popCounting() {
    Manager Mgr;
    Attempted<PopResult<Value>> Out{PopResult<Value>::abort(), 0};
    while (true) {
      Out.Result = Inner.weakPop();
      if (!Out.Result.isAbort()) {
        Mgr.onSuccess();
        return Out;
      }
      ++Out.Retries;
      Mgr.onAbort();
    }
  }

  std::uint32_t capacity() const { return Inner.capacity(); }
  std::uint32_t sizeForTesting() const { return Inner.sizeForTesting(); }

  /// The underlying Figure 1 object (shared with Figure 3 constructions).
  AbortableStack<Config, Policy> &abortable() { return Inner; }

private:
  AbortableStack<Config, Policy> Inner;
};

} // namespace csobj

#endif // CSOBJ_CORE_NONBLOCKINGSTACK_H
