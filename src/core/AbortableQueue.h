//===- core/AbortableQueue.h - Abortable array-based queue ------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The companion object of the paper's stack: an abortable bounded FIFO
/// queue in the lazy-helping style of Shafiei's array-based algorithms
/// (the paper's reference [22], which covers stacks *and* queues). The
/// paper motivates contention-sensitiveness with "enqueuing and dequeuing
/// on a non-empty queue" as the canonical pair of *non-interfering*
/// operations — this object realizes that: enqueue operations C&S only
/// REAR, dequeue operations C&S only FRONT, so on a non-empty non-full
/// queue they never abort each other (experiment E7).
///
/// Representation (ring of Capacity+1 slots; one is kept free to separate
/// full from empty):
///  * REAR  = <index, value, seqnb>: the last enqueued position, lazy
///    exactly like the stack's TOP — the value is written into
///    ITEMS[index] by the *next* operation's help.
///  * FRONT = <index, cycle>: the position *before* the oldest element
///    (the queue's dummy). The tag counts completed ring cycles (it
///    increments only when INDEX wraps to 0), which both serves as the
///    ABA tag for the FRONT C&S and lets a dequeue compute the exact
///    generation number its target slot must carry (see below).
///  * ITEMS[0..Capacity]: <val, sn> pairs as in the stack. A slot's sn
///    counts how many times the slot has been occupied: enqueues derive
///    each new REAR seqnb from the slot's previous sn + 1, so every slot
///    carries sn = o during its o-th occupancy. Slot 0 starts at sn = -1
///    so that absorbing the help of the initial dummy REAR <0, bot, 0>
///    lands it on sn = 0, the same footing as the other slots.
///
/// Full/empty answers need care that the single-register stack does not:
/// REAR and FRONT cannot be read in one atomic snapshot. Where the paper
/// would need a proof that a stale snapshot still linearizes, this
/// implementation re-validates both registers and *aborts when
/// uncertain* — which abortable semantics explicitly permit (a solo
/// operation never takes these abort paths, as the tests verify).
///
/// The value read also needs certifying. Slot contents are governed by
/// REAR (helped lazily), not FRONT, so a dequeue delayed between its
/// REAR read and its FRONT C&S can observe ITEMS[next(FRONT)] holding
/// the *previous* generation's value — the current occupant's value
/// still unhelped inside REAR — and the FRONT C&S alone would publish
/// that stale value a second time. The cycle tag in FRONT closes the
/// hole for free: the dequeuer knows the exact sn its slot must carry,
/// and on a mismatch the only legal cause (while FRONT is unmoved,
/// which the C&S certifies) is that the current REAR is the unhelped
/// enqueue of that very slot. It re-reads REAR, demands exactly that
/// <index, seqnb>, helps it, and completes with REAR's value; any other
/// disagreement aborts. Solo cost stays at six accesses — the detour
/// (three extra accesses, still bounded) is taken only under
/// concurrency, and a dequeue never aborts merely because REAR advanced,
/// preserving the paper's enqueue/dequeue non-interference.
///
/// Memory orderings (audited for the Fast register policy; identical
/// under Instrumented): ITEMS reads are acquire and every C&S is acq_rel,
/// by the same publish/observe happens-before chain as the stack's TOP
/// (core/AbortableStack.h). Reads of REAR and FRONT stay seq_cst: the
/// full/empty certification argues about a *cross-register* snapshot
/// ("FRONT was unchanged while REAR was re-read"), which leans on a total
/// order over these four loads — exactly what seq_cst provides and
/// acquire alone does not promise in the C++ abstract machine.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_ABORTABLEQUEUE_H
#define CSOBJ_CORE_ABORTABLEQUEUE_H

#include "core/Results.h"
#include "memory/AtomicRegister.h"
#include "memory/TaggedValue.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace csobj {

/// Abortable, linearizable, lock-free bounded FIFO queue.
///
/// \tparam Policy register policy (Instrumented / Fast), see
///         memory/RegisterPolicy.h.
template <typename Config = Compact64,
          typename Policy = DefaultRegisterPolicy>
class AbortableQueue {
public:
  using TopC = typename Config::Top;   ///< Codec for REAR (a triple).
  using SlotC = typename Config::Slot; ///< Codec for ITEMS and FRONT.
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;

  static constexpr Value Bottom = TopC::Bottom;

  /// Creates a queue holding up to \p Capacity elements.
  explicit AbortableQueue(std::uint32_t Capacity)
      : K(Capacity), Ring(Capacity + 1),
        Items(new AtomicRegister<SlotWord, Policy>[Capacity + 1]) {
    assert(Capacity >= 1 && "queue capacity must be positive");
    assert(Capacity + 1 <= TopC::MaxIndex && "capacity exceeds index field");
    Rear.write(TopC::pack({/*Index=*/0, /*Value=*/Bottom, /*Seq=*/0}));
    Front.write(SlotC::pack({/*Value=*/0, /*Seq=*/0}));
    Items[0].write(SlotC::pack({Bottom, TopC::seqAdd(0, -1)}));
    for (std::uint32_t X = 1; X < Ring; ++X)
      Items[X].write(SlotC::pack({Bottom, 0}));
  }

  /// weak_enqueue(v): Done, Full, or Abort. Solo operations never abort.
  PushResult weakEnqueue(Value V) {
    assert(V != Bottom && "cannot enqueue the reserved bottom value");
    const TopWord RearW = Rear.read();
    const TopFields<Value> R = TopC::unpack(RearW);
    helpRear(R);
    const SlotWord FrontW = Front.read();
    const std::uint32_t FrontIdx = frontIndex(FrontW);
    if (next(R.Index) == FrontIdx) {
      // Possibly full; certify against stale REAR/FRONT (see file
      // comment) or abort under concurrency.
      if (Rear.read() != RearW)
        return PushResult::Abort;
      if (Front.read() != FrontW)
        return PushResult::Abort;
      return PushResult::Full;
    }
    const SlotFields<Value> Next = SlotC::unpack(
        Items[next(R.Index)].read(std::memory_order_acquire));
    const TopWord NewRear =
        TopC::pack({next(R.Index), V, TopC::seqAdd(Next.Seq, +1)});
    if (Rear.compareAndSwap(RearW, NewRear, std::memory_order_acq_rel))
      return PushResult::Done;
    return PushResult::Abort;
  }

  /// weak_dequeue(): the oldest value, Empty, or Abort. Solo operations
  /// never abort.
  PopResult<Value> weakDequeue() {
    const TopWord RearW = Rear.read();
    const TopFields<Value> R = TopC::unpack(RearW);
    helpRear(R);
    const SlotWord FrontW = Front.read();
    const std::uint32_t FrontIdx = frontIndex(FrontW);
    if (FrontIdx == R.Index) {
      // Possibly empty; certify: REAR still at FRONT's position and
      // FRONT unmoved => the queue was empty at the FRONT re-read.
      const TopFields<Value> R2 = TopC::unpack(Rear.read());
      if (R2.Index != FrontIdx)
        return PopResult<Value>::abort();
      if (Front.read() != FrontW)
        return PopResult<Value>::abort();
      return PopResult<Value>::empty();
    }
    const std::uint32_t OldestIdx = next(FrontIdx);
    const SlotFields<Value> Oldest = SlotC::unpack(
        Items[OldestIdx].read(std::memory_order_acquire));
    // Generation certificate (see file comment): with c completed ring
    // cycles recorded in FRONT, the oldest slot is in occupancy c + 1
    // and must carry exactly that sn.
    const std::uint32_t Cycle = frontCycle(FrontW);
    const std::uint32_t Expected = TopC::seqAdd(Cycle, +1);
    Value Out = Oldest.Value;
    if (Oldest.Seq != Expected) {
      // Stale slot. The only legal cause while FRONT is unmoved (which
      // the C&S below certifies) is that the current REAR is the
      // still-unhelped enqueue of this very slot: demand exactly that,
      // help it, and take the value from REAR itself.
      const TopFields<Value> R2 = TopC::unpack(Rear.read());
      if (R2.Index != OldestIdx || R2.Seq != Expected)
        return PopResult<Value>::abort();
      helpRear(R2);
      Out = R2.Value;
    }
    const SlotWord NewFront = SlotC::pack(
        {static_cast<Value>(OldestIdx),
         OldestIdx == 0 ? TopC::seqAdd(Cycle, +1) : Cycle});
    if (Front.compareAndSwap(FrontW, NewFront, std::memory_order_acq_rel))
      return PopResult<Value>::value(Out);
    return PopResult<Value>::abort();
  }

  std::uint32_t capacity() const { return K; }

  /// Heap owned by the queue: the ITEMS ring (k + 1 slots).
  std::size_t heapBytes() const {
    return std::size_t{Ring} * sizeof(AtomicRegister<SlotWord, Policy>);
  }

  /// Quiescent-only element count (test/debug aid).
  std::uint32_t sizeForTesting() const {
    const std::uint32_t R = TopC::unpack(Rear.peekForTesting()).Index;
    const std::uint32_t F = frontIndex(Front.peekForTesting());
    return (R + Ring - F) % Ring;
  }

private:
  using TopWord = typename TopC::Word;
  using SlotWord = typename SlotC::Word;

  std::uint32_t next(std::uint32_t Index) const {
    return (Index + 1) % Ring;
  }

  static std::uint32_t frontIndex(SlotWord W) {
    return static_cast<std::uint32_t>(SlotC::unpack(W).Value);
  }
  /// FRONT's tag: completed ring cycles (increments on index wrap).
  static std::uint32_t frontCycle(SlotWord W) {
    return SlotC::unpack(W).Seq;
  }

  /// Completes the lazy ITEMS write of the last enqueue recorded in REAR
  /// (identical to the stack's help, lines 15-16 of Figure 1).
  void helpRear(const TopFields<Value> &R) {
    const SlotFields<Value> Cur = SlotC::unpack(
        Items[R.Index].read(std::memory_order_acquire));
    Items[R.Index].compareAndSwap(
        SlotC::pack({Cur.Value, TopC::seqAdd(R.Seq, -1)}),
        SlotC::pack({R.Value, R.Seq}), std::memory_order_acq_rel);
  }

  const std::uint32_t K;
  const std::uint32_t Ring; ///< Number of slots (K + 1).
  AtomicRegister<TopWord, Policy> Rear;
  AtomicRegister<SlotWord, Policy> Front;
  std::unique_ptr<AtomicRegister<SlotWord, Policy>[]> Items;
};

} // namespace csobj

#endif // CSOBJ_CORE_ABORTABLEQUEUE_H
