//===- core/AbortableQueue.h - Abortable array-based queue ------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The companion object of the paper's stack: an abortable bounded FIFO
/// queue in the lazy-helping style of Shafiei's array-based algorithms
/// (the paper's reference [22], which covers stacks *and* queues). The
/// paper motivates contention-sensitiveness with "enqueuing and dequeuing
/// on a non-empty queue" as the canonical pair of *non-interfering*
/// operations — this object realizes that: enqueue operations C&S only
/// REAR, dequeue operations C&S only FRONT, so on a non-empty non-full
/// queue they never abort each other (experiment E7).
///
/// Representation (ring of Capacity+1 slots; one is kept free to separate
/// full from empty):
///  * REAR  = <index, value, seqnb>: the last enqueued position, lazy
///    exactly like the stack's TOP — the value is written into
///    ITEMS[index] by the *next* operation's help.
///  * FRONT = <index, seqnb>: the position *before* the oldest element
///    (the queue's dummy); its seqnb is a pure ABA tag.
///  * ITEMS[0..Capacity]: <val, sn> pairs as in the stack.
///
/// Full/empty answers need care that the single-register stack does not:
/// REAR and FRONT cannot be read in one atomic snapshot. Where the paper
/// would need a proof that a stale snapshot still linearizes, this
/// implementation re-validates both registers and *aborts when
/// uncertain* — which abortable semantics explicitly permit (a solo
/// operation never takes these abort paths, as the tests verify).
///
/// Memory orderings (audited for the Fast register policy; identical
/// under Instrumented): ITEMS reads are acquire and every C&S is acq_rel,
/// by the same publish/observe happens-before chain as the stack's TOP
/// (core/AbortableStack.h). Reads of REAR and FRONT stay seq_cst: the
/// full/empty certification argues about a *cross-register* snapshot
/// ("FRONT was unchanged while REAR was re-read"), which leans on a total
/// order over these four loads — exactly what seq_cst provides and
/// acquire alone does not promise in the C++ abstract machine.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_CORE_ABORTABLEQUEUE_H
#define CSOBJ_CORE_ABORTABLEQUEUE_H

#include "core/Results.h"
#include "memory/AtomicRegister.h"
#include "memory/TaggedValue.h"

#include <cassert>
#include <cstdint>
#include <memory>

namespace csobj {

/// Abortable, linearizable, lock-free bounded FIFO queue.
///
/// \tparam Policy register policy (Instrumented / Fast), see
///         memory/RegisterPolicy.h.
template <typename Config = Compact64,
          typename Policy = DefaultRegisterPolicy>
class AbortableQueue {
public:
  using TopC = typename Config::Top;   ///< Codec for REAR (a triple).
  using SlotC = typename Config::Slot; ///< Codec for ITEMS and FRONT.
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;

  static constexpr Value Bottom = TopC::Bottom;

  /// Creates a queue holding up to \p Capacity elements.
  explicit AbortableQueue(std::uint32_t Capacity)
      : K(Capacity), Ring(Capacity + 1),
        Items(new AtomicRegister<SlotWord, Policy>[Capacity + 1]) {
    assert(Capacity >= 1 && "queue capacity must be positive");
    assert(Capacity + 1 <= TopC::MaxIndex && "capacity exceeds index field");
    Rear.write(TopC::pack({/*Index=*/0, /*Value=*/Bottom, /*Seq=*/0}));
    Front.write(SlotC::pack({/*Value=*/0, /*Seq=*/0}));
    Items[0].write(SlotC::pack({Bottom, TopC::seqAdd(0, -1)}));
    for (std::uint32_t X = 1; X < Ring; ++X)
      Items[X].write(SlotC::pack({Bottom, 0}));
  }

  /// weak_enqueue(v): Done, Full, or Abort. Solo operations never abort.
  PushResult weakEnqueue(Value V) {
    assert(V != Bottom && "cannot enqueue the reserved bottom value");
    const TopWord RearW = Rear.read();
    const TopFields<Value> R = TopC::unpack(RearW);
    helpRear(R);
    const SlotWord FrontW = Front.read();
    const std::uint32_t FrontIdx = frontIndex(FrontW);
    if (next(R.Index) == FrontIdx) {
      // Possibly full; certify against stale REAR/FRONT (see file
      // comment) or abort under concurrency.
      if (Rear.read() != RearW)
        return PushResult::Abort;
      if (Front.read() != FrontW)
        return PushResult::Abort;
      return PushResult::Full;
    }
    const SlotFields<Value> Next = SlotC::unpack(
        Items[next(R.Index)].read(std::memory_order_acquire));
    const TopWord NewRear =
        TopC::pack({next(R.Index), V, TopC::seqAdd(Next.Seq, +1)});
    if (Rear.compareAndSwap(RearW, NewRear, std::memory_order_acq_rel))
      return PushResult::Done;
    return PushResult::Abort;
  }

  /// weak_dequeue(): the oldest value, Empty, or Abort. Solo operations
  /// never abort.
  PopResult<Value> weakDequeue() {
    const TopWord RearW = Rear.read();
    const TopFields<Value> R = TopC::unpack(RearW);
    helpRear(R);
    const SlotWord FrontW = Front.read();
    const std::uint32_t FrontIdx = frontIndex(FrontW);
    if (FrontIdx == R.Index) {
      // Possibly empty; certify: REAR still at FRONT's position and
      // FRONT unmoved => the queue was empty at the FRONT re-read.
      const TopFields<Value> R2 = TopC::unpack(Rear.read());
      if (R2.Index != FrontIdx)
        return PopResult<Value>::abort();
      if (Front.read() != FrontW)
        return PopResult<Value>::abort();
      return PopResult<Value>::empty();
    }
    const SlotFields<Value> Oldest = SlotC::unpack(
        Items[next(FrontIdx)].read(std::memory_order_acquire));
    const SlotWord NewFront = SlotC::pack(
        {static_cast<Value>(next(FrontIdx)),
         TopC::seqAdd(frontSeq(FrontW), +1)});
    if (Front.compareAndSwap(FrontW, NewFront, std::memory_order_acq_rel))
      return PopResult<Value>::value(Oldest.Value);
    return PopResult<Value>::abort();
  }

  std::uint32_t capacity() const { return K; }

  /// Quiescent-only element count (test/debug aid).
  std::uint32_t sizeForTesting() const {
    const std::uint32_t R = TopC::unpack(Rear.peekForTesting()).Index;
    const std::uint32_t F = frontIndex(Front.peekForTesting());
    return (R + Ring - F) % Ring;
  }

private:
  using TopWord = typename TopC::Word;
  using SlotWord = typename SlotC::Word;

  std::uint32_t next(std::uint32_t Index) const {
    return (Index + 1) % Ring;
  }

  static std::uint32_t frontIndex(SlotWord W) {
    return static_cast<std::uint32_t>(SlotC::unpack(W).Value);
  }
  static std::uint32_t frontSeq(SlotWord W) { return SlotC::unpack(W).Seq; }

  /// Completes the lazy ITEMS write of the last enqueue recorded in REAR
  /// (identical to the stack's help, lines 15-16 of Figure 1).
  void helpRear(const TopFields<Value> &R) {
    const SlotFields<Value> Cur = SlotC::unpack(
        Items[R.Index].read(std::memory_order_acquire));
    Items[R.Index].compareAndSwap(
        SlotC::pack({Cur.Value, TopC::seqAdd(R.Seq, -1)}),
        SlotC::pack({R.Value, R.Seq}), std::memory_order_acq_rel);
  }

  const std::uint32_t K;
  const std::uint32_t Ring; ///< Number of slots (K + 1).
  AtomicRegister<TopWord, Policy> Rear;
  AtomicRegister<SlotWord, Policy> Front;
  std::unique_ptr<AtomicRegister<SlotWord, Policy>[]> Items;
};

} // namespace csobj

#endif // CSOBJ_CORE_ABORTABLEQUEUE_H
