//===- soak/ArrivalSchedule.h - Open-loop arrival generation ----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Open-loop load description for the soak harness (soak/SoakHarness.h).
/// Every measurement the repo shipped before this layer was closed-loop:
/// each thread issues its next operation only after the previous one
/// completes, so when the object slows down the offered load politely
/// slows down with it and overload is invisible. A service does not get
/// that courtesy. An ArrivalSchedule instead describes *when requests
/// arrive* independent of how fast they are served:
///
///  * a cycled piecewise-linear rate profile (the "diurnal" ramp — e.g.
///    20k/s climbing to 40k/s and back),
///  * a Poisson burst overlay (exponentially spaced bursts that multiply
///    the base rate for a fixed duration — flash crowds),
///  * per-arrival operation mix (push percent) and hot-key skew: keys
///    index an object-instance pool and are drawn Zipf(S), so a few
///    instances absorb most of the traffic like a hot shard does.
///
/// ArrivalStream turns the schedule into a concrete arrival sequence:
/// nominal timestamps via exponential inter-arrival gaps -ln(U)/rate(t),
/// fully deterministic given (schedule, seed). The stream knows nothing
/// about wall clocks — the harness's generator thread replays it in real
/// time and keeps each arrival's *nominal* timestamp, so sojourn latency
/// (completion minus nominal arrival) measures queueing delay without
/// coordinated omission: a late generator cannot hide a backlog.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SOAK_ARRIVALSCHEDULE_H
#define CSOBJ_SOAK_ARRIVALSCHEDULE_H

#include "support/SplitMix64.h"

#include <cmath>
#include <cstdint>
#include <vector>

namespace csobj {
namespace soak {

/// Open-loop load profile: rate over time plus per-arrival shape.
struct ArrivalSchedule {
  /// One leg of the rate profile: the offered rate moves linearly from
  /// StartRate to EndRate ops/sec over DurationSec.
  struct Phase {
    double DurationSec = 1.0;
    double StartRate = 1000.0;
    double EndRate = 1000.0;
  };

  /// The profile, cycled: after the last phase the first begins again,
  /// so a 60s soak over a 10s profile sees six "days".
  std::vector<Phase> Phases;

  /// Poisson burst overlay: bursts start with exponentially distributed
  /// gaps of mean BurstMeanPeriodSec, last BurstDurationSec, and
  /// multiply the base rate by BurstMultiplier. MeanPeriod 0 = no
  /// bursts.
  double BurstMeanPeriodSec = 0.0;
  double BurstDurationSec = 0.0;
  double BurstMultiplier = 1.0;

  /// Keys index the harness's object-instance pool ([0, Keys)); drawn
  /// Zipf(ZipfS) so low keys are hot. ZipfS = 0 is uniform.
  std::uint32_t Keys = 1;
  double ZipfS = 0.0;

  /// Percent of arrivals that are pushes.
  std::uint32_t PushPercent = 50;

  double cycleSec() const {
    double Total = 0;
    for (const Phase &P : Phases)
      Total += P.DurationSec;
    return Total;
  }

  /// Base (burst-free) rate at absolute time \p TSec, cycling the
  /// profile. A schedule with no phases offers a flat 1000 ops/sec.
  double baseRateAt(double TSec) const {
    if (Phases.empty())
      return 1000.0;
    const double Cycle = cycleSec();
    double T = Cycle > 0 ? std::fmod(TSec, Cycle) : 0.0;
    for (const Phase &P : Phases) {
      if (T < P.DurationSec || P.DurationSec <= 0) {
        const double F = P.DurationSec > 0 ? T / P.DurationSec : 0.0;
        return P.StartRate + (P.EndRate - P.StartRate) * F;
      }
      T -= P.DurationSec;
    }
    return Phases.back().EndRate;
  }

  /// Convenience: a flat \p Rate ops/sec profile.
  static ArrivalSchedule flat(double Rate) {
    ArrivalSchedule S;
    S.Phases.push_back({1.0, Rate, Rate});
    return S;
  }
};

/// One arrival. NominalNs is the scheduled arrival instant relative to
/// the stream's origin; the harness keeps it through the queue so
/// sojourn latency is measured from when the request *should* have
/// arrived, not from when an overloaded generator got around to it.
struct Arrival {
  std::uint64_t NominalNs = 0;
  std::uint32_t Key = 0;
  bool IsPush = true;
  std::uint32_t Value = 0;
};

/// Deterministic realisation of an ArrivalSchedule: same (schedule,
/// seed) — same sequence of arrivals, timestamps included. Not thread
/// safe; owned by the single generator thread.
class ArrivalStream {
public:
  ArrivalStream(const ArrivalSchedule &Schedule, std::uint64_t Seed)
      : Schedule(Schedule), Rng(Seed) {
    // Zipf CDF over the key pool, computed once. Weight(k) = 1/(k+1)^S.
    const std::uint32_t Keys = Schedule.Keys ? Schedule.Keys : 1;
    KeyCdf.reserve(Keys);
    double Total = 0;
    for (std::uint32_t K = 0; K < Keys; ++K) {
      Total += 1.0 / std::pow(static_cast<double>(K + 1), Schedule.ZipfS);
      KeyCdf.push_back(Total);
    }
    for (double &C : KeyCdf)
      C /= Total;
    if (Schedule.BurstMeanPeriodSec > 0)
      NextBurstStartSec = expGap(Schedule.BurstMeanPeriodSec);
  }

  /// Produces the next arrival (strictly non-decreasing NominalNs).
  Arrival next() {
    // Advance the burst state machine past NowSec.
    double Multiplier = 1.0;
    if (Schedule.BurstMeanPeriodSec > 0) {
      while (NowSec >= NextBurstStartSec + Schedule.BurstDurationSec)
        NextBurstStartSec = NextBurstStartSec + Schedule.BurstDurationSec +
                            expGap(Schedule.BurstMeanPeriodSec);
      if (NowSec >= NextBurstStartSec)
        Multiplier = Schedule.BurstMultiplier;
    }
    const double Rate =
        std::max(Schedule.baseRateAt(NowSec) * Multiplier, 1e-6);
    NowSec += expGap(1.0 / Rate);

    Arrival A;
    A.NominalNs = static_cast<std::uint64_t>(NowSec * 1e9);
    A.Key = drawKey();
    A.IsPush = Rng.chance(Schedule.PushPercent, 100);
    A.Value = static_cast<std::uint32_t>(Rng.below(1u << 31));
    return A;
  }

  /// Stream time after the most recent arrival, in seconds.
  double nowSec() const { return NowSec; }

private:
  /// Exponential gap with mean \p MeanSec, strictly positive.
  double expGap(double MeanSec) {
    // 53 uniform bits in (0, 1]; log of that is finite and <= 0.
    const double U =
        (static_cast<double>(Rng() >> 11) + 1.0) * 0x1.0p-53;
    return -std::log(U) * MeanSec;
  }

  std::uint32_t drawKey() {
    if (KeyCdf.size() <= 1)
      return 0;
    const double U = static_cast<double>(Rng() >> 11) * 0x1.0p-53;
    // Linear scan: the pool is small (tens of instances) and the CDF is
    // front-loaded under Zipf, so most draws stop in the first buckets.
    for (std::uint32_t K = 0; K < KeyCdf.size(); ++K)
      if (U < KeyCdf[K])
        return K;
    return static_cast<std::uint32_t>(KeyCdf.size() - 1);
  }

  ArrivalSchedule Schedule;
  SplitMix64 Rng;
  std::vector<double> KeyCdf;
  double NowSec = 0.0;
  double NextBurstStartSec = 0.0;
};

} // namespace soak
} // namespace csobj

#endif // CSOBJ_SOAK_ARRIVALSCHEDULE_H
