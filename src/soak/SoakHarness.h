//===- soak/SoakHarness.h - Service-mode soak harness -----------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Long-running service-mode harness: the layer that checks the paper's
/// constructions survive *sustained* adversarial traffic, not just a
/// fixed-op batch. It composes the pieces the repo already has —
/// Driver-style worker loops, Watchdog liveness, the SchedHook fault
/// channel, PathSnapshot conservation — into an open-loop service:
///
///   generator thread --> bounded arrival queue --> worker pool
///        (ArrivalStream         (backlog and shed      (object-instance
///         replayed in            are *visible*          pool, hot keys,
///         real time)             overload)              resurrection)
///
/// plus a CampaignRunner posting recurring crash/stall faults into the
/// workers' hooks and a windowed collector freezing WindowStats every
/// WindowSec. Three properties distinguish this from the closed loop:
///
///  * Overload is observable: arrivals are generated on schedule whether
///    or not workers keep up; the queue grows, then sheds, and both
///    numbers land in the window record. Sojourn latency is measured
///    from the *nominal* arrival instant (coordinated-omission-free).
///  * Crashed workers resurrect: a campaign crash unwinds the worker's
///    current operation (ProcessCrash), and the worker re-enters its
///    loop under the same thread id — continuously exercising the
///    RecoverableArbiter reclamation and degraded-path machinery that a
///    one-shot crash test touches once.
///  * Accounting is checked, not trusted: every window re-verifies the
///    bounded conservation law over cumulative path counters, and the
///    final quiesce asserts the tight form (see soak/Slo.h).
///
/// runSoak() returns a SoakReport: the window series, whole-run
/// histograms and totals, and the SloVerdict for the policy in the
/// config. bench_soak serialises it into BENCH_soak.json.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SOAK_SOAKHARNESS_H
#define CSOBJ_SOAK_SOAKHARNESS_H

#include "memory/ChaosHook.h"
#include "memory/SchedHook.h"
#include "runtime/Watchdog.h"
#include "soak/ArrivalSchedule.h"
#include "soak/FaultCampaign.h"
#include "soak/Slo.h"
#include "support/SplitMix64.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace csobj {
namespace soak {

/// Everything a soak run needs. The adapter type is a template
/// parameter of runSoak(); it must satisfy the Driver adapter contract
/// (apply + prefillOne) with an (NumThreads, Capacity) constructor.
struct SoakConfig {
  std::uint32_t Workers = 2;
  std::uint32_t Capacity = 4096;      ///< Per object instance.
  std::uint32_t PrefillPercent = 50;  ///< Of capacity, per instance.
  double DurationSec = 10.0;
  double WindowSec = 1.0;
  std::uint64_t Seed = 42;
  /// Backlog bound: arrivals beyond this queue depth are shed (counted,
  /// not silently dropped).
  std::size_t QueueCapacity = 1u << 16;
  /// Per-operation liveness deadline (runtime/Watchdog.h); 0 disables.
  std::uint64_t OpDeadlineNs = 0;
  /// Background asynchrony: yield probability per shared access
  /// (memory/ChaosHook.h), chained under the campaign hook.
  std::uint32_t ChaosYieldPermille = 0;

  ArrivalSchedule Schedule;
  Campaign Faults;
  SloPolicy Slo;
};

/// Finished-run report: window series + whole-run aggregates + verdict.
struct SoakReport {
  std::vector<WindowStats> Windows;
  double DurationSec = 0;

  std::uint64_t TotalArrivals = 0;
  std::uint64_t TotalCompleted = 0;
  std::uint64_t TotalShed = 0;
  std::uint64_t TotalCrashes = 0; ///< Executed (fired) campaign crashes.
  std::uint64_t TotalStalls = 0;  ///< Executed campaign stalls.
  std::uint64_t TotalStuckOps = 0;
  std::uint64_t CrashesPosted = 0;
  std::uint64_t StallsPosted = 0;

  obs::PathSnapshot FinalPaths; ///< Pool-wide cumulative, at quiesce.
  bool FinalConserves = true;   ///< Tight conservation at quiesce.

  LatencyHistogram RunSojourn;
  LatencyHistogram RunService;
  LatencyHistogram RunPathLatency[obs::NumPaths + 1];

  SloVerdict Verdict;

  double throughputOpsPerSec() const {
    return DurationSec > 0
               ? static_cast<double>(TotalCompleted) / DurationSec
               : 0.0;
  }
};

namespace detail {

/// Bounded MPMC arrival queue. The generator pushes in nominal-time
/// batches; workers pop with a short timeout so they can notice
/// shutdown. Arrivals beyond capacity are shed and counted — in an
/// open-loop harness losing track of dropped load would turn overload
/// back into silence.
class ArrivalQueue {
public:
  explicit ArrivalQueue(std::size_t Capacity) : Capacity(Capacity) {}

  /// Enqueues what fits; returns how many were shed.
  std::size_t pushBatch(const std::vector<Arrival> &Batch) {
    std::size_t ShedNow = 0;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      for (const Arrival &A : Batch) {
        if (Queue.size() >= Capacity) {
          ++ShedNow;
          continue;
        }
        Queue.push_back(A);
      }
      ShedTotal += ShedNow;
    }
    Cv.notify_all();
    return ShedNow;
  }

  /// Pops one arrival, waiting up to ~1ms. False on timeout or when the
  /// queue is closed and drained (check drained()).
  bool pop(Arrival &Out) {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait_for(Lock, std::chrono::milliseconds(1),
                [this] { return !Queue.empty() || Closed; });
    if (Queue.empty())
      return false;
    Out = Queue.front();
    Queue.pop_front();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Closed = true;
    }
    Cv.notify_all();
  }

  bool drained() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Closed && Queue.empty();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Queue.size();
  }

  std::uint64_t shedTotal() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return ShedTotal;
  }

private:
  const std::size_t Capacity;
  mutable std::mutex Mutex;
  std::condition_variable Cv;
  std::deque<Arrival> Queue;
  std::uint64_t ShedTotal = 0;
  bool Closed = false;
};

/// Per-worker measurement cell, swapped out by the collector once per
/// window. The mutex is essentially uncontended (one worker, one
/// once-a-second collector), so recording stays cheap.
struct WorkerCell {
  std::mutex Mutex;
  LatencyHistogram Sojourn;
  LatencyHistogram Service;
  LatencyHistogram PathLatency[obs::NumPaths + 1];
  std::uint64_t Completed = 0;

  void drainInto(WindowStats &W) {
    std::lock_guard<std::mutex> Lock(Mutex);
    W.Completed += Completed;
    W.Sojourn.merge(Sojourn);
    W.Service.merge(Service);
    for (unsigned P = 0; P <= obs::NumPaths; ++P)
      W.PathLatency[P].merge(PathLatency[P]);
    Completed = 0;
    Sojourn.reset();
    Service.reset();
    for (unsigned P = 0; P <= obs::NumPaths; ++P)
      PathLatency[P].reset();
  }
};

} // namespace detail

/// Runs the soak described by \p Config against a pool of AdapterT
/// instances (one per schedule key) and returns the full report. Blocks
/// for ~Config.DurationSec.
template <typename AdapterT>
SoakReport runSoak(const SoakConfig &Config) {
  using SteadyClock = std::chrono::steady_clock;
  const std::uint32_t Workers = Config.Workers;
  const std::uint32_t Keys = Config.Schedule.Keys ? Config.Schedule.Keys : 1;

  // Object-instance pool, prefilled single-threaded (no hooks installed
  // yet, so prefill cannot be faulted).
  std::vector<std::unique_ptr<AdapterT>> Pool;
  Pool.reserve(Keys);
  SplitMix64 PrefillRng(Config.Seed ^ 0xfeedfacecafebeefull);
  for (std::uint32_t K = 0; K < Keys; ++K) {
    Pool.push_back(std::make_unique<AdapterT>(Workers, Config.Capacity));
    const std::uint64_t PrefillCount =
        static_cast<std::uint64_t>(Config.Capacity) * Config.PrefillPercent /
        100;
    for (std::uint64_t I = 0; I < PrefillCount; ++I)
      Pool.back()->prefillOne(
          static_cast<std::uint32_t>(PrefillRng.below(1u << 31)));
  }

  auto poolSnapshot = [&] {
    obs::PathSnapshot S;
    for (const auto &A : Pool)
      if constexpr (requires { A->pathSnapshot(); })
        S += A->pathSnapshot();
    return S;
  };

  detail::ArrivalQueue Queue(Config.QueueCapacity);
  std::vector<std::unique_ptr<detail::WorkerCell>> Cells;
  std::vector<std::unique_ptr<CampaignHook>> Hooks;
  FaultClock Clock;
  for (std::uint32_t T = 0; T < Workers; ++T) {
    Cells.push_back(std::make_unique<detail::WorkerCell>());
    Hooks.push_back(std::make_unique<CampaignHook>(Clock));
  }

  // Each worker's most recent key: lets the watchdog's path probe ask
  // the right pool instance about a wedged worker's last completed path.
  std::unique_ptr<std::atomic<std::uint32_t>[]> LastKey(
      new std::atomic<std::uint32_t>[Workers]);
  for (std::uint32_t T = 0; T < Workers; ++T)
    LastKey[T].store(0, std::memory_order_relaxed);

  Watchdog Dog(Workers, Config.OpDeadlineNs);
  if constexpr (requires(AdapterT &A) { A.lastPath(std::uint32_t{0}); })
    Dog.setPathProbe([&](std::uint32_t T) {
      return Pool[LastKey[T].load(std::memory_order_relaxed)]->lastPath(T);
    });
  Dog.start();

  std::vector<CampaignHook *> HookPtrs;
  for (auto &H : Hooks)
    HookPtrs.push_back(H.get());
  CampaignRunner Campaigns(Config.Faults, std::move(HookPtrs));

  std::atomic<bool> StopGenerator{false};
  std::atomic<std::uint64_t> ArrivalsGenerated{0};
  const SteadyClock::time_point Origin = SteadyClock::now();
  auto elapsedNs = [Origin] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - Origin)
            .count());
  };

  // Generator: replays the deterministic stream in real time, batching
  // everything due by "now" under one queue lock (~1ms granularity, the
  // sleep quantum). Nominal timestamps ride along untouched.
  std::thread Generator([&] {
    ArrivalStream Stream(Config.Schedule, Config.Seed);
    Arrival Next = Stream.next();
    std::vector<Arrival> Batch;
    while (!StopGenerator.load(std::memory_order_relaxed)) {
      const std::uint64_t Now = elapsedNs();
      if (Next.NominalNs > Now) {
        const std::uint64_t GapNs = Next.NominalNs - Now;
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            std::min<std::uint64_t>(GapNs, 1000 * 1000)));
        continue;
      }
      Batch.clear();
      while (Next.NominalNs <= Now) {
        Batch.push_back(Next);
        Next = Stream.next();
      }
      ArrivalsGenerated.fetch_add(Batch.size(), std::memory_order_relaxed);
      Queue.pushBatch(Batch);
    }
  });

  std::vector<std::thread> WorkerThreads;
  WorkerThreads.reserve(Workers);
  for (std::uint32_t Tid = 0; Tid < Workers; ++Tid) {
    WorkerThreads.emplace_back([&, Tid] {
      ChaosHook Chaos(Config.Seed ^ (Tid * 0x9e3779b9u),
                      Config.ChaosYieldPermille, 0, 0);
      CampaignHook &Hook = *Hooks[Tid];
      // Rebind the hook's inner chain to this thread's chaos hook.
      // (CampaignHook is constructed before threads exist; the chain is
      // installed here, before the hook can fire on this thread.)
      if (Config.ChaosYieldPermille > 0)
        Hook.setInner(&Chaos);
      SchedHookScope Scope(Hook);
      detail::WorkerCell &Cell = *Cells[Tid];
      Arrival A;
      while (true) {
        if (!Queue.pop(A)) {
          if (Queue.drained())
            break;
          continue;
        }
        LastKey[Tid].store(A.Key, std::memory_order_relaxed);
        AdapterT &Obj = *Pool[A.Key];
        std::uint64_t Retries = 0;
        Dog.arm(Tid);
        const std::uint64_t BeginNs = elapsedNs();
        bool Crashed = false;
        try {
          (void)Obj.apply(Tid, A.IsPush, A.Value, Retries);
        } catch (const ProcessCrash &) {
          // Crash-stop, then resurrection: the "process" dies here and a
          // new one with the same id re-enters the loop — the scenario
          // the RecoverableArbiter's reclamation exists for. The
          // abandoned operation entered the path counters but never
          // retired; the conservation bound accounts for it.
          Crashed = true;
        }
        Dog.disarm(Tid);
        if (Crashed)
          continue;
        const std::uint64_t EndNs = elapsedNs();
        std::lock_guard<std::mutex> Lock(Cell.Mutex);
        ++Cell.Completed;
        Cell.Service.record(EndNs - BeginNs);
        Cell.Sojourn.record(EndNs - A.NominalNs);
        if constexpr (requires { Obj.lastPath(Tid); }) {
          const auto P = static_cast<unsigned>(Obj.lastPath(Tid));
          Cell.PathLatency[std::min(P, obs::NumPaths)].record(EndNs -
                                                              BeginNs);
        }
      }
    });
  }

  Campaigns.start();

  // Collector: freeze one WindowStats per WindowSec until the soak
  // duration elapses. Deltas come from cumulative counters so a slow
  // collector tick never loses events, only shifts them a window.
  SoakReport Report;
  const std::uint64_t WindowNs =
      static_cast<std::uint64_t>(Config.WindowSec * 1e9);
  const std::uint64_t DurationNs =
      static_cast<std::uint64_t>(Config.DurationSec * 1e9);
  obs::PathSnapshot PrevPaths;
  std::uint64_t PrevArrivals = 0, PrevShed = 0;
  std::uint64_t PrevCrashes = 0, PrevStalls = 0;
  std::uint64_t PrevWindowEndNs = 0;

  auto firedCrashes = [&] {
    std::uint64_t N = 0;
    for (const auto &H : Hooks)
      N += H->crashesFired();
    return N;
  };
  auto firedStalls = [&] {
    std::uint64_t N = 0;
    for (const auto &H : Hooks)
      N += H->stallsFired();
    return N;
  };

  auto collectWindow = [&](std::uint64_t Index) {
    WindowStats W;
    W.Index = Index;
    const std::uint64_t NowNs = elapsedNs();
    W.StartSec = static_cast<double>(PrevWindowEndNs) * 1e-9;
    W.DurationSec = static_cast<double>(NowNs - PrevWindowEndNs) * 1e-9;
    PrevWindowEndNs = NowNs;

    for (auto &Cell : Cells)
      Cell->drainInto(W);

    const std::uint64_t Arrivals =
        ArrivalsGenerated.load(std::memory_order_relaxed);
    const std::uint64_t Shed = Queue.shedTotal();
    const std::uint64_t Crashes = firedCrashes();
    const std::uint64_t Stalls = firedStalls();
    W.Arrivals = Arrivals - PrevArrivals;
    W.Shed = Shed - PrevShed;
    W.Crashes = Crashes - PrevCrashes;
    W.Stalls = Stalls - PrevStalls;
    PrevArrivals = Arrivals;
    PrevShed = Shed;
    PrevCrashes = Crashes;
    PrevStalls = Stalls;
    W.Backlog = Queue.depth();
    W.StuckOps = Dog.drainReports().size();

    const obs::PathSnapshot Cum = poolSnapshot();
    W.Paths = Cum;
    for (unsigned I = 0; I < obs::NumPaths; ++I)
      W.Paths.Paths[I] -= PrevPaths.Paths[I];
    for (unsigned I = 0; I < obs::NumEvents; ++I)
      W.Paths.Events[I] -= PrevPaths.Events[I];
    for (unsigned I = 0; I < obs::NumBatchBuckets; ++I)
      W.Paths.BatchBuckets[I] -= PrevPaths.BatchBuckets[I];
    W.Paths.Ops = Cum.Ops - PrevPaths.Ops;
    W.Paths.BatchOps = Cum.BatchOps - PrevPaths.BatchOps;
    PrevPaths = Cum;

    // Bounded mid-run conservation over cumulative counters: the gap
    // between entered and retired operations is at most one in-flight op
    // per worker plus one abandoned op per executed crash.
    const std::uint64_t Entered = Cum.Ops;
    const std::uint64_t Retired = Cum.pathTotal();
    W.Conserves =
        Entered >= Retired && Entered - Retired <= Workers + Crashes;

    Report.RunSojourn.merge(W.Sojourn);
    Report.RunService.merge(W.Service);
    for (unsigned P = 0; P <= obs::NumPaths; ++P)
      Report.RunPathLatency[P].merge(W.PathLatency[P]);
    Report.TotalCompleted += W.Completed;
    Report.TotalStuckOps += W.StuckOps;
    Report.Windows.push_back(std::move(W));
  };

  std::uint64_t WindowIndex = 0;
  while (true) {
    const std::uint64_t TargetNs =
        std::min<std::uint64_t>((WindowIndex + 1) * WindowNs, DurationNs);
    std::this_thread::sleep_until(Origin +
                                  std::chrono::nanoseconds(TargetNs));
    collectWindow(WindowIndex++);
    if (TargetNs >= DurationNs)
      break;
  }

  // Shutdown: silence the campaign, stop generating, drain the queue,
  // then quiesce and take the exact accounting.
  Campaigns.stop();
  StopGenerator.store(true, std::memory_order_relaxed);
  Generator.join();
  Queue.close();
  for (std::thread &T : WorkerThreads)
    T.join();
  Dog.stop();

  // Post-join drain: the workers cleared the backlog after the last
  // timed window; fold that tail into a final window so completed-op
  // totals match the arrival totals (minus shed and crash-abandoned).
  collectWindow(WindowIndex);

  Report.DurationSec = static_cast<double>(elapsedNs()) * 1e-9;
  Report.TotalArrivals = ArrivalsGenerated.load(std::memory_order_relaxed);
  Report.TotalShed = Queue.shedTotal();
  Report.TotalCrashes = firedCrashes();
  Report.TotalStalls = firedStalls();
  Report.CrashesPosted = Campaigns.crashesPosted();
  Report.StallsPosted = Campaigns.stallsPosted();
  Report.FinalPaths = poolSnapshot();
  // Quiesced: no in-flight ops, so the only legitimate gap between
  // entered and retired operations is one abandoned op per crash.
  const std::uint64_t Entered = Report.FinalPaths.Ops;
  const std::uint64_t Retired = Report.FinalPaths.pathTotal();
  const std::uint64_t Gap = Entered >= Retired ? Entered - Retired : 0;
  Report.FinalConserves =
      Entered >= Retired && Gap <= Report.TotalCrashes;

  Report.Verdict = evaluateSlo(Config.Slo, Report.Windows, Report.RunSojourn,
                               Report.RunPathLatency, Report.TotalStuckOps,
                               Report.TotalArrivals, Report.TotalShed);
  if (!Report.FinalConserves) {
    Report.Verdict.Pass = false;
    Report.Verdict.Violations.push_back(
        {"final_conservation", ~std::uint64_t{0}, static_cast<double>(Gap),
         static_cast<double>(Report.TotalCrashes)});
  }
  return Report;
}

} // namespace soak
} // namespace csobj

#endif // CSOBJ_SOAK_SOAKHARNESS_H
