//===- soak/FaultCampaign.h - Recurring wall-clock fault campaigns -*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phased wall-clock fault campaigns for the soak harness. A FaultPlan
/// (faults/FaultPlan.h) names faults by *access index* — exactly right
/// for deterministic tests, useless for "crash somebody roughly every
/// two seconds for a minute". A Campaign instead schedules faults in
/// wall-clock time, in phases (calm -> crash storm -> stall bursts ->
/// calm ...), and aims each one at a random live worker.
///
/// Delivery reuses the SchedHook channel end to end: each worker runs
/// with a CampaignHook installed, the campaign thread posts a command
/// into the victim's slot, and the victim executes it at its *next
/// shared access* — so campaign faults land at the same instrumented
/// access points as FaultInjector faults, never in harness code. A crash
/// raises the same ProcessCrash the closed-loop Driver knows; the soak
/// worker catches it and re-enters its loop with the same thread id,
/// which is precisely the resurrection scenario the crash-tolerant
/// construction's RecoverableArbiter exists for (abandoned doorway
/// entries must be reclaimed, the degraded path must absorb the churn).
/// Stalls reuse stallUntilForeignGrants, so a campaign stall behaves
/// byte-for-byte like a FaultPlan stall — long enough to expire leases,
/// escape-hatched so it cannot wedge the run.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SOAK_FAULTCAMPAIGN_H
#define CSOBJ_SOAK_FAULTCAMPAIGN_H

#include "faults/FaultInjector.h"
#include "memory/SchedHook.h"
#include "support/SplitMix64.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

namespace csobj {
namespace soak {

/// One wall-clock leg of a campaign. Within the phase, crash and stall
/// events fire with exponentially distributed gaps of the given mean
/// periods (0 = that fault kind is quiet this phase), each aimed at a
/// uniformly random worker.
struct CampaignPhase {
  double DurationSec = 1.0;
  double CrashMeanPeriodSec = 0.0;
  double StallMeanPeriodSec = 0.0;
  /// Length of a posted stall, in foreign shared-access grants.
  std::uint64_t StallGrants = 0;
};

/// A recurring fault campaign: phases walked in order and cycled for as
/// long as the soak runs.
struct Campaign {
  std::vector<CampaignPhase> Phases;
  std::uint64_t Seed = 0xca3f01d5ull;

  bool empty() const {
    for (const CampaignPhase &P : Phases)
      if (P.CrashMeanPeriodSec > 0 || P.StallMeanPeriodSec > 0)
        return false;
    return true;
  }

  double cycleSec() const {
    double Total = 0;
    for (const CampaignPhase &P : Phases)
      Total += P.DurationSec;
    return Total;
  }
};

/// Per-worker fault delivery point. The campaign thread posts at most
/// one pending command; the worker executes it at its next shared
/// access. Chains an optional inner hook (ChaosHook) so campaigns and
/// background asynchrony compose, and ticks the shared FaultClock so
/// stall grants mean the same thing they mean everywhere else.
class CampaignHook final : public SchedHook {
public:
  CampaignHook(FaultClock &Clock, SchedHook *Inner = nullptr)
      : Clock(Clock), Inner(Inner) {}

  /// Installs the inner hook chain. Called by the owning worker thread
  /// before the hook is activated (SchedHookScope), never after.
  void setInner(SchedHook *Hook) { Inner = Hook; }

  void beforeSharedAccess(AccessKind Kind) override {
    if (Inner)
      Inner->beforeSharedAccess(Kind);
    Clock.Ticks.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t C = Cmd.exchange(NoCmd, std::memory_order_acq_rel);
    if (C == NoCmd)
      return;
    if (C == CrashCmd) {
      CrashesFired.fetch_add(1, std::memory_order_relaxed);
      throw ProcessCrash{};
    }
    StallsFired.fetch_add(1, std::memory_order_relaxed);
    stallUntilForeignGrants(Clock, C);
  }

  /// Posts a crash-stop; overwrites any not-yet-executed command (a
  /// victim can only die once per posting anyway).
  void postCrash() { Cmd.store(CrashCmd, std::memory_order_release); }

  /// Posts a stall of \p Grants foreign accesses.
  void postStall(std::uint64_t Grants) {
    // Grants of 0 would alias NoCmd; a 1-grant stall is equally "none".
    Cmd.store(Grants ? Grants : 1, std::memory_order_release);
  }

  std::uint64_t crashesFired() const {
    return CrashesFired.load(std::memory_order_relaxed);
  }
  std::uint64_t stallsFired() const {
    return StallsFired.load(std::memory_order_relaxed);
  }

private:
  static constexpr std::uint64_t NoCmd = 0;
  static constexpr std::uint64_t CrashCmd = ~std::uint64_t{0};

  FaultClock &Clock;
  SchedHook *Inner;
  std::atomic<std::uint64_t> Cmd{NoCmd};
  std::atomic<std::uint64_t> CrashesFired{0};
  std::atomic<std::uint64_t> StallsFired{0};
};

/// Walks a Campaign in wall-clock time on its own thread, posting
/// commands into the workers' hooks. start()/stop() bracket the soak;
/// totals are the *posted* counts (a command posted in the final
/// instants may go unexecuted — compare with the hooks' fired counts).
class CampaignRunner {
public:
  CampaignRunner(const Campaign &Plan, std::vector<CampaignHook *> Hooks)
      : Plan(Plan), Hooks(std::move(Hooks)), Rng(Plan.Seed) {}

  ~CampaignRunner() { stop(); }

  CampaignRunner(const CampaignRunner &) = delete;
  CampaignRunner &operator=(const CampaignRunner &) = delete;

  void start() {
    if (Plan.empty() || Hooks.empty() || Thread.joinable())
      return;
    Stopping.store(false, std::memory_order_relaxed);
    Thread = std::thread([this] { run(); });
  }

  void stop() {
    if (!Thread.joinable())
      return;
    Stopping.store(true, std::memory_order_relaxed);
    Thread.join();
  }

  std::uint64_t crashesPosted() const {
    return CrashesPosted.load(std::memory_order_relaxed);
  }
  std::uint64_t stallsPosted() const {
    return StallsPosted.load(std::memory_order_relaxed);
  }

private:
  using Clock = std::chrono::steady_clock;

  double expGap(double MeanSec) {
    const double U =
        (static_cast<double>(Rng() >> 11) + 1.0) * 0x1.0p-53;
    return -std::log(U) * MeanSec;
  }

  void run() {
    const Clock::time_point Origin = Clock::now();
    auto elapsedSec = [&] {
      return std::chrono::duration_cast<std::chrono::duration<double>>(
                 Clock::now() - Origin)
          .count();
    };
    // Next fire times per channel, re-sampled when a phase with an
    // active channel is (re-)entered.
    double NextCrash = -1, NextStall = -1;
    std::size_t PhaseIdx = ~std::size_t{0};
    double PhaseEnd = 0;
    while (!Stopping.load(std::memory_order_relaxed)) {
      const double Now = elapsedSec();
      if (PhaseIdx == ~std::size_t{0} || Now >= PhaseEnd) {
        PhaseIdx = PhaseIdx == ~std::size_t{0}
                       ? 0
                       : (PhaseIdx + 1) % Plan.Phases.size();
        const CampaignPhase &P = Plan.Phases[PhaseIdx];
        PhaseEnd = (PhaseIdx == 0 && Now >= PhaseEnd ? Now : PhaseEnd) +
                   P.DurationSec;
        // Entering a phase re-rolls both channels relative to now.
        NextCrash = P.CrashMeanPeriodSec > 0
                        ? Now + expGap(P.CrashMeanPeriodSec)
                        : -1;
        NextStall = P.StallMeanPeriodSec > 0
                        ? Now + expGap(P.StallMeanPeriodSec)
                        : -1;
      }
      const CampaignPhase &P = Plan.Phases[PhaseIdx];
      if (NextCrash >= 0 && Now >= NextCrash) {
        Hooks[Rng.below(Hooks.size())]->postCrash();
        CrashesPosted.fetch_add(1, std::memory_order_relaxed);
        NextCrash = Now + expGap(P.CrashMeanPeriodSec);
      }
      if (NextStall >= 0 && Now >= NextStall) {
        Hooks[Rng.below(Hooks.size())]->postStall(P.StallGrants);
        StallsPosted.fetch_add(1, std::memory_order_relaxed);
        NextStall = Now + expGap(P.StallMeanPeriodSec);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  Campaign Plan;
  std::vector<CampaignHook *> Hooks;
  SplitMix64 Rng;
  std::thread Thread;
  std::atomic<bool> Stopping{false};
  std::atomic<std::uint64_t> CrashesPosted{0};
  std::atomic<std::uint64_t> StallsPosted{0};
};

} // namespace soak
} // namespace csobj

#endif // CSOBJ_SOAK_FAULTCAMPAIGN_H
