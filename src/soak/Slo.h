//===- soak/Slo.h - Window records and SLO verdicts -------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The soak harness's unit of account is the *window*: a fixed wall-
/// clock slice over which arrivals, completions, backlog, faults, stuck
/// operations, path deltas and latency distributions are collected and
/// then frozen. WindowStats is that record; a soak run is a vector of
/// them plus totals (soak/SoakHarness.h builds it).
///
/// Each window also carries a conservation verdict. The repo-wide law —
/// Ops == sum of terminal path counters — is exact only at quiesce, so a
/// mid-run window checks the bounded form over *cumulative* counters:
///
///   0 <= Ops - pathTotal <= Workers + CrashesSoFar
///
/// (every in-flight operation has entered but not retired; every crash
/// abandoned at most one entered operation). At final quiesce in-flight
/// drops out and the harness asserts the tight bound with crashes only.
///
/// SloPolicy turns the window series into a machine-readable PASS/FAIL:
/// per-terminal-path service-latency budgets (p99/p999), whole-run
/// sojourn budgets, a degraded-path fraction budget, stuck-operation and
/// shed-fraction budgets. Every violated budget yields one SloViolation
/// naming the metric, window, observed value and budget — the bench
/// serialises these into BENCH_soak.json so CI failure output says
/// *what* regressed, not just that something did.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SOAK_SLO_H
#define CSOBJ_SOAK_SLO_H

#include "obs/PathCounters.h"
#include "runtime/Stats.h"

#include <cstdint>
#include <string>
#include <vector>

namespace csobj {
namespace soak {

/// Everything the harness froze for one wall-clock window.
struct WindowStats {
  std::uint64_t Index = 0;
  double StartSec = 0;    ///< Window open, relative to soak origin.
  double DurationSec = 0; ///< Actual (measured) window length.

  std::uint64_t Arrivals = 0;  ///< Generated (enqueued + shed) this window.
  std::uint64_t Completed = 0; ///< Operations finished this window.
  std::uint64_t Shed = 0;      ///< Arrivals dropped at a full backlog.
  std::uint64_t Backlog = 0;   ///< Queue depth at window close.
  std::uint64_t Crashes = 0;   ///< Campaign crashes executed this window.
  std::uint64_t Stalls = 0;    ///< Campaign stalls executed this window.
  std::uint64_t StuckOps = 0;  ///< Watchdog reports drained this window.

  /// Path/event deltas booked this window (cumulative snapshot minus the
  /// previous window's).
  obs::PathSnapshot Paths;
  /// Bounded conservation over the cumulative counters at window close.
  bool Conserves = true;

  /// Sojourn: completion minus *nominal* arrival (queueing included — the
  /// open-loop, coordinated-omission-free number). Service: operation
  /// start to completion. PathLatency: service split by terminal path
  /// (the extra slot collects Path::None).
  LatencyHistogram Sojourn;
  LatencyHistogram Service;
  LatencyHistogram PathLatency[obs::NumPaths + 1];

  /// Degraded-path fraction of this window's path-attributed ops.
  double degradedFraction() const {
    const std::uint64_t Total = Paths.pathTotal();
    return Total ? static_cast<double>(Paths.path(obs::Path::Degraded)) /
                       static_cast<double>(Total)
                 : 0.0;
  }
};

/// Budgets; the zero-initialised policy checks nothing but conservation.
struct SloPolicy {
  /// Per-terminal-path service-latency budgets in ns, indexed by
  /// obs::Path. 0 = that path/quantile is unchecked. Evaluated over the
  /// whole run's merged histograms (windows are too small for stable
  /// p999) but only for paths that actually retired operations.
  std::uint64_t P99BudgetNs[obs::NumPaths] = {};
  std::uint64_t P999BudgetNs[obs::NumPaths] = {};

  /// Whole-run sojourn budgets (0 = unchecked). These are the user-
  /// visible numbers; they absorb queueing, so an overload the service
  /// cannot drain shows up here even when per-path service stays flat.
  std::uint64_t SojournP99BudgetNs = 0;
  std::uint64_t SojournP999BudgetNs = 0;

  /// Largest acceptable per-window degraded-path fraction, checked after
  /// WarmupWindows. 1.0 = unchecked.
  double MaxDegradedFraction = 1.0;
  /// Largest acceptable whole-run stuck-operation count.
  std::uint64_t MaxStuckOps = ~std::uint64_t{0};
  /// Largest acceptable whole-run shed fraction (shed / arrivals).
  double MaxShedFraction = 1.0;
  /// Leading windows exempt from the degraded-fraction budget (cold
  /// structures, first fault storm).
  std::uint32_t WarmupWindows = 0;
};

/// One violated budget. Window is ~0 for whole-run metrics.
struct SloViolation {
  std::string Metric;
  std::uint64_t Window = ~std::uint64_t{0};
  double Observed = 0;
  double Budget = 0;

  bool wholeRun() const { return Window == ~std::uint64_t{0}; }
};

/// Machine-readable verdict: Pass iff no budget was violated AND every
/// window's conservation check held.
struct SloVerdict {
  bool Pass = true;
  std::vector<SloViolation> Violations;
};

/// Evaluates \p Policy over a finished run's windows. The caller hands
/// the whole-run merged histograms separately (merging 60 windows of
/// 7 histograms each here would be wasteful — the harness already has
/// them).
inline SloVerdict
evaluateSlo(const SloPolicy &Policy, const std::vector<WindowStats> &Windows,
            const LatencyHistogram &RunSojourn,
            const LatencyHistogram (&RunPathLatency)[obs::NumPaths + 1],
            std::uint64_t TotalStuckOps, std::uint64_t TotalArrivals,
            std::uint64_t TotalShed) {
  SloVerdict V;
  auto violate = [&V](std::string Metric, std::uint64_t Window,
                      double Observed, double Budget) {
    V.Pass = false;
    V.Violations.push_back({std::move(Metric), Window, Observed, Budget});
  };

  for (const WindowStats &W : Windows) {
    if (!W.Conserves)
      violate("conservation", W.Index, 0, 0);
    if (W.Index >= Policy.WarmupWindows &&
        W.degradedFraction() > Policy.MaxDegradedFraction)
      violate("degraded_fraction", W.Index, W.degradedFraction(),
              Policy.MaxDegradedFraction);
  }

  for (unsigned P = 0; P < obs::NumPaths; ++P) {
    const LatencyHistogram &H = RunPathLatency[P];
    if (H.count() == 0)
      continue;
    const std::string Name = obs::pathName(static_cast<obs::Path>(P));
    if (Policy.P99BudgetNs[P] != 0) {
      const std::uint64_t Got = H.valueAtQuantile(0.99);
      if (Got > Policy.P99BudgetNs[P])
        violate("service_p99_ns." + Name, ~std::uint64_t{0},
                static_cast<double>(Got),
                static_cast<double>(Policy.P99BudgetNs[P]));
    }
    if (Policy.P999BudgetNs[P] != 0) {
      const std::uint64_t Got = H.valueAtQuantile(0.999);
      if (Got > Policy.P999BudgetNs[P])
        violate("service_p999_ns." + Name, ~std::uint64_t{0},
                static_cast<double>(Got),
                static_cast<double>(Policy.P999BudgetNs[P]));
    }
  }

  if (Policy.SojournP99BudgetNs != 0) {
    const std::uint64_t Got = RunSojourn.valueAtQuantile(0.99);
    if (Got > Policy.SojournP99BudgetNs)
      violate("sojourn_p99_ns", ~std::uint64_t{0}, static_cast<double>(Got),
              static_cast<double>(Policy.SojournP99BudgetNs));
  }
  if (Policy.SojournP999BudgetNs != 0) {
    const std::uint64_t Got = RunSojourn.valueAtQuantile(0.999);
    if (Got > Policy.SojournP999BudgetNs)
      violate("sojourn_p999_ns", ~std::uint64_t{0}, static_cast<double>(Got),
              static_cast<double>(Policy.SojournP999BudgetNs));
  }

  if (TotalStuckOps > Policy.MaxStuckOps)
    violate("stuck_ops", ~std::uint64_t{0},
            static_cast<double>(TotalStuckOps),
            static_cast<double>(Policy.MaxStuckOps));

  if (TotalArrivals > 0) {
    const double ShedFraction =
        static_cast<double>(TotalShed) / static_cast<double>(TotalArrivals);
    if (ShedFraction > Policy.MaxShedFraction)
      violate("shed_fraction", ~std::uint64_t{0}, ShedFraction,
              Policy.MaxShedFraction);
  }

  return V;
}

} // namespace soak
} // namespace csobj

#endif // CSOBJ_SOAK_SLO_H
