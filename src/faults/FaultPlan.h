//===- faults/FaultPlan.h - Declarative fault descriptions ------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarative fault plans for the crash/stall fault model of Section 5.
/// A FaultPlan is plain data naming *which* process misbehaves and *when*
/// (at its K-th shared-memory access, in the paper's access-counting
/// convention), independent of how the plan is executed:
///
///  * wall-clock runs execute a plan through faults/FaultInjector.h — a
///    SchedHook that crashes or stalls the thread at the trigger access;
///  * explorer runs execute the same plan through faultPlanPick()
///    (faults/FaultInjector.h), which turns it into an
///    InterleaveScheduler picking policy so crashes land at exactly the
///    chosen access point of a controlled schedule.
///
/// Fault kinds:
///
///  * CrashStop — the paper's process-crash fault: the process stops at
///    the trigger point forever; the access never executes and whatever
///    prefix ran stays in shared memory.
///  * Stall — a bounded asynchrony burst: the process is held at the
///    trigger point until StallGrants shared accesses by *other* threads
///    have been granted (logical time, so the same plan is meaningful in
///    both wall-clock and explorer executions), then resumes normally.
///    This models the lease-expiry scenario of locks/LeasedLock.h: a
///    lock holder preempted long enough for a waiter's patience to run
///    out, without the holder actually dying.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_FAULTS_FAULTPLAN_H
#define CSOBJ_FAULTS_FAULTPLAN_H

#include <cstdint>
#include <vector>

namespace csobj {

/// What happens to the victim at the trigger point.
enum class FaultKind : std::uint8_t {
  CrashStop, ///< Process stops forever (Section 5 crash fault).
  Stall      ///< Process is held for StallGrants foreign accesses.
};

/// One fault: thread \p Tid misbehaves at its \p AtAccess-th shared
/// access (0-based, counted per thread).
struct FaultSpec {
  std::uint32_t Tid = 0;
  std::uint64_t AtAccess = 0;
  FaultKind Kind = FaultKind::CrashStop;
  /// Stall only: how many accesses by other threads must be granted
  /// before the victim resumes.
  std::uint64_t StallGrants = 0;
};

/// An ordered collection of faults to inject into one run.
struct FaultPlan {
  std::vector<FaultSpec> Faults;

  bool empty() const { return Faults.empty(); }

  /// Convenience: crash \p Tid at its \p K-th shared access.
  static FaultPlan crashAt(std::uint32_t Tid, std::uint64_t K) {
    FaultPlan Plan;
    Plan.Faults.push_back({Tid, K, FaultKind::CrashStop, 0});
    return Plan;
  }

  /// Convenience: stall \p Tid at its \p K-th shared access until
  /// \p Grants foreign accesses have been granted.
  static FaultPlan stallAt(std::uint32_t Tid, std::uint64_t K,
                           std::uint64_t Grants) {
    FaultPlan Plan;
    Plan.Faults.push_back({Tid, K, FaultKind::Stall, Grants});
    return Plan;
  }
};

} // namespace csobj

#endif // CSOBJ_FAULTS_FAULTPLAN_H
