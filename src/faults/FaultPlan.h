//===- faults/FaultPlan.h - Declarative fault descriptions ------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarative fault plans for the crash/stall fault model of Section 5.
/// A FaultPlan is plain data naming *which* process misbehaves and *when*
/// (at its K-th shared-memory access, in the paper's access-counting
/// convention), independent of how the plan is executed:
///
///  * wall-clock runs execute a plan through faults/FaultInjector.h — a
///    SchedHook that crashes or stalls the thread at the trigger access;
///  * explorer runs execute the same plan through faultPlanPick()
///    (faults/FaultInjector.h), which turns it into an
///    InterleaveScheduler picking policy so crashes land at exactly the
///    chosen access point of a controlled schedule.
///
/// Fault kinds:
///
///  * CrashStop — the paper's process-crash fault: the process stops at
///    the trigger point forever; the access never executes and whatever
///    prefix ran stays in shared memory.
///  * Stall — a bounded asynchrony burst: the process is held at the
///    trigger point until StallGrants shared accesses by *other* threads
///    have been granted (logical time, so the same plan is meaningful in
///    both wall-clock and explorer executions), then resumes normally.
///    This models the lease-expiry scenario of locks/LeasedLock.h: a
///    lock holder preempted long enough for a waiter's patience to run
///    out, without the holder actually dying.
///
/// Trigger shapes: besides the original one-shot at-access-K trigger, a
/// spec may be *recurring* (re-fires every Period accesses) or
/// *rate-based* (fires with a per-access probability from a seeded
/// stream). Recurring/rate plans are what the soak harness
/// (src/soak/FaultCampaign.h) builds its sustained fault campaigns from;
/// under the closed-loop Driver a recurring crash degenerates to a
/// one-shot because the victim is never resurrected.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_FAULTS_FAULTPLAN_H
#define CSOBJ_FAULTS_FAULTPLAN_H

#include <cstdint>
#include <vector>

namespace csobj {

/// What happens to the victim at the trigger point.
enum class FaultKind : std::uint8_t {
  CrashStop, ///< Process stops forever (Section 5 crash fault).
  Stall      ///< Process is held for StallGrants foreign accesses.
};

/// One fault: thread \p Tid misbehaves at its \p AtAccess-th shared
/// access (0-based, counted per thread).
///
/// Trigger shapes (checked in this order; a spec has exactly one):
///
///  * one-shot (Period == 0, RatePermille == 0) — fires once, at access
///    index AtAccess. The original crashAt/stallAt semantics.
///  * recurring (Period > 0) — fires at AtAccess, AtAccess + Period,
///    AtAccess + 2*Period, ... A recurring CrashStop is meaningful only
///    for harnesses that resurrect the victim (the soak harness does);
///    under the closed-loop Driver the first firing retires the thread,
///    so it degenerates to a one-shot.
///  * rate-based (RatePermille > 0) — fires independently at each access
///    with probability RatePermille/1000, from a PRNG stream derived
///    deterministically from (plan seed, tid), so the same plan over the
///    same access sequence fires at the same points.
struct FaultSpec {
  std::uint32_t Tid = 0;
  std::uint64_t AtAccess = 0;
  FaultKind Kind = FaultKind::CrashStop;
  /// Stall only: how many accesses by other threads must be granted
  /// before the victim resumes.
  std::uint64_t StallGrants = 0;
  /// Recurring trigger: re-fire every Period accesses after AtAccess.
  /// 0 = one-shot.
  std::uint64_t Period = 0;
  /// Rate-based trigger: fire with probability RatePermille/1000 at each
  /// access (AtAccess/Period are ignored). 0 = index-triggered.
  std::uint32_t RatePermille = 0;
};

/// An ordered collection of faults to inject into one run.
struct FaultPlan {
  std::vector<FaultSpec> Faults;
  /// Base seed for rate-based triggers; each victim derives its own
  /// stream from (RateSeed, Tid).
  std::uint64_t RateSeed = 0x5eedfa017ull;

  bool empty() const { return Faults.empty(); }

  /// True when any spec is recurring or rate-based — such a plan keeps
  /// firing for as long as the victim runs.
  bool recurring() const {
    for (const FaultSpec &Spec : Faults)
      if (Spec.Period != 0 || Spec.RatePermille != 0)
        return true;
    return false;
  }

  /// Convenience: crash \p Tid at its \p K-th shared access.
  static FaultPlan crashAt(std::uint32_t Tid, std::uint64_t K) {
    FaultPlan Plan;
    Plan.Faults.push_back({Tid, K, FaultKind::CrashStop, 0});
    return Plan;
  }

  /// Convenience: stall \p Tid at its \p K-th shared access until
  /// \p Grants foreign accesses have been granted.
  static FaultPlan stallAt(std::uint32_t Tid, std::uint64_t K,
                           std::uint64_t Grants) {
    FaultPlan Plan;
    Plan.Faults.push_back({Tid, K, FaultKind::Stall, Grants});
    return Plan;
  }

  /// Convenience: fault \p Tid at access \p First and every \p Period
  /// accesses after that (recurring trigger).
  static FaultPlan everyAccesses(std::uint32_t Tid, std::uint64_t First,
                                 std::uint64_t Period, FaultKind Kind,
                                 std::uint64_t Grants = 0) {
    FaultPlan Plan;
    FaultSpec Spec{Tid, First, Kind, Grants};
    Spec.Period = Period;
    Plan.Faults.push_back(Spec);
    return Plan;
  }

  /// Convenience: stall \p Tid with probability \p Permille/1000 at each
  /// shared access (rate-based trigger).
  static FaultPlan stallAtRate(std::uint32_t Tid, std::uint32_t Permille,
                               std::uint64_t Grants) {
    FaultPlan Plan;
    FaultSpec Spec{Tid, 0, FaultKind::Stall, Grants};
    Spec.RatePermille = Permille;
    Plan.Faults.push_back(Spec);
    return Plan;
  }

  /// Convenience: crash \p Tid with probability \p Permille/1000 at each
  /// shared access (rate-based trigger; meaningful in resurrection
  /// harnesses, one-shot under the closed-loop Driver).
  static FaultPlan crashAtRate(std::uint32_t Tid, std::uint32_t Permille) {
    FaultPlan Plan;
    FaultSpec Spec{Tid, 0, FaultKind::CrashStop, 0};
    Spec.RatePermille = Permille;
    Plan.Faults.push_back(Spec);
    return Plan;
  }
};

} // namespace csobj

#endif // CSOBJ_FAULTS_FAULTPLAN_H
