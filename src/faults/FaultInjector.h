//===- faults/FaultInjector.h - Fault plan execution ------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a FaultPlan (faults/FaultPlan.h) against real code, through
/// the same SchedHook channel the interleaving explorer uses — every
/// AtomicRegister access of an Instrumented-policy object is a potential
/// fault point, so the plan's access indices mean the same thing in every
/// execution mode.
///
///  * FaultInjector is a per-thread SchedHook for wall-clock runs (the
///    closed-loop Driver, stress tests). At the trigger access it either
///    throws ProcessCrash — the worker loop catches it and retires the
///    thread, modelling crash-stop — or stalls until enough foreign
///    accesses have ticked the run's shared FaultClock.
///  * faultPlanPick() adapts the same plan to the InterleaveScheduler: it
///    returns a picking policy that crashes the victim via KillFlag at
///    exactly the planned access index and refuses to grant a stalled
///    victim while other threads still have accesses to run.
///
/// Both executors keep per-thread access counts themselves; nothing in
/// the algorithm under test needs to cooperate.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_FAULTS_FAULTINJECTOR_H
#define CSOBJ_FAULTS_FAULTINJECTOR_H

#include "faults/FaultPlan.h"
#include "memory/SchedHook.h"
#include "sched/InterleaveScheduler.h"
#include "support/SpinWait.h"
#include "support/SplitMix64.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace csobj {

/// Thrown by FaultInjector at a crash-stop trigger point; the access
/// never executes. Wall-clock harnesses (runtime/Driver.h) catch it and
/// retire the thread. Distinct from sched::SimulatedCrash so that a
/// harness can tell planned wall-clock faults from explorer kills.
struct ProcessCrash {};

/// Logical clock shared by all FaultInjector instances of one run: every
/// shared access by any hooked thread ticks it once. Stalls are measured
/// in foreign ticks, so a stalled thread's own (suspended) accesses do
/// not count toward its release.
struct FaultClock {
  std::atomic<std::uint64_t> Ticks{0};
};

/// Consecutive progress-free waits before a stall expires early (the
/// escape hatch shared by every wall-clock stall executor).
inline constexpr std::uint32_t StallIdleYieldCap = 512;

/// Holds the calling thread until \p Grants foreign accesses have ticked
/// \p Clock. Escape hatch: if the clock stops advancing (the victim is
/// the only live thread, or every other thread is itself stalled) the
/// stall expires after a bounded quiet spell instead of deadlocking the
/// run or burning a grant-proportional wait. Shared by FaultInjector and
/// the soak harness's campaign hook (src/soak/FaultCampaign.h).
inline void stallUntilForeignGrants(FaultClock &Clock, std::uint64_t Grants) {
  const std::uint64_t Start = Clock.Ticks.load(std::memory_order_relaxed);
  std::uint64_t LastSeen = Start;
  std::uint32_t Idle = 0;
  SpinWait Waiter;
  while (Clock.Ticks.load(std::memory_order_relaxed) - Start < Grants) {
    Waiter.once();
    const std::uint64_t Now = Clock.Ticks.load(std::memory_order_relaxed);
    if (Now == LastSeen) {
      if (++Idle > StallIdleYieldCap)
        break;
    } else {
      LastSeen = Now;
      Idle = 0;
    }
  }
}

/// Per-thread wall-clock fault executor. Install with SchedHookScope.
/// Chains to an optional inner hook (e.g. ChaosHook) so fault plans and
/// randomized asynchrony compose.
class FaultInjector final : public SchedHook {
public:
  FaultInjector(const FaultPlan &Plan, std::uint32_t Tid, FaultClock &Clock,
                SchedHook *Inner = nullptr)
      : Clock(Clock), Inner(Inner),
        RateRng(SplitMix64(Plan.RateSeed).split(Tid)) {
    for (const FaultSpec &Spec : Plan.Faults) {
      if (Spec.Tid != Tid)
        continue;
      if (Spec.RatePermille != 0)
        RateBased.push_back(Spec);
      else if (Spec.Period != 0)
        Recurring.push_back(Spec);
      else
        Pending.push_back(Spec);
    }
    std::sort(Pending.begin(), Pending.end(),
              [](const FaultSpec &A, const FaultSpec &B) {
                return A.AtAccess < B.AtAccess;
              });
  }

  void beforeSharedAccess(AccessKind Kind) override {
    if (Inner)
      Inner->beforeSharedAccess(Kind);
    Clock.Ticks.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t Index = NextAccess++;
    // At most one fault per access; one-shots outrank recurring outrank
    // rate-based, so a deterministic plan stays deterministic even when
    // a rate channel rides along.
    if (Next < Pending.size() && Pending[Next].AtAccess == Index) {
      fire(Pending[Next++]);
      return;
    }
    for (const FaultSpec &Spec : Recurring) {
      if (Index < Spec.AtAccess || (Index - Spec.AtAccess) % Spec.Period != 0)
        continue;
      fire(Spec);
      return;
    }
    for (const FaultSpec &Spec : RateBased) {
      if (!RateRng.chance(Spec.RatePermille, 1000))
        continue;
      fire(Spec);
      return;
    }
  }

  /// Number of accesses this thread has attempted so far.
  std::uint64_t accessesSeen() const { return NextAccess; }

  /// Faults delivered so far (crashes thrown + stalls completed).
  std::uint64_t faultsFired() const { return Fired; }

private:
  void fire(const FaultSpec &Spec) {
    ++Fired;
    if (Spec.Kind == FaultKind::CrashStop)
      throw ProcessCrash{};
    stallUntilForeignGrants(Clock, Spec.StallGrants);
  }

  FaultClock &Clock;
  SchedHook *Inner;
  std::vector<FaultSpec> Pending;   ///< One-shots, sorted by AtAccess.
  std::vector<FaultSpec> Recurring; ///< Period-triggered specs.
  std::vector<FaultSpec> RateBased; ///< Probability-triggered specs.
  SplitMix64 RateRng;
  std::size_t Next = 0;
  std::uint64_t NextAccess = 0;
  std::uint64_t Fired = 0;
};

/// Adapts a FaultPlan to the InterleaveScheduler: wraps \p Base so that a
/// planned crash is delivered via KillFlag at exactly the victim's
/// AtAccess-th granted access, and a planned stall keeps the victim
/// parked until StallGrants foreign accesses have been granted (or no
/// other thread can run, in which case the stall expires — mirroring the
/// wall-clock escape hatch). Recurring specs (Period > 0) are never
/// consumed and re-fire at every matching access index; rate-based specs
/// fire from a per-victim stream derived from the plan's RateSeed, so a
/// given plan explores the same faulty schedule every run. The returned
/// policy owns its per-thread grant counters, so build a fresh one per
/// run.
inline InterleaveScheduler::PickFn
faultPlanPick(FaultPlan Plan, InterleaveScheduler::PickFn Base =
                                  [](std::size_t,
                                     const std::vector<std::uint32_t> &P) {
                                    return P.front();
                                  }) {
  struct State {
    FaultPlan Plan;
    InterleaveScheduler::PickFn Base;
    std::vector<char> Consumed;         ///< One-shot flag per plan entry.
    /// Recurring specs only: first access count at which the spec may
    /// fire again. A fired stall does not grant the access (the count
    /// does not advance), so without this guard a recurring spec would
    /// re-trigger at the same index the moment its stall expired.
    std::vector<std::uint64_t> NextEligible;
    std::vector<std::uint64_t> Granted; ///< Per-tid granted-access counts.
    std::vector<SplitMix64> RateRngs;   ///< Per-tid rate-trigger streams.
    std::uint64_t TotalGrants = 0;
    /// Active stall: victim tid and the TotalGrants value at which it
    /// may run again. ~0 tid = none.
    std::uint32_t StalledTid = ~std::uint32_t{0};
    std::uint64_t StallUntil = 0;

    /// Does \p Spec trigger at the victim's \p Count-th granted access?
    /// Draws from the victim's rate stream when the spec is rate-based.
    bool triggers(const FaultSpec &Spec, std::uint32_t Tid,
                  std::uint64_t Count) {
      if (Spec.RatePermille != 0) {
        if (Tid >= RateRngs.size())
          for (std::uint32_t T = RateRngs.size(); T <= Tid; ++T)
            RateRngs.push_back(SplitMix64(Plan.RateSeed).split(T));
        return RateRngs[Tid].chance(Spec.RatePermille, 1000);
      }
      if (Spec.Period != 0)
        return Count >= Spec.AtAccess &&
               (Count - Spec.AtAccess) % Spec.Period == 0;
      return Spec.AtAccess == Count;
    }
  };
  auto S = std::make_shared<State>();
  S->Plan = std::move(Plan);
  S->Base = std::move(Base);
  S->Consumed.assign(S->Plan.Faults.size(), 0);
  S->NextEligible.assign(S->Plan.Faults.size(), 0);

  return [S](std::size_t Step,
             const std::vector<std::uint32_t> &Parked) -> std::uint32_t {
    auto countFor = [&](std::uint32_t Tid) -> std::uint64_t & {
      if (Tid >= S->Granted.size())
        S->Granted.resize(Tid + 1, 0);
      return S->Granted[Tid];
    };
    // Expire a finished stall.
    if (S->StalledTid != ~std::uint32_t{0} &&
        S->TotalGrants >= S->StallUntil)
      S->StalledTid = ~std::uint32_t{0};

    // Candidates the base policy may pick: everyone not actively stalled.
    std::vector<std::uint32_t> Eligible;
    for (const std::uint32_t Tid : Parked)
      if (Tid != S->StalledTid)
        Eligible.push_back(Tid);
    if (Eligible.empty()) {
      // Only the stalled victim can run: the stall expires (wall-clock
      // escape-hatch semantics).
      S->StalledTid = ~std::uint32_t{0};
      Eligible = Parked;
    }

    const std::uint32_t Chosen =
        S->Base(Step, Eligible) & ~InterleaveScheduler::KillFlag;
    std::uint64_t &Count = countFor(Chosen);

    // Does a fault trigger at this access of the chosen thread?
    for (std::size_t I = 0; I < S->Plan.Faults.size(); ++I) {
      const FaultSpec &Spec = S->Plan.Faults[I];
      if (S->Consumed[I] || Spec.Tid != Chosen ||
          Count < S->NextEligible[I] || !S->triggers(Spec, Chosen, Count))
        continue;
      // Recurring and rate-based specs stay armed and may re-fire (at a
      // strictly later access count).
      if (Spec.Period == 0 && Spec.RatePermille == 0)
        S->Consumed[I] = 1;
      S->NextEligible[I] = Count + 1;
      if (Spec.Kind == FaultKind::CrashStop) {
        // The access is not granted (KillFlag unwinds before it runs),
        // so the per-thread count does not advance.
        return Chosen | InterleaveScheduler::KillFlag;
      }
      // Stall: start holding the victim, grant someone else this step.
      S->StalledTid = Chosen;
      S->StallUntil = S->TotalGrants + Spec.StallGrants;
      std::vector<std::uint32_t> Others;
      for (const std::uint32_t Tid : Parked)
        if (Tid != Chosen)
          Others.push_back(Tid);
      if (Others.empty()) {
        S->StalledTid = ~std::uint32_t{0}; // Nobody else: stall expires.
        break;
      }
      const std::uint32_t Alt =
          S->Base(Step, Others) & ~InterleaveScheduler::KillFlag;
      ++countFor(Alt);
      ++S->TotalGrants;
      return Alt;
    }

    ++Count;
    ++S->TotalGrants;
    return Chosen;
  };
}

} // namespace csobj

#endif // CSOBJ_FAULTS_FAULTINJECTOR_H
