//===- faults/FaultInjector.h - Fault plan execution ------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a FaultPlan (faults/FaultPlan.h) against real code, through
/// the same SchedHook channel the interleaving explorer uses — every
/// AtomicRegister access of an Instrumented-policy object is a potential
/// fault point, so the plan's access indices mean the same thing in every
/// execution mode.
///
///  * FaultInjector is a per-thread SchedHook for wall-clock runs (the
///    closed-loop Driver, stress tests). At the trigger access it either
///    throws ProcessCrash — the worker loop catches it and retires the
///    thread, modelling crash-stop — or stalls until enough foreign
///    accesses have ticked the run's shared FaultClock.
///  * faultPlanPick() adapts the same plan to the InterleaveScheduler: it
///    returns a picking policy that crashes the victim via KillFlag at
///    exactly the planned access index and refuses to grant a stalled
///    victim while other threads still have accesses to run.
///
/// Both executors keep per-thread access counts themselves; nothing in
/// the algorithm under test needs to cooperate.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_FAULTS_FAULTINJECTOR_H
#define CSOBJ_FAULTS_FAULTINJECTOR_H

#include "faults/FaultPlan.h"
#include "memory/SchedHook.h"
#include "sched/InterleaveScheduler.h"
#include "support/SpinWait.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace csobj {

/// Thrown by FaultInjector at a crash-stop trigger point; the access
/// never executes. Wall-clock harnesses (runtime/Driver.h) catch it and
/// retire the thread. Distinct from sched::SimulatedCrash so that a
/// harness can tell planned wall-clock faults from explorer kills.
struct ProcessCrash {};

/// Logical clock shared by all FaultInjector instances of one run: every
/// shared access by any hooked thread ticks it once. Stalls are measured
/// in foreign ticks, so a stalled thread's own (suspended) accesses do
/// not count toward its release.
struct FaultClock {
  std::atomic<std::uint64_t> Ticks{0};
};

/// Per-thread wall-clock fault executor. Install with SchedHookScope.
/// Chains to an optional inner hook (e.g. ChaosHook) so fault plans and
/// randomized asynchrony compose.
class FaultInjector final : public SchedHook {
public:
  FaultInjector(const FaultPlan &Plan, std::uint32_t Tid, FaultClock &Clock,
                SchedHook *Inner = nullptr)
      : Clock(Clock), Inner(Inner) {
    for (const FaultSpec &Spec : Plan.Faults)
      if (Spec.Tid == Tid)
        Pending.push_back(Spec);
    std::sort(Pending.begin(), Pending.end(),
              [](const FaultSpec &A, const FaultSpec &B) {
                return A.AtAccess < B.AtAccess;
              });
  }

  void beforeSharedAccess(AccessKind Kind) override {
    if (Inner)
      Inner->beforeSharedAccess(Kind);
    Clock.Ticks.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t Index = NextAccess++;
    if (Next >= Pending.size() || Pending[Next].AtAccess != Index)
      return;
    const FaultSpec Spec = Pending[Next++];
    if (Spec.Kind == FaultKind::CrashStop)
      throw ProcessCrash{};
    stall(Spec.StallGrants);
  }

  /// Number of accesses this thread has attempted so far.
  std::uint64_t accessesSeen() const { return NextAccess; }

private:
  /// Holds the thread until \p Grants foreign accesses have ticked the
  /// clock. Escape hatch: if the clock stops advancing (the victim is
  /// the only live thread, or every other thread is itself stalled) the
  /// stall expires after a bounded quiet spell instead of deadlocking
  /// the run or burning a grant-proportional wait.
  void stall(std::uint64_t Grants) {
    const std::uint64_t Start = Clock.Ticks.load(std::memory_order_relaxed);
    std::uint64_t LastSeen = Start;
    std::uint32_t Idle = 0;
    SpinWait Waiter;
    while (Clock.Ticks.load(std::memory_order_relaxed) - Start < Grants) {
      Waiter.once();
      const std::uint64_t Now =
          Clock.Ticks.load(std::memory_order_relaxed);
      if (Now == LastSeen) {
        if (++Idle > IdleYieldCap)
          break;
      } else {
        LastSeen = Now;
        Idle = 0;
      }
    }
  }

  /// Consecutive progress-free waits before a stall expires early.
  static constexpr std::uint32_t IdleYieldCap = 512;

  FaultClock &Clock;
  SchedHook *Inner;
  std::vector<FaultSpec> Pending;
  std::size_t Next = 0;
  std::uint64_t NextAccess = 0;
};

/// Adapts a FaultPlan to the InterleaveScheduler: wraps \p Base so that a
/// planned crash is delivered via KillFlag at exactly the victim's
/// AtAccess-th granted access, and a planned stall keeps the victim
/// parked until StallGrants foreign accesses have been granted (or no
/// other thread can run, in which case the stall expires — mirroring the
/// wall-clock escape hatch). The returned policy owns its per-thread
/// grant counters, so build a fresh one per run.
inline InterleaveScheduler::PickFn
faultPlanPick(FaultPlan Plan, InterleaveScheduler::PickFn Base =
                                  [](std::size_t,
                                     const std::vector<std::uint32_t> &P) {
                                    return P.front();
                                  }) {
  struct State {
    FaultPlan Plan;
    InterleaveScheduler::PickFn Base;
    std::vector<char> Consumed;         ///< One-shot flag per plan entry.
    std::vector<std::uint64_t> Granted; ///< Per-tid granted-access counts.
    std::uint64_t TotalGrants = 0;
    /// Active stall: victim tid and the TotalGrants value at which it
    /// may run again. ~0 tid = none.
    std::uint32_t StalledTid = ~std::uint32_t{0};
    std::uint64_t StallUntil = 0;
  };
  auto S = std::make_shared<State>();
  S->Plan = std::move(Plan);
  S->Base = std::move(Base);
  S->Consumed.assign(S->Plan.Faults.size(), 0);

  return [S](std::size_t Step,
             const std::vector<std::uint32_t> &Parked) -> std::uint32_t {
    auto countFor = [&](std::uint32_t Tid) -> std::uint64_t & {
      if (Tid >= S->Granted.size())
        S->Granted.resize(Tid + 1, 0);
      return S->Granted[Tid];
    };
    // Expire a finished stall.
    if (S->StalledTid != ~std::uint32_t{0} &&
        S->TotalGrants >= S->StallUntil)
      S->StalledTid = ~std::uint32_t{0};

    // Candidates the base policy may pick: everyone not actively stalled.
    std::vector<std::uint32_t> Eligible;
    for (const std::uint32_t Tid : Parked)
      if (Tid != S->StalledTid)
        Eligible.push_back(Tid);
    if (Eligible.empty()) {
      // Only the stalled victim can run: the stall expires (wall-clock
      // escape-hatch semantics).
      S->StalledTid = ~std::uint32_t{0};
      Eligible = Parked;
    }

    const std::uint32_t Chosen =
        S->Base(Step, Eligible) & ~InterleaveScheduler::KillFlag;
    std::uint64_t &Count = countFor(Chosen);

    // Does a fault trigger at this access of the chosen thread?
    for (std::size_t I = 0; I < S->Plan.Faults.size(); ++I) {
      const FaultSpec &Spec = S->Plan.Faults[I];
      if (S->Consumed[I] || Spec.Tid != Chosen || Spec.AtAccess != Count)
        continue;
      S->Consumed[I] = 1;
      if (Spec.Kind == FaultKind::CrashStop) {
        // The access is not granted (KillFlag unwinds before it runs),
        // so the per-thread count does not advance.
        return Chosen | InterleaveScheduler::KillFlag;
      }
      // Stall: start holding the victim, grant someone else this step.
      S->StalledTid = Chosen;
      S->StallUntil = S->TotalGrants + Spec.StallGrants;
      std::vector<std::uint32_t> Others;
      for (const std::uint32_t Tid : Parked)
        if (Tid != Chosen)
          Others.push_back(Tid);
      if (Others.empty()) {
        S->StalledTid = ~std::uint32_t{0}; // Nobody else: stall expires.
        break;
      }
      const std::uint32_t Alt =
          S->Base(Step, Others) & ~InterleaveScheduler::KillFlag;
      ++countFor(Alt);
      ++S->TotalGrants;
      return Alt;
    }

    ++Count;
    ++S->TotalGrants;
    return Chosen;
  };
}

} // namespace csobj

#endif // CSOBJ_FAULTS_FAULTINJECTOR_H
