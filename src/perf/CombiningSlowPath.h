//===- perf/CombiningSlowPath.h - Flat-combining slow path ------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A drop-in alternative to the Figure 3 skeleton that replaces the
/// doorway + lock slow path with flat combining (Hendler, Incze, Shavit
/// & Tzafrir, SPAA'10): contended operations publish a request record;
/// one thread — the combiner — wins a dedicated C&S word and executes
/// the whole batch serially, so a batch of b contended operations costs
/// one combiner handoff instead of b doorway/lock handoffs, and the
/// cache lines of the object stay resident in one core's cache while the
/// batch runs.
///
/// The fast path is byte-identical to Figure 3 lines 01-03: one acquire
/// read of CONTENTION, one weak attempt. A contention-free stack
/// operation therefore still performs exactly six shared-memory
/// accesses — the whole point of the paper's construction — and the
/// conformance battery's access bounds enforce it.
///
/// Publication protocol (per thread, one cache-line-aligned Record):
///  * publish: write Req (pointer to a stack-allocated request holding a
///    reference to the weak op and an out-slot) and Run (a type-erasing
///    trampoline), then State <- Pending with release. The publisher
///    blocks until State == Ready, so the stack-allocated request
///    outlives every combiner access.
///  * wait/combine: while Pending, try to win CombinerBusy with one C&S;
///    the winner raises CONTENTION (diverting fast-path newcomers into
///    publication, like Figure 3 line 07), sweeps all records for a
///    bounded number of rounds running each Pending request once per
///    round (requests can still abort against stragglers that read
///    CONTENTION == 0 before it was raised), finishes its OWN request to
///    completion with ContentionManager pacing (same unbounded-retry
///    argument as Figure 3 line 08: once CONTENTION is up, interfering
///    fast paths abort into the publication list, so interference is
///    transient), lowers CONTENTION, and releases CombinerBusy.
///  * complete: the combiner stores the result through the request and
///    State <- Ready with release; the publisher's acquire read of Ready
///    makes the result visible. The plain (non-atomic) Req/Run/Out
///    fields are always separated by this State acquire/release
///    handshake, so the protocol is TSan-clean.
///
/// Batch records (strongApplyBatch): a group API publishes its whole
/// contended remainder as ONE record whose trampoline applies k ops with
/// a resume cursor — one publication, one handoff and one Ready store
/// amortized over k elements. See the method comment for the contract.
///
/// Progress: deadlock-free, not starvation-free — a specific publisher
/// can in principle lose the CombinerBusy C&S forever while others are
/// served. This deliberately sits between Figure 3 (starvation-free) and
/// the bare weak object (obstruction-free) on the progress-downgrade
/// lattice; the battery runs it under stall plans but not crash sweeps
/// (a killed combiner strands its waiters — see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_PERF_COMBININGSLOWPATH_H
#define CSOBJ_PERF_COMBININGSLOWPATH_H

#include "memory/AtomicRegister.h"
#include "obs/PathCounters.h"
#include "support/CacheLine.h"
#include "support/ContentionManager.h"
#include "support/SpinWait.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

namespace csobj {

/// Flat-combining strong-operation skeleton. Same constructor and
/// strongApply contract as ContentionSensitive, so every wrapper object
/// (stack, queue, deque, counter) accepts it as SkeletonT.
template <ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
class CombiningContentionSensitive {
public:
  using RegisterPolicy = Policy;

  /// \p NumThreads is the paper's n. \p CombineRounds is how many sweeps
  /// over the publication list a combiner performs before retiring.
  explicit CombiningContentionSensitive(std::uint32_t NumThreads,
                                        std::uint32_t CombineRounds = 2)
      : N(NumThreads), Rounds(CombineRounds), Records(new Record[NumThreads]) {
    assert(NumThreads >= 1 && "need at least one process");
    assert(CombineRounds >= 1 && "combiner must sweep at least once");
  }

  /// strong_push_or_pop(par), flat-combining flavour. Same contract as
  /// ContentionSensitive::strongApply: \p WeakOp returns std::optional,
  /// nullopt meaning the attempt aborted with no effect.
  template <typename WeakOpFn>
  auto strongApply(std::uint32_t Tid, WeakOpFn WeakOp)
      -> typename std::invoke_result_t<WeakOpFn>::value_type {
    using Result = typename std::invoke_result_t<WeakOpFn>::value_type;
    assert(Tid < N && "thread id out of range");
    Sink.onOp(Tid);
    if (Contention.value().read(std::memory_order_acquire) == 0) { // line 01
      if (auto Res = WeakOp()) {             // line 02
        Sink.onPath(Tid, obs::Path::Shortcut);
        return *Res;
      }
      Sink.onEvent(Tid, obs::Event::ShortcutAbort);
    }

    // Publish, then wait-or-combine.
    CombineRequest<WeakOpFn, Result> Req{WeakOp, std::nullopt};
    Record &Mine = Records[Tid];
    Mine.Req = &Req;
    Mine.Run = &CombineRequest<WeakOpFn, Result>::run;
    Mine.State.write(Pending, std::memory_order_release);

    SpinWait Waiter;
    while (Mine.State.read(std::memory_order_acquire) == Pending) {
      if (CombinerBusy.value().compareAndSwap(0, 1,
                                              std::memory_order_acq_rel)) {
        combine(Tid);
        CombinerBusy.value().write(0, std::memory_order_release);
        continue; // re-check State: the combiner always finishes its own.
      }
      Waiter.once();
    }
    Mine.State.write(EmptyRec, std::memory_order_release);
    Sink.onPath(Tid, obs::Path::Combined);
    return *Req.Out;
  }

  /// Group form of strongApply — the reason this skeleton exists. The
  /// per-element shortcut prefix is identical to the Fig-3 batch (six
  /// accesses per uncontended element), but on cutover the *entire
  /// remainder* is published as ONE combiner record carrying k ops: the
  /// combiner applies all k back to back under a single CombinerBusy
  /// tenure (one handoff amortized over k elements, object lines hot in
  /// one core's cache) and the publisher receives the batched results
  /// through the same State handshake as a single op. \p WeakAt(I)
  /// attempts op I; \p Stop(R) is the terminal answer that rejects the
  /// batch's remainder (partial-batch rejection for bounded objects);
  /// results land in Out[0..applied). Returns the number applied.
  ///
  /// A batch record can be applied across combiner visits: if op I
  /// aborts against a straggler, run() returns false with ops 0..I-1
  /// already applied and resumes from I at the next visit (same-record
  /// accesses are ordered by the CombinerBusy/State protocol, so the
  /// resume cursor needs no atomics). Progress is unchanged:
  /// deadlock-free, not starvation-free.
  template <typename WeakAtFn, typename StopFn, typename R>
  std::size_t strongApplyBatch(std::uint32_t Tid, std::size_t Count,
                               WeakAtFn WeakAt, StopFn Stop, R *Out) {
    assert(Tid < N && "thread id out of range");
    std::size_t I = 0;
    while (I < Count) {                        // per-element shortcut
      Sink.onOp(Tid);
      if (Contention.value().read(std::memory_order_acquire) != 0)
        break;                                 // element I stays counted
      auto Res = WeakAt(I);
      if (!Res) {
        Sink.onEvent(Tid, obs::Event::ShortcutAbort);
        break;                                 // adaptive cutover
      }
      Out[I] = *Res;
      Sink.onPath(Tid, obs::Path::Shortcut);
      ++I;
      if (Stop(Out[I - 1]))
        return I;
    }
    if (I == Count)
      return I;

    // Publish the remainder as a single k-op record.
    BatchRequest<WeakAtFn, StopFn, R> Req{WeakAt, Stop, Out, I, Count};
    Record &Mine = Records[Tid];
    Mine.Req = &Req;
    Mine.Run = &BatchRequest<WeakAtFn, StopFn, R>::run;
    Mine.State.write(Pending, std::memory_order_release);

    SpinWait Waiter;
    while (Mine.State.read(std::memory_order_acquire) == Pending) {
      if (CombinerBusy.value().compareAndSwap(0, 1,
                                              std::memory_order_acq_rel)) {
        combine(Tid);
        CombinerBusy.value().write(0, std::memory_order_release);
        continue;
      }
      Waiter.once();
    }
    Mine.State.write(EmptyRec, std::memory_order_release);

    // Book the group: element I was op-counted by the shortcut loop;
    // the combiner counted the whole record as one served request, so
    // credit the remaining k-1 ops to the combined-op tallies here.
    const std::uint64_t Grouped = Req.Next - I;
    Sink.onOp(Tid, Grouped - 1);
    Sink.onPath(Tid, obs::Path::Batched, Grouped);
    Sink.onBatch(Tid, Grouped);
    Sink.onEvent(Tid, obs::Event::CombinedOp, Grouped - 1);
    CombinedOps.fetch_add(Grouped - 1, std::memory_order_relaxed);
    return Req.Next;
  }

  std::uint32_t numThreads() const { return N; }

  /// Path-attributed metrics (obs/PathCounters.h).
  obs::MetricSink &metrics() const { return Sink; }
  obs::PathSnapshot pathSnapshot() const { return Sink.snapshot(); }

  bool contentionForTesting() const {
    return Contention.value().peekForTesting() != 0;
  }

  /// Completed combiner tenures / operations completed by combiners
  /// (self included). Plain relaxed atomics: stats must not perturb
  /// schedules or access counts.
  std::uint64_t batchesForTesting() const {
    return Batches.load(std::memory_order_relaxed);
  }
  std::uint64_t combinedOpsForTesting() const {
    return CombinedOps.load(std::memory_order_relaxed);
  }

  /// Heap owned by the skeleton: the per-thread publication records plus
  /// the metric sink's blocks.
  std::size_t heapBytes() const {
    return std::size_t{N} * sizeof(Record) + Sink.heapBytes();
  }

  /// One publication record. Cache-line-aligned so a publisher storing
  /// Pending never invalidates a neighbour's line; exposed for the
  /// false-sharing regression test.
  struct alignas(CacheLineSize) Record {
    AtomicRegister<std::uint8_t, Policy> State{};
    void *Req = nullptr;
    bool (*Run)(void *) = nullptr;
  };

private:
  enum : std::uint8_t { EmptyRec = 0, Pending = 1, Ready = 2 };

  /// Type-erased request: lives on the publisher's stack; the publisher
  /// spins until Ready, so the combiner's accesses never dangle.
  template <typename WeakOpFn, typename Result>
  struct CombineRequest {
    WeakOpFn &Op;
    std::optional<Result> Out;

    static bool run(void *P) {
      auto *R = static_cast<CombineRequest *>(P);
      if (auto Res = R->Op()) {
        R->Out = *Res;
        return true;
      }
      return false;
    }
  };

  /// Type-erased k-op request (strongApplyBatch). Next is the resume
  /// cursor: ops [Begin, Next) are applied, run() continues from Next.
  /// Only the thread holding CombinerBusy (or, between visits, nobody)
  /// touches the plain fields — the State handshake separates them from
  /// the publisher's reads, exactly like CombineRequest.
  template <typename WeakAtFn, typename StopFn, typename R>
  struct BatchRequest {
    WeakAtFn &At;
    StopFn &Stop;
    R *Out;
    std::size_t Next;
    std::size_t End;

    static bool run(void *P) {
      auto *B = static_cast<BatchRequest *>(P);
      while (B->Next < B->End) {
        auto Res = B->At(B->Next);
        if (!Res)
          return false; // straggler interference: resume here next visit
        B->Out[B->Next] = *Res;
        ++B->Next;
        if (B->Stop(B->Out[B->Next - 1]))
          break; // terminal answer: the batch's remainder is rejected
      }
      return true;
    }
  };

  /// The combiner's tenure. Caller holds CombinerBusy.
  void combine(std::uint32_t Tid) {
    Contention.value().write(1, std::memory_order_release);
    std::uint64_t Served = 0;
    for (std::uint32_t Round = 0; Round < Rounds; ++Round)
      for (std::uint32_t I = 0; I < N; ++I)
        if (Records[I].State.read(std::memory_order_acquire) == Pending)
          if (Records[I].Run(Records[I].Req)) {
            Records[I].State.write(Ready, std::memory_order_release);
            ++Served;
          }
    // The combiner must not retire with its own request unserved (its
    // publisher loop is this thread). Unbounded retry is sound for the
    // same reason as Figure 3 line 08: CONTENTION is up.
    Record &Mine = Records[Tid];
    if (Mine.State.read(std::memory_order_acquire) == Pending) {
      Manager Mgr;
      while (!Mine.Run(Mine.Req))
        Mgr.onAbort();
      Mgr.onSuccess();
      Mine.State.write(Ready, std::memory_order_release);
      ++Served;
    }
    Contention.value().write(0, std::memory_order_release);
    Batches.fetch_add(1, std::memory_order_relaxed);
    CombinedOps.fetch_add(Served, std::memory_order_relaxed);
    Sink.onEvent(Tid, obs::Event::CombinerBatch);
    Sink.onEvent(Tid, obs::Event::CombinedOp, Served);
  }

  const std::uint32_t N;
  const std::uint32_t Rounds;
  CacheLinePadded<AtomicRegister<std::uint8_t, Policy>> Contention;
  CacheLinePadded<AtomicRegister<std::uint8_t, Policy>> CombinerBusy;
  std::unique_ptr<Record[]> Records;
  std::atomic<std::uint64_t> Batches{0};
  std::atomic<std::uint64_t> CombinedOps{0};
  [[no_unique_address]] mutable obs::MetricSink Sink{N};
};

} // namespace csobj

#endif // CSOBJ_PERF_COMBININGSLOWPATH_H
