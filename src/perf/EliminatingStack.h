//===- perf/EliminatingStack.h - Elimination-accelerated Fig. 3 -*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 3 stack with an elimination window wedged between the
/// paper's shortcut (lines 01-03) and the doorway (line 04): when the
/// fast path fails — CONTENTION was raised, or the weak attempt lost its
/// C&S — the operation gets one rendezvous attempt to pair with an
/// inverse operation before competing for the lock. A matched push/pop
/// pair completes without ever touching TOP, turning the stack's central
/// hot spot into parallel slot traffic exactly when contention is
/// highest.
///
/// Correctness (the bounded-stack subtlety): an eliminated pair
/// linearizes push immediately followed by pop at the instant of the
/// matcher's *gate read* — one instrumented read of TOP showing
/// index < k. The partner is parked in the slot across that read (its
/// withdraw C&S would otherwise have emptied the slot and failed the
/// match), so the instant lies inside both operations' intervals, and it
/// witnesses not-full, which is the only precondition the pair needs:
/// the push is legal because the stack is not full, and the pop then
/// returns exactly the pushed value. See perf/EliminationArray.h for the
/// slot protocol and DESIGN.md ("Acceleration layer") for the full
/// argument.
///
/// Preserved guarantees:
///  * Solo cost: the contention-free execution is byte-identical to the
///    plain Figure 3 stack — one CONTENTION read plus the five weak-op
///    accesses, six total; the rescue window is never entered. The
///    conformance battery's access bounds enforce this.
///  * Starvation-freedom: the rescue is attempted exactly once per
///    operation, so every operation still reaches the doorway after a
///    bounded number of its own steps; Lemmas 1-3 and Theorem 1 apply
///    verbatim to the fall-through.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_PERF_ELIMINATINGSTACK_H
#define CSOBJ_PERF_ELIMINATINGSTACK_H

#include "core/AbortableStack.h"
#include "core/ContentionSensitive.h"
#include "locks/TasLock.h"
#include "perf/EliminationArray.h"

#include <cstddef>
#include <cstdint>
#include <optional>

namespace csobj {

/// Figure 3 over Figure 1, accelerated by a gated elimination array.
/// Template parameters match ContentionSensitiveStack (minus SkeletonT:
/// the rescue window needs the Figure 3 skeleton's
/// strongApplyWithRescue).
template <typename Config = Compact64, typename Lock = TasLock,
          ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
class EliminatingContentionSensitiveStack {
public:
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;
  static constexpr Value Bottom = AbortableStack<Config, Policy>::Bottom;

  // The rendezvous slots carry 32-bit payloads (the Compact64 family's
  // value field); wider codecs would need a wider slot word.
  static_assert(sizeof(Value) <= sizeof(std::uint32_t),
                "elimination slots carry 32-bit payloads");

  /// \p NumThreads is the paper's n; \p Capacity is k. \p SlotCount and
  /// \p SpinBudget size the elimination array (see EliminationArray.h;
  /// deterministic tests want {1, small}, benches want {~threads/2,
  /// larger}).
  EliminatingContentionSensitiveStack(std::uint32_t NumThreads,
                                      std::uint32_t Capacity,
                                      std::uint32_t SlotCount = 4,
                                      std::uint32_t SpinBudget = 64)
      : Weak(Capacity), Strong(NumThreads), Elim(SlotCount, SpinBudget) {}

  /// strong_push(v): Done or Full, never Abort; always terminates.
  PushResult push(std::uint32_t Tid, Value V) {
    auto WeakOp = [this, V]() -> std::optional<PushResult> {
      const PushResult Res = Weak.weakPush(V);
      if (Res == PushResult::Abort)
        return std::nullopt;
      return Res;
    };
    auto Rescue = [this, Tid, V]() -> std::optional<PushResult> {
      if (Elim.tryGive(static_cast<std::uint32_t>(V), slotHint(Tid),
                       notFullGate())) {
        Strong.metrics().onEvent(Tid, obs::Event::EliminatedPush);
        return PushResult::Done;
      }
      return std::nullopt;
    };
    if (ForceRescue) {
      if (auto Res = Rescue()) {
        // Outside the skeleton, so book the op and its path here to keep
        // the conservation law exact under the testing knob.
        Strong.metrics().onOp(Tid);
        Strong.metrics().onPath(Tid, obs::Path::Eliminated);
        return *Res;
      }
      return Strong.strongApply(Tid, WeakOp);
    }
    return Strong.strongApplyWithRescue(Tid, WeakOp, Rescue);
  }

  /// strong_pop(): a value or Empty, never Abort; always terminates.
  PopResult<Value> pop(std::uint32_t Tid) {
    auto WeakOp = [this]() -> std::optional<PopResult<Value>> {
      const PopResult<Value> Res = Weak.weakPop();
      if (Res.isAbort())
        return std::nullopt;
      return Res;
    };
    auto Rescue = [this, Tid]() -> std::optional<PopResult<Value>> {
      if (auto V = Elim.tryTake(slotHint(Tid), notFullGate())) {
        Strong.metrics().onEvent(Tid, obs::Event::EliminatedPop);
        return PopResult<Value>::value(static_cast<Value>(*V));
      }
      return std::nullopt;
    };
    if (ForceRescue) {
      if (auto Res = Rescue()) {
        Strong.metrics().onOp(Tid);
        Strong.metrics().onPath(Tid, obs::Path::Eliminated);
        return *Res;
      }
      return Strong.strongApply(Tid, WeakOp);
    }
    return Strong.strongApplyWithRescue(Tid, WeakOp, Rescue);
  }

  std::uint32_t capacity() const { return Weak.capacity(); }
  std::uint32_t numThreads() const { return Strong.numThreads(); }
  std::uint32_t sizeForTesting() const { return Weak.sizeForTesting(); }

  AbortableStack<Config, Policy> &abortable() { return Weak; }
  ContentionSensitive<Lock, Manager, Policy> &skeleton() { return Strong; }
  EliminationArrayT<Policy> &eliminationArray() { return Elim; }

  /// Path-attributed metrics of the skeleton (obs/PathCounters.h); the
  /// Eliminated path and the pairing events are booked here too.
  obs::PathSnapshot pathSnapshot() const { return Strong.pathSnapshot(); }

  /// Resident bytes: header plus the stack slots, skeleton heap and
  /// elimination slots. Feeds the bytes_per_element bench column.
  std::size_t footprintBytes() const {
    return sizeof(*this) + Weak.heapBytes() + Strong.heapBytes() +
           Elim.heapBytes();
  }
  obs::Path lastPath(std::uint32_t Tid) const {
    return Strong.metrics().lastPath(Tid);
  }

  /// Operations finished via elimination (test/bench aid).
  std::uint64_t eliminationExchangesForTesting() const {
    return Elim.exchangesForTesting();
  }

  /// Testing knob: route every operation through the rescue window FIRST
  /// (before the fast path), falling back to the plain Figure 3 path if
  /// the rendezvous fails. Directed-schedule tests use this to build
  /// executions whose leading accesses are elimination-slot accesses
  /// only, making access indices predictable. Never enabled in
  /// production paths.
  void forceRescueForTesting(bool Force) { ForceRescue = Force; }

private:
  /// The matcher-side gate: one instrumented read of TOP witnessing
  /// index < k (see file comment).
  auto notFullGate() {
    return [this] { return Weak.readTop().Index < Weak.capacity(); };
  }

  /// Per-thread rotating slot hint; EliminationArray mixes it.
  static std::uint64_t slotHint(std::uint32_t Tid) {
    static thread_local std::uint64_t Counter = 0;
    return (static_cast<std::uint64_t>(Tid) << 32) ^ Counter++;
  }

  AbortableStack<Config, Policy> Weak;
  ContentionSensitive<Lock, Manager, Policy> Strong;
  EliminationArrayT<Policy> Elim;
  bool ForceRescue = false;
};

} // namespace csobj

#endif // CSOBJ_PERF_ELIMINATINGSTACK_H
