//===- perf/EliminationArray.h - Generic timed rendezvous ------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic elimination array: inverse operations (give/take) rendezvous
/// in CASable slots and cancel out without touching the central object.
/// The slot state machine is the HSY one (Empty -> WaitingGive/WaitingTake
/// -> Done -> Empty, ABA-tagged; see baselines/EliminationBackoffStack.h),
/// generalized in three ways for the acceleration layer:
///
///  * policy-templated and hook-routed: every slot access goes through
///    AtomicRegister<_, Policy>, so rendezvous runs under the wall-clock
///    Driver, the interleaving Explorer, ChaosHook and FaultInjector
///    alike. The spin budget is a bounded number of slot re-reads, so a
///    rendezvous contributes a bounded subtree to the schedule space.
///  * match-gated: the *matcher* — whichever side completes the pairing
///    CAS — first evaluates a caller-supplied gate. The gate read is the
///    linearizability witness: a successful match means the gate held at
///    an instant inside both operations' intervals (the partner was
///    parked in the slot from before the gate read until after the CAS,
///    or its withdraw CAS would have fired), so a bounded stack passes
///    "TOP.index < k" and the eliminated push/pop pair may legally
///    linearize back-to-back at that instant even though it never touches
///    TOP. Pass an always-true gate for unbounded objects.
///  * padded: each slot owns its cache line(s), so parallel rendezvous on
///    different slots never false-share.
///
/// The exchange counter is a plain relaxed std::atomic, deliberately NOT
/// an AtomicRegister: statistics must not add decision points to the
/// explorer's schedule tree or accesses to the solo counts.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_PERF_ELIMINATIONARRAY_H
#define CSOBJ_PERF_ELIMINATIONARRAY_H

#include "memory/AtomicRegister.h"
#include "support/BitPack.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"
#include "support/SplitMix64.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

namespace csobj {

namespace detail {
/// Per-instance nonce for elimination slot-probe hints, analogous to
/// deriveBackoffSeed (support/Backoff.h): a global construction sequence
/// whitened through SplitMix64. Facades mix this into their slot hints so
/// two unrelated objects never walk the same probe sequence — a shared
/// `static thread_local` probe counter alone restarts identically in
/// every fresh thread, correlating rendezvous attempts across instances.
inline std::uint64_t deriveSlotNonce() {
  static std::atomic<std::uint64_t> Nonce{0};
  SplitMix64 Mix((Nonce.fetch_add(1, std::memory_order_relaxed) + 1) *
                 0x9e3779b97f4a7c15ull);
  return Mix();
}
} // namespace detail

/// Elimination array over 32-bit payloads (the value field of the
/// Compact64 codec family).
///
/// \tparam Policy register policy (Instrumented / Fast).
template <typename Policy = DefaultRegisterPolicy>
class EliminationArrayT {
public:
  using Value = std::uint32_t;
  using RegisterPolicy = Policy;

  /// \p SlotCount rendezvous slots; \p SpinBudget bounded wait (in slot
  /// re-reads) for a partner before withdrawing. A single slot with a
  /// small budget keeps the schedule tree tiny for deterministic tests;
  /// benches use a handful of slots and a larger budget.
  explicit EliminationArrayT(std::uint32_t SlotCount = 4,
                             std::uint32_t SpinBudget = 64)
      : SlotCount(SlotCount), SpinBudget(SpinBudget),
        Slots(new PaddedSlot[SlotCount]) {
    assert(SlotCount >= 1 && "need at least one rendezvous slot");
  }

  /// One rendezvous attempt as the giver: parks \p V in the slot chosen
  /// by \p SlotHint (or hands it straight to a waiting taker). Returns
  /// true iff a taker consumed the value. \p Gate is evaluated by the
  /// matcher immediately before the pairing CAS; returning false declines
  /// the match (see file comment).
  template <typename GateFn>
  bool tryGive(Value V, std::uint64_t SlotHint, GateFn Gate) {
    AtomicRegister<std::uint64_t, Policy> &Slot = slotAt(SlotHint);
    const std::uint64_t W = Slot.read();
    switch (stateOf(W)) {
    case Empty: {
      const std::uint64_t Waiting = makeSlot(WaitingGive, V, bumpTag(W));
      if (!Slot.compareAndSwap(W, Waiting))
        return false;
      const std::uint32_t Budget = spinBudget();
      for (std::uint32_t Spin = 0; Spin < Budget; ++Spin) {
        if (Slot.read() != Waiting) {
          // Only a matching taker can move us (WaitingGive -> Done).
          Slot.write(makeSlot(Empty, 0, bumpTag(Waiting) + 1));
          noteExchange();
          return true;
        }
        cpuRelax();
      }
      // Withdraw; a failed withdrawal means a taker matched meanwhile.
      if (Slot.compareAndSwap(Waiting, makeSlot(Empty, 0, bumpTag(Waiting))))
        return false;
      Slot.write(makeSlot(Empty, 0, bumpTag(Waiting) + 1));
      noteExchange();
      return true;
    }
    case WaitingTake:
      // We are the matcher: witness the gate, then hand the value over.
      if (!Gate())
        return false;
      if (Slot.compareAndSwap(W, makeSlot(Done, V, bumpTag(W)))) {
        noteExchange();
        return true;
      }
      return false;
    case WaitingGive:
    case Done:
      return false;
    }
    return false;
  }

  /// One rendezvous attempt as the taker; returns the giver's value on a
  /// match. Same gate contract as tryGive.
  template <typename GateFn>
  std::optional<Value> tryTake(std::uint64_t SlotHint, GateFn Gate) {
    AtomicRegister<std::uint64_t, Policy> &Slot = slotAt(SlotHint);
    const std::uint64_t W = Slot.read();
    switch (stateOf(W)) {
    case Empty: {
      const std::uint64_t Waiting = makeSlot(WaitingTake, 0, bumpTag(W));
      if (!Slot.compareAndSwap(W, Waiting))
        return std::nullopt;
      const std::uint32_t Budget = spinBudget();
      for (std::uint32_t Spin = 0; Spin < Budget; ++Spin) {
        const std::uint64_t Now = Slot.read();
        if (Now != Waiting) {
          // A giver moved us to Done carrying its value.
          const Value V = valueOf(Now);
          Slot.write(makeSlot(Empty, 0, bumpTag(Now)));
          noteExchange();
          return V;
        }
        cpuRelax();
      }
      if (Slot.compareAndSwap(Waiting, makeSlot(Empty, 0, bumpTag(Waiting))))
        return std::nullopt;
      const std::uint64_t Now = Slot.read();
      const Value V = valueOf(Now);
      Slot.write(makeSlot(Empty, 0, bumpTag(Now)));
      noteExchange();
      return V;
    }
    case WaitingGive: {
      if (!Gate())
        return std::nullopt;
      const Value V = valueOf(W);
      if (Slot.compareAndSwap(W, makeSlot(Done, V, bumpTag(W)))) {
        noteExchange();
        return V;
      }
      return std::nullopt;
    }
    case WaitingTake:
    case Done:
      return std::nullopt;
    }
    return std::nullopt;
  }

  std::uint32_t slotCount() const { return SlotCount; }
  std::uint32_t spinBudget() const {
    return SpinBudget.load(std::memory_order_relaxed);
  }

  /// Retunes the rendezvous window width. The budget is a plain relaxed
  /// atomic like the exchange counter — a control knob, not algorithm
  /// state — so adjusting it adds no decision points to the explorer's
  /// schedule tree and no accesses to the solo counts. Each rendezvous
  /// reads the budget once on entry; in-flight waits finish under the
  /// budget they started with.
  void setSpinBudget(std::uint32_t Budget) {
    SpinBudget.store(Budget, std::memory_order_relaxed);
  }

  /// Heap owned by the array: the padded rendezvous slots.
  std::size_t heapBytes() const {
    return std::size_t{SlotCount} * sizeof(PaddedSlot);
  }

  /// Completed rendezvous (counted once per pair, by the side that
  /// observes the Done handoff first — matcher and parked partner both
  /// note it, so this counts *operations* finished via elimination).
  std::uint64_t exchangesForTesting() const {
    return Exchanges.load(std::memory_order_relaxed);
  }

  /// The slot element type, exposed so the false-sharing regression can
  /// static_assert that adjacent slots never share a line.
  struct alignas(CacheLineSize) PaddedSlot {
    AtomicRegister<std::uint64_t, Policy> Word{};
  };

private:
  enum SlotState : std::uint64_t {
    Empty = 0,
    WaitingGive = 1,
    WaitingTake = 2,
    Done = 3
  };

  // Slot word: state:2 | value:32 | tag:30.
  using StateField = BitField<std::uint64_t, 0, 2>;
  using ValueField = BitField<std::uint64_t, 2, 32>;
  using TagField = BitField<std::uint64_t, 34, 30>;

  static std::uint64_t makeSlot(SlotState S, Value V, std::uint64_t Tag) {
    return StateField::encode(S) | ValueField::encode(V) |
           TagField::encode(Tag & TagField::maxValue());
  }
  static SlotState stateOf(std::uint64_t W) {
    return static_cast<SlotState>(StateField::get(W));
  }
  static Value valueOf(std::uint64_t W) {
    return static_cast<Value>(ValueField::get(W));
  }
  static std::uint64_t bumpTag(std::uint64_t W) {
    return (TagField::get(W) + 1) & TagField::maxValue();
  }

  AtomicRegister<std::uint64_t, Policy> &slotAt(std::uint64_t Hint) {
    // Fibonacci-hash the hint so sequential per-thread hints spread.
    const std::uint64_t Mixed = Hint * 0x9e3779b97f4a7c15ull;
    return Slots[Mixed % SlotCount].Word;
  }

  void noteExchange() { Exchanges.fetch_add(1, std::memory_order_relaxed); }

  const std::uint32_t SlotCount;
  std::atomic<std::uint32_t> SpinBudget;
  std::unique_ptr<PaddedSlot[]> Slots;
  std::atomic<std::uint64_t> Exchanges{0};
};

/// The library-default elimination array.
using EliminationArray = EliminationArrayT<>;

} // namespace csobj

#endif // CSOBJ_PERF_ELIMINATIONARRAY_H
