//===- perf/CombiningObjects.h - Flat-combining object family ---*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four contention-sensitive wrappers instantiated over the
/// flat-combining skeleton instead of the paper's Figure 3. This is the
/// payoff of making the skeleton a template parameter: the wrappers'
/// code — and their fast paths, and therefore their solo access
/// counts — are unchanged; only the contended slow path differs (one
/// combiner serves a batch instead of the doorway serializing one lock
/// handoff per operation). The Lock parameter of the wrapper templates
/// is vestigial here (the combining skeleton holds no lock) but is kept
/// so the aliases read like their Figure 3 counterparts.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_PERF_COMBININGOBJECTS_H
#define CSOBJ_PERF_COMBININGOBJECTS_H

#include "core/ContentionSensitiveCounter.h"
#include "core/ContentionSensitiveDeque.h"
#include "core/ContentionSensitiveQueue.h"
#include "core/ContentionSensitiveStack.h"
#include "perf/CombiningSlowPath.h"

namespace csobj {

/// Bounded stack with a flat-combining contended path; solo push/pop is
/// still exactly six shared-memory accesses.
template <typename Config = Compact64, ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
using CombiningStack =
    ContentionSensitiveStack<Config, TasLock, Manager, Policy,
                             CombiningContentionSensitive<Manager, Policy>>;

/// Bounded FIFO queue with a flat-combining contended path; solo
/// enqueue/dequeue is still exactly seven shared-memory accesses.
template <typename Config = Compact64, ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
using CombiningQueue =
    ContentionSensitiveQueue<Config, TasLock, Manager, Policy,
                             CombiningContentionSensitive<Manager, Policy>>;

/// HLM deque with a flat-combining contended path.
using CombiningDeque =
    ContentionSensitiveDeque<TasLock, CombiningContentionSensitive<>>;

/// Counter with a flat-combining contended path; solo add is still
/// exactly three shared-memory accesses.
using CombiningCounter =
    ContentionSensitiveCounter<TasLock, CombiningContentionSensitive<>>;

} // namespace csobj

#endif // CSOBJ_PERF_COMBININGOBJECTS_H
