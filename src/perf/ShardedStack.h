//===- perf/ShardedStack.h - Sharded Fig. 3 stacks with balancing -*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// N independent Figure 3 stacks (each with its own TOP, CONTENTION,
/// doorway and lock) behind one push/pop facade, with an elimination
/// array balancing load between them. Threads start probing at their
/// home shard (Tid mod N), so at low thread counts each shard behaves
/// like a solo Figure 3 stack — six shared accesses, no lock — while at
/// high thread counts contention splits N ways.
///
/// Semantics: a *bag* (pool) with capacity k, not a LIFO stack — pops
/// return some pushed-but-unpopped element (per-shard LIFO order only).
/// This is the standard trade for sharding; the conformance battery
/// checks it against BoundedBagSpec, and stress tests check element
/// conservation. Full/Empty answers remain total and linearizable:
///
///  * push returns Full only on an *all-full simultaneous witness*: the
///    packed TOP words of all shards (each carrying a sequence number
///    bumped by every successful operation) are collected twice; if the
///    second collect equals the first word-for-word and every word shows
///    index == k/N, then no successful operation executed anywhere in
///    the window, so there is an instant at which every shard — hence
///    the bag — was full. Eliminated pairs do not bump TOP but are
///    net-zero (a push immediately consumed by a pop), so they cannot
///    invalidate the witness. Pop's Empty answer is symmetric.
///  * a matched elimination pair linearizes push;pop at the matcher's
///    gate read of the home shard's TOP showing index < k/N — a
///    bag-not-full witness (see perf/EliminatingStack.h; the argument
///    carries over verbatim because a bag push only needs "not full").
///
/// The elimination array is armed at TWO seams. The home-shard probe
/// runs through the shard skeleton's rescue window
/// (strongApplyWithRescue): when the shortcut fails — CONTENTION up or
/// a weak attempt aborted — the op tries to pair with an inverse op
/// *before* competing for the shard's lock. This is the inter-shard
/// balancer: it fires under ordinary mixed load, not only at capacity
/// boundaries. The facade seam (above) additionally tries elimination
/// after ALL shards answered Full/Empty, before certifying. Early
/// versions armed only the facade seam, and E12 measured
/// elimination_exchanges == 0 — the boundary is never reached in a
/// half-full bag, so the balancer never ran.
///
/// Progress: each shard operation is starvation-free (Theorem 1 applies
/// per shard), but the outer probe loop restarts when the double collect
/// detects movement, so the facade as a whole is only obstruction-free
/// at the boundary cases — against a storm of successful operations on
/// other shards, a Full/Empty answer can be deferred indefinitely. In
/// return, non-boundary operations never help and never wait on other
/// shards. DESIGN.md places this on the progress-downgrade lattice.
/// Failed boundary rounds back off (randomized exponential, yielding
/// past the cap): on an oversubscribed host the chaser's hot spin is
/// precisely what starves the operations that would quiesce the bag, so
/// surrendering the timeslice is both a courtesy and the fastest route
/// to a stable witness. The soak harness's per-op watchdog caught the
/// unthrottled loop chasing a churning near-boundary bag past its
/// deadline; the backoff is off the solo path (first probe succeeds).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_PERF_SHARDEDSTACK_H
#define CSOBJ_PERF_SHARDEDSTACK_H

#include "core/ContentionSensitiveStack.h"
#include "obs/PathCounters.h"
#include "perf/EliminationArray.h"
#include "support/Backoff.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>

namespace csobj {

/// \tparam NumShards number of independent Figure 3 stacks.
/// Remaining parameters as ContentionSensitiveStack.
template <std::uint32_t NumShards = 4, typename Config = Compact64,
          typename Lock = TasLock, ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
class ShardedStack {
public:
  using Shard = ContentionSensitiveStack<Config, Lock, Manager, Policy>;
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;

  static_assert(NumShards >= 1, "need at least one shard");
  static_assert(sizeof(Value) <= sizeof(std::uint32_t),
                "elimination slots carry 32-bit payloads");

  /// \p TotalCapacity must divide evenly across the shards and give each
  /// shard at least one slot. Violations throw std::invalid_argument —
  /// hard checks, not asserts, because an NDEBUG build would otherwise
  /// silently construct a zero-capacity or capacity-losing bag.
  ShardedStack(std::uint32_t NumThreads, std::uint32_t TotalCapacity,
               std::uint32_t SlotCount = 4, std::uint32_t SpinBudget = 64)
      : N(NumThreads), PerShard(checkedPerShard(TotalCapacity)),
        Elim(SlotCount, SpinBudget) {
    for (std::uint32_t S = 0; S < NumShards; ++S)
      Shards[S].emplace(NumThreads, PerShard);
  }

  /// Bag push: Done, or Full on an all-full simultaneous witness.
  PushResult push(std::uint32_t Tid, Value V) {
    const std::uint32_t Home = Tid % NumShards;
    if (ForceBalance) {
      // Test knob: route through the balancer first, booking the facade
      // sink so conservation stays exact (mirrors EliminatingStack's
      // forceRescueForTesting).
      if (Elim.tryGive(static_cast<std::uint32_t>(V), slotHint(Tid),
                       notFullGate(Home))) {
        Sink.onOp(Tid);
        Sink.onPath(Tid, obs::Path::Eliminated);
        Sink.onEvent(Tid, obs::Event::EliminatedPush);
        return PushResult::Done;
      }
    }
    std::optional<ExponentialBackoff> Boundary;
    while (true) {
      for (std::uint32_t I = 0; I < NumShards; ++I) {
        const std::uint32_t S = (Home + I) % NumShards;
        const PushResult Res = I == 0 ? balancedPush(Tid, S, V)
                                      : shard(S).push(Tid, V);
        if (Res == PushResult::Done)
          return PushResult::Done;
      }
      // Every shard answered Full at its own instant. Before certifying,
      // try handing the value to a concurrent pop.
      if (Elim.tryGive(static_cast<std::uint32_t>(V), slotHint(Tid),
                       notFullGate(Home))) {
        // Facade-level pairing bypasses every shard skeleton: book the
        // op and its path into the facade sink so the conservation law
        // (ops == Σ paths, per sink) stays exact.
        Sink.onOp(Tid);
        Sink.onPath(Tid, obs::Path::Eliminated);
        Sink.onEvent(Tid, obs::Event::EliminatedPush);
        return PushResult::Done;
      }
      if (allShardsStable(/*WantFull=*/true))
        return PushResult::Full;
      // Movement detected: some shard had (or freed) room — re-probe,
      // but back off first (lazily built: the solo path never gets
      // here, and construction draws a per-thread RNG seed).
      if (!Boundary)
        Boundary.emplace();
      Boundary->onFailure();
    }
  }

  /// Bag pop: some element, or Empty on an all-empty simultaneous
  /// witness.
  PopResult<Value> pop(std::uint32_t Tid) {
    const std::uint32_t Home = Tid % NumShards;
    if (ForceBalance) {
      if (auto V = Elim.tryTake(slotHint(Tid), notFullGate(Home))) {
        Sink.onOp(Tid);
        Sink.onPath(Tid, obs::Path::Eliminated);
        Sink.onEvent(Tid, obs::Event::EliminatedPop);
        return PopResult<Value>::value(static_cast<Value>(*V));
      }
    }
    std::optional<ExponentialBackoff> Boundary;
    while (true) {
      for (std::uint32_t I = 0; I < NumShards; ++I) {
        const std::uint32_t S = (Home + I) % NumShards;
        const PopResult<Value> Res =
            I == 0 ? balancedPop(Tid, S) : shard(S).pop(Tid);
        if (Res.isValue())
          return Res;
      }
      if (auto V = Elim.tryTake(slotHint(Tid), notFullGate(Home))) {
        Sink.onOp(Tid);
        Sink.onPath(Tid, obs::Path::Eliminated);
        Sink.onEvent(Tid, obs::Event::EliminatedPop);
        return PopResult<Value>::value(static_cast<Value>(*V));
      }
      if (allShardsStable(/*WantFull=*/false))
        return PopResult<Value>::empty();
      if (!Boundary)
        Boundary.emplace();
      Boundary->onFailure();
    }
  }

  /// Group push: fans the batch out across shards starting at home —
  /// each shard applies its chunk through its own group seam (one lock
  /// tenure per shard touched, not per element). Leftovers (every shard
  /// answered Full mid-batch) fall back to the facade's per-element push
  /// so elimination and the all-full certificate still apply; stops at
  /// the first total Full answer. Returns the number pushed (a prefix of
  /// Vs lands in the bag).
  std::size_t push_all(std::uint32_t Tid, const Value *Vs,
                       std::size_t Count) {
    const std::uint32_t Home = Tid % NumShards;
    std::size_t Pushed = 0;
    for (std::uint32_t I = 0; I < NumShards && Pushed < Count; ++I)
      Pushed += shard((Home + I) % NumShards)
                    .push_all(Tid, Vs + Pushed, Count - Pushed);
    const std::size_t SeamPushed = Pushed;
    while (Pushed < Count && push(Tid, Vs[Pushed]) == PushResult::Done)
      ++Pushed;
    bookBatchFallback(Tid, Pushed - SeamPushed);
    return Pushed;
  }

  /// Group pop: drains up to \p MaxCount elements across shards starting
  /// at home (per-shard group seam), then falls back to the facade's
  /// per-element pop for the all-empty certificate. Returns the number
  /// of values written to Out.
  std::size_t pop_all(std::uint32_t Tid, Value *Out, std::size_t MaxCount) {
    const std::uint32_t Home = Tid % NumShards;
    std::size_t Got = 0;
    for (std::uint32_t I = 0; I < NumShards && Got < MaxCount; ++I)
      Got += shard((Home + I) % NumShards)
                 .pop_all(Tid, Out + Got, MaxCount - Got);
    const std::size_t SeamGot = Got;
    while (Got < MaxCount) {
      const PopResult<Value> Res = pop(Tid);
      if (!Res.isValue())
        break;
      Out[Got++] = Res.value();
    }
    bookBatchFallback(Tid, Got - SeamGot);
    return Got;
  }

  /// Drains the bag: pop_all bounded by the caller's buffer.
  std::size_t drain(std::uint32_t Tid, Value *Out, std::size_t MaxOut) {
    return pop_all(Tid, Out, MaxOut);
  }

  /// Test knob: route every facade op through the elimination array
  /// first, so a directed schedule can force an exchange without racing
  /// the shards.
  void forceBalancerForTesting(bool Force) { ForceBalance = Force; }

  /// Exposes the slot-probe hint stream so the two-instance divergence
  /// regression can observe it without racing the rendezvous machinery.
  std::uint64_t slotHintForTesting(std::uint32_t Tid) {
    return slotHint(Tid);
  }

  std::uint32_t capacity() const { return PerShard * NumShards; }
  std::uint32_t shardCapacity() const { return PerShard; }
  static constexpr std::uint32_t shardCount() { return NumShards; }
  std::uint32_t numThreads() const { return shardAt(0).numThreads(); }

  /// Sum of shard sizes; exact when quiescent (test/debug aid).
  std::uint32_t sizeForTesting() const {
    std::uint32_t Total = 0;
    for (std::uint32_t S = 0; S < NumShards; ++S)
      Total += shardAt(S).sizeForTesting();
    return Total;
  }

  Shard &shard(std::uint32_t S) { return *Shards[S]; }
  EliminationArrayT<Policy> &eliminationArray() { return Elim; }
  std::uint64_t eliminationExchangesForTesting() const {
    return Elim.exchangesForTesting();
  }

  /// Aggregated path-attributed metrics: the facade sink (facade-level
  /// eliminations) plus every shard skeleton. One facade op may enter
  /// several shard skeletons, so Ops here is >= the harness's op count;
  /// the conservation law (Ops == Σ paths) still holds because each
  /// sink's entries and exits balance independently.
  obs::PathSnapshot pathSnapshot() const {
    obs::PathSnapshot Total = Sink.snapshot();
    for (std::uint32_t S = 0; S < NumShards; ++S)
      Total += shardAt(S).pathSnapshot();
    return Total;
  }

  /// Resident bytes of the facade: its header (which embeds the shard
  /// objects), each shard's heap, the balancer slots and the facade
  /// sink's blocks. Feeds the bytes_per_element bench column.
  std::size_t footprintBytes() const {
    std::size_t Bytes = sizeof(*this) + Elim.heapBytes() + Sink.heapBytes();
    for (std::uint32_t S = 0; S < NumShards; ++S)
      Bytes += shardAt(S).footprintBytes() - sizeof(Shard);
    return Bytes;
  }

private:
  const Shard &shardAt(std::uint32_t S) const { return *Shards[S]; }

  /// Home-shard probe with the inter-shard balancer armed as the
  /// skeleton's rescue window: a failed shortcut tries to hand the value
  /// to a concurrent pop before competing for the shard's lock. The
  /// contention-free execution is untouched (rescue never invoked), so
  /// the solo six-access bound is preserved. Pairing books into the
  /// shard skeleton's sink — strongApplyWithRescue books the Eliminated
  /// path, the rescue lambda books the matching event, so per-sink
  /// conservation stays exact.
  PushResult balancedPush(std::uint32_t Tid, std::uint32_t S, Value V) {
    Shard &Sh = shard(S);
    return Sh.skeleton().strongApplyWithRescue(
        Tid,
        [&Sh, V]() -> std::optional<PushResult> {
          const PushResult Res = Sh.abortable().weakPush(V);
          if (Res == PushResult::Abort)
            return std::nullopt;
          return Res;
        },
        [this, &Sh, Tid, S, V]() -> std::optional<PushResult> {
          if (Elim.tryGive(static_cast<std::uint32_t>(V), slotHint(Tid),
                           notFullGate(S))) {
            Sh.skeleton().metrics().onEvent(Tid,
                                            obs::Event::EliminatedPush);
            return PushResult::Done;
          }
          return std::nullopt;
        });
  }

  PopResult<Value> balancedPop(std::uint32_t Tid, std::uint32_t S) {
    Shard &Sh = shard(S);
    return Sh.skeleton().strongApplyWithRescue(
        Tid,
        [&Sh]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Sh.abortable().weakPop();
          if (Res.isAbort())
            return std::nullopt;
          return Res;
        },
        [this, &Sh, Tid, S]() -> std::optional<PopResult<Value>> {
          if (auto V = Elim.tryTake(slotHint(Tid), notFullGate(S))) {
            Sh.skeleton().metrics().onEvent(Tid, obs::Event::EliminatedPop);
            return PopResult<Value>::value(static_cast<Value>(*V));
          }
          return std::nullopt;
        });
  }

  /// Bag-not-full gate for the matcher: one instrumented read of the
  /// home shard's TOP showing room there (conservative — declines when
  /// the home shard happens to be full even if others are not).
  auto notFullGate(std::uint32_t Home) {
    return [this, Home] {
      return shard(Home).abortable().readTop().Index < PerShard;
    };
  }

  /// The double collect: returns true iff all shards were simultaneously
  /// full (WantFull) / empty (!WantFull) — certified by two equal
  /// collects of the seq-carrying TOP words (see file comment).
  bool allShardsStable(bool WantFull) {
    const std::uint32_t Want = WantFull ? PerShard : 0;
    std::array<TopWord, NumShards> First;
    for (std::uint32_t S = 0; S < NumShards; ++S) {
      const TopWord W = shard(S).abortable().readTopWord();
      if (decodeIndex(W) != Want)
        return false;
      First[S] = W;
    }
    for (std::uint32_t S = 0; S < NumShards; ++S)
      if (shard(S).abortable().readTopWord() != First[S])
        return false;
    return true;
  }

  using TopC = typename AbortableStack<Config, Policy>::TopC;
  using TopWord = typename TopC::Word;

  static std::uint32_t decodeIndex(TopWord W) {
    return static_cast<std::uint32_t>(TopC::unpack(W).Index);
  }

  static std::uint32_t checkedPerShard(std::uint32_t TotalCapacity) {
    if (TotalCapacity % NumShards != 0)
      throw std::invalid_argument(
          "ShardedStack: capacity must divide evenly across shards");
    if (TotalCapacity / NumShards == 0)
      throw std::invalid_argument(
          "ShardedStack: each shard needs capacity >= 1");
    return TotalCapacity / NumShards;
  }

  /// Slot-probe hint: home-biased by Tid, advanced per probe, and
  /// decorrelated between facade instances by the per-object nonce (the
  /// bare thread_local counter restarts identically in every fresh
  /// thread, so without the nonce two unrelated facades probe the same
  /// slot sequence).
  std::uint64_t slotHint(std::uint32_t Tid) {
    static thread_local std::uint64_t Counter = 0;
    return (static_cast<std::uint64_t>(Tid) << 32) ^ SlotNonce ^ Counter++;
  }

  /// Books \p Fallback batch elements that landed through the facade's
  /// per-element boundary loop instead of a shard group seam. The shard
  /// skeletons already retired those entries on their own (non-batched)
  /// paths, so without this the group's path_batched / group-size
  /// histogram under-report exactly the fallback suffix; one facade-level
  /// group booking restores "every element of a group API call is
  /// counted as group work" while keeping each sink's conservation law
  /// intact (ops and paths are added in balance).
  void bookBatchFallback(std::uint32_t Tid, std::size_t Fallback) {
    if (Fallback == 0)
      return;
    Sink.onOp(Tid, Fallback);
    Sink.onPath(Tid, obs::Path::Batched, Fallback);
    Sink.onBatch(Tid, Fallback);
  }

  const std::uint32_t N;
  const std::uint32_t PerShard;
  const std::uint64_t SlotNonce = detail::deriveSlotNonce();
  std::array<std::optional<Shard>, NumShards> Shards;
  EliminationArrayT<Policy> Elim;
  bool ForceBalance = false;
  [[no_unique_address]] mutable obs::MetricSink Sink{N};
};

} // namespace csobj

#endif // CSOBJ_PERF_SHARDEDSTACK_H
