//===- perf/AdaptiveShardedStack.h - Runtime-sharded Fig. 3 bag -*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A runtime-sharded facade over per-shard Figure 3 stacks: the static
/// ShardedStack<N> splits contention N ways but pays the multi-shard
/// probe forever, even solo. Here the shard *mask* adapts: `Active` of
/// the MaxShards constructed shards accept traffic, and a ShardController
/// samples PathSnapshot deltas to grow the mask under lock-path pressure,
/// shrink it back when the delta is shortcut-dominant, and retune the
/// elimination gate's spin budget from the pairing rate. At Active == 1
/// every operation is a plain Figure 3 operation on shard 0 — exactly six
/// shared accesses solo, oracle-checked (perf_test, E18).
///
/// Semantics are ShardedStack's bag with one sharpening: observable
/// capacity is ALWAYS TotalCapacity. A push that finds every *active*
/// shard full does not certify Full while growth is possible — it
/// activates another shard and re-probes; Full can only be certified at
/// the full mask.
///
/// Reconfiguration protocol (all configuration words — Active, Epoch,
/// the controller tick counter — are plain std::atomics, the same
/// convention as the elimination exchange counter and the metric sinks:
/// control state, not algorithm state, invisible to the access-count
/// oracle, the explorer and the fault injectors):
///
///  * grow: CAS Active up, bump Epoch, book Event::ShardGrow.
///  * shrink: CAS Active down, bump Epoch, book Event::ShardShrink.
///    Retirement is LAZY — it moves no elements, so a crash cannot
///    strand any. Elements left in (or straggler-pushed into) a retired
///    shard are recovered pull-based: the Empty-boundary certificate
///    observes them and pops the retired shard directly; a later grow
///    simply re-activates the shard, stragglers included.
///
/// Certificates: probing is restricted to the active mask, and the
/// Full/Empty double collect is epoch-tagged — the witness reads Epoch
/// before the first collect and re-checks it after the second, so a
/// concurrent grow/shrink forces a re-probe instead of a stale
/// certificate. The collect itself spans the full shard array: Full is
/// only certified at the full mask (where mask == array), and Empty must
/// prove even retired shards hold no stragglers — two equal collects of
/// all seq-carrying TOP words certify one instant at which the whole bag
/// was empty, which a mask-only collect cannot do while retirement is
/// lazy (a straggler in a retired shard would be invisible to it).
///
/// Progress: as ShardedStack — per-shard operations are starvation-free,
/// boundary answers are obstruction-free (re-probe on movement, now also
/// on reconfiguration), and failed boundary rounds take the same
/// randomized backoff so a chaser surrenders its timeslice instead of
/// hot-spinning through the churn. DESIGN.md "Adaptive sharding control
/// loop".
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_PERF_ADAPTIVESHARDEDSTACK_H
#define CSOBJ_PERF_ADAPTIVESHARDEDSTACK_H

#include "core/ContentionSensitiveStack.h"
#include "obs/PathCounters.h"
#include "perf/EliminationArray.h"
#include "perf/ShardController.h"
#include "support/Backoff.h"

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>

namespace csobj {

/// \tparam MaxShards upper bound of the active-shard mask; all shards
/// are constructed up front (capacity TotalCapacity / MaxShards each)
/// and activation is a mask move, never an allocation.
/// Remaining parameters as ContentionSensitiveStack.
template <std::uint32_t MaxShards = 8, typename Config = Compact64,
          typename Lock = TasLock, ContentionManager Manager = NoBackoff,
          typename Policy = DefaultRegisterPolicy>
class AdaptiveShardedStack {
public:
  using Shard = ContentionSensitiveStack<Config, Lock, Manager, Policy>;
  using Value = typename Config::Value;
  using RegisterPolicy = Policy;

  static_assert(MaxShards >= 1, "need at least one shard");
  static_assert(sizeof(Value) <= sizeof(std::uint32_t),
                "elimination slots carry 32-bit payloads");

  /// \p TotalCapacity must divide evenly across MaxShards and give each
  /// shard at least one slot; \p InitialShards must lie in
  /// [1, MaxShards]. Violations throw std::invalid_argument (hard
  /// checks, as ShardedStack).
  AdaptiveShardedStack(std::uint32_t NumThreads, std::uint32_t TotalCapacity,
                       std::uint32_t InitialShards = 1,
                       std::uint32_t SlotCount = 4,
                       std::uint32_t SpinBudget = 64,
                       ShardControllerConfig Controller = {})
      : N(NumThreads), PerShard(checkedPerShard(TotalCapacity)),
        Elim(SlotCount, SpinBudget), Ctl(Controller),
        Active(checkedInitial(InitialShards)) {
    for (std::uint32_t S = 0; S < MaxShards; ++S)
      Shards[S].emplace(NumThreads, PerShard);
  }

  /// Bag push: Done, or Full only at the full mask on an epoch-stable
  /// all-full simultaneous witness. An all-active-full probe below the
  /// full mask grows instead of certifying, so observable capacity is
  /// always TotalCapacity.
  PushResult push(std::uint32_t Tid, Value V) {
    const PushResult Res = pushImpl(Tid, V);
    maybeTick(Tid);
    return Res;
  }

  /// Bag pop: some element, or Empty on an epoch-stable all-empty
  /// witness spanning active and retired shards alike.
  PopResult<Value> pop(std::uint32_t Tid) {
    const PopResult<Value> Res = popImpl(Tid);
    maybeTick(Tid);
    return Res;
  }

  /// Group push over the active mask: each active shard applies a chunk
  /// through its own group seam, leftovers fall back to the facade's
  /// per-element push (booked as group work, as ShardedStack). Returns
  /// the number pushed.
  std::size_t push_all(std::uint32_t Tid, const Value *Vs,
                       std::size_t Count) {
    const std::uint32_t A = activeShards();
    const std::uint32_t Home = Tid % A;
    std::size_t Pushed = 0;
    for (std::uint32_t I = 0; I < A && Pushed < Count; ++I)
      Pushed += shard((Home + I) % A)
                    .push_all(Tid, Vs + Pushed, Count - Pushed);
    const std::size_t SeamPushed = Pushed;
    while (Pushed < Count && push(Tid, Vs[Pushed]) == PushResult::Done)
      ++Pushed;
    bookBatchFallback(Tid, Pushed - SeamPushed);
    return Pushed;
  }

  /// Group pop over the active mask with the facade's per-element
  /// fallback (which also recovers retired-shard stragglers at the Empty
  /// boundary). Returns the number of values written to Out.
  std::size_t pop_all(std::uint32_t Tid, Value *Out, std::size_t MaxCount) {
    const std::uint32_t A = activeShards();
    const std::uint32_t Home = Tid % A;
    std::size_t Got = 0;
    for (std::uint32_t I = 0; I < A && Got < MaxCount; ++I)
      Got += shard((Home + I) % A).pop_all(Tid, Out + Got, MaxCount - Got);
    const std::size_t SeamGot = Got;
    while (Got < MaxCount) {
      const PopResult<Value> Res = pop(Tid);
      if (!Res.isValue())
        break;
      Out[Got++] = Res.value();
    }
    bookBatchFallback(Tid, Got - SeamGot);
    return Got;
  }

  /// Drains the bag: pop_all bounded by the caller's buffer.
  std::size_t drain(std::uint32_t Tid, Value *Out, std::size_t MaxOut) {
    return pop_all(Tid, Out, MaxOut);
  }

  //===--------------------------------------------------------------===//
  // Control plane
  //===--------------------------------------------------------------===//

  std::uint32_t activeShards() const {
    return Active.load(std::memory_order_relaxed);
  }
  static constexpr std::uint32_t maxShards() { return MaxShards; }

  /// Reconfiguration epoch: bumped by every grow/shrink. Test aid (the
  /// certificates read it internally).
  std::uint64_t reconfigEpoch() const {
    return Epoch.load(std::memory_order_relaxed);
  }

  /// Forces one control tick now, regardless of the op cadence.
  void tickForTesting(std::uint32_t Tid) { tick(Tid); }

  /// Direct mask moves for directed tests (same booking as the control
  /// loop's moves).
  bool growForTesting(std::uint32_t Tid) { return grow(Tid); }
  bool shrinkForTesting(std::uint32_t Tid) { return shrink(Tid); }

  const ShardController &controller() const { return Ctl; }

  /// Test knob: route facade ops through the elimination array first
  /// (as ShardedStack::forceBalancerForTesting).
  void forceBalancerForTesting(bool Force) { ForceBalance = Force; }

  /// Exposes the slot-probe hint stream (two-instance divergence
  /// regression).
  std::uint64_t slotHintForTesting(std::uint32_t Tid) {
    return slotHint(Tid);
  }

  //===--------------------------------------------------------------===//
  // Introspection
  //===--------------------------------------------------------------===//

  std::uint32_t capacity() const { return PerShard * MaxShards; }
  std::uint32_t shardCapacity() const { return PerShard; }
  std::uint32_t numThreads() const { return N; }

  /// Sum of ALL shard sizes, retired included (stragglers are still
  /// elements of the bag); exact when quiescent.
  std::uint32_t sizeForTesting() const {
    std::uint32_t Total = 0;
    for (std::uint32_t S = 0; S < MaxShards; ++S)
      Total += shardAt(S).sizeForTesting();
    return Total;
  }

  Shard &shard(std::uint32_t S) { return *Shards[S]; }
  EliminationArrayT<Policy> &eliminationArray() { return Elim; }
  std::uint64_t eliminationExchangesForTesting() const {
    return Elim.exchangesForTesting();
  }

  /// Facade sink + every shard skeleton, retired shards included (their
  /// history must stay counted across reconfigurations). As with
  /// ShardedStack, Ops >= the harness's op count (one facade op may
  /// enter several shard skeletons); conservation holds per sink.
  obs::PathSnapshot pathSnapshot() const {
    obs::PathSnapshot Total = Sink.snapshot();
    for (std::uint32_t S = 0; S < MaxShards; ++S)
      Total += shardAt(S).pathSnapshot();
    return Total;
  }

  /// Resident bytes: header (which embeds the shard objects), shard
  /// heaps, balancer slots, facade sink blocks.
  std::size_t footprintBytes() const {
    std::size_t Bytes = sizeof(*this) + Elim.heapBytes() + Sink.heapBytes();
    for (std::uint32_t S = 0; S < MaxShards; ++S)
      Bytes += shardAt(S).footprintBytes() - sizeof(Shard);
    return Bytes;
  }

private:
  const Shard &shardAt(std::uint32_t S) const { return *Shards[S]; }

  static std::uint32_t checkedPerShard(std::uint32_t TotalCapacity) {
    if (TotalCapacity % MaxShards != 0)
      throw std::invalid_argument(
          "AdaptiveShardedStack: capacity must divide evenly across shards");
    if (TotalCapacity / MaxShards == 0)
      throw std::invalid_argument(
          "AdaptiveShardedStack: each shard needs capacity >= 1");
    return TotalCapacity / MaxShards;
  }

  static std::uint32_t checkedInitial(std::uint32_t InitialShards) {
    if (InitialShards < 1 || InitialShards > MaxShards)
      throw std::invalid_argument(
          "AdaptiveShardedStack: initial shard count outside [1, MaxShards]");
    return InitialShards;
  }

  PushResult pushImpl(std::uint32_t Tid, Value V) {
    if (ForceBalance) {
      if (Elim.tryGive(static_cast<std::uint32_t>(V), slotHint(Tid),
                       notFullGate(Tid))) {
        bookEliminated(Tid, obs::Event::EliminatedPush);
        return PushResult::Done;
      }
    }
    std::optional<ExponentialBackoff> Boundary;
    while (true) {
      const std::uint32_t A = activeShards();
      const std::uint32_t Home = Tid % A;
      for (std::uint32_t I = 0; I < A; ++I) {
        const std::uint32_t S = (Home + I) % A;
        const PushResult Res = I == 0 ? balancedPush(Tid, S, V)
                                      : shard(S).push(Tid, V);
        if (Res == PushResult::Done)
          return PushResult::Done;
      }
      // Every active shard answered Full. Pair with a concurrent pop if
      // one is parked, else grow the mask (never certify Full while
      // growth is possible — observable capacity is TotalCapacity).
      if (Elim.tryGive(static_cast<std::uint32_t>(V), slotHint(Tid),
                       notFullGate(Tid))) {
        bookEliminated(Tid, obs::Event::EliminatedPush);
        return PushResult::Done;
      }
      if (A < MaxShards) {
        grow(Tid);
        continue;
      }
      std::uint32_t Straggler = 0;
      if (certify(/*WantFull=*/true, Straggler) == Witness::Certified)
        return PushResult::Full;
      // Movement or reconfiguration raced the witness: re-probe after a
      // randomized backoff (as ShardedStack — the boundary witness is
      // only obstruction-free, and hot-spinning through the churn is
      // what starves the ops that would quiesce the bag).
      if (!Boundary)
        Boundary.emplace();
      Boundary->onFailure();
    }
  }

  PopResult<Value> popImpl(std::uint32_t Tid) {
    if (ForceBalance) {
      if (auto V = Elim.tryTake(slotHint(Tid), notFullGate(Tid))) {
        bookEliminated(Tid, obs::Event::EliminatedPop);
        return PopResult<Value>::value(static_cast<Value>(*V));
      }
    }
    std::optional<ExponentialBackoff> Boundary;
    while (true) {
      const std::uint32_t A = activeShards();
      const std::uint32_t Home = Tid % A;
      for (std::uint32_t I = 0; I < A; ++I) {
        const std::uint32_t S = (Home + I) % A;
        const PopResult<Value> Res =
            I == 0 ? balancedPop(Tid, S) : shard(S).pop(Tid);
        if (Res.isValue())
          return Res;
      }
      if (auto V = Elim.tryTake(slotHint(Tid), notFullGate(Tid))) {
        bookEliminated(Tid, obs::Event::EliminatedPop);
        return PopResult<Value>::value(static_cast<Value>(*V));
      }
      std::uint32_t Straggler = 0;
      switch (certify(/*WantFull=*/false, Straggler)) {
      case Witness::Certified:
        return PopResult<Value>::empty();
      case Witness::Straggler: {
        // A retired shard holds elements (lazy retirement): recover
        // directly — this is the pull-based drain, so there is no
        // retirement window a crash could strand elements in.
        const PopResult<Value> Res = shard(Straggler).pop(Tid);
        if (Res.isValue())
          return Res;
        break;
      }
      case Witness::Moved:
        break;
      }
      if (!Boundary)
        Boundary.emplace();
      Boundary->onFailure();
    }
  }

  /// Home-shard probe with the balancer armed as the skeleton's rescue
  /// window (as ShardedStack::balancedPush — the solo fast path never
  /// invokes the rescue, preserving the six-access bound).
  PushResult balancedPush(std::uint32_t Tid, std::uint32_t S, Value V) {
    Shard &Sh = shard(S);
    return Sh.skeleton().strongApplyWithRescue(
        Tid,
        [&Sh, V]() -> std::optional<PushResult> {
          const PushResult Res = Sh.abortable().weakPush(V);
          if (Res == PushResult::Abort)
            return std::nullopt;
          return Res;
        },
        [this, &Sh, Tid, V]() -> std::optional<PushResult> {
          if (Elim.tryGive(static_cast<std::uint32_t>(V), slotHint(Tid),
                           notFullGate(Tid))) {
            Sh.skeleton().metrics().onEvent(Tid,
                                            obs::Event::EliminatedPush);
            return PushResult::Done;
          }
          return std::nullopt;
        });
  }

  PopResult<Value> balancedPop(std::uint32_t Tid, std::uint32_t S) {
    Shard &Sh = shard(S);
    return Sh.skeleton().strongApplyWithRescue(
        Tid,
        [&Sh]() -> std::optional<PopResult<Value>> {
          const PopResult<Value> Res = Sh.abortable().weakPop();
          if (Res.isAbort())
            return std::nullopt;
          return Res;
        },
        [this, &Sh, Tid]() -> std::optional<PopResult<Value>> {
          if (auto V = Elim.tryTake(slotHint(Tid), notFullGate(Tid))) {
            Sh.skeleton().metrics().onEvent(Tid, obs::Event::EliminatedPop);
            return PopResult<Value>::value(static_cast<Value>(*V));
          }
          return std::nullopt;
        });
  }

  /// Bag-not-full gate for the matcher: one instrumented read of the
  /// caller's current home shard's TOP showing room (conservative).
  auto notFullGate(std::uint32_t Tid) {
    return [this, Tid] {
      const std::uint32_t Home = Tid % activeShards();
      return shard(Home).abortable().readTop().Index < PerShard;
    };
  }

  void bookEliminated(std::uint32_t Tid, obs::Event E) {
    Sink.onOp(Tid);
    Sink.onPath(Tid, obs::Path::Eliminated);
    Sink.onEvent(Tid, E);
  }

  /// Books batch elements that landed through the per-element fallback
  /// as facade-level group work (same fix and rationale as
  /// ShardedStack::bookBatchFallback).
  void bookBatchFallback(std::uint32_t Tid, std::size_t Fallback) {
    if (Fallback == 0)
      return;
    Sink.onOp(Tid, Fallback);
    Sink.onPath(Tid, obs::Path::Batched, Fallback);
    Sink.onBatch(Tid, Fallback);
  }

  enum class Witness : std::uint8_t { Certified, Moved, Straggler };

  /// The epoch-tagged double collect. WantFull certifies only at the
  /// full mask (callers grow below it), so Want == PerShard everywhere;
  /// !WantFull requires every shard — active or retired — to show 0.
  /// A retired shard showing elements reports Straggler (with the shard
  /// index in \p StragglerShard) so the caller can recover them. Two
  /// equal collects of the seq-carrying TOP words certify a single
  /// instant; an Epoch change across the witness voids it (the mask the
  /// probe ran against is stale) and forces a re-probe.
  Witness certify(bool WantFull, std::uint32_t &StragglerShard) {
    const std::uint64_t E1 = Epoch.load();
    const std::uint32_t A = Active.load();
    if (WantFull && A < MaxShards)
      return Witness::Moved;
    std::array<TopWord, MaxShards> First;
    for (std::uint32_t S = 0; S < MaxShards; ++S) {
      const TopWord W = shard(S).abortable().readTopWord();
      const std::uint32_t Idx = decodeIndex(W);
      const std::uint32_t Want = WantFull ? PerShard : 0;
      if (Idx != Want) {
        if (!WantFull && S >= A && Idx != 0) {
          StragglerShard = S;
          return Witness::Straggler;
        }
        return Witness::Moved;
      }
      First[S] = W;
    }
    for (std::uint32_t S = 0; S < MaxShards; ++S)
      if (shard(S).abortable().readTopWord() != First[S])
        return Witness::Moved;
    if (Epoch.load() != E1)
      return Witness::Moved;
    return Witness::Certified;
  }

  bool grow(std::uint32_t Tid) {
    std::uint32_t A = Active.load();
    while (A < MaxShards) {
      if (Active.compare_exchange_weak(A, A + 1)) {
        Epoch.fetch_add(1);
        Sink.onEvent(Tid, obs::Event::ShardGrow);
        return true;
      }
    }
    return false;
  }

  /// Lazy retirement: publishes the narrower mask and bumps the epoch.
  /// Deliberately moves NO elements — see file comment.
  bool shrink(std::uint32_t Tid) {
    std::uint32_t A = Active.load();
    while (A > 1) {
      if (Active.compare_exchange_weak(A, A - 1)) {
        Epoch.fetch_add(1);
        Sink.onEvent(Tid, obs::Event::ShardShrink);
        return true;
      }
    }
    return false;
  }

  /// Op-cadence auto-tick. The counter is a plain relaxed atomic — like
  /// every other configuration word here, it adds nothing to the solo
  /// access count.
  void maybeTick(std::uint32_t Tid) {
    const std::uint32_t Interval = Ctl.config().TickOps;
    if (Interval == 0)
      return;
    if ((TickCount.fetch_add(1, std::memory_order_relaxed) + 1) % Interval ==
        0)
      tick(Tid);
  }

  /// One control sample + application. Concurrent tickers skip (the
  /// controller's delta state wants a single writer); everything inside
  /// runs on plain atomics and metric reads, so a tick cannot raise a
  /// simulated crash or perturb a counted operation.
  void tick(std::uint32_t Tid) {
    bool Busy = false;
    if (!TickBusy.compare_exchange_strong(Busy, true,
                                          std::memory_order_acquire))
      return;
    const ShardActions Act =
        Ctl.sample(pathSnapshot(), activeShards(), MaxShards,
                   Elim.spinBudget());
    switch (Act.Mask) {
    case ShardActions::MaskMove::Grow:
      grow(Tid);
      break;
    case ShardActions::MaskMove::Shrink:
      shrink(Tid);
      break;
    case ShardActions::MaskMove::Hold:
      break;
    }
    switch (Act.Gate) {
    case ShardActions::GateMove::Widen:
      Elim.setSpinBudget(Elim.spinBudget() * 2);
      Sink.onEvent(Tid, obs::Event::GateWiden);
      break;
    case ShardActions::GateMove::Narrow:
      Elim.setSpinBudget(Elim.spinBudget() / 2);
      Sink.onEvent(Tid, obs::Event::GateNarrow);
      break;
    case ShardActions::GateMove::Hold:
      break;
    }
    TickBusy.store(false, std::memory_order_release);
  }

  /// Slot-probe hint, per-instance decorrelated (see
  /// ShardedStack::slotHint).
  std::uint64_t slotHint(std::uint32_t Tid) {
    static thread_local std::uint64_t Counter = 0;
    return (static_cast<std::uint64_t>(Tid) << 32) ^ SlotNonce ^ Counter++;
  }

  using TopC = typename AbortableStack<Config, Policy>::TopC;
  using TopWord = typename TopC::Word;

  static std::uint32_t decodeIndex(TopWord W) {
    return static_cast<std::uint32_t>(TopC::unpack(W).Index);
  }

  const std::uint32_t N;
  const std::uint32_t PerShard;
  const std::uint64_t SlotNonce = detail::deriveSlotNonce();
  std::array<std::optional<Shard>, MaxShards> Shards;
  EliminationArrayT<Policy> Elim;
  ShardController Ctl;
  std::atomic<std::uint32_t> Active;
  std::atomic<std::uint64_t> Epoch{0};
  std::atomic<std::uint64_t> TickCount{0};
  std::atomic<bool> TickBusy{false};
  bool ForceBalance = false;
  [[no_unique_address]] mutable obs::MetricSink Sink{N};
};

} // namespace csobj

#endif // CSOBJ_PERF_ADAPTIVESHARDEDSTACK_H
