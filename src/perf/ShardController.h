//===- perf/ShardController.h - Obs-driven sharding control law -*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control law of the adaptive sharded facade, separated from the
/// facade's mechanics so it can be unit-tested against synthetic
/// snapshots. The controller consumes PathSnapshot *deltas* — the obs
/// layer was built to be exactly this signal (ROADMAP) — and answers two
/// questions per sample:
///
///  * shard count: a high lock-path ratio means the active shards'
///    doorways are absorbing real contention, so activate another shard;
///    a shortcut-dominant delta means the mask is wider than the load
///    needs, so retire one (down to 1, where the facade's solo cost
///    returns to the paper's exact six-access bound).
///  * elimination gate: a high pairing rate means rendezvous windows are
///    productive, so widen the spin budget (more time parked for a
///    partner); a negligible rate means parked spins are wasted, so
///    narrow it.
///
/// The controller is pure policy: it owns no synchronization and books no
/// events. The facade samples it from at most one thread at a time (a
/// try-lock tick guard) and applies/attributes the returned actions.
/// Samples smaller than MinDeltaOps are accumulated, not consumed, so a
/// trickle of operations cannot trigger decisions on noise.
///
/// Under CSOBJ_NO_METRICS the snapshot deltas are identically zero and
/// every sample holds: the control loop is inert (its signal is compiled
/// out), while the facade's correctness machinery (grow-on-full,
/// epoch-tagged certificates) is metric-free and unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_PERF_SHARDCONTROLLER_H
#define CSOBJ_PERF_SHARDCONTROLLER_H

#include "obs/PathCounters.h"

#include <cstdint>

namespace csobj {

/// Thresholds of the control law. Defaults are sized for bench/soak
/// cadences; directed tests use aggressive settings (tiny TickOps /
/// MinDeltaOps) to force decisions deterministically.
struct ShardControllerConfig {
  /// Facade operations between automatic control ticks; 0 disables
  /// auto-ticking (manual tickForTesting only).
  std::uint32_t TickOps = 256;
  /// Minimum op delta a sample must carry before any decision is made;
  /// smaller deltas accumulate into the next sample.
  std::uint64_t MinDeltaOps = 64;
  /// Lock-path fraction of the delta at/above which the mask grows.
  double GrowLockRatio = 0.05;
  /// Shortcut fraction of the delta at/above which the mask shrinks.
  double ShrinkShortcutRatio = 0.95;
  /// Eliminated fraction at/above which the gate spin budget doubles.
  double WidenPairRatio = 0.05;
  /// Eliminated fraction at/below which the gate spin budget halves.
  double NarrowPairRatio = 0.005;
  /// Clamp bounds for the elimination gate spin budget.
  std::uint32_t MinSpinBudget = 8;
  std::uint32_t MaxSpinBudget = 4096;
};

/// One sample's verdict: at most one mask move and one gate move.
struct ShardActions {
  enum class MaskMove : std::uint8_t { Hold, Grow, Shrink };
  enum class GateMove : std::uint8_t { Hold, Widen, Narrow };
  MaskMove Mask = MaskMove::Hold;
  GateMove Gate = GateMove::Hold;
};

class ShardController {
public:
  explicit ShardController(ShardControllerConfig Config = {})
      : Cfg(Config) {}

  const ShardControllerConfig &config() const { return Cfg; }

  /// Consumes the delta between \p Now and the previous consumed sample
  /// and returns the actions the facade should apply. \p Active and
  /// \p MaxShards bound the mask moves; \p SpinBudget bounds the gate
  /// moves. Not thread-safe: the facade serializes callers.
  ShardActions sample(const obs::PathSnapshot &Now, std::uint32_t Active,
                      std::uint32_t MaxShards, std::uint32_t SpinBudget) {
    ShardActions Act;
    const std::uint64_t DeltaOps = Now.Ops - Last.Ops;
    if (DeltaOps < Cfg.MinDeltaOps)
      return Act; // Too small to act on; keep accumulating.

    const double Ops = static_cast<double>(DeltaOps);
    const double LockRatio =
        static_cast<double>(delta(Now, obs::Path::Lock) +
                            delta(Now, obs::Path::Degraded)) /
        Ops;
    const double ShortcutRatio =
        static_cast<double>(delta(Now, obs::Path::Shortcut)) / Ops;
    const double PairRatio =
        static_cast<double>(delta(Now, obs::Path::Eliminated)) / Ops;
    Last = Now;

    if (LockRatio >= Cfg.GrowLockRatio && Active < MaxShards)
      Act.Mask = ShardActions::MaskMove::Grow;
    else if (ShortcutRatio >= Cfg.ShrinkShortcutRatio && Active > 1)
      Act.Mask = ShardActions::MaskMove::Shrink;

    if (PairRatio >= Cfg.WidenPairRatio &&
        SpinBudget * 2 <= Cfg.MaxSpinBudget)
      Act.Gate = ShardActions::GateMove::Widen;
    else if (PairRatio <= Cfg.NarrowPairRatio &&
             SpinBudget / 2 >= Cfg.MinSpinBudget)
      Act.Gate = ShardActions::GateMove::Narrow;
    return Act;
  }

  /// The snapshot the next sample's delta will be measured against.
  const obs::PathSnapshot &lastSample() const { return Last; }

private:
  std::uint64_t delta(const obs::PathSnapshot &Now, obs::Path P) const {
    return Now.path(P) - Last.path(P);
  }

  ShardControllerConfig Cfg;
  obs::PathSnapshot Last;
};

} // namespace csobj

#endif // CSOBJ_PERF_SHARDCONTROLLER_H
