//===- baselines/LockedQueue.h - Coarse lock-based queue --------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded circular-buffer FIFO queue protected by a single lock, the
/// lock-based contrast point for the queue family (experiment E7).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_BASELINES_LOCKEDQUEUE_H
#define CSOBJ_BASELINES_LOCKEDQUEUE_H

#include "core/Results.h"
#include "locks/LockTraits.h"
#include "locks/TasLock.h"

#include <cstdint>
#include <memory>

namespace csobj {

/// Bounded FIFO queue fully serialized by a single lock.
template <typename Lock = TtasLock>
class LockedQueue {
public:
  using Value = std::uint32_t;

  LockedQueue(std::uint32_t NumThreads, std::uint32_t Capacity)
      : Guard(NumThreads), CapacityK(Capacity),
        Ring(new Value[Capacity]) {}

  PushResult enqueue(std::uint32_t Tid, Value V) {
    ScopedLock<Lock> Hold(Guard, Tid);
    if (Size == CapacityK)
      return PushResult::Full;
    Ring[(Front + Size) % CapacityK] = V;
    ++Size;
    return PushResult::Done;
  }

  PopResult<Value> dequeue(std::uint32_t Tid) {
    ScopedLock<Lock> Hold(Guard, Tid);
    if (Size == 0)
      return PopResult<Value>::empty();
    const Value V = Ring[Front];
    Front = (Front + 1) % CapacityK;
    --Size;
    return PopResult<Value>::value(V);
  }

  std::uint32_t capacity() const { return CapacityK; }
  std::uint32_t sizeForTesting() const { return Size; }

private:
  Lock Guard;
  const std::uint32_t CapacityK;
  std::uint32_t Front = 0;
  std::uint32_t Size = 0;
  std::unique_ptr<Value[]> Ring;
};

} // namespace csobj

#endif // CSOBJ_BASELINES_LOCKEDQUEUE_H
