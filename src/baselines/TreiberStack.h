//===- baselines/TreiberStack.h - Classic lock-free stack -------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Treiber's linked lock-free stack (IBM RC 5118, 1986), the canonical
/// CAS-retry stack and the natural baseline for the paper's array-based
/// family. Nodes come from a preallocated IndexPool so the structure is
/// bounded and total like the paper's stack (pool exhausted => Full), and
/// the head carries an ABA tag exactly as Section 2.2 prescribes.
///
/// The retry loops make the structure *lock-free* (some operation always
/// completes) but not starvation-free, and unlike Figure 1 an individual
/// attempt is never surfaced as aborted — contrast objects for
/// experiments E2-E5.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_BASELINES_TREIBERSTACK_H
#define CSOBJ_BASELINES_TREIBERSTACK_H

#include "core/Results.h"
#include "memory/AtomicRegister.h"
#include "memory/IndexPool.h"
#include "support/BitPack.h"

#include <cstdint>
#include <memory>

namespace csobj {

/// Bounded Treiber stack over a preallocated node pool.
///
/// \tparam Policy register policy (Instrumented / Fast).
template <typename Policy = DefaultRegisterPolicy>
class TreiberStackT {
public:
  using Value = std::uint32_t;
  using RegisterPolicy = Policy;

  explicit TreiberStackT(std::uint32_t Capacity)
      : Pool(Capacity), Nodes(new Node[Capacity]) {}

  /// Pushes \p V; Full when the node pool is exhausted.
  PushResult push(Value V) {
    const std::optional<std::uint32_t> Idx = Pool.tryAcquire();
    if (!Idx)
      return PushResult::Full;
    Nodes[*Idx].Payload.write(V);
    while (true) {
      const std::uint64_t Observed = Head.read();
      Nodes[*Idx].Next.write(linkOf(Observed));
      if (Head.compareAndSwap(
              Observed,
              HeadCodec::pack(*Idx + 1, tagOf(Observed) + 1)))
        return PushResult::Done;
    }
  }

  /// Pops the top value; Empty when the stack is empty.
  PopResult<Value> pop() {
    while (true) {
      const std::uint64_t Observed = Head.read();
      const std::uint32_t Link = linkOf(Observed);
      if (Link == 0)
        return PopResult<Value>::empty();
      const std::uint32_t Idx = Link - 1;
      const std::uint32_t NextLink = Nodes[Idx].Next.read();
      const Value V = Nodes[Idx].Payload.read();
      if (Head.compareAndSwap(
              Observed, HeadCodec::pack(NextLink, tagOf(Observed) + 1))) {
        Pool.release(Idx);
        return PopResult<Value>::value(V);
      }
    }
  }

  /// Single head-CAS push attempt: Done, Full, or Abort when the CAS
  /// lost a race. This makes the Treiber stack an *abortable* object in
  /// the paper's sense, so it can be wrapped by the Figure 3 construction
  /// (ablation E8) and by the elimination layer.
  PushResult tryPushOnce(Value V) {
    const std::optional<std::uint32_t> Idx = Pool.tryAcquire();
    if (!Idx)
      return PushResult::Full;
    Nodes[*Idx].Payload.write(V);
    const std::uint64_t Observed = Head.read();
    Nodes[*Idx].Next.write(linkOf(Observed));
    if (Head.compareAndSwap(Observed,
                            HeadCodec::pack(*Idx + 1, tagOf(Observed) + 1)))
      return PushResult::Done;
    Pool.release(*Idx);
    return PushResult::Abort;
  }

  /// Single head-CAS pop attempt: value, Empty, or Abort on a lost race.
  PopResult<Value> tryPopOnce() {
    const std::uint64_t Observed = Head.read();
    const std::uint32_t Link = linkOf(Observed);
    if (Link == 0)
      return PopResult<Value>::empty();
    const std::uint32_t Idx = Link - 1;
    const std::uint32_t NextLink = Nodes[Idx].Next.read();
    const Value V = Nodes[Idx].Payload.read();
    if (Head.compareAndSwap(Observed,
                            HeadCodec::pack(NextLink, tagOf(Observed) + 1))) {
      Pool.release(Idx);
      return PopResult<Value>::value(V);
    }
    return PopResult<Value>::abort();
  }

  std::uint32_t capacity() const { return Pool.size(); }

  /// Quiescent-only element count (test/debug aid).
  std::uint32_t sizeForTesting() const {
    std::uint32_t Count = 0;
    std::uint32_t Link = linkOf(Head.peekForTesting());
    while (Link != 0) {
      ++Count;
      Link = Nodes[Link - 1].Next.peekForTesting();
    }
    return Count;
  }

private:
  using HeadCodec = PackedPair<std::uint64_t, 32, 32>;

  static std::uint32_t linkOf(std::uint64_t Word) {
    return static_cast<std::uint32_t>(HeadCodec::a(Word));
  }
  static std::uint32_t tagOf(std::uint64_t Word) {
    return static_cast<std::uint32_t>(HeadCodec::b(Word));
  }

  struct Node {
    AtomicRegister<Value, Policy> Payload{0};
    AtomicRegister<std::uint32_t, Policy> Next{
        0}; ///< Link = index+1; 0 = null.
  };

  IndexPool Pool;
  AtomicRegister<std::uint64_t, Policy> Head{
      0}; ///< <link, tag>; link 0 = empty.
  std::unique_ptr<Node[]> Nodes;
};

/// The library-default Treiber stack (instrumented unless
/// CSOBJ_FAST_REGISTERS).
using TreiberStack = TreiberStackT<>;

} // namespace csobj

#endif // CSOBJ_BASELINES_TREIBERSTACK_H
