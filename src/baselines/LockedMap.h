//===- baselines/LockedMap.h - Coarse lock-based ordered map ----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coarse-grained baseline the contention-sensitive map (E16) has to
/// beat: a sorted array, fully serialized — reads included — by one
/// lock. Capacity counts *live* keys (erase physically removes the
/// entry and frees its slot), exactly the semantics SkipListCore
/// enforces via reclamation, so the two objects answer Full identically
/// and share OrderedMapSpec.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_BASELINES_LOCKEDMAP_H
#define CSOBJ_BASELINES_LOCKEDMAP_H

#include "core/Results.h"
#include "locks/LockTraits.h"
#include "locks/TasLock.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace csobj {

/// Bounded ordered map fully serialized by a single lock.
template <typename Lock = TtasLock>
class LockedMap {
public:
  using Key = std::uint32_t;
  using Value = std::uint32_t;

  /// \p NumThreads sizes the lock's per-process state; zero would build
  /// an unusable guard, so it is rejected outright (hard check — the
  /// same audit as ShardedStack/SkipListCore construction).
  LockedMap(std::uint32_t NumThreads, std::uint32_t Capacity)
      : Guard(checkedThreads(NumThreads)), CapacityK(Capacity) {
    Entries.reserve(Capacity);
  }

  PopResult<Value> get(std::uint32_t Tid, Key K) {
    ScopedLock<Lock> Hold(Guard, Tid);
    const Entry *E = lookup(K);
    if (E == nullptr)
      return PopResult<Value>::empty();
    return PopResult<Value>::value(E->Val);
  }

  PushResult insert(std::uint32_t Tid, Key K, Value V) {
    ScopedLock<Lock> Hold(Guard, Tid);
    if (Entry *E = lookup(K)) {
      E->Val = V;
      return PushResult::Done;
    }
    if (Entries.size() >= CapacityK)
      return PushResult::Full;
    Entries.insert(std::lower_bound(Entries.begin(), Entries.end(), K,
                                    [](const Entry &E, Key Needle) {
                                      return E.K < Needle;
                                    }),
                   Entry{K, V});
    return PushResult::Done;
  }

  PopResult<Value> erase(std::uint32_t Tid, Key K) {
    ScopedLock<Lock> Hold(Guard, Tid);
    Entry *E = lookup(K);
    if (E == nullptr)
      return PopResult<Value>::empty();
    const Value Old = E->Val;
    Entries.erase(Entries.begin() + (E - Entries.data()));
    return PopResult<Value>::value(Old);
  }

  std::uint32_t capacity() const { return CapacityK; }

  std::uint32_t sizeForTesting() const {
    return static_cast<std::uint32_t>(Entries.size());
  }

  /// Resident bytes (header + entry storage), for bytes_per_element.
  std::size_t footprintBytes() const {
    return sizeof(*this) + Entries.capacity() * sizeof(Entry);
  }

private:
  struct Entry {
    Key K;
    Value Val;
  };

  static std::uint32_t checkedThreads(std::uint32_t NumThreads) {
    if (NumThreads < 1)
      throw std::invalid_argument("LockedMap: need at least one process");
    return NumThreads;
  }

  Entry *lookup(Key K) {
    auto It = std::lower_bound(
        Entries.begin(), Entries.end(), K,
        [](const Entry &E, Key Needle) { return E.K < Needle; });
    if (It == Entries.end() || It->K != K)
      return nullptr;
    return &*It;
  }

  Lock Guard;
  const std::uint32_t CapacityK;
  std::vector<Entry> Entries;
};

} // namespace csobj

#endif // CSOBJ_BASELINES_LOCKEDMAP_H
