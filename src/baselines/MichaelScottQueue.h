//===- baselines/MichaelScottQueue.h - Lock-free FIFO queue -----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Michael & Scott's lock-free queue (PODC'96), the canonical linked
/// CAS-based FIFO and the lock-free baseline for the queue family
/// (experiment E7). Bounded via a preallocated IndexPool (one extra node
/// is the permanent dummy), with ABA tags on head, tail and every next
/// link as in the original algorithm. Lock-free (helping swings the
/// tail), not starvation-free.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_BASELINES_MICHAELSCOTTQUEUE_H
#define CSOBJ_BASELINES_MICHAELSCOTTQUEUE_H

#include "core/Results.h"
#include "memory/AtomicRegister.h"
#include "memory/IndexPool.h"
#include "support/BitPack.h"

#include <cassert>
#include <cstdint>
#include <memory>

namespace csobj {

/// Bounded Michael-Scott queue over a preallocated node pool.
///
/// \tparam Policy register policy (Instrumented / Fast).
template <typename Policy = DefaultRegisterPolicy>
class MichaelScottQueueT {
public:
  using Value = std::uint32_t;
  using RegisterPolicy = Policy;

  explicit MichaelScottQueueT(std::uint32_t Capacity)
      : Pool(Capacity + 1), Nodes(new Node[Capacity + 1]),
        CapacityK(Capacity) {
    const auto Dummy = Pool.tryAcquire();
    assert(Dummy && "fresh pool must yield the dummy node");
    Nodes[*Dummy].Next.write(LinkCodec::pack(0, 0));
    Head.write(PtrCodec::pack(*Dummy, 0));
    Tail.write(PtrCodec::pack(*Dummy, 0));
  }

  /// Enqueues \p V at the tail; Full when the node pool is exhausted.
  PushResult enqueue(Value V) {
    const std::optional<std::uint32_t> NewIdx = Pool.tryAcquire();
    if (!NewIdx)
      return PushResult::Full;
    Nodes[*NewIdx].Payload.write(V);
    // Reset our link to null, bumping its tag past the previous life.
    const std::uint64_t OldLink = Nodes[*NewIdx].Next.read();
    Nodes[*NewIdx].Next.write(LinkCodec::pack(0, tagOf(OldLink) + 1));

    while (true) {
      const std::uint64_t T = Tail.read();
      const std::uint64_t Next = Nodes[idxOf(T)].Next.read();
      if (T != Tail.read())
        continue; // Tail moved under us; re-snapshot.
      if (linkOf(Next) == 0) {
        // Tail really is last: try to link the new node after it.
        if (Nodes[idxOf(T)].Next.compareAndSwap(
                Next, LinkCodec::pack(*NewIdx + 1, tagOf(Next) + 1))) {
          // Swing the tail; failure means someone helped already.
          Tail.compareAndSwap(T, PtrCodec::pack(*NewIdx, tagOf(T) + 1));
          return PushResult::Done;
        }
      } else {
        // Tail lagging: help swing it before retrying.
        Tail.compareAndSwap(T,
                            PtrCodec::pack(linkOf(Next) - 1, tagOf(T) + 1));
      }
    }
  }

  /// Dequeues the oldest value; Empty when the queue is empty.
  PopResult<Value> dequeue() {
    while (true) {
      const std::uint64_t H = Head.read();
      const std::uint64_t T = Tail.read();
      const std::uint64_t Next = Nodes[idxOf(H)].Next.read();
      if (H != Head.read())
        continue;
      if (idxOf(H) == idxOf(T)) {
        if (linkOf(Next) == 0)
          return PopResult<Value>::empty();
        // Tail lagging behind a half-finished enqueue: help.
        Tail.compareAndSwap(T,
                            PtrCodec::pack(linkOf(Next) - 1, tagOf(T) + 1));
        continue;
      }
      const Value V = Nodes[linkOf(Next) - 1].Payload.read();
      if (Head.compareAndSwap(
              H, PtrCodec::pack(linkOf(Next) - 1, tagOf(H) + 1))) {
        Pool.release(idxOf(H)); // Old dummy retires; next node is dummy.
        return PopResult<Value>::value(V);
      }
    }
  }

  std::uint32_t capacity() const { return CapacityK; }

  /// Quiescent-only element count (test/debug aid).
  std::uint32_t sizeForTesting() const {
    std::uint32_t Count = 0;
    std::uint32_t Link =
        linkOf(Nodes[idxOf(Head.peekForTesting())].Next.peekForTesting());
    while (Link != 0) {
      ++Count;
      Link = linkOf(Nodes[Link - 1].Next.peekForTesting());
    }
    return Count;
  }

private:
  // Head/Tail pack <node-index:32, tag:32> (the dummy makes them always
  // valid); next links pack <index+1:32, tag:32> with 0 = null.
  using PtrCodec = PackedPair<std::uint64_t, 32, 32>;
  using LinkCodec = PackedPair<std::uint64_t, 32, 32>;

  static std::uint32_t idxOf(std::uint64_t Word) {
    return static_cast<std::uint32_t>(PtrCodec::a(Word));
  }
  static std::uint32_t linkOf(std::uint64_t Word) {
    return static_cast<std::uint32_t>(LinkCodec::a(Word));
  }
  static std::uint32_t tagOf(std::uint64_t Word) {
    return static_cast<std::uint32_t>(PtrCodec::b(Word));
  }

  struct Node {
    AtomicRegister<Value, Policy> Payload{0};
    AtomicRegister<std::uint64_t, Policy> Next{0};
  };

  IndexPool Pool;
  AtomicRegister<std::uint64_t, Policy> Head{0};
  AtomicRegister<std::uint64_t, Policy> Tail{0};
  std::unique_ptr<Node[]> Nodes;
  const std::uint32_t CapacityK;
};

/// The library-default MS queue (instrumented unless CSOBJ_FAST_REGISTERS).
using MichaelScottQueue = MichaelScottQueueT<>;

} // namespace csobj

#endif // CSOBJ_BASELINES_MICHAELSCOTTQUEUE_H
