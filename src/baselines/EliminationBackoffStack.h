//===- baselines/EliminationBackoffStack.h - HSY stack ----------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hendler, Shavit & Yerushalmi's elimination-backoff stack (SPAA'04):
/// a Treiber stack whose contended operations retreat to an elimination
/// array where a concurrent push/pop pair cancels out without touching
/// the central stack at all. The paper's Section 5 points at contention
/// managers as the wider context; this structure is the classic
/// *collision-based* contention manager and serves as the ablation
/// contrast to the paper's shortcut-plus-lock strategy (experiment E8).
///
/// Each elimination slot is one CASable word running a small state
/// machine, Empty -> WaitingPush/WaitingPop -> Done -> Empty, with an ABA
/// tag. A waiting operation spins a bounded budget, then withdraws. The
/// central stack is driven through TreiberStack's single-attempt
/// (abortable) operations, so every lost CAS race is a chance to
/// eliminate.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_BASELINES_ELIMINATIONBACKOFFSTACK_H
#define CSOBJ_BASELINES_ELIMINATIONBACKOFFSTACK_H

#include "baselines/TreiberStack.h"
#include "support/SplitMix64.h"
#include "support/SpinWait.h"

#include <cstdint>
#include <memory>
#include <optional>

namespace csobj {

/// Treiber stack with an elimination-backoff layer.
class EliminationBackoffStack {
public:
  using Value = std::uint32_t;

  /// \p SlotCount elimination slots; \p SpinBudget bounded wait (in slot
  /// re-reads) for a partner before withdrawing.
  explicit EliminationBackoffStack(std::uint32_t Capacity,
                                   std::uint32_t SlotCount = 4,
                                   std::uint32_t SpinBudget = 64)
      : Central(Capacity), SlotCount(SlotCount), SpinBudget(SpinBudget),
        Slots(new AtomicRegister<std::uint64_t>[SlotCount]) {}

  /// Pushes \p V, eliminating against a concurrent pop when the central
  /// CAS is contended. Returns Done or Full.
  PushResult push(Value V) {
    SplitMix64 Rng(seedFrom(V));
    while (true) {
      const PushResult Direct = Central.tryPushOnce(V);
      if (Direct != PushResult::Abort)
        return Direct;
      if (tryEliminatePush(V, Rng))
        return PushResult::Done;
    }
  }

  /// Pops a value, eliminating against a concurrent push when the
  /// central CAS is contended. Returns a value or Empty.
  PopResult<Value> pop() {
    SplitMix64 Rng(seedFrom(0x504f50u));
    while (true) {
      const PopResult<Value> Direct = Central.tryPopOnce();
      if (!Direct.isAbort())
        return Direct;
      if (const std::optional<Value> V = tryEliminatePop(Rng))
        return PopResult<Value>::value(*V);
    }
  }

  std::uint32_t capacity() const { return Central.capacity(); }
  std::uint32_t sizeForTesting() const { return Central.sizeForTesting(); }

  /// Number of operations that completed via elimination (relaxed
  /// counter; benchmarking aid for E8).
  std::uint64_t eliminationCountForTesting() const {
    return Eliminations.peekForTesting();
  }

private:
  enum SlotState : std::uint64_t {
    Empty = 0,
    WaitingPush = 1,
    WaitingPop = 2,
    Done = 3
  };

  // Slot word: state:2 | value:32 | tag:30.
  using StateField = BitField<std::uint64_t, 0, 2>;
  using ValueField = BitField<std::uint64_t, 2, 32>;
  using TagField = BitField<std::uint64_t, 34, 30>;

  static std::uint64_t makeSlot(SlotState S, Value V, std::uint64_t Tag) {
    return StateField::encode(S) | ValueField::encode(V) |
           TagField::encode(Tag & TagField::maxValue());
  }
  static SlotState stateOf(std::uint64_t W) {
    return static_cast<SlotState>(StateField::get(W));
  }
  static Value valueOf(std::uint64_t W) {
    return static_cast<Value>(ValueField::get(W));
  }
  static std::uint64_t bumpTag(std::uint64_t W) {
    return (TagField::get(W) + 1) & TagField::maxValue();
  }

  static std::uint64_t seedFrom(std::uint32_t Salt) {
    // Thread-distinct, cheap seed; elimination only needs decorrelation.
    static thread_local std::uint64_t Counter = 0;
    return (++Counter * 0x9e3779b97f4a7c15ull) ^ Salt;
  }

  /// Parks as a pusher in a random slot; true if a popper took the value.
  bool tryEliminatePush(Value V, SplitMix64 &Rng) {
    AtomicRegister<std::uint64_t> &Slot = Slots[Rng.below(SlotCount)];
    const std::uint64_t W = Slot.read();
    switch (stateOf(W)) {
    case Empty: {
      const std::uint64_t Waiting = makeSlot(WaitingPush, V, bumpTag(W));
      if (!Slot.compareAndSwap(W, Waiting))
        return false;
      for (std::uint32_t Spin = 0; Spin < SpinBudget; ++Spin) {
        if (Slot.read() != Waiting) {
          // Only a matching popper can move us (Waiting -> Done).
          Slot.write(makeSlot(Empty, 0, bumpTag(Waiting) + 1));
          Eliminations.fetchAdd(1);
          return true;
        }
        cpuRelax();
      }
      // Withdraw; a failed withdrawal means a popper matched meanwhile.
      if (Slot.compareAndSwap(Waiting,
                              makeSlot(Empty, 0, bumpTag(Waiting))))
        return false;
      Slot.write(makeSlot(Empty, 0, bumpTag(Waiting) + 1));
      Eliminations.fetchAdd(1);
      return true;
    }
    case WaitingPop:
      // Hand our value straight to the waiting popper.
      if (Slot.compareAndSwap(W, makeSlot(Done, V, bumpTag(W)))) {
        Eliminations.fetchAdd(1);
        return true;
      }
      return false;
    case WaitingPush:
    case Done:
      return false;
    }
    return false;
  }

  /// Parks as a popper in a random slot; returns the pushed value on a
  /// match.
  std::optional<Value> tryEliminatePop(SplitMix64 &Rng) {
    AtomicRegister<std::uint64_t> &Slot = Slots[Rng.below(SlotCount)];
    const std::uint64_t W = Slot.read();
    switch (stateOf(W)) {
    case Empty: {
      const std::uint64_t Waiting = makeSlot(WaitingPop, 0, bumpTag(W));
      if (!Slot.compareAndSwap(W, Waiting))
        return std::nullopt;
      for (std::uint32_t Spin = 0; Spin < SpinBudget; ++Spin) {
        const std::uint64_t Now = Slot.read();
        if (Now != Waiting) {
          // A pusher moved us to Done carrying its value.
          const Value V = valueOf(Now);
          Slot.write(makeSlot(Empty, 0, bumpTag(Now)));
          Eliminations.fetchAdd(1);
          return V;
        }
        cpuRelax();
      }
      if (Slot.compareAndSwap(Waiting,
                              makeSlot(Empty, 0, bumpTag(Waiting))))
        return std::nullopt;
      const std::uint64_t Now = Slot.read();
      const Value V = valueOf(Now);
      Slot.write(makeSlot(Empty, 0, bumpTag(Now)));
      Eliminations.fetchAdd(1);
      return V;
    }
    case WaitingPush: {
      const Value V = valueOf(W);
      if (Slot.compareAndSwap(W, makeSlot(Done, V, bumpTag(W)))) {
        Eliminations.fetchAdd(1);
        return V;
      }
      return std::nullopt;
    }
    case WaitingPop:
    case Done:
      return std::nullopt;
    }
    return std::nullopt;
  }

  TreiberStack Central;
  const std::uint32_t SlotCount;
  const std::uint32_t SpinBudget;
  std::unique_ptr<AtomicRegister<std::uint64_t>[]> Slots;
  AtomicRegister<std::uint64_t> Eliminations{0};
};

} // namespace csobj

#endif // CSOBJ_BASELINES_ELIMINATIONBACKOFFSTACK_H
