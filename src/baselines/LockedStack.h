//===- baselines/LockedStack.h - Coarse lock-based stack --------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "traditional lock-based shared memory synchronization" the paper's
/// introduction contrasts against: a bounded sequential stack protected
/// by one lock, parametric in the lock type so the benchmark tables can
/// show every lock of the substrate. This is the implementation whose
/// locking overhead a contention-sensitive object eliminates in the
/// common case (experiment E5).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_BASELINES_LOCKEDSTACK_H
#define CSOBJ_BASELINES_LOCKEDSTACK_H

#include "core/Results.h"
#include "locks/LockTraits.h"
#include "locks/TasLock.h"

#include <cstdint>
#include <memory>

namespace csobj {

/// Bounded stack fully serialized by a single lock.
template <typename Lock = TtasLock>
class LockedStack {
public:
  using Value = std::uint32_t;

  LockedStack(std::uint32_t NumThreads, std::uint32_t Capacity)
      : Guard(NumThreads), CapacityK(Capacity),
        Contents(new Value[Capacity]) {}

  PushResult push(std::uint32_t Tid, Value V) {
    ScopedLock<Lock> Hold(Guard, Tid);
    if (Size == CapacityK)
      return PushResult::Full;
    Contents[Size++] = V;
    return PushResult::Done;
  }

  PopResult<Value> pop(std::uint32_t Tid) {
    ScopedLock<Lock> Hold(Guard, Tid);
    if (Size == 0)
      return PopResult<Value>::empty();
    return PopResult<Value>::value(Contents[--Size]);
  }

  std::uint32_t capacity() const { return CapacityK; }
  std::uint32_t sizeForTesting() const { return Size; }

private:
  Lock Guard;
  const std::uint32_t CapacityK;
  std::uint32_t Size = 0;
  std::unique_ptr<Value[]> Contents;
};

} // namespace csobj

#endif // CSOBJ_BASELINES_LOCKEDSTACK_H
