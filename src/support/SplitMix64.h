//===- support/SplitMix64.h - Small deterministic PRNG ----------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64: a tiny, fast, statistically solid PRNG used by workload
/// generators and property tests. Deterministic given a seed, trivially
/// splittable per thread (seed + thread id), and allocation free, which
/// keeps benchmark inner loops clean of library PRNG overhead.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SUPPORT_SPLITMIX64_H
#define CSOBJ_SUPPORT_SPLITMIX64_H

#include <cstdint>

namespace csobj {

/// SplitMix64 generator (Steele, Lea & Flood; public-domain reference
/// constants). Satisfies UniformRandomBitGenerator.
class SplitMix64 {
public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t Seed = 0x9e3779b97f4a7c15ull)
      : State(Seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    std::uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero. Uses the
  /// widening-multiply trick to avoid modulo bias for small bounds.
  std::uint64_t below(std::uint64_t Bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * Bound) >> 64);
  }

  /// Returns true with probability \p Numerator / \p Denominator.
  bool chance(std::uint64_t Numerator, std::uint64_t Denominator) {
    return below(Denominator) < Numerator;
  }

  /// Derives an independent stream for a given worker index.
  SplitMix64 split(std::uint64_t WorkerIndex) const {
    SplitMix64 Derived(State ^ (0x632be59bd9b4e019ull * (WorkerIndex + 1)));
    Derived(); // Warm up so adjacent workers decorrelate immediately.
    return Derived;
  }

private:
  std::uint64_t State;
};

} // namespace csobj

#endif // CSOBJ_SUPPORT_SPLITMIX64_H
