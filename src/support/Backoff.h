//===- support/Backoff.h - Randomized exponential backoff -------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized exponential backoff, the simplest contention manager the
/// paper's Section 5 alludes to. Used by baseline lock-free structures
/// (Treiber, elimination stack) and available as a retry manager for the
/// non-blocking constructions of Figure 2 and the protected retry of
/// Figure 3. Both classes model the ContentionManager concept
/// (support/ContentionManager.h): onAbort() after a bottom result,
/// onSuccess() after a non-bottom one.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SUPPORT_BACKOFF_H
#define CSOBJ_SUPPORT_BACKOFF_H

#include "support/SpinWait.h"
#include "support/SplitMix64.h"

#include <cstdint>
#include <thread>

namespace csobj {

/// Capped randomized exponential backoff. Each failure doubles the window
/// (up to \p MaxWindow) and waits a uniformly random number of relax hints
/// drawn from it.
class ExponentialBackoff {
public:
  static constexpr const char *Name = "exp";

  explicit ExponentialBackoff(std::uint32_t MinWindow = 4,
                              std::uint32_t MaxWindow = 1024,
                              std::uint64_t Seed = 0x5bd1e995u)
      : Window(MinWindow), Floor(MinWindow), Cap(MaxWindow), Rng(Seed) {}

  /// Waits for a random duration within the current window and widens it.
  void onFailure() {
    const std::uint64_t Steps = Rng.below(Window) + 1;
    for (std::uint64_t I = 0; I < Steps; ++I)
      cpuRelax();
    if (Window < Cap)
      Window *= 2;
    // Beyond the cap we still want to stop burning a shared core: on an
    // oversubscribed host the CAS owner may need our timeslice.
    if (Window >= Cap)
      std::this_thread::yield();
  }

  /// ContentionManager spelling of onFailure().
  void onAbort() { onFailure(); }

  /// Shrinks the window back to the floor after a success.
  void onSuccess() { Window = Floor; }

  std::uint32_t window() const { return Window; }

private:
  std::uint32_t Window;
  std::uint32_t Floor;
  std::uint32_t Cap;
  SplitMix64 Rng;
};

/// A no-op retry policy: retry immediately. Matches the literal text of
/// Figure 2 ("repeat ... until res != bottom").
struct NoBackoff {
  static constexpr const char *Name = "none";

  void onFailure() { cpuRelax(); }
  /// ContentionManager spelling of onFailure().
  void onAbort() { onFailure(); }
  void onSuccess() {}
};

} // namespace csobj

#endif // CSOBJ_SUPPORT_BACKOFF_H
