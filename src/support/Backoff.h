//===- support/Backoff.h - Randomized exponential backoff -------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized exponential backoff, the simplest contention manager the
/// paper's Section 5 alludes to. Used by baseline lock-free structures
/// (Treiber, elimination stack) and available as a retry manager for the
/// non-blocking constructions of Figure 2 and the protected retry of
/// Figure 3. Both classes model the ContentionManager concept
/// (support/ContentionManager.h): onAbort() after a bottom result,
/// onSuccess() after a non-bottom one.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SUPPORT_BACKOFF_H
#define CSOBJ_SUPPORT_BACKOFF_H

#include "support/SpinWait.h"
#include "support/SplitMix64.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

namespace csobj {

/// Sentinel seed meaning "derive a fresh per-thread, per-instance seed".
/// This is the default: a *constant* default seed put every thread's
/// backoff RNG into the identical SplitMix64 stream, so contending
/// threads drew the same windows in lockstep and re-collided — randomized
/// backoff without the randomization, which systematically skewed every
/// abort-rate and latency measurement under contention.
inline constexpr std::uint64_t DeriveBackoffSeed = ~std::uint64_t{0};

namespace detail {

/// Per-construction seed: the calling thread's id hashed and mixed with a
/// process-wide nonce, whitened through one SplitMix64 step. Two managers
/// constructed on different threads — or constructed twice on the same
/// thread — draw from diverging streams.
inline std::uint64_t deriveBackoffSeed() {
  static std::atomic<std::uint64_t> Nonce{0};
  const std::uint64_t Id =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::uint64_t Salt =
      Nonce.fetch_add(1, std::memory_order_relaxed) + 1;
  SplitMix64 Mix(Id ^ (Salt * 0x9e3779b97f4a7c15ull));
  return Mix();
}

} // namespace detail

/// Capped randomized exponential backoff. Each failure doubles the window
/// (up to \p MaxWindow) and waits a uniformly random number of relax hints
/// drawn from it.
class ExponentialBackoff {
public:
  static constexpr const char *Name = "exp";

  explicit ExponentialBackoff(std::uint32_t MinWindow = 4,
                              std::uint32_t MaxWindow = 1024,
                              std::uint64_t Seed = DeriveBackoffSeed)
      : Window(MinWindow), Floor(MinWindow), Cap(MaxWindow),
        Rng(Seed == DeriveBackoffSeed ? detail::deriveBackoffSeed() : Seed) {}

  /// Waits for a random duration within the current window and widens it.
  void onFailure() {
    const std::uint64_t Steps = Rng.below(Window) + 1;
    for (std::uint64_t I = 0; I < Steps; ++I)
      cpuRelax();
    if (Window < Cap)
      Window *= 2;
    // Beyond the cap we still want to stop burning a shared core: on an
    // oversubscribed host the CAS owner may need our timeslice.
    if (Window >= Cap)
      std::this_thread::yield();
  }

  /// ContentionManager spelling of onFailure().
  void onAbort() { onFailure(); }

  /// Shrinks the window back to the floor after a success.
  void onSuccess() { Window = Floor; }

  std::uint32_t window() const { return Window; }

  /// Next randomized step count, without the wait (regression-test aid:
  /// seed divergence is asserted on these draws; advances the RNG exactly
  /// as onFailure would).
  std::uint64_t stepDrawForTesting() { return Rng.below(Window) + 1; }

private:
  std::uint32_t Window;
  std::uint32_t Floor;
  std::uint32_t Cap;
  SplitMix64 Rng;
};

/// A no-op retry policy: retry immediately. Matches the literal text of
/// Figure 2 ("repeat ... until res != bottom").
struct NoBackoff {
  static constexpr const char *Name = "none";

  void onFailure() { cpuRelax(); }
  /// ContentionManager spelling of onFailure().
  void onAbort() { onFailure(); }
  void onSuccess() {}
};

} // namespace csobj

#endif // CSOBJ_SUPPORT_BACKOFF_H
