//===- support/BitPack.h - Bit-field packing for CAS words ------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal, "Looking for
// Efficient Implementations of Concurrent Objects" (IRISA PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time bit-field packing utilities. The stack algorithms of the
/// paper require multi-field registers (e.g. TOP = <index, value, seqnb>)
/// that can be updated with a single Compare&Swap. These helpers pack and
/// unpack such fields into one 64-bit (or 128-bit) machine word with all
/// widths checked at compile time.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SUPPORT_BITPACK_H
#define CSOBJ_SUPPORT_BITPACK_H

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace csobj {

/// Returns a mask with the low \p Bits bits set. \p Bits must be in [1, 64].
template <typename WordT>
constexpr WordT lowBitMask(unsigned Bits) {
  constexpr unsigned WordBits = sizeof(WordT) * 8;
  static_assert(std::is_unsigned_v<WordT>, "mask requires unsigned word");
  return Bits >= WordBits ? ~WordT{0} : ((WordT{1} << Bits) - WordT{1});
}

/// A single field inside a packed word: \p Shift low bit position and
/// \p Bits width. Field values are always handled zero-extended in the
/// word type.
template <typename WordT, unsigned Shift, unsigned Bits>
struct BitField {
  static_assert(std::is_unsigned_v<WordT>, "packed words must be unsigned");
  static_assert(Bits >= 1, "empty bit-field");
  static_assert(Shift + Bits <= sizeof(WordT) * 8, "field exceeds word");

  static constexpr unsigned ShiftAmount = Shift;
  static constexpr unsigned Width = Bits;
  static constexpr WordT ValueMask = lowBitMask<WordT>(Bits);

  /// Largest value representable in this field.
  static constexpr WordT maxValue() { return ValueMask; }

  /// Extracts the field from \p Word.
  static constexpr WordT get(WordT Word) {
    return (Word >> Shift) & ValueMask;
  }

  /// Returns \p Word with the field replaced by \p Value.
  static constexpr WordT set(WordT Word, WordT Value) {
    assert((Value & ~ValueMask) == 0 && "bit-field value out of range");
    return (Word & ~(ValueMask << Shift)) | (Value << Shift);
  }

  /// Encodes \p Value as this field's contribution to a fresh word.
  static constexpr WordT encode(WordT Value) {
    assert((Value & ~ValueMask) == 0 && "bit-field value out of range");
    return Value << Shift;
  }
};

/// Packs three logical fields <A, B, C> laid out from bit 0 upward into a
/// single unsigned word. Used for the paper's TOP register (three fields)
/// with A=index, B=seqnb, C=value.
template <typename WordT, unsigned ABits, unsigned BBits, unsigned CBits>
struct PackedTriple {
  static_assert(ABits + BBits + CBits == sizeof(WordT) * 8,
                "triple must fill the word exactly");

  using FieldA = BitField<WordT, 0, ABits>;
  using FieldB = BitField<WordT, ABits, BBits>;
  using FieldC = BitField<WordT, ABits + BBits, CBits>;

  static constexpr WordT pack(WordT A, WordT B, WordT C) {
    return FieldA::encode(A) | FieldB::encode(B) | FieldC::encode(C);
  }

  static constexpr WordT a(WordT Word) { return FieldA::get(Word); }
  static constexpr WordT b(WordT Word) { return FieldB::get(Word); }
  static constexpr WordT c(WordT Word) { return FieldC::get(Word); }
};

/// Packs two logical fields <A, B> into a single unsigned word. Used for
/// the paper's STACK[x] registers (<val, sn> pairs).
template <typename WordT, unsigned ABits, unsigned BBits>
struct PackedPair {
  static_assert(ABits + BBits == sizeof(WordT) * 8,
                "pair must fill the word exactly");

  using FieldA = BitField<WordT, 0, ABits>;
  using FieldB = BitField<WordT, ABits, BBits>;

  static constexpr WordT pack(WordT A, WordT B) {
    return FieldA::encode(A) | FieldB::encode(B);
  }

  static constexpr WordT a(WordT Word) { return FieldA::get(Word); }
  static constexpr WordT b(WordT Word) { return FieldB::get(Word); }
};

} // namespace csobj

#endif // CSOBJ_SUPPORT_BITPACK_H
