//===- support/CacheLine.h - False-sharing avoidance ------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-line sizing and a padded wrapper. Registers that the paper keeps
/// logically separate (FLAG[i] of distinct processes, TURN, CONTENTION,
/// the lock word) are placed on distinct cache lines so that measured
/// contention reflects the algorithm, not accidental false sharing.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SUPPORT_CACHELINE_H
#define CSOBJ_SUPPORT_CACHELINE_H

#include <cstddef>
#include <new>

namespace csobj {

/// Fixed at 64 bytes (x86-64 / common AArch64). A constant is preferred
/// over std::hardware_destructive_interference_size, whose value can vary
/// across compiler versions and tuning flags.
inline constexpr std::size_t CacheLineSize = 64;

/// Wraps \p T padded out to a full cache line. Access the payload through
/// value().
template <typename T>
struct alignas(CacheLineSize) CacheLinePadded {
  T Payload{};

  T &value() { return Payload; }
  const T &value() const { return Payload; }
};

} // namespace csobj

#endif // CSOBJ_SUPPORT_CACHELINE_H
