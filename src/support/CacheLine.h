//===- support/CacheLine.h - False-sharing avoidance ------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-line sizing and a padded wrapper. Registers that the paper keeps
/// logically separate (FLAG[i] of distinct processes, TURN, CONTENTION,
/// the lock word) are placed on distinct cache lines so that measured
/// contention reflects the algorithm, not accidental false sharing.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SUPPORT_CACHELINE_H
#define CSOBJ_SUPPORT_CACHELINE_H

#include <cstddef>
#include <new>

namespace csobj {

/// Fixed at 64 bytes (x86-64 / common AArch64). A constant is preferred
/// over std::hardware_destructive_interference_size, whose value can vary
/// across compiler versions and tuning flags.
inline constexpr std::size_t CacheLineSize = 64;

/// Wraps \p T padded out to a full cache line. Access the payload through
/// value().
template <typename T>
struct alignas(CacheLineSize) CacheLinePadded {
  T Payload{};

  T &value() { return Payload; }
  const T &value() const { return Payload; }
};

/// True when \p T occupies whole cache lines exclusively: its alignment
/// keeps it off anyone else's line and its size keeps anyone else off its
/// lines, so adjacent array elements of T can never false-share. The
/// false-sharing regression tests static_assert this for every hot word
/// that sits in a shared array (FLAG entries, elimination slots, combiner
/// publication records).
template <typename T>
inline constexpr bool occupiesWholeCacheLines =
    alignof(T) >= CacheLineSize && sizeof(T) % CacheLineSize == 0;

static_assert(occupiesWholeCacheLines<CacheLinePadded<char>>,
              "CacheLinePadded must round its payload up to full lines");

} // namespace csobj

#endif // CSOBJ_SUPPORT_CACHELINE_H
