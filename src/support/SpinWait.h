//===- support/SpinWait.h - Oversubscription-safe busy waiting --*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Escalating spin-wait helper. The paper's algorithms contain unbounded
/// busy-wait loops (the line-05 doorway wait of Figure 3, lock acquisition
/// loops, non-blocking retry loops). On an oversubscribed or single-core
/// host a naive spin can delay the very thread it is waiting for, so every
/// library spin loop goes through SpinWait, which escalates
/// pause -> sched yield -> short sleep. This preserves the paper's liveness
/// arguments under any fair OS scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SUPPORT_SPINWAIT_H
#define CSOBJ_SUPPORT_SPINWAIT_H

#include <chrono>
#include <cstdint>
#include <thread>

namespace csobj {

/// Emits a CPU pause/relax hint where available.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Per-wait-site escalation state. Construct one before a spin loop and
/// call once() each time the awaited condition is found false.
class SpinWait {
public:
  /// Number of pause-only iterations before escalating to yields.
  static constexpr std::uint32_t PauseIterations = 64;
  /// Number of yield iterations before escalating to sleeps.
  static constexpr std::uint32_t YieldIterations = 64;

  void once() {
    ++Spins;
    if (Spins <= PauseIterations) {
      cpuRelax();
      return;
    }
    if (Spins <= PauseIterations + YieldIterations) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  /// Resets escalation, e.g. after observing forward progress.
  void reset() { Spins = 0; }

  std::uint32_t spinCount() const { return Spins; }

private:
  std::uint32_t Spins = 0;
};

/// Spins until \p Condition() is true, escalating politely.
template <typename ConditionFn>
void spinUntil(ConditionFn Condition) {
  SpinWait Waiter;
  while (!Condition())
    Waiter.once();
}

} // namespace csobj

#endif // CSOBJ_SUPPORT_SPINWAIT_H
