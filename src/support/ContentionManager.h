//===- support/ContentionManager.h - Retry-loop managers --------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contention-manager layer for the library's retry loops: the
/// Figure 2 "repeat ... until res != bottom" loops of the non-blocking
/// stack/queue and the protected retry (line 08) of Figure 3. A manager
/// observes one operation's attempt stream — onAbort() after each bottom
/// result, onSuccess() when the operation completes — and decides how
/// long to stand back before the next attempt. This is the design space
/// Dice, Hendler & Mirsky's lightweight CAS contention management
/// explores: under load, *when* you retry matters multiples as much as
/// how fast one attempt is.
///
/// Managers provided (all satisfy the ContentionManager concept):
///  * NoBackoff           — retry immediately (the paper-literal loop).
///  * ExponentialBackoff  — capped randomized doubling (support/Backoff.h).
///  * YieldBackoff        — brief local spin, then surrender the
///                          timeslice; the right manager on
///                          oversubscribed hosts where the CAS winner
///                          may not even be running.
///  * AdaptiveBackoff     — widens from *observed* CAS-failure feedback
///                          (the CasFailures channel of AccessCounts)
///                          rather than blindly doubling, so a single
///                          unlucky abort in an otherwise quiet system
///                          does not park the thread.
///
/// A manager instance is per-operation: it lives for one strong/
/// non-blocking operation's retry loop. Cross-operation adaptation is the
/// caller's business (e.g. the adaptive manager can be seeded with the
/// previous window).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SUPPORT_CONTENTIONMANAGER_H
#define CSOBJ_SUPPORT_CONTENTIONMANAGER_H

#include "memory/AccessCounter.h"
#include "support/Backoff.h"
#include "support/SpinWait.h"
#include "support/SplitMix64.h"

#include <algorithm>
#include <cstdint>
#include <thread>

namespace csobj {

/// What a retry loop requires of its manager: react to an aborted attempt
/// and to the operation's eventual completion.
template <typename M>
concept ContentionManager = requires(M Manager) {
  Manager.onAbort();
  Manager.onSuccess();
};

static_assert(ContentionManager<NoBackoff>);
static_assert(ContentionManager<ExponentialBackoff>);

/// Time-slice manager: a short in-core spin for the common
/// immediately-resolved conflict, then yield the core on every further
/// abort so the operation that beat us can finish. No shared state, no
/// randomness — the OS scheduler is the backoff.
class YieldBackoff {
public:
  static constexpr const char *Name = "yield";

  explicit YieldBackoff(std::uint32_t SpinBudget = 16)
      : Budget(SpinBudget) {}

  void onAbort() {
    if (++Aborts <= Budget) {
      cpuRelax();
      return;
    }
    std::this_thread::yield();
  }

  void onSuccess() { Aborts = 0; }

  std::uint32_t abortsObserved() const { return Aborts; }

private:
  std::uint32_t Budget;
  std::uint32_t Aborts = 0;
};

static_assert(ContentionManager<YieldBackoff>);

/// Feedback-driven backoff. Where ExponentialBackoff doubles on every
/// abort, AdaptiveBackoff widens in proportion to the contention it can
/// actually see: under the Instrumented register policy each abort
/// consults the thread's AccessCounts.CasFailures delta since the last
/// abort (every failed C&S inside the weak operation — TOP, slot, help —
/// is evidence of a rival), and widens one doubling per observed failure
/// (capped). Under the Fast policy no counts exist and each abort is
/// itself the one observable failure, so the manager degrades exactly to
/// capped exponential doubling. Successes halve the window instead of
/// resetting it, so a long contended phase is remembered across the
/// operations of one retry loop.
class AdaptiveBackoff {
public:
  static constexpr const char *Name = "adaptive";

  explicit AdaptiveBackoff(std::uint32_t MinWindow = 2,
                           std::uint32_t MaxWindow = 4096,
                           std::uint64_t Seed = DeriveBackoffSeed)
      : Window(MinWindow), Floor(MinWindow), Cap(MaxWindow),
        Rng(Seed == DeriveBackoffSeed ? detail::deriveBackoffSeed() : Seed) {
    if (const AccessCounts *Counts = detail::ActiveAccessCounts)
      LastCasFailures = Counts->CasFailures;
  }

  void onAbort() {
    // How many C&S failures has this thread accumulated since the last
    // abort? At least one: the failed attempt that brought us here.
    std::uint64_t Observed = 1;
    if (const AccessCounts *Counts = detail::ActiveAccessCounts) {
      Observed = std::max<std::uint64_t>(
          Counts->CasFailures - LastCasFailures, 1);
      LastCasFailures = Counts->CasFailures;
    }
    const std::uint32_t Doublings =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(Observed, 6));
    Window = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(Window)
                                    << Doublings,
                                Cap));
    const std::uint64_t Steps = Rng.below(Window) + 1;
    for (std::uint64_t I = 0; I < Steps; ++I)
      cpuRelax();
    // At the cap the manager has concluded the system is saturated:
    // surrender the timeslice rather than burn a shared core.
    if (Window >= Cap)
      std::this_thread::yield();
  }

  void onSuccess() { Window = std::max(Floor, Window / 2); }

  std::uint32_t window() const { return Window; }

  /// Next randomized step count, without the wait (regression-test aid
  /// for seed divergence).
  std::uint64_t stepDrawForTesting() { return Rng.below(Window) + 1; }

private:
  std::uint32_t Window;
  std::uint32_t Floor;
  std::uint32_t Cap;
  std::uint64_t LastCasFailures = 0;
  SplitMix64 Rng;
};

static_assert(ContentionManager<AdaptiveBackoff>);

} // namespace csobj

#endif // CSOBJ_SUPPORT_CONTENTIONMANAGER_H
