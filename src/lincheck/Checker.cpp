//===- lincheck/Checker.cpp - Sequential spec implementations ------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "lincheck/Spec.h"

#include <algorithm>

namespace csobj {

bool BoundedStackSpec::apply(const Operation &Op) {
  if (Op.Code == OpCode::Push) {
    if (Op.Result == ResCode::Done) {
      if (Contents.size() >= Capacity)
        return false;
      Contents.push_back(Op.Arg);
      return true;
    }
    // Full answer is legal only at capacity.
    return Op.Result == ResCode::Full && Contents.size() == Capacity;
  }
  // Pop.
  if (Op.Result == ResCode::Value) {
    if (Contents.empty() || Contents.back() != Op.RetValue)
      return false;
    Contents.pop_back();
    return true;
  }
  return Op.Result == ResCode::Empty && Contents.empty();
}

std::string BoundedStackSpec::key() const {
  std::string Key;
  Key.reserve(Contents.size() * 4);
  for (std::uint32_t V : Contents)
    Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
  return Key;
}

bool BoundedDequeSpec::apply(const Operation &Op) {
  switch (Op.Code) {
  case OpCode::PushLeft:
  case OpCode::PushRight:
    if (Op.Result == ResCode::Done) {
      if (Contents.size() >= Capacity)
        return false;
      if (Op.Code == OpCode::PushLeft)
        Contents.push_front(Op.Arg);
      else
        Contents.push_back(Op.Arg);
      return true;
    }
    return Op.Result == ResCode::Full && Contents.size() == Capacity;
  case OpCode::PopLeft:
    if (Op.Result == ResCode::Value) {
      if (Contents.empty() || Contents.front() != Op.RetValue)
        return false;
      Contents.pop_front();
      return true;
    }
    return Op.Result == ResCode::Empty && Contents.empty();
  case OpCode::PopRight:
    if (Op.Result == ResCode::Value) {
      if (Contents.empty() || Contents.back() != Op.RetValue)
        return false;
      Contents.pop_back();
      return true;
    }
    return Op.Result == ResCode::Empty && Contents.empty();
  case OpCode::Push:
  case OpCode::Pop:
    return false; // Wrong operation model for a deque history.
  }
  return false;
}

std::string BoundedDequeSpec::key() const {
  std::string Key;
  Key.reserve(Contents.size() * 4);
  for (std::uint32_t V : Contents)
    Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
  return Key;
}

bool LinearDequeSpec::apply(const Operation &Op) {
  switch (Op.Code) {
  case OpCode::PushLeft:
    if (Op.Result == ResCode::Done) {
      if (LeftFree == 0)
        return false;
      Contents.push_front(Op.Arg);
      --LeftFree;
      return true;
    }
    return Op.Result == ResCode::Full && LeftFree == 0;
  case OpCode::PushRight:
    if (Op.Result == ResCode::Done) {
      if (rightFree() == 0)
        return false;
      Contents.push_back(Op.Arg);
      return true;
    }
    return Op.Result == ResCode::Full && rightFree() == 0;
  case OpCode::PopLeft:
    if (Op.Result == ResCode::Value) {
      if (Contents.empty() || Contents.front() != Op.RetValue)
        return false;
      Contents.pop_front();
      ++LeftFree;
      return true;
    }
    return Op.Result == ResCode::Empty && Contents.empty();
  case OpCode::PopRight:
    if (Op.Result == ResCode::Value) {
      if (Contents.empty() || Contents.back() != Op.RetValue)
        return false;
      Contents.pop_back();
      return true;
    }
    return Op.Result == ResCode::Empty && Contents.empty();
  case OpCode::Push:
  case OpCode::Pop:
    return false;
  }
  return false;
}

std::string LinearDequeSpec::key() const {
  std::string Key;
  Key.reserve(Contents.size() * 4 + 4);
  Key.append(reinterpret_cast<const char *>(&LeftFree), sizeof(LeftFree));
  for (std::uint32_t V : Contents)
    Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
  return Key;
}

bool BoundedBagSpec::apply(const Operation &Op) {
  if (Op.Code == OpCode::Push) {
    if (Op.Result == ResCode::Done) {
      if (Contents.size() >= Capacity)
        return false;
      Contents.insert(
          std::lower_bound(Contents.begin(), Contents.end(), Op.Arg),
          Op.Arg);
      return true;
    }
    return Op.Result == ResCode::Full && Contents.size() == Capacity;
  }
  if (Op.Result == ResCode::Value) {
    const auto It =
        std::lower_bound(Contents.begin(), Contents.end(), Op.RetValue);
    if (It == Contents.end() || *It != Op.RetValue)
      return false;
    Contents.erase(It);
    return true;
  }
  return Op.Result == ResCode::Empty && Contents.empty();
}

std::string BoundedBagSpec::key() const {
  std::string Key;
  Key.reserve(Contents.size() * 4);
  for (std::uint32_t V : Contents)
    Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
  return Key;
}

bool BoundedQueueSpec::apply(const Operation &Op) {
  if (Op.Code == OpCode::Push) {
    if (Op.Result == ResCode::Done) {
      if (Contents.size() >= Capacity)
        return false;
      Contents.push_back(Op.Arg);
      return true;
    }
    return Op.Result == ResCode::Full && Contents.size() == Capacity;
  }
  if (Op.Result == ResCode::Value) {
    if (Contents.empty() || Contents.front() != Op.RetValue)
      return false;
    Contents.pop_front();
    return true;
  }
  return Op.Result == ResCode::Empty && Contents.empty();
}

std::string BoundedQueueSpec::key() const {
  std::string Key;
  Key.reserve(Contents.size() * 4);
  for (std::uint32_t V : Contents)
    Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
  return Key;
}

bool OrderedMapSpec::apply(const Operation &Op) {
  const std::uint32_t K = Op.Arg;
  switch (Op.Code) {
  case OpCode::Insert:
    if (Op.Result == ResCode::Done) {
      // Update is always legal; an absent key needs a live slot.
      if (Live.count(K) == 0 && Live.size() >= Capacity)
        return false;
      Live[K] = Op.RetValue;
      return true;
    }
    return Op.Result == ResCode::Full && Live.count(K) == 0 &&
           Live.size() >= Capacity;
  case OpCode::Get: {
    const auto It = Live.find(K);
    if (Op.Result == ResCode::Value)
      return It != Live.end() && It->second == Op.RetValue;
    return Op.Result == ResCode::Empty && It == Live.end();
  }
  case OpCode::Erase: {
    const auto It = Live.find(K);
    if (Op.Result == ResCode::Value) {
      if (It == Live.end() || It->second != Op.RetValue)
        return false;
      Live.erase(It);
      return true;
    }
    return Op.Result == ResCode::Empty && It == Live.end();
  }
  default:
    return false; // a non-map op in a map history is a harness bug
  }
}

std::string OrderedMapSpec::key() const {
  std::string Key;
  Key.reserve(Live.size() * 2 * 4);
  for (const auto &[K, V] : Live) {
    Key.append(reinterpret_cast<const char *>(&K), sizeof(K));
    Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
  }
  return Key;
}

} // namespace csobj
