//===- lincheck/Spec.h - Sequential specifications --------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sequential specifications of the objects under test, in the form the
/// linearizability checker consumes: a value-type state plus an apply
/// function that checks one operation's result against the state and
/// advances it. Both objects are *bounded* and *total* exactly as in the
/// paper: push on a full object answers "full", pop on an empty object
/// answers "empty" (Section 1.1).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LINCHECK_SPEC_H
#define CSOBJ_LINCHECK_SPEC_H

#include "lincheck/History.h"

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace csobj {

/// Sequential bounded LIFO stack.
class BoundedStackSpec {
public:
  explicit BoundedStackSpec(std::uint32_t Capacity) : Capacity(Capacity) {}

  /// If \p Op is legal in the current state, applies it and returns true;
  /// otherwise leaves the state unchanged and returns false.
  bool apply(const Operation &Op);

  /// Canonical serialization for memoization keys.
  std::string key() const;

  std::size_t size() const { return Contents.size(); }

private:
  std::uint32_t Capacity;
  std::vector<std::uint32_t> Contents;
};

/// Sequential bounded double-ended queue. Push/PopLeft and
/// Push/PopRight act on the respective ends; the plain Push/Pop codes
/// are rejected (a history mixing models is a bug in the harness).
class BoundedDequeSpec {
public:
  explicit BoundedDequeSpec(std::uint32_t Capacity) : Capacity(Capacity) {}

  bool apply(const Operation &Op);
  std::string key() const;
  std::size_t size() const { return Contents.size(); }

private:
  std::uint32_t Capacity;
  std::deque<std::uint32_t> Contents;
};

/// Sequential specification of the *linear* (non-circular) HLM deque:
/// the array cannot shift the value block, so each end reports Full when
/// its own free slots run out. State = contents + how many free slots
/// remain on the left; the right side is derived.
class LinearDequeSpec {
public:
  LinearDequeSpec(std::uint32_t Capacity, std::uint32_t InitialLeftSlots)
      : Capacity(Capacity), LeftFree(InitialLeftSlots) {}

  bool apply(const Operation &Op);
  std::string key() const;
  std::size_t size() const { return Contents.size(); }
  std::uint32_t rightFree() const {
    return Capacity - static_cast<std::uint32_t>(Contents.size()) -
           LeftFree;
  }

private:
  std::uint32_t Capacity;
  std::uint32_t LeftFree;
  std::deque<std::uint32_t> Contents;
};

/// Sequential bounded *bag* (pool): pop returns some pushed-but-unpopped
/// element, with no ordering constraint. This is the specification of
/// the sharded stack (perf/ShardedStack.h), whose pops follow per-shard
/// LIFO order but not a global one. State = sorted multiset, which is
/// also its canonical memo key.
class BoundedBagSpec {
public:
  explicit BoundedBagSpec(std::uint32_t Capacity) : Capacity(Capacity) {}

  bool apply(const Operation &Op);
  std::string key() const;
  std::size_t size() const { return Contents.size(); }

private:
  std::uint32_t Capacity;
  std::vector<std::uint32_t> Contents; // kept sorted
};

/// Sequential bounded FIFO queue.
class BoundedQueueSpec {
public:
  explicit BoundedQueueSpec(std::uint32_t Capacity) : Capacity(Capacity) {}

  bool apply(const Operation &Op);
  std::string key() const;
  std::size_t size() const { return Contents.size(); }

private:
  std::uint32_t Capacity;
  std::deque<std::uint32_t> Contents;
};

/// Sequential bounded ordered map whose capacity counts *live* keys
/// (erase frees the key's slot — core/SkipListCore.h physically removes
/// and recycles erased nodes). Insert of a live key is always Done
/// (update); insert of an absent key is Done below capacity and Full at
/// it. Get/Erase answer the live mapping or Empty.
class OrderedMapSpec {
public:
  explicit OrderedMapSpec(std::uint32_t Capacity) : Capacity(Capacity) {}

  bool apply(const Operation &Op);
  std::string key() const;
  std::size_t size() const { return Live.size(); }

private:
  std::uint32_t Capacity;
  std::map<std::uint32_t, std::uint32_t> Live;
};

} // namespace csobj

#endif // CSOBJ_LINCHECK_SPEC_H
