//===- lincheck/History.h - Concurrent operation histories ------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Histories in the Herlihy & Wing sense: every completed operation is an
/// interval [invoke, response] on a global time line, tagged with the
/// operation, its argument and its result. The recorder is wait-free on
/// the recording threads (each thread appends to its own log; logs merge
/// after the run), so recording does not serialize the object under test.
///
/// The paper's safety property is linearizability of the non-bottom
/// operations; aborted (bottom) operations take no effect and therefore
/// are *excluded* from the history — the checker separately verifies,
/// via the sequential spec, that excluding them is consistent.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LINCHECK_HISTORY_H
#define CSOBJ_LINCHECK_HISTORY_H

#include <cstdint>
#include <string>
#include <vector>

namespace csobj {

/// Operation code on the object under test.
enum class OpCode : std::uint8_t {
  Push,      ///< push(arg) / enqueue(arg)
  Pop,       ///< pop() / dequeue()
  PushLeft,  ///< deque: push on the left end
  PushRight, ///< deque: push on the right end
  PopLeft,   ///< deque: pop from the left end
  PopRight,  ///< deque: pop from the right end
  Get,       ///< map: get(Arg=key) -> Value(RetValue) | Empty
  Insert,    ///< map: insert(Arg=key, RetValue=value) -> Done | Full
  Erase,     ///< map: erase(Arg=key) -> Value(old value) | Empty
};

/// True for the operations that add an element.
inline bool isPushLike(OpCode Code) {
  return Code == OpCode::Push || Code == OpCode::PushLeft ||
         Code == OpCode::PushRight;
}

/// Result classification of a completed operation.
enum class ResCode : std::uint8_t {
  Done,   ///< Push succeeded.
  Full,   ///< Push hit capacity.
  Value,  ///< Pop returned RetValue.
  Empty,  ///< Pop found the object empty.
};

/// One completed (non-bottom) operation.
struct Operation {
  std::uint32_t Tid = 0;
  OpCode Code = OpCode::Push;
  std::uint32_t Arg = 0;       ///< Pushed value; map ops: the key.
  ResCode Result = ResCode::Done;
  std::uint32_t RetValue = 0;  ///< Popped value (Result == Value only);
                               ///< Insert: the value being inserted.
  std::uint64_t InvokeNs = 0;  ///< Invocation timestamp.
  std::uint64_t ResponseNs = 0;///< Response timestamp.
};

/// A complete history: all operations from one concurrent run.
struct History {
  std::vector<Operation> Ops;

  /// Sorts by invocation time (canonical order for the checker).
  void normalize();

  /// True when every interval is well formed (invoke <= response).
  bool wellFormed() const;

  /// Human-readable dump for failure diagnostics.
  std::string describe() const;
};

/// Per-thread recorder; merge after the run.
class HistoryRecorder {
public:
  explicit HistoryRecorder(std::uint32_t Tid) : Tid(Tid) {}

  /// Returns a timestamp for "now" (monotonic, ns).
  static std::uint64_t now();

  void recordPush(std::uint32_t Arg, bool WasFull, std::uint64_t InvokeNs,
                  std::uint64_t ResponseNs);
  void recordPopValue(std::uint32_t Value, std::uint64_t InvokeNs,
                      std::uint64_t ResponseNs);
  void recordPopEmpty(std::uint64_t InvokeNs, std::uint64_t ResponseNs);

  /// Fully general record (used by the deque and custom objects).
  void recordOp(OpCode Code, std::uint32_t Arg, ResCode Result,
                std::uint32_t RetValue, std::uint64_t InvokeNs,
                std::uint64_t ResponseNs);

  const std::vector<Operation> &ops() const { return Log; }

private:
  std::uint32_t Tid;
  std::vector<Operation> Log;
};

/// Merges per-thread logs into one normalized history.
History mergeHistories(const std::vector<HistoryRecorder> &Recorders);

} // namespace csobj

#endif // CSOBJ_LINCHECK_HISTORY_H
