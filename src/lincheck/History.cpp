//===- lincheck/History.cpp -----------------------------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "lincheck/History.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace csobj {

void History::normalize() {
  std::stable_sort(Ops.begin(), Ops.end(),
                   [](const Operation &A, const Operation &B) {
                     return A.InvokeNs < B.InvokeNs;
                   });
}

bool History::wellFormed() const {
  for (const Operation &Op : Ops)
    if (Op.InvokeNs > Op.ResponseNs)
      return false;
  return true;
}

static const char *opName(OpCode Code) {
  switch (Code) {
  case OpCode::Push:
    return "push";
  case OpCode::Pop:
    return "pop";
  case OpCode::PushLeft:
    return "push_left";
  case OpCode::PushRight:
    return "push_right";
  case OpCode::PopLeft:
    return "pop_left";
  case OpCode::PopRight:
    return "pop_right";
  case OpCode::Get:
    return "get";
  case OpCode::Insert:
    return "insert";
  case OpCode::Erase:
    return "erase";
  }
  return "?";
}

/// True for the keyed map operations (Arg is a key, not a value).
static bool isMapOp(OpCode Code) {
  return Code == OpCode::Get || Code == OpCode::Insert ||
         Code == OpCode::Erase;
}

std::string History::describe() const {
  std::ostringstream OS;
  for (const Operation &Op : Ops) {
    OS << "t" << Op.Tid << " [" << Op.InvokeNs << ", " << Op.ResponseNs
       << "] " << opName(Op.Code);
    if (isMapOp(Op.Code)) {
      OS << "(k=" << Op.Arg;
      if (Op.Code == OpCode::Insert)
        OS << ", v=" << Op.RetValue;
      OS << ") -> ";
      switch (Op.Result) {
      case ResCode::Done:
        OS << "done";
        break;
      case ResCode::Full:
        OS << "full";
        break;
      case ResCode::Value:
        OS << Op.RetValue;
        break;
      case ResCode::Empty:
        OS << "empty";
        break;
      }
    } else if (isPushLike(Op.Code))
      OS << "(" << Op.Arg << ") -> "
         << (Op.Result == ResCode::Done ? "done" : "full");
    else if (Op.Result == ResCode::Value)
      OS << "() -> " << Op.RetValue;
    else
      OS << "() -> empty";
    OS << "\n";
  }
  return OS.str();
}

std::uint64_t HistoryRecorder::now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void HistoryRecorder::recordPush(std::uint32_t Arg, bool WasFull,
                                 std::uint64_t InvokeNs,
                                 std::uint64_t ResponseNs) {
  Operation Op;
  Op.Tid = Tid;
  Op.Code = OpCode::Push;
  Op.Arg = Arg;
  Op.Result = WasFull ? ResCode::Full : ResCode::Done;
  Op.InvokeNs = InvokeNs;
  Op.ResponseNs = ResponseNs;
  Log.push_back(Op);
}

void HistoryRecorder::recordPopValue(std::uint32_t Value,
                                     std::uint64_t InvokeNs,
                                     std::uint64_t ResponseNs) {
  Operation Op;
  Op.Tid = Tid;
  Op.Code = OpCode::Pop;
  Op.Result = ResCode::Value;
  Op.RetValue = Value;
  Op.InvokeNs = InvokeNs;
  Op.ResponseNs = ResponseNs;
  Log.push_back(Op);
}

void HistoryRecorder::recordPopEmpty(std::uint64_t InvokeNs,
                                     std::uint64_t ResponseNs) {
  Operation Op;
  Op.Tid = Tid;
  Op.Code = OpCode::Pop;
  Op.Result = ResCode::Empty;
  Op.InvokeNs = InvokeNs;
  Op.ResponseNs = ResponseNs;
  Log.push_back(Op);
}

void HistoryRecorder::recordOp(OpCode Code, std::uint32_t Arg,
                               ResCode Result, std::uint32_t RetValue,
                               std::uint64_t InvokeNs,
                               std::uint64_t ResponseNs) {
  Operation Op;
  Op.Tid = Tid;
  Op.Code = Code;
  Op.Arg = Arg;
  Op.Result = Result;
  Op.RetValue = RetValue;
  Op.InvokeNs = InvokeNs;
  Op.ResponseNs = ResponseNs;
  Log.push_back(Op);
}

History mergeHistories(const std::vector<HistoryRecorder> &Recorders) {
  History Merged;
  for (const HistoryRecorder &R : Recorders)
    Merged.Ops.insert(Merged.Ops.end(), R.ops().begin(), R.ops().end());
  Merged.normalize();
  return Merged;
}

} // namespace csobj
