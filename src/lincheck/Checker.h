//===- lincheck/Checker.h - Wing & Gong linearizability check ---*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decision procedure for linearizability of a recorded history against a
/// sequential specification: the Wing & Gong depth-first search with the
/// Lowe memoization refinement (caching visited <taken-set, spec-state>
/// configurations). Exponential in the worst case, fast on the short
/// histories the stress tests produce.
///
/// An operation is a *candidate* for the next linearization point iff no
/// other pending operation responded before it was invoked (real-time
/// order must be respected, per Herlihy & Wing).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LINCHECK_CHECKER_H
#define CSOBJ_LINCHECK_CHECKER_H

#include "lincheck/History.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace csobj {

/// Outcome of a linearizability check.
struct CheckResult {
  bool Linearizable = false;
  bool HitSearchCap = false;       ///< Search aborted: result inconclusive.
  std::uint64_t StatesExplored = 0;
  std::string FailureNote;
};

/// Checks \p H against spec \p Initial (copied per branch). Histories are
/// limited to 64 operations — callers segment longer runs into rounds.
/// \p SearchCap bounds explored configurations.
template <typename Spec>
CheckResult checkLinearizable(const History &H, Spec Initial,
                              std::uint64_t SearchCap = 4'000'000) {
  CheckResult Result;
  const std::size_t N = H.Ops.size();
  assert(N <= 64 && "segment histories into <= 64 operations");
  if (N == 0) {
    Result.Linearizable = true;
    return Result;
  }

  std::unordered_set<std::string> Visited;

  struct Frame {
    std::uint64_t TakenMask;
    Spec State;
    std::size_t NextCandidate;
  };

  std::vector<Frame> Stack;
  Stack.push_back(Frame{0, Initial, 0});

  const std::uint64_t FullMask =
      N == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << N) - 1);

  auto IsCandidate = [&](std::uint64_t Taken, std::size_t I) {
    if (Taken & (std::uint64_t{1} << I))
      return false;
    // Real-time order: some untaken J responded before I was invoked?
    for (std::size_t J = 0; J < N; ++J) {
      if (J == I || (Taken & (std::uint64_t{1} << J)))
        continue;
      if (H.Ops[J].ResponseNs < H.Ops[I].InvokeNs)
        return false;
    }
    return true;
  };

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.TakenMask == FullMask) {
      Result.Linearizable = true;
      return Result;
    }
    if (++Result.StatesExplored > SearchCap) {
      Result.HitSearchCap = true;
      Result.FailureNote = "search cap exceeded";
      return Result;
    }

    bool Descended = false;
    for (std::size_t I = Top.NextCandidate; I < N; ++I) {
      if (!IsCandidate(Top.TakenMask, I))
        continue;
      Spec Next = Top.State;
      if (!Next.apply(H.Ops[I]))
        continue;
      const std::uint64_t NextMask = Top.TakenMask | (std::uint64_t{1} << I);
      std::string Key = std::to_string(NextMask) + '/' + Next.key();
      if (!Visited.insert(std::move(Key)).second)
        continue; // Configuration already explored fruitlessly.
      Top.NextCandidate = I + 1;
      Stack.push_back(Frame{NextMask, std::move(Next), 0});
      Descended = true;
      break;
    }
    if (!Descended)
      Stack.pop_back();
  }

  Result.Linearizable = false;
  Result.FailureNote = "no linearization order exists:\n" + H.describe();
  return Result;
}

} // namespace csobj

#endif // CSOBJ_LINCHECK_CHECKER_H
