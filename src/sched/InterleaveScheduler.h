//===- sched/InterleaveScheduler.h - Step-controlled execution --*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The controller half of the interleaving explorer. Worker threads run
/// the real algorithm code, but every AtomicRegister access first parks
/// at the scheduler (via the memory/SchedHook.h channel). The controller
/// waits until every live thread is parked or finished, then grants
/// exactly one thread its next shared-memory access. An execution is thus
/// fully determined by the sequence of grants — a *schedule* — which the
/// Explorer (sched/Explorer.h) enumerates exhaustively or samples
/// randomly.
///
/// This turns the paper's informal "processes are asynchronous, any
/// interleaving of shared accesses may happen" model into a mechanically
/// checkable one: for bounded scenarios we can visit every interleaving
/// and assert linearizability, abort semantics and doorway fairness on
/// each.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SCHED_INTERLEAVESCHEDULER_H
#define CSOBJ_SCHED_INTERLEAVESCHEDULER_H

#include "memory/SchedHook.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace csobj {

/// One controlled execution. Construct, then call run() with the thread
/// bodies and a policy that picks the next thread at each step.
class InterleaveScheduler {
public:
  /// Picks the next thread to grant from \p Parked (non-empty, sorted
  /// ascending); returns the chosen tid, optionally OR-ed with KillFlag
  /// to *crash* that thread instead: the thread is unwound at its parked
  /// access point, modelling the paper's Section 5 process-crash fault
  /// (the access never executes; whatever prefix ran stays in shared
  /// memory). \p Step is the 0-based decision index.
  using PickFn =
      std::function<std::uint32_t(std::size_t Step,
                                  const std::vector<std::uint32_t> &Parked)>;

  /// OR into a PickFn result to crash the chosen thread at its parked
  /// access point instead of granting the access.
  static constexpr std::uint32_t KillFlag = 0x80000000u;

  /// Record of one decision point: which threads were available and which
  /// was granted.
  struct Decision {
    std::vector<std::uint32_t> Available;
    std::uint32_t Chosen = 0;
  };

  /// Outcome of one controlled run.
  struct RunTrace {
    std::vector<Decision> Decisions;
    bool HitStepCap = false;
  };

  explicit InterleaveScheduler(std::uint32_t NumThreads,
                               std::uint64_t StepCap = 100000);

  /// Executes \p Bodies (one per thread) under control of \p Pick.
  /// Returns the decision trace. Blocks until all threads finish (or the
  /// step cap fires, in which case remaining threads are released to run
  /// freely so they can terminate).
  RunTrace run(const std::vector<std::function<void()>> &Bodies, PickFn Pick);

private:
  friend class SchedulerThreadHook;

  /// Called by worker threads before each shared access.
  void park(std::uint32_t Tid);
  void markFinished(std::uint32_t Tid);

  enum class ThreadState : std::uint8_t {
    NotStarted,
    Running,
    Parked,
    Finished
  };

  const std::uint32_t N;
  const std::uint64_t StepCap;

  std::mutex Mutex;
  std::condition_variable ControllerCv;
  std::condition_variable WorkerCv;
  std::vector<ThreadState> States;
  std::vector<bool> Granted;
  std::vector<bool> KillRequested;
  bool FreeRun = false; ///< Step cap hit: stop gating accesses.
};

/// Thrown inside a controlled thread to unwind it at a crash point.
/// Caught by the scheduler's worker wrapper; never escapes run().
struct SimulatedCrash {};

/// Per-thread hook connecting AtomicRegister accesses to the scheduler.
class SchedulerThreadHook final : public SchedHook {
public:
  SchedulerThreadHook(InterleaveScheduler &Scheduler, std::uint32_t Tid)
      : Scheduler(Scheduler), Tid(Tid) {}

  void beforeSharedAccess(AccessKind Kind) override {
    (void)Kind;
    Scheduler.park(Tid);
  }

private:
  InterleaveScheduler &Scheduler;
  std::uint32_t Tid;
};

} // namespace csobj

#endif // CSOBJ_SCHED_INTERLEAVESCHEDULER_H
