//===- sched/Explorer.cpp -------------------------------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "sched/Explorer.h"

#include "support/SplitMix64.h"

#include <algorithm>
#include <cassert>

namespace csobj {

ExploreResult ScheduleExplorer::exploreAll(const ScenarioFactory &Factory) {
  ExploreResult Result;

  // DFS over schedule prefixes. The empty prefix is the first run; each
  // run's trace spawns sibling prefixes for every unchosen alternative at
  // or beyond the forced region.
  std::vector<std::vector<std::uint32_t>> Pending;
  Pending.push_back({});

  while (!Pending.empty()) {
    if (Result.Runs >= Options.MaxRuns) {
      Result.Complete = false;
      return Result;
    }
    const std::vector<std::uint32_t> Prefix = std::move(Pending.back());
    Pending.pop_back();

    ScenarioRun Scenario = Factory();
    InterleaveScheduler Scheduler(
        static_cast<std::uint32_t>(Scenario.Bodies.size()), Options.StepCap);
    const InterleaveScheduler::RunTrace Trace = Scheduler.run(
        Scenario.Bodies,
        [&Prefix](std::size_t Step,
                  const std::vector<std::uint32_t> &Parked) -> std::uint32_t {
          if (Step < Prefix.size()) {
            assert(std::find(Parked.begin(), Parked.end(), Prefix[Step]) !=
                       Parked.end() &&
                   "replay diverged: forced thread is not parked");
            return Prefix[Step];
          }
          return Parked.front(); // Deterministic default: lowest id.
        });

    ++Result.Runs;
    Result.MaxDepth = std::max<std::uint64_t>(Result.MaxDepth,
                                              Trace.Decisions.size());
    if (Trace.HitStepCap)
      ++Result.CappedRuns;
    if (Scenario.PostCheck)
      Scenario.PostCheck();

    // Spawn unexplored siblings, deepest first so the stack behaves as a
    // proper DFS and the pending set stays small.
    for (std::size_t Step = Trace.Decisions.size(); Step-- > Prefix.size();) {
      const InterleaveScheduler::Decision &D = Trace.Decisions[Step];
      for (std::uint32_t Alt : D.Available) {
        if (Alt == D.Chosen)
          continue;
        std::vector<std::uint32_t> Sibling;
        Sibling.reserve(Step + 1);
        for (std::size_t S = 0; S < Step; ++S)
          Sibling.push_back(Trace.Decisions[S].Chosen);
        Sibling.push_back(Alt);
        Pending.push_back(std::move(Sibling));
      }
    }
  }
  return Result;
}

ExploreResult ScheduleExplorer::randomWalks(const ScenarioFactory &Factory,
                                            std::uint64_t NumRuns,
                                            std::uint64_t Seed) {
  ExploreResult Result;
  for (std::uint64_t Run = 0; Run < NumRuns; ++Run) {
    ScenarioRun Scenario = Factory();
    SplitMix64 Rng = SplitMix64(Seed).split(Run);
    InterleaveScheduler Scheduler(
        static_cast<std::uint32_t>(Scenario.Bodies.size()), Options.StepCap);
    const InterleaveScheduler::RunTrace Trace = Scheduler.run(
        Scenario.Bodies,
        [&Rng](std::size_t, const std::vector<std::uint32_t> &Parked) {
          return Parked[Rng.below(Parked.size())];
        });
    ++Result.Runs;
    Result.MaxDepth = std::max<std::uint64_t>(Result.MaxDepth,
                                              Trace.Decisions.size());
    if (Trace.HitStepCap)
      ++Result.CappedRuns;
    if (Scenario.PostCheck)
      Scenario.PostCheck();
  }
  return Result;
}

} // namespace csobj
