//===- sched/InterleaveScheduler.cpp --------------------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "sched/InterleaveScheduler.h"

#include <algorithm>
#include <cassert>
#include <thread>

namespace csobj {

InterleaveScheduler::InterleaveScheduler(std::uint32_t NumThreads,
                                         std::uint64_t StepCap)
    : N(NumThreads), StepCap(StepCap), States(NumThreads,
                                              ThreadState::NotStarted),
      Granted(NumThreads, false), KillRequested(NumThreads, false) {}

void InterleaveScheduler::park(std::uint32_t Tid) {
  std::unique_lock<std::mutex> Lock(Mutex);
  if (FreeRun)
    return;
  States[Tid] = ThreadState::Parked;
  ControllerCv.notify_all();
  WorkerCv.wait(Lock, [&] { return Granted[Tid] || FreeRun; });
  Granted[Tid] = false;
  if (KillRequested[Tid]) {
    // Crash at this access point: unwind without performing the access.
    States[Tid] = ThreadState::Running;
    Lock.unlock();
    throw SimulatedCrash{};
  }
  States[Tid] = ThreadState::Running;
}

void InterleaveScheduler::markFinished(std::uint32_t Tid) {
  std::unique_lock<std::mutex> Lock(Mutex);
  States[Tid] = ThreadState::Finished;
  ControllerCv.notify_all();
}

InterleaveScheduler::RunTrace
InterleaveScheduler::run(const std::vector<std::function<void()>> &Bodies,
                         PickFn Pick) {
  assert(Bodies.size() == N && "one body per controlled thread");
  RunTrace Trace;

  std::vector<std::thread> Workers;
  Workers.reserve(N);
  for (std::uint32_t Tid = 0; Tid < N; ++Tid) {
    Workers.emplace_back([this, Tid, &Bodies] {
      SchedulerThreadHook Hook(*this, Tid);
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        States[Tid] = ThreadState::Running;
      }
      try {
        SchedHookScope Scope(Hook);
        Bodies[Tid]();
      } catch (const SimulatedCrash &) {
        // The crashed thread simply stops; shared memory keeps whatever
        // prefix of its accesses already executed.
      }
      markFinished(Tid);
    });
  }

  // Controller loop: each iteration grants one shared-memory access.
  std::uint64_t Steps = 0;
  while (true) {
    std::unique_lock<std::mutex> Lock(Mutex);
    ControllerCv.wait(Lock, [&] {
      return std::none_of(States.begin(), States.end(), [](ThreadState S) {
        return S == ThreadState::NotStarted || S == ThreadState::Running;
      });
    });

    std::vector<std::uint32_t> Parked;
    for (std::uint32_t Tid = 0; Tid < N; ++Tid)
      if (States[Tid] == ThreadState::Parked)
        Parked.push_back(Tid);

    if (Parked.empty())
      break; // Everyone finished.

    if (++Steps > StepCap) {
      // Divergent schedule (e.g. an unfair loop): stop gating and let the
      // remaining threads run to completion on the OS scheduler.
      Trace.HitStepCap = true;
      FreeRun = true;
      WorkerCv.notify_all();
      break;
    }

    const std::uint32_t Picked = Pick(Trace.Decisions.size(), Parked);
    const bool Kill = (Picked & KillFlag) != 0;
    const std::uint32_t Chosen = Picked & ~KillFlag;
    assert(std::find(Parked.begin(), Parked.end(), Chosen) != Parked.end() &&
           "policy must pick a parked thread");
    Trace.Decisions.push_back(Decision{Parked, Picked});
    KillRequested[Chosen] = Kill;
    Granted[Chosen] = true;
    States[Chosen] = ThreadState::Running;
    WorkerCv.notify_all();
  }

  for (std::thread &Worker : Workers)
    Worker.join();
  return Trace;
}

} // namespace csobj
