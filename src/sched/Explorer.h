//===- sched/Explorer.h - Exhaustive & random schedule search ---*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumerates thread interleavings of small scenarios executed under the
/// InterleaveScheduler:
///
///  * exploreAll — depth-first enumeration of *every* schedule. A run is
///    replayed from a prefix of forced decisions and continued with the
///    deterministic default policy (lowest parked id); the recorded
///    decision trace then yields the unexplored sibling prefixes. Because
///    the objects under test are deterministic functions of their shared
///    access order, replay is exact.
///  * randomWalks — uniform random scheduling, for scenarios whose
///    schedule space is unbounded (anything containing a wait loop, e.g.
///    Figure 3's doorway); combined with a step cap this gives a strong
///    randomized fairness/liveness test.
///
/// Scenario factories build a fresh object per run; a post-check runs on
/// the controller thread after each run, where test assertions are safe.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_SCHED_EXPLORER_H
#define CSOBJ_SCHED_EXPLORER_H

#include "sched/InterleaveScheduler.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace csobj {

/// One run of a scenario: thread bodies plus a post-run check.
struct ScenarioRun {
  std::vector<std::function<void()>> Bodies;
  std::function<void()> PostCheck; ///< May be empty.
};

/// Limits for a schedule search.
struct ExploreOptions {
  std::uint64_t MaxRuns = 200000; ///< Stop enumerating after this many runs.
  std::uint64_t StepCap = 100000; ///< Per-run decision cap (divergence guard).
};

/// Search outcome summary.
struct ExploreResult {
  std::uint64_t Runs = 0;        ///< Schedules executed.
  std::uint64_t MaxDepth = 0;    ///< Longest schedule seen (decisions).
  std::uint64_t CappedRuns = 0;  ///< Runs that hit the per-run step cap.
  bool Complete = true;          ///< False if MaxRuns stopped enumeration.
};

/// Schedule-space search driver.
class ScheduleExplorer {
public:
  using ScenarioFactory = std::function<ScenarioRun()>;

  explicit ScheduleExplorer(ExploreOptions Options = ExploreOptions{})
      : Options(Options) {}

  /// Exhaustive DFS over all schedules of the scenario.
  ExploreResult exploreAll(const ScenarioFactory &Factory);

  /// \p NumRuns runs under uniformly random scheduling.
  ExploreResult randomWalks(const ScenarioFactory &Factory,
                            std::uint64_t NumRuns, std::uint64_t Seed);

private:
  ExploreOptions Options;
};

} // namespace csobj

#endif // CSOBJ_SCHED_EXPLORER_H
