//===- obs/PathCounters.h - Path-attributed operation metrics ---*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-object, per-thread path attribution for the contention-sensitive
/// constructions. The paper's quantitative claim is *path-conditional* —
/// six shared accesses when CONTENTION is down, lock-path cost only under
/// contention — so aggregate throughput alone cannot validate it. Every
/// strong-operation skeleton owns a MetricSink and, per completed
/// operation, increments exactly ONE terminal path counter:
///
///   Shortcut    lines 01-03 succeeded (the six-access fast path)
///   Eliminated  the rescue window paired with an inverse operation
///   Combined    a flat-combining batch executed the published request
///   Lock        the doorway + lock protected retry (Fig. 3 lines 04-13)
///   Degraded    the crash-tolerant Fig. 2 fallback loop
///   Batched     a group API (push_all/pop_all/drain) applied the op as
///               part of one k-op seam acquisition
///
/// plus event tallies (shortcut aborts, retries, combiner batches,
/// elimination pairings, patience timeouts) that attribute *why* an
/// operation left its path. Ops is counted once at strongApply entry
/// (once per element of a batch), so `Ops == Σ path counters` is a
/// mechanically checkable conservation law, not trusted telemetry — the
/// conformance battery asserts it after every stress round. Batched ops
/// additionally feed a group-size histogram (onBatch), whose element sum
/// must equal the Batched path counter at quiesce.
///
/// Counter placement vs. the six-access proof: the blocks are plain
/// `std::atomic` relaxed counters in per-thread cache-line-padded slots —
/// the same convention as DegradationCounters (core/CrashTolerant.h):
/// harness accounting, not algorithm state. They never pass through
/// AtomicRegister, so they are invisible to the access counter and the
/// schedule explorer, and the solo fast path still *measures* exactly six
/// shared accesses with metrics enabled (bench_access_counts, battery
/// access bounds). Building with -DCSOBJ_NO_METRICS=ON removes even the
/// relaxed increments: MetricSink becomes an empty type (static_assert
/// below) held through [[no_unique_address]], so the skeletons carry zero
/// metric bytes and zero metric instructions.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_OBS_PATHCOUNTERS_H
#define CSOBJ_OBS_PATHCOUNTERS_H

#include "support/CacheLine.h"

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

namespace csobj {
namespace obs {

/// Terminal paths: every completed strong operation took exactly one.
enum class Path : std::uint8_t {
  Shortcut = 0,
  Eliminated,
  Combined,
  Lock,
  Degraded,
  Batched, ///< Applied inside a k-op group's single seam acquisition.
  None,    ///< Sentinel: no operation recorded yet / metrics compiled out.
};

inline constexpr unsigned NumPaths = 6;

/// Short lower-case label for tables and JSON field suffixes.
inline const char *pathName(Path P) {
  switch (P) {
  case Path::Shortcut:
    return "shortcut";
  case Path::Eliminated:
    return "eliminated";
  case Path::Combined:
    return "combined";
  case Path::Lock:
    return "lock";
  case Path::Degraded:
    return "degraded";
  case Path::Batched:
    return "batched";
  case Path::None:
    break;
  }
  return "none";
}

/// Why an operation left its path / what the slow paths did on the way.
/// Tallies, not terminal paths: one operation may add several.
enum class Event : std::uint8_t {
  ShortcutAbort = 0, ///< Line-02 weak attempt drew bottom.
  ProtectedRetry,    ///< Line-08 retry inside the lock.
  DegradedRetry,     ///< Fig-2 fallback retry.
  EliminatedPush,    ///< Rescue handed a value to a pop.
  EliminatedPop,     ///< Rescue received a value from a push.
  CombinerBatch,     ///< One combiner tenure completed.
  CombinedOp,        ///< One request served by a combiner (self included).
  DoorwayTimeout,    ///< enterBounded exhausted its patience.
  LeaseTimeout,      ///< lockBounded exhausted its patience.
  ShardGrow,         ///< Adaptive facade activated one more shard.
  ShardShrink,       ///< Adaptive facade retired its top active shard.
  GateWiden,         ///< Controller doubled the elimination spin budget.
  GateNarrow,        ///< Controller halved the elimination spin budget.
};

inline constexpr unsigned NumEvents = 13;

/// Log2 size classes of the batch-group histogram: bucket I counts
/// groups of k in [2^I, 2^(I+1)); the last bucket absorbs everything
/// larger.
inline constexpr unsigned NumBatchBuckets = 8;

/// Bucket index of a group of \p K ops (K >= 1).
inline constexpr unsigned batchBucket(std::uint64_t K) {
  const unsigned B = K ? static_cast<unsigned>(std::bit_width(K)) - 1 : 0;
  return B < NumBatchBuckets ? B : NumBatchBuckets - 1;
}

/// Aggregated value snapshot of one sink (or a sum of sinks). Exact once
/// the object is quiescent; approximate mid-run.
struct PathSnapshot {
  std::uint64_t Ops = 0; ///< strongApply entries.
  std::uint64_t Paths[NumPaths] = {};
  std::uint64_t Events[NumEvents] = {};
  /// Batch-group size histogram (onBatch calls, log2 buckets), the sum
  /// of all group sizes and the largest group seen.
  std::uint64_t BatchBuckets[NumBatchBuckets] = {};
  std::uint64_t BatchOps = 0;
  std::uint64_t BatchMax = 0;

  std::uint64_t path(Path P) const {
    return Paths[static_cast<unsigned>(P)];
  }
  std::uint64_t event(Event E) const {
    return Events[static_cast<unsigned>(E)];
  }

  /// Sum of the terminal path counters.
  std::uint64_t pathTotal() const {
    std::uint64_t Total = 0;
    for (unsigned I = 0; I < NumPaths; ++I)
      Total += Paths[I];
    return Total;
  }

  /// Number of batch groups recorded (sum of the histogram buckets).
  std::uint64_t batchCount() const {
    std::uint64_t Total = 0;
    for (unsigned I = 0; I < NumBatchBuckets; ++I)
      Total += BatchBuckets[I];
    return Total;
  }

  /// Mean group size over all recorded batches (0 when none).
  double batchMean() const {
    const std::uint64_t Count = batchCount();
    return Count ? static_cast<double>(BatchOps) / static_cast<double>(Count)
                 : 0.0;
  }

  /// The conservation laws the battery asserts at quiesce:
  ///  * every entered operation retired through exactly one path,
  ///  * elimination pairings balance (each give met exactly one take),
  ///  * every degradation has exactly one patience-timeout cause,
  ///  * every batched op belongs to exactly one recorded group.
  /// Holds for any crash-free execution; a crash-stopped thread may
  /// leave one entered-but-unretired operation per crash.
  bool conserves() const {
    return Ops == pathTotal() &&
           event(Event::EliminatedPush) == event(Event::EliminatedPop) &&
           path(Path::Eliminated) ==
               event(Event::EliminatedPush) + event(Event::EliminatedPop) &&
           path(Path::Degraded) ==
               event(Event::DoorwayTimeout) + event(Event::LeaseTimeout) &&
           path(Path::Batched) == BatchOps;
  }

  PathSnapshot &operator+=(const PathSnapshot &Other) {
    Ops += Other.Ops;
    for (unsigned I = 0; I < NumPaths; ++I)
      Paths[I] += Other.Paths[I];
    for (unsigned I = 0; I < NumEvents; ++I)
      Events[I] += Other.Events[I];
    for (unsigned I = 0; I < NumBatchBuckets; ++I)
      BatchBuckets[I] += Other.BatchBuckets[I];
    BatchOps += Other.BatchOps;
    if (Other.BatchMax > BatchMax)
      BatchMax = Other.BatchMax;
    return *this;
  }
};

#ifdef CSOBJ_NO_METRICS

/// Metrics compiled out: every member is a no-op and the type is empty,
/// so a [[no_unique_address]] sink member occupies zero bytes. The
/// static_assert below is the compile-time half of the "metrics cannot
/// perturb the six-access bound" proof; the runtime half is the battery's
/// access-bound cell, which holds in both build modes.
class MetricSink {
public:
  explicit MetricSink(std::uint32_t /*NumThreads*/) {}

  void onOp(std::uint32_t /*Tid*/, std::uint64_t /*N*/ = 1) {}
  void onPath(std::uint32_t /*Tid*/, Path /*P*/, std::uint64_t /*N*/ = 1) {}
  void onEvent(std::uint32_t /*Tid*/, Event /*E*/, std::uint64_t /*N*/ = 1) {}
  void onBatch(std::uint32_t /*Tid*/, std::uint64_t /*K*/) {}
  Path lastPath(std::uint32_t /*Tid*/) const { return Path::None; }
  PathSnapshot snapshot() const { return {}; }
  void reset() {}
  std::size_t heapBytes() const { return 0; }
};

static_assert(std::is_empty_v<MetricSink>,
              "CSOBJ_NO_METRICS must compile the sink down to nothing");

inline constexpr bool MetricsEnabled = false;

#else // !CSOBJ_NO_METRICS

/// Lock-free per-thread counter blocks, aggregated at quiesce. One block
/// per thread id, padded to whole cache lines so two threads' increments
/// never contend for a line; increments are single relaxed fetch_adds on
/// the caller's own block.
class MetricSink {
public:
  explicit MetricSink(std::uint32_t NumThreads)
      : N(NumThreads), Blocks(new Block[NumThreads]) {}

  /// One strongApply entry per op (counted before the path is known);
  /// a batch books one entry per element, so \p N lets group paths book
  /// their elements in one call.
  void onOp(std::uint32_t Tid, std::uint64_t N = 1) {
    Blocks[Tid].C[OpsSlot].fetch_add(N, std::memory_order_relaxed);
  }

  /// The operation's terminal path — exactly one booking per onOp entry
  /// (\p N ops at once for group paths).
  void onPath(std::uint32_t Tid, Path P, std::uint64_t N = 1) {
    Block &B = Blocks[Tid];
    B.C[PathBase + static_cast<unsigned>(P)].fetch_add(
        N, std::memory_order_relaxed);
    B.Last.store(static_cast<std::uint8_t>(P), std::memory_order_relaxed);
  }

  void onEvent(std::uint32_t Tid, Event E, std::uint64_t Count = 1) {
    Blocks[Tid].C[EventBase + static_cast<unsigned>(E)].fetch_add(
        Count, std::memory_order_relaxed);
  }

  /// One group of \p K ops applied under a single seam acquisition (one
  /// lock tenure or one combiner record). Feeds the combiner_batch_size
  /// histogram; at quiesce the recorded sizes sum to the Batched path
  /// counter.
  void onBatch(std::uint32_t Tid, std::uint64_t K) {
    Block &B = Blocks[Tid];
    B.C[BatchBucketBase + batchBucket(K)].fetch_add(
        1, std::memory_order_relaxed);
    B.C[BatchOpsSlot].fetch_add(K, std::memory_order_relaxed);
    // Max is owner-written like every other slot in the block; a plain
    // read-check-store keeps it a relaxed counter, not a CAS loop.
    if (K > B.C[BatchMaxSlot].load(std::memory_order_relaxed))
      B.C[BatchMaxSlot].store(K, std::memory_order_relaxed);
  }

  /// Terminal path of \p Tid's most recent completed operation (None
  /// before the first). Drivers use this to route the operation's
  /// latency into per-path histograms.
  Path lastPath(std::uint32_t Tid) const {
    return static_cast<Path>(
        Blocks[Tid].Last.load(std::memory_order_relaxed));
  }

  /// Sums all thread blocks. Exact at quiesce.
  PathSnapshot snapshot() const {
    PathSnapshot S;
    for (std::uint32_t T = 0; T < N; ++T) {
      const Block &B = Blocks[T];
      S.Ops += B.C[OpsSlot].load(std::memory_order_relaxed);
      for (unsigned I = 0; I < NumPaths; ++I)
        S.Paths[I] += B.C[PathBase + I].load(std::memory_order_relaxed);
      for (unsigned I = 0; I < NumEvents; ++I)
        S.Events[I] += B.C[EventBase + I].load(std::memory_order_relaxed);
      for (unsigned I = 0; I < NumBatchBuckets; ++I)
        S.BatchBuckets[I] +=
            B.C[BatchBucketBase + I].load(std::memory_order_relaxed);
      S.BatchOps += B.C[BatchOpsSlot].load(std::memory_order_relaxed);
      const std::uint64_t Max =
          B.C[BatchMaxSlot].load(std::memory_order_relaxed);
      if (Max > S.BatchMax)
        S.BatchMax = Max;
    }
    return S;
  }

  /// Zeroes every counter (single-threaded use only).
  void reset() {
    for (std::uint32_t T = 0; T < N; ++T) {
      Block &B = Blocks[T];
      for (unsigned I = 0; I < NumSlots; ++I)
        B.C[I].store(0, std::memory_order_relaxed);
      B.Last.store(static_cast<std::uint8_t>(Path::None),
                   std::memory_order_relaxed);
    }
  }

  /// Heap owned by the sink: one padded counter block per thread. Feeds
  /// the bytes_per_element bench column (obs/MetricsJson.h); zero under
  /// CSOBJ_NO_METRICS, so the column isolates the algorithm's footprint.
  std::size_t heapBytes() const { return std::size_t{N} * sizeof(Block); }

private:
  static constexpr unsigned OpsSlot = 0;
  static constexpr unsigned PathBase = 1;
  static constexpr unsigned EventBase = PathBase + NumPaths;
  static constexpr unsigned BatchBucketBase = EventBase + NumEvents;
  static constexpr unsigned BatchOpsSlot = BatchBucketBase + NumBatchBuckets;
  static constexpr unsigned BatchMaxSlot = BatchOpsSlot + 1;
  static constexpr unsigned NumSlots = BatchMaxSlot + 1;

  struct alignas(CacheLineSize) Block {
    std::atomic<std::uint64_t> C[NumSlots] = {};
    std::atomic<std::uint8_t> Last{static_cast<std::uint8_t>(Path::None)};
  };
  static_assert(occupiesWholeCacheLines<Block>,
                "adjacent thread blocks must never share a line");

  std::uint32_t N;
  std::unique_ptr<Block[]> Blocks;
};

inline constexpr bool MetricsEnabled = true;

#endif // CSOBJ_NO_METRICS

} // namespace obs
} // namespace csobj

#endif // CSOBJ_OBS_PATHCOUNTERS_H
