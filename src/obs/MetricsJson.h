//===- obs/MetricsJson.h - Path-breakdown JSON fields -----------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place that names the path-breakdown JSON schema. Every bench
/// binary that sweeps a contention-sensitive object appends these fields
/// to its per-cell record via emitPathBreakdown(), so BENCH_*.json files
/// agree field-for-field and the CI bench-smoke validator can assert the
/// conservation law (metric_ops == Σ path_*) on any of them:
///
///   metric_ops        strongApply entries seen by the object's sink(s)
///   path_shortcut     ops retired on the six-access fast path
///   path_eliminated   ops retired by rescue-window pairing
///   path_combined     ops retired by a flat-combining batch
///   path_lock         ops retired by the doorway+lock protected retry
///   path_degraded     ops retired by the crash-tolerant Fig-2 fallback
///   path_batched      ops retired inside a group API's single seam entry
///   shortcut_aborts, protected_retries, degraded_retries,
///   eliminated_pushes, eliminated_pops, combiner_batches, combined_ops,
///   doorway_timeouts, lease_timeouts, shard_grows, shard_shrinks,
///   gate_widens, gate_narrows   — event tallies
///   combiner_batch_size_count/_mean/_max — the group-size histogram fed
///   by onBatch(); at quiesce size sums equal path_batched
///
/// emitMemoryFootprint() names the memory-overhead columns
/// (object_bytes, bytes_per_element) so E12/E14 report space alongside
/// throughput.
///
/// Note metric_ops counts skeleton entries, not harness operations: a
/// sharded facade op may probe several shards (several skeleton entries),
/// so metric_ops >= the driver's op count there. The conservation law is
/// per-sink and survives that fan-out.
///
/// With CSOBJ_NO_METRICS the snapshot is all zeros and the fields are
/// still emitted, so downstream schemas never lose columns.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_OBS_METRICSJSON_H
#define CSOBJ_OBS_METRICSJSON_H

#include "obs/PathCounters.h"

#include <string>

namespace csobj {
namespace obs {

/// Appends the path-breakdown fields to the reporter's current record.
/// \p Reporter needs only field(name, uint64) — obs::JsonReporter or any
/// compatible emitter.
template <typename Reporter>
void emitPathBreakdown(Reporter &Json, const PathSnapshot &S) {
  Json.field("metric_ops", S.Ops);
  for (unsigned I = 0; I < NumPaths; ++I)
    Json.field(std::string("path_") + pathName(static_cast<Path>(I)),
               S.Paths[I]);
  Json.field("shortcut_aborts", S.event(Event::ShortcutAbort));
  Json.field("protected_retries", S.event(Event::ProtectedRetry));
  Json.field("degraded_retries", S.event(Event::DegradedRetry));
  Json.field("eliminated_pushes", S.event(Event::EliminatedPush));
  Json.field("eliminated_pops", S.event(Event::EliminatedPop));
  Json.field("combiner_batches", S.event(Event::CombinerBatch));
  Json.field("combined_ops", S.event(Event::CombinedOp));
  Json.field("doorway_timeouts", S.event(Event::DoorwayTimeout));
  Json.field("lease_timeouts", S.event(Event::LeaseTimeout));
  Json.field("shard_grows", S.event(Event::ShardGrow));
  Json.field("shard_shrinks", S.event(Event::ShardShrink));
  Json.field("gate_widens", S.event(Event::GateWiden));
  Json.field("gate_narrows", S.event(Event::GateNarrow));
  Json.field("combiner_batch_size_count", S.batchCount());
  Json.field("combiner_batch_size_mean", S.batchMean());
  Json.field("combiner_batch_size_max", S.BatchMax);
}

/// Appends the memory-overhead fields: the object's resident footprint
/// and its per-slot amortization. \p Bytes is the adapter's estimate of
/// the full allocation (object + dynamic arrays); \p Capacity the number
/// of element slots it buys.
template <typename Reporter>
void emitMemoryFootprint(Reporter &Json, std::uint64_t Bytes,
                         std::uint64_t Capacity) {
  Json.field("object_bytes", Bytes);
  Json.field("bytes_per_element",
             Capacity ? static_cast<double>(Bytes) /
                            static_cast<double>(Capacity)
                      : 0.0);
}

} // namespace obs
} // namespace csobj

#endif // CSOBJ_OBS_METRICSJSON_H
