//===- obs/JsonReporter.h - Dependency-free JSON emitter --------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal JSON writer shared by the observability layer and every
/// benchmark binary: an array of objects, one per sweep cell, written to
/// a BENCH_*.json file next to the binary's table output so plots and
/// regression tooling can consume the numbers without scraping stdout.
/// No external JSON dependency — the emitter handles exactly the subset
/// the callers need (string, integer, finite double, bool, and nested
/// arrays/objects) and escapes strings conservatively; NaN/Inf become
/// null so the file stays valid JSON. Round-trip coverage lives in
/// tests/json_reporter_test.cpp.
///
/// Usage (flat record):
///   JsonReporter Json;
///   Json.beginRecord();
///   Json.field("object", "nb-stack");
///   Json.field("threads", std::uint64_t{8});
///   Json.field("throughput_ops_per_sec", 1.25e7);
///   Json.endRecord();
///   Json.writeFile("BENCH_stack_throughput.json");
///
/// Nested values (the soak bench's per-window time-series):
///   Json.beginRecord();
///   Json.field("object", "crash-tolerant");
///   Json.beginArray("windows");
///     Json.beginObject();
///     Json.field("window", std::uint64_t{0});
///     Json.field("p99_ns", std::uint64_t{1200});
///     Json.endObject();
///   Json.endArray();
///   Json.endRecord();
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_OBS_JSONREPORTER_H
#define CSOBJ_OBS_JSONREPORTER_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace csobj {
namespace obs {

/// Accumulates an array of JSON objects (optionally carrying nested
/// arrays/objects) and writes it to disk.
class JsonReporter {
public:
  /// Opens a new top-level record ("{"). Top-level records may not nest
  /// inside one another; use beginObject()/beginArray() for nesting
  /// within a record.
  void beginRecord() {
    assert(Nesting.empty() && "close nested scopes before a new record");
    Body += Body.empty() ? "\n  {" : ",\n  {";
    Nesting.push_back(Scope{/*IsArray=*/false, /*First=*/true});
  }

  void field(const std::string &Key, const std::string &Value) {
    appendKey(Key);
    Body += '"';
    appendEscaped(Value);
    Body += '"';
  }

  void field(const std::string &Key, const char *Value) {
    field(Key, std::string(Value));
  }

  void field(const std::string &Key, std::uint64_t Value) {
    appendKey(Key);
    Body += std::to_string(Value);
  }

  void field(const std::string &Key, std::uint32_t Value) {
    field(Key, static_cast<std::uint64_t>(Value));
  }

  void field(const std::string &Key, bool Value) {
    appendKey(Key);
    Body += Value ? "true" : "false";
  }

  void field(const std::string &Key, double Value) {
    appendKey(Key);
    appendDouble(Value);
  }

  /// Opens a nested array field: `"key": [`. Elements are added with
  /// item() or beginObject(); close with endArray().
  void beginArray(const std::string &Key) {
    appendKey(Key);
    Body += '[';
    Nesting.push_back(Scope{/*IsArray=*/true, /*First=*/true});
  }

  /// Closes the innermost array.
  void endArray() {
    assert(!Nesting.empty() && Nesting.back().IsArray && "not in an array");
    Body += ']';
    Nesting.pop_back();
  }

  /// Opens a nested object field: `"key": {`. Close with endObject().
  void beginObject(const std::string &Key) {
    appendKey(Key);
    Body += '{';
    Nesting.push_back(Scope{/*IsArray=*/false, /*First=*/true});
  }

  /// Opens an anonymous object element inside the innermost array.
  void beginObject() {
    assert(!Nesting.empty() && Nesting.back().IsArray &&
           "anonymous objects only inside arrays");
    appendSeparator();
    Body += '{';
    Nesting.push_back(Scope{/*IsArray=*/false, /*First=*/true});
  }

  /// Closes the innermost nested object (not a top-level record).
  void endObject() {
    assert(Nesting.size() > 1 && !Nesting.back().IsArray &&
           "endObject closes nested objects; endRecord closes records");
    Body += '}';
    Nesting.pop_back();
  }

  /// Scalar elements of the innermost array.
  void item(const std::string &Value) {
    assert(!Nesting.empty() && Nesting.back().IsArray && "not in an array");
    appendSeparator();
    Body += '"';
    appendEscaped(Value);
    Body += '"';
  }

  void item(const char *Value) { item(std::string(Value)); }

  void item(std::uint64_t Value) {
    assert(!Nesting.empty() && Nesting.back().IsArray && "not in an array");
    appendSeparator();
    Body += std::to_string(Value);
  }

  void item(double Value) {
    assert(!Nesting.empty() && Nesting.back().IsArray && "not in an array");
    appendSeparator();
    appendDouble(Value);
  }

  /// Closes the current top-level record ("}").
  void endRecord() {
    assert(Nesting.size() == 1 && !Nesting.back().IsArray &&
           "close nested scopes before endRecord");
    Body += '}';
    Nesting.pop_back();
  }

  /// The complete document: a JSON array of the emitted records.
  std::string str() const {
    return "[" + Body + (Body.empty() ? "]" : "\n]") + "\n";
  }

  /// Writes the document to \p Path; returns false on I/O failure.
  bool writeFile(const std::string &Path) const {
    std::ofstream Out(Path);
    if (!Out)
      return false;
    Out << str();
    return static_cast<bool>(Out);
  }

private:
  /// One open scope ("{" or "["); First tracks whether the next element
  /// needs a ", " separator.
  struct Scope {
    bool IsArray;
    bool First;
  };

  /// Emits the element separator for the innermost scope. Flat records
  /// keep their exact historical byte layout (", " between fields).
  void appendSeparator() {
    assert(!Nesting.empty() && "no open scope");
    if (!Nesting.back().First)
      Body += ", ";
    Nesting.back().First = false;
  }

  void appendKey(const std::string &Key) {
    assert(!Nesting.empty() && !Nesting.back().IsArray &&
           "keyed values only inside objects");
    appendSeparator();
    Body += '"';
    appendEscaped(Key);
    Body += "\": ";
  }

  void appendDouble(double Value) {
    if (!std::isfinite(Value)) {
      Body += "null"; // NaN/Inf are not JSON; null keeps the file valid.
      return;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.10g", Value);
    Body += Buf;
  }

  void appendEscaped(const std::string &S) {
    for (const char C : S) {
      switch (C) {
      case '"':
        Body += "\\\"";
        break;
      case '\\':
        Body += "\\\\";
        break;
      case '\n':
        Body += "\\n";
        break;
      case '\t':
        Body += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Body += Buf;
        } else {
          Body += C;
        }
      }
    }
  }

  std::string Body;
  std::vector<Scope> Nesting;
};

} // namespace obs

// The benches predate the observability layer and spell the type
// csobj::bench::JsonReporter; keep that name as an alias.
namespace bench {
using obs::JsonReporter;
} // namespace bench

} // namespace csobj

#endif // CSOBJ_OBS_JSONREPORTER_H
