//===- obs/JsonReporter.h - Dependency-free JSON emitter --------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal JSON writer shared by the observability layer and every
/// benchmark binary: an array of flat objects, one per sweep cell,
/// written to a BENCH_*.json file next to the binary's table output so
/// plots and regression tooling can consume the numbers without scraping
/// stdout. No external JSON dependency — the emitter handles exactly the
/// subset the callers need (string, integer, finite double, bool) and
/// escapes strings conservatively; NaN/Inf become null so the file stays
/// valid JSON. Round-trip coverage lives in tests/json_reporter_test.cpp.
///
/// Usage:
///   JsonReporter Json;
///   Json.beginRecord();
///   Json.field("object", "nb-stack");
///   Json.field("threads", std::uint64_t{8});
///   Json.field("throughput_ops_per_sec", 1.25e7);
///   Json.endRecord();
///   Json.writeFile("BENCH_stack_throughput.json");
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_OBS_JSONREPORTER_H
#define CSOBJ_OBS_JSONREPORTER_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

namespace csobj {
namespace obs {

/// Accumulates an array of flat JSON objects and writes it to disk.
class JsonReporter {
public:
  /// Opens a new record ("{"). Records may not nest.
  void beginRecord() {
    Body += Body.empty() ? "\n  {" : ",\n  {";
    FirstField = true;
  }

  void field(const std::string &Key, const std::string &Value) {
    appendKey(Key);
    Body += '"';
    appendEscaped(Value);
    Body += '"';
  }

  void field(const std::string &Key, const char *Value) {
    field(Key, std::string(Value));
  }

  void field(const std::string &Key, std::uint64_t Value) {
    appendKey(Key);
    Body += std::to_string(Value);
  }

  void field(const std::string &Key, std::uint32_t Value) {
    field(Key, static_cast<std::uint64_t>(Value));
  }

  void field(const std::string &Key, bool Value) {
    appendKey(Key);
    Body += Value ? "true" : "false";
  }

  void field(const std::string &Key, double Value) {
    appendKey(Key);
    if (!std::isfinite(Value)) {
      Body += "null"; // NaN/Inf are not JSON; null keeps the file valid.
      return;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.10g", Value);
    Body += Buf;
  }

  /// Closes the current record ("}").
  void endRecord() { Body += '}'; }

  /// The complete document: a JSON array of the emitted records.
  std::string str() const {
    return "[" + Body + (Body.empty() ? "]" : "\n]") + "\n";
  }

  /// Writes the document to \p Path; returns false on I/O failure.
  bool writeFile(const std::string &Path) const {
    std::ofstream Out(Path);
    if (!Out)
      return false;
    Out << str();
    return static_cast<bool>(Out);
  }

private:
  void appendKey(const std::string &Key) {
    if (!FirstField)
      Body += ", ";
    FirstField = false;
    Body += '"';
    appendEscaped(Key);
    Body += "\": ";
  }

  void appendEscaped(const std::string &S) {
    for (const char C : S) {
      switch (C) {
      case '"':
        Body += "\\\"";
        break;
      case '\\':
        Body += "\\\\";
        break;
      case '\n':
        Body += "\\n";
        break;
      case '\t':
        Body += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Body += Buf;
        } else {
          Body += C;
        }
      }
    }
  }

  std::string Body;
  bool FirstField = true;
};

} // namespace obs

// The benches predate the observability layer and spell the type
// csobj::bench::JsonReporter; keep that name as an alias.
namespace bench {
using obs::JsonReporter;
} // namespace bench

} // namespace csobj

#endif // CSOBJ_OBS_JSONREPORTER_H
