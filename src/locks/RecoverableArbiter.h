//===- locks/RecoverableArbiter.h - Crash-tolerant doorway ------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FLAG/TURN doorway of Figure 3 (locks/RoundRobinArbiter.h) hardened
/// against process crashes. The paper's Lemma 3 liveness argument assumes
/// every flagged process eventually passes through; a process that
/// crashes with its flag raised while holding TURN breaks that — TURN
/// sticks on the corpse and every later entrant waits forever. This
/// variant restores liveness with two changes:
///
///  * Suspicion + skipping: a waiter that observes TURN parked on the
///    same flagged process for longer than its patience budget marks that
///    process suspect (in the shared SuspectSet, the same failure
///    detector the leased lock feeds) and C&S-advances TURN past it.
///    All TURN advances become C&S in this variant — concurrent
///    recoverers and the normal exit path may race on it, and a blind
///    write could resurrect a corpse's turn.
///  * Bounded entry: enterBounded() gives up after a second patience
///    round (live contention, not a corpse), withdraws its flag and
///    reports false so the caller can degrade to a lock-free fallback.
///    Entry is therefore always bounded — the progress downgrade happens
///    in the caller, never a hang here.
///
/// Resurrection: a live process that was falsely suspected clears its own
/// suspect bit at its next entry, regaining round-robin priority. The
/// fairness argument then holds again among unsuspected processes;
/// crashes of *waiting* processes (flag raised, lock never taken) cost
/// the survivors at most one patience round each before the corpse is
/// skipped.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_RECOVERABLEARBITER_H
#define CSOBJ_LOCKS_RECOVERABLEARBITER_H

#include "locks/LeasedLock.h"
#include "memory/AtomicRegister.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <cassert>
#include <cstdint>
#include <memory>

namespace csobj {

/// Crash-tolerant FLAG/TURN doorway. Shares a SuspectSet with the leased
/// lock so lease expiry and doorway recovery feed one failure detector.
template <typename Policy = DefaultRegisterPolicy>
class RecoverableArbiterT {
public:
  using RegisterPolicy = Policy;

  RecoverableArbiterT(std::uint32_t NumThreads, SuspectSetT<Policy> &Set)
      : N(NumThreads), Suspects(Set),
        Flag(new CacheLinePadded<
             AtomicRegister<std::uint8_t, Policy>>[NumThreads]) {
    assert(NumThreads >= 1 && "arbiter needs at least one process");
  }

  /// Bounded doorway entry (lines 04-05 with recovery). Returns true
  /// when the caller has priority and must later call exitAndAdvance();
  /// false when patience ran out — the flag has been withdrawn and the
  /// caller must not enter the critical path.
  bool enterBounded(std::uint32_t I, std::uint32_t Patience) {
    assert(I < N && "thread id out of range");
    if (Suspects.isSuspect(I))
      Suspects.clearSelf(I); // Resurrection: evidently alive.
    Flag[I].value().write(1);                        // line 04
    std::uint32_t LastTurn = ~std::uint32_t{0};
    std::uint64_t Stable = 0;
    std::uint32_t SuspicionsSpent = 0;
    SpinWait Waiter;
    while (true) {                                   // line 05
      const std::uint32_t T = Turn.value().read();
      if (T == I)
        return true;
      if (Flag[T].value().read() == 0)
        return true;
      if (Suspects.isSuspect(T)) {
        // TURN is parked on a suspect: skip it. C&S — a concurrent
        // recoverer or exiting holder may advance first, which is fine.
        Turn.value().compareAndSwap(T, (T + 1) % N);
        Stable = 0;
        continue;
      }
      if (T != LastTurn) {
        LastTurn = T;
        Stable = 0;
      }
      if (++Stable > Patience) {
        if (++SuspicionsSpent >= 2) {
          // Two suspicions deep and still no priority: treat as live
          // contention and let the caller degrade.
          Flag[I].value().write(0);
          return false;
        }
        Suspects.markSuspect(T);
        Stable = 0;
        continue;
      }
      Waiter.once();
    }
  }

  /// Lines 10-11 with C&S advance, skipping nothing here — skipping is
  /// the entry side's job; the exit side only passes priority onward
  /// when the prioritized process is not competing or is suspect.
  void exitAndAdvance(std::uint32_t I) {
    assert(I < N && "thread id out of range");
    Flag[I].value().write(0);                        // line 10
    const std::uint32_t T = Turn.value().read();     // line 11
    if (Flag[T].value().read() == 0 || Suspects.isSuspect(T))
      Turn.value().compareAndSwap(T, (T + 1) % N);
  }

  /// Withdraws a raised flag without advancing TURN — used when the
  /// caller entered the doorway but timed out on the lock behind it.
  void withdraw(std::uint32_t I) {
    assert(I < N && "thread id out of range");
    Flag[I].value().write(0);
  }

  std::uint32_t numThreads() const { return N; }

  std::uint32_t turnForTesting() const {
    return Turn.value().peekForTesting();
  }

  bool flagForTesting(std::uint32_t I) const {
    assert(I < N && "thread id out of range");
    return Flag[I].value().peekForTesting() != 0;
  }

private:
  const std::uint32_t N;
  SuspectSetT<Policy> &Suspects;
  CacheLinePadded<AtomicRegister<std::uint32_t, Policy>> Turn;
  std::unique_ptr<CacheLinePadded<AtomicRegister<std::uint8_t, Policy>>[]>
      Flag;
};

using RecoverableArbiter = RecoverableArbiterT<>;

} // namespace csobj

#endif // CSOBJ_LOCKS_RECOVERABLEARBITER_H
