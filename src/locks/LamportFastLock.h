//===- locks/LamportFastLock.h - Lamport's fast mutex -----------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lamport's fast mutual exclusion algorithm (ACM TOCS 1987), the paper's
/// reference [16] and, per its introduction, the first contention-
/// sensitive algorithm: in a contention-free execution a process enters
/// the critical section after only a constant number of shared accesses
/// (the paper counts seven), using reads and writes only. Under
/// contention the cost grows with n. Deadlock-free but *not*
/// starvation-free — the canonical input for the Section 4.4
/// transformation (see StarvationFreeLock.h and experiment E6).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_LAMPORTFASTLOCK_H
#define CSOBJ_LOCKS_LAMPORTFASTLOCK_H

#include "memory/AtomicRegister.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <cassert>
#include <cstdint>
#include <memory>

namespace csobj {

/// Lamport's fast mutex for n processes. Ids are stored internally as
/// Tid + 1 so that 0 can mean "nobody".
class LamportFastLock {
public:
  static constexpr const char *Name = "lamport-fast";

  explicit LamportFastLock(std::uint32_t NumThreads)
      : N(NumThreads),
        B(new CacheLinePadded<AtomicRegister<std::uint8_t>>[NumThreads]) {
    assert(NumThreads >= 1 && "lock needs at least one process");
  }

  void lock(std::uint32_t Tid) {
    assert(Tid < N && "thread id out of range");
    const std::uint32_t Me = Tid + 1;
    SpinWait Restart;
    while (true) {
      B[Tid].value().write(1);
      X.write(Me);
      if (Y.read() != 0) {
        // Doorway contended: back off and wait for the CS to empty.
        B[Tid].value().write(0);
        SpinWait Waiter;
        while (Y.read() != 0)
          Waiter.once();
        Restart.once();
        continue;
      }
      Y.write(Me);
      if (X.read() == Me)
        return; // Fast path: uncontended entry.
      // Slow path: someone raced through the doorway.
      B[Tid].value().write(0);
      for (std::uint32_t J = 0; J < N; ++J) {
        SpinWait Waiter;
        while (B[J].value().read() != 0)
          Waiter.once();
      }
      if (Y.read() == Me)
        return; // We won the race after all.
      SpinWait Waiter;
      while (Y.read() != 0)
        Waiter.once();
      Restart.once();
    }
  }

  void unlock(std::uint32_t Tid) {
    assert(Tid < N && "thread id out of range");
    Y.write(0);
    B[Tid].value().write(0);
  }

private:
  const std::uint32_t N;
  AtomicRegister<std::uint32_t> X{0};
  AtomicRegister<std::uint32_t> Y{0};
  std::unique_ptr<CacheLinePadded<AtomicRegister<std::uint8_t>>[]> B;
};

} // namespace csobj

#endif // CSOBJ_LOCKS_LAMPORTFASTLOCK_H
