//===- locks/AndersonLock.h - Anderson's array queue lock -------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Anderson's array-based queueing lock (IEEE TPDS 1990): a fetch-and-add
/// hands each arrival its own padded slot to spin on; release flips the
/// next slot. FIFO, hence starvation-free, with one remote write per
/// handoff — the array-based sibling of MCS/CLH in the lock substrate.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_ANDERSONLOCK_H
#define CSOBJ_LOCKS_ANDERSONLOCK_H

#include "memory/AtomicRegister.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <cassert>
#include <cstdint>
#include <memory>

namespace csobj {

/// Anderson's array lock over dense thread ids.
class AndersonLock {
public:
  static constexpr const char *Name = "anderson";

  explicit AndersonLock(std::uint32_t NumThreads)
      : N(NumThreads),
        Slots(new CacheLinePadded<AtomicRegister<std::uint8_t>>[NumThreads]),
        Holding(new std::uint32_t[NumThreads]) {
    assert(NumThreads >= 1 && "lock needs at least one process");
    Slots[0].value().write(1); // Slot 0 starts granted.
    for (std::uint32_t I = 1; I < NumThreads; ++I)
      Slots[I].value().write(0);
  }

  void lock(std::uint32_t Tid) {
    assert(Tid < N && "thread id out of range");
    const std::uint32_t MySlot = Ticket.fetchAdd(1) % N;
    Holding[Tid] = MySlot;
    SpinWait Waiter;
    while (Slots[MySlot].value().read() == 0)
      Waiter.once();
    // Consume the grant so the slot can be reused a lap later.
    Slots[MySlot].value().write(0);
  }

  void unlock(std::uint32_t Tid) {
    assert(Tid < N && "thread id out of range");
    Slots[(Holding[Tid] + 1) % N].value().write(1);
  }

private:
  const std::uint32_t N;
  AtomicRegister<std::uint32_t> Ticket{0};
  std::unique_ptr<CacheLinePadded<AtomicRegister<std::uint8_t>>[]> Slots;
  std::unique_ptr<std::uint32_t[]> Holding; ///< Slot taken, per thread.
};

} // namespace csobj

#endif // CSOBJ_LOCKS_ANDERSONLOCK_H
