//===- locks/PetersonLock.h - Peterson's 2-process lock ---------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Peterson's two-process mutual exclusion algorithm (the paper cites
/// Peterson's round-robin idea [17] as a source of the TURN mechanism).
/// Starvation-free for two processes; used standalone and as the node
/// game of the tournament lock.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_PETERSONLOCK_H
#define CSOBJ_LOCKS_PETERSONLOCK_H

#include "memory/AtomicRegister.h"
#include "support/SpinWait.h"

#include <cassert>
#include <cstdint>

namespace csobj {

/// Peterson's algorithm for exactly two processes (ids 0 and 1).
class PetersonLock {
public:
  static constexpr const char *Name = "peterson2";

  explicit PetersonLock(std::uint32_t NumThreads = 2) {
    assert(NumThreads <= 2 && "Peterson's lock supports two processes");
    (void)NumThreads;
  }

  void lock(std::uint32_t Tid) {
    assert(Tid < 2 && "Peterson's lock supports ids 0 and 1");
    const std::uint32_t Other = 1 - Tid;
    Flag[Tid].write(1);
    Victim.write(Tid);
    SpinWait Waiter;
    while (Flag[Other].read() != 0 && Victim.read() == Tid)
      Waiter.once();
  }

  void unlock(std::uint32_t Tid) {
    assert(Tid < 2 && "Peterson's lock supports ids 0 and 1");
    Flag[Tid].write(0);
  }

private:
  AtomicRegister<std::uint8_t> Flag[2]{};
  AtomicRegister<std::uint32_t> Victim{0};
};

} // namespace csobj

#endif // CSOBJ_LOCKS_PETERSONLOCK_H
