//===- locks/McsLock.h - MCS queue lock -------------------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mellor-Crummey & Scott queue lock. Each waiter spins on its own cache
/// line; handoff is FIFO, so the lock is starvation-free. Queue nodes are
/// preallocated per process id (the paper's p_1..p_n model makes this
/// natural), so the lock is allocation-free after construction. Node
/// links are stored as id+1 with 0 meaning "null" so they fit atomic
/// registers without pointer tagging.
///
/// Memory orderings (audited): the Tail exchange is acq_rel (it both
/// publishes our initialized node and orders us after the predecessor's
/// enqueue); the MustWait handoff is a release store observed by an
/// acquire spin read — the edge that carries the critical section from
/// holder to successor; the Tail C&S in unlock is release (publishes the
/// critical section when the queue closes) and the successor-link spin
/// reads are acquire (they must observe the successor's initialized
/// node).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_MCSLOCK_H
#define CSOBJ_LOCKS_MCSLOCK_H

#include "memory/AtomicRegister.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <cassert>
#include <cstdint>
#include <memory>

namespace csobj {

/// MCS list-based queue lock over dense thread ids.
///
/// \tparam Policy register policy (Instrumented / Fast).
template <typename Policy = DefaultRegisterPolicy>
class McsLockT {
public:
  static constexpr const char *Name = "mcs";
  using RegisterPolicy = Policy;

  explicit McsLockT(std::uint32_t NumThreads)
      : N(NumThreads), Nodes(new CacheLinePadded<Node>[NumThreads]) {
    assert(NumThreads >= 1 && "MCS lock needs at least one process");
  }

  void lock(std::uint32_t Tid) {
    assert(Tid < N && "thread id out of range");
    Node &Mine = Nodes[Tid].value();
    Mine.Next.write(0, std::memory_order_relaxed);
    Mine.MustWait.write(1, std::memory_order_relaxed);
    const std::uint32_t Pred =
        Tail.value().exchange(Tid + 1, std::memory_order_acq_rel);
    if (Pred == 0)
      return; // Lock was free.
    // Link behind the predecessor and spin on our own flag. Release:
    // publishes our initialized node to the predecessor's unlock.
    Nodes[Pred - 1].value().Next.write(Tid + 1, std::memory_order_release);
    SpinWait Waiter;
    while (Mine.MustWait.read(std::memory_order_acquire) != 0)
      Waiter.once();
  }

  void unlock(std::uint32_t Tid) {
    assert(Tid < N && "thread id out of range");
    Node &Mine = Nodes[Tid].value();
    if (Mine.Next.read(std::memory_order_acquire) == 0) {
      // No known successor: try to close the queue.
      if (Tail.value().compareAndSwap(Tid + 1, 0,
                                      std::memory_order_release))
        return;
      // A successor is announcing itself; wait for the link.
      SpinWait Waiter;
      while (Mine.Next.read(std::memory_order_acquire) == 0)
        Waiter.once();
    }
    Nodes[Mine.Next.read(std::memory_order_acquire) - 1]
        .value()
        .MustWait.write(0, std::memory_order_release);
  }

private:
  struct Node {
    AtomicRegister<std::uint32_t, Policy> Next{0}; ///< Successor id+1.
    AtomicRegister<std::uint8_t, Policy> MustWait{0}; ///< Spun on by owner.
  };

  const std::uint32_t N;
  CacheLinePadded<AtomicRegister<std::uint32_t, Policy>>
      Tail; ///< Last waiter id+1; 0 = free.
  std::unique_ptr<CacheLinePadded<Node>[]> Nodes;
};

using McsLock = McsLockT<>;

} // namespace csobj

#endif // CSOBJ_LOCKS_MCSLOCK_H
