//===- locks/McsLock.h - MCS queue lock -------------------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mellor-Crummey & Scott queue lock. Each waiter spins on its own cache
/// line; handoff is FIFO, so the lock is starvation-free. Queue nodes are
/// preallocated per process id (the paper's p_1..p_n model makes this
/// natural), so the lock is allocation-free after construction. Node
/// links are stored as id+1 with 0 meaning "null" so they fit atomic
/// registers without pointer tagging.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_MCSLOCK_H
#define CSOBJ_LOCKS_MCSLOCK_H

#include "memory/AtomicRegister.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <cassert>
#include <cstdint>
#include <memory>

namespace csobj {

/// MCS list-based queue lock over dense thread ids.
class McsLock {
public:
  static constexpr const char *Name = "mcs";

  explicit McsLock(std::uint32_t NumThreads)
      : N(NumThreads), Nodes(new CacheLinePadded<Node>[NumThreads]) {
    assert(NumThreads >= 1 && "MCS lock needs at least one process");
  }

  void lock(std::uint32_t Tid) {
    assert(Tid < N && "thread id out of range");
    Node &Mine = Nodes[Tid].value();
    Mine.Next.write(0);
    Mine.MustWait.write(1);
    const std::uint32_t Pred = Tail.exchange(Tid + 1);
    if (Pred == 0)
      return; // Lock was free.
    // Link behind the predecessor and spin on our own flag.
    Nodes[Pred - 1].value().Next.write(Tid + 1);
    SpinWait Waiter;
    while (Mine.MustWait.read() != 0)
      Waiter.once();
  }

  void unlock(std::uint32_t Tid) {
    assert(Tid < N && "thread id out of range");
    Node &Mine = Nodes[Tid].value();
    if (Mine.Next.read() == 0) {
      // No known successor: try to close the queue.
      if (Tail.compareAndSwap(Tid + 1, 0))
        return;
      // A successor is announcing itself; wait for the link.
      SpinWait Waiter;
      while (Mine.Next.read() == 0)
        Waiter.once();
    }
    Nodes[Mine.Next.read() - 1].value().MustWait.write(0);
  }

private:
  struct Node {
    AtomicRegister<std::uint32_t> Next{0};    ///< Successor id+1; 0 = none.
    AtomicRegister<std::uint8_t> MustWait{0}; ///< Spun on by the owner.
  };

  const std::uint32_t N;
  AtomicRegister<std::uint32_t> Tail{0}; ///< Last waiter id+1; 0 = free.
  std::unique_ptr<CacheLinePadded<Node>[]> Nodes;
};

} // namespace csobj

#endif // CSOBJ_LOCKS_MCSLOCK_H
