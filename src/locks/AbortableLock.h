//===- locks/AbortableLock.h - Abortable mutual exclusion -------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abortable mutual exclusion in the sense the paper attributes to
/// Jayanti [13]: "at any time while it is executing its entry code, a
/// process can stop competing for the critical section and this halting
/// has not to alter the liveness of the other critical section requests".
///
/// A TTAS lock satisfies this definition structurally — a waiter holds no
/// queue state, so walking away leaves no trace. (Queue locks like MCS
/// need the heavy machinery of [13] to unlink aborted waiters; offering
/// the TTAS form keeps the abortable-object theme of the paper concrete
/// without replicating that paper.) The entry code here takes an explicit
/// attempt budget; exhausting it returns false, the lock analogue of the
/// stack's bottom.
///
/// The abortable lock composes with the paper's machinery: it *is* an
/// abortable object, so ContentionSensitive can strengthen a critical
/// section built from it, and StarvationFreeLock can wrap its blocking
/// form.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_ABORTABLELOCK_H
#define CSOBJ_LOCKS_ABORTABLELOCK_H

#include "memory/AtomicRegister.h"
#include "support/SpinWait.h"

#include <cstdint>

namespace csobj {

/// TTAS-based abortable lock.
class AbortableTtasLock {
public:
  static constexpr const char *Name = "abortable-ttas";

  explicit AbortableTtasLock(std::uint32_t /*NumThreads*/ = 0) {}

  /// Entry code with an abort budget: at most \p MaxAttempts probe
  /// rounds. Returns true when the lock is held; false when the attempt
  /// was abandoned (no effect on other waiters — the paper's abortable
  /// mutual exclusion contract).
  bool tryLock(std::uint32_t /*Tid*/, std::uint32_t MaxAttempts) {
    SpinWait Waiter;
    for (std::uint32_t Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
      if (Held.read() == 0 && Held.exchange(1) == 0)
        return true;
      Waiter.once();
    }
    return false;
  }

  /// Blocking entry (the LockConcept shape): retry the abortable entry
  /// until it succeeds.
  void lock(std::uint32_t Tid) {
    while (!tryLock(Tid, 64)) {
    }
  }

  void unlock(std::uint32_t /*Tid*/ = 0) { Held.write(0); }

  /// Whether the lock is currently held (test/debug aid).
  bool heldForTesting() const { return Held.peekForTesting() != 0; }

private:
  AtomicRegister<std::uint8_t> Held{0};
};

} // namespace csobj

#endif // CSOBJ_LOCKS_ABORTABLELOCK_H
