//===- locks/ClhLock.h - CLH queue lock -------------------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Craig / Landin-Hagersten queue lock: an implicit queue where each
/// waiter spins on its *predecessor's* node. FIFO, hence starvation-free.
/// Uses the classic n+1 recycled-node scheme: a releasing thread adopts
/// its predecessor's node for its next acquisition, so the lock is
/// allocation-free after construction.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_CLHLOCK_H
#define CSOBJ_LOCKS_CLHLOCK_H

#include "memory/AtomicRegister.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <cassert>
#include <cstdint>
#include <memory>

namespace csobj {

/// CLH implicit-queue lock over dense thread ids.
class ClhLock {
public:
  static constexpr const char *Name = "clh";

  explicit ClhLock(std::uint32_t NumThreads)
      : N(NumThreads),
        Flags(new CacheLinePadded<AtomicRegister<std::uint8_t>>[NumThreads +
                                                                1]),
        Owned(new std::uint32_t[NumThreads]),
        Watching(new std::uint32_t[NumThreads]) {
    assert(NumThreads >= 1 && "CLH lock needs at least one process");
    // Node NumThreads starts as the released sentinel at the tail; each
    // thread i initially owns node i.
    Flags[NumThreads].value().write(0);
    Tail.write(NumThreads);
    for (std::uint32_t I = 0; I < NumThreads; ++I) {
      Flags[I].value().write(0);
      Owned[I] = I;
      Watching[I] = I; // Placeholder until first lock().
    }
  }

  void lock(std::uint32_t Tid) {
    assert(Tid < N && "thread id out of range");
    const std::uint32_t Mine = Owned[Tid];
    Flags[Mine].value().write(1); // "I want / hold the lock."
    const std::uint32_t Pred = Tail.exchange(Mine);
    Watching[Tid] = Pred;
    SpinWait Waiter;
    while (Flags[Pred].value().read() != 0)
      Waiter.once();
  }

  void unlock(std::uint32_t Tid) {
    assert(Tid < N && "thread id out of range");
    const std::uint32_t Mine = Owned[Tid];
    // Recycle: my next acquisition uses my predecessor's node, which is
    // guaranteed quiescent once I saw its flag drop.
    Owned[Tid] = Watching[Tid];
    Flags[Mine].value().write(0);
  }

private:
  const std::uint32_t N;
  AtomicRegister<std::uint32_t> Tail{0};
  std::unique_ptr<CacheLinePadded<AtomicRegister<std::uint8_t>>[]> Flags;
  std::unique_ptr<std::uint32_t[]> Owned;    ///< Node owned per thread.
  std::unique_ptr<std::uint32_t[]> Watching; ///< Predecessor per thread.
};

} // namespace csobj

#endif // CSOBJ_LOCKS_CLHLOCK_H
