//===- locks/StarvationFreeLock.h - The Section 4.4 transform ---*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 4.4: "From a non-blocking lock to a
/// starvation-free lock". Bracketing any deadlock-free lock between the
/// RoundRobinArbiter doorway (starred lines 04-06 on acquire, 10-12 on
/// release) yields a starvation-free lock:
///
///     starvation_free_lock(i)   = { arbiter.enter(i); inner.lock(i); }
///     starvation_free_unlock(i) = { arbiter.exitAndAdvance(i);
///                                   inner.unlock(i); }
///
/// The release order follows the paper exactly: the FLAG/TURN bookkeeping
/// (lines 10-11) happens *before* the inner unlock (line 12), so a
/// process that sees FLAG[TURN] = false can rely on TURN having already
/// advanced past the leaving process. Experiment E6 measures the bounded
/// acquisition-count spread this buys over the raw inner lock.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_STARVATIONFREELOCK_H
#define CSOBJ_LOCKS_STARVATIONFREELOCK_H

#include "locks/RoundRobinArbiter.h"

#include <cstdint>

namespace csobj {

/// Starvation-free lock from a deadlock-free one (paper Section 4.4).
template <typename InnerLock>
class StarvationFreeLock {
public:
  static constexpr const char *Name = "starvation-free";

  explicit StarvationFreeLock(std::uint32_t NumThreads)
      : Arbiter(NumThreads), Inner(NumThreads) {}

  void lock(std::uint32_t Tid) {
    Arbiter.enter(Tid); // lines 04-05
    Inner.lock(Tid);    // line 06
  }

  void unlock(std::uint32_t Tid) {
    Arbiter.exitAndAdvance(Tid); // lines 10-11
    Inner.unlock(Tid);           // line 12
  }

  /// The underlying deadlock-free lock.
  InnerLock &inner() { return Inner; }

  /// The doorway (exposed for the fairness tests).
  RoundRobinArbiter &arbiter() { return Arbiter; }

private:
  RoundRobinArbiter Arbiter;
  InnerLock Inner;
};

} // namespace csobj

#endif // CSOBJ_LOCKS_STARVATIONFREELOCK_H
