//===- locks/StarvationFreeLock.h - The Section 4.4 transform ---*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 4.4: "From a non-blocking lock to a
/// starvation-free lock". Bracketing any deadlock-free lock between the
/// RoundRobinArbiter doorway (starred lines 04-06 on acquire, 10-12 on
/// release) yields a starvation-free lock:
///
///     starvation_free_lock(i)   = { arbiter.enter(i); inner.lock(i); }
///     starvation_free_unlock(i) = { arbiter.exitAndAdvance(i);
///                                   inner.unlock(i); }
///
/// The release order follows the paper exactly: the FLAG/TURN bookkeeping
/// (lines 10-11) happens *before* the inner unlock (line 12), so a
/// process that sees FLAG[TURN] = false can rely on TURN having already
/// advanced past the leaving process. Experiment E6 measures the bounded
/// acquisition-count spread this buys over the raw inner lock.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_STARVATIONFREELOCK_H
#define CSOBJ_LOCKS_STARVATIONFREELOCK_H

#include "locks/LockTraits.h"
#include "locks/RecoverableArbiter.h"
#include "locks/RoundRobinArbiter.h"

#include <cstddef>
#include <cstdint>

namespace csobj {

/// Starvation-free lock from a deadlock-free one (paper Section 4.4).
template <typename InnerLock>
class StarvationFreeLock {
public:
  static constexpr const char *Name = "starvation-free";

  explicit StarvationFreeLock(std::uint32_t NumThreads)
      : Arbiter(NumThreads), Inner(NumThreads) {}

  void lock(std::uint32_t Tid) {
    Arbiter.enter(Tid); // lines 04-05
    Inner.lock(Tid);    // line 06
  }

  void unlock(std::uint32_t Tid) {
    Arbiter.exitAndAdvance(Tid); // lines 10-11
    Inner.unlock(Tid);           // line 12
  }

  /// The underlying deadlock-free lock.
  InnerLock &inner() { return Inner; }

  /// The doorway (exposed for the fairness tests).
  RoundRobinArbiter &arbiter() { return Arbiter; }

  /// Heap owned by the lock: the doorway's FLAG array.
  std::size_t heapBytes() const { return Arbiter.heapBytes(); }

private:
  RoundRobinArbiter Arbiter;
  InnerLock Inner;
};

/// Crash-recoverable starvation-free lock: the Section 4.4 transform
/// rebuilt from the crash-tolerant parts, selected by the Leasable tag
/// (locks/LockTraits.h). The RoundRobinArbiter doorway is replaced by
/// RecoverableArbiter (TURN skips suspected corpses) and the inner
/// deadlock-free lock by LeasedLock (a stale lease is revoked after the
/// patience budget), both feeding one SuspectSet. The result keeps the
/// LockConcept shape, so LockedStack, LockedQueue and every Figure 3
/// instantiation can run under FaultPlan crash/stall schedules: a corpse
/// in the doorway or holding the lease delays survivors by at most their
/// patience, never forever.
///
/// With no faults the behaviour matches the primary template:
/// starvation-free among live, unsuspected processes (false suspicion of
/// a live holder costs fairness — a lost lease — never safety here,
/// because the revoking waiter reports TimedOut and re-rounds rather
/// than entering).
template <std::uint32_t PatienceV>
class StarvationFreeLock<LeasableTag<PatienceV>> {
public:
  static constexpr const char *Name = "starvation-free(leased)";

  /// Patience per bounded round, in logical observations; the tag value
  /// 0 defers to the lock's wall-clock-safe default.
  static constexpr std::uint32_t DefaultPatience =
      PatienceV == 0 ? LeasedLock::DefaultPatience : PatienceV;

  explicit StarvationFreeLock(std::uint32_t NumThreads)
      : Suspects(NumThreads), Arbiter(NumThreads, Suspects),
        Inner(NumThreads, &Suspects) {}

  /// One bounded acquisition round: doorway entry (lines 04-05) then the
  /// lease (line 06), each bounded by \p Patience. TimedOut means the
  /// caller must not enter — its flag has been withdrawn, and when the
  /// blocker was suspected its stale lease/turn has been revoked/skipped
  /// so a later round finds the lock healed.
  LeaseAcquire lockBounded(std::uint32_t Tid,
                           std::uint32_t Patience = DefaultPatience) {
    if (!Arbiter.enterBounded(Tid, Patience))
      return LeaseAcquire::TimedOut;
    if (Inner.lockBounded(Tid, Patience) != LeaseAcquire::Acquired) {
      Arbiter.withdraw(Tid);
      return LeaseAcquire::TimedOut;
    }
    return LeaseAcquire::Acquired;
  }

  /// LockConcept-shaped acquisition: bounded rounds retried until one
  /// succeeds. Unlike the primary template this terminates even when the
  /// current holder crashed: the round that exhausts its patience
  /// suspects the corpse and revokes its lease, and a following round
  /// acquires the freed lock.
  void lock(std::uint32_t Tid) {
    while (lockBounded(Tid) != LeaseAcquire::Acquired) {
    }
  }

  void unlock(std::uint32_t Tid) {
    Arbiter.exitAndAdvance(Tid); // lines 10-11
    Inner.unlock(Tid);           // line 12
  }

  /// The leased inner lock (revocation/lost-lease counters live here).
  LeasedLock &inner() { return Inner; }

  /// The recoverable doorway (exposed for the fairness tests).
  RecoverableArbiter &arbiter() { return Arbiter; }

  /// The failure detector shared by doorway and lock.
  SuspectSet &suspects() { return Suspects; }

private:
  SuspectSet Suspects;
  RecoverableArbiter Arbiter;
  LeasedLock Inner;
};

} // namespace csobj

#endif // CSOBJ_LOCKS_STARVATIONFREELOCK_H
