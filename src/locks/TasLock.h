//===- locks/TasLock.h - Test-and-set spin locks ----------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two classic test-and-set spin locks. Both are deadlock-free but
/// not starvation-free — exactly the class of lock the paper's Figure 3
/// assumes ("this lock is assumed to be deadlock-free but it is not
/// required to be starvation-free"), and the raw material for the
/// Section 4.4 starvation-freedom transformation.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_TASLOCK_H
#define CSOBJ_LOCKS_TASLOCK_H

#include "memory/AtomicRegister.h"
#include "support/Backoff.h"
#include "support/SpinWait.h"

#include <cstdint>

namespace csobj {

/// Test-and-set lock: spin on an atomic exchange.
class TasLock {
public:
  static constexpr const char *Name = "tas";

  explicit TasLock(std::uint32_t /*NumThreads*/ = 0) {}

  void lock(std::uint32_t /*Tid*/ = 0) {
    SpinWait Waiter;
    while (Held.exchange(1) != 0)
      Waiter.once();
  }

  void unlock(std::uint32_t /*Tid*/ = 0) { Held.write(0); }

private:
  AtomicRegister<std::uint8_t> Held{0};
};

/// Test-and-test-and-set lock: spin reading, exchange only when the lock
/// looks free. Fewer bus-locking operations under contention than TAS.
class TtasLock {
public:
  static constexpr const char *Name = "ttas";

  explicit TtasLock(std::uint32_t /*NumThreads*/ = 0) {}

  void lock(std::uint32_t /*Tid*/ = 0) {
    SpinWait Waiter;
    while (true) {
      if (Held.read() == 0 && Held.exchange(1) == 0)
        return;
      Waiter.once();
    }
  }

  void unlock(std::uint32_t /*Tid*/ = 0) { Held.write(0); }

private:
  AtomicRegister<std::uint8_t> Held{0};
};

/// Test-and-set lock with randomized exponential backoff between failed
/// attempts — the classic remedy for TAS bus storms and the simplest
/// time-based contention manager in the lock substrate.
class BackoffTasLock {
public:
  static constexpr const char *Name = "tas-backoff";

  explicit BackoffTasLock(std::uint32_t /*NumThreads*/ = 0) {}

  void lock(std::uint32_t Tid = 0) {
    ExponentialBackoff Backoff(4, 1024, Tid + 1);
    while (true) {
      if (Held.read() == 0 && Held.exchange(1) == 0)
        return;
      Backoff.onFailure();
    }
  }

  void unlock(std::uint32_t /*Tid*/ = 0) { Held.write(0); }

private:
  AtomicRegister<std::uint8_t> Held{0};
};

} // namespace csobj

#endif // CSOBJ_LOCKS_TASLOCK_H
