//===- locks/TasLock.h - Test-and-set spin locks ----------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two classic test-and-set spin locks. Both are deadlock-free but
/// not starvation-free — exactly the class of lock the paper's Figure 3
/// assumes ("this lock is assumed to be deadlock-free but it is not
/// required to be starvation-free"), and the raw material for the
/// Section 4.4 starvation-freedom transformation.
///
/// The lock word lives on its own cache line so that slow-path lock
/// traffic (the C&S/exchange storm of waiters) does not false-share with
/// the fast-path registers of whatever object embeds the lock — in
/// Figure 3, CONTENTION is read on *every* operation while the lock word
/// is only touched under contention.
///
/// Memory orderings (audited; identical under both register policies):
/// the acquiring exchange is acquire — it synchronizes-with the previous
/// holder's releasing store of 0, so everything done inside the previous
/// critical section happens-before this one. The spin read in TTAS is
/// relaxed: it is only a heuristic that delays the next exchange, and the
/// exchange re-establishes the needed ordering. unlock's store is
/// release, publishing the critical section to the next acquirer.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_TASLOCK_H
#define CSOBJ_LOCKS_TASLOCK_H

#include "memory/AtomicRegister.h"
#include "support/Backoff.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <cstdint>

namespace csobj {

/// Test-and-set lock: spin on an atomic exchange.
///
/// \tparam Policy register policy (Instrumented / Fast).
template <typename Policy = DefaultRegisterPolicy>
class TasLockT {
public:
  static constexpr const char *Name = "tas";
  using RegisterPolicy = Policy;

  explicit TasLockT(std::uint32_t /*NumThreads*/ = 0) {}

  void lock(std::uint32_t /*Tid*/ = 0) {
    SpinWait Waiter;
    while (Held.value().exchange(1, std::memory_order_acquire) != 0)
      Waiter.once();
  }

  void unlock(std::uint32_t /*Tid*/ = 0) {
    Held.value().write(0, std::memory_order_release);
  }

private:
  CacheLinePadded<AtomicRegister<std::uint8_t, Policy>> Held;
};

using TasLock = TasLockT<>;

/// Test-and-test-and-set lock: spin reading, exchange only when the lock
/// looks free. Fewer bus-locking operations under contention than TAS.
template <typename Policy = DefaultRegisterPolicy>
class TtasLockT {
public:
  static constexpr const char *Name = "ttas";
  using RegisterPolicy = Policy;

  explicit TtasLockT(std::uint32_t /*NumThreads*/ = 0) {}

  void lock(std::uint32_t /*Tid*/ = 0) {
    SpinWait Waiter;
    while (true) {
      // Relaxed spin read: pure heuristic, the exchange orders the
      // acquisition (see file comment).
      if (Held.value().read(std::memory_order_relaxed) == 0 &&
          Held.value().exchange(1, std::memory_order_acquire) == 0)
        return;
      Waiter.once();
    }
  }

  void unlock(std::uint32_t /*Tid*/ = 0) {
    Held.value().write(0, std::memory_order_release);
  }

private:
  CacheLinePadded<AtomicRegister<std::uint8_t, Policy>> Held;
};

using TtasLock = TtasLockT<>;

/// Test-and-set lock with randomized exponential backoff between failed
/// attempts — the classic remedy for TAS bus storms and the simplest
/// time-based contention manager in the lock substrate.
template <typename Policy = DefaultRegisterPolicy>
class BackoffTasLockT {
public:
  static constexpr const char *Name = "tas-backoff";
  using RegisterPolicy = Policy;

  explicit BackoffTasLockT(std::uint32_t /*NumThreads*/ = 0) {}

  void lock(std::uint32_t Tid = 0) {
    ExponentialBackoff Backoff(4, 1024, Tid + 1);
    while (true) {
      if (Held.value().read(std::memory_order_relaxed) == 0 &&
          Held.value().exchange(1, std::memory_order_acquire) == 0)
        return;
      Backoff.onFailure();
    }
  }

  void unlock(std::uint32_t /*Tid*/ = 0) {
    Held.value().write(0, std::memory_order_release);
  }

private:
  CacheLinePadded<AtomicRegister<std::uint8_t, Policy>> Held;
};

using BackoffTasLock = BackoffTasLockT<>;

} // namespace csobj

#endif // CSOBJ_LOCKS_TASLOCK_H
