//===- locks/TournamentLock.h - Peterson tournament for n -------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// n-process mutual exclusion from a binary tournament of Peterson
/// two-process games. A process climbs from its leaf to the root, playing
/// the Peterson protocol at each internal node with role = the path bit;
/// release walks back down. Starvation-free (each node game is), built
/// from reads and writes only — no read-modify-write instructions, which
/// makes it the register-only contrast point in the lock benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_TOURNAMENTLOCK_H
#define CSOBJ_LOCKS_TOURNAMENTLOCK_H

#include "memory/AtomicRegister.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <cassert>
#include <cstdint>
#include <memory>

namespace csobj {

/// Peterson-tournament lock for up to NumThreads processes.
class TournamentLock {
public:
  static constexpr const char *Name = "tournament";

  explicit TournamentLock(std::uint32_t NumThreads)
      : Levels(levelsFor(NumThreads)),
        Nodes(new CacheLinePadded<Node>[nodeCount(Levels)]) {
    assert(NumThreads >= 1 && "tournament lock needs a process");
  }

  void lock(std::uint32_t Tid) {
    for (std::uint32_t Level = 0; Level < Levels; ++Level) {
      Node &Game = nodeAt(Level, Tid);
      const std::uint32_t Role = (Tid >> Level) & 1;
      Game.Flag[Role].write(1);
      Game.Victim.write(Role);
      SpinWait Waiter;
      while (Game.Flag[1 - Role].read() != 0 &&
             Game.Victim.read() == Role)
        Waiter.once();
    }
  }

  void unlock(std::uint32_t Tid) {
    // Release from the root back down to the leaf level.
    for (std::uint32_t Level = Levels; Level-- > 0;) {
      Node &Game = nodeAt(Level, Tid);
      Game.Flag[(Tid >> Level) & 1].write(0);
    }
  }

  std::uint32_t levels() const { return Levels; }

private:
  struct Node {
    AtomicRegister<std::uint8_t> Flag[2]{};
    AtomicRegister<std::uint32_t> Victim{0};
  };

  /// Tree depth: smallest L with 2^L >= NumThreads (at least 1 so a
  /// single game exists even for one process).
  static std::uint32_t levelsFor(std::uint32_t NumThreads) {
    std::uint32_t L = 1;
    while ((std::uint32_t{1} << L) < NumThreads)
      ++L;
    return L;
  }

  /// Total internal nodes of a complete binary tree of depth Levels,
  /// stored level by level from the leaves' parents (level 0) up.
  static std::uint32_t nodeCount(std::uint32_t Levels) {
    return (std::uint32_t{1} << Levels) - 1;
  }

  /// Node played by \p Tid at \p Level: level l has 2^(Levels-1-l) games;
  /// levels are packed with level 0 first.
  Node &nodeAt(std::uint32_t Level, std::uint32_t Tid) {
    std::uint32_t Base = 0;
    for (std::uint32_t L = 0; L < Level; ++L)
      Base += (std::uint32_t{1} << (Levels - 1 - L));
    return Nodes[Base + (Tid >> (Level + 1))].value();
  }

  const std::uint32_t Levels;
  std::unique_ptr<CacheLinePadded<Node>[]> Nodes;
};

} // namespace csobj

#endif // CSOBJ_LOCKS_TOURNAMENTLOCK_H
