//===- locks/TicketLock.h - FIFO ticket lock --------------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ticket lock: fetch-and-add a ticket, spin until served. FIFO and
/// therefore starvation-free on its own — the control case for the
/// Section 4.4 transformation (the paper's remark in 4.1: with a
/// starvation-free lock, FLAG and TURN become useless).
///
/// Memory orderings (audited): the spin read of NowServing is acquire —
/// when it finally observes our ticket it synchronizes-with the previous
/// holder's releasing NowServing store, ordering that critical section
/// before ours. The ticket fetch-add is relaxed (it only reserves a
/// number; it publishes nothing), and unlock's store is release.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_TICKETLOCK_H
#define CSOBJ_LOCKS_TICKETLOCK_H

#include "memory/AtomicRegister.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <cstdint>

namespace csobj {

/// FIFO ticket lock.
///
/// \tparam Policy register policy (Instrumented / Fast).
template <typename Policy = DefaultRegisterPolicy>
class TicketLockT {
public:
  static constexpr const char *Name = "ticket";
  using RegisterPolicy = Policy;

  explicit TicketLockT(std::uint32_t /*NumThreads*/ = 0) {}

  void lock(std::uint32_t /*Tid*/ = 0) {
    const std::uint32_t Ticket =
        NextTicket.value().fetchAdd(1, std::memory_order_relaxed);
    SpinWait Waiter;
    while (NowServing.value().read(std::memory_order_acquire) != Ticket)
      Waiter.once();
  }

  void unlock(std::uint32_t /*Tid*/ = 0) {
    // Only the holder writes NowServing; a plain increment is safe.
    NowServing.value().write(
        NowServing.value().read(std::memory_order_relaxed) + 1,
        std::memory_order_release);
  }

private:
  CacheLinePadded<AtomicRegister<std::uint32_t, Policy>> NextTicket;
  CacheLinePadded<AtomicRegister<std::uint32_t, Policy>> NowServing;
};

using TicketLock = TicketLockT<>;

} // namespace csobj

#endif // CSOBJ_LOCKS_TICKETLOCK_H
