//===- locks/TicketLock.h - FIFO ticket lock --------------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ticket lock: fetch-and-add a ticket, spin until served. FIFO and
/// therefore starvation-free on its own — the control case for the
/// Section 4.4 transformation (the paper's remark in 4.1: with a
/// starvation-free lock, FLAG and TURN become useless).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_TICKETLOCK_H
#define CSOBJ_LOCKS_TICKETLOCK_H

#include "memory/AtomicRegister.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <cstdint>

namespace csobj {

/// FIFO ticket lock.
class TicketLock {
public:
  static constexpr const char *Name = "ticket";

  explicit TicketLock(std::uint32_t /*NumThreads*/ = 0) {}

  void lock(std::uint32_t /*Tid*/ = 0) {
    const std::uint32_t Ticket = NextTicket.value().fetchAdd(1);
    SpinWait Waiter;
    while (NowServing.value().read() != Ticket)
      Waiter.once();
  }

  void unlock(std::uint32_t /*Tid*/ = 0) {
    // Only the holder writes NowServing; a plain increment is safe.
    NowServing.value().write(NowServing.value().read() + 1);
  }

private:
  CacheLinePadded<AtomicRegister<std::uint32_t>> NextTicket;
  CacheLinePadded<AtomicRegister<std::uint32_t>> NowServing;
};

} // namespace csobj

#endif // CSOBJ_LOCKS_TICKETLOCK_H
