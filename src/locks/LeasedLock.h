//===- locks/LeasedLock.h - Crash-recoverable leased lock -------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 5 caveat is that Figure 3 does not tolerate a
/// process crashing while holding the lock: the slow path blocks forever.
/// This header supplies the lock half of the repair: a deadlock-free
/// C&S lock whose acquisition carries an identified *lease* (holder id +
/// acquisition epoch in one word) that waiters can observe and, after
/// their patience budget expires, revoke.
///
/// Failure detection is necessarily heuristic — in an asynchronous system
/// a dead process is indistinguishable from a slow one (the paper's own
/// model). Revocation is nevertheless SAFE here because in the Figure 3
/// construction the lock is a contention-reduction device, not a safety
/// device: every linearization point is a C&S inside the weak (abortable)
/// operation, so two processes running the "protected" retry loop
/// concurrently still produce linearizable histories. What a false
/// suspicion costs is fairness (the falsely suspected holder loses its
/// lease and its doorway priority until it resurrects itself), never
/// correctness. tests/faults_test.cpp checks both directions.
///
/// Pieces:
///
///  * SuspectSetT — shared per-thread suspicion registers. A thread that
///    observes a lease (or doorway turn, see locks/RecoverableArbiter.h)
///    stuck past its patience marks the owner suspect; a suspect that is
///    in fact alive clears its own bit on its next slow-path entry
///    ("resurrection"), restoring its fairness.
///  * LeasedLockT — the lock. lockBounded() spins with a bounded patience
///    measured in *observations* of an unchanged lease (logical time, so
///    the explorer can exercise expiry deterministically); on expiry it
///    marks the holder suspect, revokes the lease by C&S-ing the word
///    free, and reports TimedOut so the caller can degrade to its
///    lock-free fallback while the *next* acquirer finds the lock free.
///    unlock() releases by C&S on the exact lease taken, so a holder that
///    lost its lease to revocation cannot stomp the new holder's lease —
///    the lost lease is only counted.
///
/// The lock word and each suspect register sit on their own cache line,
/// like every other slow-path register in the library.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_LEASEDLOCK_H
#define CSOBJ_LOCKS_LEASEDLOCK_H

#include "memory/AtomicRegister.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

namespace csobj {

/// Shared failure-detector output: one register per thread, nonzero when
/// that thread is currently suspected dead. Writes are heuristic and
/// races are benign (see file comment); all accesses are instrumented so
/// the explorer can interleave them.
template <typename Policy = DefaultRegisterPolicy>
class SuspectSetT {
public:
  using RegisterPolicy = Policy;

  explicit SuspectSetT(std::uint32_t NumThreads)
      : N(NumThreads),
        Suspected(new CacheLinePadded<
                  AtomicRegister<std::uint8_t, Policy>>[NumThreads]) {
    assert(NumThreads >= 1 && "need at least one process");
  }

  bool isSuspect(std::uint32_t I) const {
    assert(I < N && "thread id out of range");
    return Suspected[I].value().read(std::memory_order_acquire) != 0;
  }

  /// Declare \p I suspect (failure-detector output, not ground truth).
  void markSuspect(std::uint32_t I) {
    assert(I < N && "thread id out of range");
    Suspected[I].value().write(1, std::memory_order_release);
  }

  /// Resurrection: a live thread observed to be suspected clears its own
  /// bit, restoring its doorway fairness.
  void clearSelf(std::uint32_t I) {
    assert(I < N && "thread id out of range");
    Suspected[I].value().write(0, std::memory_order_release);
  }

  std::uint32_t numThreads() const { return N; }

  bool isSuspectForTesting(std::uint32_t I) const {
    assert(I < N && "thread id out of range");
    return Suspected[I].value().peekForTesting() != 0;
  }

private:
  const std::uint32_t N;
  std::unique_ptr<CacheLinePadded<AtomicRegister<std::uint8_t, Policy>>[]>
      Suspected;
};

using SuspectSet = SuspectSetT<>;

/// Outcome of a bounded lock acquisition attempt.
enum class LeaseAcquire : std::uint8_t {
  Acquired, ///< The caller holds the lock.
  TimedOut  ///< Patience exhausted; the caller must not enter.
};

/// Deadlock-free lock with revocable leases (see file comment).
///
/// Lease word layout: low 32 bits hold holder+1 (0 = free), high 32 bits
/// the acquisition epoch, bumped on every acquisition so a revoked-then-
/// reacquired lease can never be confused with the original (no ABA on
/// unlock's release C&S).
template <typename Policy = DefaultRegisterPolicy>
class LeasedLockT {
public:
  static constexpr const char *Name = "leased";
  using RegisterPolicy = Policy;

  /// Patience used by the LockConcept-shaped lock() entry point.
  static constexpr std::uint32_t DefaultPatience = 1u << 14;

  explicit LeasedLockT(std::uint32_t NumThreads, SuspectSetT<Policy> *Set =
                                                     nullptr)
      : N(NumThreads), Suspects(Set) {
    assert(NumThreads >= 1 && NumThreads <= MaxThreads &&
           "leased lock supports 1..64 processes");
  }

  /// Bounded acquisition: spins until the lock is taken or the patience
  /// budget is exhausted. Patience is measured in consecutive
  /// observations of the *same* lease; a lease that changes hands resets
  /// the count (the lock is live), but total observations are capped at
  /// a small multiple of \p Patience so the call is bounded even under
  /// permanent live contention. On lease expiry the holder is marked
  /// suspect (when a SuspectSet is attached) and the lease revoked so
  /// subsequent acquirers find the lock free; the expired waiter itself
  /// reports TimedOut and is expected to degrade.
  LeaseAcquire lockBounded(std::uint32_t Tid, std::uint32_t Patience) {
    assert(Tid < N && "thread id out of range");
    std::uint64_t Seen = Word.value().read(std::memory_order_acquire);
    std::uint64_t Stable = 0;
    std::uint64_t Budget =
        static_cast<std::uint64_t>(Patience) * 4 + 16;
    SpinWait Waiter;
    while (Budget-- > 0) {
      if (holderOf(Seen) == 0) {
        const std::uint64_t Fresh = pack(Tid + 1, epochOf(Seen) + 1);
        if (Word.value().compareAndSwapValue(Seen, Fresh,
                                             std::memory_order_acq_rel)) {
          MyLease[Tid].value().store(Fresh, std::memory_order_relaxed);
          return LeaseAcquire::Acquired;
        }
        Stable = 0; // CAS refreshed Seen; the lock is live.
        continue;
      }
      const std::uint64_t Now =
          Word.value().read(std::memory_order_acquire);
      if (Now != Seen) {
        Seen = Now;
        Stable = 0;
        continue;
      }
      if (++Stable > Patience) {
        // Lease expired: suspect the holder and revoke. The freed word
        // keeps the epoch (only the holder field clears), so epochs are
        // monotone and no lease word ever repeats — the ABA guard for
        // unlock's release C&S. If the revoke C&S fails the word moved,
        // i.e. the holder was alive after all; either way this waiter's
        // patience is spent.
        if (Suspects)
          Suspects->markSuspect(holderOf(Seen) - 1);
        if (Word.value().compareAndSwap(Seen, pack(0, epochOf(Seen)),
                                        std::memory_order_acq_rel))
          Revoked.fetch_add(1, std::memory_order_relaxed);
        return LeaseAcquire::TimedOut;
      }
      Waiter.once();
    }
    return LeaseAcquire::TimedOut;
  }

  /// LockConcept-shaped acquisition: retry bounded acquisition forever.
  /// Against a live system this behaves like a TAS lock; against a dead
  /// holder it revokes and then acquires.
  void lock(std::uint32_t Tid) {
    while (lockBounded(Tid, DefaultPatience) != LeaseAcquire::Acquired) {
    }
  }

  /// Releases by C&S on the exact lease this thread took, preserving
  /// the epoch in the freed word. If the lease was revoked in the
  /// meantime (false suspicion) the C&S fails harmlessly and the loss is
  /// counted.
  void unlock(std::uint32_t Tid) {
    assert(Tid < N && "thread id out of range");
    const std::uint64_t Lease =
        MyLease[Tid].value().load(std::memory_order_relaxed);
    if (Lease == 0 ||
        !Word.value().compareAndSwap(Lease, pack(0, epochOf(Lease)),
                                     std::memory_order_release))
      LostLeases.fetch_add(1, std::memory_order_relaxed);
    MyLease[Tid].value().store(0, std::memory_order_relaxed);
  }

  std::uint32_t numThreads() const { return N; }

  /// Current holder id + 1, or 0 when free (test/debug aid).
  std::uint32_t holderForTesting() const {
    return holderOf(Word.value().peekForTesting());
  }

  /// Acquisition epoch of the current/last lease (test/debug aid).
  std::uint32_t epochForTesting() const {
    return epochOf(Word.value().peekForTesting());
  }

  /// Leases this lock revoked from suspected-dead holders.
  std::uint64_t revocations() const {
    return Revoked.load(std::memory_order_relaxed);
  }

  /// Unlocks that found their lease already revoked (false suspicions of
  /// live holders — fairness cost, never a safety cost).
  std::uint64_t lostLeases() const {
    return LostLeases.load(std::memory_order_relaxed);
  }

private:
  static constexpr std::uint32_t holderOf(std::uint64_t W) {
    return static_cast<std::uint32_t>(W & 0xffffffffu);
  }
  static constexpr std::uint32_t epochOf(std::uint64_t W) {
    return static_cast<std::uint32_t>(W >> 32);
  }
  static constexpr std::uint64_t pack(std::uint32_t Holder,
                                      std::uint32_t Epoch) {
    return (static_cast<std::uint64_t>(Epoch) << 32) | Holder;
  }

  static constexpr std::uint32_t MaxThreads = 64;

  const std::uint32_t N;
  SuspectSetT<Policy> *Suspects;
  CacheLinePadded<AtomicRegister<std::uint64_t, Policy>> Word;
  /// Lease each thread last took; local bookkeeping (plain atomics, not
  /// shared-access-counted — reading your own note is not a shared
  /// access in the paper's counting convention).
  CacheLinePadded<std::atomic<std::uint64_t>> MyLease[MaxThreads] = {};
  /// Harness-side accounting, deliberately uninstrumented.
  std::atomic<std::uint64_t> Revoked{0};
  std::atomic<std::uint64_t> LostLeases{0};
};

using LeasedLock = LeasedLockT<>;

} // namespace csobj

#endif // CSOBJ_LOCKS_LEASEDLOCK_H
