//===- locks/LockTraits.h - Common lock interface ---------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interface contract and small utilities shared by every lock in the
/// substrate. All csobj locks follow one shape so that Figure 3 and the
/// Section 4.4 transformation can be instantiated over any of them:
///
///     explicit L(std::uint32_t NumThreads);   // paper's n
///     void lock(std::uint32_t Tid);           // Tid in [0, NumThreads)
///     void unlock(std::uint32_t Tid);
///     static constexpr const char *Name;      // for benchmark tables
///
/// Locks that do not need per-process state (TAS, TTAS, ticket) simply
/// ignore both parameters. The LockConcept below checks the shape at
/// compile time; ScopedLock is the RAII convenience.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_LOCKTRAITS_H
#define CSOBJ_LOCKS_LOCKTRAITS_H

#include <cstdint>
#include <mutex>
#include <utility>

namespace csobj {

/// Compile-time contract for csobj locks.
template <typename L>
concept LockConcept = requires(L Lock, std::uint32_t Tid) {
  L(std::uint32_t{1});
  Lock.lock(Tid);
  Lock.unlock(Tid);
  { L::Name } -> std::convertible_to<const char *>;
};

/// RAII guard over any csobj lock.
template <typename L>
class ScopedLock {
public:
  ScopedLock(L &Lock, std::uint32_t Tid) : Lock(Lock), Tid(Tid) {
    Lock.lock(Tid);
  }

  ScopedLock(const ScopedLock &) = delete;
  ScopedLock &operator=(const ScopedLock &) = delete;

  ~ScopedLock() { Lock.unlock(Tid); }

private:
  L &Lock;
  std::uint32_t Tid;
};

/// Tag selecting the crash-recoverable StarvationFreeLock variant
/// (locks/StarvationFreeLock.h): the Section 4.4 doorway rebuilt from
/// RecoverableArbiter over a LeasedLock, sharing one SuspectSet, so any
/// lock-based object can run under fault plans. \p PatienceV bounds, in
/// consecutive observations of an unchanged doorway turn or lock lease,
/// how long an acquisition round waits before suspecting the blocker;
/// 0 selects the LeasedLock default (wall-clock safe). Small values are
/// for explorer and fault-injection tests, where patience is logical.
template <std::uint32_t PatienceV = 0>
struct LeasableTag {
  static constexpr std::uint32_t Patience = PatienceV;
};

/// Default-patience tag: StarvationFreeLock<Leasable>.
using Leasable = LeasableTag<>;

/// Adapter giving std::mutex the csobj lock shape, so the OS-provided
/// lock can appear in the same benchmark tables as the literature locks.
class StdMutexLock {
public:
  static constexpr const char *Name = "std::mutex";

  explicit StdMutexLock(std::uint32_t /*NumThreads*/) {}

  void lock(std::uint32_t /*Tid*/) { Mutex.lock(); }
  void unlock(std::uint32_t /*Tid*/) { Mutex.unlock(); }

private:
  std::mutex Mutex;
};

} // namespace csobj

#endif // CSOBJ_LOCKS_LOCKTRAITS_H
