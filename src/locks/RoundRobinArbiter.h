//===- locks/RoundRobinArbiter.h - The FLAG/TURN doorway --------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FLAG[1..n] / TURN round-robin doorway of the paper's Figure 3
/// (the starred lines 04-05 and 10-11), factored into a standalone
/// component. The paper observes (Section 4.4) that bracketing any
/// deadlock-free lock with this doorway yields a starvation-free lock,
/// and (Section 1.2) that the mechanism is a reusable *contention
/// manager* for fairness problems in general. Both uses live here:
/// Figure 3 composes the arbiter with its lock, and StarvationFreeLock.h
/// packages the Section 4.4 transformation.
///
/// Protocol (0-based ids; the paper's (TURN mod n) + 1 becomes
/// (Turn + 1) % n):
///  * enter(i)  — line 04: FLAG[i] <- true; line 05: wait until TURN = i
///    or FLAG[TURN] = false.
///  * exitAndAdvance(i) — line 10: FLAG[i] <- false; line 11: if
///    FLAG[TURN] = false, advance TURN to the next process on the ring.
///
/// Liveness argument (paper's Lemma 3): TURN is only ever advanced to the
/// next ring position and never skips a process, so a flagged process
/// eventually holds TURN, at which point every other process blocks in
/// enter() until it passes through.
///
/// FLAG entries and TURN each occupy their own cache line: the doorway is
/// slow-path machinery, and its spinning must not evict the line holding
/// fast-path state. All accesses stay seq_cst — the Lemma 3 argument
/// interleaves writes and reads of two registers (FLAG[TURN] and TURN)
/// and is only written down for the sequentially consistent model.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_LOCKS_ROUNDROBINARBITER_H
#define CSOBJ_LOCKS_ROUNDROBINARBITER_H

#include "memory/AtomicRegister.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace csobj {

/// The paper's FLAG/TURN fairness doorway.
///
/// \tparam Policy register policy (Instrumented / Fast), see
///         memory/RegisterPolicy.h.
template <typename Policy = DefaultRegisterPolicy>
class RoundRobinArbiterT {
public:
  using RegisterPolicy = Policy;

  /// \p NumThreads is the paper's n; ids are 0..n-1. The initial TURN is
  /// arbitrary per the paper; 0 is used.
  explicit RoundRobinArbiterT(std::uint32_t NumThreads)
      : N(NumThreads),
        Flag(new CacheLinePadded<
             AtomicRegister<std::uint8_t, Policy>>[NumThreads]) {
    assert(NumThreads >= 1 && "arbiter needs at least one process");
  }

  /// Lines 04-05: announce interest, then wait until this process has
  /// priority or the prioritized process is not competing.
  void enter(std::uint32_t I) {
    assert(I < N && "thread id out of range");
    Flag[I].value().write(1);                        // line 04
    SpinWait Waiter;
    while (true) {                                   // line 05
      const std::uint32_t T = Turn.value().read();
      if (T == I)
        break;
      if (Flag[T].value().read() == 0)
        break;
      Waiter.once();
    }
  }

  /// Lines 10-11: withdraw interest and, if the prioritized process is
  /// not competing, pass priority to the next process on the ring.
  void exitAndAdvance(std::uint32_t I) {
    assert(I < N && "thread id out of range");
    Flag[I].value().write(0);                        // line 10
    const std::uint32_t T = Turn.value().read();     // line 11
    if (Flag[T].value().read() == 0)
      Turn.value().write((T + 1) % N);
  }

  std::uint32_t numThreads() const { return N; }

  /// Current TURN value (test/debug aid, uninstrumented).
  std::uint32_t turnForTesting() const {
    return Turn.value().peekForTesting();
  }

  /// Current FLAG[i] (test/debug aid, uninstrumented).
  bool flagForTesting(std::uint32_t I) const {
    assert(I < N && "thread id out of range");
    return Flag[I].value().peekForTesting() != 0;
  }

  /// Heap owned by the arbiter: the padded per-thread FLAG array.
  std::size_t heapBytes() const {
    return std::size_t{N} *
           sizeof(CacheLinePadded<AtomicRegister<std::uint8_t, Policy>>);
  }

private:
  const std::uint32_t N;
  CacheLinePadded<AtomicRegister<std::uint32_t, Policy>> Turn;
  std::unique_ptr<CacheLinePadded<AtomicRegister<std::uint8_t, Policy>>[]>
      Flag;
};

/// The library-default arbiter (instrumented unless CSOBJ_FAST_REGISTERS).
using RoundRobinArbiter = RoundRobinArbiterT<>;

} // namespace csobj

#endif // CSOBJ_LOCKS_ROUNDROBINARBITER_H
