//===- runtime/ThreadRegistry.cpp -----------------------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadRegistry.h"

#include <cassert>
#include <cstdlib>

namespace csobj {

ThreadRegistry::ThreadRegistry(std::uint32_t Capacity)
    : CapacityN(Capacity), InUse(Capacity, false) {
  assert(Capacity >= 1 && "registry needs at least one slot");
}

std::uint32_t ThreadRegistry::acquire() {
  std::lock_guard<std::mutex> Guard(Mutex);
  for (std::uint32_t I = 0; I < CapacityN; ++I) {
    if (!InUse[I]) {
      InUse[I] = true;
      ++Active;
      return I;
    }
  }
  assert(false && "more threads than the configured process count");
  std::abort();
}

void ThreadRegistry::release(std::uint32_t Id) {
  std::lock_guard<std::mutex> Guard(Mutex);
  assert(Id < CapacityN && InUse[Id] && "releasing an id that is not held");
  InUse[Id] = false;
  --Active;
}

std::uint32_t ThreadRegistry::activeCount() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Active;
}

} // namespace csobj
