//===- runtime/Workload.h - Workload configuration & reports ----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Workload model shared by the benchmark harness and the stress tests:
/// a closed loop of push/pop (or enqueue/dequeue) operations per thread,
/// with a configurable operation mix, think time between operations
/// (think time is how the harness dials contention up and down — zero
/// think time on a shared object is the paper's "contention" regime,
/// large think time approximates its "contention-free context"), and
/// capacity prefill so pops do not trivially hit empty.
///
/// The generic driver lives in runtime/Driver.h; this header holds the
/// plain-data configuration and report types plus their aggregation.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_RUNTIME_WORKLOAD_H
#define CSOBJ_RUNTIME_WORKLOAD_H

#include "faults/FaultPlan.h"
#include "obs/PathCounters.h"
#include "runtime/Stats.h"

#include <cstdint>
#include <vector>

namespace csobj {

/// Outcome classification for one operation attempt stream.
enum class OpOutcome {
  Ok,    ///< Pushed a value / popped a value.
  Full,  ///< Total answer: object at capacity.
  Empty, ///< Total answer: object empty.
  Abort  ///< Bottom (only surfaced by weak/abortable objects).
};

/// Closed-loop workload parameters.
struct WorkloadConfig {
  std::uint32_t Threads = 2;        ///< The paper's n.
  std::uint64_t OpsPerThread = 10000;
  std::uint32_t PushPercent = 50;   ///< Percent of ops that are pushes.
  std::uint32_t ThinkTimeNs = 0;    ///< Local spin between operations.
  std::uint32_t Capacity = 1024;    ///< The paper's k.
  std::uint32_t PrefillPercent = 50;///< Percent of capacity prefilled.
  std::uint64_t Seed = 42;          ///< Base PRNG seed.
  /// Probability (per mille) of yielding the core before each shared
  /// access — asynchrony injection for single-core hosts (see
  /// memory/ChaosHook.h). 0 disables the hook entirely.
  std::uint32_t ChaosYieldPermille = 0;
  /// Probability (per mille) of *stalling* before a shared access until
  /// ChaosStallGrants foreign accesses have been granted — the
  /// lease-expiry scenario (see memory/ChaosHook.h). 0 disables stalls.
  std::uint32_t ChaosStallPermille = 0;
  /// Length of an injected stall, in foreign access grants.
  std::uint64_t ChaosStallGrants = 0;
  /// Which thread the stall channel targets; ~0 = all threads. Stalling
  /// a single victim models the paper-relevant scenario (one process
  /// preempted past the others' patience): when every thread may stall,
  /// mutually stalled threads stop the shared access clock and release
  /// each other early, so long stalls never actually expire a lease.
  std::uint32_t ChaosStallTid = ~std::uint32_t{0};
  /// Deterministic faults to inject (crash-stop / bounded stall at named
  /// access points, see faults/FaultPlan.h). A crashed thread stops
  /// issuing operations; its partial tallies are kept and its Crashed
  /// flag set. Empty = no faults.
  FaultPlan Faults;
  /// Per-operation liveness deadline in nanoseconds, enforced by
  /// runtime/Watchdog.h; operations overstaying it are reported in
  /// WorkloadReport::StuckOps. 0 disables the watchdog.
  std::uint64_t OpDeadlineNs = 0;
};

/// Per-thread tallies produced by the driver.
struct ThreadReport {
  std::uint64_t Pushes = 0;   ///< Successful pushes.
  std::uint64_t Pops = 0;     ///< Successful value pops.
  std::uint64_t Fulls = 0;    ///< Full answers.
  std::uint64_t Empties = 0;  ///< Empty answers.
  std::uint64_t Aborts = 0;   ///< Bottom answers that reached the caller.
  std::uint64_t Retries = 0;  ///< Internal retries reported by the object.
  bool Crashed = false;       ///< Thread hit a planned crash-stop fault.
  LatencyHistogram Latency;   ///< Per-operation completion latency.
  /// Completion latency split by the operation's terminal path (index =
  /// obs::Path; the extra slot collects Path::None, i.e. adapters without
  /// a path probe or CSOBJ_NO_METRICS builds). Only populated when the
  /// adapter exposes lastPath(Tid); the validation claim this enables is
  /// path-conditional: shortcut latency must stay flat as threads scale
  /// while lock-path latency grows.
  LatencyHistogram PathLatency[obs::NumPaths + 1];

  std::uint64_t completedOps() const {
    return Pushes + Pops + Fulls + Empties + Aborts;
  }
};

/// Whole-run report.
struct WorkloadReport {
  std::vector<ThreadReport> PerThread;
  double DurationSec = 0;
  /// Operations the watchdog caught over their deadline (0 when the
  /// watchdog was disabled — absence of evidence, not liveness).
  std::uint64_t StuckOps = 0;

  std::uint64_t totalOps() const;
  /// Threads retired by a planned crash-stop fault.
  std::uint32_t crashedThreads() const;
  std::uint64_t totalAborts() const;
  std::uint64_t totalRetries() const;
  double throughputOpsPerSec() const;
  /// Abort fraction among all completed operations.
  double abortRate() const;
  /// Mean retries per completed operation.
  double meanRetries() const;
  /// Jain fairness index over per-thread completed-op counts. Only
  /// discriminating for duration-bounded runs; in fixed-ops-per-thread
  /// runs every thread eventually completes everything, so use
  /// meanLatencyRatio() there instead.
  double fairness() const;
  /// Slowest thread's mean op latency divided by the fastest thread's:
  /// 1 = perfectly even service, large = someone was starved of service
  /// even though the closed loop eventually completed.
  double meanLatencyRatio() const;
  /// All threads' latencies merged.
  LatencyHistogram mergedLatency() const;
  /// All threads' latencies on one terminal path merged (empty histogram
  /// when no adapter path probe was available).
  LatencyHistogram mergedPathLatency(obs::Path P) const;
};

/// Busy-spins for roughly \p Ns nanoseconds of local (non-shared) work.
/// Used to model the "think time" separating operations.
void spinThink(std::uint32_t Ns);

} // namespace csobj

#endif // CSOBJ_RUNTIME_WORKLOAD_H
