//===- runtime/TablePrinter.cpp -------------------------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "runtime/TablePrinter.h"

#include <cassert>
#include <cstdio>
#include <ostream>

namespace csobj {

TablePrinter::TablePrinter(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TablePrinter::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row width must match header");
  Rows.push_back(std::move(Row));
}

void TablePrinter::print(std::ostream &OS) const {
  std::vector<std::size_t> Widths(Header.size());
  for (std::size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (std::size_t C = 0; C < Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    OS << "| ";
    for (std::size_t C = 0; C < Row.size(); ++C) {
      OS << Row[C];
      for (std::size_t Pad = Row[C].size(); Pad < Widths[C]; ++Pad)
        OS << ' ';
      OS << " | ";
    }
    OS << '\n';
  };

  if (!Title.empty())
    OS << "== " << Title << " ==\n";
  PrintRow(Header);
  OS << "|";
  for (std::size_t C = 0; C < Header.size(); ++C) {
    for (std::size_t Pad = 0; Pad < Widths[C] + 2; ++Pad)
      OS << '-';
    OS << "|";
  }
  OS << " \n";
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string formatNs(double Ns) {
  char Buffer[64];
  if (Ns < 1e3)
    std::snprintf(Buffer, sizeof(Buffer), "%.0fns", Ns);
  else if (Ns < 1e6)
    std::snprintf(Buffer, sizeof(Buffer), "%.2fus", Ns / 1e3);
  else if (Ns < 1e9)
    std::snprintf(Buffer, sizeof(Buffer), "%.2fms", Ns / 1e6);
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.2fs", Ns / 1e9);
  return Buffer;
}

std::string formatDouble(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

std::string formatRate(double OpsPerSec) {
  char Buffer[64];
  if (OpsPerSec < 1e3)
    std::snprintf(Buffer, sizeof(Buffer), "%.0f ops/s", OpsPerSec);
  else if (OpsPerSec < 1e6)
    std::snprintf(Buffer, sizeof(Buffer), "%.1f Kops/s", OpsPerSec / 1e3);
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.2f Mops/s", OpsPerSec / 1e6);
  return Buffer;
}

} // namespace csobj
