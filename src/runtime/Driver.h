//===- runtime/Driver.h - Generic closed-loop workload driver ---*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic multi-threaded closed-loop driver used by stress tests and
/// every benchmark binary. It is templated over an *object adapter* so
/// that all stack/queue variants (Figures 1-3, the baselines, the
/// lock-based versions) are exercised by byte-identical harness code.
///
/// Adapter contract:
///
///   struct Adapter {
///     // Perform one operation. IsPush selects push/enqueue vs
///     // pop/dequeue. Returns the outcome; adds any internal retry
///     // count to RetriesOut.
///     OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t
///                     Value, std::uint64_t &RetriesOut);
///     // Pre-populate with one element (called single-threaded).
///     void prefillOne(std::uint32_t Value);
///   };
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_RUNTIME_DRIVER_H
#define CSOBJ_RUNTIME_DRIVER_H

#include "faults/FaultInjector.h"
#include "memory/ChaosHook.h"
#include "runtime/SpinBarrier.h"
#include "runtime/Watchdog.h"
#include "runtime/Workload.h"
#include "support/SplitMix64.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

namespace csobj {

/// Runs the closed-loop workload described by \p Config against
/// \p Adapter and returns per-thread tallies plus wall-clock duration.
/// Values pushed are drawn from a per-thread stream and kept below 2^31
/// so every codec and baseline can hold them.
template <typename AdapterT>
WorkloadReport runClosedLoop(AdapterT &Adapter, const WorkloadConfig &Config) {
  // Single-threaded prefill so pops do not trivially return empty.
  const std::uint64_t PrefillCount =
      static_cast<std::uint64_t>(Config.Capacity) * Config.PrefillPercent /
      100;
  SplitMix64 PrefillRng(Config.Seed ^ 0xfeedfacecafebeefull);
  for (std::uint64_t I = 0; I < PrefillCount; ++I)
    Adapter.prefillOne(static_cast<std::uint32_t>(PrefillRng.below(1u << 31)));

  WorkloadReport Report;
  Report.PerThread.resize(Config.Threads);

  SpinBarrier StartLine(Config.Threads + 1);
  std::vector<std::thread> Workers;
  Workers.reserve(Config.Threads);

  // Shared access clock for deterministic fault plans and the liveness
  // watchdog (runtime/Watchdog.h). Both are inert when unconfigured.
  FaultClock Clock;
  Watchdog Dog(Config.Threads, Config.OpDeadlineNs);
  // When the adapter can attribute operations to paths, let stuck-op
  // reports carry the wedged thread's last completed path as a hint.
  if constexpr (requires { Adapter.lastPath(std::uint32_t{0}); })
    Dog.setPathProbe([&Adapter](std::uint32_t T) { return Adapter.lastPath(T); });
  Dog.start();

  for (std::uint32_t Tid = 0; Tid < Config.Threads; ++Tid) {
    Workers.emplace_back([&, Tid] {
      ThreadReport &Mine = Report.PerThread[Tid];
      SplitMix64 Rng = SplitMix64(Config.Seed).split(Tid);
      // Optional asynchrony injection (see memory/ChaosHook.h): emulate
      // preemption at shared-access points on single-core hosts. The
      // stall channel applies only to the configured victim thread.
      const bool StallsMe = Config.ChaosStallTid == ~std::uint32_t{0} ||
                            Config.ChaosStallTid == Tid;
      ChaosHook Chaos(Config.Seed ^ (Tid * 0x9e3779b9u),
                      Config.ChaosYieldPermille,
                      StallsMe ? Config.ChaosStallPermille : 0,
                      Config.ChaosStallGrants);
      const bool ChaosActive = Config.ChaosYieldPermille > 0 ||
                               (StallsMe && Config.ChaosStallPermille > 0);
      // Deterministic faults chain the chaos hook so both channels fire.
      FaultInjector Injector(Config.Faults, Tid, Clock,
                             ChaosActive ? &Chaos : nullptr);
      const bool FaultsActive = !Config.Faults.empty();
      std::optional<SchedHookScope> HookScope;
      if (FaultsActive)
        HookScope.emplace(Injector);
      else if (ChaosActive)
        HookScope.emplace(Chaos);
      StartLine.arriveAndWait();
      for (std::uint64_t Op = 0; Op < Config.OpsPerThread; ++Op) {
        const bool IsPush = Rng.chance(Config.PushPercent, 100);
        const std::uint32_t Value =
            static_cast<std::uint32_t>(Rng.below(1u << 31));
        const auto Begin = std::chrono::steady_clock::now();
        std::uint64_t Retries = 0;
        OpOutcome Outcome;
        Dog.arm(Tid);
        try {
          Outcome = Adapter.apply(Tid, IsPush, Value, Retries);
        } catch (const ProcessCrash &) {
          // Crash-stop: the thread is gone mid-operation. Keep partial
          // tallies; survivors' progress is what liveness tests assert.
          Dog.disarm(Tid);
          Mine.Crashed = true;
          break;
        }
        Dog.disarm(Tid);
        const auto End = std::chrono::steady_clock::now();
        const std::uint64_t LatencyNs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(End - Begin)
                .count());
        Mine.Latency.record(LatencyNs);
        // Route the same sample into the per-path histogram when the
        // adapter can say which path just retired this thread's op.
        if constexpr (requires { Adapter.lastPath(Tid); }) {
          const auto P = static_cast<unsigned>(Adapter.lastPath(Tid));
          Mine.PathLatency[std::min(P, obs::NumPaths)].record(LatencyNs);
        }
        Mine.Retries += Retries;
        switch (Outcome) {
        case OpOutcome::Ok:
          if (IsPush)
            ++Mine.Pushes;
          else
            ++Mine.Pops;
          break;
        case OpOutcome::Full:
          ++Mine.Fulls;
          break;
        case OpOutcome::Empty:
          ++Mine.Empties;
          break;
        case OpOutcome::Abort:
          ++Mine.Aborts;
          break;
        }
        spinThink(Config.ThinkTimeNs);
      }
    });
  }

  const auto RunBegin = std::chrono::steady_clock::now();
  StartLine.arriveAndWait();
  for (std::thread &Worker : Workers)
    Worker.join();
  const auto RunEnd = std::chrono::steady_clock::now();
  Dog.stop();
  Report.StuckOps = Dog.stuckCount();
  Report.DurationSec =
      std::chrono::duration_cast<std::chrono::duration<double>>(RunEnd -
                                                                RunBegin)
          .count();
  return Report;
}

} // namespace csobj

#endif // CSOBJ_RUNTIME_DRIVER_H
