//===- runtime/Stats.cpp --------------------------------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "runtime/Stats.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace csobj {

LatencyHistogram::LatencyHistogram()
    : Buckets(static_cast<std::size_t>(Exponents) * SubBuckets, 0) {}

unsigned LatencyHistogram::bucketIndex(std::uint64_t Value) {
  assert(Value >= 1 && "histogram values are clamped to >= 1");
  const unsigned Exp = 63 - static_cast<unsigned>(std::countl_zero(Value));
  unsigned Sub = 0;
  if (Exp > SubBucketBits)
    Sub = static_cast<unsigned>((Value >> (Exp - SubBucketBits)) &
                                (SubBuckets - 1));
  else
    Sub = static_cast<unsigned>(Value & (SubBuckets - 1));
  const unsigned Index = Exp * SubBuckets + Sub;
  return std::min<unsigned>(Index, Exponents * SubBuckets - 1);
}

std::uint64_t LatencyHistogram::bucketUpperEdge(unsigned Index) {
  const unsigned Exp = Index / SubBuckets;
  const unsigned Sub = Index % SubBuckets;
  if (Exp <= SubBucketBits)
    return (std::uint64_t{1} << Exp) + Sub;
  const std::uint64_t Base = std::uint64_t{1} << Exp;
  const std::uint64_t Step = std::uint64_t{1} << (Exp - SubBucketBits);
  return Base + (Sub + 1) * Step - 1;
}

void LatencyHistogram::record(std::uint64_t ValueNs) {
  const std::uint64_t Clamped = std::max<std::uint64_t>(ValueNs, 1);
  ++Buckets[bucketIndex(Clamped)];
  ++Total;
  Sum += Clamped;
  Max = std::max(Max, Clamped);
  Min = std::min(Min, Clamped);
}

void LatencyHistogram::merge(const LatencyHistogram &Other) {
  for (std::size_t I = 0; I < Buckets.size(); ++I)
    Buckets[I] += Other.Buckets[I];
  Total += Other.Total;
  Sum += Other.Sum;
  Max = std::max(Max, Other.Max);
  if (Other.Total != 0)
    Min = std::min(Min, Other.Min);
}

double LatencyHistogram::mean() const {
  return Total == 0 ? 0.0
                    : static_cast<double>(Sum) / static_cast<double>(Total);
}

std::uint64_t LatencyHistogram::valueAtQuantile(double Q) const {
  if (Total == 0)
    return 0;
  const double Clamped = std::clamp(Q, 0.0, 1.0);
  const std::uint64_t Rank = static_cast<std::uint64_t>(
      std::ceil(Clamped * static_cast<double>(Total)));
  std::uint64_t Seen = 0;
  for (std::size_t I = 0; I < Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank && Buckets[I] != 0)
      return bucketUpperEdge(static_cast<unsigned>(I));
  }
  return Max;
}

void LatencyHistogram::reset() {
  std::fill(Buckets.begin(), Buckets.end(), 0);
  Total = 0;
  Sum = 0;
  Max = 0;
  Min = ~std::uint64_t{0};
}

double jainFairnessIndex(const std::vector<double> &Scores) {
  if (Scores.empty())
    return 1.0;
  double Sum = 0.0;
  double SumSquares = 0.0;
  for (double S : Scores) {
    Sum += S;
    SumSquares += S * S;
  }
  if (SumSquares == 0.0)
    return 1.0;
  return (Sum * Sum) / (static_cast<double>(Scores.size()) * SumSquares);
}

LatencySummary summarize(const LatencyHistogram &Histogram) {
  LatencySummary Summary;
  Summary.Count = Histogram.count();
  Summary.MeanNs = Histogram.mean();
  Summary.P50Ns = Histogram.valueAtQuantile(0.50);
  Summary.P99Ns = Histogram.valueAtQuantile(0.99);
  Summary.MaxNs = Histogram.maxValue();
  return Summary;
}

} // namespace csobj
