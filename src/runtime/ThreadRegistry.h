//===- runtime/ThreadRegistry.h - Dense process identities ------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's computation model names processes p_1..p_n; Figure 3 and
/// several locks need a dense id per participating thread (FLAG[i],
/// per-process queue nodes). ThreadRegistry hands out such ids. Ids are
/// handed out once and recycled explicitly (ScopedThreadId), so a fixed
/// pool of worker threads maps 1:1 onto the paper's processes.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_RUNTIME_THREADREGISTRY_H
#define CSOBJ_RUNTIME_THREADREGISTRY_H

#include <cstdint>

#include <mutex>
#include <vector>

namespace csobj {

/// Hands out dense ids 0..Capacity-1 to cooperating threads.
class ThreadRegistry {
public:
  explicit ThreadRegistry(std::uint32_t Capacity);

  /// Claims a free id. Asserts (and aborts) if more than Capacity threads
  /// register simultaneously — that would violate the paper's n-process
  /// model the client chose at construction.
  std::uint32_t acquire();

  /// Returns an id to the pool.
  void release(std::uint32_t Id);

  std::uint32_t capacity() const { return CapacityN; }

  /// Number of ids currently held.
  std::uint32_t activeCount() const;

private:
  const std::uint32_t CapacityN;
  mutable std::mutex Mutex;
  std::vector<bool> InUse;
  std::uint32_t Active = 0;
};

/// RAII id claim.
class ScopedThreadId {
public:
  explicit ScopedThreadId(ThreadRegistry &Registry)
      : Registry(Registry), Id(Registry.acquire()) {}

  ScopedThreadId(const ScopedThreadId &) = delete;
  ScopedThreadId &operator=(const ScopedThreadId &) = delete;

  ~ScopedThreadId() { Registry.release(Id); }

  std::uint32_t id() const { return Id; }

private:
  ThreadRegistry &Registry;
  std::uint32_t Id;
};

} // namespace csobj

#endif // CSOBJ_RUNTIME_THREADREGISTRY_H
