//===- runtime/TablePrinter.h - Fixed-width result tables -------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fixed-width table printer shared by all benchmark binaries so
/// EXPERIMENTS.md can quote uniform output. Also provides the number
/// formatting helpers (ns with unit scaling, rates, ratios).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_RUNTIME_TABLEPRINTER_H
#define CSOBJ_RUNTIME_TABLEPRINTER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace csobj {

/// Accumulates rows of strings and prints them with aligned columns.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Adds one row; must have as many cells as the header.
  void addRow(std::vector<std::string> Row);

  /// Prints title (if any), header, separator and rows to \p OS.
  void print(std::ostream &OS) const;

  void setTitle(std::string T) { Title = std::move(T); }

private:
  std::string Title;
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats nanoseconds with a scaled unit (ns / us / ms / s).
std::string formatNs(double Ns);

/// Formats a double with \p Decimals fraction digits.
std::string formatDouble(double Value, int Decimals = 2);

/// Formats ops/sec with a scaled unit (ops/s, Kops/s, Mops/s).
std::string formatRate(double OpsPerSec);

} // namespace csobj

#endif // CSOBJ_RUNTIME_TABLEPRINTER_H
