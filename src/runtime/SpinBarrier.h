//===- runtime/SpinBarrier.h - Start-line barrier ---------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sense-reversing barrier used to release all benchmark/test workers at
/// the same instant, so measured windows contain only steady-state work.
/// Spins politely (pause -> yield escalation) and is therefore safe on
/// oversubscribed hosts.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_RUNTIME_SPINBARRIER_H
#define CSOBJ_RUNTIME_SPINBARRIER_H

#include "support/SpinWait.h"

#include <atomic>
#include <cstdint>

namespace csobj {

/// Reusable sense-reversing spin barrier for a fixed party count.
class SpinBarrier {
public:
  explicit SpinBarrier(std::uint32_t Parties)
      : Parties(Parties), Remaining(Parties) {}

  /// Blocks until all parties arrive. Reusable across rounds.
  void arriveAndWait() {
    const bool MySense = !Sense.load(std::memory_order_relaxed);
    if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arrival: reset and flip the sense to release everyone.
      Remaining.store(Parties, std::memory_order_relaxed);
      Sense.store(MySense, std::memory_order_release);
      return;
    }
    SpinWait Waiter;
    while (Sense.load(std::memory_order_acquire) != MySense)
      Waiter.once();
  }

private:
  const std::uint32_t Parties;
  std::atomic<std::uint32_t> Remaining;
  std::atomic<bool> Sense{false};
};

} // namespace csobj

#endif // CSOBJ_RUNTIME_SPINBARRIER_H
