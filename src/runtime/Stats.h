//===- runtime/Stats.h - Latency histograms & fairness ----------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measurement plumbing for the benchmark harness:
///
///  * LatencyHistogram — HDR-style log/linear histogram of nanosecond
///    latencies; constant memory, constant-time record, mergeable across
///    threads, percentile queries. The starvation experiments (E4, E6)
///    need faithful *tails*, which sampled means would hide.
///  * jainFairnessIndex — the classic (sum x)^2 / (n * sum x^2) fairness
///    score over per-thread completion counts; 1.0 = perfectly fair.
///    Starvation-freedom shows up as the index staying near 1 while
///    unfair locks drift toward 1/n.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_RUNTIME_STATS_H
#define CSOBJ_RUNTIME_STATS_H

#include <cstdint>
#include <vector>

namespace csobj {

/// Log/linear histogram for values in [1, ~2^62] ns.
///
/// Values are bucketed by (exponent of the highest set bit, next
/// SubBucketBits bits), giving a relative quantization error below
/// 1 / 2^SubBucketBits — ample for latency percentiles.
class LatencyHistogram {
public:
  static constexpr unsigned SubBucketBits = 5;
  static constexpr unsigned SubBuckets = 1u << SubBucketBits;
  static constexpr unsigned Exponents = 63;

  LatencyHistogram();

  /// Records one value (clamped to >= 1).
  void record(std::uint64_t ValueNs);

  /// Adds all samples of \p Other into this histogram.
  void merge(const LatencyHistogram &Other);

  std::uint64_t count() const { return Total; }
  std::uint64_t maxValue() const { return Max; }

  /// Exact smallest recorded value (0 when empty). Tracked directly like
  /// Max: deriving it from the first non-empty bucket's upper edge, as an
  /// earlier version did, biased the reported minimum upward by up to one
  /// bucket width (~3% relative, but absolute error grows with the
  /// exponent — hundreds of ns for microsecond-scale fast paths).
  std::uint64_t minValue() const { return Total == 0 ? 0 : Min; }

  double mean() const;

  /// Value at quantile \p Q in [0, 1] (0.5 = median). Returns the upper
  /// edge of the containing bucket; 0 when empty.
  std::uint64_t valueAtQuantile(double Q) const;

  /// Clears all recorded samples.
  void reset();

private:
  static unsigned bucketIndex(std::uint64_t Value);
  static std::uint64_t bucketUpperEdge(unsigned Index);

  std::vector<std::uint64_t> Buckets;
  std::uint64_t Total = 0;
  std::uint64_t Sum = 0;
  std::uint64_t Max = 0;
  std::uint64_t Min = ~std::uint64_t{0}; ///< Sentinel until first record().
};

/// Jain's fairness index over per-thread scores; 1 = perfectly fair,
/// 1/n = one thread got everything. Returns 1 for empty/all-zero input.
double jainFairnessIndex(const std::vector<double> &Scores);

/// Convenience summary of a histogram for table printing.
struct LatencySummary {
  std::uint64_t Count = 0;
  double MeanNs = 0;
  std::uint64_t P50Ns = 0;
  std::uint64_t P99Ns = 0;
  std::uint64_t MaxNs = 0;
};

LatencySummary summarize(const LatencyHistogram &Histogram);

} // namespace csobj

#endif // CSOBJ_RUNTIME_STATS_H
