//===- runtime/Workload.cpp -----------------------------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "runtime/Workload.h"

#include <algorithm>
#include <chrono>

namespace csobj {

std::uint64_t WorkloadReport::totalOps() const {
  std::uint64_t Total = 0;
  for (const ThreadReport &R : PerThread)
    Total += R.completedOps();
  return Total;
}

std::uint32_t WorkloadReport::crashedThreads() const {
  std::uint32_t Count = 0;
  for (const ThreadReport &R : PerThread)
    if (R.Crashed)
      ++Count;
  return Count;
}

std::uint64_t WorkloadReport::totalAborts() const {
  std::uint64_t Total = 0;
  for (const ThreadReport &R : PerThread)
    Total += R.Aborts;
  return Total;
}

std::uint64_t WorkloadReport::totalRetries() const {
  std::uint64_t Total = 0;
  for (const ThreadReport &R : PerThread)
    Total += R.Retries;
  return Total;
}

double WorkloadReport::throughputOpsPerSec() const {
  if (DurationSec <= 0)
    return 0;
  return static_cast<double>(totalOps()) / DurationSec;
}

double WorkloadReport::abortRate() const {
  const std::uint64_t Total = totalOps();
  if (Total == 0)
    return 0;
  return static_cast<double>(totalAborts()) / static_cast<double>(Total);
}

double WorkloadReport::meanRetries() const {
  const std::uint64_t Total = totalOps();
  if (Total == 0)
    return 0;
  return static_cast<double>(totalRetries()) / static_cast<double>(Total);
}

double WorkloadReport::fairness() const {
  std::vector<double> Scores;
  Scores.reserve(PerThread.size());
  for (const ThreadReport &R : PerThread)
    Scores.push_back(static_cast<double>(R.completedOps()));
  return jainFairnessIndex(Scores);
}

double WorkloadReport::meanLatencyRatio() const {
  double Min = 0, Max = 0;
  bool First = true;
  for (const ThreadReport &R : PerThread) {
    if (R.Latency.count() == 0)
      continue;
    const double Mean = R.Latency.mean();
    if (First) {
      Min = Max = Mean;
      First = false;
    } else {
      Min = std::min(Min, Mean);
      Max = std::max(Max, Mean);
    }
  }
  if (First || Min <= 0)
    return 1.0;
  return Max / Min;
}

LatencyHistogram WorkloadReport::mergedLatency() const {
  LatencyHistogram Merged;
  for (const ThreadReport &R : PerThread)
    Merged.merge(R.Latency);
  return Merged;
}

LatencyHistogram WorkloadReport::mergedPathLatency(obs::Path P) const {
  LatencyHistogram Merged;
  const unsigned Index =
      std::min<unsigned>(static_cast<unsigned>(P), obs::NumPaths);
  for (const ThreadReport &R : PerThread)
    Merged.merge(R.PathLatency[Index]);
  return Merged;
}

void spinThink(std::uint32_t Ns) {
  if (Ns == 0)
    return;
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(Ns);
  // Pure local spin: think time must not touch shared memory, otherwise
  // it would itself perturb the contention the workload dials in.
  while (std::chrono::steady_clock::now() < Deadline) {
  }
}

} // namespace csobj
