//===- runtime/Watchdog.h - Per-operation deadline monitor ------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Liveness oracle for wall-clock runs. Each worker arms a per-thread
/// slot with its operation's start time and disarms it on completion; a
/// monitor thread samples the slots and records every operation that
/// overstays its deadline. With fault injection active
/// (faults/FaultInjector.h) this turns "survivors must keep completing
/// after a crash" from hope into an assertion: a run of the crash-
/// tolerant construction reports zero stuck operations, while the plain
/// Figure 3 construction under a lock-holder crash is *caught* hanging
/// rather than hanging the test suite.
///
/// The slots are plain atomics, written once per operation — harness
/// accounting, invisible to the access counter and the explorer.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_RUNTIME_WATCHDOG_H
#define CSOBJ_RUNTIME_WATCHDOG_H

#include "obs/PathCounters.h"
#include "support/CacheLine.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csobj {

/// One stuck-operation observation.
struct StuckOpReport {
  std::uint32_t Tid = 0;
  std::uint64_t ObservedNs = 0; ///< Age of the operation when caught.
  /// Terminal path of the thread's last *completed* operation (None when
  /// no path probe was installed). A wedged thread whose last op retired
  /// via Lock points at the doorway/lock machinery; one whose last op was
  /// a Shortcut suggests the hang began before any slow-path entry.
  obs::Path PathHint = obs::Path::None;
};

/// Deadline monitor over per-thread operation slots. Usage:
///
///   Watchdog Dog(Threads, DeadlineNs);
///   Dog.start();
///   ... worker Tid: Dog.arm(Tid); op(); Dog.disarm(Tid); ...
///   Dog.stop();
///   Dog.stuckReports();
///
/// An operation is reported at most once (the slot's arm timestamp is
/// its identity). A disarm after a report is fine — the report stands as
/// evidence the deadline was crossed, which is what liveness tests
/// assert on.
///
/// The watchdog is re-armable: stop()/start() cycles reuse the same
/// instance (slots, totals, and undrained reports survive), so a soak
/// harness can pause monitoring between phases without reconstruction.
/// For window-granular accounting, drainReports() hands back everything
/// observed since the previous drain while stuckCount() keeps the
/// lifetime total — the soak collector drains once per window and
/// reports per-window stuck-op counts instead of a single terminal
/// number.
class Watchdog {
public:
  Watchdog(std::uint32_t NumThreads, std::uint64_t DeadlineNs,
           std::uint64_t PollIntervalNs = 1000 * 1000)
      : DeadlineNs(DeadlineNs), PollIntervalNs(PollIntervalNs),
        Slots(NumThreads) {}

  ~Watchdog() { stop(); }

  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// Arms the calling worker's slot with the current time. Free when
  /// the watchdog is disabled — benches run with deadline 0, and a
  /// clock read per operation would distort their per-op costs.
  void arm(std::uint32_t Tid) {
    if (DeadlineNs == 0)
      return;
    Slots[Tid].value().Armed.store(nowNs(), std::memory_order_release);
  }

  /// Clears the calling worker's slot.
  void disarm(std::uint32_t Tid) {
    if (DeadlineNs == 0)
      return;
    Slots[Tid].value().Armed.store(0, std::memory_order_release);
  }

  /// Starts the monitor thread. No-op when the deadline is 0 (disabled).
  void start() {
    if (DeadlineNs == 0 || Monitor.joinable())
      return;
    Stopping.store(false, std::memory_order_relaxed);
    Monitor = std::thread([this] { monitorLoop(); });
  }

  /// Stops the monitor thread and performs one final scan, so stuck
  /// operations still in flight at shutdown are not missed.
  void stop() {
    if (!Monitor.joinable())
      return;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Stopping.store(true, std::memory_order_relaxed);
    }
    Cv.notify_all();
    Monitor.join();
    scanOnce();
  }

  /// Number of operations caught over deadline so far — a lifetime
  /// total, unaffected by drainReports().
  std::uint64_t stuckCount() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return TotalReported;
  }

  /// All stuck-operation observations since the last drainReports()
  /// (or ever, when nothing was drained).
  std::vector<StuckOpReport> stuckReports() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Reports;
  }

  /// Hands back every observation since the previous drain and clears
  /// the buffer; stuckCount() keeps counting across drains. This is the
  /// per-window collection channel for long soaks — without it the
  /// report vector grows for the whole run and windows cannot be told
  /// apart.
  std::vector<StuckOpReport> drainReports() {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::vector<StuckOpReport> Out;
    Out.swap(Reports);
    return Out;
  }

  std::uint64_t deadlineNs() const { return DeadlineNs; }

  /// Installs a per-thread path probe (typically the adapter's
  /// lastPath(Tid)) consulted when a stuck operation is reported. Must be
  /// set before start(); the probe must be safe to call from the monitor
  /// thread (MetricSink::lastPath is a relaxed load, so it is).
  void setPathProbe(std::function<obs::Path(std::uint32_t)> Probe) {
    PathProbe = std::move(Probe);
  }

private:
  struct Slot {
    std::atomic<std::uint64_t> Armed{0};    ///< Op start time, 0 = idle.
    std::atomic<std::uint64_t> Reported{0}; ///< Start time already reported.
  };

  static std::uint64_t nowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void scanOnce() {
    const std::uint64_t Now = nowNs();
    for (std::uint32_t Tid = 0; Tid < Slots.size(); ++Tid) {
      Slot &S = Slots[Tid].value();
      const std::uint64_t Armed = S.Armed.load(std::memory_order_acquire);
      if (Armed == 0 || Now - Armed < DeadlineNs)
        continue;
      if (S.Reported.load(std::memory_order_relaxed) == Armed)
        continue; // This operation was already reported.
      S.Reported.store(Armed, std::memory_order_relaxed);
      const obs::Path Hint = PathProbe ? PathProbe(Tid) : obs::Path::None;
      std::lock_guard<std::mutex> Lock(Mutex);
      Reports.push_back({Tid, Now - Armed, Hint});
      ++TotalReported;
    }
  }

  void monitorLoop() {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (!Stopping.load(std::memory_order_relaxed)) {
      Cv.wait_for(Lock, std::chrono::nanoseconds(PollIntervalNs), [this] {
        return Stopping.load(std::memory_order_relaxed);
      });
      Lock.unlock();
      scanOnce();
      Lock.lock();
    }
  }

  const std::uint64_t DeadlineNs;
  const std::uint64_t PollIntervalNs;
  std::vector<CacheLinePadded<Slot>> Slots;
  mutable std::mutex Mutex;
  std::condition_variable Cv;
  std::atomic<bool> Stopping{false};
  std::thread Monitor;
  std::vector<StuckOpReport> Reports;
  std::uint64_t TotalReported = 0;
  std::function<obs::Path(std::uint32_t)> PathProbe;
};

} // namespace csobj

#endif // CSOBJ_RUNTIME_WATCHDOG_H
