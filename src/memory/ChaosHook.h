//===- memory/ChaosHook.h - Asynchrony injection ----------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized preemption at shared-memory access points. The paper's
/// model has n *asynchronous* processes whose shared accesses interleave
/// arbitrarily; on a single-core host, OS timeslices are so long relative
/// to an operation (~tens of ns) that two operations practically never
/// overlap and contention effects vanish. Installing a ChaosHook makes a
/// thread yield the core with a configurable probability immediately
/// before each shared access — precisely the points where interleaving
/// matters — restoring the adversarial asynchrony the paper reasons
/// about. All implementations are measured under the same hook, so
/// comparisons remain like-for-like.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_MEMORY_CHAOSHOOK_H
#define CSOBJ_MEMORY_CHAOSHOOK_H

#include "memory/SchedHook.h"
#include "support/SplitMix64.h"

#include <cstdint>
#include <thread>

namespace csobj {

/// Yields before a shared access with probability YieldPermille / 1000.
class ChaosHook final : public SchedHook {
public:
  ChaosHook(std::uint64_t Seed, std::uint32_t YieldPermille)
      : Rng(Seed), Permille(YieldPermille) {}

  void beforeSharedAccess(AccessKind Kind) override {
    (void)Kind;
    if (Rng.below(1000) < Permille)
      std::this_thread::yield();
  }

private:
  SplitMix64 Rng;
  std::uint32_t Permille;
};

} // namespace csobj

#endif // CSOBJ_MEMORY_CHAOSHOOK_H
