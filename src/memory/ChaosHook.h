//===- memory/ChaosHook.h - Asynchrony injection ----------------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized preemption at shared-memory access points. The paper's
/// model has n *asynchronous* processes whose shared accesses interleave
/// arbitrarily; on a single-core host, OS timeslices are so long relative
/// to an operation (~tens of ns) that two operations practically never
/// overlap and contention effects vanish. Installing a ChaosHook makes a
/// thread yield the core with a configurable probability immediately
/// before each shared access — precisely the points where interleaving
/// matters — restoring the adversarial asynchrony the paper reasons
/// about. All implementations are measured under the same hook, so
/// comparisons remain like-for-like.
///
/// Two injection channels:
///
///  * yield (YieldPermille)  — surrender the timeslice once; models an
///    ordinary preemption.
///  * stall (StallPermille / StallGrants) — hold the thread until
///    StallGrants shared accesses by *other* hooked threads have been
///    granted (measured on a process-wide access clock). This models the
///    long preemption that expires a lease (locks/LeasedLock.h): the
///    victim is gone long enough for waiters' patience budgets to run
///    out, then comes back alive — the false-suspicion scenario the
///    crash-tolerant slow path must absorb. When the rest of the system
///    is idle the stall expires after a bounded number of yields rather
///    than deadlocking a solo run.
///
/// Benchmarks expose both knobs through the CSOBJ_CHAOS environment
/// variable (bench/BenchCommon.h), so any bench can run chaos mode
/// without recompiling.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_MEMORY_CHAOSHOOK_H
#define CSOBJ_MEMORY_CHAOSHOOK_H

#include "memory/SchedHook.h"
#include "support/SplitMix64.h"

#include <atomic>
#include <cstdint>
#include <thread>

namespace csobj {

/// Yields or stalls before a shared access with the configured
/// per-mille probabilities.
class ChaosHook final : public SchedHook {
public:
  ChaosHook(std::uint64_t Seed, std::uint32_t YieldPermille,
            std::uint32_t StallPermille = 0, std::uint64_t StallGrants = 0)
      : Rng(Seed), Permille(YieldPermille), StallPermille(StallPermille),
        StallGrants(StallGrants) {}

  void beforeSharedAccess(AccessKind Kind) override {
    (void)Kind;
    // Tick the shared access clock: this access is about to be granted.
    AccessClock.fetch_add(1, std::memory_order_relaxed);
    if (StallPermille > 0 && Rng.below(1000) < StallPermille)
      stall();
    if (Rng.below(1000) < Permille)
      std::this_thread::yield();
  }

  /// Total stalls this hook instance executed (test aid).
  std::uint64_t stallsTaken() const { return Stalls; }

private:
  void stall() {
    ++Stalls;
    const std::uint64_t Start = AccessClock.load(std::memory_order_relaxed);
    std::uint64_t LastSeen = Start;
    std::uint32_t Idle = 0;
    // Own accesses are suspended for the duration, so every clock tick
    // is a grant to some other thread.
    while (AccessClock.load(std::memory_order_relaxed) - Start <
           StallGrants) {
      std::this_thread::yield();
      const std::uint64_t Now =
          AccessClock.load(std::memory_order_relaxed);
      if (Now == LastSeen) {
        // No foreign progress. Expire after a bounded quiet spell: the
        // rest of the system is idle, finished, or itself stalled (two
        // stalled threads must not wait out each other's grant budget).
        if (++Idle > IdleYieldCap)
          break;
      } else {
        LastSeen = Now;
        Idle = 0;
      }
    }
  }

  /// Consecutive progress-free yields before a stall expires early.
  static constexpr std::uint32_t IdleYieldCap = 512;

  /// Process-wide clock of hooked shared accesses. Statistical chaos
  /// only — the deterministic fault plans of faults/FaultInjector.h keep
  /// their own per-run clock.
  inline static std::atomic<std::uint64_t> AccessClock{0};

  SplitMix64 Rng;
  std::uint32_t Permille;
  std::uint32_t StallPermille;
  std::uint64_t StallGrants;
  std::uint64_t Stalls = 0;
};

} // namespace csobj

#endif // CSOBJ_MEMORY_CHAOSHOOK_H
