//===- memory/RegisterPolicy.h - Register instrumentation policy *- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time policies selecting how much harness an AtomicRegister
/// carries on every shared-memory access:
///
///  * Instrumented — the measurement substrate. Every access routes
///    through the scheduling hook (memory/SchedHook.h) and the access
///    accountant (memory/AccessCounter.h). This is what the paper's
///    "six shared-memory accesses" experiments, the lincheck stress
///    tests and the interleaving explorer require, and it is the
///    default everywhere.
///
///  * Fast — the shipping substrate. An access is a bare std::atomic
///    operation: zero thread-local loads, zero branches, nothing
///    between the algorithm and the hardware. Wall-clock benchmarks
///    compile against this policy so they measure the algorithm rather
///    than the harness. The interleaving explorer and access-count
///    oracles cannot observe Fast registers — tests that rely on either
///    must use Instrumented.
///
/// Every register-bearing template in the library (AtomicRegister, the
/// stacks and queues, the locks, the arbiter, the baselines) takes the
/// policy as its trailing template parameter, defaulted to
/// DefaultRegisterPolicy. Configuring CMake with -DCSOBJ_FAST_REGISTERS=ON
/// flips the library-wide default to Fast; benchmark binaries instantiate
/// both policies explicitly regardless of the default.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_MEMORY_REGISTERPOLICY_H
#define CSOBJ_MEMORY_REGISTERPOLICY_H

#include "memory/AccessCounter.h"
#include "memory/SchedHook.h"

namespace csobj {

/// Register policy routing every access through the thread-local
/// scheduling hook and access accountant (the current library default).
struct Instrumented {
  static constexpr const char *Name = "instrumented";

  static void preAccess(AccessKind Kind) { detail::preAccess(Kind); }
  static void noteRead() { detail::noteRead(); }
  static void noteWrite() { detail::noteWrite(); }
  static void noteCas(bool Succeeded) { detail::noteCas(Succeeded); }
  static void noteRmw() { detail::noteRmw(); }
};

/// Register policy compiling every access down to the bare std::atomic
/// operation. Invisible to the access counter and the explorer.
struct Fast {
  static constexpr const char *Name = "fast";

  static void preAccess(AccessKind) {}
  static void noteRead() {}
  static void noteWrite() {}
  static void noteCas(bool) {}
  static void noteRmw() {}
};

/// Library-wide default register policy. Instrumented unless the build
/// sets CSOBJ_FAST_REGISTERS (CMake option of the same name).
/// CSOBJ_FORCE_INSTRUMENTED_DEFAULT wins over both: the test suite pins
/// it per-target because its oracles (access counts, the interleaving
/// explorer, chaos injection) only exist on the Instrumented substrate —
/// Fast-policy behaviour is covered by explicit instantiations in
/// tests/register_policy_test.cpp and tests/contention_manager_test.cpp.
#if defined(CSOBJ_FORCE_INSTRUMENTED_DEFAULT)
using DefaultRegisterPolicy = Instrumented;
#elif defined(CSOBJ_FAST_REGISTERS) && CSOBJ_FAST_REGISTERS
using DefaultRegisterPolicy = Fast;
#else
using DefaultRegisterPolicy = Instrumented;
#endif

} // namespace csobj

#endif // CSOBJ_MEMORY_REGISTERPOLICY_H
