//===- memory/AccessCounter.h - Shared-memory access accounting -*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread accounting of shared-memory accesses. The paper's headline
/// efficiency claim is stated in *number of shared-memory accesses* (a
/// contention-free strong operation performs six). Every AtomicRegister
/// operation reports itself here; installing an AccessCounterScope on a
/// thread makes the counts observable, and experiment E1 regenerates the
/// paper's numbers from them. When no scope is installed the cost is a
/// thread-local load and a predictable branch.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_MEMORY_ACCESSCOUNTER_H
#define CSOBJ_MEMORY_ACCESSCOUNTER_H

#include <cstdint>

namespace csobj {

/// Counts of shared-memory accesses by kind, as the paper counts them:
/// one read, one write, or one Compare&Swap invocation each count as one
/// access, regardless of success.
struct AccessCounts {
  std::uint64_t Reads = 0;
  std::uint64_t Writes = 0;
  std::uint64_t CasAttempts = 0;
  std::uint64_t CasFailures = 0;
  std::uint64_t Rmw = 0; ///< Other read-modify-writes (exchange, fetch-add).

  /// Total accesses in the paper's counting convention.
  std::uint64_t total() const { return Reads + Writes + CasAttempts + Rmw; }

  AccessCounts operator-(const AccessCounts &Other) const {
    AccessCounts Delta;
    Delta.Reads = Reads - Other.Reads;
    Delta.Writes = Writes - Other.Writes;
    Delta.CasAttempts = CasAttempts - Other.CasAttempts;
    Delta.CasFailures = CasFailures - Other.CasFailures;
    Delta.Rmw = Rmw - Other.Rmw;
    return Delta;
  }

  bool operator==(const AccessCounts &Other) const = default;
};

namespace detail {
/// Active counter sink of the calling thread, or nullptr when accounting
/// is off. Managed by AccessCounterScope.
extern thread_local AccessCounts *ActiveAccessCounts;
} // namespace detail

/// RAII installer: while alive, all AtomicRegister accesses performed by
/// this thread are tallied into the given AccessCounts. Scopes nest; the
/// innermost wins (the outer scope misses the inner accesses, matching
/// lexical intuition for "count just this call").
class AccessCounterScope {
public:
  explicit AccessCounterScope(AccessCounts &Sink)
      : Previous(detail::ActiveAccessCounts) {
    detail::ActiveAccessCounts = &Sink;
  }

  AccessCounterScope(const AccessCounterScope &) = delete;
  AccessCounterScope &operator=(const AccessCounterScope &) = delete;

  ~AccessCounterScope() { detail::ActiveAccessCounts = Previous; }

private:
  AccessCounts *Previous;
};

/// Counts the shared-memory accesses performed by \p Body on this thread.
template <typename BodyFn>
AccessCounts countAccesses(BodyFn Body) {
  AccessCounts Counts;
  {
    AccessCounterScope Scope(Counts);
    Body();
  }
  return Counts;
}

namespace detail {
inline void noteRead() {
  if (AccessCounts *C = ActiveAccessCounts)
    ++C->Reads;
}
inline void noteWrite() {
  if (AccessCounts *C = ActiveAccessCounts)
    ++C->Writes;
}
inline void noteCas(bool Succeeded) {
  if (AccessCounts *C = ActiveAccessCounts) {
    ++C->CasAttempts;
    if (!Succeeded)
      ++C->CasFailures;
  }
}
inline void noteRmw() {
  if (AccessCounts *C = ActiveAccessCounts)
    ++C->Rmw;
}
} // namespace detail

} // namespace csobj

#endif // CSOBJ_MEMORY_ACCESSCOUNTER_H
