//===- memory/HazardDomain.h - Hazard-pointer reclamation domain -*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Safe-memory-reclamation substrate (Michael's hazard pointers, adapted
/// to this library's logical-thread-id world). The unbounded objects
/// (core/UnboundedStack.h, core/UnboundedQueue.h) and the reclaiming
/// skip list (core/SkipListCore.h) retire storage through a HazardDomain
/// instead of freeing it, and readers publish the pointer they are about
/// to dereference into a per-thread hazard slot first; a retired object
/// is recycled only once no slot names it.
///
/// Everything here lives on the *reclamation channel*: plain std::atomic
/// operations, invisible to the AccessCounter oracle and the
/// interleaving explorer, exactly like the MetricSink stores of the obs
/// layer. The paper's algorithms run on an assumed infinite array; the
/// hazard machinery is the memory system that materializes that array,
/// not part of the algorithms' shared-memory access count. This also
/// makes every HazardDomain operation *crash-atomic*: the fault
/// injectors (SimulatedCrash, ProcessCrash, campaign stalls) fire only
/// from instrumented preAccess hooks, and no such access occurs inside
/// protect/clear/retire/scan — a crash can strand a published hazard
/// (bounded: it pins at most SlotsPerThread objects until the thread is
/// resurrected and publishes again) but can never tear a retire list or
/// double-free.
///
/// Identity is the *logical* thread id (the paper's process id), not
/// thread_local state: the interleaving explorer multiplexes logical
/// threads onto one OS thread, and the soak harness resurrects a crashed
/// worker under the same id — in both cases the hazard slots and the
/// retire list follow the id, so a resurrected worker inherits (and
/// eventually drains) its predecessor's retired backlog.
///
/// Bounds. With n threads and s slots each (H = n*s total hazards), a
/// thread scans once its retire list reaches 2*H entries; a scan frees
/// every entry not currently hazarded, so at most H survive. The
/// per-thread backlog is therefore bounded by 2*H = O(threads x slots),
/// the whole-domain backlog by 2*n*H, and each scan frees at least H
/// entries — amortized O(1) reclamation work per retire.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_MEMORY_HAZARDDOMAIN_H
#define CSOBJ_MEMORY_HAZARDDOMAIN_H

#include "support/CacheLine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace csobj {

/// A hazard-pointer domain: per-thread publication slots plus per-thread
/// retire lists with amortized scan-and-recycle.
class HazardDomain {
public:
  /// Recycler invoked for an object once no hazard names it. \p Ctx is
  /// the pool (or other owner) the object returns to.
  using RecycleFn = void (*)(void *Obj, void *Ctx);

  HazardDomain(std::uint32_t NumThreads, std::uint32_t SlotsPerThread)
      : N(NumThreads), Slots(SlotsPerThread),
        Stride(roundUpToLine(SlotsPerThread)),
        Hazards(std::make_unique<std::atomic<const void *>[]>(
            static_cast<std::size_t>(NumThreads) * Stride)),
        Retired(NumThreads) {
    assert(NumThreads >= 1 && "need at least one thread");
    assert(SlotsPerThread >= 1 && "need at least one hazard slot");
    for (std::size_t I = 0; I < static_cast<std::size_t>(N) * Stride; ++I)
      Hazards[I].store(nullptr, std::memory_order_relaxed);
  }

  HazardDomain(const HazardDomain &) = delete;
  HazardDomain &operator=(const HazardDomain &) = delete;

  /// Dropped entries are NOT recycled on destruction: every retired
  /// object is owned by a pool that frees its storage wholesale, so
  /// running the callbacks here would be pure bookkeeping on a dying
  /// object graph (and would impose a destruction order between the
  /// domain and its pools).
  ~HazardDomain() = default;

  /// Publishes \p Ptr in slot \p Slot of thread \p Tid. seq_cst: the
  /// store must be ordered before the caller's validation re-read
  /// (store-load), which is what makes the protect/validate handshake
  /// sound against a concurrent unlink-then-scan.
  void protect(std::uint32_t Tid, std::uint32_t Slot, const void *Ptr) {
    assert(Tid < N && Slot < Slots && "hazard slot out of range");
    Hazards[static_cast<std::size_t>(Tid) * Stride + Slot].store(
        Ptr, std::memory_order_seq_cst);
  }

  /// Clears one slot. Release suffices: nothing is validated against a
  /// clear; it only *allows* future recycling.
  void clear(std::uint32_t Tid, std::uint32_t Slot) {
    assert(Tid < N && Slot < Slots && "hazard slot out of range");
    Hazards[static_cast<std::size_t>(Tid) * Stride + Slot].store(
        nullptr, std::memory_order_release);
  }

  /// Clears every slot of \p Tid (operation epilogue / crash recovery).
  void clearAll(std::uint32_t Tid) {
    for (std::uint32_t S = 0; S < Slots; ++S)
      clear(Tid, S);
  }

  /// Currently published pointer (test oracle).
  const void *protectedForTesting(std::uint32_t Tid,
                                  std::uint32_t Slot) const {
    return Hazards[static_cast<std::size_t>(Tid) * Stride + Slot].load(
        std::memory_order_seq_cst);
  }

  /// Hands \p Obj to the domain for deferred recycling. The caller must
  /// be the object's unique retirer (it won the unlink CAS), and the
  /// object must already be unreachable from the shared structure.
  /// Triggers an amortized scan once this thread's list reaches the
  /// threshold.
  void retire(std::uint32_t Tid, void *Obj, RecycleFn Recycle, void *Ctx) {
    assert(Tid < N && "thread id out of range");
    RetireBlock &B = Retired[Tid];
    B.List.push_back(Entry{Obj, Recycle, Ctx});
    B.Count.store(B.List.size(), std::memory_order_relaxed);
    noteHighWater(B.List.size());
    if (B.List.size() >= scanThreshold())
      (void)scan(Tid);
  }

  /// Recycles every entry of \p Tid's retire list that no hazard slot
  /// names. Returns the number recycled. Only \p Tid (or its
  /// single-threaded resurrection) may call this.
  std::size_t scan(std::uint32_t Tid) {
    assert(Tid < N && "thread id out of range");
    RetireBlock &B = Retired[Tid];
    if (B.List.empty())
      return 0;
    // Snapshot all published hazards. seq_cst loads pair with the
    // seq_cst protect stores: any reader whose validate succeeded
    // against the pre-unlink structure has its hazard visible here.
    std::vector<const void *> Live;
    Live.reserve(static_cast<std::size_t>(N) * Slots);
    for (std::uint32_t T = 0; T < N; ++T)
      for (std::uint32_t S = 0; S < Slots; ++S) {
        const void *P =
            Hazards[static_cast<std::size_t>(T) * Stride + S].load(
                std::memory_order_seq_cst);
        if (P)
          Live.push_back(P);
      }
    std::sort(Live.begin(), Live.end());
    std::size_t Freed = 0;
    std::size_t Keep = 0;
    for (std::size_t I = 0; I < B.List.size(); ++I) {
      const Entry &E = B.List[I];
      if (std::binary_search(Live.begin(), Live.end(),
                             static_cast<const void *>(E.Obj))) {
        B.List[Keep++] = E;
        continue;
      }
      E.Recycle(E.Obj, E.Ctx);
      ++Freed;
    }
    B.List.resize(Keep);
    B.Count.store(Keep, std::memory_order_relaxed);
    return Freed;
  }

  /// Scans every thread's retire list. Quiescent use only (bench
  /// steady-state measurement, test teardown): retire lists are
  /// single-owner and this walks all of them.
  std::size_t quiescentScanAll() {
    std::size_t Freed = 0;
    for (std::uint32_t T = 0; T < N; ++T)
      Freed += scan(T);
    return Freed;
  }

  /// Retire threshold: a thread scans when its list reaches this many
  /// entries (2*H, H = total hazard slots).
  std::size_t scanThreshold() const {
    return 2 * static_cast<std::size_t>(N) * Slots;
  }

  /// Entries currently awaiting reclamation across all threads. Racy
  /// under concurrency (relaxed per-thread counters); exact when
  /// quiescent.
  std::uint64_t retireBacklog() const {
    std::uint64_t Total = 0;
    for (std::uint32_t T = 0; T < N; ++T)
      Total += Retired[T].Count.load(std::memory_order_relaxed);
    return Total;
  }

  /// Largest single-thread retire list ever observed (the bound under
  /// test is <= scanThreshold()).
  std::uint64_t retireHighWater() const {
    return HighWater.load(std::memory_order_relaxed);
  }

  std::uint32_t numThreads() const { return N; }
  std::uint32_t slotsPerThread() const { return Slots; }

  /// Heap owned by the domain: the hazard slot array plus the retire
  /// lists' storage.
  std::size_t heapBytes() const {
    std::size_t Bytes = static_cast<std::size_t>(N) * Stride *
                        sizeof(std::atomic<const void *>);
    for (std::uint32_t T = 0; T < N; ++T)
      Bytes += Retired[T].List.capacity() * sizeof(Entry) +
               sizeof(RetireBlock);
    return Bytes;
  }

private:
  struct Entry {
    void *Obj;
    RecycleFn Recycle;
    void *Ctx;
  };

  /// Per-thread retire list, padded so neighbours' pushes do not false-
  /// share. Count mirrors List.size() for cross-thread backlog reads.
  struct alignas(CacheLineSize) RetireBlock {
    std::vector<Entry> List;
    std::atomic<std::size_t> Count{0};
  };

  /// Rounds a slot count up so each thread's slots occupy whole cache
  /// lines (no false sharing between neighbouring threads' protects).
  static constexpr std::size_t roundUpToLine(std::uint32_t SlotCount) {
    constexpr std::size_t PerLine =
        CacheLineSize / sizeof(std::atomic<const void *>);
    return ((SlotCount + PerLine - 1) / PerLine) * PerLine;
  }

  void noteHighWater(std::size_t Size) {
    std::uint64_t Cur = HighWater.load(std::memory_order_relaxed);
    while (Size > Cur &&
           !HighWater.compare_exchange_weak(Cur, Size,
                                            std::memory_order_relaxed))
      ;
  }

  const std::uint32_t N;
  const std::uint32_t Slots;
  const std::size_t Stride;
  std::unique_ptr<std::atomic<const void *>[]> Hazards;
  std::vector<RetireBlock> Retired;
  std::atomic<std::uint64_t> HighWater{0};
};

/// RAII hazard slot: publishes on protect(), clears on destruction —
/// including the unwind of a SimulatedCrash/ProcessCrash, so a crashed
/// operation never strands a hazard past its own resurrection scope.
class HazardGuard {
public:
  HazardGuard(HazardDomain &Domain, std::uint32_t Tid, std::uint32_t Slot)
      : Domain(Domain), Tid(Tid), Slot(Slot) {}

  HazardGuard(const HazardGuard &) = delete;
  HazardGuard &operator=(const HazardGuard &) = delete;

  ~HazardGuard() { Domain.clear(Tid, Slot); }

  /// Publishes \p Ptr (seq_cst); the caller must re-validate
  /// reachability afterwards before dereferencing.
  void protect(const void *Ptr) { Domain.protect(Tid, Slot, Ptr); }

private:
  HazardDomain &Domain;
  std::uint32_t Tid;
  std::uint32_t Slot;
};

} // namespace csobj

#endif // CSOBJ_MEMORY_HAZARDDOMAIN_H
