//===- memory/TaggedValue.h - ABA-safe packed register codecs ---*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Codecs for the multi-field atomic registers of the paper's stack
/// algorithm (Section 3):
///
///  * TOP holds a triple <index, value, seqnb>;
///  * each STACK[x] holds a pair <val, sn>.
///
/// The sequence-number fields implement the tag technique of Section 2.2
/// that defeats the ABA problem. Two codec families are provided:
///
///  * Compact64: everything in one 64-bit word (index:16 | seq:16 |
///    value:32). Always lock-free; sequence numbers wrap modulo 2^16,
///    which in the ABA argument requires a thread to sleep across exactly
///    a multiple of 65536 reuses of one slot to be fooled.
///  * Wide128: a 128-bit word (index:32 | seq:32 | value:64) for
///    ABA-paranoid deployments and for 64-bit payloads; on x86-64 this
///    maps to CMPXCHG16B (possibly via libatomic).
///
/// Both families model the TopCodec/SlotCodec concepts consumed by the
/// core algorithms, which are entirely codec-generic.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_MEMORY_TAGGEDVALUE_H
#define CSOBJ_MEMORY_TAGGEDVALUE_H

#include "support/BitPack.h"

#include <cstdint>

namespace csobj {

/// Decoded view of the TOP register: the paper's <index, value, seqnb>.
template <typename ValueT>
struct TopFields {
  std::uint32_t Index = 0;
  ValueT Value = 0;
  std::uint32_t Seq = 0;

  bool operator==(const TopFields &) const = default;
};

/// Decoded view of a STACK[x] register: the paper's <val, sn>.
template <typename ValueT>
struct SlotFields {
  ValueT Value = 0;
  std::uint32_t Seq = 0;

  bool operator==(const SlotFields &) const = default;
};

/// Packs TOP = <index, seq, value> into a single CASable word.
///
/// \tparam WordT     unsigned word type holding the whole triple
/// \tparam IndexBits bits for the stack index
/// \tparam SeqBits   bits for the ABA sequence number
/// \tparam ValueT    unsigned logical payload type
template <typename WordT, unsigned IndexBits, unsigned SeqBits,
          typename ValueT>
struct TopCodec {
  using Word = WordT;
  using ValueType = ValueT;

  static constexpr unsigned ValueBits =
      sizeof(WordT) * 8 - IndexBits - SeqBits;
  static_assert(ValueBits <= sizeof(ValueT) * 8,
                "payload type too narrow for the value field");

  using Layout = PackedTriple<WordT, IndexBits, SeqBits, ValueBits>;

  /// The paper's bottom value: reserved all-ones payload.
  static constexpr ValueT Bottom =
      static_cast<ValueT>(lowBitMask<WordT>(ValueBits));
  /// Largest representable stack index (capacity k must stay below it).
  static constexpr std::uint32_t MaxIndex =
      static_cast<std::uint32_t>(lowBitMask<WordT>(IndexBits));
  /// Sequence numbers live in Z / 2^SeqBits.
  static constexpr std::uint32_t SeqMask =
      static_cast<std::uint32_t>(lowBitMask<WordT>(SeqBits));

  static constexpr Word pack(TopFields<ValueT> Fields) {
    return Layout::pack(static_cast<WordT>(Fields.Index),
                        static_cast<WordT>(Fields.Seq),
                        static_cast<WordT>(Fields.Value));
  }

  static constexpr TopFields<ValueT> unpack(Word W) {
    TopFields<ValueT> Fields;
    Fields.Index = static_cast<std::uint32_t>(Layout::a(W));
    Fields.Seq = static_cast<std::uint32_t>(Layout::b(W));
    Fields.Value = static_cast<ValueT>(Layout::c(W));
    return Fields;
  }

  /// Sequence arithmetic modulo the field width (sn + 1, seqnb - 1, ...).
  static constexpr std::uint32_t seqAdd(std::uint32_t Seq,
                                        std::int32_t Delta) {
    return (Seq + static_cast<std::uint32_t>(Delta)) & SeqMask;
  }
};

/// Packs STACK[x] = <value, sn> (plus padding) into a single CASable word.
/// The sequence field width matches the companion TopCodec because slot
/// sequence numbers transit through TOP.seq.
template <typename WordT, unsigned SeqBits, typename ValueT>
struct SlotCodec {
  using Word = WordT;
  using ValueType = ValueT;

  static constexpr unsigned ValueBits = sizeof(ValueT) * 8;
  static_assert(ValueBits + SeqBits <= sizeof(WordT) * 8,
                "slot fields exceed the word");

  using ValueField = BitField<WordT, 0, ValueBits>;
  using SeqField = BitField<WordT, ValueBits, SeqBits>;

  static constexpr Word pack(SlotFields<ValueT> Fields) {
    return ValueField::encode(static_cast<WordT>(Fields.Value)) |
           SeqField::encode(static_cast<WordT>(Fields.Seq));
  }

  static constexpr SlotFields<ValueT> unpack(Word W) {
    SlotFields<ValueT> Fields;
    Fields.Value = static_cast<ValueT>(ValueField::get(W));
    Fields.Seq = static_cast<std::uint32_t>(SeqField::get(W));
    return Fields;
  }
};

/// Compact configuration: one 64-bit word, uint32 payloads (one value,
/// 0xFFFF'FFFF, is reserved as the paper's bottom).
struct Compact64 {
  using Top = TopCodec<std::uint64_t, 16, 16, std::uint32_t>;
  using Slot = SlotCodec<std::uint64_t, 16, std::uint32_t>;
  using Value = std::uint32_t;
};

/// Wide configuration: 128-bit words, uint64 payloads and 32-bit sequence
/// numbers, for workloads where 16-bit tag wrap-around is a concern.
struct Wide128 {
  using Top = TopCodec<unsigned __int128, 32, 32, std::uint64_t>;
  using Slot = SlotCodec<unsigned __int128, 32, std::uint64_t>;
  using Value = std::uint64_t;
};

} // namespace csobj

#endif // CSOBJ_MEMORY_TAGGEDVALUE_H
