//===- memory/AtomicRegister.h - The paper's atomic register ----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AtomicRegister<T> models the paper's computation substrate (Section 2):
/// an atomic register supporting read, write and Compare&Swap. It wraps
/// std::atomic<T> and routes every operation through two thread-local
/// instrumentation channels:
///
///  * access accounting (memory/AccessCounter.h) — regenerates the paper's
///    "six shared-memory accesses" analysis, and
///  * the scheduling hook (memory/SchedHook.h) — lets the interleaving
///    explorer serialize and enumerate executions.
///
/// Every shared register in this library (the stacks' TOP and STACK[],
/// CONTENTION, FLAG[], TURN, the locks' state, the baselines' heads) is an
/// AtomicRegister, so instrumentation is uniform across all compared
/// implementations.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_MEMORY_ATOMICREGISTER_H
#define CSOBJ_MEMORY_ATOMICREGISTER_H

#include "memory/AccessCounter.h"
#include "memory/SchedHook.h"

#include <atomic>

namespace csobj {

/// An atomic register in the sense of the paper: linearizable read, write
/// and Compare&Swap. Default memory order is sequentially consistent,
/// matching the interleaving model the paper's proofs assume; callers on
/// hot paths may relax individual accesses where an argument exists.
template <typename T>
class AtomicRegister {
public:
  AtomicRegister() = default;
  explicit AtomicRegister(T Initial) : Cell(Initial) {}

  AtomicRegister(const AtomicRegister &) = delete;
  AtomicRegister &operator=(const AtomicRegister &) = delete;

  /// Atomic read. Counts as one shared-memory access.
  T read(std::memory_order Order = std::memory_order_seq_cst) const {
    detail::preAccess(AccessKind::Read);
    detail::noteRead();
    return Cell.load(Order);
  }

  /// Atomic write. Counts as one shared-memory access.
  void write(T Value, std::memory_order Order = std::memory_order_seq_cst) {
    detail::preAccess(AccessKind::Write);
    detail::noteWrite();
    Cell.store(Value, Order);
  }

  /// The paper's X.C&S(old, new): atomically, if the register holds
  /// \p Expected it is set to \p Desired and true is returned; otherwise
  /// false. Counts as one shared-memory access whether or not it succeeds.
  bool compareAndSwap(T Expected, T Desired,
                      std::memory_order Order = std::memory_order_seq_cst) {
    detail::preAccess(AccessKind::Cas);
    const bool Succeeded =
        Cell.compare_exchange_strong(Expected, Desired, Order, Order);
    detail::noteCas(Succeeded);
    return Succeeded;
  }

  /// Compare&Swap that also reports the witnessed value on failure, the
  /// "returns the previous value" machine flavour mentioned in Section 2.2.
  bool compareAndSwapValue(T &ExpectedInOut, T Desired,
                           std::memory_order Order =
                               std::memory_order_seq_cst) {
    detail::preAccess(AccessKind::Cas);
    const bool Succeeded =
        Cell.compare_exchange_strong(ExpectedInOut, Desired, Order, Order);
    detail::noteCas(Succeeded);
    return Succeeded;
  }

  /// Atomic exchange (used by test-and-set locks).
  T exchange(T Value, std::memory_order Order = std::memory_order_seq_cst) {
    detail::preAccess(AccessKind::Rmw);
    detail::noteRmw();
    return Cell.exchange(Value, Order);
  }

  /// Atomic fetch-add (used by the ticket lock). Only for integral T.
  T fetchAdd(T Delta, std::memory_order Order = std::memory_order_seq_cst) {
    detail::preAccess(AccessKind::Rmw);
    detail::noteRmw();
    return Cell.fetch_add(Delta, Order);
  }

  /// Uninstrumented read for assertions and test oracles only; never used
  /// on an algorithm's counted path.
  T peekForTesting() const { return Cell.load(std::memory_order_seq_cst); }

private:
  std::atomic<T> Cell{};
};

} // namespace csobj

#endif // CSOBJ_MEMORY_ATOMICREGISTER_H
