//===- memory/AtomicRegister.h - The paper's atomic register ----*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AtomicRegister<T, Policy> models the paper's computation substrate
/// (Section 2): an atomic register supporting read, write and
/// Compare&Swap. It wraps std::atomic<T>; the Policy parameter
/// (memory/RegisterPolicy.h) decides what else an access does:
///
///  * Instrumented (default) routes every operation through two
///    thread-local instrumentation channels — access accounting
///    (memory/AccessCounter.h), which regenerates the paper's "six
///    shared-memory accesses" analysis, and the scheduling hook
///    (memory/SchedHook.h), which lets the interleaving explorer
///    serialize and enumerate executions.
///  * Fast compiles each operation down to the bare std::atomic call —
///    the zero-overhead path wall-clock benchmarks measure.
///
/// Every shared register in this library (the stacks' TOP and STACK[],
/// CONTENTION, FLAG[], TURN, the locks' state, the baselines' heads) is an
/// AtomicRegister, so instrumentation is uniform across all compared
/// implementations and switching policies swaps the whole substrate at
/// once.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_MEMORY_ATOMICREGISTER_H
#define CSOBJ_MEMORY_ATOMICREGISTER_H

#include "memory/RegisterPolicy.h"

#include <atomic>

namespace csobj {

/// An atomic register in the sense of the paper: linearizable read, write
/// and Compare&Swap. Default memory order is sequentially consistent,
/// matching the interleaving model the paper's proofs assume; callers on
/// hot paths may relax individual accesses where a happens-before argument
/// is written down at the call site.
template <typename T, typename Policy = DefaultRegisterPolicy>
class AtomicRegister {
public:
  using RegisterPolicy = Policy;

  AtomicRegister() = default;
  explicit AtomicRegister(T Initial) : Cell(Initial) {}

  AtomicRegister(const AtomicRegister &) = delete;
  AtomicRegister &operator=(const AtomicRegister &) = delete;

  /// Atomic read. Counts as one shared-memory access.
  T read(std::memory_order Order = std::memory_order_seq_cst) const {
    Policy::preAccess(AccessKind::Read);
    Policy::noteRead();
    return Cell.load(Order);
  }

  /// Atomic write. Counts as one shared-memory access.
  void write(T Value, std::memory_order Order = std::memory_order_seq_cst) {
    Policy::preAccess(AccessKind::Write);
    Policy::noteWrite();
    Cell.store(Value, Order);
  }

  /// The paper's X.C&S(old, new): atomically, if the register holds
  /// \p Expected it is set to \p Desired and true is returned; otherwise
  /// false. Counts as one shared-memory access whether or not it succeeds.
  bool compareAndSwap(T Expected, T Desired,
                      std::memory_order Order = std::memory_order_seq_cst) {
    Policy::preAccess(AccessKind::Cas);
    const bool Succeeded = Cell.compare_exchange_strong(
        Expected, Desired, Order, failOrderFor(Order));
    Policy::noteCas(Succeeded);
    return Succeeded;
  }

  /// Compare&Swap that also reports the witnessed value on failure, the
  /// "returns the previous value" machine flavour mentioned in Section 2.2.
  bool compareAndSwapValue(T &ExpectedInOut, T Desired,
                           std::memory_order Order =
                               std::memory_order_seq_cst) {
    Policy::preAccess(AccessKind::Cas);
    const bool Succeeded = Cell.compare_exchange_strong(
        ExpectedInOut, Desired, Order, failOrderFor(Order));
    Policy::noteCas(Succeeded);
    return Succeeded;
  }

  /// Atomic exchange (used by test-and-set locks).
  T exchange(T Value, std::memory_order Order = std::memory_order_seq_cst) {
    Policy::preAccess(AccessKind::Rmw);
    Policy::noteRmw();
    return Cell.exchange(Value, Order);
  }

  /// Atomic fetch-add (used by the ticket lock). Only for integral T.
  T fetchAdd(T Delta, std::memory_order Order = std::memory_order_seq_cst) {
    Policy::preAccess(AccessKind::Rmw);
    Policy::noteRmw();
    return Cell.fetch_add(Delta, Order);
  }

  /// Uninstrumented read for assertions and test oracles only; never used
  /// on an algorithm's counted path.
  T peekForTesting() const { return Cell.load(std::memory_order_seq_cst); }

  /// Reclamation-channel read: uninstrumented, like the MetricSink
  /// stores of PR 5. The hazard-pointer protocol (memory/HazardDomain.h)
  /// must re-validate a link after publishing a hazard; that validation
  /// is memory-system bookkeeping, not an access the paper's algorithms
  /// perform, so it stays invisible to the AccessCounter oracle and the
  /// interleaving explorer. Never call this on a counted algorithm path.
  T readReclaim(std::memory_order Order = std::memory_order_seq_cst) const {
    return Cell.load(Order);
  }

  /// Reclamation-channel Compare&Swap: uninstrumented link surgery for
  /// physical removal (marking a retired node's links, snipping it out
  /// of a chain). The logical operation already linearized at a counted
  /// access; unlinking the storage afterwards is the memory system's
  /// work, so it stays invisible to the oracles. Never call this on a
  /// counted algorithm path.
  bool compareAndSwapReclaim(T Expected, T Desired,
                             std::memory_order Order =
                                 std::memory_order_seq_cst) {
    return Cell.compare_exchange_strong(Expected, Desired, Order,
                                        failOrderFor(Order));
  }

  /// Reclamation-channel write: uninstrumented re-initialisation of a
  /// recycled register (a freed chunk's slots, a retired node's links)
  /// before it is republished. The register is unreachable while this
  /// runs — reclamation guarantees no concurrent reader — so the write
  /// is not a shared-memory access in the paper's counting convention
  /// and must stay invisible to the oracles. Never call this on a
  /// counted algorithm path.
  void writeReclaim(T Value,
                    std::memory_order Order = std::memory_order_seq_cst) {
    Cell.store(Value, Order);
  }

private:
  /// The failure ordering a compare_exchange may legally carry when its
  /// success ordering is \p Order: a failed C&S performs no store, so the
  /// release component is dropped.
  static constexpr std::memory_order failOrderFor(std::memory_order Order) {
    switch (Order) {
    case std::memory_order_acq_rel:
      return std::memory_order_acquire;
    case std::memory_order_release:
      return std::memory_order_relaxed;
    default:
      return Order;
    }
  }

  std::atomic<T> Cell{};
};

} // namespace csobj

#endif // CSOBJ_MEMORY_ATOMICREGISTER_H
