//===- memory/SchedHook.h - Interleaving control points ---------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduling hook invoked before every shared-memory access. The
/// interleaving explorer (src/sched) installs a per-thread hook so that a
/// controller can serialize threads and enumerate every interleaving of
/// the paper's algorithms for small scenarios. In normal operation no hook
/// is installed and the cost is a thread-local load plus a branch.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_MEMORY_SCHEDHOOK_H
#define CSOBJ_MEMORY_SCHEDHOOK_H

namespace csobj {

/// Classification of a shared-memory access, for hooks and accounting.
enum class AccessKind { Read, Write, Cas, Rmw };

/// Interface a scheduler implements to gate shared-memory accesses.
class SchedHook {
public:
  virtual ~SchedHook();

  /// Called by the accessing thread immediately *before* the access takes
  /// effect. A controller typically blocks here until the thread is
  /// granted its next step.
  virtual void beforeSharedAccess(AccessKind Kind) = 0;
};

namespace detail {
extern thread_local SchedHook *ActiveSchedHook;

inline void preAccess(AccessKind Kind) {
  if (SchedHook *Hook = ActiveSchedHook)
    Hook->beforeSharedAccess(Kind);
}
} // namespace detail

/// RAII installer for the calling thread's schedule hook.
class SchedHookScope {
public:
  explicit SchedHookScope(SchedHook &Hook)
      : Previous(detail::ActiveSchedHook) {
    detail::ActiveSchedHook = &Hook;
  }

  SchedHookScope(const SchedHookScope &) = delete;
  SchedHookScope &operator=(const SchedHookScope &) = delete;

  ~SchedHookScope() { detail::ActiveSchedHook = Previous; }

private:
  SchedHook *Previous;
};

} // namespace csobj

#endif // CSOBJ_MEMORY_SCHEDHOOK_H
