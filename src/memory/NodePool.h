//===- memory/NodePool.h - Type-stable growable node pool -------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocation side of the reclamation substrate: a grow-on-demand,
/// type-stable pool of nodes. Where IndexPool hands out indices into a
/// fixed preallocated array (the bounded objects' world), NodePool hands
/// out pointers and allocates new storage when the free list runs dry —
/// the unbounded objects' world. Storage is *type-stable*: a node, once
/// allocated, is owned by the pool's registry until the pool dies, so a
/// stale pointer held by a slow reader always points at a Node (possibly
/// recycled — the hazard protocol in memory/HazardDomain.h is what rules
/// the recycled case out before a dereference is trusted).
///
/// Like the HazardDomain, the pool lives entirely on the reclamation
/// channel: no AtomicRegister is touched, so acquire/release are
/// invisible to the access-count oracle and the interleaving explorer,
/// and — because the fault injectors fire only from instrumented
/// accesses — both operations are crash-atomic (a campaign crash cannot
/// land inside the spinlock's critical section and wedge the pool).
///
/// Concurrency: one test-and-set spinlock guards the free list and the
/// registry. Acquire/release are rare (once per ChunkSlots-element
/// turnover for the unbounded objects) and off every counted path; a
/// spinlock keeps the ABA question out of the pool entirely (the tagged
/// Treiber alternative saves nothing measurable at this call rate).
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_MEMORY_NODEPOOL_H
#define CSOBJ_MEMORY_NODEPOOL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace csobj {

/// Growable pool of default-constructed \p T nodes with pointer-stable
/// storage. Recycled nodes are handed back as-is: the caller re-
/// initialises what it needs (through the registers' reclamation-channel
/// writers) before republishing.
template <typename T>
class NodePool {
public:
  NodePool() = default;

  NodePool(const NodePool &) = delete;
  NodePool &operator=(const NodePool &) = delete;

  /// Pops a free node, or allocates a fresh one. Never fails (allocation
  /// failure throws bad_alloc like any new).
  T *acquire() {
    {
      SpinGuard G(Lock);
      if (!Free.empty()) {
        T *Node = Free.back();
        Free.pop_back();
        return Node;
      }
    }
    // Allocate outside the lock; registering re-takes it briefly.
    std::unique_ptr<T> Fresh = std::make_unique<T>();
    T *Node = Fresh.get();
    SpinGuard G(Lock);
    Registry.push_back(std::move(Fresh));
    return Node;
  }

  /// Returns \p Node to the free list. The caller guarantees no reader
  /// can still trust a pointer to it (i.e. this is the tail of a hazard
  /// scan, or the node was never published).
  void release(T *Node) {
    SpinGuard G(Lock);
    Free.push_back(Node);
  }

  /// HazardDomain-compatible recycler: Ctx is the pool.
  static void recycle(void *Obj, void *Ctx) {
    static_cast<NodePool *>(Ctx)->release(static_cast<T *>(Obj));
  }

  /// Nodes ever allocated (allocated = live + free + retired-in-flight).
  std::size_t allocatedCount() const {
    SpinGuard G(Lock);
    return Registry.size();
  }

  /// Nodes currently on the free list.
  std::size_t freeCount() const {
    SpinGuard G(Lock);
    return Free.size();
  }

  /// Heap owned by the pool: every node ever allocated plus the
  /// registry/free-list vectors. This is the honest resident footprint
  /// an unbounded object reports per element.
  std::size_t heapBytes() const {
    SpinGuard G(Lock);
    return Registry.size() * sizeof(T) +
           Registry.capacity() * sizeof(std::unique_ptr<T>) +
           Free.capacity() * sizeof(T *);
  }

private:
  struct SpinGuard {
    explicit SpinGuard(std::atomic_flag &F) : F(F) {
      while (F.test_and_set(std::memory_order_acquire))
        ;
    }
    ~SpinGuard() { F.clear(std::memory_order_release); }
    std::atomic_flag &F;
  };

  mutable std::atomic_flag Lock = ATOMIC_FLAG_INIT;
  std::vector<std::unique_ptr<T>> Registry;
  std::vector<T *> Free;
};

} // namespace csobj

#endif // CSOBJ_MEMORY_NODEPOOL_H
