//===- memory/IndexPool.h - Lock-free index free list -----------*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free pool of small integer indices, implemented as a Treiber
/// free list over a preallocated next-array with a tagged head word (the
/// Section 2.2 ABA tag technique). Linked baselines (Treiber stack,
/// Michael-Scott queue) and the boxed-value wrapper draw their node slots
/// from this pool, which keeps them allocation-free after construction
/// and gives all of them bounded (total, "full"-returning) semantics that
/// match the paper's bounded stack.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_MEMORY_INDEXPOOL_H
#define CSOBJ_MEMORY_INDEXPOOL_H

#include "memory/AtomicRegister.h"
#include "support/BitPack.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>

namespace csobj {

/// Lock-free LIFO pool of indices [0, size).
class IndexPool {
public:
  explicit IndexPool(std::uint32_t Size)
      : Size(Size), Next(new AtomicRegister<std::uint32_t>[Size]) {
    assert(Size >= 1 && "pool must hold at least one index");
    // Thread all indices onto the free list: i -> i+1 -> ... -> null.
    for (std::uint32_t I = 0; I + 1 < Size; ++I)
      Next[I].write(encodeLink(I + 1));
    Next[Size - 1].write(NullLink);
    Head.write(HeadCodec::pack(encodeLink(0), 0));
  }

  /// Pops a free index, or nullopt when the pool is exhausted.
  std::optional<std::uint32_t> tryAcquire() {
    while (true) {
      const std::uint64_t Observed = Head.read();
      const std::uint32_t Link = linkOf(Observed);
      if (Link == NullLink)
        return std::nullopt;
      const std::uint32_t Idx = Link - 1;
      const std::uint32_t NextLink = Next[Idx].read();
      if (Head.compareAndSwap(
              Observed, HeadCodec::pack(NextLink, tagOf(Observed) + 1)))
        return Idx;
    }
  }

  /// Returns \p Idx to the pool.
  void release(std::uint32_t Idx) {
    assert(Idx < Size && "index out of range");
    while (true) {
      const std::uint64_t Observed = Head.read();
      Next[Idx].write(linkOf(Observed));
      if (Head.compareAndSwap(
              Observed,
              HeadCodec::pack(encodeLink(Idx), tagOf(Observed) + 1)))
        return;
    }
  }

  std::uint32_t size() const { return Size; }

  /// Counts free entries by walking the list. Only meaningful when
  /// quiescent (test/debug aid).
  std::uint32_t freeCountForTesting() const {
    std::uint32_t Count = 0;
    std::uint32_t Link = linkOf(Head.peekForTesting());
    while (Link != NullLink) {
      ++Count;
      Link = Next[Link - 1].peekForTesting();
    }
    return Count;
  }

private:
  // Head packs <link:32, tag:32>; links are index+1 with 0 = null so the
  // empty pool is distinguishable.
  using HeadCodec = PackedPair<std::uint64_t, 32, 32>;
  static constexpr std::uint32_t NullLink = 0;

  static std::uint32_t encodeLink(std::uint32_t Idx) { return Idx + 1; }
  static std::uint32_t linkOf(std::uint64_t Word) {
    return static_cast<std::uint32_t>(HeadCodec::a(Word));
  }
  static std::uint32_t tagOf(std::uint64_t Word) {
    return static_cast<std::uint32_t>(HeadCodec::b(Word));
  }

  const std::uint32_t Size;
  AtomicRegister<std::uint64_t> Head;
  std::unique_ptr<AtomicRegister<std::uint32_t>[]> Next;
};

} // namespace csobj

#endif // CSOBJ_MEMORY_INDEXPOOL_H
