//===- memory/SchedHook.cpp -----------------------------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "memory/SchedHook.h"

namespace csobj {

SchedHook::~SchedHook() = default;

namespace detail {
thread_local SchedHook *ActiveSchedHook = nullptr;
} // namespace detail

} // namespace csobj
