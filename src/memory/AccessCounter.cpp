//===- memory/AccessCounter.cpp -------------------------------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "memory/AccessCounter.h"

namespace csobj {
namespace detail {

thread_local AccessCounts *ActiveAccessCounts = nullptr;

} // namespace detail
} // namespace csobj
