//===- examples/access_audit.cpp - Auditing the six accesses -------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Uses the instrumented shared-memory substrate to audit the paper's
/// Theorem 1 interactively: count the shared-memory accesses of your own
/// code paths with AccessCounterScope, exactly as experiment E1 does.
/// Also demonstrates a custom SchedHook that prints a trace of every
/// access a contention-free strong_push performs.
///
//===----------------------------------------------------------------------===//

#include "core/ContentionSensitiveStack.h"
#include "memory/AccessCounter.h"
#include "memory/SchedHook.h"

#include <iostream>

using namespace csobj;

namespace {

/// Prints one line per shared-memory access.
class TracingHook final : public SchedHook {
public:
  void beforeSharedAccess(AccessKind Kind) override {
    ++Step;
    const char *Name = "?";
    switch (Kind) {
    case AccessKind::Read:
      Name = "read";
      break;
    case AccessKind::Write:
      Name = "write";
      break;
    case AccessKind::Cas:
      Name = "compare&swap";
      break;
    case AccessKind::Rmw:
      Name = "read-modify-write";
      break;
    }
    std::cout << "  access " << Step << ": " << Name << '\n';
  }

private:
  int Step = 0;
};

} // namespace

int main() {
  ContentionSensitiveStack<> Stack(/*NumThreads=*/2, /*Capacity=*/64);

  // Trace the six accesses of a contention-free strong_push.
  std::cout << "trace of one contention-free strong_push (Theorem 1 says "
               "six accesses):\n";
  {
    TracingHook Tracer;
    SchedHookScope Scope(Tracer);
    (void)Stack.push(0, 42);
  }

  // Count a batch: the mean must be exactly 6 per operation.
  constexpr int Ops = 1000;
  const AccessCounts Batch = countAccesses([&] {
    for (int I = 0; I < Ops; ++I) {
      (void)Stack.push(0, static_cast<std::uint32_t>(I) + 1);
      (void)Stack.pop(0);
    }
  });
  std::cout << "\nbatch of " << 2 * Ops << " solo strong ops:\n"
            << "  total accesses: " << Batch.total() << " ("
            << static_cast<double>(Batch.total()) / (2 * Ops)
            << " per op)\n"
            << "  reads: " << Batch.Reads
            << ", cas: " << Batch.CasAttempts
            << ", cas failures: " << Batch.CasFailures << '\n';
  std::cout << "(cas failures are 0: solo operations never lose a race, "
               "hence never abort)\n";
  return 0;
}
