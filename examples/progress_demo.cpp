//===- examples/progress_demo.cpp - The progress-condition ladder --------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Makes the paper's hierarchy of progress conditions (Section 1.2)
/// tangible. The same workload — several threads hammering one stack
/// under injected asynchrony — runs against the three figures:
///
///  * Figure 1 (abortable): operations may return bottom; the caller
///    sees every abort.
///  * Figure 2 (non-blocking): bottoms disappear into retries; some
///    operations retry many times.
///  * Figure 3 (contention-sensitive, starvation-free): no bottoms, no
///    caller-visible retries, and the per-thread completion counts stay
///    balanced.
///
//===----------------------------------------------------------------------===//

#include "core/AbortableStack.h"
#include "core/ContentionSensitiveStack.h"
#include "core/NonBlockingStack.h"
#include "memory/ChaosHook.h"
#include "runtime/SpinBarrier.h"
#include "support/SplitMix64.h"

#include <iostream>
#include <thread>
#include <vector>

using namespace csobj;

namespace {

constexpr std::uint32_t Threads = 4;
constexpr std::uint32_t OpsPerThread = 30000;
constexpr std::uint32_t ChaosPermille = 100;

struct Tally {
  std::uint64_t Completed = 0;
  std::uint64_t Aborts = 0;
  std::uint64_t Retries = 0;
};

/// Runs the standard workload; DoOp(Stack, Tid, IsPush, V, Tally).
template <typename StackT, typename DoOpFn>
std::vector<Tally> hammer(StackT &Stack, DoOpFn DoOp) {
  std::vector<Tally> Tallies(Threads);
  SpinBarrier StartLine(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      ChaosHook Chaos(T + 1, ChaosPermille);
      SchedHookScope Scope(Chaos);
      SplitMix64 Rng(T + 100);
      StartLine.arriveAndWait();
      for (std::uint32_t I = 0; I < OpsPerThread; ++I) {
        const bool IsPush = Rng.chance(1, 2);
        const auto V = static_cast<std::uint32_t>(Rng.below(1u << 16)) + 1;
        DoOp(Stack, T, IsPush, V, Tallies[T]);
      }
    });
  for (auto &W : Workers)
    W.join();
  return Tallies;
}

void report(const char *Name, const std::vector<Tally> &Tallies) {
  std::uint64_t Completed = 0, Aborts = 0, Retries = 0;
  std::uint64_t MinCompleted = ~std::uint64_t{0};
  for (const Tally &T : Tallies) {
    Completed += T.Completed;
    Aborts += T.Aborts;
    Retries += T.Retries;
    MinCompleted = std::min(MinCompleted, T.Completed);
  }
  std::cout << Name << ":\n"
            << "  completed ops          : " << Completed << '\n'
            << "  bottoms seen by caller : " << Aborts << '\n'
            << "  internal retries       : " << Retries << '\n'
            << "  slowest thread finished: " << MinCompleted << " ops\n";
}

} // namespace

int main() {
  std::cout << "same workload (" << Threads << " threads x " << OpsPerThread
            << " ops, asynchrony injection " << ChaosPermille
            << " permille), three progress conditions:\n\n";

  {
    AbortableStack<> Stack(1024);
    const auto Tallies = hammer(Stack, [](AbortableStack<> &S, std::uint32_t,
                                          bool IsPush, std::uint32_t V,
                                          Tally &T) {
      if (IsPush) {
        if (S.weakPush(V) == PushResult::Abort)
          ++T.Aborts;
        else
          ++T.Completed;
      } else if (S.weakPop().isAbort()) {
        ++T.Aborts;
      } else {
        ++T.Completed;
      }
    });
    report("figure 1 — abortable (obstruction-free and then some)",
           Tallies);
  }

  {
    NonBlockingStack<> Stack(1024);
    const auto Tallies = hammer(
        Stack, [](NonBlockingStack<> &S, std::uint32_t, bool IsPush,
                  std::uint32_t V, Tally &T) {
          if (IsPush) {
            const auto R = S.pushCounting(V);
            T.Retries += R.Retries;
          } else {
            const auto R = S.popCounting();
            T.Retries += R.Retries;
          }
          ++T.Completed;
        });
    report("\nfigure 2 — non-blocking (bottoms become retries)", Tallies);
  }

  {
    ContentionSensitiveStack<> Stack(Threads, 1024);
    const auto Tallies = hammer(
        Stack, [](ContentionSensitiveStack<> &S, std::uint32_t Tid,
                  bool IsPush, std::uint32_t V, Tally &T) {
          if (IsPush)
            (void)S.push(Tid, V);
          else
            (void)S.pop(Tid);
          ++T.Completed;
        });
    report("\nfigure 3 — contention-sensitive, starvation-free", Tallies);
    std::cout << "  (and solo operations still cost just six shared "
                 "accesses — run access_audit)\n";
  }
  return 0;
}
