//===- examples/producer_consumer.cpp - Queue pipeline -------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's own motivating scenario: producers enqueuing while
/// consumers dequeue a non-empty queue are *non-interfering*, so the
/// contention-sensitive queue runs them lock-free almost all the time.
/// This example wires a two-stage pipeline (producers -> queue ->
/// consumers) over the starvation-free queue and reports how much work
/// each participant got through — starvation-freedom means nobody is
/// left behind.
///
//===----------------------------------------------------------------------===//

#include "core/ContentionSensitiveQueue.h"
#include "runtime/SpinBarrier.h"
#include "runtime/ThreadRegistry.h"
#include "support/SplitMix64.h"

#include <iostream>
#include <thread>
#include <vector>

using namespace csobj;

int main() {
  constexpr std::uint32_t Producers = 2;
  constexpr std::uint32_t Consumers = 2;
  constexpr std::uint32_t ItemsPerProducer = 50000;
  constexpr std::uint32_t NumThreads = Producers + Consumers;

  ContentionSensitiveQueue<> Queue(NumThreads, /*Capacity=*/1024);
  ThreadRegistry Registry(NumThreads);
  SpinBarrier StartLine(NumThreads);

  std::vector<std::uint64_t> Produced(Producers, 0);
  std::vector<std::uint64_t> Consumed(Consumers, 0);
  std::vector<std::uint64_t> Checksum(Consumers, 0);
  std::atomic<std::uint32_t> Remaining{Producers * ItemsPerProducer};

  std::vector<std::thread> Threads;
  for (std::uint32_t P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      ScopedThreadId Tid(Registry);
      SplitMix64 Rng(P + 1);
      StartLine.arriveAndWait();
      for (std::uint32_t I = 0; I < ItemsPerProducer; ++I) {
        const auto Item = static_cast<std::uint32_t>(Rng.below(1000)) + 1;
        // enqueue() is total: Full is an answer, not an error. A full
        // pipeline applies backpressure by retrying.
        while (Queue.enqueue(Tid.id(), Item) == PushResult::Full)
          std::this_thread::yield();
        ++Produced[P];
      }
    });
  for (std::uint32_t C = 0; C < Consumers; ++C)
    Threads.emplace_back([&, C] {
      ScopedThreadId Tid(Registry);
      StartLine.arriveAndWait();
      while (Remaining.load(std::memory_order_relaxed) > 0) {
        const auto Item = Queue.dequeue(Tid.id());
        if (Item.isValue()) {
          Checksum[C] += Item.value();
          ++Consumed[C];
          Remaining.fetch_sub(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield(); // Empty: producers are behind.
        }
      }
    });
  for (auto &T : Threads)
    T.join();

  std::cout << "pipeline done.\n";
  for (std::uint32_t P = 0; P < Producers; ++P)
    std::cout << "  producer " << P << " enqueued " << Produced[P]
              << " items\n";
  std::uint64_t Total = 0;
  for (std::uint32_t C = 0; C < Consumers; ++C) {
    std::cout << "  consumer " << C << " dequeued " << Consumed[C]
              << " items (checksum " << Checksum[C] << ")\n";
    Total += Consumed[C];
  }
  std::cout << "  total " << Total << " of "
            << Producers * ItemsPerProducer << " items — none lost, none "
            << "duplicated, and every thread made progress\n";
  return 0;
}
