//===- examples/quickstart.cpp - Five-minute tour of csobj ---------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour: the three stacks of the paper, from the
/// abortable object of Figure 1 to the starvation-free contention-
/// sensitive stack of Figure 3, and what each one's operations can
/// return.
///
//===----------------------------------------------------------------------===//

#include "core/AbortableStack.h"
#include "core/ContentionSensitiveStack.h"
#include "core/NonBlockingStack.h"

#include <iostream>

using namespace csobj;

int main() {
  // --- Figure 1: the abortable stack -------------------------------------
  // weak_push / weak_pop are total: they answer done/full/value/empty, or
  // abort (bottom) under interference. Solo use never aborts.
  AbortableStack<> Weak(/*Capacity=*/4);
  std::cout << "figure 1, abortable stack:\n";
  std::cout << "  weak_push(10) -> "
            << (Weak.weakPush(10) == PushResult::Done ? "done" : "?")
            << '\n';
  const auto Popped = Weak.weakPop();
  std::cout << "  weak_pop()    -> " << Popped.value() << '\n';
  std::cout << "  weak_pop()    -> "
            << (Weak.weakPop().isEmpty() ? "empty" : "?") << '\n';

  // --- Figure 2: retry until non-bottom -----------------------------------
  NonBlockingStack<> NonBlocking(/*Capacity=*/4);
  std::cout << "figure 2, non-blocking stack:\n";
  (void)NonBlocking.push(1);
  (void)NonBlocking.push(2);
  std::cout << "  push(1); push(2); pop() -> "
            << NonBlocking.pop().value() << " (LIFO)\n";

  // --- Figure 3: the paper's headline object ------------------------------
  // Operations take the calling process's id (0..n-1). They never abort,
  // always terminate, and in a contention-free execution use no lock and
  // exactly six shared-memory accesses.
  const std::uint32_t NumThreads = 4;
  ContentionSensitiveStack<> Strong(NumThreads, /*Capacity=*/1024);
  std::cout << "figure 3, contention-sensitive starvation-free stack:\n";
  (void)Strong.push(/*Tid=*/0, 100);
  (void)Strong.push(/*Tid=*/1, 200);
  std::cout << "  pop(tid=2) -> " << Strong.pop(2).value() << '\n';
  std::cout << "  pop(tid=3) -> " << Strong.pop(3).value() << '\n';
  std::cout << "  pop(tid=0) -> "
            << (Strong.pop(0).isEmpty() ? "empty" : "?") << '\n';

  // Full answers are total results too, not errors:
  ContentionSensitiveStack<> Tiny(1, /*Capacity=*/1);
  (void)Tiny.push(0, 7);
  std::cout << "  push on full stack -> "
            << (Tiny.push(0, 8) == PushResult::Full ? "full" : "?") << '\n';
  return 0;
}
