//===- examples/task_bag.cpp - Work bag over BoxedStack ------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parallel divide-and-conquer driver built on BoxedStack<Task>: the
/// shared LIFO bag holds real C++ task objects (not just register-sized
/// words), workers grab the most recently produced task (good locality —
/// the reason work-stealing deques are LIFO on the owner side), and
/// subtasks go back into the bag. The workload sums a range by
/// recursive splitting; the result checks against the closed form.
///
//===----------------------------------------------------------------------===//

#include "core/BoxedStack.h"
#include "runtime/SpinBarrier.h"

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

using namespace csobj;

namespace {

/// A half-open range of integers to sum.
struct Task {
  std::uint64_t Begin = 0;
  std::uint64_t End = 0;
};

constexpr std::uint64_t SplitThreshold = 1000;

} // namespace

int main() {
  constexpr std::uint32_t Workers = 4;
  constexpr std::uint64_t N = 10'000'000;

  BoxedStack<Task> Bag(Workers, /*Capacity=*/4096);
  std::atomic<std::uint64_t> Sum{0};
  std::atomic<std::uint64_t> PendingWork{N}; // Elements not yet summed.
  SpinBarrier StartLine(Workers);

  // Seed the bag with the whole problem (thread id 0 is fine here: ids
  // matter only for concurrent use).
  if (!Bag.push(0, Task{0, N})) {
    std::cerr << "seeding failed\n";
    return 1;
  }

  std::vector<std::thread> Threads;
  std::vector<std::uint64_t> TasksRun(Workers, 0);
  for (std::uint32_t W = 0; W < Workers; ++W)
    Threads.emplace_back([&, W] {
      StartLine.arriveAndWait();
      while (PendingWork.load(std::memory_order_acquire) > 0) {
        const auto Work = Bag.pop(W);
        if (!Work) {
          std::this_thread::yield(); // Bag momentarily empty.
          continue;
        }
        ++TasksRun[W];
        const std::uint64_t Size = Work->End - Work->Begin;
        if (Size > SplitThreshold) {
          const std::uint64_t Mid = Work->Begin + Size / 2;
          // Push both halves back; a half that does not fit (full bag —
          // cannot happen with this capacity, but handled anyway) is
          // summed inline.
          const Task Halves[2] = {{Work->Begin, Mid}, {Mid, Work->End}};
          for (const Task &Half : Halves) {
            if (Bag.push(W, Half))
              continue;
            std::uint64_t Local = 0;
            for (std::uint64_t I = Half.Begin; I < Half.End; ++I)
              Local += I;
            Sum.fetch_add(Local, std::memory_order_relaxed);
            PendingWork.fetch_sub(Half.End - Half.Begin,
                                  std::memory_order_release);
          }
          continue;
        }
        std::uint64_t Local = 0;
        for (std::uint64_t I = Work->Begin; I < Work->End; ++I)
          Local += I;
        Sum.fetch_add(Local, std::memory_order_relaxed);
        PendingWork.fetch_sub(Size, std::memory_order_release);
      }
    });
  for (auto &T : Threads)
    T.join();

  const std::uint64_t Expected = N % 2 == 0 ? (N / 2) * (N - 1)
                                            : N * ((N - 1) / 2);
  std::cout << "sum(0.." << N << ") = " << Sum.load() << " (expected "
            << Expected << ", "
            << (Sum.load() == Expected ? "correct" : "WRONG") << ")\n";
  for (std::uint32_t W = 0; W < Workers; ++W)
    std::cout << "  worker " << W << " executed " << TasksRun[W]
              << " tasks\n";
  return Sum.load() == Expected ? 0 : 1;
}
