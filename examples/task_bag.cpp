//===- examples/task_bag.cpp - Batched producer/consumer task bag --------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A producer/consumer task bag driven through the batched group
/// operations (push_all/pop_all): producers hand over work items a batch
/// at a time, consumers take them a batch at a time, so each group of k
/// items crosses the strong seam once instead of k times. The same
/// traffic runs over two objects:
///
///  * the plain Figure 3 stack, operated per element (the baseline), and
///  * the flat-combining stack, operated through push_all/pop_all (one
///    combiner record carries the whole batch).
///
/// Every item carries a value; producers fold the values they handed
/// over into a checksum and consumers fold what they received, so lost
/// or duplicated elements are caught, not just counted. The example
/// prints both element rates; on a contended host the batched combining
/// run amortizes its seam crossings and comes out ahead (E14 measures
/// this sweep properly — bench/bench_batch.cpp).
///
//===----------------------------------------------------------------------===//

#include "core/ContentionSensitiveStack.h"
#include "memory/ChaosHook.h"
#include "perf/CombiningObjects.h"
#include "runtime/SpinBarrier.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

using namespace csobj;

namespace {

constexpr std::uint32_t Producers = 4;
constexpr std::uint32_t Consumers = 4;
constexpr std::uint32_t BatchSize = 32;
constexpr std::uint64_t BatchesPerProducer = 1000;
constexpr std::uint32_t Capacity = 4096;

struct RunResult {
  std::uint64_t Produced = 0, Consumed = 0;
  std::uint64_t ProducedSum = 0, ConsumedSum = 0;
  double Seconds = 0.0;
  bool balanced() const {
    return Produced == Consumed && ProducedSum == ConsumedSum;
  }
  double elementsPerSec() const {
    return Seconds > 0.0
               ? static_cast<double>(Produced + Consumed) / Seconds
               : 0.0;
  }
};

/// Runs the producer/consumer traffic over \p Bag. PushBatch/PopBatch
/// adapt the object's group entry points; per-element baselines just
/// loop inside them.
template <typename PushBatchFn, typename PopBatchFn, typename DrainFn>
RunResult runTraffic(PushBatchFn PushBatch, PopBatchFn PopBatch,
                     DrainFn Drain) {
  const std::uint32_t Threads = Producers + Consumers;
  SpinBarrier StartLine(Threads + 1);
  std::atomic<std::uint32_t> LiveProducers{Producers};
  std::atomic<std::uint64_t> Produced{0}, Consumed{0};
  std::atomic<std::uint64_t> ProducedSum{0}, ConsumedSum{0};
  std::vector<std::thread> Workers;

  for (std::uint32_t P = 0; P < Producers; ++P)
    Workers.emplace_back([&, P] {
      // The library convention for contended measurements: 10% yield
      // probability per shared access emulates the paper's asynchronous
      // adversary (memory/ChaosHook.h), identically for both objects.
      ChaosHook Hook(/*Seed=*/0xBA6ull + P, /*YieldPermille=*/100);
      SchedHookScope Scope(Hook);
      std::vector<std::uint32_t> Buf(BatchSize);
      StartLine.arriveAndWait();
      std::uint64_t Count = 0, Sum = 0;
      for (std::uint64_t B = 0; B < BatchesPerProducer; ++B) {
        for (std::uint32_t I = 0; I < BatchSize; ++I)
          Buf[I] = static_cast<std::uint32_t>(
              (P * BatchesPerProducer + B) * BatchSize + I + 1);
        std::size_t Sent = 0;
        while (Sent < BatchSize) {
          const std::size_t Now =
              PushBatch(P, Buf.data() + Sent, BatchSize - Sent);
          for (std::size_t I = 0; I < Now; ++I)
            Sum += Buf[Sent + I];
          Count += Now;
          Sent += Now;
          if (Now == 0)
            std::this_thread::yield(); // Bag full: let consumers drain.
        }
      }
      Produced.fetch_add(Count, std::memory_order_relaxed);
      ProducedSum.fetch_add(Sum, std::memory_order_relaxed);
      LiveProducers.fetch_sub(1, std::memory_order_release);
    });

  for (std::uint32_t C = 0; C < Consumers; ++C)
    Workers.emplace_back([&, C] {
      const std::uint32_t Tid = Producers + C;
      ChaosHook Hook(/*Seed=*/0xBA6ull + Tid, /*YieldPermille=*/100);
      SchedHookScope Scope(Hook);
      std::vector<std::uint32_t> Buf(BatchSize);
      StartLine.arriveAndWait();
      std::uint64_t Count = 0, Sum = 0;
      while (true) {
        const std::size_t Got = PopBatch(Tid, Buf.data(), BatchSize);
        for (std::size_t I = 0; I < Got; ++I)
          Sum += Buf[I];
        Count += Got;
        if (Got == 0) {
          if (LiveProducers.load(std::memory_order_acquire) == 0)
            break; // Producers done and the bag answered Empty.
          std::this_thread::yield();
        }
      }
      Consumed.fetch_add(Count, std::memory_order_relaxed);
      ConsumedSum.fetch_add(Sum, std::memory_order_relaxed);
    });

  StartLine.arriveAndWait();
  const auto Begin = std::chrono::steady_clock::now();
  for (std::thread &W : Workers)
    W.join();
  const auto End = std::chrono::steady_clock::now();

  RunResult R;
  // Sweep stragglers: a consumer may have seen Empty just before the
  // last producer's final batch landed.
  Drain([&](std::uint64_t Count, std::uint64_t Sum) {
    Consumed.fetch_add(Count, std::memory_order_relaxed);
    ConsumedSum.fetch_add(Sum, std::memory_order_relaxed);
  });
  R.Produced = Produced.load();
  R.Consumed = Consumed.load();
  R.ProducedSum = ProducedSum.load();
  R.ConsumedSum = ConsumedSum.load();
  R.Seconds = std::chrono::duration<double>(End - Begin).count();
  return R;
}

void report(const char *Name, const RunResult &R) {
  std::cout << Name << ": " << R.Produced << " produced / " << R.Consumed
            << " consumed, checksums "
            << (R.balanced() ? "match" : "MISMATCH") << ", "
            << static_cast<std::uint64_t>(R.elementsPerSec())
            << " elements/s\n";
}

} // namespace

int main() {
  const std::uint32_t Threads = Producers + Consumers;

  // Baseline: plain Figure 3 stack, one seam crossing per element.
  ContentionSensitiveStack<> Fig3(Threads, Capacity);
  const RunResult PerElement = runTraffic(
      [&](std::uint32_t Tid, const std::uint32_t *Vs, std::size_t N) {
        std::size_t Done = 0;
        while (Done < N && Fig3.push(Tid, Vs[Done]) == PushResult::Done)
          ++Done;
        return Done;
      },
      [&](std::uint32_t Tid, std::uint32_t *Out, std::size_t N) {
        std::size_t Got = 0;
        while (Got < N) {
          const PopResult<std::uint32_t> R = Fig3.pop(Tid);
          if (!R.isValue())
            break;
          Out[Got++] = R.value();
        }
        return Got;
      },
      [&](auto Credit) {
        std::uint32_t Out[BatchSize];
        std::size_t Got;
        while ((Got = Fig3.pop_all(0, Out, BatchSize)) != 0) {
          std::uint64_t Sum = 0;
          for (std::size_t I = 0; I < Got; ++I)
            Sum += Out[I];
          Credit(Got, Sum);
        }
      });

  // Batched: flat-combining stack, one combiner record per batch.
  CombiningStack<> Combining(Threads, Capacity);
  const RunResult Batched = runTraffic(
      [&](std::uint32_t Tid, const std::uint32_t *Vs, std::size_t N) {
        return Combining.push_all(Tid, Vs, N);
      },
      [&](std::uint32_t Tid, std::uint32_t *Out, std::size_t N) {
        return Combining.pop_all(Tid, Out, N);
      },
      [&](auto Credit) {
        std::uint32_t Out[BatchSize];
        std::size_t Got;
        while ((Got = Combining.drain(0, Out, BatchSize)) != 0) {
          std::uint64_t Sum = 0;
          for (std::size_t I = 0; I < Got; ++I)
            Sum += Out[I];
          Credit(Got, Sum);
        }
      });

  report("fig3 per-element ", PerElement);
  report("combining batched", Batched);
  if (Batched.Seconds > 0.0 && PerElement.Seconds > 0.0)
    std::cout << "batched/per-element speedup: "
              << PerElement.Seconds / Batched.Seconds << "x (batch size "
              << BatchSize << ", " << Producers << "p/" << Consumers
              << "c)\n";

  if (!PerElement.balanced() || !Batched.balanced()) {
    std::cerr << "FAIL: traffic lost or duplicated elements\n";
    return 1;
  }
  std::cout << "OK: every element produced was consumed exactly once on "
               "both objects\n";
  return 0;
}
