//===- examples/verify_cli.cpp - Linearizability verifier CLI ------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line harness around the linearizability oracle: hammer a
/// chosen implementation with random concurrent operations, record the
/// history of every non-bottom completion, and decide linearizability
/// with the Wing & Gong checker. A downstream user modifying the library
/// (or adding an implementation) runs this to gain confidence beyond the
/// unit suite.
///
///   verify_cli [impl] [options]
///     impl: cs | nb | weak | queue | csqueue | treiber | elimination | ms
///   options:
///     --threads N    concurrent processes per round   (default 3)
///     --ops N        operations per thread per round  (default 6)
///     --rounds N     independent rounds               (default 200)
///     --capacity N   object capacity                  (default 4)
///     --seed N       base PRNG seed                   (default 1)
///     --chaos N      yield permille at shared accesses (default 150)
///
//===----------------------------------------------------------------------===//

#include "baselines/EliminationBackoffStack.h"
#include "baselines/MichaelScottQueue.h"
#include "baselines/TreiberStack.h"
#include "core/AbortableQueue.h"
#include "core/AbortableStack.h"
#include "core/ContentionSensitiveQueue.h"
#include "core/ContentionSensitiveStack.h"
#include "core/NonBlockingStack.h"
#include "lincheck/Checker.h"
#include "lincheck/Spec.h"
#include "memory/ChaosHook.h"
#include "runtime/SpinBarrier.h"
#include "support/SplitMix64.h"

#include <cstdint>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace csobj;

namespace {

struct Options {
  std::string Impl = "cs";
  std::uint32_t Threads = 3;
  std::uint32_t OpsPerThread = 6;
  std::uint32_t Rounds = 200;
  std::uint32_t Capacity = 4;
  std::uint64_t Seed = 1;
  std::uint32_t ChaosPermille = 150;
};

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto NextValue = [&](std::uint64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    std::uint64_t V = 0;
    if (Arg == "--threads" && NextValue(V))
      Opts.Threads = static_cast<std::uint32_t>(V);
    else if (Arg == "--ops" && NextValue(V))
      Opts.OpsPerThread = static_cast<std::uint32_t>(V);
    else if (Arg == "--rounds" && NextValue(V))
      Opts.Rounds = static_cast<std::uint32_t>(V);
    else if (Arg == "--capacity" && NextValue(V))
      Opts.Capacity = static_cast<std::uint32_t>(V);
    else if (Arg == "--seed" && NextValue(V))
      Opts.Seed = V;
    else if (Arg == "--chaos" && NextValue(V))
      Opts.ChaosPermille = static_cast<std::uint32_t>(V);
    else if (Arg == "--help" || Arg == "-h")
      return false;
    else if (Arg[0] != '-')
      Opts.Impl = Arg;
    else {
      std::cerr << "unknown option: " << Arg << "\n";
      return false;
    }
  }
  if (Opts.Threads * Opts.OpsPerThread > 60) {
    std::cerr << "threads*ops must stay <= 60 (checker limit per round)\n";
    return false;
  }
  return true;
}

/// One operation against the object under test; records non-bottom
/// completions into the recorder.
using OpFn = std::function<void(std::uint32_t Tid, bool IsPush,
                                std::uint32_t V, HistoryRecorder &Rec)>;

void record(HistoryRecorder &Rec, OpCode Code, std::uint32_t Arg,
            PushResult R, std::uint64_t T0) {
  if (R != PushResult::Abort)
    Rec.recordOp(Code, Arg,
                 R == PushResult::Full ? ResCode::Full : ResCode::Done, 0,
                 T0, HistoryRecorder::now());
}

void record(HistoryRecorder &Rec, OpCode Code,
            const PopResult<std::uint32_t> &R, std::uint64_t T0) {
  if (R.isValue())
    Rec.recordOp(Code, 0, ResCode::Value, R.value(), T0,
                 HistoryRecorder::now());
  else if (R.isEmpty())
    Rec.recordOp(Code, 0, ResCode::Empty, 0, T0, HistoryRecorder::now());
}

/// Runs all rounds with a fresh object per round. MakeOp builds the
/// per-round operation closure; IsQueue picks the sequential spec.
int runRounds(const Options &Opts, bool IsQueue,
              const std::function<OpFn()> &MakeOp) {
  std::uint64_t TotalOps = 0;
  for (std::uint32_t Round = 0; Round < Opts.Rounds; ++Round) {
    OpFn Op = MakeOp();
    std::vector<HistoryRecorder> Recorders;
    for (std::uint32_t T = 0; T < Opts.Threads; ++T)
      Recorders.emplace_back(T);
    SpinBarrier Barrier(Opts.Threads);
    std::vector<std::thread> Workers;
    for (std::uint32_t T = 0; T < Opts.Threads; ++T)
      Workers.emplace_back([&, T] {
        ChaosHook Chaos(Opts.Seed * 31 + Round * 7 + T,
                        Opts.ChaosPermille);
        SchedHookScope Scope(Chaos);
        SplitMix64 Rng(Opts.Seed + Round * 1009 + T);
        Barrier.arriveAndWait();
        for (std::uint32_t I = 0; I < Opts.OpsPerThread; ++I)
          Op(T, Rng.chance(1, 2),
             static_cast<std::uint32_t>(Rng.below(1u << 16)) + 1,
             Recorders[T]);
      });
    for (auto &W : Workers)
      W.join();

    History H = mergeHistories(Recorders);
    TotalOps += H.Ops.size();
    const CheckResult Result =
        IsQueue ? checkLinearizable(H, BoundedQueueSpec(Opts.Capacity))
                : checkLinearizable(H, BoundedStackSpec(Opts.Capacity));
    if (Result.HitSearchCap) {
      std::cerr << "round " << Round << ": INCONCLUSIVE (search cap)\n";
      return 2;
    }
    if (!Result.Linearizable) {
      std::cerr << "round " << Round << ": NOT LINEARIZABLE\n"
                << Result.FailureNote << "\n";
      return 1;
    }
  }
  std::cout << "PASS: " << Opts.Rounds << " rounds, " << TotalOps
            << " completed operations, all histories linearizable\n";
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    std::cerr << "usage: verify_cli "
                 "[cs|nb|weak|queue|csqueue|treiber|elimination|ms] "
                 "[--threads N] [--ops N] [--rounds N] [--capacity N] "
                 "[--seed N] [--chaos N]\n";
    return 2;
  }

  std::cout << "verifying '" << Opts.Impl << "': " << Opts.Threads
            << " threads x " << Opts.OpsPerThread << " ops x "
            << Opts.Rounds << " rounds, capacity " << Opts.Capacity
            << ", chaos " << Opts.ChaosPermille << " permille\n";

  if (Opts.Impl == "cs")
    return runRounds(Opts, /*IsQueue=*/false, [&] {
      auto S = std::make_shared<ContentionSensitiveStack<>>(Opts.Threads,
                                                            Opts.Capacity);
      return OpFn([S](std::uint32_t Tid, bool IsPush, std::uint32_t V,
                      HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          record(Rec, OpCode::Push, V, S->push(Tid, V), T0);
        else
          record(Rec, OpCode::Pop, S->pop(Tid), T0);
      });
    });
  if (Opts.Impl == "nb")
    return runRounds(Opts, false, [&] {
      auto S = std::make_shared<NonBlockingStack<>>(Opts.Capacity);
      return OpFn([S](std::uint32_t, bool IsPush, std::uint32_t V,
                      HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          record(Rec, OpCode::Push, V, S->push(V), T0);
        else
          record(Rec, OpCode::Pop, S->pop(), T0);
      });
    });
  if (Opts.Impl == "weak")
    return runRounds(Opts, false, [&] {
      auto S = std::make_shared<AbortableStack<>>(Opts.Capacity);
      return OpFn([S](std::uint32_t, bool IsPush, std::uint32_t V,
                      HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          record(Rec, OpCode::Push, V, S->weakPush(V), T0);
        else
          record(Rec, OpCode::Pop, S->weakPop(), T0);
      });
    });
  if (Opts.Impl == "queue")
    return runRounds(Opts, true, [&] {
      auto Q = std::make_shared<AbortableQueue<>>(Opts.Capacity);
      return OpFn([Q](std::uint32_t, bool IsPush, std::uint32_t V,
                      HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          record(Rec, OpCode::Push, V, Q->weakEnqueue(V), T0);
        else
          record(Rec, OpCode::Pop, Q->weakDequeue(), T0);
      });
    });
  if (Opts.Impl == "csqueue")
    return runRounds(Opts, true, [&] {
      auto Q = std::make_shared<ContentionSensitiveQueue<>>(Opts.Threads,
                                                            Opts.Capacity);
      return OpFn([Q](std::uint32_t Tid, bool IsPush, std::uint32_t V,
                      HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          record(Rec, OpCode::Push, V, Q->enqueue(Tid, V), T0);
        else
          record(Rec, OpCode::Pop, Q->dequeue(Tid), T0);
      });
    });
  if (Opts.Impl == "treiber")
    return runRounds(Opts, false, [&] {
      auto S = std::make_shared<TreiberStack>(Opts.Capacity);
      return OpFn([S](std::uint32_t, bool IsPush, std::uint32_t V,
                      HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          record(Rec, OpCode::Push, V, S->push(V), T0);
        else
          record(Rec, OpCode::Pop, S->pop(), T0);
      });
    });
  if (Opts.Impl == "elimination")
    return runRounds(Opts, false, [&] {
      auto S = std::make_shared<EliminationBackoffStack>(Opts.Capacity);
      return OpFn([S](std::uint32_t, bool IsPush, std::uint32_t V,
                      HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          record(Rec, OpCode::Push, V, S->push(V), T0);
        else
          record(Rec, OpCode::Pop, S->pop(), T0);
      });
    });
  if (Opts.Impl == "ms")
    return runRounds(Opts, true, [&] {
      auto Q = std::make_shared<MichaelScottQueue>(Opts.Capacity);
      return OpFn([Q](std::uint32_t, bool IsPush, std::uint32_t V,
                      HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          record(Rec, OpCode::Push, V, Q->enqueue(V), T0);
        else
          record(Rec, OpCode::Pop, Q->dequeue(), T0);
      });
    });

  std::cerr << "unknown implementation: " << Opts.Impl << "\n";
  return 2;
}
