//===- examples/hot_key_map.cpp - Zipf-skewed keyed traffic --------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hot-key cache workload over the contention-sensitive ordered map:
/// keys are drawn Zipf(1.1) through the soak layer's ArrivalStream, so a
/// handful of keys absorb most of the traffic — the regime a per-region
/// Fig-3 seam is built for. Reads (the bulk of cache traffic) stay on
/// the wait-free search path no matter how hot their key is; only
/// *writers of the same hot region* ever serialize, and the path
/// breakdown printed at the end shows exactly how often that happened.
///
/// The arrival sequence is deterministic (schedule + seed), pre-drawn,
/// and split round-robin across the workers, so reruns see identical
/// traffic. Each worker applies its slice: IsPush arrivals write (insert
/// or, on odd values, erase), the rest read. The example checks the
/// skew actually materialized (top keys dominate), that the map's path
/// counters conserve over the whole run, and prints the shortcut/lock
/// split — bench/bench_map.cpp (E16) measures the same machinery as a
/// proper sweep.
///
//===----------------------------------------------------------------------===//

#include "core/ContentionSensitiveMap.h"
#include "memory/ChaosHook.h"
#include "runtime/SpinBarrier.h"
#include "soak/ArrivalSchedule.h"

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

using namespace csobj;

namespace {

constexpr std::uint32_t Workers = 4;
constexpr std::uint32_t KeyRange = 256;
constexpr std::uint64_t TotalArrivals = 200000;
constexpr std::uint32_t WritePercent = 20; // cache traffic: mostly reads

} // namespace

int main() {
  // Zipf(1.1) keyed arrivals at a flat nominal rate. Only the key/op
  // shape matters here — the timestamps drive the soak harness (E15),
  // not this closed-loop example.
  soak::ArrivalSchedule Schedule = soak::ArrivalSchedule::flat(50000.0);
  Schedule.Keys = KeyRange;
  Schedule.ZipfS = 1.1;
  Schedule.PushPercent = WritePercent;
  soak::ArrivalStream Stream(Schedule, /*Seed=*/0x40E57ull);

  std::vector<soak::Arrival> Arrivals;
  Arrivals.reserve(TotalArrivals);
  std::vector<std::uint64_t> PerKey(KeyRange, 0);
  for (std::uint64_t I = 0; I < TotalArrivals; ++I) {
    Arrivals.push_back(Stream.next());
    ++PerKey[Arrivals.back().Key];
  }

  // The skew must be real: the 8 hottest keys of 256 should carry the
  // majority of the traffic under Zipf(1.1).
  std::vector<std::uint64_t> Sorted(PerKey);
  std::sort(Sorted.rbegin(), Sorted.rend());
  std::uint64_t Top8 = 0;
  for (std::uint32_t K = 0; K < 8; ++K)
    Top8 += Sorted[K];

  ContentionSensitiveMap<> Map(Workers, /*Capacity=*/KeyRange);
  for (std::uint32_t K = 0; K < KeyRange / 2; ++K)
    (void)Map.insert(0, K, K + 1);

  SpinBarrier StartLine(Workers + 1);
  std::vector<std::thread> Threads;
  for (std::uint32_t W = 0; W < Workers; ++W)
    Threads.emplace_back([&, W] {
      // The library convention for contended measurements: 10% yield
      // probability per shared access (memory/ChaosHook.h).
      ChaosHook Hook(/*Seed=*/0x407ull + W, /*YieldPermille=*/100);
      SchedHookScope Scope(Hook);
      StartLine.arriveAndWait();
      for (std::uint64_t I = W; I < TotalArrivals; I += Workers) {
        const soak::Arrival &A = Arrivals[I];
        if (!A.IsPush)
          (void)Map.get(W, A.Key);
        else if (A.Value % 2 == 0)
          (void)Map.insert(W, A.Key, A.Value);
        else
          (void)Map.erase(W, A.Key);
      }
    });
  StartLine.arriveAndWait();
  for (std::thread &T : Threads)
    T.join();

  const obs::PathSnapshot S = Map.pathSnapshot();
  const std::uint64_t Prefill = KeyRange / 2;
  std::cout << "hot-key map: " << TotalArrivals << " arrivals over "
            << KeyRange << " keys, Zipf(1.1), " << WritePercent
            << "% writes, " << Workers << " workers\n"
            << "  top-8 keys carried "
            << (100 * Top8 + TotalArrivals / 2) / TotalArrivals
            << "% of the traffic\n"
            << "  paths: shortcut " << S.path(obs::Path::Shortcut)
            << ", lock " << S.path(obs::Path::Lock) << " (aborted shortcuts "
            << S.event(obs::Event::ShortcutAbort) << "), live entries "
            << Map.sizeForTesting() << "\n";

  if (Top8 * 2 < TotalArrivals) {
    std::cerr << "FAIL: Zipf skew did not materialize\n";
    return 1;
  }
  if (!S.conserves() || S.Ops != TotalArrivals + Prefill) {
    std::cerr << "FAIL: path counters do not conserve over the run\n";
    return 1;
  }
  std::cout << "OK: every operation retired on exactly one path; reads "
               "never serialized\n";
  return 0;
}
