//===- tests/support_test.cpp - support/ substrate unit tests ------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "support/Backoff.h"
#include "support/BitPack.h"
#include "support/CacheLine.h"
#include "support/SpinWait.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// BitPack
//===----------------------------------------------------------------------===

TEST(BitPackTest, LowBitMask) {
  EXPECT_EQ(lowBitMask<std::uint64_t>(1), 0x1u);
  EXPECT_EQ(lowBitMask<std::uint64_t>(16), 0xFFFFu);
  EXPECT_EQ(lowBitMask<std::uint64_t>(32), 0xFFFFFFFFull);
  EXPECT_EQ(lowBitMask<std::uint64_t>(64), ~std::uint64_t{0});
  EXPECT_EQ(lowBitMask<std::uint32_t>(32), ~std::uint32_t{0});
}

TEST(BitPackTest, BitFieldRoundTrip) {
  using F = BitField<std::uint64_t, 16, 16>;
  EXPECT_EQ(F::maxValue(), 0xFFFFu);
  std::uint64_t Word = 0;
  Word = F::set(Word, 0xABCD);
  EXPECT_EQ(F::get(Word), 0xABCDu);
  // Neighbouring bits untouched.
  EXPECT_EQ(Word & 0xFFFFu, 0u);
  EXPECT_EQ(Word >> 32, 0u);
}

TEST(BitPackTest, BitFieldSetPreservesOthers) {
  using Low = BitField<std::uint64_t, 0, 8>;
  using High = BitField<std::uint64_t, 8, 8>;
  std::uint64_t Word = Low::encode(0x12) | High::encode(0x34);
  Word = Low::set(Word, 0xFF);
  EXPECT_EQ(Low::get(Word), 0xFFu);
  EXPECT_EQ(High::get(Word), 0x34u);
}

TEST(BitPackTest, PackedTripleRoundTrip) {
  using T = PackedTriple<std::uint64_t, 16, 16, 32>;
  const std::uint64_t Word = T::pack(0x1234, 0x5678, 0x9ABCDEF0);
  EXPECT_EQ(T::a(Word), 0x1234u);
  EXPECT_EQ(T::b(Word), 0x5678u);
  EXPECT_EQ(T::c(Word), 0x9ABCDEF0u);
}

TEST(BitPackTest, PackedTripleExtremes) {
  using T = PackedTriple<std::uint64_t, 16, 16, 32>;
  const std::uint64_t Word = T::pack(0xFFFF, 0xFFFF, 0xFFFFFFFF);
  EXPECT_EQ(T::a(Word), 0xFFFFu);
  EXPECT_EQ(T::b(Word), 0xFFFFu);
  EXPECT_EQ(T::c(Word), 0xFFFFFFFFu);
  EXPECT_EQ(Word, ~std::uint64_t{0});
}

TEST(BitPackTest, PackedTriple128) {
  using T = PackedTriple<unsigned __int128, 32, 32, 64>;
  const unsigned __int128 Word =
      T::pack(0xDEADBEEF, 0xCAFEBABE, 0x0123456789ABCDEFull);
  EXPECT_EQ(static_cast<std::uint64_t>(T::a(Word)), 0xDEADBEEFull);
  EXPECT_EQ(static_cast<std::uint64_t>(T::b(Word)), 0xCAFEBABEull);
  EXPECT_EQ(static_cast<std::uint64_t>(T::c(Word)), 0x0123456789ABCDEFull);
}

TEST(BitPackTest, PackedPairRoundTrip) {
  using P = PackedPair<std::uint64_t, 32, 32>;
  const std::uint64_t Word = P::pack(7, 0xFFFF0000);
  EXPECT_EQ(P::a(Word), 7u);
  EXPECT_EQ(P::b(Word), 0xFFFF0000u);
}

//===----------------------------------------------------------------------===
// SplitMix64
//===----------------------------------------------------------------------===

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A(), B());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    if (A() == B())
      ++Same;
  EXPECT_EQ(Same, 0);
}

TEST(SplitMix64Test, BelowStaysInRange) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(Rng.below(10), 10u);
}

TEST(SplitMix64Test, BelowCoversRange) {
  SplitMix64 Rng(7);
  std::set<std::uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(Rng.below(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(SplitMix64Test, ChanceExtremes) {
  SplitMix64 Rng(3);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Rng.chance(0, 100));
    EXPECT_TRUE(Rng.chance(100, 100));
  }
}

TEST(SplitMix64Test, ChanceRoughlyUniform) {
  SplitMix64 Rng(11);
  int Hits = 0;
  const int Trials = 20000;
  for (int I = 0; I < Trials; ++I)
    if (Rng.chance(25, 100))
      ++Hits;
  EXPECT_NEAR(static_cast<double>(Hits) / Trials, 0.25, 0.02);
}

TEST(SplitMix64Test, SplitDecorrelatesWorkers) {
  SplitMix64 Base(99);
  SplitMix64 W0 = Base.split(0);
  SplitMix64 W1 = Base.split(1);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    if (W0() == W1())
      ++Same;
  EXPECT_EQ(Same, 0);
}

//===----------------------------------------------------------------------===
// SpinWait / Backoff
//===----------------------------------------------------------------------===

TEST(SpinWaitTest, EscalationCountsUp) {
  SpinWait Waiter;
  for (std::uint32_t I = 0; I < 10; ++I)
    Waiter.once();
  EXPECT_EQ(Waiter.spinCount(), 10u);
  Waiter.reset();
  EXPECT_EQ(Waiter.spinCount(), 0u);
}

TEST(SpinWaitTest, SpinUntilObservesOtherThread) {
  std::atomic<bool> Flag{false};
  std::thread Setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    Flag.store(true);
  });
  spinUntil([&] { return Flag.load(); });
  EXPECT_TRUE(Flag.load());
  Setter.join();
}

TEST(BackoffTest, WindowGrowsAndResets) {
  ExponentialBackoff Backoff(4, 64);
  EXPECT_EQ(Backoff.window(), 4u);
  Backoff.onFailure();
  EXPECT_EQ(Backoff.window(), 8u);
  Backoff.onFailure();
  EXPECT_EQ(Backoff.window(), 16u);
  Backoff.onSuccess();
  EXPECT_EQ(Backoff.window(), 4u);
}

TEST(BackoffTest, WindowCapped) {
  ExponentialBackoff Backoff(4, 64);
  for (int I = 0; I < 20; ++I)
    Backoff.onFailure();
  EXPECT_LE(Backoff.window(), 64u);
}

namespace {

/// First \p Count randomized step draws of a default-seeded manager. A
/// wide fixed window (no onFailure in between) makes an accidental
/// full-sequence collision between independent streams astronomically
/// unlikely (2^-20 per draw).
std::vector<std::uint64_t> backoffDraws(ExponentialBackoff &Backoff,
                                        std::size_t Count) {
  std::vector<std::uint64_t> Draws;
  for (std::size_t I = 0; I < Count; ++I)
    Draws.push_back(Backoff.stepDrawForTesting());
  return Draws;
}

} // namespace

TEST(BackoffTest, DefaultSeedDivergesAcrossThreads) {
  // Regression: the seed default used to be one shared constant, which
  // put every thread's backoff RNG into the identical SplitMix64 stream
  // — contending threads drew the same windows in lockstep and
  // re-collided, defeating the randomization the manager exists for.
  // Two managers default-constructed on different threads must draw
  // diverging step sequences.
  constexpr std::uint32_t Wide = 1u << 20;
  constexpr std::size_t Draws = 8;
  std::vector<std::uint64_t> A, B;
  std::thread T1([&] {
    ExponentialBackoff Backoff(Wide, Wide);
    A = backoffDraws(Backoff, Draws);
  });
  std::thread T2([&] {
    ExponentialBackoff Backoff(Wide, Wide);
    B = backoffDraws(Backoff, Draws);
  });
  T1.join();
  T2.join();
  EXPECT_NE(A, B) << "two threads' default-seeded backoff streams are "
                     "identical: the lockstep-seed bug is back";
}

TEST(BackoffTest, DefaultSeedDivergesAcrossInstances) {
  // Even on ONE thread, two default-seeded instances must differ (the
  // per-instance nonce): contention-sensitive objects construct one
  // manager per operation site, often from the same thread.
  constexpr std::uint32_t Wide = 1u << 20;
  ExponentialBackoff First(Wide, Wide);
  ExponentialBackoff Second(Wide, Wide);
  EXPECT_NE(backoffDraws(First, 8), backoffDraws(Second, 8));
}

TEST(BackoffTest, ExplicitSeedStaysDeterministic) {
  // Directed tests rely on reproducible backoff; passing an explicit
  // seed must keep two managers in the identical stream.
  constexpr std::uint32_t Wide = 1u << 20;
  ExponentialBackoff First(Wide, Wide, /*Seed=*/42);
  ExponentialBackoff Second(Wide, Wide, /*Seed=*/42);
  EXPECT_EQ(backoffDraws(First, 8), backoffDraws(Second, 8));
}

//===----------------------------------------------------------------------===
// CacheLine
//===----------------------------------------------------------------------===

TEST(CacheLineTest, PaddedHasFullLineSize) {
  EXPECT_GE(sizeof(CacheLinePadded<int>), CacheLineSize);
  EXPECT_EQ(alignof(CacheLinePadded<int>), CacheLineSize);
}

TEST(CacheLineTest, AdjacentElementsDoNotShareLines) {
  CacheLinePadded<int> Two[2];
  const auto A = reinterpret_cast<std::uintptr_t>(&Two[0].value());
  const auto B = reinterpret_cast<std::uintptr_t>(&Two[1].value());
  EXPECT_GE(B - A, CacheLineSize);
}

} // namespace
} // namespace csobj
