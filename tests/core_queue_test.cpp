//===- tests/core_queue_test.cpp - Queue family unit tests ---------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "core/AbortableQueue.h"
#include "core/ContentionSensitiveQueue.h"
#include "core/NonBlockingQueue.h"
#include "memory/AccessCounter.h"
#include "runtime/SpinBarrier.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// Abortable queue — sequential semantics
//===----------------------------------------------------------------------===

TEST(AbortableQueueTest, InitialStateIsEmpty) {
  AbortableQueue<> Queue(8);
  EXPECT_EQ(Queue.capacity(), 8u);
  EXPECT_EQ(Queue.sizeForTesting(), 0u);
  EXPECT_TRUE(Queue.weakDequeue().isEmpty());
}

TEST(AbortableQueueTest, FifoOrder) {
  AbortableQueue<> Queue(8);
  for (std::uint32_t V = 1; V <= 5; ++V)
    EXPECT_EQ(Queue.weakEnqueue(V), PushResult::Done);
  for (std::uint32_t V = 1; V <= 5; ++V) {
    const auto Res = Queue.weakDequeue();
    ASSERT_TRUE(Res.isValue());
    EXPECT_EQ(Res.value(), V);
  }
  EXPECT_TRUE(Queue.weakDequeue().isEmpty());
}

TEST(AbortableQueueTest, FullAtCapacity) {
  AbortableQueue<> Queue(3);
  EXPECT_EQ(Queue.weakEnqueue(1), PushResult::Done);
  EXPECT_EQ(Queue.weakEnqueue(2), PushResult::Done);
  EXPECT_EQ(Queue.weakEnqueue(3), PushResult::Done);
  EXPECT_EQ(Queue.weakEnqueue(4), PushResult::Full);
  EXPECT_EQ(Queue.sizeForTesting(), 3u);
  const auto Res = Queue.weakDequeue();
  ASSERT_TRUE(Res.isValue());
  EXPECT_EQ(Res.value(), 1u);
}

TEST(AbortableQueueTest, CapacityOneQueue) {
  AbortableQueue<> Queue(1);
  EXPECT_EQ(Queue.weakEnqueue(7), PushResult::Done);
  EXPECT_EQ(Queue.weakEnqueue(8), PushResult::Full);
  auto Res = Queue.weakDequeue();
  ASSERT_TRUE(Res.isValue());
  EXPECT_EQ(Res.value(), 7u);
  EXPECT_TRUE(Queue.weakDequeue().isEmpty());
}

TEST(AbortableQueueTest, RingWrapsManyTimes) {
  AbortableQueue<> Queue(3);
  std::deque<std::uint32_t> Model;
  SplitMix64 Rng(5);
  for (int I = 0; I < 5000; ++I) {
    if (Rng.chance(55, 100) && Model.size() < 3) {
      const auto V = static_cast<std::uint32_t>(Rng.below(1u << 30));
      ASSERT_EQ(Queue.weakEnqueue(V), PushResult::Done);
      Model.push_back(V);
    } else if (!Model.empty()) {
      const auto Res = Queue.weakDequeue();
      ASSERT_TRUE(Res.isValue());
      ASSERT_EQ(Res.value(), Model.front());
      Model.pop_front();
    } else {
      ASSERT_TRUE(Queue.weakDequeue().isEmpty());
    }
  }
  EXPECT_EQ(Queue.sizeForTesting(), Model.size());
}

TEST(AbortableQueueTest, SoloOperationsNeverAbort) {
  AbortableQueue<> Queue(64);
  for (int I = 0; I < 500; ++I)
    ASSERT_NE(Queue.weakEnqueue(static_cast<std::uint32_t>(I)),
              PushResult::Abort);
  for (int I = 0; I < 600; ++I)
    ASSERT_FALSE(Queue.weakDequeue().isAbort());
}

TEST(AbortableQueueTest, Wide128RoundTrip) {
  AbortableQueue<Wide128> Queue(4);
  const std::uint64_t Big = 0xFEDCBA9876543210ull;
  EXPECT_EQ(Queue.weakEnqueue(Big), PushResult::Done);
  const auto Res = Queue.weakDequeue();
  ASSERT_TRUE(Res.isValue());
  EXPECT_EQ(Res.value(), Big);
}

//===----------------------------------------------------------------------===
// Access counts (experiment E7's cost model)
//===----------------------------------------------------------------------===

TEST(QueueAccessCountTest, SoloEnqueueIsSixAccesses) {
  AbortableQueue<> Queue(8);
  const AccessCounts Counts = countAccesses(
      [&] { EXPECT_EQ(Queue.weakEnqueue(1), PushResult::Done); });
  // read REAR, help (read + C&S), read FRONT, read ITEMS[next], C&S REAR.
  EXPECT_EQ(Counts.total(), 6u);
}

TEST(QueueAccessCountTest, SoloDequeueIsSixAccesses) {
  AbortableQueue<> Queue(8);
  (void)Queue.weakEnqueue(1);
  const AccessCounts Counts =
      countAccesses([&] { EXPECT_TRUE(Queue.weakDequeue().isValue()); });
  // read REAR, help (read + C&S), read FRONT, read ITEMS[next], C&S
  // FRONT — the generation certificate is free when the slot is helped.
  EXPECT_EQ(Counts.total(), 6u);
}

TEST(QueueAccessCountTest, SoloStrongOpIsSevenAccesses) {
  ContentionSensitiveQueue<> Queue(2, 8);
  const AccessCounts Counts = countAccesses(
      [&] { EXPECT_EQ(Queue.enqueue(0, 5), PushResult::Done); });
  EXPECT_EQ(Counts.total(), 7u);
}

//===----------------------------------------------------------------------===
// Non-interference: the paper's motivating queue example
//===----------------------------------------------------------------------===

TEST(QueueNonInterferenceTest, EnqueueAndDequeueOnNonEmptyQueueCommute) {
  // "operations accessing concurrently the object are non-interfering
  // (e.g., enqueuing and dequeuing on a non-empty queue)" — Section 1.
  // A dequeue C&Ses only FRONT and an enqueue only REAR, so one producer
  // plus one consumer on a queue that provably never empties nor fills
  // (prefill 20008, 20000 ops each, capacity 40016) can never abort,
  // regardless of interleaving.
  AbortableQueue<> Queue(40016);
  for (std::uint32_t I = 0; I < 20008; ++I)
    ASSERT_EQ(Queue.weakEnqueue(I + 1), PushResult::Done);

  SpinBarrier Barrier(2);
  std::uint64_t EnqueueAborts = 0, DequeueAborts = 0;
  std::thread Producer([&] {
    Barrier.arriveAndWait();
    for (std::uint32_t I = 0; I < 20000; ++I)
      if (Queue.weakEnqueue(I + 100) == PushResult::Abort)
        ++EnqueueAborts;
  });
  std::thread Consumer([&] {
    Barrier.arriveAndWait();
    for (std::uint32_t I = 0; I < 20000; ++I)
      if (Queue.weakDequeue().isAbort())
        ++DequeueAborts;
  });
  Producer.join();
  Consumer.join();
  EXPECT_EQ(EnqueueAborts, 0u);
  EXPECT_EQ(DequeueAborts, 0u);
}

//===----------------------------------------------------------------------===
// Non-blocking queue
//===----------------------------------------------------------------------===

TEST(NonBlockingQueueTest, SequentialSemantics) {
  NonBlockingQueue<> Queue(4);
  EXPECT_EQ(Queue.enqueue(1), PushResult::Done);
  EXPECT_EQ(Queue.enqueue(2), PushResult::Done);
  auto R = Queue.dequeue();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 1u);
  R = Queue.dequeue();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 2u);
  EXPECT_TRUE(Queue.dequeue().isEmpty());
}

TEST(NonBlockingQueueTest, ConcurrentEnqueuesAllLand) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t PerThread = 400;
  NonBlockingQueue<> Queue(Threads * PerThread);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I)
        ASSERT_EQ(Queue.enqueue(T * PerThread + I + 1), PushResult::Done);
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Queue.sizeForTesting(), Threads * PerThread);

  std::vector<bool> Seen(Threads * PerThread + 1, false);
  std::vector<std::uint32_t> LastPerThread(Threads, 0);
  for (std::uint32_t I = 0; I < Threads * PerThread; ++I) {
    const auto Res = Queue.dequeue();
    ASSERT_TRUE(Res.isValue());
    const std::uint32_t V = Res.value();
    ASSERT_FALSE(Seen[V]) << "value dequeued twice";
    Seen[V] = true;
    // FIFO per producer: a thread's values come out in push order.
    const std::uint32_t Producer = (V - 1) / PerThread;
    ASSERT_GT(V, LastPerThread[Producer]);
    LastPerThread[Producer] = V;
  }
  EXPECT_TRUE(Queue.dequeue().isEmpty());
}

TEST(NonBlockingQueueTest, ProducerConsumerConservesValues) {
  NonBlockingQueue<> Queue(64);
  constexpr std::uint32_t Count = 20000;
  std::uint64_t SumIn = 0, SumOut = 0;
  SpinBarrier Barrier(2);
  std::thread Producer([&] {
    SplitMix64 Rng(3);
    Barrier.arriveAndWait();
    for (std::uint32_t I = 0; I < Count; ++I) {
      const auto V = static_cast<std::uint32_t>(Rng.below(1u << 20)) + 1;
      while (Queue.enqueue(V) != PushResult::Done) {
      }
      SumIn += V;
    }
  });
  std::thread Consumer([&] {
    Barrier.arriveAndWait();
    std::uint32_t Got = 0;
    while (Got < Count) {
      const auto Res = Queue.dequeue();
      if (Res.isValue()) {
        SumOut += Res.value();
        ++Got;
      }
    }
  });
  Producer.join();
  Consumer.join();
  EXPECT_EQ(SumIn, SumOut);
  EXPECT_EQ(Queue.sizeForTesting(), 0u);
}

//===----------------------------------------------------------------------===
// Contention-sensitive queue
//===----------------------------------------------------------------------===

TEST(ContentionSensitiveQueueTest, SequentialSemantics) {
  ContentionSensitiveQueue<> Queue(2, 4);
  EXPECT_EQ(Queue.enqueue(0, 11), PushResult::Done);
  EXPECT_EQ(Queue.enqueue(1, 22), PushResult::Done);
  auto R = Queue.dequeue(0);
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 11u);
  R = Queue.dequeue(1);
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 22u);
  EXPECT_TRUE(Queue.dequeue(0).isEmpty());
}

TEST(ContentionSensitiveQueueTest, StrongOpsNeverAbortUnderContention) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t OpsPerThread = 1500;
  ContentionSensitiveQueue<> Queue(Threads, 256);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(T + 77);
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < OpsPerThread; ++I) {
        if (Rng.chance(1, 2)) {
          ASSERT_NE(Queue.enqueue(
                        T, static_cast<std::uint32_t>(Rng.below(9999)) + 1),
                    PushResult::Abort);
        } else {
          ASSERT_FALSE(Queue.dequeue(T).isAbort());
        }
      }
    });
  for (auto &W : Workers)
    W.join();
}

} // namespace
} // namespace csobj
