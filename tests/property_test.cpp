//===- tests/property_test.cpp - Parameterized property sweeps -----------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style sweeps over capacities, seeds, thread counts and op
/// mixes using parameterized gtest suites. The invariants checked:
///
///  P1. Sequential equivalence: any single-threaded operation sequence on
///      any stack/queue implementation matches the reference model.
///  P2. Conservation: under concurrency, every pushed value pops at most
///      once and nothing is invented; net count matches final size.
///  P3. Solo non-abort: weak operations never abort without concurrency,
///      for any capacity and any operation mix.
///  P4. Access-count constancy: the paper's 5/6 access counts hold for
///      EVERY state of the object, not just the empty one.
///
//===----------------------------------------------------------------------===//

#include "core/AbortableQueue.h"
#include "core/AbortableStack.h"
#include "core/ContentionSensitiveQueue.h"
#include "core/ContentionSensitiveStack.h"
#include "core/NonBlockingStack.h"
#include "memory/AccessCounter.h"
#include "runtime/SpinBarrier.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <thread>
#include <tuple>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// P1: sequential equivalence, swept over (capacity, seed, push-bias)
//===----------------------------------------------------------------------===

class StackSequentialProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>> {};

TEST_P(StackSequentialProperty, MatchesReferenceModel) {
  const auto [Capacity, Seed, PushPercent] = GetParam();
  AbortableStack<> Weak(Capacity);
  NonBlockingStack<> NonBlocking(Capacity);
  ContentionSensitiveStack<> Strong(1, Capacity);
  std::vector<std::uint32_t> Model;
  SplitMix64 Rng(Seed);
  for (int I = 0; I < 3000; ++I) {
    if (Rng.chance(PushPercent, 100)) {
      const auto V = static_cast<std::uint32_t>(Rng.below(1u << 24)) + 1;
      const PushResult Expected = Model.size() < Capacity
                                      ? PushResult::Done
                                      : PushResult::Full;
      ASSERT_EQ(Weak.weakPush(V), Expected);
      ASSERT_EQ(NonBlocking.push(V), Expected);
      ASSERT_EQ(Strong.push(0, V), Expected);
      if (Expected == PushResult::Done)
        Model.push_back(V);
    } else {
      const auto A = Weak.weakPop();
      const auto B = NonBlocking.pop();
      const auto C = Strong.pop(0);
      if (Model.empty()) {
        ASSERT_TRUE(A.isEmpty());
        ASSERT_TRUE(B.isEmpty());
        ASSERT_TRUE(C.isEmpty());
      } else {
        ASSERT_TRUE(A.isValue());
        ASSERT_EQ(A.value(), Model.back());
        ASSERT_EQ(B.value(), Model.back());
        ASSERT_EQ(C.value(), Model.back());
        Model.pop_back();
      }
    }
  }
  ASSERT_EQ(Weak.sizeForTesting(), Model.size());
  ASSERT_EQ(NonBlocking.sizeForTesting(), Model.size());
  ASSERT_EQ(Strong.sizeForTesting(), Model.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StackSequentialProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 64u, 1000u),
                       ::testing::Values(1u, 42u, 12345u),
                       ::testing::Values(30u, 50u, 70u)));

class QueueSequentialProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>> {};

TEST_P(QueueSequentialProperty, MatchesReferenceModel) {
  const auto [Capacity, Seed, PushPercent] = GetParam();
  AbortableQueue<> Weak(Capacity);
  ContentionSensitiveQueue<> Strong(1, Capacity);
  std::deque<std::uint32_t> Model;
  SplitMix64 Rng(Seed);
  for (int I = 0; I < 3000; ++I) {
    if (Rng.chance(PushPercent, 100)) {
      const auto V = static_cast<std::uint32_t>(Rng.below(1u << 24)) + 1;
      const PushResult Expected = Model.size() < Capacity
                                      ? PushResult::Done
                                      : PushResult::Full;
      ASSERT_EQ(Weak.weakEnqueue(V), Expected);
      ASSERT_EQ(Strong.enqueue(0, V), Expected);
      if (Expected == PushResult::Done)
        Model.push_back(V);
    } else {
      const auto A = Weak.weakDequeue();
      const auto B = Strong.dequeue(0);
      if (Model.empty()) {
        ASSERT_TRUE(A.isEmpty());
        ASSERT_TRUE(B.isEmpty());
      } else {
        ASSERT_TRUE(A.isValue());
        ASSERT_EQ(A.value(), Model.front());
        ASSERT_EQ(B.value(), Model.front());
        Model.pop_front();
      }
    }
  }
  ASSERT_EQ(Weak.sizeForTesting(), Model.size());
  ASSERT_EQ(Strong.sizeForTesting(), Model.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueueSequentialProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 64u, 1000u),
                       ::testing::Values(1u, 42u, 12345u),
                       ::testing::Values(30u, 50u, 70u)));

//===----------------------------------------------------------------------===
// P2: conservation under concurrency, swept over thread counts
//===----------------------------------------------------------------------===

class StackConservationProperty
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StackConservationProperty, NoValueInventedOrDuplicated) {
  const std::uint32_t Threads = GetParam();
  constexpr std::uint32_t PerThread = 600;
  ContentionSensitiveStack<> Stack(Threads, Threads * PerThread);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  std::vector<std::vector<std::uint32_t>> PoppedPerThread(Threads);
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(T + 1000);
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I) {
        // Unique tagged values: thread id in the top bits.
        const std::uint32_t V = (T << 24) | (I + 1);
        ASSERT_EQ(Stack.push(T, V), PushResult::Done);
        if (Rng.chance(1, 2)) {
          const auto R = Stack.pop(T);
          if (R.isValue())
            PoppedPerThread[T].push_back(R.value());
        }
      }
    });
  for (auto &W : Workers)
    W.join();

  // Drain and collect everything.
  std::vector<std::uint32_t> All;
  for (auto &P : PoppedPerThread)
    All.insert(All.end(), P.begin(), P.end());
  while (true) {
    const auto R = Stack.pop(0);
    if (!R.isValue())
      break;
    All.push_back(R.value());
  }
  ASSERT_EQ(All.size(), static_cast<std::size_t>(Threads) * PerThread);
  std::sort(All.begin(), All.end());
  ASSERT_TRUE(std::adjacent_find(All.begin(), All.end()) == All.end())
      << "duplicate value popped";
  for (std::uint32_t V : All) {
    const std::uint32_t T = V >> 24;
    const std::uint32_t I = V & 0xFFFFFF;
    ASSERT_LT(T, Threads);
    ASSERT_GE(I, 1u);
    ASSERT_LE(I, PerThread);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StackConservationProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

//===----------------------------------------------------------------------===
// P3: solo operations never abort, swept over capacity and mix
//===----------------------------------------------------------------------===

class SoloNeverAbortsProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(SoloNeverAbortsProperty, StackAndQueue) {
  const auto [Capacity, PushPercent] = GetParam();
  AbortableStack<> Stack(Capacity);
  AbortableQueue<> Queue(Capacity);
  SplitMix64 Rng(Capacity * 31 + PushPercent);
  for (int I = 0; I < 2000; ++I) {
    const auto V = static_cast<std::uint32_t>(Rng.below(1u << 20)) + 1;
    if (Rng.chance(PushPercent, 100)) {
      ASSERT_NE(Stack.weakPush(V), PushResult::Abort);
      ASSERT_NE(Queue.weakEnqueue(V), PushResult::Abort);
    } else {
      ASSERT_FALSE(Stack.weakPop().isAbort());
      ASSERT_FALSE(Queue.weakDequeue().isAbort());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SoloNeverAbortsProperty,
    ::testing::Combine(::testing::Values(1u, 3u, 16u, 255u),
                       ::testing::Values(10u, 50u, 90u)));

//===----------------------------------------------------------------------===
// P4: access counts hold in every state (the paper's counts are
//     state-independent: "whatever the number of processes and the size
//     of the stack")
//===----------------------------------------------------------------------===

class AccessCountEveryStateProperty
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AccessCountEveryStateProperty, StackCountsAreStateIndependent) {
  const std::uint32_t Prefill = GetParam();
  ContentionSensitiveStack<> Stack(2, 1024);
  for (std::uint32_t I = 0; I < Prefill; ++I)
    ASSERT_EQ(Stack.push(0, I + 1), PushResult::Done);

  const AccessCounts PushCounts =
      countAccesses([&] { ASSERT_EQ(Stack.push(0, 7), PushResult::Done); });
  EXPECT_EQ(PushCounts.total(), 6u);
  EXPECT_EQ(PushCounts.CasFailures, 0u);

  const AccessCounts PopCounts =
      countAccesses([&] { ASSERT_TRUE(Stack.pop(1).isValue()); });
  EXPECT_EQ(PopCounts.total(), 6u);
  EXPECT_EQ(PopCounts.CasFailures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AccessCountEveryStateProperty,
                         ::testing::Values(0u, 1u, 5u, 100u, 1000u));

//===----------------------------------------------------------------------===
// Codec cross-checks: Compact64 and Wide128 agree behaviourally
//===----------------------------------------------------------------------===

class CodecAgreementProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CodecAgreementProperty, BothCodecsSameResults) {
  const std::uint64_t Seed = GetParam();
  AbortableStack<Compact64> Narrow(16);
  AbortableStack<Wide128> Wide(16);
  SplitMix64 Rng(Seed);
  for (int I = 0; I < 2000; ++I) {
    if (Rng.chance(1, 2)) {
      const auto V = static_cast<std::uint32_t>(Rng.below(1u << 24)) + 1;
      ASSERT_EQ(Narrow.weakPush(V), Wide.weakPush(V));
    } else {
      const auto A = Narrow.weakPop();
      const auto B = Wide.weakPop();
      ASSERT_EQ(A.isValue(), B.isValue());
      ASSERT_EQ(A.isEmpty(), B.isEmpty());
      if (A.isValue())
        ASSERT_EQ(static_cast<std::uint64_t>(A.value()), B.value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CodecAgreementProperty,
                         ::testing::Values(3u, 99u, 2024u, 777777u));

//===----------------------------------------------------------------------===
// Wide128 end-to-end: the DWCAS configuration behaves identically under
// concurrency, including the Figure 3 wrapper and 64-bit payloads
//===----------------------------------------------------------------------===

class Wide128Property : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Wide128Property, CsStackConservesWidePayloads) {
  const std::uint32_t Threads = GetParam();
  constexpr std::uint32_t PerThread = 300;
  ContentionSensitiveStack<Wide128> Stack(Threads, Threads * PerThread);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I) {
        // 64-bit payloads that exceed any 32-bit field.
        const std::uint64_t V =
            (static_cast<std::uint64_t>(T + 1) << 40) | (I + 1);
        ASSERT_EQ(Stack.push(T, V), PushResult::Done);
      }
    });
  for (auto &W : Workers)
    W.join();
  ASSERT_EQ(Stack.sizeForTesting(), Threads * PerThread);
  std::uint64_t Seen = 0;
  for (std::uint32_t I = 0; I < Threads * PerThread; ++I) {
    const auto R = Stack.pop(0);
    ASSERT_TRUE(R.isValue());
    ASSERT_GT(R.value() >> 40, 0u) << "wide payload truncated";
    Seen += R.value();
  }
  std::uint64_t Expected = 0;
  for (std::uint32_t T = 0; T < Threads; ++T)
    for (std::uint32_t I = 0; I < PerThread; ++I)
      Expected += (static_cast<std::uint64_t>(T + 1) << 40) | (I + 1);
  ASSERT_EQ(Seen, Expected);
}

TEST_P(Wide128Property, CsQueueFifoPerProducer) {
  const std::uint32_t Threads = GetParam();
  constexpr std::uint32_t PerThread = 300;
  ContentionSensitiveQueue<Wide128> Queue(Threads, Threads * PerThread);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I) {
        const std::uint64_t V =
            (static_cast<std::uint64_t>(T + 1) << 40) | (I + 1);
        ASSERT_EQ(Queue.enqueue(T, V), PushResult::Done);
      }
    });
  for (auto &W : Workers)
    W.join();
  std::vector<std::uint64_t> LastPerProducer(Threads, 0);
  for (std::uint32_t I = 0; I < Threads * PerThread; ++I) {
    const auto R = Queue.dequeue(0);
    ASSERT_TRUE(R.isValue());
    const auto Producer =
        static_cast<std::uint32_t>((R.value() >> 40) - 1);
    ASSERT_LT(Producer, Threads);
    ASSERT_GT(R.value(), LastPerProducer[Producer])
        << "per-producer FIFO violated";
    LastPerProducer[Producer] = R.value();
  }
  ASSERT_TRUE(Queue.dequeue(0).isEmpty());
}

INSTANTIATE_TEST_SUITE_P(Sweep, Wide128Property,
                         ::testing::Values(1u, 2u, 4u));

//===----------------------------------------------------------------------===
// Sequence-number wrap: 16-bit tags survive > 2^16 reuses of one slot
//===----------------------------------------------------------------------===

TEST(SeqWrapProperty, SingleSlotReusedBeyondTagRange) {
  AbortableStack<> Stack(1);
  for (std::uint32_t I = 0; I < (1u << 16) + 500; ++I) {
    ASSERT_EQ(Stack.weakPush(I | 1u), PushResult::Done);
    const auto R = Stack.weakPop();
    ASSERT_TRUE(R.isValue());
    ASSERT_EQ(R.value(), I | 1u);
  }
  EXPECT_TRUE(Stack.weakPop().isEmpty());
}

TEST(SeqWrapProperty, QueueRingWrapsBeyondTagRange) {
  AbortableQueue<> Queue(2);
  for (std::uint32_t I = 0; I < (1u << 16) + 500; ++I) {
    ASSERT_EQ(Queue.weakEnqueue(I + 1), PushResult::Done);
    const auto R = Queue.weakDequeue();
    ASSERT_TRUE(R.isValue());
    ASSERT_EQ(R.value(), I + 1);
  }
}

} // namespace
} // namespace csobj
