//===- tests/map_test.cpp - Directed ordered-map schedules ----------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Directed InterleaveScheduler schedules for the contention-sensitive
/// ordered map, pinning the claims the conformance battery can only
/// observe statistically:
///
///  * a shortcut link C&S aborted by a same-window writer falls through
///    to the per-region doorway+lock exactly once;
///  * a second writer arriving during a writer's lock tenure reads
///    CONTENTION=1 and serializes through the doorway without ever
///    attempting (or aborting) the shortcut;
///  * a reader completes in its exact wait-free access count while a
///    writer holds the region lock;
///  * a FaultPlan crash mid-update leaves the key readable and writable
///    for the survivor (all-or-nothing);
///  * a writer crashed *inside* its region lock strands only that
///    region's update path — reads and other regions stay live (the
///    documented stall-only progress class);
///  * solo access counts are exact under Instrumented and invisible
///    under Fast.
///
//===----------------------------------------------------------------------===//

#include "core/ContentionSensitiveMap.h"
#include "core/SkipListCore.h"
#include "faults/FaultInjector.h"
#include "faults/FaultPlan.h"
#include "locks/TasLock.h"
#include "memory/AccessCounter.h"
#include "memory/RegisterPolicy.h"
#include "sched/InterleaveScheduler.h"
#include "support/Backoff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace csobj {
namespace {

using Map = ContentionSensitiveMap<>;

constexpr std::uint32_t Cap = 64;

/// First key >= From whose deterministic tower height is 1 (keeps every
/// probed access count at its documented minimum).
std::uint32_t heightOneKey(std::uint32_t From) {
  std::uint32_t K = From;
  while (SkipListCore<>::heightOf(K) != 1)
    ++K;
  return K;
}

/// First height-1 key >= From that lands in \p Region of \p Regions.
std::uint32_t heightOneKeyInRegion(std::uint32_t From, std::uint32_t Region,
                                   std::uint32_t Regions) {
  std::uint32_t K = From;
  while (K % Regions != Region || SkipListCore<>::heightOf(K) != 1)
    ++K;
  return K;
}

/// Shared-access count of \p Body under a solo controlled schedule.
std::size_t accessesOf(std::function<void()> Body) {
  InterleaveScheduler Scheduler(1);
  const auto Trace = Scheduler.run(
      {std::move(Body)},
      [](std::size_t, const std::vector<std::uint32_t> &Parked) {
        return Parked.front();
      });
  return Trace.Decisions.size();
}

bool parked(const std::vector<std::uint32_t> &Parked, std::uint32_t Tid) {
  return std::find(Parked.begin(), Parked.end(), Tid) != Parked.end();
}

/// Solo access count of a fresh insert of a height-1 key on an empty
/// map. The final access is the level-0 link C&S (the live-counter bump
/// after it is reclamation-channel bookkeeping), so (count - 1) grants
/// parks a writer exactly at its link C&S.
std::size_t freshInsertAccesses(std::uint32_t K) {
  Map Probe(2, Cap, 1);
  return accessesOf([&] { (void)Probe.insert(0, K, 1); });
}

/// Solo access count of an update of an existing key; the last access
/// is the ValState C&S.
std::size_t updateAccesses(std::uint32_t K) {
  Map Probe(2, Cap, 1);
  if (Probe.insert(0, K, 1) != PushResult::Done)
    ADD_FAILURE() << "probe prefill failed";
  return accessesOf([&] { (void)Probe.insert(1, K, 2); });
}

TEST(MapDirectedTest, ShortcutAbortFallsThroughToRegionLockExactlyOnce) {
  const std::uint32_t KA = heightOneKey(0);
  const std::uint32_t KB = heightOneKey(KA + 1);
  const std::size_t Fresh = freshInsertAccesses(KB);
  ASSERT_GE(Fresh, 4u);
  const std::size_t BPark = Fresh - 1; // B parked at its link C&S

  Map M(2, Cap, /*RegionCount=*/1);
  std::optional<PushResult> ARes, BRes;
  std::size_t BGrants = 0;
  InterleaveScheduler Scheduler(2);
  Scheduler.run(
      {[&] { ARes = M.insert(0, KA, 11); },
       [&] { BRes = M.insert(1, KB, 22); }},
      [&](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        // B up to (but not through) its link C&S, then A to completion,
        // then B: its C&S expects the empty window A just filled.
        if (BGrants < BPark && parked(Parked, 1)) {
          ++BGrants;
          return 1;
        }
        if (parked(Parked, 0))
          return 0;
        return Parked.front();
      });

  ASSERT_TRUE(ARes.has_value());
  ASSERT_TRUE(BRes.has_value());
  EXPECT_EQ(*ARes, PushResult::Done);
  EXPECT_EQ(*BRes, PushResult::Done);

  const obs::PathSnapshot S = M.pathSnapshot();
  EXPECT_TRUE(S.conserves());
  EXPECT_EQ(S.Ops, 2u);
  EXPECT_EQ(S.path(obs::Path::Shortcut), 1u) << "A must stay on the shortcut";
  EXPECT_EQ(S.path(obs::Path::Lock), 1u)
      << "B must retire through the region lock exactly once";
  EXPECT_EQ(S.event(obs::Event::ShortcutAbort), 1u);
  // B's lock-protected retry succeeds on its first attempt (A is done),
  // so line 08 never re-spins.
  EXPECT_EQ(S.event(obs::Event::ProtectedRetry), 0u);

  const PopResult<std::uint32_t> GA = M.get(0, KA);
  const PopResult<std::uint32_t> GB = M.get(0, KB);
  ASSERT_TRUE(GA.isValue());
  ASSERT_TRUE(GB.isValue());
  EXPECT_EQ(GA.value(), 11u);
  EXPECT_EQ(GB.value(), 22u);
}

TEST(MapDirectedTest, SecondWriterSerializesThroughDoorwayDuringLockTenure) {
  const std::uint32_t KA = heightOneKey(0);
  const std::size_t Upd = updateAccesses(KA);
  ASSERT_GE(Upd, 3u);

  Map M(2, Cap, /*RegionCount=*/1);
  ASSERT_EQ(M.insert(0, KA, 1), PushResult::Done);

  std::optional<PushResult> BRes, C1Res, C2Res;
  std::size_t BGrants = 0, CGrants = 0;
  int Phase = 0;
  InterleaveScheduler Scheduler(2);
  Scheduler.run(
      {[&] { BRes = M.insert(0, KA, 5); },
       [&] {
         C1Res = M.insert(1, KA, 6);
         C2Res = M.insert(1, KA, 7);
       }},
      [&](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        // 0: B up to its ValState C&S. 1: C's first update completes,
        // invalidating B's read tag. 2: B aborts, enters the doorway,
        // takes the lock, raises CONTENTION. 3: C's second update reads
        // CONTENTION=1 (one access) — it must now serialize. 4: drain B
        // then C.
        if (Phase == 0) {
          if (BGrants < Upd - 1 && parked(Parked, 0)) {
            ++BGrants;
            return 0;
          }
          Phase = 1;
        }
        if (Phase == 1) {
          if (CGrants < Upd && parked(Parked, 1)) {
            ++CGrants;
            return 1;
          }
          Phase = 2;
        }
        if (Phase == 2) {
          if (M.regionSkeleton(0).contentionForTesting() == 0 &&
              parked(Parked, 0))
            return 0;
          Phase = 3;
        }
        if (Phase == 3 && parked(Parked, 1)) {
          Phase = 4;
          return 1;
        }
        if (parked(Parked, 0))
          return 0;
        return Parked.front();
      });

  ASSERT_TRUE(BRes.has_value());
  ASSERT_TRUE(C1Res.has_value());
  ASSERT_TRUE(C2Res.has_value());
  EXPECT_EQ(*BRes, PushResult::Done);
  EXPECT_EQ(*C1Res, PushResult::Done);
  EXPECT_EQ(*C2Res, PushResult::Done);

  const obs::PathSnapshot S = M.pathSnapshot();
  EXPECT_TRUE(S.conserves());
  EXPECT_EQ(S.Ops, 4u); // prefill + B + C1 + C2
  EXPECT_EQ(S.path(obs::Path::Shortcut), 2u) << "prefill and C's first update";
  EXPECT_EQ(S.path(obs::Path::Lock), 2u)
      << "B's aborted update and C's contended one must both serialize";
  EXPECT_EQ(S.event(obs::Event::ShortcutAbort), 1u)
      << "C's second update must not even attempt the shortcut";

  // C's second update entered the doorway after B, so it commits last.
  const PopResult<std::uint32_t> G = M.get(0, KA);
  ASSERT_TRUE(G.isValue());
  EXPECT_EQ(G.value(), 7u);
}

TEST(MapDirectedTest, ReaderCompletesWaitFreeDuringWriterLockTenure) {
  const std::uint32_t KA = heightOneKey(0);
  const std::size_t Upd = updateAccesses(KA);
  std::size_t GetCost;
  {
    Map Probe(3, Cap, 1);
    ASSERT_EQ(Probe.insert(0, KA, 1), PushResult::Done);
    GetCost = accessesOf([&] { (void)Probe.get(1, KA); });
  }

  Map M(3, Cap, /*RegionCount=*/1);
  ASSERT_EQ(M.insert(0, KA, 1), PushResult::Done);

  std::optional<PushResult> WRes, HRes;
  std::optional<PopResult<std::uint32_t>> RRes;
  std::size_t WGrants = 0, RGrants = 0;
  bool ReaderStuck = false;
  int Phase = 0;
  InterleaveScheduler Scheduler(3);
  Scheduler.run(
      {[&] { WRes = M.insert(0, KA, 5); },
       [&] { HRes = M.insert(1, KA, 6); },
       [&] { RRes = M.get(2, KA); }},
      [&](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        // 0: W parked at its ValState C&S. 1: helper H updates, breaking
        // W's tag. 2: W aborts into the doorway+lock (CONTENTION=1).
        // 3: the reader runs alone during W's tenure — it must finish in
        // exactly its solo wait-free access count. 4: drain W.
        if (Phase == 0) {
          if (WGrants < Upd - 1 && parked(Parked, 0)) {
            ++WGrants;
            return 0;
          }
          Phase = 1;
        }
        if (Phase == 1) {
          if (parked(Parked, 1))
            return 1;
          Phase = 2;
        }
        if (Phase == 2) {
          if (M.regionSkeleton(0).contentionForTesting() == 0 &&
              parked(Parked, 0))
            return 0;
          Phase = 3;
        }
        if (Phase == 3) {
          if (parked(Parked, 2)) {
            if (++RGrants > GetCost + 4) {
              ReaderStuck = true; // blocked => would spin past its count
              Phase = 4;
            } else {
              return 2;
            }
          } else {
            Phase = 4;
          }
        }
        if (parked(Parked, 0))
          return 0;
        return Parked.front();
      });

  EXPECT_FALSE(ReaderStuck)
      << "get() exceeded its wait-free access count during lock tenure";
  ASSERT_TRUE(RRes.has_value());
  ASSERT_TRUE(RRes->isValue());
  EXPECT_EQ(RRes->value(), 6u)
      << "reader must see the helper's committed update, not block on W";
  EXPECT_EQ(RGrants, GetCost) << "reader cost changed under a held lock";
  ASSERT_TRUE(WRes.has_value());
  EXPECT_EQ(*WRes, PushResult::Done);

  const PopResult<std::uint32_t> Final = M.get(1, KA);
  ASSERT_TRUE(Final.isValue());
  EXPECT_EQ(Final.value(), 5u) << "W's lock-path retry commits last";

  const obs::PathSnapshot S = M.pathSnapshot();
  EXPECT_TRUE(S.conserves());
  EXPECT_EQ(S.path(obs::Path::Lock), 1u);
  EXPECT_EQ(S.path(obs::Path::Shortcut), 4u); // prefill, H, R, final get
}

TEST(MapDirectedTest, CrashDuringUpdateFaultPlanIsAllOrNothing) {
  const std::uint32_t KA = heightOneKey(0);
  const std::size_t Upd = updateAccesses(KA);

  // Sweep two representative plan points: mid-search and at the C&S.
  for (const std::uint64_t CrashAccess :
       {std::uint64_t{2}, static_cast<std::uint64_t>(Upd - 1)}) {
    Map M(2, Cap, /*RegionCount=*/1);
    ASSERT_EQ(M.insert(1, KA, 1), PushResult::Done);

    std::optional<PopResult<std::uint32_t>> SurvivorGet;
    InterleaveScheduler Scheduler(2);
    Scheduler.run({[&] { (void)M.insert(0, KA, 9); },
                   [&] { SurvivorGet = M.get(1, KA); }},
                  faultPlanPick(FaultPlan::crashAt(0, CrashAccess)));

    ASSERT_TRUE(SurvivorGet.has_value());
    ASSERT_TRUE(SurvivorGet->isValue());
    const std::uint32_t Seen = SurvivorGet->value();
    EXPECT_TRUE(Seen == 1u || Seen == 9u)
        << "torn update at access " << CrashAccess << ": " << Seen;

    // The corpse died on the shortcut — no lock held, full survivor use.
    EXPECT_EQ(M.insert(1, KA, 3), PushResult::Done);
    const PopResult<std::uint32_t> After = M.get(1, KA);
    ASSERT_TRUE(After.isValue());
    EXPECT_EQ(After.value(), 3u);
  }
}

TEST(MapDirectedTest, CrashedLockHolderStallsOnlyItsRegionsWriters) {
  // Same-window fresh inserts must share region 0 for the abort dance.
  const std::uint32_t KAr = heightOneKeyInRegion(0, 0, 2);
  const std::uint32_t KBr = heightOneKeyInRegion(KAr + 1, 0, 2);
  const std::size_t Fresh = freshInsertAccesses(KBr);
  const std::size_t BPark = Fresh - 1;

  Map M(3, Cap, /*RegionCount=*/2);

  std::size_t BGrants = 0;
  bool Killed = false;
  InterleaveScheduler Scheduler(2);
  Scheduler.run(
      {[&] { (void)M.insert(0, KAr, 11); },
       [&] { (void)M.insert(1, KBr, 22); }},
      [&](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        // B parked at its link C&S; A fills the window; B aborts into
        // the region-0 lock; the moment CONTENTION goes up, kill B —
        // a crash-stop inside lock tenure.
        if (BGrants < BPark && parked(Parked, 1)) {
          ++BGrants;
          return 1;
        }
        if (parked(Parked, 0))
          return 0;
        if (!Killed && M.regionSkeleton(0).contentionForTesting()) {
          Killed = true;
          return 1u | InterleaveScheduler::KillFlag;
        }
        return Parked.front();
      });

  ASSERT_TRUE(Killed) << "schedule never drove B into the region lock";
  EXPECT_TRUE(M.regionSkeleton(0).contentionForTesting())
      << "the corpse must still hold region 0 (the stall-only class)";

  // Reads never block: the crashed writer's tenure is invisible to them.
  const PopResult<std::uint32_t> GA = M.get(2, KAr);
  ASSERT_TRUE(GA.isValue());
  EXPECT_EQ(GA.value(), 11u);
  EXPECT_TRUE(M.get(2, KBr).isEmpty())
      << "B died before publishing its key";

  // Other regions are untouched: a region-1 writer runs start to finish.
  const std::uint32_t KOdd = KAr + 1; // region 1
  EXPECT_EQ(M.insert(2, KOdd, 33), PushResult::Done);
  const PopResult<std::uint32_t> GOdd = M.get(2, KOdd);
  ASSERT_TRUE(GOdd.isValue());
  EXPECT_EQ(GOdd.value(), 33u);
  ASSERT_TRUE(M.erase(2, KOdd).isValue());
}

TEST(MapAccessCountTest, SoloCountsAreExactUnderInstrumented) {
  Map M(2, Cap, /*RegionCount=*/2);
  const std::uint32_t K = heightOneKey(0);

  // Documented solo counts (core/ContentionSensitiveMap.h): search is
  // one link read per level (MaxLevel = 8) on a near-empty map.
  EXPECT_EQ(countAccesses([&] { (void)M.get(0, K); }).total(), 8u)
      << "get miss: 8 search reads, no ValState";
  EXPECT_EQ(countAccesses([&] { (void)M.insert(0, K, 7); }).total(), 11u)
      << "fresh insert: 1 CONTENTION + 8 search + 1 admission read + "
         "1 link C&S (allocation and node init are uncounted: they touch "
         "only unreachable storage)";
  EXPECT_EQ(countAccesses([&] { (void)M.get(0, K); }).total(), 9u)
      << "get hit: 8 search reads + 1 ValState read";
  EXPECT_EQ(countAccesses([&] { (void)M.insert(0, K, 8); }).total(), 11u)
      << "update: 1 CONTENTION + 8 search + 1 read + 1 C&S";
  EXPECT_EQ(countAccesses([&] { (void)M.erase(0, K); }).total(), 11u)
      << "erase hit: 1 CONTENTION + 8 search + 1 read + 1 C&S (physical "
         "removal and retire ride the uncounted reclamation channel)";
  EXPECT_EQ(countAccesses([&] { (void)M.erase(0, K); }).total(), 9u)
      << "erase of an erased key: 1 CONTENTION + 8 search reads — the "
         "node is physically gone, there is no tombstone to read";
  EXPECT_EQ(countAccesses([&] { (void)M.get(0, K); }).total(), 8u)
      << "get of an erased key: a plain 8-read miss";
}

TEST(MapCapacityTest, EraseFreesCapacityAcrossManyDistinctKeys) {
  // The tombstone design counted keys-ever: this loop used to hit Full
  // after Capacity distinct keys no matter how many were erased. With
  // physical reclamation, insert->erase over many times Capacity
  // distinct keys must always succeed, and storage must stay bounded by
  // live keys + spares + retire backlog — not by keys-ever.
  constexpr std::uint32_t SmallCap = 8;
  Map M(2, SmallCap, 2);
  for (std::uint32_t K = 0; K < 32 * SmallCap; ++K) {
    ASSERT_EQ(M.insert(0, K, K + 1), PushResult::Done) << "key " << K;
    const PopResult<std::uint32_t> G = M.get(1, K);
    ASSERT_TRUE(G.isValue());
    EXPECT_EQ(G.value(), K + 1);
    const PopResult<std::uint32_t> E = M.erase(0, K);
    ASSERT_TRUE(E.isValue());
    EXPECT_EQ(E.value(), K + 1);
  }
  EXPECT_EQ(M.core().liveCountForTesting(), 0u);
  EXPECT_EQ(M.core().liveCounterForTesting(), 0u);
  // 256 distinct keys churned through a pool that never grew past a
  // handful of nodes (head + the recycled one + scan-timing slack).
  EXPECT_LE(M.core().allocatedNodesForTesting(), 1u + SmallCap + 4u)
      << "reclamation failed: the pool grew with keys-ever";
}

TEST(MapCapacityTest, LiveCountCapacityBoundary) {
  // Full is a statement about *live* keys. At the boundary: filling
  // Capacity distinct keys makes the next fresh key Full, updating an
  // existing key still works, and erasing any one key frees exactly one
  // admission.
  constexpr std::uint32_t SmallCap = 8;
  Map M(2, SmallCap, 2);
  for (std::uint32_t K = 0; K < SmallCap; ++K)
    ASSERT_EQ(M.insert(0, K, K), PushResult::Done);
  EXPECT_EQ(M.insert(0, 100, 1), PushResult::Full);
  EXPECT_EQ(M.insert(1, 200, 2), PushResult::Full);
  EXPECT_EQ(M.insert(0, 3, 33), PushResult::Done)
      << "updates of live keys need no admission";
  ASSERT_TRUE(M.erase(0, 5).isValue());
  EXPECT_EQ(M.insert(0, 100, 1), PushResult::Done)
      << "erase must free capacity";
  EXPECT_EQ(M.insert(0, 200, 2), PushResult::Full)
      << "exactly one admission was freed";
  // Reinserting the erased key itself also works (no tombstone shadow).
  ASSERT_TRUE(M.erase(0, 100).isValue());
  EXPECT_EQ(M.insert(0, 5, 55), PushResult::Done);
  const PopResult<std::uint32_t> G = M.get(1, 5);
  ASSERT_TRUE(G.isValue());
  EXPECT_EQ(G.value(), 55u);
  EXPECT_EQ(M.core().liveCountForTesting(), SmallCap);
}

TEST(MapAccessCountTest, FastPolicyIsInvisibleToTheOracle) {
  ContentionSensitiveMap<TasLockT<Fast>, NoBackoff, Fast> M(2, Cap, 2);
  const std::uint32_t K = heightOneKey(0);
  const AccessCounts Counts = countAccesses([&] {
    ASSERT_EQ(M.insert(0, K, 7), PushResult::Done);
    const PopResult<std::uint32_t> G = M.get(1, K);
    ASSERT_TRUE(G.isValue());
    EXPECT_EQ(G.value(), 7u);
    ASSERT_EQ(M.insert(1, K, 8), PushResult::Done);
    const PopResult<std::uint32_t> E = M.erase(0, K);
    ASSERT_TRUE(E.isValue());
    EXPECT_EQ(E.value(), 8u);
    EXPECT_TRUE(M.get(0, K).isEmpty());
  });
  EXPECT_EQ(Counts.total(), 0u)
      << "Fast registers must compile to bare atomics";
}

TEST(SkipListCoreTest, DeterministicHeightsAndValCodecRoundTrip) {
  // Heights are a pure function of the key, in [1, MaxLevel].
  for (std::uint32_t K = 0; K < 512; ++K) {
    const std::uint32_t H = SkipListCore<>::heightOf(K);
    EXPECT_GE(H, 1u);
    EXPECT_LE(H, SkipListCore<>::MaxLevel);
    EXPECT_EQ(H, SkipListCore<>::heightOf(K));
  }
  // The geometric distribution actually spreads: some key within a
  // small prefix gets a tower above level 1.
  bool SawTall = false;
  for (std::uint32_t K = 0; K < 64 && !SawTall; ++K)
    SawTall = SkipListCore<>::heightOf(K) > 1;
  EXPECT_TRUE(SawTall);

  using Codec = SkipListCore<>::ValCodec;
  const auto F = Codec::unpack(Codec::pack({1, 0xDEADBEEFu, 12345}));
  EXPECT_EQ(F.Index, 1u);
  EXPECT_EQ(F.Value, 0xDEADBEEFu);
  EXPECT_EQ(F.Seq, 12345u);
  // The 30-bit ABA tag wraps modulo its mask, never into other fields.
  const std::uint32_t Top = Codec::SeqMask;
  EXPECT_EQ(Codec::seqAdd(Top, 1), 0u);
}

} // namespace
} // namespace csobj
