//===- tests/faults_test.cpp - Fault subsystem & degraded mode -----------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-injection subsystem (faults/) and the crash-tolerant slow
/// path built on it (locks/LeasedLock.h, locks/RecoverableArbiter.h,
/// core/CrashTolerant.h, runtime/Watchdog.h):
///
///  * FaultPlan execution — the same declarative plan delivered through
///    the wall-clock SchedHook (FaultInjector) and through the explorer
///    picking policy (faultPlanPick), with matching semantics.
///  * LeasedLock — leases, revocation of suspected-dead holders, the
///    lost-lease accounting that makes false suspicion harmless.
///  * RecoverableArbiter — doorway recovery: suspects are skipped,
///    resurrection restores fairness, entry is always bounded.
///  * CrashTolerantContentionSensitive — the fast path keeps the paper's
///    six-access bound with zero degradation when no fault is injected;
///    the slow path degrades to the Figure 2 lock-free loop instead of
///    hanging; degraded histories stay linearizable (lincheck stress).
///  * Watchdog + Driver — wall-clock liveness oracle: planned crashes
///    retire exactly the victim, survivors finish, no stuck operations.
///
/// The crash-at-every-access-point sweep over the crash-tolerant slow
/// path lives in tests/crash_test.cpp next to the Section 5 sweeps it
/// extends.
///
//===----------------------------------------------------------------------===//

#include "faults/FaultInjector.h"
#include "faults/FaultPlan.h"

#include "core/AbortableStack.h"
#include "core/ContentionSensitiveStack.h"
#include "core/CrashTolerant.h"
#include "core/CrashTolerantStack.h"
#include "lincheck/Checker.h"
#include "lincheck/History.h"
#include "lincheck/Spec.h"
#include "locks/LeasedLock.h"
#include "locks/RecoverableArbiter.h"
#include "memory/AccessCounter.h"
#include "memory/AtomicRegister.h"
#include "memory/ChaosHook.h"
#include "runtime/Driver.h"
#include "runtime/SpinBarrier.h"
#include "runtime/Watchdog.h"
#include "sched/InterleaveScheduler.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// FaultInjector: wall-clock plan execution
//===----------------------------------------------------------------------===

/// SchedHook that only counts invocations (chaining probe).
struct CountingHook final : SchedHook {
  void beforeSharedAccess(AccessKind) override { ++Count; }
  std::uint64_t Count = 0;
};

TEST(FaultInjectorTest, CrashStopThrowsAtExactlyThePlannedAccess) {
  FaultClock Clock;
  FaultInjector Injector(FaultPlan::crashAt(0, 2), 0, Clock);
  AtomicRegister<std::uint32_t> Reg;
  std::uint32_t Completed = 0;
  bool Crashed = false;
  {
    SchedHookScope Scope(Injector);
    try {
      for (std::uint32_t I = 0; I < 5; ++I) {
        Reg.write(I);
        ++Completed;
      }
    } catch (const ProcessCrash &) {
      Crashed = true;
    }
  }
  EXPECT_TRUE(Crashed);
  // Accesses 0 and 1 executed; the trigger access (index 2) did not.
  EXPECT_EQ(Completed, 2u);
  EXPECT_EQ(Reg.peekForTesting(), 1u);
  EXPECT_EQ(Injector.accessesSeen(), 3u);
}

TEST(FaultInjectorTest, PlansForOtherThreadsAreIgnored) {
  FaultClock Clock;
  FaultInjector Injector(FaultPlan::crashAt(7, 0), 0, Clock);
  AtomicRegister<std::uint32_t> Reg;
  SchedHookScope Scope(Injector);
  for (std::uint32_t I = 0; I < 4; ++I)
    Reg.write(I);
  EXPECT_EQ(Reg.peekForTesting(), 3u);
  EXPECT_EQ(Injector.accessesSeen(), 4u);
}

TEST(FaultInjectorTest, SoloStallExpiresInsteadOfDeadlocking) {
  FaultClock Clock;
  FaultInjector Injector(FaultPlan::stallAt(0, 1, 64), 0, Clock);
  AtomicRegister<std::uint32_t> Reg;
  SchedHookScope Scope(Injector);
  // Nobody else ticks the clock: the stall must expire via the yield
  // cap and the run complete.
  for (std::uint32_t I = 0; I < 4; ++I)
    Reg.write(I);
  EXPECT_EQ(Reg.peekForTesting(), 3u);
}

TEST(FaultInjectorTest, StallWaitsForForeignClockTicks) {
  FaultClock Clock;
  FaultInjector Injector(FaultPlan::stallAt(0, 0, 8), 0, Clock);
  AtomicRegister<std::uint32_t> Reg;
  std::thread Ticker([&Clock] {
    // A "foreign thread": tick the clock until well past the stall.
    for (std::uint32_t I = 0; I < 4096; ++I)
      Clock.Ticks.fetch_add(1, std::memory_order_relaxed);
  });
  {
    SchedHookScope Scope(Injector);
    Reg.write(1);
  }
  Ticker.join();
  EXPECT_EQ(Reg.peekForTesting(), 1u);
  EXPECT_GE(Clock.Ticks.load(), 8u);
}

TEST(FaultInjectorTest, ChainsInnerHookBeforeItsOwnLogic) {
  FaultClock Clock;
  CountingHook Inner;
  FaultInjector Injector(FaultPlan::crashAt(0, 3), 0, Clock, &Inner);
  AtomicRegister<std::uint32_t> Reg;
  SchedHookScope Scope(Injector);
  try {
    for (std::uint32_t I = 0; I < 10; ++I)
      Reg.write(I);
  } catch (const ProcessCrash &) {
  }
  // The inner hook saw every access attempt, including the fatal one.
  EXPECT_EQ(Inner.Count, 4u);
}

TEST(FaultInjectorTest, RecurringStallFiresAtEveryPeriod) {
  FaultClock Clock;
  // Stall at access 2 and every 3 accesses after: indices 2, 5, 8.
  FaultInjector Injector(
      FaultPlan::everyAccesses(0, 2, 3, FaultKind::Stall, /*Grants=*/4), 0,
      Clock);
  AtomicRegister<std::uint32_t> Reg;
  SchedHookScope Scope(Injector);
  for (std::uint32_t I = 0; I < 10; ++I)
    Reg.write(I); // Solo: each stall expires via the idle yield cap.
  EXPECT_EQ(Injector.accessesSeen(), 10u);
  EXPECT_EQ(Injector.faultsFired(), 3u);
  EXPECT_EQ(Reg.peekForTesting(), 9u);
}

TEST(FaultInjectorTest, RecurringCrashRefiresAcrossResurrections) {
  FaultClock Clock;
  // Crash at access 1 and every 2 after: odd access indices die, even
  // ones execute — only meaningful because this harness resurrects.
  FaultInjector Injector(
      FaultPlan::everyAccesses(0, 1, 2, FaultKind::CrashStop), 0, Clock);
  AtomicRegister<std::uint32_t> Reg;
  SchedHookScope Scope(Injector);
  std::uint32_t Completed = 0, Crashes = 0;
  while (Completed < 4) {
    try {
      Reg.write(Completed);
      ++Completed;
    } catch (const ProcessCrash &) {
      ++Crashes; // Resurrect: same id, same injector, next operation.
    }
  }
  // Accesses 0..6: four writes landed (0,2,4,6), three crashed (1,3,5).
  EXPECT_EQ(Crashes, 3u);
  EXPECT_EQ(Injector.faultsFired(), 3u);
  EXPECT_EQ(Injector.accessesSeen(), 7u);
  EXPECT_EQ(Reg.peekForTesting(), 3u);
}

TEST(FaultInjectorTest, RateTriggersAreDeterministicForPlanSeedAndTid) {
  const FaultPlan Plan =
      FaultPlan::stallAtRate(0, /*Permille=*/250, /*Grants=*/1);
  const auto runOnce = [&Plan] {
    FaultClock Clock;
    FaultInjector Injector(Plan, 0, Clock);
    AtomicRegister<std::uint32_t> Reg;
    SchedHookScope Scope(Injector);
    for (std::uint32_t I = 0; I < 256; ++I)
      Reg.write(I);
    return Injector.faultsFired();
  };
  const std::uint64_t FirstRun = runOnce();
  // A 25% rate over 256 accesses fires a lot, and identically per run.
  EXPECT_GT(FirstRun, 0u);
  EXPECT_LT(FirstRun, 256u);
  EXPECT_EQ(runOnce(), FirstRun);
}

TEST(FaultInjectorTest, RateCrashDegeneratesToOneShotWithoutResurrection) {
  FaultClock Clock;
  // Probability 1 per access: the very first access dies. A harness
  // that does not resurrect (the closed-loop Driver) sees a one-shot.
  FaultInjector Injector(FaultPlan::crashAtRate(0, 1000), 0, Clock);
  AtomicRegister<std::uint32_t> Reg;
  SchedHookScope Scope(Injector);
  bool Crashed = false;
  try {
    Reg.write(1);
  } catch (const ProcessCrash &) {
    Crashed = true;
  }
  EXPECT_TRUE(Crashed);
  EXPECT_EQ(Injector.faultsFired(), 1u);
  EXPECT_EQ(Reg.peekForTesting(), 0u); // The write never executed.
}

//===----------------------------------------------------------------------===
// faultPlanPick: explorer-side plan execution
//===----------------------------------------------------------------------===

/// Body performing \p Iters read+write rounds on its own register.
std::function<void()> counterBody(AtomicRegister<std::uint32_t> &Reg,
                                  std::uint32_t Iters) {
  return [&Reg, Iters] {
    for (std::uint32_t I = 0; I < Iters; ++I)
      Reg.write(Reg.read() + 1);
  };
}

TEST(FaultPlanPickTest, CrashLandsAtExactPerThreadAccessIndex) {
  AtomicRegister<std::uint32_t> Reg0, Reg1;
  InterleaveScheduler Scheduler(2);
  // Thread 0: 5 iterations = 10 accesses; crash at access index 3 (the
  // write of iteration 1) — only iteration 0's write lands.
  Scheduler.run({counterBody(Reg0, 5), counterBody(Reg1, 5)},
                faultPlanPick(FaultPlan::crashAt(0, 3)));
  EXPECT_EQ(Reg0.peekForTesting(), 1u);
  EXPECT_EQ(Reg1.peekForTesting(), 5u); // Survivor finished untouched.
}

TEST(FaultPlanPickTest, StallDefersVictimUntilForeignGrants) {
  AtomicRegister<std::uint32_t> Reg0, Reg1;
  InterleaveScheduler Scheduler(2);
  const auto Trace =
      Scheduler.run({counterBody(Reg0, 5), counterBody(Reg1, 5)},
                    faultPlanPick(FaultPlan::stallAt(0, 1, 4)));
  // Base policy favors thread 0; the stall hands grants 1..4 to thread 1
  // and thread 0 resumes at step 5. Both complete.
  ASSERT_GE(Trace.Decisions.size(), 6u);
  EXPECT_EQ(Trace.Decisions[0].Chosen & ~InterleaveScheduler::KillFlag, 0u);
  for (std::size_t Step = 1; Step <= 4; ++Step)
    EXPECT_EQ(Trace.Decisions[Step].Chosen & ~InterleaveScheduler::KillFlag,
              1u)
        << "step " << Step;
  EXPECT_EQ(Trace.Decisions[5].Chosen & ~InterleaveScheduler::KillFlag, 0u);
  EXPECT_EQ(Reg0.peekForTesting(), 5u);
  EXPECT_EQ(Reg1.peekForTesting(), 5u);
}

TEST(FaultPlanPickTest, SoloStallExpiresWhenNobodyElseCanRun) {
  AtomicRegister<std::uint32_t> Reg0;
  InterleaveScheduler Scheduler(1);
  Scheduler.run({counterBody(Reg0, 3)},
                faultPlanPick(FaultPlan::stallAt(0, 2, 100)));
  EXPECT_EQ(Reg0.peekForTesting(), 3u);
}

TEST(FaultPlanPickTest, RecurringStallKeepsExplorerRunsLive) {
  // The recurring spec re-fires at accesses 1, 4, 7, ... of thread 0;
  // the NextEligible guard must keep each stall from re-triggering at
  // the same access index, and both threads must still finish.
  AtomicRegister<std::uint32_t> Reg0, Reg1;
  InterleaveScheduler Scheduler(2);
  Scheduler.run({counterBody(Reg0, 6), counterBody(Reg1, 6)},
                faultPlanPick(FaultPlan::everyAccesses(
                    0, /*First=*/1, /*Period=*/3, FaultKind::Stall,
                    /*Grants=*/2)));
  EXPECT_EQ(Reg0.peekForTesting(), 6u);
  EXPECT_EQ(Reg1.peekForTesting(), 6u);
}

TEST(FaultPlanPickTest, RateStallPlanExploresSameScheduleEveryRun) {
  const auto runOnce = [] {
    AtomicRegister<std::uint32_t> Reg0, Reg1;
    InterleaveScheduler Scheduler(2);
    const auto Trace =
        Scheduler.run({counterBody(Reg0, 6), counterBody(Reg1, 6)},
                      faultPlanPick(FaultPlan::stallAtRate(0, 300, 2)));
    EXPECT_EQ(Reg0.peekForTesting(), 6u);
    EXPECT_EQ(Reg1.peekForTesting(), 6u);
    std::vector<std::uint32_t> Choices;
    for (const auto &Decision : Trace.Decisions)
      Choices.push_back(Decision.Chosen);
    return Choices;
  };
  // Rate triggers draw from a per-victim stream seeded by the plan, so
  // the "random" faulty schedule replays exactly.
  EXPECT_EQ(runOnce(), runOnce());
}

//===----------------------------------------------------------------------===
// ChaosHook: stall channel
//===----------------------------------------------------------------------===

TEST(ChaosHookTest, StallChannelFiresAndSoloRunsStillTerminate)
{
  ChaosHook Hook(/*Seed=*/7, /*YieldPermille=*/0, /*StallPermille=*/1000,
                 /*StallGrants=*/8);
  AtomicRegister<std::uint32_t> Reg;
  {
    SchedHookScope Scope(Hook);
    for (std::uint32_t I = 0; I < 32; ++I)
      Reg.write(I);
  }
  // Probability 1: every access stalled, and the solo escape hatch
  // released each stall.
  EXPECT_EQ(Hook.stallsTaken(), 32u);
  EXPECT_EQ(Reg.peekForTesting(), 31u);
}

//===----------------------------------------------------------------------===
// LeasedLock
//===----------------------------------------------------------------------===

TEST(LeasedLockTest, AcquireReleaseBumpsEpoch) {
  LeasedLockT<> Lock(2);
  EXPECT_EQ(Lock.holderForTesting(), 0u);
  Lock.lock(0);
  EXPECT_EQ(Lock.holderForTesting(), 1u);
  EXPECT_EQ(Lock.epochForTesting(), 1u);
  Lock.unlock(0);
  EXPECT_EQ(Lock.holderForTesting(), 0u);
  Lock.lock(1);
  EXPECT_EQ(Lock.holderForTesting(), 2u);
  EXPECT_EQ(Lock.epochForTesting(), 2u);
  Lock.unlock(1);
  EXPECT_EQ(Lock.lostLeases(), 0u);
  EXPECT_EQ(Lock.revocations(), 0u);
}

TEST(LeasedLockTest, ExpiredLeaseIsRevokedAndHolderSuspected) {
  SuspectSetT<> Suspects(2);
  LeasedLockT<> Lock(2, &Suspects);
  ASSERT_EQ(Lock.lockBounded(0, 100), LeaseAcquire::Acquired);
  // Thread 0 "dies" holding the lock. A waiter's patience expires, the
  // holder is suspected, the lease revoked — and the waiter itself
  // reports TimedOut (it degrades; the *next* acquirer benefits).
  EXPECT_EQ(Lock.lockBounded(1, 8), LeaseAcquire::TimedOut);
  EXPECT_TRUE(Suspects.isSuspectForTesting(0));
  EXPECT_EQ(Lock.revocations(), 1u);
  EXPECT_EQ(Lock.holderForTesting(), 0u);
  // The next acquisition finds the lock free.
  EXPECT_EQ(Lock.lockBounded(1, 8), LeaseAcquire::Acquired);
  EXPECT_EQ(Lock.holderForTesting(), 2u);
}

TEST(LeasedLockTest, FalselySuspectedHolderLosesLeaseHarmlessly) {
  SuspectSetT<> Suspects(2);
  LeasedLockT<> Lock(2, &Suspects);
  ASSERT_EQ(Lock.lockBounded(0, 100), LeaseAcquire::Acquired);
  ASSERT_EQ(Lock.lockBounded(1, 8), LeaseAcquire::TimedOut); // revokes
  ASSERT_EQ(Lock.lockBounded(1, 8), LeaseAcquire::Acquired);
  const std::uint32_t Epoch = Lock.epochForTesting();
  // Thread 0 was alive after all: its release C&S misses (the epoch
  // moved on) and must not stomp thread 1's lease.
  Lock.unlock(0);
  EXPECT_EQ(Lock.lostLeases(), 1u);
  EXPECT_EQ(Lock.holderForTesting(), 2u);
  EXPECT_EQ(Lock.epochForTesting(), Epoch);
  Lock.unlock(1);
  EXPECT_EQ(Lock.holderForTesting(), 0u);
  EXPECT_EQ(Lock.lostLeases(), 1u);
}

TEST(LeasedLockTest, MutualExclusionUnderLiveContention) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint64_t PerThread = 2000;
  LeasedLockT<> Lock(Threads);
  std::uint64_t Counter = 0; // Unsynchronized: the lock must protect it.
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint64_t I = 0; I < PerThread; ++I) {
        // Patience far beyond any real scheduling delay, so no lease
        // ever expires and the lock is a plain deadlock-free lock.
        while (Lock.lockBounded(T, 1u << 28) != LeaseAcquire::Acquired) {
        }
        ++Counter;
        Lock.unlock(T);
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Counter, Threads * PerThread);
  EXPECT_EQ(Lock.revocations(), 0u);
  EXPECT_EQ(Lock.lostLeases(), 0u);
}

//===----------------------------------------------------------------------===
// RecoverableArbiter
//===----------------------------------------------------------------------===

TEST(RecoverableArbiterTest, SkipsDeadFlaggedTurnHolder) {
  SuspectSetT<> Suspects(2);
  RecoverableArbiterT<> Arbiter(2, Suspects);
  // Thread 0 enters (TURN starts at 0) and dies with its flag raised —
  // the exact liveness hole of the paper's Section 5 caveat.
  ASSERT_TRUE(Arbiter.enterBounded(0, 4));
  ASSERT_TRUE(Arbiter.flagForTesting(0));
  // Thread 1's patience expires, it suspects the corpse, skips TURN past
  // it and gets in — no hang.
  EXPECT_TRUE(Arbiter.enterBounded(1, 4));
  EXPECT_TRUE(Suspects.isSuspectForTesting(0));
  EXPECT_EQ(Arbiter.turnForTesting(), 1u);
  Arbiter.exitAndAdvance(1);
  EXPECT_FALSE(Arbiter.flagForTesting(1));
}

TEST(RecoverableArbiterTest, ResurrectionClearsOwnSuspectBit) {
  SuspectSetT<> Suspects(2);
  RecoverableArbiterT<> Arbiter(2, Suspects);
  Suspects.markSuspect(1);
  // A live suspect re-entering the doorway clears its own bit,
  // restoring round-robin fairness.
  ASSERT_TRUE(Arbiter.enterBounded(1, 4));
  EXPECT_FALSE(Suspects.isSuspectForTesting(1));
  Arbiter.exitAndAdvance(1);
}

TEST(RecoverableArbiterTest, EntryIsBoundedAfterTwoSuspicionRounds) {
  SuspectSetT<> Suspects(3);
  RecoverableArbiterT<> Arbiter(3, Suspects);
  // Two corpses with raised flags: thread 1 first (gets in because
  // thread 0 is not competing), then thread 0 (TURN is its own).
  ASSERT_TRUE(Arbiter.enterBounded(1, 4));
  ASSERT_TRUE(Arbiter.enterBounded(0, 4));
  ASSERT_EQ(Arbiter.turnForTesting(), 0u);
  // Thread 2 burns one suspicion on thread 0, skips to TURN=1, burns its
  // second patience round there and gives up — bounded entry, the
  // caller degrades instead of hanging here.
  EXPECT_FALSE(Arbiter.enterBounded(2, 4));
  EXPECT_FALSE(Arbiter.flagForTesting(2)); // Flag withdrawn on failure.
  EXPECT_TRUE(Suspects.isSuspectForTesting(0));
}

TEST(RecoverableArbiterTest, ReEntryAfterWithdrawalSucceedsOnThirdSuspicion) {
  SuspectSetT<> Suspects(3);
  RecoverableArbiterT<> Arbiter(3, Suspects);
  // Same two-corpse setup as the bounded-entry test: thread 1 enters
  // past thread 0's lowered flag, thread 0 enters on its own TURN.
  ASSERT_TRUE(Arbiter.enterBounded(1, 4));
  ASSERT_TRUE(Arbiter.enterBounded(0, 4));
  ASSERT_EQ(Arbiter.turnForTesting(), 0u);
  // Thread 2 spends its first suspicion on thread 0 (TURN skips to 1),
  // then withdraws during its second patience round — before thread 1 is
  // ever suspected.
  ASSERT_FALSE(Arbiter.enterBounded(2, 2));
  ASSERT_EQ(Arbiter.turnForTesting(), 1u);
  ASSERT_TRUE(Suspects.isSuspectForTesting(0));
  ASSERT_FALSE(Suspects.isSuspectForTesting(1));
  // Re-entry gets a fresh two-suspicion budget: this round suspects the
  // second corpse, TURN skips to thread 2 itself, and it enters — a
  // withdrawn process is delayed, never wedged out of the doorway.
  EXPECT_TRUE(Arbiter.enterBounded(2, 4));
  EXPECT_TRUE(Suspects.isSuspectForTesting(1));
  EXPECT_EQ(Arbiter.turnForTesting(), 2u);
  Arbiter.exitAndAdvance(2);
  EXPECT_FALSE(Arbiter.flagForTesting(2));
}

TEST(RecoverableArbiterTest, WithdrawLowersFlagWithoutAdvancingTurn) {
  SuspectSetT<> Suspects(2);
  RecoverableArbiterT<> Arbiter(2, Suspects);
  ASSERT_TRUE(Arbiter.enterBounded(0, 4));
  const std::uint32_t Turn = Arbiter.turnForTesting();
  Arbiter.withdraw(0);
  EXPECT_FALSE(Arbiter.flagForTesting(0));
  EXPECT_EQ(Arbiter.turnForTesting(), Turn);
}

//===----------------------------------------------------------------------===
// CrashTolerantContentionSensitive: fault-free behaviour
//===----------------------------------------------------------------------===

/// Weak push whose first attempt reports bottom without touching shared
/// memory — a zero-cost deterministic detour onto the slow path.
template <typename StackT>
auto forcedSlowPush(StackT &Stack, std::uint32_t V) {
  return [&Stack, V, Attempts = 0]() mutable -> std::optional<PushResult> {
    if (Attempts++ == 0)
      return std::nullopt;
    const PushResult R = Stack.weakPush(V);
    if (R == PushResult::Abort)
      return std::nullopt;
    return R;
  };
}

TEST(CrashTolerantTest, FastPathKeepsTheSixAccessBound) {
  // Acceptance bound: with no faults the contention-free fast path costs
  // exactly what the paper's Figure 3 costs — one CONTENTION read plus
  // the weak operation (6 accesses for the stack) — and the degradation
  // counter stays at zero.
  CrashTolerantStack<> Tolerant(2, 8);
  ContentionSensitiveStack<> Baseline(2, 8);
  const AccessCounts TolerantPush =
      countAccesses([&] { (void)Tolerant.push(0, 7); });
  const AccessCounts BaselinePush =
      countAccesses([&] { (void)Baseline.push(0, 7); });
  EXPECT_EQ(TolerantPush.total(), BaselinePush.total());
  EXPECT_EQ(TolerantPush.total(), 6u);
  const AccessCounts TolerantPop =
      countAccesses([&] { (void)Tolerant.pop(0); });
  EXPECT_EQ(TolerantPop.total(), 6u);
  const DegradationStats Stats = Tolerant.skeleton().statsForTesting();
  EXPECT_EQ(Stats.Degradations, 0u);
  EXPECT_EQ(Stats.DoorwayTimeouts, 0u);
  EXPECT_EQ(Stats.LeaseTimeouts, 0u);
  EXPECT_EQ(Stats.ProtectedOps, 0u);
}

TEST(CrashTolerantTest, ForcedSlowPathCompletesProtected) {
  CrashTolerantContentionSensitive<> Skeleton(2, /*Patience=*/8);
  AbortableStack<> Stack(8);
  const PushResult R = Skeleton.strongApply(0, forcedSlowPush(Stack, 7));
  EXPECT_EQ(R, PushResult::Done);
  const DegradationStats Stats = Skeleton.statsForTesting();
  EXPECT_EQ(Stats.ProtectedOps, 1u);
  EXPECT_EQ(Stats.Degradations, 0u);
  EXPECT_FALSE(Skeleton.contentionForTesting());
  EXPECT_EQ(Skeleton.guard().holderForTesting(), 0u);
  EXPECT_FALSE(Skeleton.arbiter().flagForTesting(0));
}

TEST(CrashTolerantTest, DegradesWhenTheLockNeverFrees) {
  CrashTolerantContentionSensitive<> Skeleton(2, /*Patience=*/8);
  AbortableStack<> Stack(8);
  // Occupy the lock out-of-band, simulating a holder that never returns.
  ASSERT_EQ(Skeleton.guard().lockBounded(0, 100), LeaseAcquire::Acquired);
  const PushResult R = Skeleton.strongApply(1, forcedSlowPush(Stack, 7));
  EXPECT_EQ(R, PushResult::Done);
  const DegradationStats Stats = Skeleton.statsForTesting();
  EXPECT_EQ(Stats.Degradations, 1u);
  EXPECT_EQ(Stats.LeaseTimeouts, 1u);
  EXPECT_EQ(Stats.Revocations, 1u);
  EXPECT_TRUE(Skeleton.suspects().isSuspectForTesting(0));
  // The revocation freed the lock: the next slow operation completes
  // protected and the system is healed.
  const PushResult R2 = Skeleton.strongApply(1, forcedSlowPush(Stack, 8));
  EXPECT_EQ(R2, PushResult::Done);
  EXPECT_EQ(Skeleton.statsForTesting().ProtectedOps, 1u);
  EXPECT_EQ(Skeleton.guard().holderForTesting(), 0u);
  // The out-of-band "holder" discovers its lease is gone — harmlessly.
  Skeleton.guard().unlock(0);
  EXPECT_EQ(Skeleton.statsForTesting().LostLeases, 1u);
}

//===----------------------------------------------------------------------===
// Lincheck stress over degraded mode
//===----------------------------------------------------------------------===

/// Local copy of the lincheck_test harness: Rounds rounds of Threads x
/// OpsPerThread random ops, merged history checked per round.
template <typename MakeObjFn, typename ApplyFn, typename MakeSpecFn>
void runAndCheck(std::uint32_t Threads, std::uint32_t OpsPerThread,
                 std::uint32_t Rounds, MakeObjFn MakeObject, ApplyFn Apply,
                 MakeSpecFn MakeSpec) {
  for (std::uint32_t Round = 0; Round < Rounds; ++Round) {
    auto Object = MakeObject();
    std::vector<HistoryRecorder> Recorders;
    for (std::uint32_t T = 0; T < Threads; ++T)
      Recorders.emplace_back(T);
    SpinBarrier Barrier(Threads);
    std::vector<std::thread> Workers;
    for (std::uint32_t T = 0; T < Threads; ++T)
      Workers.emplace_back([&, T] {
        SplitMix64 Rng(Round * 1000 + T);
        Barrier.arriveAndWait();
        for (std::uint32_t I = 0; I < OpsPerThread; ++I) {
          const bool IsPush = Rng.chance(1, 2);
          const auto V =
              static_cast<std::uint32_t>(Rng.below(1u << 16)) + 1;
          Apply(*Object, T, IsPush, V, Recorders[T]);
        }
      });
    for (auto &W : Workers)
      W.join();
    const History H = mergeHistories(Recorders);
    ASSERT_TRUE(H.wellFormed());
    const CheckResult Result = checkLinearizable(H, MakeSpec());
    ASSERT_FALSE(Result.HitSearchCap) << "inconclusive check";
    ASSERT_TRUE(Result.Linearizable) << Result.FailureNote;
  }
}

TEST(FaultsLincheckStress, DegradedModeHistoriesLinearize) {
  // A patience of 2 makes doorway and lease timeouts routine under live
  // contention, so the merged histories mix fast-path, protected and
  // degraded completions — all three must interleave linearizably
  // (every linearization point is a weak-object C&S; the lock is only a
  // contention-reduction device).
  runAndCheck(
      3, 6, 40,
      [] {
        return std::make_unique<CrashTolerantStack<>>(3, 4, /*Patience=*/2);
      },
      [](CrashTolerantStack<> &Stack, std::uint32_t Tid, bool IsPush,
         std::uint32_t V, HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush) {
          const PushResult R = Stack.push(Tid, V);
          const auto T1 = HistoryRecorder::now();
          ASSERT_NE(R, PushResult::Abort); // Strong ops never abort.
          Rec.recordPush(V, R == PushResult::Full, T0, T1);
        } else {
          const auto R = Stack.pop(Tid);
          const auto T1 = HistoryRecorder::now();
          ASSERT_FALSE(R.isAbort());
          if (R.isValue())
            Rec.recordPopValue(R.value(), T0, T1);
          else
            Rec.recordPopEmpty(T0, T1);
        }
      },
      [] { return BoundedStackSpec(4); });
}

//===----------------------------------------------------------------------===
// Watchdog
//===----------------------------------------------------------------------===

TEST(WatchdogTest, CatchesAnOperationOverItsDeadline) {
  Watchdog Dog(1, /*DeadlineNs=*/5 * 1000 * 1000);
  Dog.start();
  Dog.arm(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  Dog.stop(); // Final scan catches the still-armed op deterministically.
  ASSERT_GE(Dog.stuckCount(), 1u);
  const auto Reports = Dog.stuckReports();
  EXPECT_EQ(Reports.front().Tid, 0u);
  EXPECT_GE(Reports.front().ObservedNs, Dog.deadlineNs());
}

TEST(WatchdogTest, ReportsEachOperationAtMostOnce) {
  Watchdog Dog(1, /*DeadlineNs=*/1000, /*PollIntervalNs=*/100 * 1000);
  Dog.start();
  Dog.arm(0);
  // Many poll cycles elapse; the single armed op yields a single report.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Dog.stop();
  EXPECT_EQ(Dog.stuckCount(), 1u);
}

TEST(WatchdogTest, DisarmedAndDisabledReportNothing) {
  Watchdog Dog(2, /*DeadlineNs=*/1000 * 1000);
  Dog.start();
  Dog.arm(0);
  Dog.disarm(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Dog.stop();
  EXPECT_EQ(Dog.stuckCount(), 0u);

  Watchdog Off(2, /*DeadlineNs=*/0);
  Off.start(); // No-op.
  Off.arm(1);
  Off.stop();
  EXPECT_EQ(Off.stuckCount(), 0u);
}

TEST(WatchdogTest, DisabledWatchdogAddsZeroSharedAccesses) {
  // Regression guard for the measurement harness: a deadline of 0 turns
  // the watchdog off, and "off" must mean free — arm/disarm on the hot
  // path may not touch instrumented shared memory, or every access-count
  // bound in the battery would silently inflate.
  Watchdog Off(2, /*DeadlineNs=*/0);
  Off.start();
  const AccessCounts Counts = countAccesses([&] {
    Off.arm(0);
    Off.disarm(0);
  });
  Off.stop();
  EXPECT_EQ(Counts.total(), 0u);
}

TEST(WatchdogTest, StopStartReuseDrainsPerWindowAndKeepsLifetimeTotal) {
  // The soak collector's contract: one Watchdog instance is reused
  // across windows, drainReports() hands over each window's catches,
  // stuckCount() keeps the lifetime total.
  Watchdog Dog(1, /*DeadlineNs=*/1000 * 1000, /*PollIntervalNs=*/200 * 1000);

  // Window 1: one stuck op.
  Dog.start();
  Dog.arm(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Dog.stop();
  const auto Window1 = Dog.drainReports();
  ASSERT_EQ(Window1.size(), 1u);
  EXPECT_EQ(Window1.front().Tid, 0u);
  EXPECT_EQ(Dog.stuckCount(), 1u);
  EXPECT_TRUE(Dog.drainReports().empty()); // Drained means drained.
  Dog.disarm(0);

  // Window 2: the same instance restarts and catches a fresh op (the
  // new arm timestamp is a new identity).
  Dog.start();
  Dog.arm(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Dog.stop();
  const auto Window2 = Dog.drainReports();
  ASSERT_EQ(Window2.size(), 1u);
  EXPECT_EQ(Dog.stuckCount(), 2u); // Lifetime total spans both windows.
}

//===----------------------------------------------------------------------===
// Driver integration: planned faults + watchdog as a liveness oracle
//===----------------------------------------------------------------------===

/// Driver-contract adapter over the crash-tolerant stack.
struct TolerantStackAdapter {
  TolerantStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    if (IsPush) {
      switch (Stack.push(Tid, V)) {
      case PushResult::Done:
        return OpOutcome::Ok;
      case PushResult::Full:
        return OpOutcome::Full;
      case PushResult::Abort:
        return OpOutcome::Abort;
      }
    }
    const auto R = Stack.pop(Tid);
    if (R.isValue())
      return OpOutcome::Ok;
    return R.isEmpty() ? OpOutcome::Empty : OpOutcome::Abort;
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  CrashTolerantStack<> Stack;
};

TEST(DriverFaultsTest, PlannedCrashRetiresVictimAndSurvivorsFinish) {
  WorkloadConfig Config;
  Config.Threads = 3;
  Config.OpsPerThread = 400;
  Config.Capacity = 64;
  Config.Seed = 7;
  // Crash thread 0 at its 50th shared access — mid-operation, wherever
  // that lands (possibly inside the doorway or holding the lease).
  Config.Faults = FaultPlan::crashAt(0, 50);
  // Liveness oracle: no survivor operation may overstay 5 seconds.
  Config.OpDeadlineNs = 5ull * 1000 * 1000 * 1000;
  TolerantStackAdapter Adapter(Config.Threads, Config.Capacity);
  const WorkloadReport Report = runClosedLoop(Adapter, Config);

  EXPECT_EQ(Report.crashedThreads(), 1u);
  EXPECT_TRUE(Report.PerThread[0].Crashed);
  EXPECT_LT(Report.PerThread[0].completedOps(), Config.OpsPerThread);
  for (std::uint32_t T = 1; T < Config.Threads; ++T) {
    EXPECT_FALSE(Report.PerThread[T].Crashed);
    EXPECT_EQ(Report.PerThread[T].completedOps(), Config.OpsPerThread);
  }
  EXPECT_EQ(Report.StuckOps, 0u);
  // Strong operations never surface bottom, crash or no crash.
  EXPECT_EQ(Report.totalAborts(), 0u);
}

TEST(DriverFaultsTest, ChaosStallChannelKeepsRunsLive) {
  WorkloadConfig Config;
  Config.Threads = 2;
  Config.OpsPerThread = 200;
  Config.Capacity = 64;
  Config.ChaosStallPermille = 100;
  Config.ChaosStallGrants = 32;
  Config.OpDeadlineNs = 5ull * 1000 * 1000 * 1000;
  TolerantStackAdapter Adapter(Config.Threads, Config.Capacity);
  const WorkloadReport Report = runClosedLoop(Adapter, Config);
  EXPECT_EQ(Report.crashedThreads(), 0u);
  EXPECT_EQ(Report.totalOps(),
            static_cast<std::uint64_t>(Config.Threads) * Config.OpsPerThread);
  EXPECT_EQ(Report.StuckOps, 0u);
}

} // namespace
} // namespace csobj
