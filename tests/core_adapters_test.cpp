//===- tests/core_adapters_test.cpp - BoxedStack, counter, genericity ----===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the pieces built *around* the paper's core: the boxed-value
/// wrapper, the counter instantiation of Figure 3, and wrapping foreign
/// abortable objects (Treiber single-attempt ops) in the skeleton.
///
//===----------------------------------------------------------------------===//

#include "baselines/TreiberStack.h"
#include "core/BoxedStack.h"
#include "core/ContentionSensitiveCounter.h"
#include "core/TimestampBoost.h"
#include "locks/TicketLock.h"
#include "memory/AccessCounter.h"
#include "runtime/SpinBarrier.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// BoxedStack<T>
//===----------------------------------------------------------------------===

TEST(BoxedStackTest, HoldsStrings) {
  BoxedStack<std::string> Stack(2, 4);
  EXPECT_TRUE(Stack.push(0, "hello"));
  EXPECT_TRUE(Stack.push(1, "world"));
  auto A = Stack.pop(0);
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(*A, "world");
  auto B = Stack.pop(1);
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(*B, "hello");
  EXPECT_FALSE(Stack.pop(0).has_value());
}

TEST(BoxedStackTest, FullWhenPoolExhausted) {
  BoxedStack<int> Stack(1, 2);
  EXPECT_TRUE(Stack.push(0, 1));
  EXPECT_TRUE(Stack.push(0, 2));
  EXPECT_FALSE(Stack.push(0, 3));
  (void)Stack.pop(0);
  EXPECT_TRUE(Stack.push(0, 4));
}

TEST(BoxedStackTest, MoveOnlyPayloads) {
  BoxedStack<std::unique_ptr<int>> Stack(1, 4);
  EXPECT_TRUE(Stack.push(0, std::make_unique<int>(42)));
  auto P = Stack.pop(0);
  ASSERT_TRUE(P.has_value());
  ASSERT_TRUE(*P != nullptr);
  EXPECT_EQ(**P, 42);
}

TEST(BoxedStackTest, ConcurrentUseConservesPayloads) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t PerThread = 1000;
  BoxedStack<std::uint64_t> Stack(Threads, Threads * PerThread);
  SpinBarrier Barrier(Threads);
  std::vector<std::uint64_t> SumIn(Threads, 0), SumOut(Threads, 0);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(T + 7);
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I) {
        const std::uint64_t V = Rng.below(1u << 30) + 1;
        if (Stack.push(T, V))
          SumIn[T] += V;
        if (Rng.chance(1, 2)) {
          if (const auto R = Stack.pop(T))
            SumOut[T] += *R;
        }
      }
    });
  for (auto &W : Workers)
    W.join();
  std::uint64_t Rest = 0;
  while (const auto R = Stack.pop(0))
    Rest += *R;
  EXPECT_EQ(std::accumulate(SumIn.begin(), SumIn.end(), std::uint64_t{0}),
            std::accumulate(SumOut.begin(), SumOut.end(), std::uint64_t{0}) +
                Rest);
}

//===----------------------------------------------------------------------===
// Figure 3 over the counter object
//===----------------------------------------------------------------------===

TEST(CounterTest, AbortableCounterSoloNeverAborts) {
  AbortableCounter Counter;
  for (int I = 1; I <= 100; ++I) {
    const auto R = Counter.weakAdd(1);
    ASSERT_TRUE(R.has_value());
    EXPECT_EQ(*R, static_cast<std::uint64_t>(I));
  }
}

TEST(CounterTest, StrongCounterExactUnderContention) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t PerThread = 5000;
  ContentionSensitiveCounter<> Counter(Threads);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I)
        (void)Counter.add(T, 1);
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Counter.valueForTesting(),
            static_cast<std::uint64_t>(Threads) * PerThread);
}

TEST(CounterTest, ContentionFreeStrongAddIsThreeAccesses) {
  ContentionSensitiveCounter<> Counter(2);
  const AccessCounts Counts =
      countAccesses([&] { EXPECT_EQ(Counter.add(0, 5), 5u); });
  // read CONTENTION + read counter + C&S counter.
  EXPECT_EQ(Counts.total(), 3u);
}

//===----------------------------------------------------------------------===
// Figure 3 over a foreign abortable object (Treiber single attempts)
//===----------------------------------------------------------------------===

TEST(GenericSkeletonTest, TreiberUnderFigure3NeverLosesValues) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t PerThread = 1500;
  TreiberStack Stack(Threads * PerThread);
  ContentionSensitive<TasLock> Skeleton(Threads);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I) {
        const std::uint32_t V = (T << 20) | (I + 1);
        const PushResult R = Skeleton.strongApply(
            T, [&]() -> std::optional<PushResult> {
              const PushResult Res = Stack.tryPushOnce(V);
              if (Res == PushResult::Abort)
                return std::nullopt;
              return Res;
            });
        ASSERT_EQ(R, PushResult::Done);
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Stack.sizeForTesting(), Threads * PerThread);
}

//===----------------------------------------------------------------------===
// Section 4.1 Remark: the simplified construction over a
// starvation-free lock (FLAG and TURN suppressed)
//===----------------------------------------------------------------------===

TEST(SimplifiedRemarkTest, SequentialSemantics) {
  AbortableStack<> Weak(4);
  SimplifiedContentionSensitive<TicketLock> Strong(2);
  auto Push = [&](std::uint32_t Tid, std::uint32_t V) {
    return Strong.strongApply(Tid,
                              [&]() -> std::optional<PushResult> {
                                const PushResult R = Weak.weakPush(V);
                                if (R == PushResult::Abort)
                                  return std::nullopt;
                                return R;
                              });
  };
  auto Pop = [&](std::uint32_t Tid) {
    return Strong.strongApply(
        Tid, [&]() -> std::optional<PopResult<std::uint32_t>> {
          const auto R = Weak.weakPop();
          if (R.isAbort())
            return std::nullopt;
          return R;
        });
  };
  EXPECT_EQ(Push(0, 1), PushResult::Done);
  EXPECT_EQ(Push(1, 2), PushResult::Done);
  auto R = Pop(0);
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 2u);
}

TEST(SimplifiedRemarkTest, ContentionFreeStrongOpStillSixAccesses) {
  // Suppressing lines 04-05/10-11 does not change the fast path.
  AbortableStack<> Weak(8);
  SimplifiedContentionSensitive<TicketLock> Strong(2);
  const AccessCounts Counts = countAccesses([&] {
    const PushResult R = Strong.strongApply(
        0, [&]() -> std::optional<PushResult> {
          const PushResult Res = Weak.weakPush(5);
          if (Res == PushResult::Abort)
            return std::nullopt;
          return Res;
        });
    EXPECT_EQ(R, PushResult::Done);
  });
  EXPECT_EQ(Counts.total(), 6u);
}

TEST(SimplifiedRemarkTest, NeverAbortsUnderContention) {
  constexpr std::uint32_t Threads = 4;
  AbortableStack<> Weak(512);
  SimplifiedContentionSensitive<TicketLock> Strong(Threads);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(T + 3);
      Barrier.arriveAndWait();
      for (int I = 0; I < 2000; ++I) {
        if (Rng.chance(1, 2)) {
          const auto V = static_cast<std::uint32_t>(Rng.below(999)) + 1;
          const PushResult R = Strong.strongApply(
              T, [&]() -> std::optional<PushResult> {
                const PushResult Res = Weak.weakPush(V);
                if (Res == PushResult::Abort)
                  return std::nullopt;
                return Res;
              });
          ASSERT_NE(R, PushResult::Abort);
        } else {
          const auto R = Strong.strongApply(
              T, [&]() -> std::optional<PopResult<std::uint32_t>> {
                const auto Res = Weak.weakPop();
                if (Res.isAbort())
                  return std::nullopt;
                return Res;
              });
          ASSERT_FALSE(R.isAbort());
        }
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_FALSE(Strong.contentionForTesting());
}

//===----------------------------------------------------------------------===
// TimestampBoost: the lock-free starvation-free alternative (refs [4,25])
//===----------------------------------------------------------------------===

TEST(TimestampBoostTest, SequentialSemanticsMatchStack) {
  BoostedStack<> Stack(2, 4);
  EXPECT_EQ(Stack.push(0, 1), PushResult::Done);
  EXPECT_EQ(Stack.push(1, 2), PushResult::Done);
  auto R = Stack.pop(0);
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 2u);
  R = Stack.pop(1);
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 1u);
  EXPECT_TRUE(Stack.pop(0).isEmpty());
}

TEST(TimestampBoostTest, ContentionFreeStrongOpIsSixAccesses) {
  // Same fast-path shape as Figure 3: 1 announcement-count read + the
  // weak operation's 5 accesses.
  BoostedStack<> Stack(4, 8);
  const AccessCounts Counts =
      countAccesses([&] { EXPECT_EQ(Stack.push(0, 9), PushResult::Done); });
  EXPECT_EQ(Counts.total(), 6u);
}

TEST(TimestampBoostTest, NeverAbortsUnderContention) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t OpsPerThread = 2000;
  BoostedStack<> Stack(Threads, 512);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(T + 17);
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < OpsPerThread; ++I) {
        if (Rng.chance(1, 2)) {
          ASSERT_NE(Stack.push(
                        T, static_cast<std::uint32_t>(Rng.below(999)) + 1),
                    PushResult::Abort);
        } else {
          ASSERT_FALSE(Stack.pop(T).isAbort());
        }
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Stack.skeleton().announcedForTesting(), 0u);
}

TEST(TimestampBoostTest, ConcurrentPushesConserveValues) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t PerThread = 800;
  BoostedStack<> Stack(Threads, Threads * PerThread);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I)
        ASSERT_EQ(Stack.push(T, (T << 16) | (I + 1)), PushResult::Done);
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Stack.sizeForTesting(), Threads * PerThread);
  std::vector<bool> Seen(1u << 18, false);
  for (std::uint32_t I = 0; I < Threads * PerThread; ++I) {
    const auto R = Stack.pop(0);
    ASSERT_TRUE(R.isValue());
    ASSERT_FALSE(Seen[R.value()]);
    Seen[R.value()] = true;
  }
}

TEST(TimestampBoostTest, GenericOverTheCounter) {
  AbortableCounter Counter;
  TimestampBoost Boost(3);
  for (int I = 1; I <= 50; ++I) {
    const std::uint64_t R = Boost.strongApply(
        0, [&] { return Counter.weakAdd(2); });
    EXPECT_EQ(R, static_cast<std::uint64_t>(2 * I));
  }
}

} // namespace
} // namespace csobj
