//===- tests/locks_test.cpp - Lock substrate tests -----------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every lock is driven through the same mutual-exclusion and increment
/// torture tests via typed test suites; the Section 4.4 transformation
/// and the Figure 3 doorway get dedicated fairness tests.
///
//===----------------------------------------------------------------------===//

#include "locks/AbortableLock.h"
#include "locks/AndersonLock.h"
#include "locks/ClhLock.h"
#include "locks/LamportFastLock.h"
#include "locks/LockTraits.h"
#include "locks/McsLock.h"
#include "locks/PetersonLock.h"
#include "locks/RoundRobinArbiter.h"
#include "locks/StarvationFreeLock.h"
#include "locks/TasLock.h"
#include "locks/TicketLock.h"
#include "locks/TournamentLock.h"
#include "memory/AccessCounter.h"
#include "runtime/SpinBarrier.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace csobj {
namespace {

// The lock contract is compile-time checked for every implementation.
static_assert(LockConcept<TasLock>);
static_assert(LockConcept<TtasLock>);
static_assert(LockConcept<TicketLock>);
static_assert(LockConcept<McsLock>);
static_assert(LockConcept<ClhLock>);
static_assert(LockConcept<TournamentLock>);
static_assert(LockConcept<AndersonLock>);
static_assert(LockConcept<AbortableTtasLock>);
static_assert(LockConcept<LamportFastLock>);
static_assert(LockConcept<StdMutexLock>);
static_assert(LockConcept<StarvationFreeLock<TasLock>>);
static_assert(LockConcept<StarvationFreeLock<LamportFastLock>>);
static_assert(LockConcept<StarvationFreeLock<Leasable>>);

template <typename L>
class LockTest : public ::testing::Test {};

using LockTypes =
    ::testing::Types<TasLock, TtasLock, BackoffTasLock, TicketLock, McsLock,
                     ClhLock, TournamentLock, AndersonLock,
                     AbortableTtasLock, LamportFastLock, StdMutexLock,
                     StarvationFreeLock<TasLock>,
                     StarvationFreeLock<TtasLock>,
                     StarvationFreeLock<LamportFastLock>,
                     StarvationFreeLock<AbortableTtasLock>,
                     StarvationFreeLock<Leasable>>;
TYPED_TEST_SUITE(LockTest, LockTypes);

TYPED_TEST(LockTest, SingleThreadLockUnlock) {
  TypeParam Lock(1);
  Lock.lock(0);
  Lock.unlock(0);
  Lock.lock(0);
  Lock.unlock(0);
}

TYPED_TEST(LockTest, MutualExclusionUnderContention) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t PerThread = 3000;
  TypeParam Lock(Threads);
  // Non-atomic counter: any mutual-exclusion violation loses increments.
  std::uint64_t Counter = 0;
  std::uint32_t InCritical = 0;
  bool Violation = false;
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I) {
        Lock.lock(T);
        if (++InCritical != 1)
          Violation = true;
        ++Counter;
        --InCritical;
        Lock.unlock(T);
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_FALSE(Violation) << "two threads were in the critical section";
  EXPECT_EQ(Counter, static_cast<std::uint64_t>(Threads) * PerThread);
}

TYPED_TEST(LockTest, HandoffBetweenTwoThreads) {
  TypeParam Lock(2);
  std::uint64_t Shared = 0;
  std::thread A([&] {
    for (int I = 0; I < 1000; ++I) {
      Lock.lock(0);
      ++Shared;
      Lock.unlock(0);
    }
  });
  std::thread B([&] {
    for (int I = 0; I < 1000; ++I) {
      Lock.lock(1);
      ++Shared;
      Lock.unlock(1);
    }
  });
  A.join();
  B.join();
  EXPECT_EQ(Shared, 2000u);
}

//===----------------------------------------------------------------------===
// Peterson two-process lock
//===----------------------------------------------------------------------===

TEST(PetersonLockTest, MutualExclusionTwoThreads) {
  PetersonLock Lock;
  std::uint64_t Counter = 0;
  std::thread A([&] {
    for (int I = 0; I < 20000; ++I) {
      Lock.lock(0);
      ++Counter;
      Lock.unlock(0);
    }
  });
  std::thread B([&] {
    for (int I = 0; I < 20000; ++I) {
      Lock.lock(1);
      ++Counter;
      Lock.unlock(1);
    }
  });
  A.join();
  B.join();
  EXPECT_EQ(Counter, 40000u);
}

//===----------------------------------------------------------------------===
// Lamport's fast lock: the contention-free access-count claim from [16]
//===----------------------------------------------------------------------===

TEST(LamportFastLockTest, ContentionFreeAcquireIsFiveAccesses) {
  LamportFastLock Lock(8);
  const AccessCounts Counts = countAccesses([&] { Lock.lock(0); });
  // write b[i], write x, read y, write y, read x.
  EXPECT_EQ(Counts.total(), 5u);
  Lock.unlock(0);
}

TEST(LamportFastLockTest, ContentionFreeRoundTripIsSevenAccesses) {
  // The paper (Section 1.1) credits [16] with seven accesses in the
  // contention-free case: five to enter plus two to exit.
  LamportFastLock Lock(8);
  const AccessCounts Counts = countAccesses([&] {
    Lock.lock(3);
    Lock.unlock(3);
  });
  EXPECT_EQ(Counts.total(), 7u);
}

//===----------------------------------------------------------------------===
// Tournament lock structure
//===----------------------------------------------------------------------===

TEST(TournamentLockTest, LevelCountMatchesThreads) {
  EXPECT_EQ(TournamentLock(1).levels(), 1u);
  EXPECT_EQ(TournamentLock(2).levels(), 1u);
  EXPECT_EQ(TournamentLock(3).levels(), 2u);
  EXPECT_EQ(TournamentLock(4).levels(), 2u);
  EXPECT_EQ(TournamentLock(5).levels(), 3u);
  EXPECT_EQ(TournamentLock(8).levels(), 3u);
}

TEST(TournamentLockTest, ManyThreads) {
  constexpr std::uint32_t Threads = 7;
  TournamentLock Lock(Threads);
  std::uint64_t Counter = 0;
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (int I = 0; I < 2000; ++I) {
        Lock.lock(T);
        ++Counter;
        Lock.unlock(T);
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Counter, static_cast<std::uint64_t>(Threads) * 2000);
}

//===----------------------------------------------------------------------===
// Abortable mutual exclusion ([13]'s contract on a TTAS base)
//===----------------------------------------------------------------------===

TEST(AbortableLockTest, TryLockSucceedsWhenFree) {
  AbortableTtasLock Lock;
  EXPECT_TRUE(Lock.tryLock(0, 1));
  EXPECT_TRUE(Lock.heldForTesting());
  Lock.unlock(0);
  EXPECT_FALSE(Lock.heldForTesting());
}

TEST(AbortableLockTest, TryLockAbortsWhenHeld) {
  AbortableTtasLock Lock;
  Lock.lock(0);
  // Entry code abandoned: returns false, leaves no trace.
  EXPECT_FALSE(Lock.tryLock(1, 4));
  Lock.unlock(0);
  // The aborted attempt did not damage liveness: acquisition works.
  EXPECT_TRUE(Lock.tryLock(1, 1));
  Lock.unlock(1);
}

TEST(AbortableLockTest, AbortedWaitersDoNotBlockOthers) {
  AbortableTtasLock Lock;
  Lock.lock(0);
  // Several processes try and give up while the lock is held.
  std::vector<std::thread> Quitters;
  for (std::uint32_t T = 1; T <= 3; ++T)
    Quitters.emplace_back([&Lock, T] {
      EXPECT_FALSE(Lock.tryLock(T, 8));
    });
  for (auto &Q : Quitters)
    Q.join();
  Lock.unlock(0);
  // Liveness unaffected by the three aborted entries.
  EXPECT_TRUE(Lock.tryLock(2, 1));
  Lock.unlock(2);
}

//===----------------------------------------------------------------------===
// RoundRobinArbiter: the Figure 3 doorway
//===----------------------------------------------------------------------===

TEST(RoundRobinArbiterTest, SoloEnterExitsImmediately) {
  RoundRobinArbiter Arbiter(4);
  Arbiter.enter(2); // TURN=0, FLAG[0]=false: passes without waiting.
  EXPECT_TRUE(Arbiter.flagForTesting(2));
  Arbiter.exitAndAdvance(2);
  EXPECT_FALSE(Arbiter.flagForTesting(2));
}

TEST(RoundRobinArbiterTest, TurnAdvancesRoundRobin) {
  RoundRobinArbiter Arbiter(3);
  EXPECT_EQ(Arbiter.turnForTesting(), 0u);
  Arbiter.enter(1);
  Arbiter.exitAndAdvance(1); // FLAG[0] false -> TURN advances to 1.
  EXPECT_EQ(Arbiter.turnForTesting(), 1u);
  Arbiter.enter(0);
  Arbiter.exitAndAdvance(0); // FLAG[1] false -> TURN advances to 2.
  EXPECT_EQ(Arbiter.turnForTesting(), 2u);
  Arbiter.enter(2);
  Arbiter.exitAndAdvance(2); // Wraps around the ring.
  EXPECT_EQ(Arbiter.turnForTesting(), 0u);
}

TEST(RoundRobinArbiterTest, TurnHeldForFlaggedProcess) {
  RoundRobinArbiter Arbiter(3);
  // Thread 0 announces interest but has not exited; TURN stays 0 when
  // another thread leaves (line 11's FLAG[TURN] check).
  Arbiter.enter(0);
  std::thread Other([&] {
    Arbiter.enter(1); // TURN=0 but FLAG[0]=true... wait: passes only
                      // when TURN==1 or !FLAG[TURN]. FLAG[0] is true, so
                      // this blocks until 0 leaves -- run 0's exit below.
  });
  // Give the waiter a moment to park, then let 0 exit: TURN must still
  // point at 0 during the wait (0 holds priority).
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(Arbiter.turnForTesting(), 0u);
  Arbiter.exitAndAdvance(0);
  Other.join();
  Arbiter.exitAndAdvance(1);
}

//===----------------------------------------------------------------------===
// Section 4.4: starvation-freedom of the transformed lock
//===----------------------------------------------------------------------===

TEST(StarvationFreeLockTest, AcquisitionCountsStayBalanced) {
  // Under the doorway, per-thread acquisition counts in a fixed window
  // must stay within a bounded spread (each waiter is bypassed at most
  // O(n) times). Run all threads for a fixed time and compare counts.
  constexpr std::uint32_t Threads = 4;
  StarvationFreeLock<TasLock> Lock(Threads);
  std::vector<std::uint64_t> Acquisitions(Threads, 0);
  std::atomic<bool> Stop{false};
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      while (!Stop.load(std::memory_order_relaxed)) {
        Lock.lock(T);
        ++Acquisitions[T];
        Lock.unlock(T);
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  Stop.store(true);
  for (auto &W : Workers)
    W.join();
  std::uint64_t Min = Acquisitions[0], Max = Acquisitions[0];
  for (std::uint64_t A : Acquisitions) {
    Min = std::min(Min, A);
    Max = std::max(Max, A);
  }
  EXPECT_GT(Min, 0u) << "a thread starved behind the doorway";
  // The round-robin doorway keeps the spread small; allow generous slack
  // for scheduler noise on an oversubscribed host.
  EXPECT_LT(static_cast<double>(Max),
            static_cast<double>(Min) * 10.0 + 1000.0);
}

TEST(StarvationFreeLockTest, EveryThreadCompletesFixedWorkload) {
  constexpr std::uint32_t Threads = 6;
  constexpr std::uint32_t PerThread = 500;
  StarvationFreeLock<TtasLock> Lock(Threads);
  std::uint64_t Counter = 0;
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I) {
        Lock.lock(T);
        ++Counter;
        Lock.unlock(T);
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Counter, static_cast<std::uint64_t>(Threads) * PerThread);
}

//===----------------------------------------------------------------------===
// Leasable variant: the Section 4.4 transform over LeasedLock +
// RecoverableArbiter (crash recovery folded into the lock adapter)
//===----------------------------------------------------------------------===

TEST(LeasableStarvationFreeLockTest, RevokesCorpseLeaseAndRecovers) {
  // Small logical patience so the corpse is detected in a few dozen
  // observations rather than the wall-clock-safe default.
  using LeasableLock = StarvationFreeLock<LeasableTag<16>>;
  LeasableLock Lock(3);
  // Thread 0 "crashes" holding the lock: acquires and never unlocks.
  Lock.lock(0);
  EXPECT_EQ(Lock.inner().holderForTesting(), 1u);
  // A survivor's first bounded round spends its doorway patience on the
  // corpse's flag (skipping it once suspected), then its lease patience
  // on the stale lease: the round times out but revokes the lease.
  EXPECT_EQ(Lock.lockBounded(1), LeaseAcquire::TimedOut);
  EXPECT_TRUE(Lock.suspects().isSuspectForTesting(0));
  EXPECT_EQ(Lock.inner().revocations(), 1u);
  EXPECT_EQ(Lock.inner().holderForTesting(), 0u) << "lease not revoked";
  // The next round finds the lock healed and acquires.
  EXPECT_EQ(Lock.lockBounded(1), LeaseAcquire::Acquired);
  Lock.unlock(1);
  // The unbounded LockConcept entry point also terminates post-crash.
  Lock.lock(2);
  Lock.unlock(2);
}

TEST(LeasableStarvationFreeLockTest, FalseSuspicionCostsOnlyTheLease) {
  using LeasableLock = StarvationFreeLock<LeasableTag<16>>;
  LeasableLock Lock(2);
  Lock.lock(0);
  // Thread 1 loses patience with the (actually alive) holder and
  // revokes. Thread 0 then "resurrects": its unlock finds the lease
  // gone, which is counted, never trapped.
  EXPECT_EQ(Lock.lockBounded(1), LeaseAcquire::TimedOut);
  EXPECT_EQ(Lock.inner().revocations(), 1u);
  Lock.unlock(0);
  EXPECT_EQ(Lock.inner().lostLeases(), 1u);
  // Both threads keep working; thread 0's next entry resurrects it.
  Lock.lock(0);
  EXPECT_FALSE(Lock.suspects().isSuspectForTesting(0));
  Lock.unlock(0);
  Lock.lock(1);
  Lock.unlock(1);
}

} // namespace
} // namespace csobj
